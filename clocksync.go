// Package clocksync is a Go implementation of the fault-and-recovery
// tolerant clock synchronization protocol of Barak, Halevi, Herzberg and
// Naor, "Clock Synchronization with Faults and Recoveries" (PODC 2000).
//
// The protocol keeps the logical clocks of n processors synchronized and
// accurate in the presence of an f-limited mobile Byzantine adversary: any
// number of processors may be corrupted over the system's lifetime, as long
// as at most f are corrupted within any window of length Θ and n ≥ 3f+1.
// Corrupted processors recover automatically after release, without any
// fault or recovery detection.
//
// The package exposes three layers:
//
//   - Simulation: deterministic discrete-event experiments
//     (Scenario/RunScenario), used to validate the Theorem 5 bounds and to
//     reproduce every experiment in EXPERIMENTS.md.
//   - Analysis: the closed-form Theorem 5 calculator (Params/Derive).
//   - Deployment: a real-time UDP node (LiveConfig/NewLiveNode) that runs
//     the same convergence function over authenticated links.
//
// See the examples directory for runnable entry points.
package clocksync

import (
	"clocksync/internal/analysis"
	"clocksync/internal/livenet"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Time is an instant in simulated real time, in seconds.
type Time = simtime.Time

// Duration is a span of simulated time, in seconds.
type Duration = simtime.Duration

// Common durations re-exported for configuration literals.
const (
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
)

// Params are the model constants and protocol settings of the analysis
// (drift bound ρ, delivery bound δ, adversary period Θ, SyncInt, MaxWait).
type Params = analysis.Params

// Bounds are the guarantees of Theorem 5 derived from Params.
type Bounds = analysis.Bounds

// Derive evaluates Theorem 5: maximum deviation Δ, logical drift ρ̃,
// discontinuity ψ, the recommended WayOff, and the recovery horizon.
func Derive(p Params) (Bounds, error) { return analysis.Derive(p) }

// DefaultParams returns a parameter set representative of a LAN/metro
// deployment for n processors with fault budget f.
func DefaultParams(n, f int) Params { return analysis.DefaultParams(n, f) }

// Provision solves the inverse problem: given a target maximum deviation,
// a hardware drift bound and the adversary period, it returns network and
// protocol parameters whose derived Δ meets the target (or an error when no
// delay bound is fast enough). Set N/F on the result to your cluster size.
func Provision(targetDelta Duration, rho float64, theta Duration) (Params, error) {
	return analysis.Provision(targetDelta, rho, theta)
}

// Scenario describes a complete simulation: processors, clocks, network,
// protocol parameters, adversary schedule and measurement settings.
type Scenario = scenario.Scenario

// Result is the outcome of a simulation run: the measured report, the
// theoretical bounds it is compared against, and the raw sample series.
type Result = scenario.Result

// RunScenario executes a simulation.
func RunScenario(s Scenario) (*Result, error) { return scenario.Run(s) }

// LiveConfig configures a real-time UDP node.
type LiveConfig = livenet.Config

// LiveNode is a deployable Sync participant on a real network.
type LiveNode = livenet.Node

// NewLiveNode opens a live node's socket and prepares it to Run.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return livenet.New(cfg) }

// LiveCluster runs n live nodes in one process on loopback sockets.
type LiveCluster = livenet.Cluster

// LiveClusterConfig parameterizes an in-process live cluster.
type LiveClusterConfig = livenet.ClusterConfig

// NewLiveCluster opens sockets for all nodes and wires their peer tables.
func NewLiveCluster(cfg LiveClusterConfig) (*LiveCluster, error) {
	return livenet.NewCluster(cfg)
}
