// Package clocksync is a Go implementation of the fault-and-recovery
// tolerant clock synchronization protocol of Barak, Halevi, Herzberg and
// Naor, "Clock Synchronization with Faults and Recoveries" (PODC 2000).
//
// The protocol keeps the logical clocks of n processors synchronized and
// accurate in the presence of an f-limited mobile Byzantine adversary: any
// number of processors may be corrupted over the system's lifetime, as long
// as at most f are corrupted within any window of length Θ and n ≥ 3f+1.
// Corrupted processors recover automatically after release, without any
// fault or recovery detection.
//
// This file is the package's entire public surface, organized in six
// sections:
//
//   - Analysis: the closed-form Theorem 5 calculator (Params, Derive,
//     Provision).
//   - Simulation: deterministic discrete-event experiments (Scenario,
//     RunScenario, Sweep) with adversary schedules, behaviors, topologies
//     and delay models.
//   - Checking & campaigns: the online Theorem 5 invariant checker
//     (WithCheck, Violation) and randomized adversary campaigns with
//     failure shrinking (RunCampaign, CampaignConfig).
//   - Observability: the event stream, causal round spans, latency
//     histograms and counter types shared by the simulator and the live
//     node (Observer, Event, Span, Histogram, Ring, JSONL), attached to a
//     run with RunScenario options. See docs/OBSERVABILITY.md.
//   - Deployment: a real-time UDP node (NodeConfig, NewNode) and an
//     in-process loopback cluster (ClusterConfig, NewCluster) running the
//     same convergence function over authenticated links, exporting
//     Prometheus-style /metrics and /debug/pprof.
//   - Serving: the client-facing read path — lock-free interval-valued
//     readings from a node (Reading, TimeSource, Node.Read), an NTP-style
//     four-timestamp UDP query protocol (WithServeAddr, Client), and the
//     pluggable datagram Transport it all runs over. See docs/SERVING.md.
//
// Deprecated spellings of older names live in deprecated.go; new code
// should use the names below. See the examples directory for runnable
// entry points.
package clocksync

import (
	"io"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/campaign"
	"clocksync/internal/check"
	"clocksync/internal/livenet"
	"clocksync/internal/metrics"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

// Time is an instant in simulated real time, in seconds.
type Time = simtime.Time

// Duration is a span of simulated time, in seconds.
type Duration = simtime.Duration

// Common durations re-exported for configuration literals.
const (
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
)

// Seconds converts a float64 second count to a Duration.
func Seconds(s float64) Duration { return simtime.Duration(s) }

// ---------------------------------------------------------------------------
// Analysis — Theorem 5 bounds
// ---------------------------------------------------------------------------

// Params are the model constants and protocol settings of the analysis
// (drift bound ρ, delivery bound δ, adversary period Θ, SyncInt, MaxWait).
type Params = analysis.Params

// Bounds are the guarantees of Theorem 5 derived from Params.
type Bounds = analysis.Bounds

// Derive evaluates Theorem 5: maximum deviation Δ, logical drift ρ̃,
// discontinuity ψ, the recommended WayOff, and the recovery horizon.
func Derive(p Params) (Bounds, error) { return analysis.Derive(p) }

// DefaultParams returns a parameter set representative of a LAN/metro
// deployment for n processors with fault budget f.
func DefaultParams(n, f int) Params { return analysis.DefaultParams(n, f) }

// Provision solves the inverse problem: given a target maximum deviation,
// a hardware drift bound and the adversary period, it returns network and
// protocol parameters whose derived Δ meets the target (or an error when no
// delay bound is fast enough). Set N/F on the result to your cluster size.
func Provision(targetDelta Duration, rho float64, theta Duration) (Params, error) {
	return analysis.Provision(targetDelta, rho, theta)
}

// ---------------------------------------------------------------------------
// Simulation — scenarios and runs
// ---------------------------------------------------------------------------

// Scenario describes a complete simulation: processors, clocks, network,
// protocol parameters, adversary schedule and measurement settings.
type Scenario = scenario.Scenario

// Result is the outcome of a simulation run: the measured report, the
// theoretical bounds it is compared against, the raw sample series, and —
// when an observer was attached — the run's event tallies.
type Result = scenario.Result

// RunOption customizes one RunScenario call without mutating the caller's
// Scenario value.
type RunOption func(*Scenario)

// WithObserver attaches an Observer to the run: it receives one Event per
// sync round, convergence failure, estimation timeout, corruption and
// release, and its Recorder accumulates the run's counters.
func WithObserver(o *Observer) RunOption {
	return func(s *Scenario) { s.Observer = o }
}

// WithEventSink streams the run's events to sink (creating a private
// Observer when none was attached) — the convenience path for "just give me
// the events", e.g. WithEventSink(NewJSONLSink(w)).
func WithEventSink(sink EventSink) RunOption {
	return func(s *Scenario) { s.EventSink = sink }
}

// WithTrace streams the run's JSON-lines measurement trace to w, readable
// with the trace package and the tracestat command.
func WithTrace(w io.Writer) RunOption {
	return func(s *Scenario) { s.TraceWriter = w }
}

// WithPeerSampling runs the scenario in sparse-estimation mode: each node
// estimates against a seeded random k-of-n peer subset per round instead of
// the full mesh, cutting estimation traffic from O(n²) to O(n·k) messages
// per round. k must be at least 2f+1 so a sampled round can still trim f
// faulty readings from both sides; the Theorem 5 envelope then holds with n
// read as k (the checker accounts for this automatically). Subsets are drawn
// from the scenario seed, so sampled runs replay bit-for-bit.
func WithPeerSampling(k int) RunOption {
	return func(s *Scenario) { s.SamplePeers = k }
}

// WithShards runs the simulation on a sharded event queue: nodes are
// partitioned across shards whose queues execute concurrently inside
// conservative lookahead windows bounded by the delay model's minimum link
// delay. Observable results are independent of the shard count — n=1 is the
// serial reference — so sharding is purely a wall-clock optimization for
// large n. Requires a delay model with a positive minimum delay
// (network.MinBounder); incompatible with serial-only surfaces (observers,
// tracing, the online checker). See docs/PERFORMANCE.md, "Scaling the
// simulator".
func WithShards(n int) RunOption {
	return func(s *Scenario) { s.Shards = n }
}

// RunScenario executes a simulation. Options apply to a copy of s, so a
// Scenario value can be reused across calls with different observers.
func RunScenario(s Scenario, opts ...RunOption) (*Result, error) {
	for _, opt := range opts {
		opt(&s)
	}
	return scenario.Run(s)
}

// Sweep runs independently-built scenarios, one per seed, concurrently,
// returning results in seed order. When some seeds fail, the successful
// results are still returned (failed seeds leave nil slots) alongside an
// error joining one descriptive error per failed seed.
func Sweep(mk func(seed int64) Scenario, seeds []int64) ([]*Result, error) {
	return scenario.Sweep(mk, seeds)
}

// WorstDeviation returns the sweep result with the largest measured
// deviation, skipping nil slots from failed seeds.
func WorstDeviation(results []*Result) *Result { return scenario.WorstDeviation(results) }

// Measurement types produced by a run.
type (
	// Report condenses a run: worst deviation, discontinuity, clock rates
	// and per-release recovery records.
	Report = metrics.Report
	// Recovery describes how one released processor rejoined.
	Recovery = metrics.Recovery
	// Sample is one measurement instant: biases, the good set, and the
	// good-set deviation.
	Sample = metrics.Sample
)

// Adversary schedule types (Definition 2): a Schedule lists break-ins; it is
// validated to be f-limited with respect to Θ before a run.
type (
	// Schedule is a set of corruptions — the static description of a mobile
	// adversary strategy.
	Schedule = adversary.Schedule
	// Corruption is one break-in window with the behavior driving the
	// victim.
	Corruption = adversary.Corruption
	// Behavior scripts a corrupted processor.
	Behavior = protocol.Behavior
)

// RotateAdversary builds an f-limited rotating corruption schedule over all
// n processors: the unbounded-total-faults workload of the paper.
func RotateAdversary(n, f int, start Time, dwell, theta Duration, events int, mk func(node int) Behavior) Schedule {
	return adversary.Rotate(n, f, start, dwell, theta, events, mk)
}

// StaticAdversary corrupts a fixed set of nodes for [from, to).
func StaticAdversary(nodes []int, from, to Time, mk func(node int) Behavior) Schedule {
	return adversary.Static(nodes, from, to, mk)
}

// Byzantine behaviors for corrupted processors.
type (
	// Crash keeps the victim silent.
	Crash = adversary.Crash
	// ClockSmash rewrites the victim's clock by Offset on break-in.
	ClockSmash = adversary.ClockSmash
	// RandomLiar answers with uniformly noisy clock readings.
	RandomLiar = adversary.RandomLiar
	// ConsistentLiar reports real time plus a fixed offset to everyone.
	ConsistentLiar = adversary.ConsistentLiar
	// SplitBrain reports different clocks to different halves of the
	// cluster — the attack that exhibits the n ≥ 3f+1 threshold.
	SplitBrain = adversary.SplitBrain
)

// Network topologies and delay models.
type (
	// Topology describes which processors share links.
	Topology = network.Topology
	// DelayModel samples per-message one-way latency.
	DelayModel = network.DelayModel
	// ConstantDelay delivers after a fixed latency.
	ConstantDelay = network.ConstantDelay
	// UniformDelay samples latency uniformly from [Min, Max].
	UniformDelay = network.UniformDelay
	// SpikyDelay adds occasional latency spikes — the workload where
	// min-RTT-of-k estimation pays off.
	SpikyDelay = network.SpikyDelay
)

// NewFullMesh returns the complete topology on n processors (the paper's
// main model).
func NewFullMesh(n int) Topology { return network.NewFullMesh(n) }

// NewTwoCliques builds the §5 counterexample graph on 6f+2 processors.
func NewTwoCliques(f int) Topology { return network.NewTwoCliques(f) }

// NewUniformDelay validates and returns a uniform latency model.
func NewUniformDelay(min, max Duration) UniformDelay {
	return network.NewUniformDelay(min, max)
}

// Builder constructs the protocol node for one processor; Starter is the
// node it returns. Scenarios default to the paper's Sync protocol — set a
// Builder to run a custom or null protocol instead.
type (
	// Builder constructs one processor's protocol node.
	Builder = scenario.Builder
	// BuildContext is what a Builder receives.
	BuildContext = scenario.BuildContext
	// Starter is a protocol node ready to run.
	Starter = scenario.Starter
)

// ---------------------------------------------------------------------------
// Checking & campaigns — machine-checked Theorem 5 invariants
// ---------------------------------------------------------------------------

// Violation is one invariant breach recorded by the online checker: the
// simulated instant, the processor concerned (−1 for whole-good-set
// properties), the invariant name, and the observed value against the bound
// it broke. Runs surface them in Result.Violations.
type Violation = check.Violation

// Invariants the online checker asserts (Violation.Invariant values).
const (
	// InvariantDeviation is Theorem 5(i): good-set deviation ≤ Δ.
	InvariantDeviation = check.InvariantDeviation
	// InvariantStep bounds any single adjustment of a good processor by
	// Δ/2 + ε.
	InvariantStep = check.InvariantStep
	// InvariantAccuracy is the Equation 3 rate envelope over good stretches.
	InvariantAccuracy = check.InvariantAccuracy
	// InvariantRecovery is the Lemma 7(iii) distance-halving schedule after
	// release.
	InvariantRecovery = check.InvariantRecovery
)

// WithCheck attaches the online invariant checker to the run: every Sync
// round is asserted against the Theorem 5 deviation envelope, the per-step
// discontinuity bound and the accuracy envelope, and every release against
// the Lemma 7(iii) halving schedule. Violations appear in Result.Violations;
// the run itself is not interrupted.
func WithCheck() RunOption {
	return func(s *Scenario) { s.Check = true }
}

// Campaign types: randomized adversary campaigns run thousands of seeded
// simulations, each with a generated f-limited corruption schedule and a
// random delay model, all checked online.
type (
	// CampaignConfig parameterizes a campaign; its zero value (plus Runs) is
	// a LAN-like 7-processor, f=2 setup.
	CampaignConfig = campaign.Config
	// CampaignResult summarizes a campaign: completed runs and failures.
	CampaignResult = campaign.Result
	// CampaignFailure is one failing run: its seed, schedule and violations.
	CampaignFailure = campaign.Failure
	// ShrinkResult is a minimized failing schedule.
	ShrinkResult = campaign.ShrinkResult
	// AdversaryFamily names a scenario-generation family: "delayskew",
	// "churn", "flash", "coldstart", "generic", or a hostile "name!" variant.
	AdversaryFamily = campaign.Family
	// FamilyWeight is one weighted entry of a family mix.
	FamilyWeight = campaign.FamilyWeight
	// FamilyMix is a weighted set of families; CampaignConfig.Families draws
	// each run's scenario from it (seed-keyed, so mixed-campaign failures
	// replay bit-for-bit as single-family runs).
	FamilyMix = campaign.FamilyMix
	// FamilyResult is the per-family breakdown in CampaignResult.PerFamily.
	FamilyResult = campaign.FamilyResult
)

// RunCampaign executes a randomized adversary campaign across cores. Any
// invariant violations are reported per failing seed in the result;
// CampaignConfig.Shrink minimizes a failing schedule to a smallest
// reproducer.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return campaign.Run(cfg)
}

// ParseFamilyMix parses a family-mix spec like "delayskew:2,churn,flash"
// into a FamilyMix for CampaignConfig.Families. Append "!" for a family's
// designed-to-fail hostile variant (e.g. "churn!").
func ParseFamilyMix(spec string) (FamilyMix, error) {
	return campaign.ParseFamilyMix(spec)
}

// ---------------------------------------------------------------------------
// Observability — events, counters, sinks
// ---------------------------------------------------------------------------

// Observability types shared by the simulator and the live node. An
// Observer fans Events out to sinks and keeps a Recorder of counters; the
// same Observer type attaches to simulations (WithObserver) and to live
// nodes (OpsConfig.Observer).
type (
	// Observer receives a run's event stream and tallies its counters.
	Observer = obs.Observer
	// Event is one structured observation: a timestamp, a kind, the node it
	// concerns, and numeric fields (e.g. the round's adjustment).
	Event = obs.Event
	// EventSink consumes Events; implementations include Ring, JSONL and
	// EventSinkFunc.
	EventSink = obs.Sink
	// EventSinkFunc adapts a function to an EventSink.
	EventSinkFunc = obs.SinkFunc
	// Ring is a fixed-capacity in-memory sink retaining the newest events.
	Ring = obs.Ring
	// JSONL writes events as JSON lines consumable by the trace package
	// and the tracestat command.
	JSONL = obs.JSONL
	// Recorder is a set of atomic counters and gauges describing protocol
	// progress (rounds, messages, authentication failures, adjustments).
	Recorder = obs.Recorder
)

// Event kinds emitted by the simulator and the live node.
const (
	EventRound    = obs.KindRound    // a completed sync round (field "delta")
	EventSkip     = obs.KindSkip     // a round whose convergence failed
	EventCorrupt  = obs.KindCorrupt  // adversary break-in (simulation)
	EventRelease  = obs.KindRelease  // adversary release (simulation)
	EventAuthFail = obs.KindAuthFail // HMAC rejection (live node)
	EventTimeout  = obs.KindTimeout  // estimation timeout (field "peer")
)

// NewObserver returns an Observer fanning events out to the given sinks.
func NewObserver(sinks ...EventSink) *Observer { return obs.NewObserver(sinks...) }

// NewRing returns an in-memory sink retaining the newest capacity events.
func NewRing(capacity int) *Ring { return obs.NewRing(capacity) }

// NewJSONLSink returns a sink writing one JSON object per event to w. It
// also implements SpanSink, so one JSONL can record a run's full stream:
// pass it to both WithEventSink and WithSpanSink, and Close it when done to
// guarantee the file ends on a complete line.
func NewJSONLSink(w io.Writer) *JSONL { return obs.NewJSONL(w) }

// Causal round tracing: with a SpanSink attached, every Sync execution emits
// a round span with per-peer estimation, reading and adjustment child spans,
// linked by span/parent IDs. Tracing costs nothing when no SpanSink is
// attached (one atomic check per round).
type (
	// Span is one completed traced operation in a round's causal tree.
	Span = obs.Span
	// SpanID identifies a span; 0 means "no span".
	SpanID = obs.SpanID
	// SpanSink consumes completed spans; implementations include SpanRing,
	// JSONL and SpanSinkFunc.
	SpanSink = obs.SpanSink
	// SpanSinkFunc adapts a function to a SpanSink.
	SpanSinkFunc = obs.SpanSinkFunc
	// SpanRing is a fixed-capacity in-memory span sink.
	SpanRing = obs.SpanRing
	// SpanField is one key→value entry of a span's numeric payload.
	SpanField = obs.Field
	// SpanFields is a span's numeric payload, stored inline so emitting a
	// fully traced round allocates nothing. Build with SpanF and chained F
	// calls; read with Get/Lookup/Each/Map.
	SpanFields = obs.Fields
	// Histogram is a fixed-layout lock-free histogram of seconds; all
	// Histograms share one log-spaced bucket layout and are mergeable.
	// Recorder embeds four (RTT, estimation error, adjustment magnitude,
	// good-set deviation), exposed on /metrics with p50/p95/p99 gauges.
	Histogram = obs.Histogram
)

// Span names appearing in a round's causal tree.
const (
	SpanRound    = obs.SpanRound    // one Sync execution
	SpanEstimate = obs.SpanEstimate // one peer estimation (send → reply/timeout)
	SpanReading  = obs.SpanReading  // one reading's convergence verdict
	SpanAdjust   = obs.SpanAdjust   // the clock adjustment
)

// EventSample is the periodic measurement event: per-node biases and the
// good-set deviation (fields Biases, Deviation) — what the dashboard and
// tracestat plots consume.
const EventSample = obs.KindSample

// WithSpanSink enables causal round tracing for the run, streaming completed
// spans to sink (creating a private Observer when none was attached).
func WithSpanSink(sink SpanSink) RunOption {
	return func(s *Scenario) { s.SpanSink = sink }
}

// NewSpanRing returns an in-memory sink retaining the newest capacity spans.
func NewSpanRing(capacity int) *SpanRing { return obs.NewSpanRing(capacity) }

// SpanF starts a span field set with one entry; chain further entries with
// the returned value's F method: SpanF("peer", 3).F("rtt", 0.04).
func SpanF(key string, val float64) SpanFields { return obs.F(key, val) }

// HistogramBounds returns the shared histogram bucket edges in seconds,
// ascending; see obs.HistBucketRatio for the quantile accuracy this layout
// buys.
func HistogramBounds() []float64 { return obs.HistogramBounds() }

// ---------------------------------------------------------------------------
// Deployment — live UDP nodes
// ---------------------------------------------------------------------------

// NodeConfig configures a real-time UDP node: the wire/protocol settings
// every cluster member must agree on, plus per-deployment Ops (metrics
// endpoint, event observer, logging).
type NodeConfig = livenet.Config

// OpsConfig is the operational section of a NodeConfig: metrics/pprof HTTP
// address, event observer, and logging.
type OpsConfig = livenet.OpsConfig

// Node is a deployable Sync participant on a real network. While running it
// exports per-node counters (Node.Metrics) and, when Ops.MetricsAddr is
// set, serves /metrics, /status and /debug/pprof over HTTP.
type Node = livenet.Node

// NodeOption customizes one NewNode call without mutating the caller's
// NodeConfig value — the deployment-side options (serving endpoints,
// alternate transports) that the cluster-wide protocol settings in
// NodeConfig deliberately exclude.
type NodeOption func(*NodeConfig)

// NewNode validates cfg, applies the options, opens the node's sockets and
// prepares it to Run.
func NewNode(cfg NodeConfig, opts ...NodeOption) (*Node, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return livenet.New(cfg)
}

// Cluster runs n live nodes in one process on loopback sockets.
type Cluster = livenet.Cluster

// ClusterConfig parameterizes an in-process live cluster.
type ClusterConfig = livenet.ClusterConfig

// NewCluster opens sockets for all nodes and wires their peer tables.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return livenet.NewCluster(cfg)
}

// ---------------------------------------------------------------------------
// Serving — client-facing time reads
// ---------------------------------------------------------------------------

// Reading is one observation of a synchronized clock: the best-estimate
// time, an uncertainty half-width, and the sync epoch it derives from. The
// contract is interval-valued: the true cluster time lies within
// [Time−Uncertainty, Time+Uncertainty] while the node's Theorem 5 envelope
// holds. Produce one with Node.Read (wait-free, allocation-free) or
// Client.Read/Client.Query.
type Reading = livenet.Reading

// TimeSource is anything producing Readings — a local Node or a remote
// Client. Code consuming synchronized time should depend on this interface.
type TimeSource = livenet.TimeSource

// ServeConfig configures a node's dedicated time-serving endpoint. A node
// always answers serve queries on its sync socket; a ServeConfig adds a
// separate endpoint so client load never contends with protocol traffic.
type ServeConfig = livenet.ServeConfig

// WithServeAddr gives the node a dedicated UDP time-serving endpoint bound
// to addr (host:port; port 0 picks a free port, read it back with
// Node.ServeAddr).
func WithServeAddr(addr string) NodeOption {
	return func(c *NodeConfig) { c.Serve.Addr = addr }
}

// WithServeTransport gives the node a dedicated time-serving endpoint on an
// already-open transport — a MemNetwork endpoint in tests, or a custom
// datagram implementation.
func WithServeTransport(tr Transport) NodeOption {
	return func(c *NodeConfig) { c.Serve.Transport = tr }
}

// Client queries a node's time service over UDP (or any Transport) using the
// four-timestamp exchange and maintains a local disciplined snapshot, so
// Read interpolates between queries without network traffic.
type Client = livenet.Client

// ClientConfig parameterizes a Client: the server address, an optional
// custom transport, and the per-query timeout.
type ClientConfig = livenet.ClientConfig

// NewTimeClient opens a client of the time service at cfg.Server.
func NewTimeClient(cfg ClientConfig) (*Client, error) { return livenet.NewClient(cfg) }

// Transport is the datagram abstraction the live node, the serve path and
// the client all run over: UDP in production, MemNetwork in tests, or a
// fault-injecting wrapper in chaos runs.
type Transport = livenet.Transport

// MemNetwork is an in-process datagram fabric for tests and benchmarks:
// endpoints are addressed "mem://<id>" and delivery is a channel hop,
// optionally through a simulated delay model.
type MemNetwork = livenet.MemNetwork

// MemNetworkConfig tunes a MemNetwork (seed, delay model, time scale).
type MemNetworkConfig = livenet.MemNetworkConfig

// NewMemNetwork builds an empty in-process datagram fabric.
func NewMemNetwork(cfg MemNetworkConfig) *MemNetwork { return livenet.NewMemNetwork(cfg) }

// MemAddr returns the MemNetwork address of node id ("mem://<id>").
func MemAddr(id int) string { return livenet.MemAddr(id) }
