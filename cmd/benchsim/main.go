// Command benchsim runs the simulation-engine benchmarks (internal/simbench)
// standalone via testing.Benchmark and writes the results as JSON — the
// committed baseline BENCH_sim.json at the repository root records what a
// simulated cluster-minute costs on the reference machine.
//
// Usage:
//
//	benchsim                    # print JSON to stdout
//	benchsim -o BENCH_sim.json  # write a specific file
//	benchsim -update            # regenerate the committed baseline
//	                            # (BENCH_sim.json in the working directory),
//	                            # like tracestat -update
//	benchsim -bench ClusterMinute/n256 -cpuprofile cpu.out -memprofile mem.out
//	                            # profile one benchmark; inspect with
//	                            # `go tool pprof` (see docs/PERFORMANCE.md)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"clocksync/internal/simbench"
)

// result is one benchmark's record in the JSON baseline.
type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	update := flag.Bool("update", false, "regenerate the committed baseline BENCH_sim.json")
	match := flag.String("bench", "", "run only benchmarks whose name contains this substring")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected benchmarks here")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the selected benchmarks here")
	flag.Parse()
	if *update {
		*out = "BENCH_sim.json"
	}

	// The two large rows run the planet-scale regime: fixed fault budget
	// f=10, estimation sampled at k=31 ≥ 2f+1 peers per round, event queue
	// sharded 8 ways. Serial full-mesh simulation would be quadratically
	// unaffordable at these sizes.
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SimulatorEvents", simbench.SimulatorEvents},
		{"ConvergenceFunction", simbench.ConvergenceFunction},
		{"ClusterMinute/n7", func(b *testing.B) { simbench.ClusterMinute(b, 7) }},
		{"ClusterMinute/n16", func(b *testing.B) { simbench.ClusterMinute(b, 16) }},
		{"ClusterMinute/n64", func(b *testing.B) { simbench.ClusterMinute(b, 64) }},
		{"ClusterMinute/n256", func(b *testing.B) { simbench.ClusterMinute(b, 256) }},
		{"ClusterMinute/n1024", func(b *testing.B) { simbench.ClusterMinuteLarge(b, 1024, 10, 31, 8) }},
		{"ClusterMinute/n4096", func(b *testing.B) { simbench.ClusterMinuteLarge(b, 4096, 10, 31, 8) }},
		{"CampaignThroughput", simbench.CampaignThroughput},
	}
	if *cpuprofile != "" {
		fh, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var results []result
	for _, bm := range benches {
		if *match != "" && !strings.Contains(bm.name, *match) {
			continue
		}
		r := testing.Benchmark(bm.fn)
		results = append(results, result{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-20s %14.2f ns/op %10d B/op %8d allocs/op\n",
			bm.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	if *memprofile != "" {
		fh, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		runtime.GC() // settle live heap so alloc_space dominates the profile
		if err := pprof.WriteHeapProfile(fh); err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
}
