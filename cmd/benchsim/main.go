// Command benchsim runs the simulation-engine benchmarks (internal/simbench)
// standalone via testing.Benchmark and writes the results as JSON — the
// committed baseline BENCH_sim.json at the repository root records what a
// simulated cluster-minute costs on the reference machine.
//
// Usage:
//
//	benchsim                    # print JSON to stdout
//	benchsim -o BENCH_sim.json  # write a specific file
//	benchsim -update            # regenerate the committed baseline
//	                            # (BENCH_sim.json in the working directory),
//	                            # like tracestat -update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"clocksync/internal/simbench"
)

// result is one benchmark's record in the JSON baseline.
type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	update := flag.Bool("update", false, "regenerate the committed baseline BENCH_sim.json")
	flag.Parse()
	if *update {
		*out = "BENCH_sim.json"
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SimulatorEvents", simbench.SimulatorEvents},
		{"ConvergenceFunction", simbench.ConvergenceFunction},
		{"ClusterMinute/n7", func(b *testing.B) { simbench.ClusterMinute(b, 7) }},
		{"ClusterMinute/n16", func(b *testing.B) { simbench.ClusterMinute(b, 16) }},
		{"ClusterMinute/n64", func(b *testing.B) { simbench.ClusterMinute(b, 64) }},
		{"ClusterMinute/n256", func(b *testing.B) { simbench.ClusterMinute(b, 256) }},
		{"CampaignThroughput", simbench.CampaignThroughput},
	}
	var results []result
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		results = append(results, result{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-20s %14.2f ns/op %10d B/op %8d allocs/op\n",
			bm.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
}
