package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `{"at":0,"kind":"sample","biases":[0,0.1],"deviation":0.1}
{"at":1,"kind":"adjust","node":1,"delta":-0.05}
{"at":2,"kind":"corrupt","node":0}
{"at":5,"kind":"release","node":0}
`

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4 events", "2 nodes", "corruptions: 1", "node  0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(sampleTrace), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adjustments: 1 total") {
		t.Errorf("stdin output wrong:\n%s", out.String())
	}
}

func TestRunWithPlot(t *testing.T) {
	multi := `{"at":0,"kind":"sample","biases":[0,0.1],"deviation":0.1}
{"at":1,"kind":"sample","biases":[0.02,0.08],"deviation":0.06}
{"at":2,"kind":"sample","biases":[0.03,0.05],"deviation":0.02}
`
	var out bytes.Buffer
	if err := run([]string{"-plot", "-"}, strings.NewReader(multi), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deviation over time", "bias trajectories", "real time (s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plot output missing %q:\n%s", want, out.String())
		}
	}
	// A trace with no samples cannot be plotted.
	if err := run([]string{"-plot", "-"},
		strings.NewReader(`{"at":1,"kind":"adjust","node":0,"delta":1}`+"\n"), &out); err == nil {
		t.Error("plot of sample-less trace accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, nil, nil); err == nil {
		t.Error("missing arg accepted")
	}
	if err := run([]string{"a", "b"}, nil, nil); err == nil {
		t.Error("extra args accepted")
	}
	if err := run([]string{"/does/not/exist.jsonl"}, nil, nil); err == nil {
		t.Error("missing file accepted")
	}
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(""), &out); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run([]string{"-"}, strings.NewReader("not json\n"), &out); err == nil {
		t.Error("garbage accepted")
	}
}
