// Command tracestat summarizes a JSON-lines trace produced by a simulation
// run (syncsim -trace-out, or scenario.Scenario.TraceWriter): adjustment
// distribution, deviation profile, span and histogram summaries, and the
// corruption timeline. With -plot it also renders the per-node bias
// trajectories and the deviation series as ASCII charts; with -perfetto it
// exports the span records as a Chrome/Perfetto trace-event JSON file.
//
// Usage:
//
//	syncsim -n 7 -f 2 -rotate -duration 30m -trace-out run.jsonl -trace-spans
//	tracestat run.jsonl
//	tracestat -plot run.jsonl
//	tracestat -perfetto run.json run.jsonl   # open in ui.perfetto.dev
//	tracestat -conform -conform-f 2 run.jsonl   # spec refinement check
//	tracestat -          # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clocksync/internal/asciiplot"
	"clocksync/internal/conformance"
	"clocksync/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	plot := fs.Bool("plot", false, "render ASCII charts of the sample series")
	perfetto := fs.String("perfetto", "", "write a Chrome/Perfetto trace-event JSON file here")
	conform := fs.Bool("conform", false, "replay the trace through the abstract Sync-round spec (refinement check; see docs/CONFORMANCE.md)")
	conformF := fs.Int("conform-f", 2, "fault bound f the traced run was configured with (trimming depth)")
	conformWayOff := fs.Float64("conform-wayoff", 0, "WayOff threshold in trace time units (0 = branch decision unpinned)")
	conformTol := fs.Float64("conform-tol", 0, "numeric tolerance for matching recorded adjustments (0 = default 1e-6)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: tracestat [-plot] [-perfetto out.json] [-conform -conform-f F] <file.jsonl | ->")
	}
	var r io.Reader
	if fs.Arg(0) == "-" {
		r = stdin
	} else {
		fh, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer fh.Close()
		r = fh
	}
	events, err := trace.Read(r)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("trace is empty")
	}
	if _, err := io.WriteString(stdout, trace.Summarize(events).String()); err != nil {
		return err
	}
	if *perfetto != "" {
		fh, err := os.Create(*perfetto)
		if err != nil {
			return err
		}
		if err := trace.WritePerfetto(fh, events); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "perfetto trace written to %s\n", *perfetto)
	}
	if *plot {
		if err := writePlots(stdout, events); err != nil {
			return err
		}
	}
	if *conform {
		rep, err := conformance.Check(events, conformance.Config{
			F: *conformF, WayOff: *conformWayOff, Tol: *conformTol,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n%s\n", rep.Summary())
		const limit = 10
		for i, v := range rep.Violations {
			if i == limit {
				fmt.Fprintf(stdout, "  … %d more\n", len(rep.Violations)-limit)
				break
			}
			fmt.Fprintf(stdout, "  %s\n", v.String())
		}
		if !rep.Ok() {
			return fmt.Errorf("trace does not refine the spec: %d violations", len(rep.Violations))
		}
	}
	return nil
}

// writePlots renders the deviation series and per-node bias trajectories
// from the trace's sample events.
func writePlots(w io.Writer, events []trace.Event) error {
	var ts, devs []float64
	biases := map[string][]float64{}
	nodes := 0
	for _, e := range events {
		if e.Kind != trace.KindSample {
			continue
		}
		ts = append(ts, e.At)
		devs = append(devs, e.Deviation)
		if len(e.Biases) > nodes {
			nodes = len(e.Biases)
		}
		for i, b := range e.Biases {
			key := fmt.Sprintf("n%d", i)
			biases[key] = append(biases[key], b)
		}
	}
	if len(ts) == 0 {
		return fmt.Errorf("trace has no sample events to plot")
	}
	if _, err := fmt.Fprintf(w, "\ngood-set deviation over time:\n%s",
		asciiplot.Line(ts, map[string][]float64{"dev": devs},
			asciiplot.Options{Width: 68, Height: 12, XLabel: "real time (s)"})); err != nil {
		return err
	}
	// Plotting every node drowns the chart; cap the per-node view at 5.
	if nodes > 5 {
		trimmed := map[string][]float64{}
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("n%d", i)
			trimmed[key] = biases[key]
		}
		biases = trimmed
		fmt.Fprintf(w, "\n(bias trajectories: first 5 of %d nodes)\n", nodes)
	} else {
		fmt.Fprintf(w, "\nbias trajectories:\n")
	}
	_, err := io.WriteString(w, asciiplot.Line(ts, biases,
		asciiplot.Options{Width: 68, Height: 12, XLabel: "real time (s)"}))
	return err
}
