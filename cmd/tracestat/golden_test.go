package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden summary:
//
//	go test ./cmd/tracestat -run TestSummaryGolden -update
var update = flag.Bool("update", false, "rewrite the golden tracestat summary from current output")

// TestSummaryGolden locks the exact human-facing summary format: any change
// to trace.Summarize or its String rendering shows up as a diff against
// testdata/summary.golden instead of silently reshaping what operators (and
// scripts scraping the output) see.
func TestSummaryGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "sample.jsonl")}, nil, &out); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("summary differs from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.Bytes(), want)
	}
}
