package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden summary:
//
//	go test ./cmd/tracestat -run TestSummaryGolden -update
var update = flag.Bool("update", false, "rewrite the golden tracestat summary from current output")

// TestSummaryGolden locks the exact human-facing summary format: any change
// to trace.Summarize or its String rendering shows up as a diff against
// testdata/summary.golden instead of silently reshaping what operators (and
// scripts scraping the output) see.
func TestSummaryGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "sample.jsonl")}, nil, &out); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("summary differs from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.Bytes(), want)
	}
}

// TestPerfettoGolden locks the Chrome/Perfetto trace-event JSON shape: span
// records must export as complete ("X") events carrying span_id/parent_id
// args, instants as "i" events, with microsecond timestamps — the contract
// ui.perfetto.dev loads.
func TestPerfettoGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	var sum bytes.Buffer
	if err := run([]string{"-perfetto", out, filepath.Join("testdata", "sample.jsonl")}, nil, &sum); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "perfetto.golden")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("perfetto export differs from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
