package main

import (
	"bytes"
	"strings"
	"testing"
)

// conformTrace is a faithful f=1 round in span form: peers at 2±1 and 4±1
// plus the implicit self-estimate give m=3, M=1 and the clamped midpoint
// delta = 0.5.
const conformTrace = `{"at":10,"kind":"span","node":0,"name":"round","span":1,"dur":1,"fields":{"delta":0.5,"wayoff":0}}
{"at":10.1,"kind":"span","node":0,"name":"estimate","span":2,"parent":1,"dur":0.2,"fields":{"peer":1,"d":2,"a":1,"ok":1}}
{"at":10.1,"kind":"span","node":0,"name":"estimate","span":3,"parent":1,"dur":0.2,"fields":{"peer":2,"d":4,"a":1,"ok":1}}
`

// TestRunConformClean: a faithful trace passes -conform and the summary
// reports what was replayed.
func TestRunConformClean(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-conform", "-conform-f", "1", "-conform-wayoff", "100", "-"},
		strings.NewReader(conformTrace), &out)
	if err != nil {
		t.Fatalf("clean trace failed refinement: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "conformance: 1 rounds") {
		t.Errorf("missing conformance summary:\n%s", out.String())
	}
}

// TestRunConformViolation: the clamp-dropped delta ((m+M)/2 = 2 instead of
// 0.5) must make tracestat exit non-zero and print the offending transition.
func TestRunConformViolation(t *testing.T) {
	bad := strings.Replace(conformTrace, `"delta":0.5`, `"delta":2`, 1)
	var out bytes.Buffer
	err := run([]string{"-conform", "-conform-f", "1", "-conform-wayoff", "100", "-"},
		strings.NewReader(bad), &out)
	if err == nil {
		t.Fatalf("clamp-dropped trace passed refinement:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ApplyAdjust") {
		t.Errorf("violation output missing the spec action:\n%s", out.String())
	}
}

// TestRunConformEventMode: a span-less trace still gets the structural
// event-mode checks.
func TestRunConformEventMode(t *testing.T) {
	evs := `{"at":1,"kind":"round","node":0,"fields":{"delta":60,"wayoff":0}}
`
	var out bytes.Buffer
	err := run([]string{"-conform", "-conform-f", "1", "-conform-wayoff", "100", "-"},
		strings.NewReader(evs), &out)
	if err == nil {
		t.Fatalf("clamp-violating event trace passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "event mode") {
		t.Errorf("summary should report event mode:\n%s", out.String())
	}
}
