// Command synccampaign runs a randomized adversary campaign: thousands of
// seeded simulations, each with a generated f-limited corruption schedule
// and a random delay model, every one checked online against the Theorem 5
// bounds. It exits non-zero if any run violates an invariant, prints each
// failing seed with its first violations, and can shrink failures to minimal
// reproducers.
//
// Usage examples:
//
//	synccampaign -runs 1000 -seed 1
//	synccampaign -runs 200 -seed 1 -shrink -jsonl violations.jsonl
//	synccampaign -runs 100 -conform         # + spec refinement over every run's spans
//	synccampaign -runs 50 -mutate -shrink   # loosened protocol: violations expected
//	synccampaign -runs 250 -family delayskew,churn,flash,coldstart   # weighted mixes: delayskew:2,churn
//	synccampaign -runs 50 -family churn!    # over-budget variant: violations expected
//	synccampaign -runs 50 -family flash -mutate-recovery   # halving disabled: recovery violations expected
//
// See the "Adversary families" section of EXPERIMENTS.md for what each
// family probes and the E22–E25 tables it reproduces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"clocksync/internal/campaign"
	"clocksync/internal/check"
	"clocksync/internal/cliutil"
	"clocksync/internal/core"
	"clocksync/internal/obs"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "synccampaign:", err)
		os.Exit(1)
	}
}

// violationRecord is one JSONL line: the violation plus the seed that
// produced it, enough to replay with -runs 1 -seed <seed>.
type violationRecord struct {
	Seed   int64  `json:"seed"`
	Family string `json:"family,omitempty"`
	check.Violation
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synccampaign", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		runs     = fs.Int("runs", 100, "number of simulations")
		seed     = fs.Int64("seed", 1, "base seed; run i uses seed+i")
		n        = fs.Int("n", 7, "number of processors")
		f        = fs.Int("f", 2, "per-period fault budget (n ≥ 3f+1)")
		duration = fs.Duration("duration", 30*time.Minute, "simulated real time per run")
		theta    = fs.Duration("theta", 5*time.Minute, "adversary period Θ")
		delta    = fs.Duration("delta", 50*time.Millisecond, "message delay bound δ")
		syncInt  = fs.Duration("syncint", 10*time.Second, "local time between Syncs")
		rho      = fs.Float64("rho", 1e-4, "hardware drift bound ρ")
		drop     = fs.Float64("drop", 0, "max message drop probability (out-of-model; drawn per run)")
		corrupts = fs.Int("corruptions", 4, "max corruptions per generated schedule")
		samplek  = fs.Int("sample-peers", 0, "estimate against a seeded random k-of-n peer subset per round (0 = full mesh; k must be ≥ 2f+1)")
		workers  = fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		shrink   = fs.Bool("shrink", false, "minimize each failing schedule to a smallest reproducer")
		conform  = fs.Bool("conform", false, "replay every run's span stream through the abstract Sync-round spec (refinement check; see docs/CONFORMANCE.md)")
		family   = fs.String("family", "", "adversary family mix, comma-separated and optionally weighted (e.g. delayskew:2,churn,flash,coldstart); families: generic, delayskew, churn, flash, coldstart; suffix ! for a designed-to-fail variant (churn!, delayskew!)")
		mutate   = fs.Bool("mutate", false, "loosen the convergence function (no trimming); violations are expected — a checker self-test")
		mutateRc = fs.Bool("mutate-recovery", false, "disable Sync on scheduled victims, so released clocks never halve their distance; Lemma 7(iii) recovery violations are expected — a checker self-test")
		jsonlOut = fs.String("jsonl", "", "append one JSON line per violation to this file")
		traceSp  = fs.String("trace-spans", "", "replay the first failing seed with full event+span tracing into this JSONL file (inspect with tracestat, export with tracestat -perfetto)")
		metrics  = cliutil.AddrVar(fs, "metrics-addr", "", "serve /debug/pprof on this HTTP address while the campaign runs (use host:0 for an OS port)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samplek > 0 && *samplek < 2*(*f)+1 {
		return fmt.Errorf("-sample-peers %d < 2f+1 = %d: a sampled round could not trim f faulty readings from both sides", *samplek, 2*(*f)+1)
	}

	if *metrics != "" {
		// Long campaigns saturate every core for minutes; a pprof endpoint
		// is how a stuck or slow one gets diagnosed without restarting it.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		mux := obs.NewMux(func(w http.ResponseWriter) error {
			_, err := io.WriteString(w, "# synccampaign exposes no counters; this endpoint exists for /debug/pprof\n")
			return err
		})
		bound, err := obs.Serve(ctx, nil, *metrics, mux)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "pprof             http://%s/debug/pprof\n", bound)
	}

	cfg := campaign.Config{
		N:              *n,
		F:              *f,
		Runs:           *runs,
		Seed:           *seed,
		Duration:       simtime.Duration((*duration).Seconds()),
		Theta:          simtime.Duration((*theta).Seconds()),
		Delta:          simtime.Duration((*delta).Seconds()),
		SyncInt:        simtime.Duration((*syncInt).Seconds()),
		Rho:            *rho,
		DropProb:       *drop,
		MaxCorruptions: *corrupts,
		Workers:        *workers,
		Conform:        *conform,
		SamplePeers:    *samplek,
	}
	if *family != "" {
		mix, err := campaign.ParseFamilyMix(*family)
		if err != nil {
			return err
		}
		cfg.Families = mix
	}
	if *mutate {
		cfg.Mutate = func(c *core.Config, _ scenario.BuildContext) { c.F = 0 }
	}
	if *mutateRc {
		prev := cfg.Mutate
		cfg.Mutate = func(c *core.Config, ctx scenario.BuildContext) {
			if prev != nil {
				prev(c, ctx)
			}
			campaign.DisableVictimRecovery(c, ctx)
		}
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "campaign          %d runs (n=%d, f=%d, base seed %d) in %v\n",
		res.Runs, *n, *f, *seed, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "checked           deviation Δ, discontinuity, accuracy, recovery halving\n")
	fmt.Fprintf(stdout, "result            %d completed, %d failing seeds, %d violations\n",
		res.Completed, len(res.Failures), res.TotalViolations)
	for _, fr := range res.PerFamily {
		fmt.Fprintf(stdout, "family            %-12s %d runs, %d failing, %d violations\n",
			fr.Family, fr.Runs, fr.Failures, fr.Violations)
	}
	if *conform {
		fmt.Fprintf(stdout, "conformance       %d runs refined against the spec, %d rounds replayed, %d refinement violations\n",
			res.Refined, res.RefinedRounds, res.ConformViolations)
	}

	if *jsonlOut != "" && len(res.Failures) > 0 {
		if err := writeJSONL(*jsonlOut, res.Failures); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "violations        appended to %s\n", *jsonlOut)
	}

	for _, fail := range res.Failures {
		fam := fail.Family
		if fam == "" {
			fam = "generic"
		}
		// One self-contained line per failure: family + seed make the run
		// reproducible without the rest of the log.
		fmt.Fprintf(stdout, "\nseed %d family %s: %d violations under %d corruptions (replay: -runs 1 -seed %d -family %s)\n",
			fail.Seed, fam, len(fail.Violations)+len(fail.Conform), len(fail.Schedule.Corruptions),
			fail.Seed, fam)
		printViolations(stdout, fail.Violations, 3)
		for i, v := range fail.Conform {
			if i == 3 {
				fmt.Fprintf(stdout, "  … %d more refinement violations\n", len(fail.Conform)-3)
				break
			}
			fmt.Fprintf(stdout, "  refinement: %s\n", v.String())
		}
		if *shrink {
			sr := cfg.Shrink(fail.Seed, fail.Schedule, 0)
			if len(sr.Violations) == 0 {
				fmt.Fprintf(stdout, "  shrink: did not reproduce within %d runs\n", sr.Runs)
				continue
			}
			fmt.Fprintf(stdout, "  shrunk to %d corruptions in %d runs:\n",
				len(sr.Schedule.Corruptions), sr.Runs)
			for _, c := range sr.Schedule.Corruptions {
				fmt.Fprintf(stdout, "    node %d [%v, %v] %#v\n", c.Node, c.From, c.To, c.Behavior)
			}
			printViolations(stdout, sr.Violations, 3)
		}
	}

	if *traceSp != "" && len(res.Failures) > 0 {
		if err := replayWithTrace(cfg, res.Failures[0].Seed, *traceSp); err != nil {
			return fmt.Errorf("replaying seed %d with tracing: %w", res.Failures[0].Seed, err)
		}
		fmt.Fprintf(stdout, "trace             seed %d replayed with spans into %s\n",
			res.Failures[0].Seed, *traceSp)
	}

	if res.TotalViolations > 0 || res.ConformViolations > 0 {
		return fmt.Errorf("%d invariant + %d refinement violations across %d failing seeds",
			res.TotalViolations, res.ConformViolations, len(res.Failures))
	}
	return nil
}

// replayWithTrace re-runs one failing seed bit-for-bit (Config.Scenario is
// deterministic in the seed) with the full event and causal-span stream
// recorded as JSON lines, so a violating round can be followed down to the
// peer estimations that fed its convergence function.
func replayWithTrace(cfg campaign.Config, seed int64, path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONL(fh)
	s := cfg.Scenario(seed)
	s.EventSink = sink
	s.SpanSink = sink
	_, runErr := scenario.Run(s)
	if cerr := sink.Close(); runErr == nil {
		runErr = cerr
	}
	if cerr := fh.Close(); runErr == nil {
		runErr = cerr
	}
	return runErr
}

// printViolations prints up to limit violations, then an ellipsis.
func printViolations(w io.Writer, vs []check.Violation, limit int) {
	for i, v := range vs {
		if i == limit {
			fmt.Fprintf(w, "  … %d more\n", len(vs)-limit)
			return
		}
		fmt.Fprintf(w, "  τ=%v node=%d %s: observed %v > bound %v (%s)\n",
			v.At, v.Node, v.Invariant, v.Observed, v.Bound, v.Detail)
	}
}

// writeJSONL appends one record per violation to path.
func writeJSONL(path string, failures []campaign.Failure) error {
	fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	enc := json.NewEncoder(fh)
	for _, f := range failures {
		for _, v := range f.Violations {
			if err := enc.Encode(violationRecord{Seed: f.Seed, Family: f.Family, Violation: v}); err != nil {
				return err
			}
		}
	}
	return nil
}
