package main

import (
	"strings"
	"testing"
)

// TestConformCampaignClean: the honest protocol refines the spec across a
// small campaign and the summary reports how much was replayed.
func TestConformCampaignClean(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-runs", "4", "-seed", "1", "-duration", "10m", "-conform"}, &out)
	if err != nil {
		t.Fatalf("honest conform campaign failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "4 runs refined against the spec") {
		t.Fatalf("summary missing conformance line:\n%s", out.String())
	}
	if strings.Contains(out.String(), " 0 rounds replayed") {
		t.Fatalf("refinement replayed zero rounds:\n%s", out.String())
	}
}

// TestConformCampaignCatchesMutation: -mutate drops the trimming, so the
// recorded adjustments diverge from the spec's arithmetic — the run must
// exit non-zero with refinement violations printed.
func TestConformCampaignCatchesMutation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-runs", "4", "-seed", "1", "-duration", "10m", "-conform", "-mutate"}, &out)
	if err == nil {
		t.Fatalf("mutated conform campaign exited clean:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "refinement") {
		t.Fatalf("error does not mention refinement: %v", err)
	}
	if !strings.Contains(out.String(), "refinement:") {
		t.Fatalf("no refinement violations printed:\n%s", out.String())
	}
}
