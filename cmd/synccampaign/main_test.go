package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHonestCampaignExitsClean(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-runs", "8", "-seed", "1", "-duration", "15m"}, &out)
	if err != nil {
		t.Fatalf("honest campaign failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failing seeds") {
		t.Fatalf("summary missing clean verdict:\n%s", out.String())
	}
}

func TestMutateCampaignFailsAndWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "violations.jsonl")
	var out strings.Builder
	err := run([]string{"-runs", "8", "-seed", "1", "-mutate", "-shrink", "-jsonl", path}, &out)
	if err == nil {
		t.Fatalf("mutated campaign exited clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shrunk to") {
		t.Fatalf("no shrink output:\n%s", out.String())
	}

	fh, ferr := os.Open(path)
	if ferr != nil {
		t.Fatalf("violations file: %v", ferr)
	}
	defer fh.Close()
	lines := 0
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		var rec struct {
			Seed      int64   `json:"seed"`
			At        float64 `json:"at"`
			Invariant string  `json:"invariant"`
			Observed  float64 `json:"observed"`
			Bound     float64 `json:"bound"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines+1, err)
		}
		if rec.Invariant == "" || rec.Observed <= rec.Bound {
			t.Fatalf("line %d is not a violation record: %s", lines+1, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no violation records written")
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
