// Command syncnode runs one live clock-synchronization node over UDP — the
// deployable artifact of this repository. A cluster of syncnodes keeps its
// members' clocks synchronized under the paper's guarantees, with
// HMAC-authenticated links.
//
// Usage (three-node cluster on one host):
//
//	syncnode -id 0 -listen 127.0.0.1:9000 -peers 1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003 -f 1 -key secret
//	syncnode -id 1 -listen 127.0.0.1:9001 -peers 0=127.0.0.1:9000,2=127.0.0.1:9002,3=127.0.0.1:9003 -f 1 -key secret
//	...
//
// Each node periodically prints its offset from the host clock; -offset and
// -drift-ppm synthesize a bad local clock for demonstrations, and
// -transport faultudp with the -fault-* knobs degrades the node's own
// outbound traffic (seeded drops, duplication, reordering, extra delay)
// for soak-testing the retry and peer-health machinery. -serve-addr opens a
// dedicated UDP time-service endpoint for clients (see docs/SERVING.md and
// cmd/syncload). See docs/LIVENET.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/cliutil"
	"clocksync/internal/livenet"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "syncnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this node's identity")
		listen   = cliutil.AddrVar(flag.CommandLine, "listen", "127.0.0.1:9000", "UDP listen address")
		peersArg = flag.String("peers", "", "comma-separated peer list id=host:port,...")
		f        = flag.Int("f", 1, "per-period fault budget (n ≥ 3f+1)")
		syncInt  = flag.Duration("syncint", 2*time.Second, "wall time between Syncs")
		maxWait  = flag.Duration("maxwait", 500*time.Millisecond, "estimation timeout")
		wayOff   = flag.Duration("wayoff", 5*time.Second, "own-clock rejection threshold")
		key      = flag.String("key", "", "shared HMAC key (empty disables authentication)")
		offset   = flag.Duration("offset", 0, "simulated initial clock offset")
		drift    = flag.Float64("drift-ppm", 0, "simulated clock drift in ppm")
		report   = flag.Duration("report", 5*time.Second, "offset report interval (0 = quiet)")
		status   = cliutil.AddrVar(flag.CommandLine, "status", "", "HTTP address serving GET /status (empty = off)")
		metrics  = cliutil.AddrVar(flag.CommandLine, "metrics-addr", "", "HTTP address serving /metrics, /status and /debug/pprof (empty = off)")
		serve    = cliutil.AddrVar(flag.CommandLine, "serve-addr", "", "dedicated UDP address answering time-service queries (empty = answer on the sync socket only)")
		traceOut = flag.String("trace-out", "", "append the node's observability event stream as JSON lines to this file; readable with tracestat")
		traceSp  = flag.Bool("trace-spans", false, "also record causal spans (round/estimate/adjust) into -trace-out")
		spanBuf  = flag.Int("span-buffer", 0, "keep this many recent spans served on GET /spanz of -metrics-addr and propagate trace context on the wire (0 = off); the surface syncmon joins cross-node spans from")

		transport = flag.String("transport", "udp", `datagram transport: "udp", or "faultudp" to wrap UDP in seeded fault injection (tune with -fault-*)`)
		faultSeed = flag.Int64("fault-seed", 1, "seed of the fault-injecting transport; same seed + traffic = same packet fates")
		faultDrop = flag.Float64("fault-drop", 0, "faultudp: P(outbound message silently lost), in [0,1)")
		faultDup  = flag.Float64("fault-dup", 0, "faultudp: P(outbound message sent twice), in [0,1)")
		faultReo  = flag.Float64("fault-reorder", 0, "faultudp: P(outbound message held past its successor), in [0,1)")
		faultDel  = flag.Duration("fault-delay-max", 0, "faultudp: extra delivery delay, uniform in [0, this)")

		retryAtt  = flag.Int("retry-attempts", 0, "sends per peer per round incl. the first (0 = default 3, 1 disables retries)")
		retryInit = flag.Duration("retry-initial", 0, "delay before the first retransmission (0 = maxwait/8)")
		darkAfter = flag.Int("dark-after", 0, "consecutive silent rounds before a peer is written off as dark (0 = default 3)")
	)
	flag.Parse()

	peers, err := parsePeers(*peersArg, *id)
	if err != nil {
		return err
	}
	if *traceSp && *traceOut == "" {
		return fmt.Errorf("-trace-spans requires -trace-out")
	}
	var observer *obs.Observer
	var closeTrace func()
	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		sink := obs.NewJSONL(fh)
		observer = obs.NewObserver()
		observer.AddSink(sink)
		if *traceSp {
			observer.AddSpanSink(sink)
		}
		// Run returns when the signal context is cancelled, so closing here
		// guarantees the trace ends on a complete line even on SIGINT.
		closeTrace = func() {
			if err := sink.Close(); err != nil {
				log.Printf("node %d: closing trace: %v", *id, err)
			}
			fh.Close()
		}
	}
	logf := log.New(os.Stderr, fmt.Sprintf("node%d ", *id), log.Ltime|log.Lmicroseconds).Printf
	tr, err := buildTransport(transportOpts{
		kind:   *transport,
		listen: *listen,
		id:     *id,
		peers:  peers,
		seed:   *faultSeed,
		chaos: adversary.PacketChaos{
			DropP:    *faultDrop,
			DupP:     *faultDup,
			ReorderP: *faultReo,
			DelayMax: simtime.Duration(faultDel.Seconds()),
		},
		logf: logf,
	})
	if err != nil {
		if closeTrace != nil {
			closeTrace()
		}
		return err
	}
	node, err := livenet.New(livenet.Config{
		ID:          *id,
		F:           *f,
		Listen:      *listen,
		Peers:       peers,
		SyncInt:     *syncInt,
		MaxWait:     *maxWait,
		WayOff:      *wayOff,
		Key:         []byte(*key),
		Transport:   tr,
		Retry:       livenet.RetryConfig{Attempts: *retryAtt, Initial: *retryInit},
		DarkAfter:   *darkAfter,
		SimOffset:   *offset,
		SimDriftPPM: *drift,
		Serve:       livenet.ServeConfig{Addr: *serve},
		Ops: livenet.OpsConfig{
			Observer:   observer,
			SpanBuffer: *spanBuf,
			Logf:       logf,
		},
	})
	if err != nil {
		if tr != nil {
			tr.Close()
		}
		if closeTrace != nil {
			closeTrace()
		}
		return err
	}
	if closeTrace != nil {
		defer closeTrace()
	}
	// Route the fault transport's injection counters onto the node's own
	// recorder so clocksync_faultnet_* shows up on this node's /metrics.
	if ft, ok := tr.(*livenet.FaultTransport); ok {
		ft.SetRecorder(node.Metrics())
	}
	log.Printf("node %d listening on %s with %d peers (f=%d, transport=%s)", *id, node.Addr(), len(peers), *f, *transport)
	if *serve != "" {
		log.Printf("node %d serving time queries on %s", *id, node.ServeAddr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *status != "" {
		addr, err := node.ServeStatus(ctx, *status)
		if err != nil {
			return err
		}
		log.Printf("node %d status endpoint at http://%s/status", *id, addr)
	}
	if *metrics != "" {
		addr, err := node.ServeMetrics(ctx, *metrics)
		if err != nil {
			return err
		}
		log.Printf("node %d observability endpoint at http://%s/metrics (pprof under /debug/pprof)", *id, addr)
	}

	if *report > 0 {
		go func() {
			ticker := time.NewTicker(*report)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					st := node.Status()
					reachable := 0
					for _, p := range st.Peers {
						if p.Replies > 0 && time.Since(p.LastSeen) < 3**syncInt {
							reachable++
						}
					}
					log.Printf("node %d: offset %v after %d syncs, last adjust %v, %d/%d peers reachable",
						*id, st.Offset.Round(time.Microsecond), st.Syncs,
						st.Last.Round(time.Microsecond), reachable, len(st.Peers))
				}
			}
		}()
	}
	return node.Run(ctx)
}

// transportOpts collects everything buildTransport needs, so tests can
// exercise the selection logic without flag plumbing.
type transportOpts struct {
	kind   string
	listen string
	id     int
	peers  map[int]string
	seed   int64
	chaos  adversary.PacketChaos
	logf   func(format string, args ...any)
}

// buildTransport resolves the -transport flag. "udp" returns nil — livenet
// opens its own socket on the listen address — while "faultudp" opens the
// socket here and wraps it in a seeded FaultTransport applying the ambient
// -fault-* chaos to this node's outbound traffic (structured crash/partition
// schedules are a harness feature; the CLI exposes the ambient knobs).
func buildTransport(o transportOpts) (livenet.Transport, error) {
	switch o.kind {
	case "udp":
		if !o.chaos.Zero() {
			return nil, fmt.Errorf("-fault-drop/-dup/-reorder/-delay-max need -transport faultudp")
		}
		return nil, nil
	case "faultudp":
		if err := o.chaos.Validate(); err != nil {
			return nil, err
		}
		udp, err := livenet.NewUDPTransport(o.listen)
		if err != nil {
			return nil, err
		}
		// The schedule speaks node ids; invert the peer table so fault
		// decisions can resolve datagram addresses back to them.
		byAddr := make(map[string]int, len(o.peers))
		for pid, addr := range o.peers {
			byAddr[addr] = pid
		}
		return livenet.NewFaultTransport(udp, livenet.FaultConfig{
			Seed:     o.seed,
			Node:     o.id,
			Schedule: adversary.NetSchedule{Chaos: o.chaos},
			Resolve: func(addr string) int {
				if pid, ok := byAddr[addr]; ok {
					return pid
				}
				return -1
			},
			Logf: o.logf,
		}), nil
	default:
		return nil, fmt.Errorf("unknown -transport %q (want udp or faultudp)", o.kind)
	}
}

// parsePeers parses "1=host:port,2=host:port" into a peer table via the
// shared helper, naming the flag in the empty-list error.
func parsePeers(arg string, self int) (map[int]string, error) {
	peers, err := cliutil.ParsePeers(arg, self)
	if err != nil {
		if strings.TrimSpace(arg) == "" {
			return nil, fmt.Errorf("missing -peers")
		}
		return nil, err
	}
	return peers, nil
}
