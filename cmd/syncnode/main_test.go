package main

import (
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:9000,1=127.0.0.1:9001, 2=host:9002", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Self-entries are ignored so one list can be shared by all nodes.
	if _, hasSelf := peers[0]; hasSelf {
		t.Fatal("self entry not ignored")
	}
	if peers[1] != "127.0.0.1:9001" || peers[2] != "host:9002" {
		t.Fatalf("peers: %+v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		arg  string
		want string
	}{
		{"", "missing -peers"},
		{"1:127.0.0.1:9001", "bad peer entry"},
		{"x=127.0.0.1:9001", "bad peer id"},
		{"1=a,1=b", "duplicate peer id"},
	}
	for _, tc := range cases {
		if _, err := parsePeers(tc.arg, 0); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parsePeers(%q): got %v, want %q", tc.arg, err, tc.want)
		}
	}
}
