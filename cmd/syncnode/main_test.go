package main

import (
	"strings"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/livenet"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:9000,1=127.0.0.1:9001, 2=host:9002", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Self-entries are ignored so one list can be shared by all nodes.
	if _, hasSelf := peers[0]; hasSelf {
		t.Fatal("self entry not ignored")
	}
	if peers[1] != "127.0.0.1:9001" || peers[2] != "host:9002" {
		t.Fatalf("peers: %+v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		arg  string
		want string
	}{
		{"", "missing -peers"},
		{"1:127.0.0.1:9001", "bad peer entry"},
		{"x=127.0.0.1:9001", "bad peer id"},
		{"1=a,1=b", "duplicate peer id"},
	}
	for _, tc := range cases {
		if _, err := parsePeers(tc.arg, 0); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parsePeers(%q): got %v, want %q", tc.arg, err, tc.want)
		}
	}
}

func TestBuildTransportUDPDefault(t *testing.T) {
	// Plain UDP returns nil: livenet opens the socket itself.
	tr, err := buildTransport(transportOpts{kind: "udp", listen: "127.0.0.1:0"})
	if err != nil || tr != nil {
		t.Fatalf("buildTransport(udp) = %v, %v; want nil, nil", tr, err)
	}
}

func TestBuildTransportRejectsBadInputs(t *testing.T) {
	if _, err := buildTransport(transportOpts{kind: "carrier-pigeon"}); err == nil ||
		!strings.Contains(err.Error(), "unknown -transport") {
		t.Errorf("unknown transport kind: %v", err)
	}
	// Fault knobs without the fault transport are a misconfiguration, not a
	// silent no-op.
	if _, err := buildTransport(transportOpts{
		kind: "udp", chaos: adversary.PacketChaos{DropP: 0.1},
	}); err == nil || !strings.Contains(err.Error(), "faultudp") {
		t.Errorf("chaos on plain udp: %v", err)
	}
	// Invalid chaos parameters are rejected before any socket is opened.
	if _, err := buildTransport(transportOpts{
		kind: "faultudp", listen: "127.0.0.1:0", chaos: adversary.PacketChaos{DropP: 1.5},
	}); err == nil || !strings.Contains(err.Error(), "DropP") {
		t.Errorf("invalid chaos: %v", err)
	}
}

func TestBuildTransportFaultUDPResolvesPeers(t *testing.T) {
	tr, err := buildTransport(transportOpts{
		kind:   "faultudp",
		listen: "127.0.0.1:0",
		id:     0,
		peers:  map[int]string{1: "127.0.0.1:9001"},
		seed:   7,
		chaos:  adversary.PacketChaos{DropP: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, ok := tr.(*livenet.FaultTransport); !ok {
		t.Fatalf("buildTransport(faultudp) = %T, want *livenet.FaultTransport", tr)
	}
	if tr.LocalAddr() == "" {
		t.Fatal("fault transport has no bound address")
	}
}
