// Command syncload load-tests a node's time service: it opens N concurrent
// clients against one serve endpoint, issues 4-timestamp queries for a fixed
// duration, and reports throughput and latency quantiles from the same
// log-bucketed histograms the node's own observability uses.
//
// Usage:
//
//	syncload -serve-addr 127.0.0.1:9123 -clients 8 -duration 10s
//	syncload -serve-addr 10.0.0.7:9123 -clients 64 -rate 100 -duration 1m
//
// The target is a syncnode started with -serve-addr (or any node answering
// on its sync socket). Each client is an independent livenet.Client on its
// own UDP socket, so N clients exercise the server's real demultiplexing
// path. See docs/SERVING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"clocksync/internal/cliutil"
	"clocksync/internal/livenet"
	"clocksync/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "syncload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		server   = cliutil.AddrVar(flag.CommandLine, "serve-addr", "", "time service address to load (a syncnode's -serve-addr, required)")
		clients  = flag.Int("clients", 4, "concurrent clients, each on its own UDP socket")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		timeout  = flag.Duration("timeout", time.Second, "per-query timeout")
		rate     = flag.Float64("rate", 0, "queries per second per client (0 = as fast as replies come back)")
	)
	flag.Parse()
	if *server == "" {
		return fmt.Errorf("missing -serve-addr")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := runLoad(ctx, loadConfig{
		server:   *server,
		clients:  *clients,
		duration: *duration,
		timeout:  *timeout,
		rate:     *rate,
	})
	if err != nil {
		return err
	}
	printReport(os.Stdout, rep)
	if rep.queries == 0 {
		return fmt.Errorf("no query succeeded against %s", *server)
	}
	return nil
}

// loadConfig parameterizes one load run, flag-free so tests can drive it.
type loadConfig struct {
	server   string
	clients  int
	duration time.Duration
	timeout  time.Duration
	rate     float64 // per-client queries/sec; 0 = unthrottled
	// transport, when non-nil, supplies each client's transport by worker
	// index instead of a UDP socket (tests run over a MemNetwork).
	transport func(worker int) livenet.Transport
}

// loadReport is the aggregated outcome of a run.
type loadReport struct {
	queries int64
	errors  int64
	elapsed time.Duration
	lat     *obs.Histogram // query round-trip latency, seconds
	maxUnc  time.Duration  // widest uncertainty any reading carried
}

// runLoad drives cfg.clients concurrent clients for cfg.duration and merges
// their per-worker histograms — the workers share nothing on the hot path.
func runLoad(ctx context.Context, cfg loadConfig) (*loadReport, error) {
	if cfg.clients < 1 {
		return nil, fmt.Errorf("need at least one client, got %d", cfg.clients)
	}
	if cfg.duration <= 0 {
		return nil, fmt.Errorf("non-positive duration %v", cfg.duration)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	var (
		queries atomic.Int64
		errs    atomic.Int64
		maxUnc  atomic.Int64
		hists   = make([]*obs.Histogram, cfg.clients)
		wg      sync.WaitGroup
		initErr error
		initMu  sync.Mutex
	)
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		w := w
		hists[w] = &obs.Histogram{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ccfg := livenet.ClientConfig{Server: cfg.server, Timeout: cfg.timeout}
			if cfg.transport != nil {
				ccfg.Transport = cfg.transport(w)
			}
			client, err := livenet.NewClient(ccfg)
			if err != nil {
				initMu.Lock()
				if initErr == nil {
					initErr = err
				}
				initMu.Unlock()
				cancel()
				return
			}
			defer client.Close()

			var tick *time.Ticker
			if cfg.rate > 0 {
				tick = time.NewTicker(time.Duration(float64(time.Second) / cfg.rate))
				defer tick.Stop()
			}
			for ctx.Err() == nil {
				t0 := time.Now()
				r, err := client.Query(ctx)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errs.Add(1)
					continue
				}
				hists[w].Observe(time.Since(t0).Seconds())
				queries.Add(1)
				for {
					cur := maxUnc.Load()
					if int64(r.Uncertainty) <= cur || maxUnc.CompareAndSwap(cur, int64(r.Uncertainty)) {
						break
					}
				}
				if tick != nil {
					select {
					case <-tick.C:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if initErr != nil {
		return nil, initErr
	}

	merged := &obs.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	return &loadReport{
		queries: queries.Load(),
		errors:  errs.Load(),
		elapsed: time.Since(start),
		lat:     merged,
		maxUnc:  time.Duration(maxUnc.Load()),
	}, nil
}

// printReport renders the run in the aligned key-value style of the other
// commands.
func printReport(w *os.File, rep *loadReport) {
	qps := float64(rep.queries) / rep.elapsed.Seconds()
	fmt.Fprintf(w, "queries           %d in %v (%.0f qps)\n",
		rep.queries, rep.elapsed.Round(time.Millisecond), qps)
	fmt.Fprintf(w, "errors            %d\n", rep.errors)
	fmt.Fprintf(w, "latency           p50 %v  p95 %v  p99 %v\n",
		secs(rep.lat.Quantile(0.50)), secs(rep.lat.Quantile(0.95)), secs(rep.lat.Quantile(0.99)))
	fmt.Fprintf(w, "max uncertainty   %v\n", rep.maxUnc.Round(time.Microsecond))
}

// secs renders a histogram quantile (seconds) as a rounded duration.
func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}
