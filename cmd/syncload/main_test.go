package main

import (
	"context"
	"testing"
	"time"

	"clocksync/internal/livenet"
)

// serveNode stands up one single-node cluster member with a dedicated UDP
// serve endpoint — the smallest real target syncload can point at.
func serveNode(t *testing.T) *livenet.Node {
	t.Helper()
	n, err := livenet.New(livenet.Config{
		ID:      0,
		Listen:  "127.0.0.1:0",
		SyncInt: time.Second,
		MaxWait: 100 * time.Millisecond,
		WayOff:  5 * time.Second,
		Serve:   livenet.ServeConfig{Addr: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go n.Run(ctx)
	return n
}

func TestRunLoadAgainstUDPNode(t *testing.T) {
	n := serveNode(t)
	rep, err := runLoad(context.Background(), loadConfig{
		server:   n.ServeAddr(),
		clients:  3,
		duration: 300 * time.Millisecond,
		timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.queries == 0 {
		t.Fatal("no queries completed against a live local node")
	}
	if got := int64(rep.lat.Count()); got != rep.queries {
		t.Errorf("histogram holds %d samples, counted %d queries", got, rep.queries)
	}
	if rep.maxUnc <= 0 {
		t.Error("no reading carried an uncertainty")
	}
	if p99 := rep.lat.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 latency %v not positive", p99)
	}
}

func TestRunLoadRateThrottle(t *testing.T) {
	n := serveNode(t)
	rep, err := runLoad(context.Background(), loadConfig{
		server:   n.ServeAddr(),
		clients:  1,
		duration: 300 * time.Millisecond,
		timeout:  200 * time.Millisecond,
		rate:     20, // ≤ ~7 queries in 300ms (+1 for the unthrottled first)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.queries == 0 {
		t.Fatal("throttled run made no queries")
	}
	if rep.queries > 12 {
		t.Errorf("rate 20/s for 300ms made %d queries, throttle not applied", rep.queries)
	}
}

func TestRunLoadOverMemNetwork(t *testing.T) {
	mn := livenet.NewMemNetwork(livenet.MemNetworkConfig{})
	n, err := livenet.New(livenet.Config{
		ID:        0,
		Transport: mn.Transport(0),
		SyncInt:   time.Second,
		MaxWait:   100 * time.Millisecond,
		WayOff:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go n.Run(ctx)

	rep, err := runLoad(context.Background(), loadConfig{
		server:   livenet.MemAddr(0),
		clients:  2,
		duration: 200 * time.Millisecond,
		timeout:  100 * time.Millisecond,
		transport: func(worker int) livenet.Transport {
			return mn.Transport(100 + worker)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.queries == 0 {
		t.Fatal("no queries completed over the memory fabric")
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := runLoad(context.Background(), loadConfig{server: "x:1", clients: 0, duration: time.Second}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := runLoad(context.Background(), loadConfig{server: "x:1", clients: 1, duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}
