// Command benchserve runs the time-serving benchmarks (internal/servebench)
// standalone via testing.Benchmark and writes the results as JSON — the
// committed baseline BENCH_serve.json at the repository root records what a
// served reading costs on the reference machine, including the derived
// loopback queries-per-second.
//
// Usage:
//
//	benchserve                      # print JSON to stdout
//	benchserve -o BENCH_serve.json  # write a specific file
//	benchserve -update              # regenerate the committed baseline
//	                                # (BENCH_serve.json in the working
//	                                # directory), like benchsim -update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"clocksync/internal/servebench"
)

// result is one benchmark's record in the JSON baseline. QPS is derived
// (1e9/ns_per_op): for the parallel transport benchmark it is the aggregate
// served queries per second, the headline serving number.
type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	update := flag.Bool("update", false, "regenerate the committed baseline BENCH_serve.json")
	flag.Parse()
	if *update {
		*out = "BENCH_serve.json"
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"NodeRead", servebench.NodeRead},
		{"ServePacketCodec", servebench.ServePacketCodec},
		{"ServeMemTransport", servebench.ServeMemTransport},
	}
	var results []result
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		results = append(results, result{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			QPS:         1e9 / ns,
		})
		fmt.Fprintf(os.Stderr, "%-20s %14.2f ns/op %10d B/op %8d allocs/op %14.0f qps\n",
			bm.name, ns, r.AllocedBytesPerOp(), r.AllocsPerOp(), 1e9/ns)
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchserve:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}
