// Command benchtables regenerates every table and figure of the
// reproduction suite (EXPERIMENTS.md, E1–E12) and prints them with their
// machine-verified shape checks.
//
// Usage:
//
//	benchtables [-quick] [-only E3,E7] [-list]
//
// The full suite simulates several cluster-days of virtual time and takes a
// few minutes of wall time; -quick shortens the runs while preserving the
// result shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clocksync/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shorten simulated durations (same shapes, less wall time)")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E7)")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of plain tables")
	flag.Parse()

	type entry struct {
		id  string
		run func(bool) experiments.Table
	}
	suite := []entry{
		{"E1", experiments.E01Deviation},
		{"E2", experiments.E02AccuracyTradeoff},
		{"E3", experiments.E03RecoveryHalving},
		{"E4", experiments.E04RecoveryVsBaselines},
		{"E5", experiments.E05MobileAdversary},
		{"E6", experiments.E06ResilienceThreshold},
		{"E7", experiments.E07TwoClique},
		{"E8", experiments.E08MessageOverhead},
		{"E9", experiments.E09Discontinuity},
		{"E10", experiments.E10EstimationError},
		{"E11", experiments.E11WayOffAblation},
		{"E12", experiments.E12DriftDelaySweep},
		{"E13", experiments.E13ConnectivitySweep},
		{"E14", experiments.E14SelfStabilization},
		{"E15", experiments.E15DriftCompensation},
		{"E16", experiments.E16MessageLoss},
		{"E17", experiments.E17CachedEstimation},
		{"E18", experiments.E18ProactiveSecurity},
		{"E19", experiments.E19TightnessProbe},
		{"E20", experiments.E20NetworkOutage},
		{"E21", experiments.E21SamplingScaling},
		{"E22", experiments.E22DelaySkew},
		{"E23", experiments.E23ChurnBudget},
		{"E24", experiments.E24FlashRejoin},
		{"E25", experiments.E25ColdStart},
	}

	if *list {
		for _, e := range suite {
			t := quickTitle(e.id)
			fmt.Printf("%-4s %s\n", e.id, t)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failures := 0
	for _, e := range suite {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		table := e.run(*quick)
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.String())
			fmt.Printf("(%s regenerated in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
		if !table.ChecksPass() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed their shape checks\n", failures)
		os.Exit(1)
	}
}

// quickTitle maps experiment ids to their titles without running them.
func quickTitle(id string) string {
	titles := map[string]string{
		"E1":  "Maximum deviation vs Theorem 5 bound",
		"E2":  "Accuracy vs K = Θ/T (O(2^−K) tradeoff)",
		"E3":  "Recovery halving trajectory (Lemma 7(iii))",
		"E4":  "Recovery time vs baselines",
		"E5":  "Mobile adversary marathon",
		"E6":  "Resilience threshold n ≥ 3f+1",
		"E7":  "Two-clique counterexample (§5)",
		"E8":  "Message overhead vs broadcast protocols",
		"E9":  "Discontinuity (ψ) comparison",
		"E10": "Clock-estimation error vs k",
		"E11": "WayOff ablation and parameter overestimation",
		"E12": "Drift/delay sweep",
		"E13": "Partial connectivity exploration (§5)",
		"E14": "Self-stabilization probe (§5)",
		"E15": "Drift-feedback extension (§5)",
		"E16": "Message-loss robustness (beyond model)",
		"E17": "Cached estimation caveat (§3.1)",
		"E18": "Proactive secret sharing end-to-end (§1)",
		"E19": "Adversarial tightness probe for Δ",
		"E20": "Temporary model violation and self-healing",
		"E21": "Peer-sampled estimation scaling",
		"E22": "DelaySkew family: asymmetric link delay",
		"E23": "ChurnBudget family: f-per-Θ boundary streams",
		"E24": "FlashRecovery family: rejoin-time tails",
		"E25": "ColdStart family: arbitrary initial states",
	}
	return titles[id]
}
