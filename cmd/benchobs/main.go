// Command benchobs runs the observability benchmarks (internal/obs/obsbench)
// standalone via testing.Benchmark and writes the results as JSON — the
// committed baseline BENCH_obs.json at the repository root records what the
// instrumentation costs on the reference machine.
//
// Usage:
//
//	benchobs                   # print JSON to stdout
//	benchobs -update           # regenerate the committed baseline
//	benchobs -o somewhere.json # write JSON to an arbitrary path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"clocksync/internal/obs/obsbench"
)

// result is one benchmark's record in the JSON baseline.
type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	update := flag.Bool("update", false, "regenerate the committed baseline BENCH_obs.json")
	flag.Parse()
	if *update {
		*out = "BENCH_obs.json"
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ObserverDisabled", obsbench.ObserverDisabled},
		{"ObserverRing", obsbench.ObserverRing},
		{"RoundSpan", obsbench.RoundSpan},
		{"HistogramObserve", obsbench.HistogramObserve},
		{"TraceContextDisabled", obsbench.TraceContextDisabled},
		{"ReplySpan", obsbench.ReplySpan},
	}
	var results []result
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		results = append(results, result{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-18s %12.2f ns/op %6d B/op %4d allocs/op\n",
			bm.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchobs:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
}
