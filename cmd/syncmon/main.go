// Command syncmon is the fleet aggregator of the telemetry plane: it scrapes
// every node's /metrics, /statusz and /spanz surfaces, merges them into one
// cluster view, joins cross-node estimate→reply spans on the shared timeline,
// and renders per-node deviation sparklines, serve-path throughput and
// latency quantiles, a dark-peer matrix and each node's envelope headroom.
//
// Usage:
//
//	syncmon -targets 0=host1:9090,1=host2:9090,2=host3:9090            # live view
//	syncmon -targets 0=...,1=...,2=... -once                           # one report, exit
//	syncmon -targets ... -once -jsonl fleet.jsonl                      # + merged span export
//
// The JSONL export is a merged trace stream with fleet-unique span ids — the
// same shape syncsim -trace-out emits — so the offline tooling consumes it
// directly, e.g. `tracestat -conform fleet.jsonl`. In -once mode a non-zero
// exit reports causal-order violations (a responder's observation landing
// outside the requester's uncertainty-widened send→receive window), making
// the command usable as a fleet health check in CI.
//
// See docs/OBSERVABILITY.md, "Fleet telemetry".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clocksync/internal/asciiplot"
	"clocksync/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "syncmon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		targets  = flag.String("targets", "", "comma-separated node ops endpoints, id=host:port (bare host:port numbers nodes in order); required")
		once     = flag.Bool("once", false, "scrape once, print one report, exit non-zero on causal-order violations")
		interval = flag.Duration("interval", 2*time.Second, "scrape interval for the live view")
		jsonl    = flag.String("jsonl", "", "write the merged span export (trace JSONL, fleet-unique ids) here after every scrape")
		slack    = flag.Duration("slack", 0, "extra causal-order tolerance beyond the nodes' uncertainty intervals (default 2ms)")
		asym     = flag.Duration("asym", 0, "mean midpoint residual flagging a link as asymmetric (default 5ms)")
		width    = flag.Int("width", 40, "sparkline width in columns")
	)
	flag.Parse()
	if *targets == "" {
		return fmt.Errorf("missing -targets")
	}
	tgts, err := parseTargets(*targets)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := &monitor{
		sc:      &telemetry.Scraper{Targets: tgts},
		acfg:    telemetry.AlignConfig{Slack: *slack, AsymThreshold: *asym},
		width:   *width,
		jsonl:   *jsonl,
		history: make(map[int][]float64),
	}
	if *once {
		al, err := m.round(ctx, os.Stdout, false)
		if err != nil {
			return err
		}
		if al.Violations > 0 {
			return fmt.Errorf("%d causal-order violations", al.Violations)
		}
		return nil
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if _, err := m.round(ctx, os.Stdout, true); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// parseTargets parses "0=host:port,1=host:port" (or bare "host:port" entries,
// numbered in order) into scrape targets.
func parseTargets(s string) ([]telemetry.Target, error) {
	var out []telemetry.Target
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		node, addr := i, part
		if id, rest, ok := strings.Cut(part, "="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(id))
			if err != nil {
				return nil, fmt.Errorf("target %q: node id %q is not a number", part, id)
			}
			node, addr = n, strings.TrimSpace(rest)
		}
		if !strings.Contains(addr, ":") {
			return nil, fmt.Errorf("target %q: want host:port", part)
		}
		out = append(out, telemetry.Target{Node: node, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets in %q", s)
	}
	return out, nil
}

// monitor holds the cross-round state of the live view: per-node deviation
// history for the sparklines and the previous query total for the rate.
type monitor struct {
	sc    *telemetry.Scraper
	acfg  telemetry.AlignConfig
	width int
	jsonl string

	history     map[int][]float64 // node → recent deviations from the fleet median
	prevQueries float64
	prevAt      time.Time
}

// round performs one scrape → align → render → export cycle.
func (m *monitor) round(ctx context.Context, w io.Writer, clear bool) (*telemetry.Alignment, error) {
	snap := m.sc.Scrape(ctx)
	al := telemetry.Align(snap, m.acfg)
	m.render(w, snap, al, clear)
	if m.jsonl != "" {
		f, err := os.Create(m.jsonl)
		if err != nil {
			return nil, fmt.Errorf("creating span export: %w", err)
		}
		if err := telemetry.WriteJSONL(f, snap); err != nil {
			f.Close()
			return nil, fmt.Errorf("writing span export: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return al, nil
}

// fleetMedian returns the median disciplined-clock correction across the
// scraped nodes — the reference each node's deviation is measured against.
func fleetMedian(ok []telemetry.NodeScrape) float64 {
	offs := make([]float64, 0, len(ok))
	for _, n := range ok {
		offs = append(offs, n.Status.OffsetSec)
	}
	sort.Float64s(offs)
	if len(offs) == 0 {
		return 0
	}
	mid := len(offs) / 2
	if len(offs)%2 == 1 {
		return offs[mid]
	}
	return (offs[mid-1] + offs[mid]) / 2
}

func (m *monitor) render(w io.Writer, snap *telemetry.Snapshot, al *telemetry.Alignment, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	ok := snap.Ok()
	fmt.Fprintf(&b, "syncmon  %s  nodes %d/%d up  exchanges %d joined %d (%.0f%%)  violations %d\n\n",
		snap.At.Format("15:04:05"), len(ok), len(snap.Nodes), al.Completed, len(al.Pairs), 100*al.JoinRate(), al.Violations)

	// Per-node rows. Deviation is each node's correction relative to the
	// fleet median — on one host this is disciplined-clock disagreement; on
	// many hosts it folds in host-wall differences, which the uncertainty
	// column bounds honestly either way. Headroom is how much of the node's
	// own envelope its deviation has consumed.
	med := fleetMedian(ok)
	b.WriteString("node  epoch  syncs  deviation    unc       headroom  last round          trend\n")
	for _, n := range snap.Nodes {
		if n.Err != nil {
			fmt.Fprintf(&b, "n%-4d DOWN: %v\n", n.Target.Node, n.Err)
			continue
		}
		st := n.Status
		dev := st.OffsetSec - med
		m.history[st.ID] = append(m.history[st.ID], dev)
		if len(m.history[st.ID]) > 4*m.width {
			m.history[st.ID] = m.history[st.ID][len(m.history[st.ID])-4*m.width:]
		}
		headroom := "-"
		if st.UncertaintySec > 0 {
			headroom = fmt.Sprintf("%3.0f%%", 100*(1-math.Abs(dev)/st.UncertaintySec))
		}
		round := "(none)"
		if lr := st.LastRound; lr != nil {
			verdict := "ok"
			if lr.Skipped {
				verdict = "skip"
			}
			if lr.WayOff {
				verdict = "WAYOFF"
			}
			round = fmt.Sprintf("%-6s Δ%+8.3gs f%d", verdict, lr.DeltaSec, lr.Failed)
		}
		fmt.Fprintf(&b, "n%-4d %-6d %-6d %+10.3gs %9.3gs %-9s %-19s %s\n",
			st.ID, st.Epoch, st.Syncs, dev, st.UncertaintySec, headroom, round,
			asciiplot.Spark(m.history[st.ID], m.width))
	}

	// Dark-peer matrix: row = observing node, column = peer as it sees it.
	b.WriteString("\npeer matrix (rows observe columns: . ok  D dark  ? down/unknown):\n      ")
	for _, n := range snap.Nodes {
		fmt.Fprintf(&b, "n%-3d", n.Target.Node)
	}
	b.WriteByte('\n')
	for _, n := range snap.Nodes {
		fmt.Fprintf(&b, "  n%-3d", n.Target.Node)
		dark := map[int]bool{}
		known := map[int]bool{}
		if n.Err == nil {
			for _, p := range n.Status.Peers {
				known[p.ID] = true
				dark[p.ID] = p.Dark
			}
		}
		for _, c := range snap.Nodes {
			switch {
			case c.Target.Node == n.Target.Node:
				b.WriteString("  - ")
			case n.Err != nil || !known[c.Target.Node]:
				b.WriteString("  ? ")
			case dark[c.Target.Node]:
				b.WriteString("  D ")
			default:
				b.WriteString("  . ")
			}
		}
		b.WriteByte('\n')
	}

	// Serve path, merged across the fleet.
	merged := snap.Merged()
	queries := merged.Value("clocksync_serve_queries_total")
	now := time.Now()
	qps := 0.0
	if !m.prevAt.IsZero() {
		if dt := now.Sub(m.prevAt).Seconds(); dt > 0 && queries >= m.prevQueries {
			qps = (queries - m.prevQueries) / dt
		}
	}
	m.prevQueries, m.prevAt = queries, now
	fmt.Fprintf(&b, "\nserve path: %.0f queries  %.0f/s", queries, qps)
	if h := merged.Hist("clocksync_serve_latency_seconds"); h != nil && h.Count() > 0 {
		fmt.Fprintf(&b, "  reply p50 %.3gs p95 %.3gs p99 %.3gs (sampled)",
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	b.WriteByte('\n')

	// Alignment findings.
	for _, p := range al.Pairs {
		if p.Violated {
			fmt.Fprintf(&b, "VIOLATION %s span %d n%d->n%d: remote %+.3fms outside window (tol %.3fms)\n",
				p.Kind, p.SpanID, p.Origin, p.Responder, p.Residual*1e3, p.Tol*1e3)
		}
	}
	for _, lw := range al.Links {
		fmt.Fprintf(&b, "WARN %s\n", lw.String())
	}
	for _, s := range al.Stale {
		fmt.Fprintf(&b, "WARN node %d stale: epoch %d vs fleet %d\n", s.Node, s.Epoch, s.FleetEpoch)
	}
	io.WriteString(w, b.String())
}
