package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clocksync/internal/livenet"
	"clocksync/internal/telemetry"
	"clocksync/internal/trace"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("0=h1:9090, 2=h2:9090")
	if err != nil {
		t.Fatal(err)
	}
	want := []telemetry.Target{{Node: 0, Addr: "h1:9090"}, {Node: 2, Addr: "h2:9090"}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("parseTargets = %+v, want %+v", got, want)
	}
	// Bare addresses number nodes in order.
	got, err = parseTargets("h1:9090,h2:9090")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Node != 0 || got[1].Node != 1 {
		t.Errorf("bare targets misnumbered: %+v", got)
	}
	for _, bad := range []string{"", "h1", "x=h1:9090"} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("parseTargets(%q) accepted", bad)
		}
	}
}

// TestOneShotAgainstLiveCluster is the syncmon acceptance path: one scrape
// of a live cluster renders merged per-node readings with zero causal
// violations, full peer matrix, and a JSONL export the trace tooling reads.
func TestOneShotAgainstLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	c, err := livenet.NewCluster(livenet.ClusterConfig{
		N: 3, F: 0,
		SyncInt:    100 * time.Millisecond,
		MaxWait:    50 * time.Millisecond,
		WayOff:     time.Second,
		Offsets:    []time.Duration{2 * time.Millisecond, -1 * time.Millisecond},
		Metrics:    true,
		SpanBuffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if err := c.WaitConverged(10*time.Millisecond, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	targets := make([]telemetry.Target, 3)
	for i := range targets {
		addr := c.MetricsAddr(i)
		deadline := time.Now().Add(5 * time.Second)
		for addr == "" && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			addr = c.MetricsAddr(i)
		}
		targets[i] = telemetry.Target{Node: i, Addr: addr}
	}

	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	m := &monitor{
		sc:      &telemetry.Scraper{Targets: targets},
		width:   20,
		jsonl:   out,
		history: make(map[int][]float64),
	}
	var buf bytes.Buffer
	al, err := m.round(context.Background(), &buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if al.Violations != 0 {
		t.Errorf("one-shot on an honest cluster found %d violations:\n%s", al.Violations, buf.String())
	}
	if al.Completed == 0 {
		t.Error("no completed exchanges in the scrape")
	}

	report := buf.String()
	for _, want := range []string{"nodes 3/3 up", "n0", "n1", "n2", "peer matrix", "serve path:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DOWN") || strings.Contains(report, "VIOLATION") {
		t.Errorf("healthy cluster reported unhealthy:\n%s", report)
	}
	// No dark or unknown cells in the peer matrix rows.
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "  n") && (strings.Contains(line, "D") || strings.Contains(line, "?")) {
			t.Errorf("dark/unknown peer on a healthy cluster: %q", line)
		}
	}

	// The export is a readable merged trace stream.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatalf("reading JSONL export: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("JSONL export is empty")
	}
}
