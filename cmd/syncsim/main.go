// Command syncsim runs one clock-synchronization simulation from flags and
// prints the measured report against the Theorem 5 bounds.
//
// Usage examples:
//
//	syncsim -n 10 -f 3 -duration 1h
//	syncsim -n 7 -f 2 -protocol boundedcf -smash 64 -duration 30m
//	syncsim -n 10 -f 3 -rotate -theta 5m -duration 2h -plot
//	syncsim -n 7 -f 2 -trace run.jsonl -duration 10m
//	syncsim -n 7 -f 2 -trace-out run.jsonl -trace-spans -duration 10m
//	syncsim -n 7 -f 2 -rotate -dash -duration 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/asciiplot"
	"clocksync/internal/baseline"
	"clocksync/internal/cliutil"
	"clocksync/internal/dash"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// runOpts carries the output/observability settings of one invocation.
type runOpts struct {
	plot        bool
	tracePath   string // -trace: measurement trace (samples, adjustments)
	traceOut    string // -trace-out: observability event stream (rounds, skips)
	traceSpans  bool   // -trace-spans: add span records to -trace-out
	dash        bool   // -dash: live terminal dashboard during the run
	metricsAddr string // -metrics-addr: /metrics + /debug/pprof during the run
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 7, "number of processors")
		f        = flag.Int("f", 2, "per-period fault budget (n ≥ 3f+1)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		duration = flag.Duration("duration", 30*time.Minute, "simulated real time")
		theta    = flag.Duration("theta", 5*time.Minute, "adversary period Θ")
		rho      = flag.Float64("rho", 1e-4, "hardware drift bound ρ")
		delta    = flag.Duration("delta", 50*time.Millisecond, "message delivery bound δ")
		syncInt  = flag.Duration("syncint", 10*time.Second, "local time between Syncs")
		spread   = flag.Duration("spread", 100*time.Millisecond, "initial clock spread")
		proto    = flag.String("protocol", "sync", "protocol: sync | boundedcf | roundmidpoint | srikanthtoueg | broadcastjoin | ntp")
		smash    = flag.Float64("smash", 0, "smash one clock by this many seconds at t=60s (0 = off)")
		rotate   = flag.Bool("rotate", false, "run a rotating f-limited clock-smashing adversary")
		drop     = flag.Float64("drop", 0, "message drop probability (failure injection)")
		plot     = flag.Bool("plot", false, "print the deviation time series as an ASCII chart")
		tracePth = flag.String("trace", "", "write a JSON-lines trace of the run to this file")
		traceOut = flag.String("trace-out", "", "write the observability event stream (rounds, skips, corruptions) as JSON lines to this file; readable with tracestat")
		traceSp  = flag.Bool("trace-spans", false, "also record causal spans (round/estimate/reading/adjust) into -trace-out; view with tracestat -perfetto")
		dashFlag = flag.Bool("dash", false, "render a live terminal dashboard (offsets vs Δ, histograms, recent events) during the run")
		metrics  = cliutil.AddrVar(flag.CommandLine, "metrics-addr", "", "serve /metrics and /debug/pprof on this HTTP address for the duration of the run (use host:0 for an OS port)")
		confPath = flag.String("config", "", "load the scenario from a JSON spec file (overrides most flags)")
		provTgt  = flag.Duration("provision", 0, "instead of simulating, compute parameters meeting this deviation target (uses -rho, -theta)")
	)
	flag.Parse()

	opts := runOpts{plot: *plot, tracePath: *tracePth, traceOut: *traceOut,
		traceSpans: *traceSp, dash: *dashFlag, metricsAddr: *metrics}
	if opts.traceSpans && opts.traceOut == "" {
		return fmt.Errorf("-trace-spans requires -trace-out")
	}

	if *provTgt != 0 {
		return provision(*provTgt, *rho, *theta)
	}
	if *confPath != "" {
		return runFromConfig(*confPath, opts)
	}

	s := scenario.Scenario{
		Name:       "syncsim",
		Seed:       *seed,
		N:          *n,
		F:          *f,
		Duration:   simtime.Duration((*duration).Seconds()),
		Theta:      simtime.Duration((*theta).Seconds()),
		Rho:        *rho,
		Delay:      network.NewUniformDelay(simtime.Duration((*delta).Seconds())/10, simtime.Duration((*delta).Seconds())),
		SyncInt:    simtime.Duration((*syncInt).Seconds()),
		InitSpread: simtime.Duration((*spread).Seconds()),
		DropProb:   *drop,
	}

	switch *proto {
	case "sync":
		// default builder
	case "boundedcf":
		s.Builder = baseline.BoundedCFBuilder(0)
	case "roundmidpoint":
		s.Builder = baseline.RoundMidpointBuilder()
	case "srikanthtoueg":
		s.Builder = baseline.SrikanthTouegBuilder()
	case "broadcastjoin":
		s.Builder = baseline.BroadcastJoinBuilder()
	case "ntp":
		s.Builder = baseline.NTPSlewBuilder(2)
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}

	if *smash != 0 {
		s.Adversary.Corruptions = append(s.Adversary.Corruptions, adversary.Corruption{
			Node: *n - 1, From: 60, To: 61,
			Behavior: adversary.ClockSmash{Offset: simtime.Duration(*smash), Quiet: true},
		})
	}
	if *rotate {
		dwell := 30 * simtime.Second
		step := simtime.Duration(float64(s.Theta+dwell)/float64(*f)) + simtime.Millisecond
		events := int(float64(s.Duration-3*s.Theta) / float64(step))
		if events > 0 {
			s.Adversary = adversary.Rotate(*n, *f, simtime.Time(2*s.Theta), dwell, s.Theta, events,
				func(int) protocol.Behavior {
					return adversary.ClockSmash{Offset: 30 * simtime.Second}
				})
		}
	}

	return execute(s, *proto, opts)
}

// provision answers the deployer's inverse question: what parameters reach
// a given deviation target?
func provision(target time.Duration, rho float64, theta time.Duration) error {
	p, err := analysis.Provision(
		simtime.Duration(target.Seconds()), rho, simtime.Duration(theta.Seconds()))
	if err != nil {
		return err
	}
	b := analysis.MustDerive(p)
	fmt.Printf("to keep clocks within %v with ρ=%g over Θ=%v you need:\n", target, rho, theta)
	fmt.Printf("  message delay bound δ   ≤ %v\n", p.Delta)
	fmt.Printf("  estimation timeout      %v (2δ)\n", p.MaxWait)
	fmt.Printf("  sync interval           %v (K=%d per period)\n", p.SyncInt, b.K)
	fmt.Printf("  recommended WayOff      %v\n", b.WayOff)
	fmt.Printf("  derived guarantees      Δ=%v  ρ̃=%.3g  recovery ≤ %v\n",
		b.MaxDeviation, b.LogicalDrift, b.RecoveryTime)
	fmt.Printf("  (pick n ≥ 3f+1 for your fault budget f)\n")
	return nil
}

// protocolRegistry names every protocol available to JSON specs.
func protocolRegistry() scenario.Registry {
	return scenario.Registry{
		"boundedcf":     baseline.BoundedCFBuilder(0),
		"roundmidpoint": baseline.RoundMidpointBuilder(),
		"srikanthtoueg": baseline.SrikanthTouegBuilder(),
		"broadcastjoin": baseline.BroadcastJoinBuilder(),
		"ntp":           baseline.NTPSlewBuilder(2),
	}
}

// runFromConfig loads a JSON spec and executes it.
func runFromConfig(path string, opts runOpts) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	spec, err := scenario.LoadSpec(fh)
	if err != nil {
		return err
	}
	s, err := spec.Build(protocolRegistry())
	if err != nil {
		return err
	}
	proto := spec.Protocol
	if proto == "" {
		proto = "sync"
	}
	return execute(s, proto, opts)
}

// execute runs the scenario with the requested observability attached and
// prints the report.
func execute(s scenario.Scenario, proto string, opts runOpts) error {
	if opts.tracePath != "" {
		fh, err := os.Create(opts.tracePath)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer fh.Close()
		s.TraceWriter = fh
	}

	var observer *obs.Observer
	if opts.traceOut != "" || opts.metricsAddr != "" || opts.dash {
		observer = obs.NewObserver()
		s.Observer = observer
	}

	// closers runs exactly once — on normal return or on SIGINT/SIGTERM — so
	// JSONL trace files always end on a complete line even when the run is
	// interrupted mid-stream.
	var closers []func()
	var closeOnce sync.Once
	closeSinks := func() {
		closeOnce.Do(func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		})
	}
	defer closeSinks()

	if opts.traceOut != "" {
		fh, err := os.Create(opts.traceOut)
		if err != nil {
			return fmt.Errorf("creating event stream file: %w", err)
		}
		sink := obs.NewJSONL(fh)
		observer.AddSink(sink)
		if opts.traceSpans {
			observer.AddSpanSink(sink)
		}
		closers = append(closers, func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "syncsim: closing event stream:", err)
			}
			fh.Close()
		})
	}
	if opts.dash {
		// The Δ envelope is known before the run for in-model parameters;
		// out-of-model scenarios dash without an envelope scale.
		deltaEnv := 0.0
		if b, err := analysis.Derive(s.Params()); err == nil {
			deltaEnv = float64(b.MaxDeviation)
		}
		// The serve panel polls the run's recorder: simulated runs show it
		// empty, but a run that also serves time (metrics-addr deployments
		// feeding clients) gets query rate and reply quantiles live.
		d := dash.New(dash.Config{Out: os.Stdout, N: s.N, Delta: deltaEnv,
			Recorders: func() []*obs.Recorder { return []*obs.Recorder{observer.Recorder()} }})
		observer.AddSink(d)
		observer.AddSpanSink(d)
		closers = append(closers, func() { d.Close() })
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		closeSinks()
		os.Exit(130)
	}()
	if opts.metricsAddr != "" {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		bound, err := obs.Serve(ctx, &wg, opts.metricsAddr, obs.RecorderMux(observer.Recorder()))
		if err != nil {
			cancel()
			return fmt.Errorf("starting metrics endpoint: %w", err)
		}
		defer func() { cancel(); wg.Wait() }()
		fmt.Printf("observability     http://%s/metrics and /debug/pprof during the run\n", bound)
	}

	start := time.Now()
	res, err := scenario.Run(s)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("protocol          %s  (n=%d, f=%d, seed=%d)\n", proto, s.N, s.F, s.Seed)
	fmt.Printf("simulated         %v of real time in %v wall time (%d events)\n",
		time.Duration(float64(s.Duration)*float64(time.Second)),
		elapsed.Round(time.Millisecond), res.Sim.Fired())
	fmt.Printf("messages          %d sent (%0.1f KiB)\n", res.MsgsSent, float64(res.BytesSent)/1024)
	fmt.Println()
	fmt.Printf("Theorem 5 bounds  T=%v  K=%d  C=%v\n", res.Bounds.T, res.Bounds.K, res.Bounds.C)
	fmt.Printf("                  Δ=%v  ρ̃=%.3g  ψ=%v  WayOff=%v\n",
		res.Bounds.MaxDeviation, res.Bounds.LogicalDrift, res.Bounds.Discontinuity, res.Bounds.WayOff)
	fmt.Println()
	fmt.Printf("measured          max deviation   %v  (%.1f%% of bound)\n",
		res.Report.MaxDeviation,
		100*float64(res.Report.MaxDeviation)/float64(res.Bounds.MaxDeviation))
	fmt.Printf("                  mean deviation  %v\n", res.Report.MeanDeviation)
	fmt.Printf("                  discontinuity   %v (ψ bound: good processors only)\n", res.Report.MaxDiscontinuity)
	fmt.Printf("                  largest adjust  %v (recovery jumps included)\n", res.Report.MaxAdjustment)
	fmt.Printf("                  worst |rate−1|  %.3g\n", res.Report.WorstRate)
	if observer != nil && len(res.EventCounts) > 0 {
		kinds := make([]string, 0, len(res.EventCounts))
		for k := range res.EventCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("                  events         ")
		for i, k := range kinds {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%s=%d", k, res.EventCounts[k])
		}
		fmt.Println()
	}
	if len(res.Report.Recoveries) > 0 {
		fmt.Println()
		fmt.Println("recoveries:")
		for _, rv := range res.Report.Recoveries {
			status := "never recovered"
			if rv.Ok {
				status = fmt.Sprintf("recovered in %v", rv.Time())
			}
			fmt.Printf("  node %2d released at %8v (distance %v): %s\n",
				rv.Node, rv.ReleasedAt, rv.InitialDistance, status)
		}
	}
	if opts.plot {
		ts, devs := res.Recorder.DeviationSeries()
		fmt.Println()
		fmt.Print(asciiplot.Line(ts, map[string][]float64{"deviation": devs},
			asciiplot.Options{Width: 72, Height: 14, YLabel: "good-set deviation (s)", XLabel: "real time (s)"}))
	}
	return nil
}
