package main

import (
	"os"
	"path/filepath"
	"testing"

	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

func TestProtocolRegistryComplete(t *testing.T) {
	reg := protocolRegistry()
	for _, name := range []string{"boundedcf", "roundmidpoint", "srikanthtoueg", "broadcastjoin", "ntp"} {
		if reg[name] == nil {
			t.Errorf("protocol %q missing from registry", name)
		}
	}
}

func TestRunFromConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"name": "cli-test", "seed": 3, "n": 4, "f": 1,
		"duration_sec": 120, "theta_sec": 60, "rho": 1e-4,
		"init_spread_sec": 0.05, "sample_period_sec": 5
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	if err := runFromConfig(path, runOpts{tracePath: tracePath}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
}

func TestRunFromConfigBaselineProtocol(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"name": "cli-ntp", "seed": 3, "n": 4, "f": 1,
		"duration_sec": 120, "theta_sec": 60, "rho": 1e-4,
		"protocol": "ntp", "sample_period_sec": 5
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFromConfig(path, runOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromConfigErrors(t *testing.T) {
	if err := runFromConfig("/does/not/exist.json", runOpts{}); err == nil {
		t.Error("missing config accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"protocol": "quantum"}`), 0o644)
	if err := runFromConfig(bad, runOpts{}); err == nil {
		t.Error("unknown protocol accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	os.WriteFile(garbage, []byte(`{{{`), 0o644)
	if err := runFromConfig(garbage, runOpts{}); err == nil {
		t.Error("garbage config accepted")
	}
}

func TestShippedConfigsAreValid(t *testing.T) {
	// The sample configs in configs/ must parse, build and run.
	matches, err := filepath.Glob("../../configs/*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no shipped configs found: %v", err)
	}
	for _, path := range matches {
		if err := runFromConfig(path, runOpts{}); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

func TestExecuteWritesEventStream(t *testing.T) {
	// The ISSUE acceptance check: -trace-out JSONL parses with the trace
	// package (what cmd/tracestat uses) and carries round events.
	out := filepath.Join(t.TempDir(), "events.jsonl")
	s := scenario.Scenario{
		Name: "trace-out", Seed: 4, N: 4, F: 1,
		Duration: 3 * simtime.Minute, Theta: simtime.Minute,
		Rho: 1e-4, InitSpread: 100 * simtime.Millisecond,
	}
	if err := execute(s, "sync", runOpts{traceOut: out}); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	events, err := trace.Read(fh)
	if err != nil {
		t.Fatalf("event stream unreadable by the trace package: %v", err)
	}
	sum := trace.Summarize(events)
	if sum.ByKind["round"] == 0 {
		t.Errorf("event stream has no round events: %+v", sum.ByKind)
	}
}

func TestExecuteServesMetricsDuringRun(t *testing.T) {
	// -metrics-addr binds before the simulation starts; verify the recorder
	// page exists by racing a scrape against a short run via the handler the
	// flag installs. The endpoint lives only for the run, so probe the bound
	// address printed by execute indirectly: use a scenario long enough to
	// scrape mid-run would be flaky — instead just check execute accepts the
	// flag and shuts the listener down cleanly.
	s := scenario.Scenario{
		Name: "metrics", Seed: 4, N: 4, F: 1,
		Duration: 2 * simtime.Minute, Theta: simtime.Minute,
		Rho: 1e-4, InitSpread: 50 * simtime.Millisecond,
	}
	if err := execute(s, "sync", runOpts{metricsAddr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
