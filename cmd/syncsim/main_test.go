package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProtocolRegistryComplete(t *testing.T) {
	reg := protocolRegistry()
	for _, name := range []string{"boundedcf", "roundmidpoint", "srikanthtoueg", "broadcastjoin", "ntp"} {
		if reg[name] == nil {
			t.Errorf("protocol %q missing from registry", name)
		}
	}
}

func TestRunFromConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"name": "cli-test", "seed": 3, "n": 4, "f": 1,
		"duration_sec": 120, "theta_sec": 60, "rho": 1e-4,
		"init_spread_sec": 0.05, "sample_period_sec": 5
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	if err := runFromConfig(path, false, tracePath); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
}

func TestRunFromConfigBaselineProtocol(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"name": "cli-ntp", "seed": 3, "n": 4, "f": 1,
		"duration_sec": 120, "theta_sec": 60, "rho": 1e-4,
		"protocol": "ntp", "sample_period_sec": 5
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFromConfig(path, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromConfigErrors(t *testing.T) {
	if err := runFromConfig("/does/not/exist.json", false, ""); err == nil {
		t.Error("missing config accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"protocol": "quantum"}`), 0o644)
	if err := runFromConfig(bad, false, ""); err == nil {
		t.Error("unknown protocol accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	os.WriteFile(garbage, []byte(`{{{`), 0o644)
	if err := runFromConfig(garbage, false, ""); err == nil {
		t.Error("garbage config accepted")
	}
}

func TestShippedConfigsAreValid(t *testing.T) {
	// The sample configs in configs/ must parse, build and run.
	matches, err := filepath.Glob("../../configs/*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no shipped configs found: %v", err)
	}
	for _, path := range matches {
		if err := runFromConfig(path, false, ""); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
