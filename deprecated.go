package clocksync

import "time"

// Deprecated aliases for the pre-observability API surface. They behave
// identically to the canonical names in clocksync.go and exist only so
// existing programs keep compiling; new code should not use them.

// LiveConfig configures a real-time UDP node.
//
// Deprecated: use NodeConfig.
type LiveConfig = NodeConfig

// LiveNode is a deployable Sync participant on a real network.
//
// Deprecated: use Node.
type LiveNode = Node

// NewLiveNode opens a live node's socket and prepares it to Run.
//
// Deprecated: use NewNode.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return NewNode(cfg) }

// LiveCluster runs n live nodes in one process on loopback sockets.
//
// Deprecated: use Cluster.
type LiveCluster = Cluster

// LiveClusterConfig parameterizes an in-process live cluster.
//
// Deprecated: use ClusterConfig.
type LiveClusterConfig = ClusterConfig

// NewLiveCluster opens sockets for all nodes and wires their peer tables.
//
// Deprecated: use NewCluster.
func NewLiveCluster(cfg LiveClusterConfig) (*LiveCluster, error) {
	return NewCluster(cfg)
}

// NodeNow returns a node's disciplined clock as a bare instant, like the
// deprecated Node.Now method.
//
// Deprecated: use n.Read(). A bare timestamp hides how wrong it may be;
// Read returns the same instant as Reading.Time together with the
// uncertainty half-width and sync epoch that qualify it.
func NodeNow(n *Node) time.Time { return n.Read().Time }
