// Package analysis computes the paper's analytic quantities: the derived
// protocol parameters, the Theorem 5 performance bounds, and the envelope
// algebra of Appendix A used in the proof (and in our empirical validation
// of Lemma 7).
package analysis

import (
	"errors"
	"fmt"
	"math"

	"clocksync/internal/simtime"
)

// Params collects the network-model constants and protocol settings the
// analysis is parameterized by.
type Params struct {
	N int // number of processors
	F int // adversary's per-period corruption budget

	Rho   float64          // hardware drift bound ρ (Equation 2)
	Delta simtime.Duration // message delivery bound δ
	Theta simtime.Duration // adversary time period Θ (Definition 2)

	SyncInt simtime.Duration // local time between Sync executions
	MaxWait simtime.Duration // estimation timeout (≥ 2δ)
}

// Eps returns the clock-reading error bound Λ of the ping estimator: a
// single ping's error is a = (R−S)/2 ≤ (1+ρ)·MaxWait/2.
func (p Params) Eps() simtime.Duration {
	return simtime.Duration((1 + p.Rho) * float64(p.MaxWait) / 2)
}

// T returns the analysis interval length T = (1+ρ)·SyncInt + 2·MaxWait
// (§4): every non-faulty processor completes between one and two full Syncs
// in any real-time window of length T.
func (p Params) T() simtime.Duration {
	return simtime.Duration((1+p.Rho)*float64(p.SyncInt)) + 2*p.MaxWait
}

// K returns K = ⌊Θ/T⌋, the number of analysis intervals per adversary
// period. Theorem 5 requires K ≥ 5.
func (p Params) K() int {
	return int(math.Floor(float64(p.Theta) / float64(p.T())))
}

// C returns the recovery-residue constant C = (17ε + 18ρT)/2^(K−3) of
// Theorem 5. It decays geometrically in K: the more Syncs fit in an
// adversary period, the closer the protocol gets to drift-optimal.
func (p Params) C() simtime.Duration {
	t := float64(p.T())
	k := p.K()
	return simtime.Duration((17*float64(p.Eps()) + 18*p.Rho*t) / math.Pow(2, float64(k-3)))
}

// Bounds holds the guarantees of Theorem 5 together with the derived
// constants they are built from.
type Bounds struct {
	Eps           simtime.Duration // reading error Λ
	T             simtime.Duration // analysis interval
	K             int              // intervals per adversary period
	C             simtime.Duration // 2^−K residue
	MaxDeviation  simtime.Duration // Δ = 16ε + 18ρT + 4C   (Theorem 5(i))
	LogicalDrift  float64          // ρ̃ = ρ + C/2T          (Theorem 5(ii))
	Discontinuity simtime.Duration // ψ = ε + C/2            (Theorem 5(ii))
	// MaxStep bounds any single adjustment of a processor that is good and
	// synchronized: the convergence step moves a clock at most halfway
	// across the deviation envelope plus one reading error,
	// |δ| ≤ Δ/2 + ε. (ψ above is the *net* accuracy-envelope bound of
	// Equation 3, not a per-step bound — a single pull toward the midpoint
	// may legitimately exceed it.)
	MaxStep      simtime.Duration
	WayOff       simtime.Duration // recommended WayOff = Δ + ε
	RecoveryTime simtime.Duration // T·⌈log2(WayOff/C)⌉ worst-case rejoin horizon
}

// Derive evaluates Theorem 5 for the given parameters.
func Derive(p Params) (Bounds, error) {
	if err := Validate(p); err != nil {
		return Bounds{}, err
	}
	eps := p.Eps()
	t := p.T()
	k := p.K()
	c := p.C()
	dev := 16*eps + simtime.Duration(18*p.Rho*float64(t)) + 4*c
	b := Bounds{
		Eps:           eps,
		T:             t,
		K:             k,
		C:             c,
		MaxDeviation:  dev,
		LogicalDrift:  p.Rho + float64(c)/(2*float64(t)),
		Discontinuity: eps + c/2,
		MaxStep:       dev/2 + eps,
		WayOff:        dev + eps,
	}
	// Claim 8(iii): a recovering processor's distance from the good envelope
	// halves every interval T (minus C/2 each step), so a processor released
	// at distance ≤ WayOff is within the deviation bound after at most
	// ⌈log2(WayOff/C)⌉ intervals — and always within K intervals = Θ.
	steps := math.Ceil(math.Log2(float64(b.WayOff) / math.Max(float64(c), 1e-12)))
	if steps < 1 {
		steps = 1
	}
	if steps > float64(k) {
		steps = float64(k)
	}
	b.RecoveryTime = simtime.Duration(steps * float64(t))
	return b, nil
}

// MustDerive is Derive for callers with statically-valid parameters.
func MustDerive(p Params) Bounds {
	b, err := Derive(p)
	if err != nil {
		panic(err)
	}
	return b
}

// Validation errors.
var (
	ErrResilience = errors.New("analysis: need n ≥ 3f+1")
	ErrKTooSmall  = errors.New("analysis: Theorem 5 needs K = ⌊Θ/T⌋ ≥ 5")
	ErrMaxWait    = errors.New("analysis: MaxWait must be ≥ 2δ so honest round trips cannot time out")
	ErrSyncInt    = errors.New("analysis: SyncInt must be ≥ 2·MaxWait")
	ErrModel      = errors.New("analysis: model constants must be positive (δ, Θ) and ρ ≥ 0")
)

// Validate checks the constraints the paper places on the parameters:
// n ≥ 3f+1 (§2.2), SyncInt ≥ 2·MaxWait ≥ 4δ (§3.2), and K ≥ 5 (Theorem 5).
func Validate(p Params) error {
	if p.Rho < 0 || p.Delta <= 0 || p.Theta <= 0 {
		return ErrModel
	}
	if p.N < 3*p.F+1 || p.F < 0 || p.N < 1 {
		return fmt.Errorf("%w: n=%d, f=%d", ErrResilience, p.N, p.F)
	}
	if p.MaxWait < 2*p.Delta {
		return fmt.Errorf("%w: MaxWait=%v, δ=%v", ErrMaxWait, p.MaxWait, p.Delta)
	}
	if p.SyncInt < 2*p.MaxWait {
		return fmt.Errorf("%w: SyncInt=%v, MaxWait=%v", ErrSyncInt, p.SyncInt, p.MaxWait)
	}
	if p.K() < 5 {
		return fmt.Errorf("%w: K=%d (Θ=%v, T=%v)", ErrKTooSmall, p.K(), p.Theta, p.T())
	}
	return nil
}

// DefaultParams returns a parameter set representative of a LAN/metro
// deployment: 50 ms delivery bound, 100 ppm drift, 10 s sync interval and a
// 30-minute adversary period. It validates by construction.
func DefaultParams(n, f int) Params {
	return Params{
		N:       n,
		F:       f,
		Rho:     1e-4,
		Delta:   50 * simtime.Millisecond,
		Theta:   30 * simtime.Minute,
		SyncInt: 10 * simtime.Second,
		MaxWait: 100 * simtime.Millisecond,
	}
}
