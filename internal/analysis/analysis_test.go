package analysis

import (
	"errors"
	"math"
	"testing"

	"clocksync/internal/simtime"
)

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams(10, 3)
	if err := Validate(p); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := DefaultParams(10, 3)
	b := MustDerive(p)

	// T = (1+ρ)·SyncInt + 2·MaxWait = 1.0001·10 + 0.2.
	wantT := 1.0001*10 + 0.2
	if math.Abs(float64(b.T)-wantT) > 1e-9 {
		t.Fatalf("T: got %v, want %v", b.T, wantT)
	}
	// K = ⌊1800 / T⌋ = 176.
	if b.K != int(math.Floor(1800/wantT)) {
		t.Fatalf("K: got %d", b.K)
	}
	// ε = (1+ρ)·MaxWait/2.
	wantEps := 1.0001 * 0.1 / 2
	if math.Abs(float64(b.Eps)-wantEps) > 1e-12 {
		t.Fatalf("Eps: got %v, want %v", b.Eps, wantEps)
	}
	// C = (17ε + 18ρT)/2^(K−3) is astronomically small for K=176.
	if b.C <= 0 || b.C > 1e-40 {
		t.Fatalf("C: got %v", b.C)
	}
	// Δ = 16ε + 18ρT + 4C ≈ 16ε + 18ρT.
	wantDev := 16*wantEps + 18*1e-4*wantT
	if math.Abs(float64(b.MaxDeviation)-wantDev) > 1e-9 {
		t.Fatalf("MaxDeviation: got %v, want %v", b.MaxDeviation, wantDev)
	}
	// ρ̃ = ρ + C/2T ≈ ρ.
	if math.Abs(b.LogicalDrift-1e-4) > 1e-12 {
		t.Fatalf("LogicalDrift: got %v", b.LogicalDrift)
	}
	// ψ = ε + C/2 ≈ ε.
	if math.Abs(float64(b.Discontinuity)-wantEps) > 1e-9 {
		t.Fatalf("Discontinuity: got %v", b.Discontinuity)
	}
	if b.WayOff != b.MaxDeviation+b.Eps {
		t.Fatalf("WayOff: got %v", b.WayOff)
	}
	if b.RecoveryTime <= 0 || b.RecoveryTime > p.Theta {
		t.Fatalf("RecoveryTime: got %v", b.RecoveryTime)
	}
}

func TestCDecaysGeometrically(t *testing.T) {
	// Doubling Θ (hence K) must shrink C by ~2^ΔK — the O(2^−K) claim.
	base := DefaultParams(7, 2)
	base.Theta = 100 * simtime.Second
	bigger := base
	bigger.Theta = 200 * simtime.Second
	b1 := MustDerive(base)
	b2 := MustDerive(bigger)
	if b2.K <= b1.K {
		t.Fatalf("K did not grow: %d vs %d", b1.K, b2.K)
	}
	wantRatio := math.Pow(2, float64(b2.K-b1.K))
	gotRatio := float64(b1.C) / float64(b2.C)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 1e-9 {
		t.Fatalf("C ratio: got %v, want %v", gotRatio, wantRatio)
	}
}

func TestLogicalDriftApproachesRho(t *testing.T) {
	// As Θ → ∞ the additive factor vanishes (§1.1: "as the length of the
	// time period approaches infinity, this added factor approaches zero").
	p := DefaultParams(7, 2)
	p.Theta = 60 * simtime.Second
	small := MustDerive(p)
	p.Theta = simtime.Hour
	large := MustDerive(p)
	if !(large.LogicalDrift < small.LogicalDrift) {
		t.Fatal("logical drift must decrease with Θ")
	}
	if math.Abs(large.LogicalDrift-p.Rho) > 1e-15 {
		t.Fatalf("logical drift must approach ρ: got %v", large.LogicalDrift)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		want   error
	}{
		{"n<3f+1", func(p *Params) { p.N = 9 }, ErrResilience},
		{"negative f", func(p *Params) { p.F = -1 }, ErrResilience},
		{"MaxWait<2δ", func(p *Params) { p.MaxWait = p.Delta }, ErrMaxWait},
		{"SyncInt<2MaxWait", func(p *Params) { p.SyncInt = p.MaxWait }, ErrSyncInt},
		{"K<5", func(p *Params) { p.Theta = 30 * simtime.Second }, ErrKTooSmall},
		{"zero delta", func(p *Params) { p.Delta = 0 }, ErrModel},
		{"negative rho", func(p *Params) { p.Rho = -0.1 }, ErrModel},
		{"zero theta", func(p *Params) { p.Theta = 0 }, ErrModel},
	}
	for _, tc := range cases {
		p := DefaultParams(10, 3)
		tc.mutate(&p)
		err := Validate(p)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if _, derr := Derive(p); derr == nil {
			t.Errorf("%s: Derive must propagate validation failure", tc.name)
		}
	}
}

func TestMustDerivePanicsOnInvalid(t *testing.T) {
	p := DefaultParams(10, 3)
	p.N = 3
	defer func() {
		if recover() == nil {
			t.Fatal("MustDerive must panic on invalid params")
		}
	}()
	MustDerive(p)
}

func TestKRequiresSeveralSyncsPerPeriod(t *testing.T) {
	// The paper's framing: "we require that several synchronization
	// operations take place in each such period."
	p := DefaultParams(7, 2)
	p.Theta = 5 * p.T() // K exactly 5 — boundary accepted
	if err := Validate(p); err != nil {
		t.Fatalf("K=5 must validate: %v", err)
	}
	p.Theta = 5*p.T() - simtime.Millisecond // K=4 — rejected
	if err := Validate(p); !errors.Is(err, ErrKTooSmall) {
		t.Fatalf("K=4 must be rejected, got %v", err)
	}
}
