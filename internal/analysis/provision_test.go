package analysis

import (
	"math/rand"
	"testing"

	"clocksync/internal/simtime"
)

func TestProvisionMeetsTarget(t *testing.T) {
	cases := []struct {
		target simtime.Duration
		rho    float64
		theta  simtime.Duration
	}{
		{simtime.Second, 1e-4, 30 * simtime.Minute},
		{100 * simtime.Millisecond, 1e-6, 10 * simtime.Minute},
		{10 * simtime.Millisecond, 1e-6, 5 * simtime.Minute},
		{2 * simtime.Second, 1e-3, simtime.Hour},
	}
	for _, tc := range cases {
		p, err := Provision(tc.target, tc.rho, tc.theta)
		if err != nil {
			t.Fatalf("Provision(%v, %g, %v): %v", tc.target, tc.rho, tc.theta, err)
		}
		if err := Validate(p); err != nil {
			t.Fatalf("provisioned params invalid: %v", err)
		}
		b := MustDerive(p)
		if b.MaxDeviation > tc.target {
			t.Fatalf("Provision(%v): derived Δ=%v exceeds the target", tc.target, b.MaxDeviation)
		}
		// The solution should not be needlessly conservative: within 40% of
		// the budget (the K-ladder quantizes SyncInt, so exact tightness is
		// not expected).
		if float64(b.MaxDeviation) < 0.6*float64(tc.target) {
			t.Fatalf("Provision(%v): Δ=%v wastes most of the budget", tc.target, b.MaxDeviation)
		}
	}
}

func TestProvisionInfeasible(t *testing.T) {
	// 1 ms target with 10⁻³ drift and a 1 h period: the drift term alone
	// (18ρT with T ≥ Θ/160) is ≈ 0.4 s — hopeless.
	if _, err := Provision(simtime.Millisecond, 1e-3, simtime.Hour); err == nil {
		t.Fatal("impossible target accepted")
	}
	if _, err := Provision(0, 1e-4, simtime.Hour); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := Provision(simtime.Second, -1, simtime.Hour); err == nil {
		t.Fatal("negative rho accepted")
	}
	if _, err := Provision(simtime.Second, 1e-4, 0); err == nil {
		t.Fatal("zero theta accepted")
	}
}

func TestProvisionPropertyAlwaysSound(t *testing.T) {
	// Whatever Provision returns must derive a Δ at or under the target.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		target := simtime.Duration(0.005 + rng.Float64()*5)
		rho := []float64{0, 1e-6, 1e-5, 1e-4}[rng.Intn(4)]
		theta := simtime.Duration(120 + rng.Float64()*7200)
		p, err := Provision(target, rho, theta)
		if err != nil {
			continue // infeasible is a legal answer
		}
		b, err := Derive(p)
		if err != nil {
			t.Fatalf("trial %d: provisioned params do not derive: %v", trial, err)
		}
		if b.MaxDeviation > target {
			t.Fatalf("trial %d: Δ=%v > target %v", trial, b.MaxDeviation, target)
		}
	}
}
