package analysis

import (
	"fmt"
	"math"

	"clocksync/internal/simtime"
)

// Provision solves the inverse problem a deployer actually has: "I need the
// clocks within targetDelta of each other; my hardware drifts at ρ and my
// adversary period is Θ — what network and protocol parameters do I need?"
//
// It picks SyncInt = Θ/20 (the §4.1 sweet spot where the 2^−K accuracy
// penalty is already negligible) and then solves Δ(δ) = targetDelta for the
// message-delay bound δ, with MaxWait = 2δ. The returned parameters
// validate, and Derive on them meets the target. It fails when the target
// is unreachable for this (ρ, Θ): the drift term 18ρT alone can exceed the
// budget, in which case no network is fast enough and the deployment needs
// a shorter sync interval than Θ/20 permits or better oscillators.
func Provision(targetDelta simtime.Duration, rho float64, theta simtime.Duration) (Params, error) {
	if targetDelta <= 0 || theta <= 0 || rho < 0 {
		return Params{}, fmt.Errorf("analysis: invalid provisioning inputs (Δ=%v, ρ=%v, Θ=%v)", targetDelta, rho, theta)
	}
	// Try progressively more aggressive sync intervals: Θ/20 is preferred
	// (near-optimal accuracy), but a tight deviation target under heavy
	// drift may need more frequent synchronization.
	for _, kTarget := range []float64{20, 40, 80, 160} {
		syncInt := simtime.Duration(float64(theta) / kTarget)
		p, ok := solveDelta(targetDelta, rho, theta, syncInt)
		if !ok {
			continue
		}
		if err := Validate(p); err != nil {
			continue
		}
		if b := MustDerive(p); b.MaxDeviation <= targetDelta {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf(
		"analysis: no feasible parameters reach Δ=%v with ρ=%g, Θ=%v — the drift term alone exceeds the budget",
		targetDelta, rho, theta)
}

// solveDelta fixed-point iterates Δ(δ) = target for δ at a given SyncInt.
// It solves for 99.5% of the target so the returned parameters sit strictly
// inside the budget rather than on its floating-point edge.
func solveDelta(target simtime.Duration, rho float64, theta, syncInt simtime.Duration) (Params, bool) {
	goal := 0.995 * float64(target)
	// Initial guess: ignore drift and residue, Δ ≈ 16ε = 16(1+ρ)δ.
	delta := goal / (16 * (1 + rho))
	for iter := 0; iter < 32; iter++ {
		maxWait := 2 * delta
		t := (1+rho)*float64(syncInt) + 2*maxWait
		k := math.Floor(float64(theta) / t)
		if k < 5 {
			return Params{}, false
		}
		eps := (1 + rho) * maxWait / 2
		c := (17*eps + 18*rho*t) / math.Pow(2, k-3)
		// Solve 16ε + 18ρT + 4C = goal for ε (and hence δ), holding the
		// T- and C-valuations from the current iterate.
		budget := goal - 18*rho*t - 4*c
		if budget <= 0 {
			return Params{}, false
		}
		next := budget / (16 * (1 + rho))
		if math.Abs(next-delta) < 1e-12 {
			delta = next
			break
		}
		delta = next
	}
	if delta <= 0 {
		return Params{}, false
	}
	return Params{
		N:       4, // resilience is the caller's choice; 4 = minimal f=1
		F:       1,
		Rho:     rho,
		Delta:   simtime.Duration(delta),
		Theta:   theta,
		SyncInt: syncInt,
		MaxWait: simtime.Duration(2 * delta),
	}, true
}
