package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"clocksync/internal/simtime"
)

func TestEnvelopeAt(t *testing.T) {
	e := NewEnvelope(100, -2, 3, 0.01)
	lo, hi := e.At(100)
	if lo != -2 || hi != 3 {
		t.Fatalf("At(τ0): got [%v, %v]", lo, hi)
	}
	lo, hi = e.At(200)
	if math.Abs(float64(lo)-(-3)) > 1e-12 || math.Abs(float64(hi)-4) > 1e-12 {
		t.Fatalf("At(τ0+100): got [%v, %v]", lo, hi)
	}
	if w := e.Width(200); math.Abs(float64(w)-7) > 1e-12 {
		t.Fatalf("Width: got %v", w)
	}
}

func TestEnvelopeQueryBeforeT0Panics(t *testing.T) {
	e := NewEnvelope(100, 0, 1, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(99)
}

func TestEnvelopeConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEnvelope(0, 2, 1, 0.1) },
		func() { NewEnvelope(0, 0, 1, -0.1) },
		func() { NewEnvelope(0, 0, 1, 0.1).Extend(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEnvelopeContains(t *testing.T) {
	e := NewEnvelope(0, -1, 1, 0.1)
	if !e.Contains(0, 0) || !e.Contains(0, 1) || !e.Contains(0, -1) {
		t.Fatal("boundary containment")
	}
	if e.Contains(0, 1.001) {
		t.Fatal("exterior containment")
	}
	// At τ=10 the envelope is [−2, 2].
	if !e.Contains(10, 1.9) || e.Contains(10, 2.1) {
		t.Fatal("widened containment")
	}
}

func TestEnvelopeExtend(t *testing.T) {
	e := NewEnvelope(5, -1, 1, 0.01).Extend(2)
	lo, hi := e.At(5)
	if lo != -3 || hi != 3 {
		t.Fatalf("Extend: got [%v, %v]", lo, hi)
	}
}

func TestAvgProperty(t *testing.T) {
	// If β ∈ E(τ) and β′ ∈ E′(τ) then (β+β′)/2 ∈ avg(E,E′)(τ) — the key
	// fact the proof uses when the convergence function averages biases.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		rho := rng.Float64() * 0.01
		mk := func() Envelope {
			a := simtime.Duration(rng.Float64()*10 - 5)
			b := a + simtime.Duration(rng.Float64()*10)
			return NewEnvelope(0, a, b, rho)
		}
		e, f := mk(), mk()
		avg := Avg(e, f)
		tau := simtime.Time(rng.Float64() * 100)
		pick := func(env Envelope) simtime.Duration {
			lo, hi := env.At(tau)
			return lo + simtime.Duration(rng.Float64())*(hi-lo)
		}
		be, bf := pick(e), pick(f)
		if !avg.Contains(tau, (be+bf)/2) {
			t.Fatalf("avg property violated: trial %d", trial)
		}
	}
}

func TestAvgMisalignedPanics(t *testing.T) {
	e := NewEnvelope(0, 0, 1, 0.1)
	f := NewEnvelope(1, 0, 1, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Avg(e, f)
}

func TestRebase(t *testing.T) {
	e := NewEnvelope(0, -1, 1, 0.1)
	r := e.Rebase(10)
	if r.T0 != 10 {
		t.Fatalf("rebase T0: %v", r.T0)
	}
	// The rebased envelope matches the original from τ=10 onward.
	for _, tau := range []simtime.Time{10, 20, 55} {
		lo1, hi1 := e.At(tau)
		lo2, hi2 := r.At(tau)
		if math.Abs(float64(lo1-lo2)) > 1e-12 || math.Abs(float64(hi1-hi2)) > 1e-12 {
			t.Fatalf("rebase mismatch at %v", tau)
		}
	}
}

func TestContainsEnvelope(t *testing.T) {
	e := NewEnvelope(0, -10, 10, 0.1)
	inner := NewEnvelope(5, -2, 2, 0.1)
	if !e.ContainsEnvelope(inner) {
		t.Fatal("inner must be contained")
	}
	outer := NewEnvelope(5, -20, 2, 0.1)
	if e.ContainsEnvelope(outer) {
		t.Fatal("outer must not be contained")
	}
	earlier := NewEnvelope(-1, 0, 0, 0.1)
	if e.ContainsEnvelope(earlier) {
		t.Fatal("envelope anchored before e.T0 must not be contained")
	}
	wrongRho := NewEnvelope(5, -2, 2, 0.2)
	if e.ContainsEnvelope(wrongRho) {
		t.Fatal("mismatched rho must not be contained")
	}
}

func TestContainsEnvelopeIsForeverProperty(t *testing.T) {
	// Containment checked at f.T0 must persist at all later instants.
	f := func(loU, hiU, innerLoU, innerHiU, tauU uint16) bool {
		rho := 0.05
		lo := simtime.Duration(loU)/100 - 300
		hi := lo + simtime.Duration(hiU)/100
		e := NewEnvelope(0, lo, hi, rho)
		il := lo + simtime.Duration(innerLoU)/200
		ih := il + simtime.Duration(innerHiU)/200
		inner := NewEnvelope(10, il, ih, rho)
		if !e.ContainsEnvelope(inner) {
			return true // vacuous
		}
		tau := simtime.Time(10 + float64(tauU))
		elo, ehi := e.At(tau)
		flo, fhi := inner.At(tau)
		return flo >= elo-1e-9 && fhi <= ehi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeWideningMatchesDriftLemma(t *testing.T) {
	// The motivation for Definition 6: a clock that is not reset and has
	// drift ≤ ρ, starting with bias in [a,b], stays inside the envelope.
	// Simulate biases b(τ) = b0 + r·τ for |r| ≤ ρ.
	rng := rand.New(rand.NewSource(4))
	e := NewEnvelope(0, -1, 1, 0.01)
	for trial := 0; trial < 200; trial++ {
		b0 := simtime.Duration(rng.Float64()*2 - 1)
		r := (rng.Float64()*2 - 1) * 0.01
		for tau := simtime.Time(0); tau <= 100; tau += 5 {
			bias := b0 + simtime.Duration(r*float64(tau))
			if !e.Contains(tau, bias) {
				t.Fatalf("drifting bias escaped envelope: b0=%v r=%v τ=%v", b0, r, tau)
			}
		}
	}
}

func TestEnvelopeString(t *testing.T) {
	s := NewEnvelope(0, -1, 1, 0.01).String()
	if s == "" {
		t.Fatal("empty String")
	}
}
