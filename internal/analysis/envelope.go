package analysis

import (
	"fmt"

	"clocksync/internal/simtime"
)

// Envelope is the region of Definition 6 in the (τ, β)-plane:
//
//	E = { (τ, β) | τ ≥ τ0,  a − ρ(τ−τ0) ≤ β ≤ b + ρ(τ−τ0) }
//
// It captures how an interval of bias values widens over time under drift
// bound ρ when clocks are not reset. The proof of Theorem 5 (Appendix A)
// reasons entirely in terms of envelopes; we use the same algebra to verify
// Lemma 7 empirically in integration tests.
type Envelope struct {
	T0  simtime.Time     // reference instant τ0
	Lo  simtime.Duration // a — lower bias bound at τ0
	Hi  simtime.Duration // b — upper bias bound at τ0
	Rho float64          // drift bound governing the widening
}

// NewEnvelope returns Env{τ0, [lo, hi]} with drift bound rho.
func NewEnvelope(t0 simtime.Time, lo, hi simtime.Duration, rho float64) Envelope {
	if hi < lo {
		panic(fmt.Sprintf("analysis: inverted envelope [%v, %v]", lo, hi))
	}
	if rho < 0 {
		panic(fmt.Sprintf("analysis: negative drift bound %v", rho))
	}
	return Envelope{T0: t0, Lo: lo, Hi: hi, Rho: rho}
}

// At returns the bias interval E(τ) = [a − ρ(τ−τ0), b + ρ(τ−τ0)]. Querying
// before τ0 panics — envelopes are only defined forward of their reference
// instant.
func (e Envelope) At(tau simtime.Time) (lo, hi simtime.Duration) {
	if tau < e.T0 {
		panic(fmt.Sprintf("analysis: envelope queried at %v before τ0=%v", tau, e.T0))
	}
	w := simtime.Duration(e.Rho * float64(tau.Sub(e.T0)))
	return e.Lo - w, e.Hi + w
}

// Width returns |E(τ)|.
func (e Envelope) Width(tau simtime.Time) simtime.Duration {
	lo, hi := e.At(tau)
	return hi - lo
}

// Contains reports whether a bias value lies inside E(τ).
func (e Envelope) Contains(tau simtime.Time, bias simtime.Duration) bool {
	lo, hi := e.At(tau)
	return bias >= lo && bias <= hi
}

// Extend returns E + c, the envelope widened by c on both sides
// (Appendix A notation).
func (e Envelope) Extend(c simtime.Duration) Envelope {
	if c < 0 {
		panic(fmt.Sprintf("analysis: negative extension %v", c))
	}
	return Envelope{T0: e.T0, Lo: e.Lo - c, Hi: e.Hi + c, Rho: e.Rho}
}

// Avg returns avg(E, E′) = Env{τ0, [(a+a′)/2, (b+b′)/2]}. Both envelopes
// must share τ0 and ρ; the proof only ever averages aligned envelopes. The
// key property (Appendix A): if β ∈ E(τ) and β′ ∈ E′(τ) then
// (β+β′)/2 ∈ avg(E,E′)(τ).
func Avg(e, f Envelope) Envelope {
	if e.T0 != f.T0 || e.Rho != f.Rho {
		panic("analysis: averaging misaligned envelopes")
	}
	return Envelope{T0: e.T0, Lo: (e.Lo + f.Lo) / 2, Hi: (e.Hi + f.Hi) / 2, Rho: e.Rho}
}

// Rebase returns the envelope re-anchored at a later instant t1 with the
// same region from t1 onward: Env{t1, E(t1)}.
func (e Envelope) Rebase(t1 simtime.Time) Envelope {
	lo, hi := e.At(t1)
	return Envelope{T0: t1, Lo: lo, Hi: hi, Rho: e.Rho}
}

// ContainsEnvelope reports whether f's region from f.T0 onward lies within
// e's region (e defined at f.T0 or earlier). Because both boundaries are
// affine with slopes ±ρ and the slopes match, containment at f.T0 implies
// containment forever.
func (e Envelope) ContainsEnvelope(f Envelope) bool {
	if f.T0 < e.T0 || e.Rho != f.Rho {
		return false
	}
	lo, hi := e.At(f.T0)
	return f.Lo >= lo && f.Hi <= hi
}

// String formats the envelope.
func (e Envelope) String() string {
	return fmt.Sprintf("Env{%v, [%v, %v], ρ=%g}", e.T0, e.Lo, e.Hi, e.Rho)
}
