package conformance

import (
	"fmt"
	"math"
	"sort"

	"clocksync/internal/trace"
)

// Config declares what the checked run was configured with. F is required
// (the refinement is meaningless without the declared fault bound); WayOff
// and Tol are optional.
type Config struct {
	// F is the fault bound the run declared (trimming depth, quorum).
	F int
	// WayOff is the configured WayOff threshold in seconds. When zero the
	// branch decision cannot be pinned, and a recorded adjustment is
	// accepted if either branch's formula reproduces it.
	WayOff float64
	// Tol is the numeric tolerance for matching recorded adjustments
	// (default 1e-6 — covers the live path's nanosecond truncation).
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	return c
}

// Violation is one observed transition the spec does not allow. Action uses
// the spec's vocabulary (internal/mc); Round is the offending round span
// (0 for event-level findings).
type Violation struct {
	At     float64
	Node   int
	Round  uint64
	Action string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f p%d %s: %s (round span %d)", v.At, v.Node, v.Action, v.Detail, v.Round)
}

// Stats summarizes what the check actually replayed — a refinement pass
// over zero rounds proves nothing, so consumers should surface these.
type Stats struct {
	Events      int  // input records
	Nodes       int  // distinct nodes seen
	SpanMode    bool // round spans present: full per-round replay
	Rounds      int  // adjustment rounds replayed through the spec
	Skips       int  // skip rounds replayed
	Estimates   int  // peer estimates mapped onto ReceiveReply/Timeout
	EventRounds int  // round events checked structurally (no spans)
	Corruptions int  // corruption windows honored
	// TelemetrySpans counts fleet-telemetry spans (reply/serve/query) seen
	// and deliberately left out of the refinement: they describe the *other*
	// node's view of an exchange already replayed from the requester side,
	// so replaying them too would double-count transitions. Counting them
	// proves a merged syncmon export passed through unmangled.
	TelemetrySpans int
}

// Report is the outcome of one Check.
type Report struct {
	Stats      Stats
	Violations []Violation
}

// Ok reports whether the trace refines the spec.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Summary renders a one-line outcome for CLI output.
func (r *Report) Summary() string {
	mode := "event mode"
	if r.Stats.SpanMode {
		mode = "span mode"
	}
	return fmt.Sprintf("conformance: %d rounds + %d skips replayed, %d estimates, %d nodes (%s), %d violations",
		r.Stats.Rounds, r.Stats.Skips, r.Stats.Estimates, r.Stats.Nodes, mode, len(r.Violations))
}

// window is one [from, to) corruption interval of a node.
type window struct{ from, to float64 }

// Check replays a recorded trace (the JSONL stream of internal/obs events
// and spans, parsed by trace.Read or collected in-process) through the
// abstract spec's transition relation. Violations come back in
// deterministic (time, span) order.
func Check(events []trace.Event, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.F < 0 {
		return nil, fmt.Errorf("conformance: negative F")
	}
	rep := &Report{}
	rep.Stats.Events = len(events)

	nodes := map[int]bool{}
	corrupts := map[int][]trace.Event{}
	var roundSpans []trace.Event
	estsByParent := map[uint64][]trace.Event{}
	var roundEvents []trace.Event

	for _, e := range events {
		switch e.Kind {
		case trace.KindSpan:
			nodes[e.Node] = true
			switch e.Name {
			case "round":
				roundSpans = append(roundSpans, e)
			case "estimate":
				estsByParent[e.Parent] = append(estsByParent[e.Parent], e)
			case "reply", "serve", "query":
				rep.Stats.TelemetrySpans++
			}
		case trace.KindCorrupt, trace.KindRelease:
			corrupts[e.Node] = append(corrupts[e.Node], e)
		case "round":
			nodes[e.Node] = true
			roundEvents = append(roundEvents, e)
		case trace.KindAdjust, "skip":
			nodes[e.Node] = true
		}
	}
	rep.Stats.Nodes = len(nodes)
	rep.Stats.SpanMode = len(roundSpans) > 0

	// Corruption windows per node. The stream is not globally time-ordered
	// (the scenario engine emits schedule events after the run), so sort.
	windows := map[int][]window{}
	for node, evs := range corrupts {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		var open *window
		for _, e := range evs {
			switch e.Kind {
			case trace.KindCorrupt:
				if open == nil {
					windows[node] = append(windows[node], window{from: e.At, to: math.Inf(1)})
					open = &windows[node][len(windows[node])-1]
				}
			case trace.KindRelease:
				if open != nil {
					open.to = e.At
					open = nil
				}
			}
		}
		rep.Stats.Corruptions += len(windows[node])
	}

	// Time-window comparisons need a coarser tolerance than delta matching:
	// live traces carry Unix-seconds floats whose ULP is ~2e-7.
	timeTol := math.Max(cfg.Tol, 1e-5)
	inWindow := func(node int, from, to float64) bool {
		for _, w := range windows[node] {
			if from < w.to-timeTol && to > w.from+timeTol {
				return true
			}
		}
		return false
	}

	if !rep.Stats.SpanMode {
		checkEvents(rep, roundEvents, cfg, inWindow)
		return rep, nil
	}

	// Deterministic replay order: by start time, then span id.
	sort.SliceStable(roundSpans, func(i, j int) bool {
		if roundSpans[i].At != roundSpans[j].At {
			return roundSpans[i].At < roundSpans[j].At
		}
		return roundSpans[i].Span < roundSpans[j].Span
	})

	lastEnd := map[int]float64{}
	for _, rs := range roundSpans {
		checkRound(rep, rs, estsByParent[rs.Span], cfg, inWindow)
		// Rounds of one node must not overlap: the spec keeps at most one
		// round open per node (SendEstimate requires Idle).
		if prev, ok := lastEnd[rs.Node]; ok && rs.At < prev-timeTol {
			rep.add(rs, "SendEstimate", fmt.Sprintf(
				"round opened at %.6f while the previous round was still open until %.6f", rs.At, prev))
		}
		if end := rs.At + rs.Dur; end > lastEnd[rs.Node] {
			lastEnd[rs.Node] = end
		}
	}
	return rep, nil
}

func (r *Report) add(rs trace.Event, action, detail string) {
	r.Violations = append(r.Violations, Violation{
		At: rs.At, Node: rs.Node, Round: rs.Span, Action: action, Detail: detail,
	})
}

// checkRound replays one recorded round span (plus its child estimate
// spans) through the spec: the resolved estimate set must justify the
// recorded skip/adjust decision and the exact adjustment value.
func checkRound(rep *Report, rs trace.Event, estSpans []trace.Event, cfg Config, inWindow func(int, float64, float64) bool) {
	end := rs.At + rs.Dur
	if inWindow(rs.Node, rs.At, end) {
		rep.add(rs, "SendEstimate", "round executed while the node was corrupted (spec suspends corrupted nodes)")
	}

	// Group estimate spans by peer. The live path retries within a round,
	// so a peer may have several attempt spans: it answered iff any
	// attempt carries ok=1 (the protocol uses the first answer; all
	// attempts measure the same exchange).
	timeTol := math.Max(cfg.Tol, 1e-5)
	byPeer := map[int]estimate{}
	var peers []int
	for _, es := range estSpans {
		peer := int(es.Field("peer"))
		cur, seen := byPeer[peer]
		if esEnd := es.At + es.Dur; esEnd > end+timeTol || es.At < rs.At-timeTol {
			rep.add(rs, "ReceiveReply", fmt.Sprintf(
				"estimate of p%d resolved at %.6f, outside its round [%.6f, %.6f]", peer, esEnd, rs.At, end))
		}
		if es.Field("ok") == 1 {
			if !cur.ok || !seen {
				byPeer[peer] = estimate{peer: peer, d: es.Field("d"), a: es.Field("a"), ok: true}
			}
		} else if !seen {
			byPeer[peer] = estimate{peer: peer, ok: false}
		}
		if !seen {
			peers = append(peers, peer)
		}
	}
	sort.Ints(peers)
	ests := make([]estimate, 0, len(peers)+1)
	for _, p := range peers {
		ests = append(ests, byPeer[p])
	}
	// Figure 1 ranges over all of {1..n} including p itself; the protocol
	// appends the exact self-estimate (0, 0) without recording a span.
	ests = append(ests, estimate{peer: rs.Node, d: 0, a: 0, ok: true})
	rep.Stats.Estimates += len(peers)

	m, M := math.Inf(1), math.Inf(-1)
	if len(ests) > cfg.F {
		m, M = extremes(cfg.F, ests)
	}
	mustSkip := specSkip(cfg.F, ests, m, M)

	_, skipped := rs.Fields["skip"]
	if skipped {
		rep.Stats.Skips++
		if !mustSkip {
			rep.add(rs, "SkipRound", fmt.Sprintf(
				"round skipped but the spec requires ComputeAdjust (%d readings, m=%.6g M=%.6g)", len(ests), m, M))
		}
		return
	}

	delta, haveDelta := rs.Fields["delta"]
	if !haveDelta {
		rep.add(rs, "ComputeAdjust", "round span carries neither skip nor delta")
		return
	}
	rep.Stats.Rounds++
	if mustSkip {
		live := 0
		for _, e := range ests {
			if e.ok {
				live++
			}
		}
		rep.add(rs, "ComputeAdjust", fmt.Sprintf(
			"adjustment %.6g applied but the spec requires SkipRound (%d readings, %d live, need 2f+1=%d with f+1=%d live)",
			delta, len(ests), live, 2*cfg.F+1, cfg.F+1))
		return
	}

	// Which branch does the spec allow? With a known WayOff the recorded
	// extremes decide (up to tolerance at the boundary); without one, or
	// exactly at the boundary, either formula is acceptable. A recorded
	// wayoff flag (the simulator emits one) must agree with an allowed
	// branch.
	normal, jump := normalDelta(m, M), jumpDelta(m, M)
	allowNormal, allowJump := true, true
	if cfg.WayOff > 0 {
		w := cfg.WayOff
		allowNormal = m >= -w-cfg.Tol && M <= w+cfg.Tol
		allowJump = m < -w+cfg.Tol || M > w-cfg.Tol
	}
	if flag, ok := rs.Fields["wayoff"]; ok {
		if flag == 0 && !allowNormal {
			rep.add(rs, "ComputeAdjust", fmt.Sprintf(
				"normal branch recorded but extremes m=%.6g M=%.6g are beyond WayOff=%.6g", m, M, cfg.WayOff))
			return
		}
		if flag == 1 && !allowJump {
			rep.add(rs, "ComputeAdjust", fmt.Sprintf(
				"WayOff branch recorded but extremes m=%.6g M=%.6g are within WayOff=%.6g", m, M, cfg.WayOff))
			return
		}
		allowNormal = allowNormal && flag == 0
		allowJump = allowJump && flag == 1
	}
	okDelta := (allowNormal && math.Abs(delta-normal) <= cfg.Tol) ||
		(allowJump && math.Abs(delta-jump) <= cfg.Tol)
	if !okDelta {
		want := fmt.Sprintf("%.6g (normal) or %.6g (jump)", normal, jump)
		switch {
		case allowNormal && !allowJump:
			want = fmt.Sprintf("%.6g (normal branch)", normal)
		case allowJump && !allowNormal:
			want = fmt.Sprintf("%.6g (WayOff branch)", jump)
		}
		rep.add(rs, "ApplyAdjust", fmt.Sprintf(
			"recorded delta %.6g does not match the spec's %s from m=%.6g M=%.6g over %d readings",
			delta, want, m, M, len(ests)))
	}
}

// checkEvents is the span-less fallback: only structural properties are
// visible at event granularity, but they still catch rounds on corrupted
// nodes and clamp violations when WayOff is known.
func checkEvents(rep *Report, roundEvents []trace.Event, cfg Config, inWindow func(int, float64, float64) bool) {
	sort.SliceStable(roundEvents, func(i, j int) bool { return roundEvents[i].At < roundEvents[j].At })
	for _, e := range roundEvents {
		rep.Stats.EventRounds++
		if inWindow(e.Node, e.At, e.At) {
			rep.Violations = append(rep.Violations, Violation{
				At: e.At, Node: e.Node, Action: "SendEstimate",
				Detail: "round completed while the node was corrupted (spec suspends corrupted nodes)",
			})
		}
		if cfg.WayOff > 0 && e.Field("wayoff") == 0 {
			if d := math.Abs(e.Field("delta")); d > cfg.WayOff/2+cfg.Tol {
				rep.Violations = append(rep.Violations, Violation{
					At: e.At, Node: e.Node, Action: "ApplyAdjust",
					Detail: fmt.Sprintf("normal-branch adjustment %.6g exceeds the WayOff/2=%.6g clamp bound", d, cfg.WayOff/2),
				})
			}
		}
	}
}
