// Package conformance replays recorded span/event streams through the
// abstract Sync-round spec of internal/mc: every observed round must
// decompose into allowed spec actions (SendEstimate, ReceiveReply, Timeout,
// ComputeAdjust, ApplyAdjust, SkipRound) with the arithmetic of the paper's
// Figure 1. It is a refinement check — the implementation may do less than
// the spec allows (drop rounds, retry messages), but every transition it
// does take must be one the spec permits.
//
// The package deliberately reimplements the convergence function (sort-
// based, float64) rather than calling internal/core: an arithmetic bug in
// core's quickselect scratch must show up as a refinement violation, not be
// faithfully replayed.
package conformance

import (
	"math"
	"sort"
)

// estimate is one reading of a round: the measured offset d with error
// half-width a, or a timed-out peer (ok=false, treated as ±∞ exactly as
// Figure 1 does).
type estimate struct {
	peer int
	d, a float64
	ok   bool
}

// extremes returns the paper's trimmed extremes over the readings: m is the
// (f+1)-st smallest overestimate d+a, M the (f+1)-st largest underestimate
// d−a, with failed readings contributing +∞/−∞.
func extremes(f int, ests []estimate) (m, M float64) {
	overs := make([]float64, len(ests))
	unders := make([]float64, len(ests))
	for i, e := range ests {
		if e.ok {
			overs[i], unders[i] = e.d+e.a, e.d-e.a
		} else {
			overs[i], unders[i] = math.Inf(1), math.Inf(-1)
		}
	}
	sort.Float64s(overs)
	sort.Float64s(unders)
	return overs[f], unders[len(unders)-1-f]
}

// normalDelta is Figure 1's clamped midpoint: the adjustment when both
// extremes are within WayOff of the local clock.
func normalDelta(m, M float64) float64 {
	return (math.Min(m, 0) + math.Max(M, 0)) / 2
}

// jumpDelta is the recovery branch: the own clock is ignored and the clock
// jumps to the midpoint of the extremes.
func jumpDelta(m, M float64) float64 {
	return (m + M) / 2
}

// specSkip reports whether the spec requires this round to apply no
// adjustment: fewer than 2f+1 readings, or a trimmed extreme still
// infinite (fewer than f+1 live readings).
func specSkip(f int, ests []estimate, m, M float64) bool {
	return len(ests) < 2*f+1 || math.IsInf(m, 0) || math.IsInf(M, 0)
}
