package conformance

import (
	"sync"

	"clocksync/internal/obs"
	"clocksync/internal/trace"
)

// Collector is an in-process obs sink pair that accumulates the event and
// span stream of a run in the exact shape trace.Read produces from JSONL —
// so a live run can be refinement-checked without a round-trip through a
// file. It is safe for concurrent emission (live nodes emit from several
// goroutines).
type Collector struct {
	mu     sync.Mutex
	events []trace.Event
}

var (
	_ obs.Sink     = (*Collector)(nil)
	_ obs.SpanSink = (*Collector)(nil)
)

// Emit implements obs.Sink.
func (c *Collector) Emit(e obs.Event) {
	ev := trace.Event{
		At:        e.At,
		Kind:      trace.Kind(e.Kind),
		Node:      e.Node,
		Fields:    e.Fields,
		Deviation: e.Deviation,
	}
	if len(e.Biases) > 0 {
		ev.Biases = append([]float64(nil), e.Biases...)
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// EmitSpan implements obs.SpanSink, mirroring the JSONL spanRecord
// encoding (kind "span", At = start, Dur = end−start).
func (c *Collector) EmitSpan(s obs.Span) {
	ev := trace.Event{
		At:     s.Start,
		Kind:   trace.KindSpan,
		Node:   s.Node,
		Name:   s.Name,
		Span:   uint64(s.ID),
		Parent: uint64(s.Parent),
		Dur:    s.Dur(),
		Fields: s.Fields.Map(),
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns the collected stream (a copy, safe to use while emission
// continues).
func (c *Collector) Events() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Event(nil), c.events...)
}

// Reset clears the collector for reuse across runs.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.mu.Unlock()
}
