package conformance

import (
	"context"
	"testing"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/livenet"
	"clocksync/internal/simtime"
)

// TestCheckLivenetChaosRun refines a real concurrent cluster against the
// abstract spec: 5 nodes under seeded ambient packet chaos plus a scrambled
// crash window, spans collected in-process through ChaosConfig.SpanSink.
// The live path differs from the simulator in every awkward way the checker
// must absorb — Unix-seconds timestamps, nanosecond-truncated deltas, retry
// attempts producing several estimate spans per peer, and orphan spans from
// rounds cancelled at shutdown.
func TestCheckLivenetChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign needs wall time")
	}
	scale := 25 * time.Millisecond
	p := analysis.Params{
		Rho:     1e-4,
		Delta:   0.25,
		Theta:   16,
		SyncInt: 2,
		MaxWait: 0.5,
	}
	schedule := adversary.GenNetSchedule(1, adversary.GenNetConfig{
		N: 5, F: 1,
		Theta:    p.Theta,
		Start:    12,
		Horizon:  40,
		Scramble: 20,
		Chaos: adversary.PacketChaos{
			DropP:    0.05,
			DelayMax: 0.05,
		},
	})
	col := &Collector{}
	res, err := livenet.RunChaos(context.Background(), livenet.ChaosConfig{
		N: 5, F: 1,
		Seed:     1,
		Schedule: schedule,
		Params:   p,
		Horizon:  40,
		Scale:    scale,
		Offsets:  []simtime.Duration{-0.4, 0.3, 0.1, -0.2, 0.4},
		SpanSink: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := res.Err(); verr != nil {
		t.Fatalf("chaos run itself violated Theorem 5: %v", verr)
	}

	// The node configs carry WayOff in wall units (virtual bound × scale);
	// the recorded spans are in wall seconds.
	wayOff := float64(res.Bounds.WayOff) * scale.Seconds()
	rep, err := Check(col.Events(), Config{F: 1, WayOff: wayOff})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	for _, v := range rep.Violations {
		t.Errorf("live cluster failed refinement: %s", v.String())
	}
	if !rep.Stats.SpanMode || rep.Stats.Rounds == 0 || rep.Stats.Estimates == 0 {
		t.Fatalf("replay covered nothing: %+v", rep.Stats)
	}
	if rep.Stats.Nodes != 5 {
		t.Errorf("expected spans from all 5 nodes, got %d", rep.Stats.Nodes)
	}
}
