package conformance

import (
	"math"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/core"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

// span builds one trace.Event in the shape trace.Read produces for a JSONL
// span record.
func span(id, parent uint64, name string, node int, at, dur float64, fields map[string]float64) trace.Event {
	return trace.Event{
		At: at, Kind: trace.KindSpan, Node: node,
		Name: name, Span: id, Parent: parent, Dur: dur, Fields: fields,
	}
}

// round builds a complete synthetic round: the round span plus one estimate
// span per entry of ests (d, a, ok). Span ids start at base.
func round(base uint64, node int, at, dur float64, roundFields map[string]float64, ests []estimate) []trace.Event {
	evs := []trace.Event{span(base, 0, "round", node, at, dur, roundFields)}
	for i, e := range ests {
		f := map[string]float64{"peer": float64(e.peer)}
		if e.ok {
			f["d"], f["a"], f["ok"] = e.d, e.a, 1
		} else {
			f["ok"], f["timeout"] = 0, 1
		}
		evs = append(evs, span(base+1+uint64(i), base, "estimate", node, at, dur/2, f))
	}
	return evs
}

func mustCheck(t *testing.T, evs []trace.Event, cfg Config) *Report {
	t.Helper()
	rep, err := Check(evs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// wantViolation asserts exactly one violation with the given spec action.
func wantViolation(t *testing.T, rep *Report, action string) Violation {
	t.Helper()
	if len(rep.Violations) != 1 {
		t.Fatalf("want exactly one %s violation, got %d: %v", action, len(rep.Violations), rep.Violations)
	}
	if v := rep.Violations[0]; v.Action != action {
		t.Fatalf("violation action = %q, want %q: %s", v.Action, action, v.String())
	}
	return rep.Violations[0]
}

// TestCheckCleanRound: a faithful Figure 1 round refines the spec. Two live
// peers at f=1: overs {3, 5, 0(self)} → m = 3, unders {1, 3, 0} → M = 1,
// delta = (min(3,0)+max(1,0))/2 = 0.5.
func TestCheckCleanRound(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 0.5, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	})
	rep := mustCheck(t, evs, Config{F: 1, WayOff: 100})
	if !rep.Ok() {
		t.Fatalf("clean round flagged: %v", rep.Violations)
	}
	if rep.Stats.Rounds != 1 || rep.Stats.Estimates != 2 || !rep.Stats.SpanMode {
		t.Errorf("stats = %+v", rep.Stats)
	}
}

// TestCheckTimeoutIsInfinite: a timed-out peer must contribute ±∞ exactly as
// Figure 1 prescribes. Peer 1 at d=2±1, peer 2 lost: m = 3 (the +∞ over is
// trimmed last), M = 0 (self), delta = 0.
func TestCheckTimeoutIsInfinite(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 0, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, ok: false},
	})
	if rep := mustCheck(t, evs, Config{F: 1, WayOff: 100}); !rep.Ok() {
		t.Fatalf("timeout round flagged: %v", rep.Violations)
	}
	// The same readings with the live peer's midpoint instead of the spec's
	// trimmed value must be rejected.
	evs = round(1, 0, 10, 1, map[string]float64{"delta": 2, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, ok: false},
	})
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 100}), "ApplyAdjust")
}

// TestCheckClampDropped: the acceptance-criteria mutation — an adjustment
// computed without the midpoint clamp (plain (m+M)/2 = 2 instead of the
// clamped 0.5) must be flagged at the offending transition.
func TestCheckClampDropped(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 2, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	})
	v := wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 100}), "ApplyAdjust")
	if v.Node != 0 || v.Round != 1 {
		t.Errorf("violation should identify node 0 round span 1: %s", v.String())
	}
}

// TestCheckSkipRequired: adjusting on fewer than 2f+1 readings (one peer
// span + self = 2 < 3) violates the quorum guard.
func TestCheckSkipRequired(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 0, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
	})
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 100}), "ComputeAdjust")
}

// TestCheckSkipNotAllowed: skipping a round the spec requires to adjust
// (full quorum, finite extremes) is the dual violation.
func TestCheckSkipNotAllowed(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"skip": 1}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	})
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 100}), "SkipRound")

	// A justified skip — both extremes infinite after trimming — is clean.
	evs = round(1, 0, 10, 1, map[string]float64{"skip": 1}, []estimate{
		{peer: 1, ok: false},
		{peer: 2, ok: false},
	})
	if rep := mustCheck(t, evs, Config{F: 1, WayOff: 100}); !rep.Ok() {
		t.Fatalf("justified skip flagged: %v", rep.Violations)
	}
}

// TestCheckWayOffBranch: the recorded branch flag must agree with the
// extremes. M = 30 beyond WayOff=20 forces the jump branch.
func TestCheckWayOffBranch(t *testing.T) {
	ests := []estimate{
		{peer: 1, d: 29, a: 1, ok: true}, // over 30, under 28
		{peer: 2, d: 31, a: 1, ok: true}, // over 32, under 30
	}
	// m = 30, M = 28 → jump delta (30+28)/2 = 29, recorded faithfully.
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 29, "wayoff": 1}, ests)
	if rep := mustCheck(t, evs, Config{F: 1, WayOff: 20}); !rep.Ok() {
		t.Fatalf("faithful jump flagged: %v", rep.Violations)
	}
	// Claiming the normal branch out there is a divergence.
	evs = round(1, 0, 10, 1, map[string]float64{"delta": 14, "wayoff": 0}, ests)
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 20}), "ComputeAdjust")
	// And claiming the jump branch while converged is the reverse one.
	evs = round(1, 0, 10, 1, map[string]float64{"delta": 0.5, "wayoff": 1}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	})
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 20}), "ComputeAdjust")
}

// TestCheckLivenetRetries: the live path emits one estimate span per retry
// attempt; the peer answered iff any attempt carries ok=1, and the checker
// must not double-count the peer.
func TestCheckLivenetRetries(t *testing.T) {
	evs := round(1, 0, 10, 1, map[string]float64{"delta": 0.5, "wayoff": 0}, []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	})
	// A failed first attempt at peer 1, before the successful one.
	retry := span(9, 1, "estimate", 0, 10.1, 0.1, map[string]float64{"peer": 1, "ok": 0, "timeout": 1})
	evs = append(evs, retry)
	rep := mustCheck(t, evs, Config{F: 1, WayOff: 100})
	if !rep.Ok() {
		t.Fatalf("retried round flagged: %v", rep.Violations)
	}
	if rep.Stats.Estimates != 2 {
		t.Errorf("retries double-counted: %d estimates", rep.Stats.Estimates)
	}
}

// TestCheckCorruptionWindow: a round executed inside the node's corruption
// window violates the spec (corrupted processors take no protocol actions);
// the same round outside the window is clean.
func TestCheckCorruptionWindow(t *testing.T) {
	mk := func(at float64) []trace.Event {
		evs := round(1, 0, at, 1, map[string]float64{"delta": 0.5, "wayoff": 0}, []estimate{
			{peer: 1, d: 2, a: 1, ok: true},
			{peer: 2, d: 4, a: 1, ok: true},
		})
		// Schedule events arrive out of order, after the run — like the
		// scenario engine emits them.
		return append(evs,
			trace.Event{At: 20, Kind: trace.KindRelease, Node: 0},
			trace.Event{At: 5, Kind: trace.KindCorrupt, Node: 0},
		)
	}
	v := wantViolation(t, mustCheck(t, mk(10), Config{F: 1, WayOff: 100}), "SendEstimate")
	if v.Round != 1 {
		t.Errorf("violation should name the round span: %s", v.String())
	}
	if rep := mustCheck(t, mk(30), Config{F: 1, WayOff: 100}); !rep.Ok() {
		t.Fatalf("post-release round flagged: %v", rep.Violations)
	}
	if rep := mustCheck(t, mk(30), Config{F: 1, WayOff: 100}); rep.Stats.Corruptions != 1 {
		t.Errorf("corruption window not counted")
	}
}

// TestCheckOverlappingRounds: one node keeping two rounds open at once has
// no spec image (SendEstimate requires Idle).
func TestCheckOverlappingRounds(t *testing.T) {
	ests := []estimate{
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, d: 4, a: 1, ok: true},
	}
	evs := round(1, 0, 10, 5, map[string]float64{"delta": 0.5, "wayoff": 0}, ests)
	evs = append(evs, round(10, 0, 12, 5, map[string]float64{"delta": 0.5, "wayoff": 0}, ests)...)
	wantViolation(t, mustCheck(t, evs, Config{F: 1, WayOff: 100}), "SendEstimate")
}

// TestCheckEventMode: with no spans recorded the checker falls back to
// structural checks on round events — the clamp bound and corruption windows
// are still enforced.
func TestCheckEventMode(t *testing.T) {
	evs := []trace.Event{
		{At: 10, Kind: "round", Node: 0, Fields: map[string]float64{"delta": 3, "wayoff": 0}},
		{At: 20, Kind: "round", Node: 1, Fields: map[string]float64{"delta": 60, "wayoff": 0}},
	}
	rep := mustCheck(t, evs, Config{F: 1, WayOff: 100})
	if rep.Stats.SpanMode {
		t.Fatal("no spans present but SpanMode set")
	}
	v := wantViolation(t, rep, "ApplyAdjust")
	if v.Node != 1 {
		t.Errorf("clamp violation should name node 1: %s", v.String())
	}
}

// TestExtremes pins the spec's order statistics against hand values.
func TestExtremes(t *testing.T) {
	ests := []estimate{
		{peer: 0, d: 0, a: 0, ok: true},
		{peer: 1, d: 2, a: 1, ok: true},
		{peer: 2, ok: false},
	}
	if m, M := extremes(1, ests); m != 3 || M != 0 {
		t.Errorf("extremes = %v, %v; want 3, 0", m, M)
	}
	// With f=0 the infinite readings sit at the untrimmed ends and never
	// reach the extremes — the exact failure mode mc's NoTrim mutation
	// demonstrates (the skip guard loses its teeth).
	if m, M := extremes(0, ests); m != 0 || M != 1 {
		t.Errorf("untrimmed extremes = %v, %v; want 0, 1", m, M)
	}
	// With f=2 the trim depth exceeds the live readings and both extremes go
	// infinite, forcing the skip.
	if m, M := extremes(2, ests); !math.IsInf(m, 1) || !math.IsInf(M, -1) {
		t.Errorf("over-trimmed extremes must be infinite: %v, %v", m, M)
	}
}

// simScenario is a short adversarial simulation with the collector attached
// as both event and span sink.
func simScenario(col *Collector) scenario.Scenario {
	s := scenario.Scenario{
		Name:       "conformance",
		Seed:       11,
		N:          5,
		F:          1,
		Duration:   6 * simtime.Minute,
		Theta:      3 * simtime.Minute,
		Rho:        1e-4,
		InitSpread: 200 * simtime.Millisecond,
	}
	s.Adversary = adversary.Rotate(s.N, s.F, simtime.Time(1*simtime.Minute),
		20*simtime.Second, s.Theta, 2,
		func(int) protocol.Behavior { return adversary.Crash{} })
	s.EventSink = col
	s.SpanSink = col
	return s
}

// TestCheckSimRun: a faithful simulated run — crash corruptions included —
// refines the spec, and the replay demonstrably covered rounds, estimates
// and corruption windows.
func TestCheckSimRun(t *testing.T) {
	col := &Collector{}
	s := simScenario(col)
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, col.Events(), Config{F: s.F, WayOff: float64(res.Scenario.WayOff)})
	t.Log(rep.Summary())
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("refinement violation: %s", v.String())
		}
	}
	if rep.Stats.Rounds == 0 || rep.Stats.Estimates == 0 {
		t.Fatalf("replay covered nothing: %+v", rep.Stats)
	}
	if !rep.Stats.SpanMode || rep.Stats.Corruptions == 0 {
		t.Fatalf("expected span-mode replay over a corrupted run: %+v", rep.Stats)
	}
}

// TestCheckMutatedSimRun: the bridge's teeth — a deliberately mutated
// implementation (WayOff threshold collapsed to 1 ms, so nodes take the
// recovery jump while the declared configuration says they converged) must
// fail refinement with the offending transition identified.
func TestCheckMutatedSimRun(t *testing.T) {
	col := &Collector{}
	s := simScenario(col)
	s.Builder = scenario.SyncBuilder(func(cfg *core.Config, _ scenario.BuildContext) {
		cfg.WayOff = simtime.Millisecond
	})
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustCheck(t, col.Events(), Config{F: s.F, WayOff: float64(res.Scenario.WayOff)})
	t.Log(rep.Summary())
	if rep.Ok() {
		t.Fatal("mutated implementation passed refinement")
	}
	v := rep.Violations[0]
	if v.Action != "ComputeAdjust" {
		t.Errorf("expected the branch divergence at ComputeAdjust, got: %s", v.String())
	}
	if v.Round == 0 {
		t.Errorf("violation must identify the offending round span: %s", v.String())
	}
}

// TestCollectorRoundTrip: the collector's in-process stream matches what
// trace.Read would produce from the JSONL encoding of the same run — the
// contract that lets campaign runs skip the file round-trip.
func TestCollectorRoundTrip(t *testing.T) {
	col := &Collector{}
	s := simScenario(col)
	if _, err := scenario.Run(s); err != nil {
		t.Fatal(err)
	}
	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("collector captured nothing")
	}
	col.Reset()
	if len(col.Events()) != 0 {
		t.Fatal("Reset did not clear the collector")
	}
	spans := 0
	for _, e := range evs {
		if e.Kind == trace.KindSpan {
			spans++
			if e.Name == "" || e.Span == 0 {
				t.Fatalf("span event missing name or id: %+v", e)
			}
		}
	}
	if spans == 0 {
		t.Fatal("collector captured no spans")
	}
}
