package adversary

import (
	"math/rand"
	"strings"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

func mkCrash(int) protocol.Behavior { return Crash{} }

func TestValidateAcceptsFLimited(t *testing.T) {
	// Two corruptions of different nodes separated by more than Θ.
	s := Schedule{Corruptions: []Corruption{
		{Node: 0, From: 0, To: 10, Behavior: Crash{}},
		{Node: 1, From: 200, To: 210, Behavior: Crash{}},
	}}
	if err := s.Validate(4, 1, 100); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateRejectsWindowViolation(t *testing.T) {
	// Both corruptions fall inside one Θ=100 window: a 1-limited adversary
	// may not do this even though the intervals themselves are disjoint.
	s := Schedule{Corruptions: []Corruption{
		{Node: 0, From: 0, To: 10, Behavior: Crash{}},
		{Node: 1, From: 50, To: 60, Behavior: Crash{}},
	}}
	if err := s.Validate(4, 1, 100); err == nil {
		t.Fatal("window violation accepted")
	}
	// The same schedule is fine for f=2.
	if err := s.Validate(4, 2, 100); err != nil {
		t.Fatalf("f=2 schedule rejected: %v", err)
	}
}

func TestValidateSameNodeRepeatedIsOneProcessor(t *testing.T) {
	// Definition 2 counts processors, not break-ins: hitting the same node
	// five times in one window is 1-limited.
	var s Schedule
	for i := 0; i < 5; i++ {
		from := simtime.Time(i * 20)
		s.Corruptions = append(s.Corruptions, Corruption{
			Node: 0, From: from, To: from.Add(10), Behavior: Crash{},
		})
	}
	if err := s.Validate(4, 1, 1000); err != nil {
		t.Fatalf("repeated same-node corruption rejected: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		n, f int
		th   simtime.Duration
	}{
		{"node out of range", Schedule{Corruptions: []Corruption{{Node: 9, From: 0, To: 1, Behavior: Crash{}}}}, 4, 1, 10},
		{"negative node", Schedule{Corruptions: []Corruption{{Node: -1, From: 0, To: 1, Behavior: Crash{}}}}, 4, 1, 10},
		{"empty interval", Schedule{Corruptions: []Corruption{{Node: 0, From: 5, To: 5, Behavior: Crash{}}}}, 4, 1, 10},
		{"nil behavior", Schedule{Corruptions: []Corruption{{Node: 0, From: 0, To: 1}}}, 4, 1, 10},
		{"overlap same node", Schedule{Corruptions: []Corruption{
			{Node: 0, From: 0, To: 10, Behavior: Crash{}},
			{Node: 0, From: 5, To: 15, Behavior: Crash{}},
		}}, 4, 1, 10},
		{"bad theta", Schedule{}, 4, 1, 0},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(tc.n, tc.f, tc.th); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateAgainstBruteForce(t *testing.T) {
	// Random schedules, checked against a brute-force window scan.
	rng := rand.New(rand.NewSource(17))
	const n = 6
	theta := simtime.Duration(50)
	for trial := 0; trial < 300; trial++ {
		var s Schedule
		for c := 0; c < 1+rng.Intn(8); c++ {
			from := simtime.Time(rng.Intn(400))
			s.Corruptions = append(s.Corruptions, Corruption{
				Node:     rng.Intn(n),
				From:     from,
				To:       from.Add(simtime.Duration(1 + rng.Intn(60))),
				Behavior: Crash{},
			})
		}
		// Skip schedules with per-node overlaps; those are rejected before
		// the window check and the oracle below doesn't model them.
		perNodeOverlap := false
		for i := 0; i < len(s.Corruptions) && !perNodeOverlap; i++ {
			for j := i + 1; j < len(s.Corruptions); j++ {
				a, b := s.Corruptions[i], s.Corruptions[j]
				if a.Node == b.Node && a.From < b.To && b.From < a.To {
					perNodeOverlap = true
					break
				}
			}
		}
		if perNodeOverlap {
			continue
		}
		// Brute force: slide a Θ window across a fine grid and count
		// distinct controlled processors.
		brute := 0
		for start := simtime.Time(-60); start < 480; start += 0.5 {
			window := simtime.Interval{Lo: start, Hi: start.Add(theta)}
			seen := map[int]bool{}
			for _, c := range s.Corruptions {
				if c.From <= window.Hi && window.Lo <= c.To {
					seen[c.Node] = true
				}
			}
			if len(seen) > brute {
				brute = len(seen)
			}
		}
		for f := 1; f <= 3; f++ {
			err := s.Validate(n, f, theta)
			if brute <= f && err != nil {
				t.Fatalf("trial %d: f=%d brute says legal (%d), validator rejected: %v", trial, f, brute, err)
			}
			if brute > f && err == nil {
				t.Fatalf("trial %d: f=%d brute says illegal (%d), validator accepted", trial, f, brute)
			}
		}
	}
}

func TestRotateIsFLimited(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		s := Rotate(10, f, 100, 30, 300, 40, mkCrash)
		if err := s.Validate(10, f, 300); err != nil {
			t.Fatalf("f=%d: rotation schedule invalid: %v", f, err)
		}
		if len(s.Corruptions) != 40 {
			t.Fatalf("f=%d: got %d corruptions", f, len(s.Corruptions))
		}
		// Every node is eventually hit.
		hit := map[int]bool{}
		for _, c := range s.Corruptions {
			hit[c.Node] = true
		}
		if len(hit) != 10 {
			t.Fatalf("f=%d: rotation covered %d of 10 nodes", f, len(hit))
		}
	}
}

func TestRotateNotFLimitedForSmallerF(t *testing.T) {
	// A 2-limited rotation must fail validation as a 1-limited schedule.
	s := Rotate(10, 2, 0, 30, 300, 30, mkCrash)
	if err := s.Validate(10, 1, 300); err == nil {
		t.Fatal("2-limited rotation accepted as 1-limited")
	}
}

func TestStatic(t *testing.T) {
	s := Static([]int{1, 3}, 10, 500, mkCrash)
	if err := s.Validate(10, 2, 100); err != nil {
		t.Fatalf("static schedule invalid: %v", err)
	}
	if err := s.Validate(10, 1, 100); err == nil {
		t.Fatal("static schedule of 2 nodes accepted as 1-limited")
	}
}

func TestActiveAtAndControlledWithin(t *testing.T) {
	s := Schedule{Corruptions: []Corruption{
		{Node: 2, From: 10, To: 20, Behavior: Crash{}},
	}}
	if s.ActiveAt(2, 9.999) || !s.ActiveAt(2, 10) || !s.ActiveAt(2, 19.999) || s.ActiveAt(2, 20) {
		t.Fatal("ActiveAt boundaries wrong (half-open [From, To))")
	}
	if s.ActiveAt(1, 15) {
		t.Fatal("wrong node active")
	}
	if !s.ControlledWithin(2, simtime.Interval{Lo: 0, Hi: 10}) {
		t.Fatal("interval touching corruption start must count")
	}
	if s.ControlledWithin(2, simtime.Interval{Lo: 20, Hi: 30}) {
		t.Fatal("interval starting at release must not count")
	}
	if !s.ControlledWithin(2, simtime.Interval{Lo: 15, Hi: 16}) {
		t.Fatal("interior interval must count")
	}
	if s.End() != 20 {
		t.Fatalf("End: got %v", s.End())
	}
	if (Schedule{}).End() != 0 {
		t.Fatal("empty End")
	}
}

func TestApplyDrivesHarness(t *testing.T) {
	sim := des.New(1)
	net := network.New(sim, network.NewFullMesh(2), network.ConstantDelay{D: simtime.Millisecond})
	hs := []*protocol.Harness{
		protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1))),
		protocol.NewHarness(1, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1))),
	}
	s := Schedule{Corruptions: []Corruption{
		{Node: 0, From: 5, To: 15, Behavior: ClockSmash{Offset: 100}},
	}}
	s.Apply(sim, hs)
	sim.RunUntil(10)
	if !hs[0].Faulty() {
		t.Fatal("node 0 should be faulty at t=10")
	}
	sim.RunUntil(20)
	if hs[0].Faulty() {
		t.Fatal("node 0 should be released at t=20")
	}
	if got := hs[0].Clock().Bias(20); got != 100 {
		t.Fatalf("smash offset not applied: bias=%v", got)
	}
}

func TestMustValidatePanics(t *testing.T) {
	s := Schedule{Corruptions: []Corruption{
		{Node: 0, From: 0, To: 10, Behavior: Crash{}},
		{Node: 1, From: 20, To: 30, Behavior: Crash{}},
	}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(error).Error(), "not 1-limited") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.MustValidate(4, 1, 100)
}

func TestBehaviors(t *testing.T) {
	sim := des.New(1)
	net := network.New(sim, network.NewFullMesh(2), network.ConstantDelay{D: simtime.Millisecond})
	h := protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	_ = protocol.NewHarness(1, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))

	if _, reply := (Crash{}).RespondTime(h, 1, 10); reply {
		t.Fatal("Crash must not reply")
	}

	smash := ClockSmash{Offset: -50}
	smash.OnCorrupt(h, 10)
	if got := h.Clock().Bias(10); got != -50 {
		t.Fatalf("ClockSmash: bias %v", got)
	}
	if reading, reply := smash.RespondTime(h, 1, 10); !reply || reading != h.Clock().Now(10) {
		t.Fatal("non-quiet ClockSmash must report the smashed clock")
	}
	if _, reply := (ClockSmash{Quiet: true}).RespondTime(h, 1, 10); reply {
		t.Fatal("quiet ClockSmash must not reply")
	}

	liar := RandomLiar{Amplitude: 5}
	for i := 0; i < 100; i++ {
		reading, reply := liar.RespondTime(h, 1, 10)
		if !reply {
			t.Fatal("RandomLiar must reply")
		}
		diff := float64(reading.Sub(h.Clock().Now(10)))
		if diff < -5 || diff > 5 {
			t.Fatalf("RandomLiar noise %v outside amplitude", diff)
		}
	}

	cl := ConsistentLiar{Offset: 7}
	if reading, _ := cl.RespondTime(h, 1, 10); reading != 17 {
		t.Fatalf("ConsistentLiar: got %v", reading)
	}

	sb := SplitBrain{Boundary: 1, Offset: 3}
	lo, _ := sb.RespondTime(h, 0, 10)
	hi, _ := sb.RespondTime(h, 1, 10)
	if lo != 13 || hi != 7 {
		t.Fatalf("SplitBrain: got %v, %v", lo, hi)
	}

	ep := &EdgePusher{Push: 2, Rate: 0.1}
	ep.OnCorrupt(h, 100)
	if reading, _ := ep.RespondTime(h, 1, 100); reading != 102 {
		t.Fatalf("EdgePusher at t0: got %v", reading)
	}
	if reading, _ := ep.RespondTime(h, 1, 110); reading != 113 {
		t.Fatalf("EdgePusher creep: got %v", reading)
	}

	hon := Honest{}
	if reading, reply := hon.RespondTime(h, 1, 10); !reply || reading != h.Clock().Now(10) {
		t.Fatal("Honest must report the true clock")
	}
}

// TestValidateEdgeCases pins the boundary semantics of the Definition 2
// check in one table: extended Θ-windows that exactly touch count as
// overlapping (conservative), per-node back-to-back intervals are legal
// while true overlaps are not, exactly f simultaneous processors pass where
// f+1 fail, and the empty schedule is universally valid.
func TestValidateEdgeCases(t *testing.T) {
	const theta = simtime.Duration(100)
	cases := []struct {
		name    string
		sched   Schedule
		n, f    int
		wantErr string // substring of the expected error; "" means valid
	}{
		{
			name:  "empty schedule valid even with f=0",
			sched: Schedule{},
			n:     4, f: 0,
		},
		{
			// Node 0's window influence ends at To=20; node 1's begins at
			// From−Θ = 20. The τ=20 window sees both — reject at exact touch.
			name: "touching theta windows count as overlap",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 0, From: 10, To: 20, Behavior: Crash{}},
				{Node: 1, From: 120, To: 130, Behavior: Crash{}},
			}},
			n: 4, f: 1,
			wantErr: "not 1-limited",
		},
		{
			// One nanosecond of separation and no window sees both.
			name: "just past touching is valid",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 0, From: 10, To: 20, Behavior: Crash{}},
				{Node: 1, From: 120.000000001, To: 130, Behavior: Crash{}},
			}},
			n: 4, f: 1,
		},
		{
			name: "per-node overlapping corruptions rejected",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 2, From: 10, To: 20, Behavior: Crash{}},
				{Node: 2, From: 15, To: 25, Behavior: Crash{}},
			}},
			n: 4, f: 2,
			wantErr: "overlapping corruptions of node 2",
		},
		{
			// [10,20) and [20,30) share only the instant 20, which [From,To)
			// excludes from the first — legal, and merged into one window.
			name: "per-node back-to-back intervals valid",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 2, From: 10, To: 20, Behavior: Crash{}},
				{Node: 2, From: 20, To: 30, Behavior: Crash{}},
			}},
			n: 4, f: 1,
		},
		{
			name: "exactly f simultaneous processors valid",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 0, From: 10, To: 20, Behavior: Crash{}},
				{Node: 1, From: 10, To: 20, Behavior: Crash{}},
			}},
			n: 7, f: 2,
		},
		{
			name: "f+1 simultaneous processors rejected",
			sched: Schedule{Corruptions: []Corruption{
				{Node: 0, From: 10, To: 20, Behavior: Crash{}},
				{Node: 1, From: 10, To: 20, Behavior: Crash{}},
				{Node: 2, From: 10, To: 20, Behavior: Crash{}},
			}},
			n: 7, f: 2,
			wantErr: "not 2-limited",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sched.Validate(tc.n, tc.f, theta)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid schedule rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid schedule accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
