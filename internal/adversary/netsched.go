package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"clocksync/internal/simtime"
)

// This file extends the adversary model from processor corruption to the
// network itself, for the live-network path (internal/livenet): the same
// f-limited mobile adversary of Definition 2, but expressed as message-level
// faults — drops, duplication, reordering, bounded extra delay, partitions
// and node crash/restart — instead of protocol behaviors. A NetSchedule is
// the static, seed-reproducible description of one chaos run; its structured
// faults map onto ordinary Corruption windows so the Definition 2 budget is
// checked by the exact same sweep Schedule.Validate uses.

// PacketChaos is ambient, per-packet network noise applied for the whole
// run: every message independently risks being dropped, duplicated,
// reordered past its successor, or delivered with bounded extra delay.
// Packet fates are derived by hashing the seed with the message bytes, so a
// given schedule inflicts the same fate on the same message regardless of
// goroutine interleaving.
type PacketChaos struct {
	DropP    float64          // P(message silently lost)
	DupP     float64          // P(message delivered twice)
	ReorderP float64          // P(message held back past its successor)
	DelayMax simtime.Duration // extra delivery delay, uniform in [0, DelayMax]
}

// Validate checks the probabilities and the delay bound.
func (p PacketChaos) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"DropP", p.DropP}, {"DupP", p.DupP}, {"ReorderP", p.ReorderP}} {
		if pr.v < 0 || pr.v >= 1 {
			return fmt.Errorf("adversary: PacketChaos.%s %g outside [0,1)", pr.name, pr.v)
		}
	}
	if p.DelayMax < 0 {
		return fmt.Errorf("adversary: negative PacketChaos.DelayMax %v", p.DelayMax)
	}
	return nil
}

// Zero reports whether the chaos injects nothing.
func (p PacketChaos) Zero() bool {
	return p.DropP == 0 && p.DupP == 0 && p.ReorderP == 0 && p.DelayMax == 0
}

// NetFaultKind enumerates the structured (windowed) network faults.
type NetFaultKind int

const (
	// FaultCrash silences the victim nodes completely during the window:
	// nothing they send leaves, nothing sent to them arrives — a process
	// crash with restart at the window's end. Scramble, when non-zero, is
	// the clock error the node restarts with (state lost on the way down).
	FaultCrash NetFaultKind = iota
	// FaultPartition cuts traffic between the victim nodes and the rest of
	// the cluster during the window. Victims keep talking to each other.
	// When Asymmetric, only traffic FROM the rest TO the victims is cut —
	// victims shout into a network they cannot hear.
	FaultPartition
)

// String names the kind.
func (k NetFaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("netfault(%d)", int(k))
	}
}

// NetFault is one structured network fault window: the victims are
// unreachable (crash) or cut off (partition) during [From, To).
type NetFault struct {
	Kind       NetFaultKind
	Nodes      []int // victims; counted against the Definition 2 budget
	From, To   simtime.Time
	Asymmetric bool             // partitions only: one-way cut (rest → victims)
	Scramble   simtime.Duration // crashes only: clock error on restart
}

// NetSchedule is a full chaos plan for one live run: ambient packet noise
// plus structured fault windows. It is the livenet analogue of Schedule.
type NetSchedule struct {
	Chaos  PacketChaos
	Faults []NetFault
}

// Corruptions maps the structured faults onto the processor-corruption
// schedule they are equivalent to under Definition 2: every victim of every
// window is "controlled" for that window (crashed and partitioned nodes
// alike cannot act as good processors). The ambient packet chaos does not
// appear — it is in-model noise the protocol must absorb, not a corruption.
func (s NetSchedule) Corruptions() Schedule {
	var out Schedule
	for _, f := range s.Faults {
		for _, node := range f.Nodes {
			out.Corruptions = append(out.Corruptions, Corruption{
				Node: node, From: f.From, To: f.To, Behavior: Crash{},
			})
		}
	}
	// Schedule.Validate rejects per-node overlap; merge overlapping windows
	// of the same node so that e.g. a crash inside a partition validates.
	return mergePerNode(out)
}

// mergePerNode coalesces overlapping or touching corruption windows of the
// same node into one, keeping the sweep semantics identical.
func mergePerNode(in Schedule) Schedule {
	perNode := make(map[int][]Corruption)
	for _, c := range in.Corruptions {
		perNode[c.Node] = append(perNode[c.Node], c)
	}
	var out Schedule
	nodes := make([]int, 0, len(perNode))
	for node := range perNode {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		cs := perNode[node]
		sort.Slice(cs, func(i, j int) bool { return cs[i].From < cs[j].From })
		cur := cs[0]
		for _, c := range cs[1:] {
			if c.From <= cur.To {
				if c.To > cur.To {
					cur.To = c.To
				}
				continue
			}
			out.Corruptions = append(out.Corruptions, cur)
			cur = c
		}
		out.Corruptions = append(out.Corruptions, cur)
	}
	return out
}

// Validate checks the whole plan: packet-chaos parameters, fault-window
// sanity, and — via the Corruptions mapping — that the structured faults
// stay within the Definition 2 budget of an f-limited adversary with period
// theta over n processors.
func (s NetSchedule) Validate(n, f int, theta simtime.Duration) error {
	if err := s.Chaos.Validate(); err != nil {
		return err
	}
	for i, fa := range s.Faults {
		if len(fa.Nodes) == 0 {
			return fmt.Errorf("adversary: net fault %d has no victims", i)
		}
		seen := make(map[int]bool, len(fa.Nodes))
		for _, node := range fa.Nodes {
			if node < 0 || node >= n {
				return fmt.Errorf("adversary: net fault %d targets node %d outside [0,%d)", i, node, n)
			}
			if seen[node] {
				return fmt.Errorf("adversary: net fault %d lists node %d twice", i, node)
			}
			seen[node] = true
		}
		if fa.To <= fa.From {
			return fmt.Errorf("adversary: net fault %d has empty window [%v,%v)", i, fa.From, fa.To)
		}
		if fa.Kind != FaultCrash && fa.Scramble != 0 {
			return fmt.Errorf("adversary: net fault %d sets Scramble on a %v (crashes only)", i, fa.Kind)
		}
		if fa.Kind != FaultPartition && fa.Asymmetric {
			return fmt.Errorf("adversary: net fault %d sets Asymmetric on a %v (partitions only)", i, fa.Kind)
		}
	}
	return s.Corruptions().Validate(n, f, theta)
}

// CrashedAt reports whether node is inside a crash window at instant t.
func (s NetSchedule) CrashedAt(node int, t simtime.Time) bool {
	for _, f := range s.Faults {
		if f.Kind != FaultCrash || t < f.From || t >= f.To {
			continue
		}
		for _, v := range f.Nodes {
			if v == node {
				return true
			}
		}
	}
	return false
}

// Blocks reports whether a message sent from → to at instant t is cut by a
// structured fault (crash of either endpoint, or an active partition
// separating them in that direction). Ambient packet chaos is not consulted.
func (s NetSchedule) Blocks(from, to int, t simtime.Time) bool {
	for _, f := range s.Faults {
		if t < f.From || t >= f.To {
			continue
		}
		switch f.Kind {
		case FaultCrash:
			for _, v := range f.Nodes {
				if v == from || v == to {
					return true
				}
			}
		case FaultPartition:
			fromIn, toIn := false, false
			for _, v := range f.Nodes {
				if v == from {
					fromIn = true
				}
				if v == to {
					toIn = true
				}
			}
			if fromIn == toIn {
				continue // same side; unaffected
			}
			if f.Asymmetric && fromIn {
				continue // victims may still send out
			}
			return true
		}
	}
	return false
}

// End returns the latest window end in the schedule (0 when no structured
// faults are present).
func (s NetSchedule) End() simtime.Time {
	var end simtime.Time
	for _, f := range s.Faults {
		if f.To > end {
			end = f.To
		}
	}
	return end
}

// GenNetConfig tunes GenNetSchedule.
type GenNetConfig struct {
	N, F    int
	Theta   simtime.Duration // adversary period (Definition 2)
	Start   simtime.Time     // first window begins here (leave warm-up clean)
	Horizon simtime.Time     // no window extends past this instant
	Dwell   simtime.Duration // window length (0 → Theta/4)
	// Scramble is the restart clock error of crash faults (0 → none).
	Scramble simtime.Duration
	Chaos    PacketChaos
}

// GenNetSchedule draws a random valid-by-construction f-limited chaos plan:
// fault epochs of up to f victims each, alternating crash and partition
// windows, spaced more than Θ + dwell apart so that no Θ-window ever sees
// two epochs — hence never more than f controlled processors. The result is
// a pure function of the seed and config, and always validates.
func GenNetSchedule(seed int64, cfg GenNetConfig) NetSchedule {
	if cfg.N < 2 || cfg.F < 1 || cfg.Theta <= 0 {
		panic(fmt.Sprintf("adversary: bad GenNetSchedule(n=%d, f=%d, Θ=%v)", cfg.N, cfg.F, cfg.Theta))
	}
	rng := rand.New(rand.NewSource(seed))
	dwell := cfg.Dwell
	if dwell <= 0 {
		dwell = cfg.Theta / 4
	}
	s := NetSchedule{Chaos: cfg.Chaos}
	// Epochs strictly more than Θ + dwell apart: the extended intervals
	// [From−Θ, To] of two consecutive epochs can then never overlap.
	stride := cfg.Theta + 2*dwell + simtime.Millisecond
	for at := cfg.Start; at.Add(dwell) < cfg.Horizon; at = at.Add(stride) {
		k := 1 + rng.Intn(cfg.F)
		victims := rng.Perm(cfg.N)[:k]
		sort.Ints(victims)
		fault := NetFault{Nodes: victims, From: at, To: at.Add(dwell)}
		if rng.Intn(2) == 0 {
			fault.Kind = FaultCrash
			fault.Scramble = cfg.Scramble
		} else {
			fault.Kind = FaultPartition
			fault.Asymmetric = rng.Intn(3) == 0
		}
		s.Faults = append(s.Faults, fault)
	}
	if err := s.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
		panic(fmt.Sprintf("adversary: generated schedule invalid (bug): %v", err))
	}
	return s
}
