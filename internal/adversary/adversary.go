// Package adversary implements the mobile Byzantine adversary of §2.2: an
// entity that observes all traffic, breaks into processors (learning and
// rewriting their state, answering their messages arbitrarily), and later
// leaves them — constrained only by Definition 2: within any real-time
// window of length Θ it controls at most f processors.
package adversary

import (
	"fmt"
	"sort"

	"clocksync/internal/des"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// Corruption is one break-in: the adversary controls Node during [From, To)
// driving it with Behavior.
type Corruption struct {
	Node     int
	From, To simtime.Time
	Behavior protocol.Behavior
}

// Schedule is a set of corruptions, the static description of an adversary
// strategy for one run.
type Schedule struct {
	Corruptions []Corruption
}

// Validate checks the schedule against Definition 2 for an f-limited
// adversary with period theta over n processors: corruption intervals are
// sane, never overlap per node, and no Θ-window sees more than f distinct
// controlled processors.
//
// A processor p is "seen" by the window [τ, τ+Θ] if some corruption of p
// intersects it, which happens exactly when τ ∈ [From−Θ, To]. The check
// therefore merges each node's corruptions into extended intervals
// [From−Θ, To] and verifies that at most f nodes' extended intervals overlap
// anywhere, by a boundary sweep. The sweep treats touching intervals as
// overlapping, which errs on the safe side.
func (s Schedule) Validate(n, f int, theta simtime.Duration) error {
	if theta <= 0 {
		return fmt.Errorf("adversary: non-positive Θ %v", theta)
	}
	perNode := make(map[int][]Corruption)
	for i, c := range s.Corruptions {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("adversary: corruption %d targets node %d outside [0,%d)", i, c.Node, n)
		}
		if c.To <= c.From {
			return fmt.Errorf("adversary: corruption %d has empty interval [%v,%v)", i, c.From, c.To)
		}
		if c.Behavior == nil {
			return fmt.Errorf("adversary: corruption %d has nil behavior", i)
		}
		perNode[c.Node] = append(perNode[c.Node], c)
	}

	type boundary struct {
		at    simtime.Time
		delta int
	}
	var bounds []boundary
	for node, cs := range perNode {
		sort.Slice(cs, func(i, j int) bool { return cs[i].From < cs[j].From })
		for i := 1; i < len(cs); i++ {
			if cs[i].From < cs[i-1].To {
				return fmt.Errorf("adversary: overlapping corruptions of node %d at %v", node, cs[i].From)
			}
		}
		// Merge this node's extended intervals [From−Θ, To] so that a node
		// corrupted repeatedly in quick succession counts once per window.
		var curLo, curHi simtime.Time
		open := false
		flush := func() {
			if open {
				bounds = append(bounds, boundary{curLo, +1}, boundary{curHi, -1})
			}
		}
		for _, c := range cs {
			lo := c.From.Add(-theta)
			if !open || lo > curHi {
				flush()
				curLo, curHi, open = lo, c.To, true
			} else if c.To > curHi {
				curHi = c.To
			}
		}
		flush()
	}

	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].at != bounds[j].at {
			return bounds[i].at < bounds[j].at
		}
		// Starts before ends at equal instants: touching counts as
		// overlapping (conservative).
		return bounds[i].delta > bounds[j].delta
	})
	active, worst := 0, 0
	var worstAt simtime.Time
	for _, b := range bounds {
		active += b.delta
		if active > worst {
			worst = active
			worstAt = b.at
		}
	}
	if worst > f {
		return fmt.Errorf("adversary: schedule is not %d-limited: %d processors controlled within a Θ-window around %v", f, worst, worstAt)
	}
	return nil
}

// MustValidate panics on an invalid schedule; generators use it so that an
// experiment can never silently run with an over-powered adversary.
func (s Schedule) MustValidate(n, f int, theta simtime.Duration) Schedule {
	if err := s.Validate(n, f, theta); err != nil {
		panic(err)
	}
	return s
}

// ActiveAt reports whether node is controlled at instant t.
func (s Schedule) ActiveAt(node int, t simtime.Time) bool {
	for _, c := range s.Corruptions {
		if c.Node == node && t >= c.From && t < c.To {
			return true
		}
	}
	return false
}

// ControlledWithin reports whether node is controlled at any point of the
// closed interval iv. The metrics layer uses it to compute the "good set"
// of Definition 3(i): processors non-faulty throughout [τ−Θ, τ].
func (s Schedule) ControlledWithin(node int, iv simtime.Interval) bool {
	for _, c := range s.Corruptions {
		if c.Node != node {
			continue
		}
		if c.From <= iv.Hi && iv.Lo < c.To {
			return true
		}
	}
	return false
}

// End returns the latest release instant in the schedule (0 for an empty
// schedule).
func (s Schedule) End() simtime.Time {
	var end simtime.Time
	for _, c := range s.Corruptions {
		if c.To > end {
			end = c.To
		}
	}
	return end
}

// Apply schedules the break-ins and releases on the simulator against the
// given harnesses (indexed by node id).
func (s Schedule) Apply(sim *des.Sim, harnesses []*protocol.Harness) {
	for _, c := range s.Corruptions {
		c := c
		sim.At(c.From, func() { harnesses[c.Node].Corrupt(c.Behavior) })
		sim.At(c.To, func() { harnesses[c.Node].Release() })
	}
}

// Static corrupts the given nodes with behaviors from mk for the whole of
// [from, to). len(nodes) must be ≤ f for the schedule to validate.
func Static(nodes []int, from, to simtime.Time, mk func(node int) protocol.Behavior) Schedule {
	var s Schedule
	for _, node := range nodes {
		s.Corruptions = append(s.Corruptions, Corruption{
			Node: node, From: from, To: to, Behavior: mk(node),
		})
	}
	return s
}

// Churn builds a sustained corrupt/release stream pinned at the Definition 2
// budget boundary: break-ins of duration dwell start every (Θ+dwell)/f +
// margin, rotating round-robin over the n processors, from start for as long
// as a whole break-in fits before horizon. With any margin > 0 the stream is
// exactly f-limited — every Θ-window already sees f distinct controlled
// processors, so any additional concurrent corruption would break the budget
// — while margin ≤ 0 packs f+1 extended windows [From−Θ, To] into some
// Θ-window and Validate MUST reject the result (touching windows count as
// overlapping). The boundary property tests drive exactly this knob from
// both sides.
func Churn(n, f int, start, horizon simtime.Time, dwell, theta, margin simtime.Duration, mk func(node int) protocol.Behavior) Schedule {
	if f < 1 || n <= f || dwell <= 0 {
		panic(fmt.Sprintf("adversary: bad Churn(n=%d, f=%d, dwell=%v)", n, f, dwell))
	}
	step := simtime.Duration(float64(theta+dwell)/float64(f)) + margin
	if step <= 0 || simtime.Duration(n)*step <= dwell {
		panic(fmt.Sprintf("adversary: Churn step %v too small for dwell %v over n=%d", step, dwell, n))
	}
	var s Schedule
	for i := 0; ; i++ {
		from := start.Add(simtime.Duration(i) * step)
		if from.Add(dwell) > horizon {
			return s
		}
		node := i % n
		s.Corruptions = append(s.Corruptions, Corruption{
			Node: node, From: from, To: from.Add(dwell), Behavior: mk(node),
		})
	}
}

// Rotate builds the mobile-adversary workload of experiment E5: corruptions
// of duration dwell rotating round-robin over all n processors, for the
// given number of corruption events, starting at start. Consecutive
// break-ins are spaced so that the schedule is f-limited with period theta:
// each new break-in begins more than (Θ + dwell)/f after the previous one,
// which keeps at most f extended intervals overlapping. Over a long run
// every processor is corrupted many times — the total number of faults is
// unbounded, the situation prior protocols cannot handle.
func Rotate(n, f int, start simtime.Time, dwell, theta simtime.Duration, events int, mk func(node int) protocol.Behavior) Schedule {
	if f < 1 || n < 1 || events < 0 {
		panic(fmt.Sprintf("adversary: bad Rotate(n=%d, f=%d, events=%d)", n, f, events))
	}
	step := simtime.Duration(float64(theta+dwell)/float64(f)) + simtime.Millisecond
	var s Schedule
	for i := 0; i < events; i++ {
		node := i % n
		from := start.Add(simtime.Duration(i) * step)
		s.Corruptions = append(s.Corruptions, Corruption{
			Node: node, From: from, To: from.Add(dwell), Behavior: mk(node),
		})
	}
	return s
}
