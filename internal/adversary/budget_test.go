package adversary

import (
	"math/rand"
	"testing"

	"clocksync/internal/simtime"
)

// The Definition 2 budget boundary, probed from both sides. Churn's margin
// knob places consecutive break-ins (Θ+dwell)/f + margin apart; the extended
// windows [From−Θ, To] of corruptions i and i+f then overlap exactly when
// f·margin ≤ 0. A +1 ms margin is therefore the tightest valid schedule —
// every Θ-window already sees f distinct controlled processors — and a −1 ms
// margin packs f+1 into some window, which Validate must reject.
func TestChurnBudgetBoundary(t *testing.T) {
	cases := []struct {
		name         string
		n, f         int
		theta, dwell simtime.Duration
	}{
		{"n=4 f=1", 4, 1, 300 * simtime.Second, 20 * simtime.Second},
		{"n=7 f=2", 7, 2, 300 * simtime.Second, 20 * simtime.Second},
		{"n=10 f=3", 10, 3, 240 * simtime.Second, 15 * simtime.Second},
		{"n=13 f=4", 13, 4, 600 * simtime.Second, 45 * simtime.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Three full budget periods: enough for ≳3f break-ins, so the
			// boundary is exercised by many overlapping window pairs, not one.
			horizon := simtime.Time(3 * (tc.theta + tc.dwell))

			under := Churn(tc.n, tc.f, 0, horizon, tc.dwell, tc.theta, simtime.Millisecond, mkCrash)
			if got := len(under.Corruptions); got <= tc.f {
				t.Fatalf("budget−1 stream has only %d corruptions; need > f=%d to stress the boundary", got, tc.f)
			}
			if err := under.Validate(tc.n, tc.f, tc.theta); err != nil {
				t.Fatalf("budget−1 schedule (margin +1ms) rejected: %v", err)
			}

			over := Churn(tc.n, tc.f, 0, horizon, tc.dwell, tc.theta, -simtime.Millisecond, mkCrash)
			if got := len(over.Corruptions); got <= tc.f {
				t.Fatalf("budget+1 stream has only %d corruptions; the violating window pair never forms", got)
			}
			if err := over.Validate(tc.n, tc.f, tc.theta); err == nil {
				t.Fatal("budget+1 schedule (margin −1ms) accepted")
			}
			// The excess is exactly one processor: the same stream is a valid
			// strategy for an (f+1)-limited adversary.
			if err := over.Validate(tc.n, tc.f+1, tc.theta); err != nil {
				t.Fatalf("budget+1 schedule rejected even for f+1=%d: %v", tc.f+1, err)
			}
		})
	}
}

// The boundary property is not an artifact of hand-picked parameters: for
// random (n, f, Θ, dwell, |margin|), +margin always validates and −margin is
// always rejected, as long as the stream is long enough to contain the f+1
// consecutive break-ins whose windows collide.
func TestChurnBudgetBoundaryRandomized(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(20260809))
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(14)
		f := 1 + rng.Intn(n-1)
		theta := simtime.Duration(60+rng.Intn(600)) * simtime.Second
		dwell := simtime.Duration(1+rng.Intn(15)) * simtime.Second
		margin := simtime.Duration(1+rng.Intn(500)) * simtime.Millisecond
		horizon := simtime.Time(3 * (theta + dwell))

		under := Churn(n, f, 0, horizon, dwell, theta, margin, mkCrash)
		if err := under.Validate(n, f, theta); err != nil {
			t.Fatalf("trial %d (n=%d f=%d Θ=%v dwell=%v margin=%v): valid boundary stream rejected: %v",
				trial, n, f, theta, dwell, margin, err)
		}
		over := Churn(n, f, 0, horizon, dwell, theta, -margin, mkCrash)
		if len(over.Corruptions) <= f {
			t.Fatalf("trial %d (n=%d f=%d): over-budget stream too short (%d corruptions)",
				trial, n, f, len(over.Corruptions))
		}
		if err := over.Validate(n, f, theta); err == nil {
			t.Fatalf("trial %d (n=%d f=%d Θ=%v dwell=%v margin=%v): over-budget stream accepted",
				trial, n, f, theta, dwell, margin)
		}
	}
}

// The same exact-boundary property for the livenet chaos plans: a generated
// epoch holds k ≤ f victims; topping the same window up to exactly f distinct
// processors still validates, while one more pushes the window over the
// Definition 2 budget and Validate must reject it.
func TestNetScheduleBudgetBoundary(t *testing.T) {
	cfg := GenNetConfig{
		N:       7,
		F:       2,
		Theta:   60 * simtime.Second,
		Start:   simtime.Time(30 * simtime.Second),
		Horizon: simtime.Time(600 * simtime.Second),
		Dwell:   15 * simtime.Second,
	}
	checkedOver, checkedExact := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		s := GenNetSchedule(seed, cfg)
		if err := s.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		if len(s.Faults) == 0 {
			t.Fatalf("seed %d: no fault epochs within the horizon", seed)
		}
		first := s.Faults[0]
		fresh := freshNodes(cfg.N, first.Nodes)

		// Budget−1: extend the epoch to exactly f distinct victims.
		if add := cfg.F - len(first.Nodes); add >= 1 {
			exact := withExtraFault(s, first, fresh[:add])
			if err := exact.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
				t.Fatalf("seed %d: exactly-f window rejected: %v", seed, err)
			}
			checkedExact++
		}
		// Budget+1: one more distinct victim in the same window.
		add := cfg.F + 1 - len(first.Nodes)
		overS := withExtraFault(s, first, fresh[:add])
		if err := overS.Validate(cfg.N, cfg.F, cfg.Theta); err == nil {
			t.Fatalf("seed %d: f+1 distinct victims in one window accepted", seed)
		}
		checkedOver++
	}
	if checkedOver == 0 || checkedExact == 0 {
		t.Fatalf("boundary never exercised: %d over, %d exact cases", checkedOver, checkedExact)
	}
}

// freshNodes lists the processors of [0, n) not already among used.
func freshNodes(n int, used []int) []int {
	inUse := make(map[int]bool, len(used))
	for _, v := range used {
		inUse[v] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !inUse[v] {
			out = append(out, v)
		}
	}
	return out
}

// withExtraFault returns s plus a crash of victims spanning exactly the
// window of base, leaving s itself untouched.
func withExtraFault(s NetSchedule, base NetFault, victims []int) NetSchedule {
	extra := NetFault{
		Kind:  FaultCrash,
		Nodes: append([]int{}, victims...),
		From:  base.From,
		To:    base.To,
	}
	return NetSchedule{
		Chaos:  s.Chaos,
		Faults: append(append([]NetFault{}, s.Faults...), extra),
	}
}
