package adversary

import (
	"reflect"
	"strings"
	"testing"

	"clocksync/internal/simtime"
)

func TestPacketChaosValidate(t *testing.T) {
	cases := []struct {
		name string
		p    PacketChaos
		ok   bool
	}{
		{"zero", PacketChaos{}, true},
		{"typical", PacketChaos{DropP: 0.05, DupP: 0.02, ReorderP: 0.02, DelayMax: 0.1}, true},
		{"drop of one", PacketChaos{DropP: 1}, false},
		{"negative dup", PacketChaos{DupP: -0.1}, false},
		{"reorder above one", PacketChaos{ReorderP: 1.5}, false},
		{"negative delay", PacketChaos{DelayMax: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if !(PacketChaos{}).Zero() {
		t.Error("zero chaos not Zero()")
	}
	if (PacketChaos{DropP: 0.1}).Zero() {
		t.Error("non-zero chaos reported Zero()")
	}
}

func TestNetScheduleValidateWindows(t *testing.T) {
	theta := simtime.Duration(16)
	cases := []struct {
		name    string
		fault   NetFault
		wantErr string
	}{
		{"no victims", NetFault{Kind: FaultCrash, From: 1, To: 2}, "no victims"},
		{"victim out of range", NetFault{Kind: FaultCrash, Nodes: []int{7}, From: 1, To: 2}, "outside"},
		{"duplicate victim", NetFault{Kind: FaultCrash, Nodes: []int{1, 1}, From: 1, To: 2}, "twice"},
		{"empty window", NetFault{Kind: FaultCrash, Nodes: []int{1}, From: 2, To: 2}, "empty window"},
		{"scramble on partition", NetFault{Kind: FaultPartition, Nodes: []int{1}, From: 1, To: 2, Scramble: 5}, "Scramble"},
		{"asymmetric crash", NetFault{Kind: FaultCrash, Nodes: []int{1}, From: 1, To: 2, Asymmetric: true}, "Asymmetric"},
	}
	for _, tc := range cases {
		s := NetSchedule{Faults: []NetFault{tc.fault}}
		err := s.Validate(7, 2, theta)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestNetScheduleBudget(t *testing.T) {
	theta := simtime.Duration(16)
	// Two victims inside one window: within f=2, over f=1.
	s := NetSchedule{Faults: []NetFault{
		{Kind: FaultCrash, Nodes: []int{0, 3}, From: 10, To: 14},
	}}
	if err := s.Validate(7, 2, theta); err != nil {
		t.Fatalf("f=2 schedule rejected: %v", err)
	}
	if err := s.Validate(7, 1, theta); err == nil {
		t.Fatal("two simultaneous victims accepted under f=1")
	}
	// Two windows closer than Θ share a Definition 2 window: their victim
	// sets count together.
	near := NetSchedule{Faults: []NetFault{
		{Kind: FaultCrash, Nodes: []int{0, 1}, From: 10, To: 12},
		{Kind: FaultPartition, Nodes: []int{2}, From: 14, To: 16},
	}}
	if err := near.Validate(7, 2, theta); err == nil {
		t.Fatal("three victims within one Θ window accepted under f=2")
	}
	// The same windows spaced beyond Θ pass.
	far := NetSchedule{Faults: []NetFault{
		{Kind: FaultCrash, Nodes: []int{0, 1}, From: 10, To: 12},
		{Kind: FaultPartition, Nodes: []int{2}, From: 40, To: 42},
	}}
	if err := far.Validate(7, 2, theta); err != nil {
		t.Fatalf("well-spaced schedule rejected: %v", err)
	}
}

func TestNetScheduleCorruptionsMergesOverlaps(t *testing.T) {
	// A crash nested inside a partition of the same node must fold into one
	// corruption window (Schedule.Validate rejects per-node overlap).
	s := NetSchedule{Faults: []NetFault{
		{Kind: FaultPartition, Nodes: []int{1}, From: 10, To: 20},
		{Kind: FaultCrash, Nodes: []int{1}, From: 12, To: 15},
	}}
	cor := s.Corruptions()
	if len(cor.Corruptions) != 1 {
		t.Fatalf("overlapping windows not merged: %+v", cor.Corruptions)
	}
	c := cor.Corruptions[0]
	if c.Node != 1 || c.From != 10 || c.To != 20 {
		t.Fatalf("merged window wrong: %+v", c)
	}
	if err := s.Validate(7, 1, 16); err != nil {
		t.Fatalf("nested windows of one node rejected: %v", err)
	}
}

func TestCrashedAtAndBlocks(t *testing.T) {
	s := NetSchedule{Faults: []NetFault{
		{Kind: FaultCrash, Nodes: []int{2}, From: 10, To: 20},
		{Kind: FaultPartition, Nodes: []int{4, 5}, From: 30, To: 40},
		{Kind: FaultPartition, Nodes: []int{1}, From: 50, To: 60, Asymmetric: true},
	}}
	if !s.CrashedAt(2, 15) || s.CrashedAt(2, 20) || s.CrashedAt(3, 15) {
		t.Error("CrashedAt window semantics wrong (half-open [From, To), victim-only)")
	}
	// Crash blocks both directions.
	if !s.Blocks(2, 0, 15) || !s.Blocks(0, 2, 15) {
		t.Error("crash does not cut traffic both ways")
	}
	if s.Blocks(0, 1, 15) {
		t.Error("crash of node 2 cuts unrelated traffic")
	}
	// Symmetric partition: cross-traffic cut both ways, intra-side kept.
	if !s.Blocks(4, 0, 35) || !s.Blocks(0, 4, 35) {
		t.Error("symmetric partition lets cross-traffic through")
	}
	if s.Blocks(4, 5, 35) || s.Blocks(0, 3, 35) {
		t.Error("partition cuts same-side traffic")
	}
	// Asymmetric: victims may send out; only rest → victims is cut.
	if s.Blocks(1, 0, 55) {
		t.Error("asymmetric partition blocks the victim's outbound traffic")
	}
	if !s.Blocks(0, 1, 55) {
		t.Error("asymmetric partition lets inbound traffic reach the victim")
	}
	if got := s.End(); got != 60 {
		t.Errorf("End() = %v, want 60", got)
	}
}

func TestGenNetScheduleDeterministicAndValid(t *testing.T) {
	cfg := GenNetConfig{
		N: 7, F: 2, Theta: 16, Start: 12, Horizon: 200, Scramble: 20,
		Chaos: PacketChaos{DropP: 0.05},
	}
	a := GenNetSchedule(42, cfg)
	b := GenNetSchedule(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different schedules")
	}
	if len(a.Faults) < 2 {
		t.Fatalf("200s horizon produced only %d fault epochs", len(a.Faults))
	}
	if err := a.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	c := GenNetSchedule(43, cfg)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds, identical fault plans")
	}
	for _, f := range a.Faults {
		if len(f.Nodes) > cfg.F {
			t.Fatalf("epoch exceeds victim budget: %+v", f)
		}
		if f.Kind == FaultCrash && f.Scramble != cfg.Scramble {
			t.Fatalf("crash epoch lost the configured scramble: %+v", f)
		}
	}
}
