package adversary

import (
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// Crash keeps the processor silent while controlled and leaves its state
// alone — a fail-stop fault.
type Crash struct{}

// RespondTime implements protocol.Behavior.
func (Crash) RespondTime(*protocol.Harness, int, simtime.Time) (simtime.Time, bool) {
	return 0, false
}

// OnCorrupt implements protocol.Behavior.
func (Crash) OnCorrupt(*protocol.Harness, simtime.Time) {}

// OnRelease implements protocol.Behavior.
func (Crash) OnRelease(*protocol.Harness, simtime.Time) {}

// ClockSmash rewrites the victim's adjustment variable on break-in, adding
// Offset to its logical clock, and thereafter reports the smashed clock
// honestly. This models the recovery problem the paper centers on: after
// release the processor runs correct code over a wrecked clock — possibly
// wrecked "just a bit outside the permitted range" (§1.1) or by an enormous
// amount — and must rejoin within the recovery horizon.
type ClockSmash struct {
	Offset simtime.Duration
	// Quiet suppresses replies while controlled.
	Quiet bool
}

// RespondTime implements protocol.Behavior.
func (b ClockSmash) RespondTime(h *protocol.Harness, _ int, now simtime.Time) (simtime.Time, bool) {
	if b.Quiet {
		return 0, false
	}
	return h.Clock().Now(now), true
}

// OnCorrupt implements protocol.Behavior.
func (b ClockSmash) OnCorrupt(h *protocol.Harness, _ simtime.Time) {
	h.Clock().Adjust(b.Offset)
}

// OnRelease implements protocol.Behavior.
func (ClockSmash) OnRelease(*protocol.Harness, simtime.Time) {}

// RandomLiar answers every request with the true clock plus independent
// uniform noise in [−Amplitude, +Amplitude] — an unsophisticated but noisy
// Byzantine fault.
type RandomLiar struct {
	Amplitude simtime.Duration
}

// RespondTime implements protocol.Behavior.
func (b RandomLiar) RespondTime(h *protocol.Harness, _ int, now simtime.Time) (simtime.Time, bool) {
	noise := simtime.Duration((h.Sim().Rand().Float64()*2 - 1) * float64(b.Amplitude))
	return h.Clock().Now(now).Add(noise), true
}

// OnCorrupt implements protocol.Behavior.
func (RandomLiar) OnCorrupt(*protocol.Harness, simtime.Time) {}

// OnRelease implements protocol.Behavior.
func (RandomLiar) OnRelease(*protocol.Harness, simtime.Time) {}

// ConsistentLiar reports real time plus a fixed offset to everyone — the
// strongest *consistent* pull an adversary can exert. Property 1 of the
// analysis implies f such liars cannot drag the good processors outside
// their own range; the E6 harness uses it as a control.
type ConsistentLiar struct {
	Offset simtime.Duration
}

// RespondTime implements protocol.Behavior.
func (b ConsistentLiar) RespondTime(_ *protocol.Harness, _ int, now simtime.Time) (simtime.Time, bool) {
	return now.Add(b.Offset), true
}

// OnCorrupt implements protocol.Behavior.
func (ConsistentLiar) OnCorrupt(*protocol.Harness, simtime.Time) {}

// OnRelease implements protocol.Behavior.
func (ConsistentLiar) OnRelease(*protocol.Harness, simtime.Time) {}

// SplitBrain is the two-faced attack that exhibits the n ≥ 3f+1 threshold
// (E6): to processors with id < Boundary it reports real time + Offset, to
// the rest real time − Offset. With n = 3f the lie pins each good half to
// its own clock (every trimmed extreme lands inside the half's own values),
// so the halves never pull together and relative drift separates them
// without bound. With n = 3f+1 the larger half outnumbers the trimming and
// convergence wins.
type SplitBrain struct {
	Boundary int
	Offset   simtime.Duration
}

// RespondTime implements protocol.Behavior.
func (b SplitBrain) RespondTime(_ *protocol.Harness, peer int, now simtime.Time) (simtime.Time, bool) {
	if peer < b.Boundary {
		return now.Add(b.Offset), true
	}
	return now.Add(-b.Offset), true
}

// OnCorrupt implements protocol.Behavior.
func (SplitBrain) OnCorrupt(*protocol.Harness, simtime.Time) {}

// OnRelease implements protocol.Behavior.
func (SplitBrain) OnRelease(*protocol.Harness, simtime.Time) {}

// EdgePusher reports, to every requester, real time plus Push — but unlike
// ConsistentLiar it adapts Push over time, creeping by Rate seconds per
// second of real time. It models an attacker probing for the largest
// sustainable drag.
type EdgePusher struct {
	Push simtime.Duration
	Rate float64
	t0   simtime.Time
}

// RespondTime implements protocol.Behavior.
func (b *EdgePusher) RespondTime(_ *protocol.Harness, _ int, now simtime.Time) (simtime.Time, bool) {
	creep := simtime.Duration(b.Rate * float64(now.Sub(b.t0)))
	return now.Add(b.Push + creep), true
}

// OnCorrupt implements protocol.Behavior.
func (b *EdgePusher) OnCorrupt(_ *protocol.Harness, now simtime.Time) { b.t0 = now }

// OnRelease implements protocol.Behavior.
func (*EdgePusher) OnRelease(*protocol.Harness, simtime.Time) {}

// Honest behaves exactly like a correct processor while "controlled" — a
// null fault used as an experimental control.
type Honest struct{}

// RespondTime implements protocol.Behavior.
func (Honest) RespondTime(h *protocol.Harness, _ int, now simtime.Time) (simtime.Time, bool) {
	return h.Clock().Now(now), true
}

// OnCorrupt implements protocol.Behavior.
func (Honest) OnCorrupt(*protocol.Harness, simtime.Time) {}

// OnRelease implements protocol.Behavior.
func (Honest) OnRelease(*protocol.Harness, simtime.Time) {}
