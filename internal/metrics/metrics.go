// Package metrics measures a simulation run against the paper's
// definitions:
//
//   - Synchronization (Definition 3(i)): at each sample instant τ, the
//     maximal clock difference over the processors that were non-faulty
//     throughout [τ−Θ, τ] — the "good set".
//   - Accuracy (Definition 3(ii)): the worst logical clock rate over good
//     stretches, and the largest single adjustment (discontinuity ψ).
//   - Recovery: for every release in the corruption schedule, how long the
//     processor took to re-enter the good processors' bias range.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"clocksync/internal/adversary"
	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/simtime"
	"clocksync/internal/stats"
)

// Sample is one measurement instant.
type Sample struct {
	At        simtime.Time
	Biases    []simtime.Duration // B_p(τ) per processor
	Good      []bool             // non-faulty during [τ−Θ, τ]
	Deviation simtime.Duration   // max pairwise |C_p−C_q| over the good set
}

// Recorder samples processor biases on a fixed period and accumulates the
// paper's metrics.
type Recorder struct {
	sim    *des.Sim
	clocks []*clock.Local
	sched  adversary.Schedule
	theta  simtime.Duration

	samples []Sample
	// adjustLog records every adjustment with its instant so BuildReport
	// can classify it (good vs recovering, warm-up vs steady state).
	adjustLog      []adjustRecord
	adjusts        []int
	sampleOnAdjust bool
	onSample       func(Sample)

	// shardAdj is non-nil on sharded runs: per-node adjust buffers, each
	// written only by the shard goroutine that owns the node, merged into
	// adjustLog by FinalizeSharded after the run.
	shardAdj [][]adjustRecord
}

type adjustRecord struct {
	at    simtime.Time
	node  int
	delta simtime.Duration
}

// NewRecorder builds a recorder over the given clocks. theta is the
// adversary period Θ used to decide the good set; sched is the corruption
// schedule of the run (empty Schedule for fault-free runs).
func NewRecorder(sim *des.Sim, clocks []*clock.Local, sched adversary.Schedule, theta simtime.Duration) *Recorder {
	if theta <= 0 {
		panic(fmt.Sprintf("metrics: non-positive Θ %v", theta))
	}
	return &Recorder{
		sim:     sim,
		clocks:  clocks,
		sched:   sched,
		theta:   theta,
		adjusts: make([]int, len(clocks)),
	}
}

// SampleOnAdjust, when set before the run, additionally takes a measurement
// sample immediately after every clock adjustment. Periodic sampling alone
// can miss a deviation spike that appears and is corrected between two
// samples; adjustment instants are exactly where biases change
// discontinuously, so sampling there closes the gap.
func (r *Recorder) SampleOnAdjust(enable bool) {
	if r.shardAdj != nil {
		return // sharded runs sample only at barriers; see EnableSharded
	}
	r.sampleOnAdjust = enable
}

// AdjustHook returns a function suitable for protocol.Harness.OnAdjust for
// processor id.
func (r *Recorder) AdjustHook(id int) func(simtime.Time, simtime.Duration) {
	if r.shardAdj != nil {
		// Sharded run: node id's adjustments happen on exactly one shard
		// goroutine, so its private buffer needs no lock. No adjust-triggered
		// sampling either — a consistent cross-shard snapshot only exists at
		// barriers, and BuildReport's adjustment aggregates are
		// order-independent, so the merged log is equivalent.
		return func(at simtime.Time, delta simtime.Duration) {
			r.adjusts[id]++
			r.shardAdj[id] = append(r.shardAdj[id], adjustRecord{at: at, node: id, delta: delta})
		}
	}
	return func(at simtime.Time, delta simtime.Duration) {
		r.adjusts[id]++
		r.adjustLog = append(r.adjustLog, adjustRecord{at: at, node: id, delta: delta})
		if r.sampleOnAdjust {
			r.TakeSample(at)
		}
	}
}

// EnableSharded switches the recorder to sharded mode before hooks are
// handed out: adjustments land in per-node buffers (race-free by node
// ownership) and SampleOnAdjust is ignored — deviation sampling happens only
// on the periodic ticker, which the sharded scenario runner schedules on the
// global barrier queue where every shard is quiesced. Call FinalizeSharded
// after the run, before BuildReport.
func (r *Recorder) EnableSharded() {
	r.shardAdj = make([][]adjustRecord, len(r.clocks))
	r.sampleOnAdjust = false
}

// FinalizeSharded merges the per-node adjustment buffers into the main log,
// ordered by (instant, node) — a deterministic, partition-independent order.
func (r *Recorder) FinalizeSharded() {
	if r.shardAdj == nil {
		return
	}
	for _, buf := range r.shardAdj {
		r.adjustLog = append(r.adjustLog, buf...)
	}
	sort.Slice(r.adjustLog, func(i, j int) bool {
		a, b := r.adjustLog[i], r.adjustLog[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.node < b.node
	})
	r.shardAdj = nil
}

// OnSample registers a hook invoked with every recorded sample (periodic and
// adjustment-triggered alike); the scenario runner bridges it into the
// observability stream. At most one hook; nil unregisters.
func (r *Recorder) OnSample(fn func(Sample)) { r.onSample = fn }

// Start arms periodic sampling with the given period.
func (r *Recorder) Start(period simtime.Duration) {
	des.NewTicker(r.sim, period, func(now simtime.Time) { r.TakeSample(now) })
}

// TakeSample records one measurement immediately.
func (r *Recorder) TakeSample(now simtime.Time) {
	s := Sample{
		At:     now,
		Biases: make([]simtime.Duration, len(r.clocks)),
		Good:   make([]bool, len(r.clocks)),
	}
	lookback := simtime.Interval{Lo: now.Add(-r.theta), Hi: now}
	var goodBiases []float64
	for i, c := range r.clocks {
		s.Biases[i] = c.Bias(now)
		s.Good[i] = !r.sched.ControlledWithin(i, lookback)
		if s.Good[i] {
			goodBiases = append(goodBiases, float64(s.Biases[i]))
		}
	}
	s.Deviation = simtime.Duration(stats.Spread(goodBiases))
	r.samples = append(r.samples, s)
	if r.onSample != nil {
		r.onSample(s)
	}
}

// Samples returns the recorded samples.
func (r *Recorder) Samples() []Sample { return r.samples }

// Report condenses a run.
type Report struct {
	// MaxDeviation is the largest good-set deviation over all samples at or
	// after the measurement start (Theorem 5(i) measures this against Δ).
	MaxDeviation simtime.Duration
	// MeanDeviation averages the good-set deviation over the same samples.
	MeanDeviation simtime.Duration
	// MaxDiscontinuity is the largest single clock adjustment by a
	// processor that was non-faulty throughout the preceding Θ — Theorem
	// 5(ii)'s ψ, which by Definition 3(ii) does not cover recovering
	// processors.
	MaxDiscontinuity simtime.Duration
	// MaxAdjustment is the largest single adjustment by anyone, recovery
	// jumps included.
	MaxAdjustment simtime.Duration
	// WorstRate is the largest |rate − 1| of any processor's logical clock
	// measured over maximal good stretches (Theorem 5(ii)'s ρ̃).
	WorstRate float64
	// AccuracyDrawdown and AccuracyRunup measure Definition 3(ii)/Equation 3
	// directly: over every good stretch and every sample pair τ1 < τ2
	// within it,
	//
	//	C(τ2) − C(τ1) ≥ (τ2−τ1)/(1+ρ̃) − ψ  and  ≤ (τ2−τ1)·(1+ρ̃) + ψ.
	//
	// Drawdown is the worst shortfall of C against the lower rate line
	// (max over pairs of the left-hand violation) and Runup the worst
	// excess over the upper line; Theorem 5(ii) claims both stay ≤ ψ.
	// They are computed with the ρ̃ supplied in ReportOptions.
	AccuracyDrawdown simtime.Duration
	AccuracyRunup    simtime.Duration
	// Recoveries lists the measured recovery of every release event.
	Recoveries []Recovery
}

// Recovery describes how one released processor rejoined.
type Recovery struct {
	Node       int
	ReleasedAt simtime.Time
	// Rejoined is the first sample instant after release at which the
	// processor's bias was within Margin of the good processors' range.
	Rejoined simtime.Time
	// Ok is false when the processor never rejoined before the run ended.
	Ok bool
	// InitialDistance is the bias distance from the good range at release.
	InitialDistance simtime.Duration
}

// Time returns the measured recovery duration.
func (rv Recovery) Time() simtime.Duration { return rv.Rejoined.Sub(rv.ReleasedAt) }

// ReportOptions tunes report computation.
type ReportOptions struct {
	// SkipBefore drops samples earlier than this from deviation statistics
	// (warm-up transients).
	SkipBefore simtime.Time
	// RecoveryMargin is the bias distance from the good range under which a
	// released processor counts as rejoined.
	RecoveryMargin simtime.Duration
	// MinRateWindow is the minimal good-stretch length over which clock
	// rates are measured; shorter stretches are noise-dominated.
	MinRateWindow simtime.Duration
	// LogicalDriftBound is the ρ̃ used for the Equation 3 accuracy
	// measurement (AccuracyDrawdown/Runup); zero disables it.
	LogicalDriftBound float64
}

// BuildReport computes the run report.
func (r *Recorder) BuildReport(opts ReportOptions) Report {
	if opts.RecoveryMargin <= 0 {
		opts.RecoveryMargin = 100 * simtime.Millisecond
	}
	if opts.MinRateWindow <= 0 {
		opts.MinRateWindow = 10 * simtime.Second
	}
	rep := Report{}
	var devs []float64
	for _, s := range r.samples {
		if s.At < opts.SkipBefore {
			continue
		}
		devs = append(devs, float64(s.Deviation))
	}
	if len(devs) > 0 {
		sum := stats.Summarize(devs)
		rep.MaxDeviation = simtime.Duration(sum.Max)
		rep.MeanDeviation = simtime.Duration(sum.Mean)
	}
	for _, a := range r.adjustLog {
		d := a.delta.Abs()
		if d > rep.MaxAdjustment {
			rep.MaxAdjustment = d
		}
		if a.at < opts.SkipBefore {
			continue // warm-up convergence; the guarantees assume a synchronized start
		}
		lookback := simtime.Interval{Lo: a.at.Add(-r.theta), Hi: a.at}
		if !r.sched.ControlledWithin(a.node, lookback) && d > rep.MaxDiscontinuity {
			rep.MaxDiscontinuity = d
		}
	}
	rep.WorstRate = r.worstRate(opts)
	if opts.LogicalDriftBound > 0 {
		rep.AccuracyDrawdown, rep.AccuracyRunup = r.accuracyEnvelope(opts.LogicalDriftBound, opts.SkipBefore)
	}
	rep.Recoveries = r.recoveries(opts)
	return rep
}

// accuracyEnvelope measures the Equation 3 drawdown/runup per processor
// over its maximal good stretches in O(samples): the lower-bound violation
// over all pairs τ1 < τ2 equals the maximum drawdown of
// g(τ) = C(τ) − τ/(1+ρ̃), and the upper-bound violation the maximum runup
// of h(τ) = C(τ) − τ·(1+ρ̃).
func (r *Recorder) accuracyEnvelope(rhoTilde float64, skipBefore simtime.Time) (drawdown, runup simtime.Duration) {
	for id := range r.clocks {
		gMax := math.Inf(-1) // running max of g → drawdown = gMax − g(τ2)
		hMin := math.Inf(1)  // running min of h → runup = h(τ2) − hMin
		inRun := false
		for _, s := range r.samples {
			if !s.Good[id] || s.At < skipBefore {
				inRun = false
				continue
			}
			tau := float64(s.At)
			c := tau + float64(s.Biases[id])
			g := c - tau/(1+rhoTilde)
			h := c - tau*(1+rhoTilde)
			if !inRun {
				gMax, hMin, inRun = g, h, true
				continue
			}
			if d := simtime.Duration(gMax - g); d > drawdown {
				drawdown = d
			}
			if u := simtime.Duration(h - hMin); u > runup {
				runup = u
			}
			gMax = math.Max(gMax, g)
			hMin = math.Min(hMin, h)
		}
	}
	return drawdown, runup
}

// worstRate measures logical clock rates over maximal stretches of samples
// where a processor is good, using endpoint differences.
func (r *Recorder) worstRate(opts ReportOptions) float64 {
	worst := 0.0
	for id := range r.clocks {
		runStart := -1
		flush := func(endIdx int) {
			if runStart < 0 {
				return
			}
			first, last := r.samples[runStart], r.samples[endIdx]
			span := last.At.Sub(first.At)
			if span >= opts.MinRateWindow {
				dC := float64(last.Biases[id]-first.Biases[id]) + float64(span)
				rate := dC / float64(span)
				if dev := math.Abs(rate - 1); dev > worst {
					worst = dev
				}
			}
			runStart = -1
		}
		for i, s := range r.samples {
			if s.Good[id] {
				if runStart < 0 {
					runStart = i
				}
			} else {
				flush(i - 1)
			}
		}
		flush(len(r.samples) - 1)
	}
	return worst
}

// recoveries inspects each release event in the schedule.
func (r *Recorder) recoveries(opts ReportOptions) []Recovery {
	var out []Recovery
	for _, c := range r.sched.Corruptions {
		rv := Recovery{Node: c.Node, ReleasedAt: c.To}
		seenRelease := false
		for _, s := range r.samples {
			if s.At < c.To {
				continue
			}
			lo, hi, ok := goodRange(s, c.Node)
			if !ok {
				continue
			}
			dist := distanceToRange(float64(s.Biases[c.Node]), lo, hi)
			if !seenRelease {
				rv.InitialDistance = simtime.Duration(dist)
				seenRelease = true
			}
			if dist <= float64(opts.RecoveryMargin) {
				rv.Rejoined = s.At
				rv.Ok = true
				break
			}
		}
		out = append(out, rv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ReleasedAt < out[j].ReleasedAt })
	return out
}

// goodRange returns the bias range of the good processors other than
// `exclude` at sample s. ok is false when no other processor is good.
func goodRange(s Sample, exclude int) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, g := range s.Good {
		if !g || i == exclude {
			continue
		}
		b := float64(s.Biases[i])
		lo = math.Min(lo, b)
		hi = math.Max(hi, b)
		ok = true
	}
	return lo, hi, ok
}

func distanceToRange(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}

// DeviationSeries extracts (time, deviation) pairs for plotting.
func (r *Recorder) DeviationSeries() (ts []float64, devs []float64) {
	for _, s := range r.samples {
		ts = append(ts, float64(s.At))
		devs = append(devs, float64(s.Deviation))
	}
	return ts, devs
}

// BiasSeries extracts (time, bias) pairs for one processor.
func (r *Recorder) BiasSeries(id int) (ts []float64, biases []float64) {
	for _, s := range r.samples {
		ts = append(ts, float64(s.At))
		biases = append(biases, float64(s.Biases[id]))
	}
	return ts, biases
}

// AdjustCount returns the number of adjustments processor id applied.
func (r *Recorder) AdjustCount(id int) int { return r.adjusts[id] }
