package metrics

import (
	"math"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

func mkClocks(biases []simtime.Duration, slopes []float64) []*clock.Local {
	out := make([]*clock.Local, len(biases))
	for i := range biases {
		slope := 1.0
		if i < len(slopes) {
			slope = slopes[i]
		}
		out[i] = clock.NewLocal(clock.NewDrifting(0, simtime.Time(biases[i]), slope))
	}
	return out
}

func TestDeviationOverGoodSet(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0.1, -0.1, 50}, nil)
	// Node 3 is corrupted for the whole run: it must not count.
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 3, From: 0, To: 1000, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 100)
	rec.TakeSample(10)
	s := rec.Samples()[0]
	if s.Good[3] {
		t.Fatal("corrupted node marked good")
	}
	if !s.Good[0] || !s.Good[1] || !s.Good[2] {
		t.Fatal("healthy nodes marked bad")
	}
	if math.Abs(float64(s.Deviation)-0.2) > 1e-9 {
		t.Fatalf("deviation: got %v, want 0.2", s.Deviation)
	}
}

func TestGoodSetRequiresThetaOfHealth(t *testing.T) {
	// A node released at t=50 stays out of the good set until t=50+Θ.
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0}, nil)
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 1, From: 10, To: 50, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 100)
	rec.TakeSample(149)
	rec.TakeSample(151)
	if rec.Samples()[0].Good[1] {
		t.Fatal("node good before Θ of health elapsed")
	}
	if !rec.Samples()[1].Good[1] {
		t.Fatal("node still bad after Θ of health")
	}
}

func TestPeriodicSampling(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0}, nil)
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	rec.Start(10)
	sim.RunUntil(55)
	if got := len(rec.Samples()); got != 5 {
		t.Fatalf("got %d samples, want 5", got)
	}
}

func TestSampleOnAdjust(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0}, nil)
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	rec.SampleOnAdjust(true)
	hook := rec.AdjustHook(0)
	sim.At(3, func() {
		clocks[0].Adjust(0.5)
		hook(3, 0.5)
	})
	sim.Run()
	if len(rec.Samples()) != 1 {
		t.Fatalf("expected 1 adjustment-triggered sample, got %d", len(rec.Samples()))
	}
	s := rec.Samples()[0]
	if s.At != 3 || s.Deviation < 0.49 {
		t.Fatalf("adjustment spike not captured: %+v", s)
	}
}

func TestAdjustHookTracksDiscontinuity(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0}, nil)
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	hook := rec.AdjustHook(1)
	hook(5, 0.02)
	hook(6, -0.07)
	hook(7, 0.01)
	rep := rec.BuildReport(ReportOptions{})
	if math.Abs(float64(rep.MaxDiscontinuity)-0.07) > 1e-12 {
		t.Fatalf("discontinuity: got %v, want 0.07", rep.MaxDiscontinuity)
	}
	if rec.AdjustCount(1) != 3 || rec.AdjustCount(0) != 0 {
		t.Fatal("adjust counts wrong")
	}
}

func TestDiscontinuityExcludesRecoveringProcessors(t *testing.T) {
	// Definition 3(ii) covers only processors non-faulty during [τ−Θ, τ]:
	// a recovery jump right after release must count toward MaxAdjustment
	// but not toward the ψ measurement.
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0}, nil)
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 1, From: 10, To: 20, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 100)
	hook := rec.AdjustHook(1)
	hook(25, -40) // recovery jump, 5 s after release (< Θ)
	hook(125, 0.01)
	hook(130, -0.02) // steady state, > Θ after release
	rep := rec.BuildReport(ReportOptions{})
	if math.Abs(float64(rep.MaxAdjustment)-40) > 1e-12 {
		t.Fatalf("MaxAdjustment: got %v, want 40", rep.MaxAdjustment)
	}
	if math.Abs(float64(rep.MaxDiscontinuity)-0.02) > 1e-12 {
		t.Fatalf("MaxDiscontinuity: got %v, want 0.02 (recovery jump must not count)", rep.MaxDiscontinuity)
	}
}

func TestReportDeviationStats(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0.4}, nil)
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	rec.TakeSample(10) // deviation 0.4 — inside warm-up, skipped
	clocks[1].Adjust(-0.3)
	rec.TakeSample(20) // deviation 0.1
	clocks[1].Adjust(0.1)
	rec.TakeSample(30) // deviation 0.2
	rep := rec.BuildReport(ReportOptions{SkipBefore: 15})
	if math.Abs(float64(rep.MaxDeviation)-0.2) > 1e-9 {
		t.Fatalf("max deviation: got %v", rep.MaxDeviation)
	}
	if math.Abs(float64(rep.MeanDeviation)-0.15) > 1e-9 {
		t.Fatalf("mean deviation: got %v", rep.MeanDeviation)
	}
}

func TestWorstRateMeasuresDrift(t *testing.T) {
	sim := des.New(1)
	// Slope 1.002 → rate deviation 0.002; no adjustments.
	clocks := mkClocks([]simtime.Duration{0, 0}, []float64{1.002, 1.0})
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	for tau := simtime.Time(0); tau <= 100; tau += 10 {
		rec.TakeSample(tau)
	}
	rep := rec.BuildReport(ReportOptions{MinRateWindow: 50})
	if math.Abs(rep.WorstRate-0.002) > 1e-6 {
		t.Fatalf("worst rate: got %v, want 0.002", rep.WorstRate)
	}
}

func TestWorstRateSkipsBadStretches(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0}, []float64{1.0})
	// Node is corrupted in the middle; only the clean stretches count, and
	// both are too short for the rate window.
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 0, From: 30, To: 40, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 20)
	// Simulate a massive jump while corrupted.
	for tau := simtime.Time(0); tau <= 100; tau += 5 {
		if tau == 35 {
			clocks[0].Adjust(1000)
		}
		rec.TakeSample(tau)
	}
	rep := rec.BuildReport(ReportOptions{MinRateWindow: 50})
	if rep.WorstRate > 0.001 {
		t.Fatalf("corrupted jump leaked into rate measurement: %v", rep.WorstRate)
	}
}

func TestRecoveryMeasurement(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0, 0, 10}, nil)
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 3, From: 0, To: 10, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 5)
	rec.TakeSample(12) // distance 10
	clocks[3].Adjust(-5)
	rec.TakeSample(14) // distance 5
	clocks[3].Adjust(-4.99)
	rec.TakeSample(16) // distance 0.01 ≤ margin
	rep := rec.BuildReport(ReportOptions{RecoveryMargin: 0.1})
	if len(rep.Recoveries) != 1 {
		t.Fatalf("got %d recoveries", len(rep.Recoveries))
	}
	rv := rep.Recoveries[0]
	if !rv.Ok {
		t.Fatal("recovery not detected")
	}
	if rv.Rejoined != 16 || rv.Time() != 6 {
		t.Fatalf("rejoin: %+v", rv)
	}
	if math.Abs(float64(rv.InitialDistance)-10) > 1e-9 {
		t.Fatalf("initial distance: %v", rv.InitialDistance)
	}
}

func TestRecoveryNeverCompletes(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{0, 0, 100}, nil)
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 2, From: 0, To: 10, Behavior: adversary.Crash{}},
	}}
	rec := NewRecorder(sim, clocks, sched, 5)
	for tau := simtime.Time(11); tau < 50; tau += 5 {
		rec.TakeSample(tau)
	}
	rep := rec.BuildReport(ReportOptions{RecoveryMargin: 0.1})
	if rep.Recoveries[0].Ok {
		t.Fatal("stuck node reported as recovered")
	}
}

func TestSeriesExtraction(t *testing.T) {
	sim := des.New(1)
	clocks := mkClocks([]simtime.Duration{1, 2}, nil)
	rec := NewRecorder(sim, clocks, adversary.Schedule{}, 100)
	rec.TakeSample(5)
	rec.TakeSample(10)
	ts, devs := rec.DeviationSeries()
	if len(ts) != 2 || ts[0] != 5 || ts[1] != 10 {
		t.Fatalf("times: %v", ts)
	}
	if math.Abs(devs[0]-1) > 1e-9 {
		t.Fatalf("devs: %v", devs)
	}
	ts2, biases := rec.BiasSeries(1)
	if len(ts2) != 2 || math.Abs(biases[0]-2) > 1e-9 {
		t.Fatalf("bias series: %v %v", ts2, biases)
	}
}

func TestNewRecorderPanicsOnBadTheta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(des.New(1), nil, adversary.Schedule{}, 0)
}
