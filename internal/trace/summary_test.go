package trace_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

func TestSummarizeEmpty(t *testing.T) {
	s := trace.Summarize(nil)
	if s.Events != 0 || s.Nodes != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if out := s.String(); out == "" {
		t.Fatal("String must render even for empty traces")
	}
}

func TestSummarizeHandBuilt(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.KindSample, Biases: []float64{0, 0.1, 0.2}, Deviation: 0.2},
		{At: 1, Kind: trace.KindAdjust, Node: 1, Delta: -0.05},
		{At: 2, Kind: trace.KindCorrupt, Node: 2},
		{At: 3, Kind: trace.KindAdjust, Node: 0, Delta: 0.1},
		{At: 7, Kind: trace.KindRelease, Node: 2},
		{At: 8, Kind: trace.KindCorrupt, Node: 0}, // never released
		{At: 10, Kind: trace.KindSample, Biases: []float64{0, 0, 0}, Deviation: 0.05},
	}
	s := trace.Summarize(events)
	if s.Events != 7 || s.Nodes != 3 || s.Span != 10 {
		t.Fatalf("header: %+v", s)
	}
	if s.Adjusts != 2 || math.Abs(s.AdjustAbs.Max-0.1) > 1e-12 {
		t.Fatalf("adjusts: %+v", s.AdjustAbs)
	}
	if s.Samples != 2 || math.Abs(s.Deviation.Max-0.2) > 1e-12 {
		t.Fatalf("deviation: %+v", s.Deviation)
	}
	if len(s.Corruptions) != 2 {
		t.Fatalf("corruptions: %+v", s.Corruptions)
	}
	first := s.Corruptions[0]
	if first.Node != 2 || first.From != 2 || first.To != 7 || first.Open {
		t.Fatalf("first corruption: %+v", first)
	}
	second := s.Corruptions[1]
	if second.Node != 0 || !second.Open || second.To != 10 {
		t.Fatalf("open corruption: %+v", second)
	}
	if s.PerNode[2].TimeFaulty != 5 || s.PerNode[2].Corrupted != 1 {
		t.Fatalf("per-node fault time: %+v", s.PerNode[2])
	}
	if s.PerNode[1].Adjusts != 1 || math.Abs(s.PerNode[1].MaxAdjust-0.05) > 1e-12 {
		t.Fatalf("per-node adjusts: %+v", s.PerNode[1])
	}
	out := s.String()
	for _, want := range []string{"3 nodes", "corruptions: 2", "never released", "node  2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeReleaseWithoutCorruptIgnored(t *testing.T) {
	s := trace.Summarize([]trace.Event{
		{At: 1, Kind: trace.KindRelease, Node: 3},
	})
	if len(s.Corruptions) != 0 {
		t.Fatalf("phantom corruption: %+v", s.Corruptions)
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	// Full pipeline: scenario → trace → parse → summarize.
	var buf bytes.Buffer
	s := scenario.Scenario{
		Name:     "summary-e2e",
		Seed:     5,
		N:        4,
		F:        1,
		Duration: 5 * simtime.Minute,
		Theta:    100 * simtime.Second,
		Rho:      1e-4,
		Adversary: adversary.Static([]int{2}, 30, 60, func(int) protocol.Behavior {
			return adversary.ClockSmash{Offset: 5}
		}),
		SamplePeriod: 10 * simtime.Second,
		TraceWriter:  &buf,
	}
	if _, err := scenario.Run(s); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(events)
	if sum.Nodes != 4 {
		t.Fatalf("nodes: %d", sum.Nodes)
	}
	if len(sum.Corruptions) != 1 || sum.Corruptions[0].Node != 2 {
		t.Fatalf("corruptions: %+v", sum.Corruptions)
	}
	if sum.PerNode[2].TimeFaulty < 29 || sum.PerNode[2].TimeFaulty > 31 {
		t.Fatalf("fault time: %v", sum.PerNode[2].TimeFaulty)
	}
	if sum.Adjusts == 0 || sum.Samples == 0 {
		t.Fatalf("missing activity: %+v", sum)
	}
	// The node smashed by 5 s must show a recovery jump of that order.
	if sum.PerNode[2].MaxAdjust < 2 {
		t.Fatalf("recovery jump not visible: %+v", sum.PerNode[2])
	}
}
