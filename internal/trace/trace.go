// Package trace records simulation runs as a stream of JSON-lines events —
// one object per line — so that a run can be archived, diffed across seeds,
// or replayed into external tooling. The scenario engine emits adjustment,
// corruption, release and sample events when given a writer.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"clocksync/internal/simtime"
)

// Kind enumerates event types.
type Kind string

// Event kinds.
const (
	KindAdjust  Kind = "adjust"
	KindCorrupt Kind = "corrupt"
	KindRelease Kind = "release"
	KindSample  Kind = "sample"
	KindNote    Kind = "note"
	// KindSpan marks a completed span from the obs span layer (round,
	// estimate, reading, adjust); it uses Name, Span, Parent and Dur.
	KindSpan Kind = "span"
)

// Event is one trace record. Fields are used according to Kind:
// Adjust uses Node and Delta; Corrupt/Release use Node; Sample uses Biases
// and Deviation; Note uses Text; Span uses Name, Span, Parent and Dur (At is
// the span start). Events from the obs package (syncsim -trace-out) carry
// their numeric payload in Fields and may use kinds beyond the constants
// above; Summarize tallies unknown kinds generically.
type Event struct {
	At        float64            `json:"at"`
	Kind      Kind               `json:"kind"`
	Node      int                `json:"node,omitempty"`
	Delta     float64            `json:"delta,omitempty"`
	Biases    []float64          `json:"biases,omitempty"`
	Deviation float64            `json:"deviation,omitempty"`
	Text      string             `json:"text,omitempty"`
	Name      string             `json:"name,omitempty"`
	Span      uint64             `json:"span,omitempty"`
	Parent    uint64             `json:"parent,omitempty"`
	Dur       float64            `json:"dur,omitempty"`
	Fields    map[string]float64 `json:"fields,omitempty"`
}

// Field returns the named value from Fields (0 when absent).
func (e Event) Field(name string) float64 { return e.Fields[name] }

// Tracer serializes events to a writer. It buffers internally; call Flush
// (or Close) when the run finishes.
type Tracer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// New returns a tracer writing JSON lines to w.
func New(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Emit appends one event.
func (t *Tracer) Emit(e Event) {
	if err := t.enc.Encode(e); err != nil {
		// A tracer failure must not corrupt a simulation; it only loses the
		// trace. Record the failure in-band if possible.
		fmt.Fprintf(t.w, `{"kind":"note","text":"trace encode error: %v"}`+"\n", err)
	}
	t.n++
}

// Adjust records a clock adjustment.
func (t *Tracer) Adjust(at simtime.Time, node int, delta simtime.Duration) {
	t.Emit(Event{At: float64(at), Kind: KindAdjust, Node: node, Delta: float64(delta)})
}

// Corrupt records a break-in.
func (t *Tracer) Corrupt(at simtime.Time, node int) {
	t.Emit(Event{At: float64(at), Kind: KindCorrupt, Node: node})
}

// Release records the adversary leaving a node.
func (t *Tracer) Release(at simtime.Time, node int) {
	t.Emit(Event{At: float64(at), Kind: KindRelease, Node: node})
}

// Sample records a metrics sample.
func (t *Tracer) Sample(at simtime.Time, biases []simtime.Duration, deviation simtime.Duration) {
	bs := make([]float64, len(biases))
	for i, b := range biases {
		bs[i] = float64(b)
	}
	t.Emit(Event{At: float64(at), Kind: KindSample, Biases: bs, Deviation: float64(deviation)})
}

// Note records free-form text.
func (t *Tracer) Note(at simtime.Time, text string) {
	t.Emit(Event{At: float64(at), Kind: KindNote, Text: text})
}

// Count returns the number of events emitted.
func (t *Tracer) Count() int { return t.n }

// Flush drains the internal buffer.
func (t *Tracer) Flush() error { return t.w.Flush() }

// Read parses a JSON-lines trace back into events.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// ReadJSON parses a JSON *array* of events — the shape a live node's
// GET /spanz endpoint serves (obs.MarshalSpans) — into the same Event records
// the JSONL reader produces, so downstream consumers (conformance, tracestat)
// need not care which transport delivered the trace.
func ReadJSON(data []byte) ([]Event, error) {
	var out []Event
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("trace: parsing event array: %w", err)
	}
	return out, nil
}
