package trace

import (
	"fmt"
	"sort"
	"strings"

	"clocksync/internal/obs"
	"clocksync/internal/stats"
)

// Summary condenses a recorded trace: per-node adjustment behaviour, the
// corruption timeline, and the deviation profile.
type Summary struct {
	Events      int
	Nodes       int
	Span        float64 // last event time − first event time
	Adjusts     int
	AdjustAbs   stats.Summary // |adjustment| distribution
	PerNode     []NodeSummary
	Corruptions []CorruptionSpan
	Deviation   stats.Summary // good-set deviation over samples
	Samples     int
	// ByKind tallies every event kind, including kinds this package does
	// not interpret (observability streams add e.g. "round" and "timeout").
	ByKind map[string]int
	// Rounds aggregates "round" events from observability streams: the
	// per-round convergence adjustment distribution.
	RoundDelta stats.Summary
	// Spans aggregates span records by name (round, estimate, reading,
	// adjust): count and duration distribution.
	Spans map[string]SpanStats
	// The histograms mirror the four /metrics distributions, rebuilt from
	// the recorded stream so offline summaries agree with live scrapes:
	// RTT and EstErr from estimate spans, AdjustMag from adjust/round
	// records, DevHist from samples. Nil when the stream has no such data.
	RTT, EstErr, AdjustMag, DevHist *obs.Histogram
}

// SpanStats summarizes the spans sharing one name.
type SpanStats struct {
	Count int
	Dur   stats.Summary // duration distribution, seconds
}

// NodeSummary is one processor's view of the trace.
type NodeSummary struct {
	Node       int
	Adjusts    int
	MaxAdjust  float64
	Corrupted  int     // number of break-ins
	TimeFaulty float64 // total seconds under adversary control
}

// CorruptionSpan is one break-in reconstructed from corrupt/release pairs.
type CorruptionSpan struct {
	Node     int
	From, To float64
	Open     bool // release never recorded
}

// Summarize analyzes a parsed trace.
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events), ByKind: map[string]int{}}
	if len(events) == 0 {
		return s
	}
	var roundDeltas []float64
	minAt, maxAt := events[0].At, events[0].At
	maxNode := -1
	var adjustAbs []float64
	var deviations []float64
	spanDurs := map[string][]float64{}
	var hRTT, hErr, hAdj, hDev obs.Histogram
	perNode := map[int]*NodeSummary{}
	openCorruption := map[int]float64{}
	nodeOf := func(id int) *NodeSummary {
		ns := perNode[id]
		if ns == nil {
			ns = &NodeSummary{Node: id}
			perNode[id] = ns
		}
		return ns
	}
	for _, e := range events {
		if e.At < minAt {
			minAt = e.At
		}
		if e.At > maxAt {
			maxAt = e.At
		}
		s.ByKind[string(e.Kind)]++
		if e.Kind == "round" {
			d := e.Field("delta")
			if d < 0 {
				d = -d
			}
			roundDeltas = append(roundDeltas, d)
			hAdj.Observe(d)
			if e.Node > maxNode {
				maxNode = e.Node
			}
		}
		switch e.Kind {
		case KindSpan:
			spanDurs[e.Name] = append(spanDurs[e.Name], e.Dur)
			if e.Node > maxNode {
				maxNode = e.Node
			}
			if e.Name == "estimate" && e.Field("ok") == 1 {
				hRTT.Observe(e.Field("rtt"))
				hErr.Observe(e.Field("a"))
			}
		case KindAdjust:
			s.Adjusts++
			a := e.Delta
			if a < 0 {
				a = -a
			}
			adjustAbs = append(adjustAbs, a)
			hAdj.Observe(a)
			ns := nodeOf(e.Node)
			ns.Adjusts++
			if a > ns.MaxAdjust {
				ns.MaxAdjust = a
			}
			if e.Node > maxNode {
				maxNode = e.Node
			}
		case KindCorrupt:
			openCorruption[e.Node] = e.At
			nodeOf(e.Node).Corrupted++
			if e.Node > maxNode {
				maxNode = e.Node
			}
		case KindRelease:
			from, ok := openCorruption[e.Node]
			if !ok {
				continue
			}
			delete(openCorruption, e.Node)
			s.Corruptions = append(s.Corruptions, CorruptionSpan{Node: e.Node, From: from, To: e.At})
			nodeOf(e.Node).TimeFaulty += e.At - from
		case KindSample:
			s.Samples++
			deviations = append(deviations, e.Deviation)
			hDev.Observe(e.Deviation)
			if n := len(e.Biases) - 1; n > maxNode {
				maxNode = n
			}
		}
	}
	for node, from := range openCorruption {
		s.Corruptions = append(s.Corruptions, CorruptionSpan{Node: node, From: from, To: maxAt, Open: true})
		nodeOf(node).TimeFaulty += maxAt - from
	}
	sort.Slice(s.Corruptions, func(i, j int) bool {
		if s.Corruptions[i].From != s.Corruptions[j].From {
			return s.Corruptions[i].From < s.Corruptions[j].From
		}
		return s.Corruptions[i].Node < s.Corruptions[j].Node
	})
	s.Span = maxAt - minAt
	s.Nodes = maxNode + 1
	s.AdjustAbs = stats.Summarize(adjustAbs)
	s.Deviation = stats.Summarize(deviations)
	s.RoundDelta = stats.Summarize(roundDeltas)
	if len(spanDurs) > 0 {
		s.Spans = make(map[string]SpanStats, len(spanDurs))
		for name, durs := range spanDurs {
			s.Spans[name] = SpanStats{Count: len(durs), Dur: stats.Summarize(durs)}
		}
	}
	if hRTT.Count() > 0 {
		s.RTT = &hRTT
	}
	if hErr.Count() > 0 {
		s.EstErr = &hErr
	}
	if hAdj.Count() > 0 {
		s.AdjustMag = &hAdj
	}
	if hDev.Count() > 0 {
		s.DevHist = &hDev
	}
	// Dense per-node rows (quiet nodes included) for plausible cluster
	// sizes; a corrupted trace claiming a huge node id must not make the
	// summary materialize millions of rows, so beyond the cap only nodes
	// that actually appeared are listed.
	const denseNodeCap = 1 << 10
	if maxNode < denseNodeCap {
		for id := 0; id <= maxNode; id++ {
			if ns := perNode[id]; ns != nil {
				s.PerNode = append(s.PerNode, *ns)
			} else {
				s.PerNode = append(s.PerNode, NodeSummary{Node: id})
			}
		}
	} else {
		for _, ns := range perNode {
			s.PerNode = append(s.PerNode, *ns)
		}
		sort.Slice(s.PerNode, func(i, j int) bool { return s.PerNode[i].Node < s.PerNode[j].Node })
	}
	return s
}

// String renders a human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %.1fs, %d nodes\n", s.Events, s.Span, s.Nodes)
	if len(s.ByKind) > 0 {
		kinds := make([]string, 0, len(s.ByKind))
		for k := range s.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, s.ByKind[k]))
		}
		fmt.Fprintf(&b, "kinds: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "adjustments: %d total, |Δ| mean %.4gs p99 %.4gs max %.4gs\n",
		s.Adjusts, s.AdjustAbs.Mean, s.AdjustAbs.P99, s.AdjustAbs.Max)
	if n := s.ByKind["round"]; n > 0 {
		fmt.Fprintf(&b, "rounds: %d, |Δ| mean %.4gs p99 %.4gs max %.4gs\n",
			n, s.RoundDelta.Mean, s.RoundDelta.P99, s.RoundDelta.Max)
	}
	if s.Samples > 0 {
		fmt.Fprintf(&b, "deviation: %d samples, mean %.4gs p99 %.4gs max %.4gs\n",
			s.Samples, s.Deviation.Mean, s.Deviation.P99, s.Deviation.Max)
	}
	if len(s.Spans) > 0 {
		names := make([]string, 0, len(s.Spans))
		for n := range s.Spans {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "spans:\n")
		for _, n := range names {
			st := s.Spans[n]
			fmt.Fprintf(&b, "  %-9s %5d  dur p50 %.4gs p99 %.4gs max %.4gs\n",
				n, st.Count, st.Dur.P50, st.Dur.P99, st.Dur.Max)
		}
	}
	hists := []struct {
		name string
		h    *obs.Histogram
	}{
		{"rtt", s.RTT},
		{"estimate error", s.EstErr},
		{"|adjust|", s.AdjustMag},
		{"deviation", s.DevHist},
	}
	header := false
	for _, hm := range hists {
		if hm.h == nil {
			continue
		}
		if !header {
			fmt.Fprintf(&b, "histograms (p50/p95/p99):\n")
			header = true
		}
		fmt.Fprintf(&b, "  %-15s n=%-6d %.4gs / %.4gs / %.4gs\n",
			hm.name, hm.h.Count(), hm.h.Quantile(0.50), hm.h.Quantile(0.95), hm.h.Quantile(0.99))
	}
	if len(s.Corruptions) > 0 {
		fmt.Fprintf(&b, "corruptions: %d\n", len(s.Corruptions))
		for _, c := range s.Corruptions {
			open := ""
			if c.Open {
				open = " (never released)"
			}
			fmt.Fprintf(&b, "  node %2d  [%.1fs, %.1fs)%s\n", c.Node, c.From, c.To, open)
		}
	}
	fmt.Fprintf(&b, "per node:\n")
	for _, ns := range s.PerNode {
		fmt.Fprintf(&b, "  node %2d  %4d adjusts, max |Δ| %.4gs, %d break-ins, %.1fs faulty\n",
			ns.Node, ns.Adjusts, ns.MaxAdjust, ns.Corrupted, ns.TimeFaulty)
	}
	return b.String()
}
