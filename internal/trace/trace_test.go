package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := trace.New(&buf)
	tr.Adjust(1.5, 2, -0.25)
	tr.Corrupt(2, 3)
	tr.Release(5, 3)
	tr.Sample(6, []simtime.Duration{0.1, -0.1}, 0.2)
	tr.Note(7, "hello")
	if tr.Count() != 5 {
		t.Fatalf("Count: got %d", tr.Count())
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Kind != trace.KindAdjust || events[0].Node != 2 || events[0].Delta != -0.25 {
		t.Fatalf("adjust event: %+v", events[0])
	}
	if events[1].Kind != trace.KindCorrupt || events[2].Kind != trace.KindRelease {
		t.Fatal("corrupt/release kinds wrong")
	}
	if events[3].Kind != trace.KindSample || len(events[3].Biases) != 2 || events[3].Deviation != 0.2 {
		t.Fatalf("sample event: %+v", events[3])
	}
	if events[4].Text != "hello" {
		t.Fatalf("note event: %+v", events[4])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("{\"kind\":\"note\"}\nnot json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	events, err := trace.Read(strings.NewReader("\n{\"kind\":\"note\",\"text\":\"x\"}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
}

func TestScenarioEmitsTrace(t *testing.T) {
	var buf bytes.Buffer
	s := scenario.Scenario{
		Name:         "trace-test",
		Seed:         3,
		N:            4,
		F:            1,
		Duration:     2 * simtime.Minute,
		Theta:        100 * simtime.Second,
		Rho:          1e-4,
		InitSpread:   50 * simtime.Millisecond,
		SamplePeriod: 10 * simtime.Second,
		TraceWriter:  &buf,
	}
	if _, err := scenario.Run(s); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var adjusts, samples int
	for _, e := range events {
		switch e.Kind {
		case trace.KindAdjust:
			adjusts++
		case trace.KindSample:
			samples++
			if len(e.Biases) != 4 {
				t.Fatalf("sample with %d biases", len(e.Biases))
			}
		}
	}
	if adjusts == 0 || samples == 0 {
		t.Fatalf("trace missing events: %d adjusts, %d samples", adjusts, samples)
	}
}
