package trace_test

import (
	"strings"
	"testing"

	"clocksync/internal/conformance"
	"clocksync/internal/trace"
)

// FuzzTraceJSONL throws hostile JSONL at the trace reader and everything
// downstream of it: parse, summarize, and the conformance refinement check.
// None of them may panic on any input — a trace file is often the only
// artifact of a failed run, and it arrives truncated, interleaved, or
// corrupted exactly when it matters most. Read may reject a trace with an
// error; everything that accepts its output must then cope with whatever
// events came through.
// TestSummarizeHugeNodeID pins the fix the fuzzer forced: one corrupted
// event claiming node 9999999 must not make Summarize materialize (and
// String print) millions of dense per-node rows.
func TestSummarizeHugeNodeID(t *testing.T) {
	events, err := trace.Read(strings.NewReader(
		`{"at":1,"kind":"adjust","node":0,"delta":0.1}` + "\n" +
			`{"at":2,"kind":"corrupt","node":9999999}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(events)
	if s.Nodes != 10_000_000 {
		t.Errorf("Nodes = %d, want the claimed id range", s.Nodes)
	}
	if len(s.PerNode) != 2 {
		t.Fatalf("PerNode materialized %d rows for 2 distinct nodes", len(s.PerNode))
	}
	if got := s.PerNode[1].Node; got != 9999999 {
		t.Errorf("sparse rows lost the huge node: %d", got)
	}
	if len(s.String()) > 1<<16 {
		t.Error("String() output blew up on a sparse trace")
	}
}

func FuzzTraceJSONL(f *testing.F) {
	// A well-formed stream mixing every record shape.
	f.Add(`{"at":0,"kind":"sample","biases":[0,0.1],"deviation":0.1}
{"at":1,"kind":"adjust","node":1,"delta":-0.05}
{"at":2,"kind":"corrupt","node":0}
{"at":3,"kind":"release","node":0}
{"at":10,"kind":"span","node":0,"name":"round","span":1,"dur":1,"fields":{"delta":0.5,"wayoff":0}}
{"at":10.1,"kind":"span","node":0,"name":"estimate","span":2,"parent":1,"dur":0.2,"fields":{"peer":1,"d":2,"a":1,"ok":1}}
`)
	// A line truncated mid-object, as a killed writer leaves it.
	f.Add(`{"at":10,"kind":"span","node":0,"name":"round","span":1,"du`)
	// Span kinds interleaved out of causal order: child before parent,
	// orphan estimate, duplicate span ids.
	f.Add(`{"at":5,"kind":"span","node":1,"name":"estimate","span":9,"parent":7,"fields":{"peer":0,"ok":1}}
{"at":6,"kind":"span","node":1,"name":"round","span":7,"dur":1,"fields":{"skip":1}}
{"at":6,"kind":"span","node":1,"name":"round","span":7,"dur":1,"fields":{"delta":0}}
`)
	// Hostile timestamps: NaN/Inf are not valid JSON, but huge exponents,
	// negatives and null fields are.
	f.Add(`{"at":1e308,"kind":"round","node":-5,"fields":{"delta":-1e308,"wayoff":2}}
{"at":-1,"kind":"corrupt","node":9999999}
{"at":null,"kind":"release","node":0}
`)
	// Non-JSON garbage, empty lines, and a BOM.
	f.Add("\xef\xbb\xbfnot json\n\n{}\n")

	f.Fuzz(func(t *testing.T, input string) {
		events, err := trace.Read(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly; nothing downstream to exercise
		}
		// Summarize and String must absorb any event mix without panicking.
		_ = trace.Summarize(events).String()
		// So must the refinement checker, in both span and event mode, with
		// and without a pinned WayOff.
		for _, cfg := range []conformance.Config{
			{F: 1},
			{F: 2, WayOff: 1},
		} {
			rep, err := conformance.Check(events, cfg)
			if err != nil {
				continue
			}
			_ = rep.Summary()
			for _, v := range rep.Violations {
				_ = v.String()
			}
		}
	})
}
