package trace

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// WritePerfetto renders a recorded trace in the Chrome trace-event JSON
// format, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. Span
// records become complete ("X") events on a per-node track, carrying their
// span/parent IDs and numeric fields as args so a violating round can be
// followed down to the peer estimation that fed it; corrupt, release, round,
// skip and timeout events become instants ("i"). Sample records are omitted —
// bias vectors belong to the dashboard and tracestat's textual summary, not a
// span timeline.
//
// Times are exported in microseconds (the format's unit), node ids as both
// pid and tid so each node renders as one process track. Output is
// deterministic for a given input: events keep stream order and
// encoding/json sorts the args maps.
func WritePerfetto(w io.Writer, events []Event) error {
	type traceEvent struct {
		Name string             `json:"name"`
		Ph   string             `json:"ph"`
		Ts   float64            `json:"ts"`
		Dur  *float64           `json:"dur,omitempty"`
		Pid  int                `json:"pid"`
		Tid  int                `json:"tid"`
		S    string             `json:"s,omitempty"` // instant scope
		Args map[string]float64 `json:"args,omitempty"`
	}
	var out struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []traceEvent{}
	for _, e := range events {
		switch e.Kind {
		case KindSpan:
			args := make(map[string]float64, len(e.Fields)+2)
			for k, v := range e.Fields {
				if !math.IsInf(v, 0) && !math.IsNaN(v) {
					args[k] = v
				}
			}
			args["span_id"] = float64(e.Span)
			if e.Parent != 0 {
				args["parent_id"] = float64(e.Parent)
			}
			dur := e.Dur * 1e6
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: e.Name, Ph: "X", Ts: e.At * 1e6, Dur: &dur,
				Pid: e.Node, Tid: e.Node, Args: args,
			})
		case KindCorrupt, KindRelease, "round", "skip", "timeout", "authfail":
			var args map[string]float64
			if len(e.Fields) > 0 {
				args = make(map[string]float64, len(e.Fields))
				for k, v := range e.Fields {
					if !math.IsInf(v, 0) && !math.IsNaN(v) {
						args[k] = v
					}
				}
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: string(e.Kind), Ph: "i", Ts: e.At * 1e6,
				Pid: e.Node, Tid: e.Node, S: "t", Args: args,
			})
		}
	}
	// Stable presentation: Perfetto does not require time order, but humans
	// diffing exports do. Sort by timestamp, keeping stream order for ties.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		return out.TraceEvents[i].Ts < out.TraceEvents[j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}
