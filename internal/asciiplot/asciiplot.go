// Package asciiplot renders time series and bar charts as fixed-width text.
// The benchmark harness uses it to print figure-shaped output (deviation
// over time, recovery trajectories) next to the tables, so every "figure"
// experiment produces something a terminal can show.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Options controls chart geometry.
type Options struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	// YLabel/XLabel annotate the axes.
	YLabel, XLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// Line renders one or more series over a shared x axis. Series are drawn
// with distinct glyphs in order: '*', '+', 'o', 'x', '#'.
func Line(xs []float64, series map[string][]float64, opts Options) string {
	opts = opts.withDefaults()
	if len(xs) == 0 || len(series) == 0 {
		return "(no data)\n"
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#'}

	// Stable series order: sorted by name.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)

	xmin, xmax := minMax(xs)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, name := range names {
		lo, hi := minMax(series[name])
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if ymin == ymax {
		ymin -= 1
		ymax += 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		ys := series[name]
		for i, x := range xs {
			if i >= len(ys) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(opts.Width-1)))
			row := int(math.Round((ymax - ys[i]) / (ymax - ymin) * float64(opts.Height-1)))
			if col >= 0 && col < opts.Width && row >= 0 && row < opts.Height {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", ymax)
		case opts.Height - 1:
			label = fmt.Sprintf("%10.3g", ymin)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(rowBytes))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%s  %-10.3g%s%10.3g\n", strings.Repeat(" ", 10), xmin,
		strings.Repeat(" ", maxInt(1, opts.Width-20)), xmax)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%s  (%s)\n", strings.Repeat(" ", 10), opts.XLabel)
	}
	if len(names) > 1 {
		b.WriteString(strings.Repeat(" ", 12))
		for si, name := range names {
			fmt.Fprintf(&b, "%c=%s  ", glyphs[si%len(glyphs)], name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bars renders a horizontal bar chart of labeled values.
func Bars(labels []string, values []float64, opts Options) string {
	opts = opts.withDefaults()
	if len(labels) != len(values) || len(labels) == 0 {
		return "(no data)\n"
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if math.Abs(v) > maxVal {
			maxVal = math.Abs(v)
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxVal * float64(opts.Width)))
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sparkLevels are the eight block glyphs Spark maps values onto.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line sparkline of block glyphs, resampled to
// width columns (width ≤ 0 keeps one column per value). Each column shows the
// maximum of its bucket, scaled so the largest value uses the tallest glyph;
// NaN/Inf values are treated as zero. The live dashboard uses it for
// histogram and deviation miniatures.
func Spark(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	clean := make([]float64, len(values))
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			v = 0
		}
		clean[i] = v
	}
	if width <= 0 || width > len(clean) {
		width = len(clean)
	}
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(clean) / width
		hi := (c + 1) * len(clean) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := 0.0
		for _, v := range clean[lo:hi] {
			m = math.Max(m, v)
		}
		cols[c] = m
	}
	peak := 0.0
	for _, v := range cols {
		peak = math.Max(peak, v)
	}
	var b strings.Builder
	for _, v := range cols {
		idx := 0
		if peak > 0 {
			idx = int(v / peak * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}
