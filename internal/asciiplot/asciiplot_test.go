package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	out := Line(xs, map[string][]float64{"dev": {0, 1, 2, 1, 0}}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("no points plotted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 7 {
		t.Fatalf("too few rows: %d", len(lines))
	}
	// Y extremes labeled.
	if !strings.Contains(out, "2") || !strings.Contains(out, "0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestLineMultipleSeriesLegend(t *testing.T) {
	xs := []float64{0, 1, 2}
	out := Line(xs, map[string][]float64{
		"alpha": {0, 1, 2},
		"beta":  {2, 1, 0},
	}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*=alpha") || !strings.Contains(out, "+=beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestLineLabels(t *testing.T) {
	out := Line([]float64{0, 1}, map[string][]float64{"s": {0, 1}},
		Options{YLabel: "seconds", XLabel: "time"})
	if !strings.Contains(out, "seconds") || !strings.Contains(out, "(time)") {
		t.Fatalf("labels missing:\n%s", out)
	}
}

func TestLineDegenerateInputs(t *testing.T) {
	if out := Line(nil, nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatal("empty input not handled")
	}
	// Constant series and single x value must not divide by zero.
	out := Line([]float64{5}, map[string][]float64{"c": {3}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant plot broken:\n%s", out)
	}
	// NaN/Inf points are skipped, not plotted.
	out = Line([]float64{0, 1, 2}, map[string][]float64{"n": {math.NaN(), 1, math.Inf(1)}},
		Options{Width: 10, Height: 4})
	if strings.Count(out, "*") != 1 {
		t.Fatalf("NaN/Inf handling broken:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"sync", "broadcast"}, []float64{12, 144}, Options{Width: 24})
	if !strings.Contains(out, "sync") || !strings.Contains(out, "broadcast") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	if !strings.Contains(out, "144") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestBarsDegenerate(t *testing.T) {
	if out := Bars(nil, nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatal("empty bars not handled")
	}
	if out := Bars([]string{"a"}, []float64{1, 2}, Options{}); !strings.Contains(out, "no data") {
		t.Fatal("mismatched lengths not handled")
	}
	// All-zero values must not divide by zero.
	out := Bars([]string{"z"}, []float64{0}, Options{})
	if !strings.Contains(out, "z") {
		t.Fatalf("zero bars broken:\n%s", out)
	}
}
