// Package simtime defines the virtual time base used throughout the
// simulator.
//
// Real time ("τ" in the paper) and clock readings are both measured in
// seconds and represented as float64. Two distinct named types, Time and
// Duration, keep instants and spans from being mixed accidentally. The
// float64 representation is deliberate: hardware clocks apply fractional
// drift rates (1+ρ multipliers), which have no exact integer representation;
// the simulator is single-threaded and seeded, so float64 arithmetic is
// fully deterministic.
package simtime

import (
	"fmt"
	"math"
)

// Time is an instant on the real-time axis (or a clock reading), in seconds.
type Time float64

// Duration is a span of time in seconds.
type Duration float64

// Common durations, in seconds.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Infinity is a Duration larger than any real span; used as the "no bound"
// sentinel (for example the accuracy of a timed-out clock estimate).
var Infinity = Duration(math.Inf(1))

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t (t − u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the instant with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Seconds returns the span as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Abs returns the magnitude of the span.
func (d Duration) Abs() Duration { return Duration(math.Abs(float64(d))) }

// IsInf reports whether the span is infinite.
func (d Duration) IsInf() bool { return math.IsInf(float64(d), 0) }

// String formats the span using an adaptive unit.
func (d Duration) String() string {
	s := float64(d)
	abs := math.Abs(s)
	switch {
	case math.IsInf(s, 0):
		return "inf"
	case abs < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case abs < 120:
		return fmt.Sprintf("%.3fs", s)
	default:
		return fmt.Sprintf("%.1fmin", s/60)
	}
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the smaller of a and b.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Interval is a closed real-time interval [Lo, Hi].
type Interval struct {
	Lo, Hi Time
}

// Contains reports whether t lies inside the interval.
func (iv Interval) Contains(t Time) bool { return t >= iv.Lo && t <= iv.Hi }

// Overlaps reports whether the two closed intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Length returns the interval's span; it is negative for an empty interval.
func (iv Interval) Length() Duration { return iv.Hi.Sub(iv.Lo) }

// String formats the interval.
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v]", iv.Lo, iv.Hi)
}
