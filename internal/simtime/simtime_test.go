package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10)
	t1 := t0.Add(5 * Second)
	if t1 != Time(15) {
		t.Fatalf("Add: got %v, want 15s", t1)
	}
	if d := t1.Sub(t0); d != 5*Second {
		t.Fatalf("Sub: got %v, want 5s", d)
	}
	if !t0.Before(t1) || t0.After(t1) {
		t.Fatalf("ordering broken: %v vs %v", t0, t1)
	}
	if t1.Seconds() != 15 {
		t.Fatalf("Seconds: got %v", t1.Seconds())
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(base float64, span float64) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(span) || math.IsInf(span, 0) {
			return true
		}
		// Keep magnitudes in a range where float64 addition is exact enough.
		base = math.Mod(base, 1e9)
		span = math.Mod(span, 1e6)
		t0 := Time(base)
		d := Duration(span)
		got := t0.Add(d).Sub(t0)
		return math.Abs(float64(got-d)) <= 1e-6*math.Max(1, math.Abs(span))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Infinity.IsInf() != true {
		t.Fatal("Infinity must report IsInf")
	}
	if (5 * Second).IsInf() {
		t.Fatal("finite duration reports IsInf")
	}
	if got := Duration(-3).Abs(); got != 3 {
		t.Fatalf("Abs: got %v", got)
	}
	if MaxDuration(2, 3) != 3 || MinDuration(2, 3) != 2 {
		t.Fatal("Max/MinDuration broken")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Infinity, "inf"},
		{5 * Nanosecond, "5ns"},
		{250 * Microsecond, "250.0µs"},
		{50 * Millisecond, "50.00ms"},
		{2 * Second, "2.000s"},
		{10 * Minute, "10.0min"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v): got %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Contains(10) || !iv.Contains(20) || !iv.Contains(15) {
		t.Fatal("Contains should include endpoints and interior")
	}
	if iv.Contains(9.999) || iv.Contains(20.001) {
		t.Fatal("Contains should exclude exterior")
	}
	if iv.Length() != 10 {
		t.Fatalf("Length: got %v", iv.Length())
	}
	if !iv.Overlaps(Interval{Lo: 20, Hi: 30}) {
		t.Fatal("closed intervals sharing an endpoint must overlap")
	}
	if iv.Overlaps(Interval{Lo: 20.5, Hi: 30}) {
		t.Fatal("disjoint intervals must not overlap")
	}
}

func TestIntervalOverlapSymmetry(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		norm := func(x, y float64) Interval {
			x = math.Mod(x, 1e6)
			y = math.Mod(y, 1e6)
			if x > y {
				x, y = y, x
			}
			return Interval{Lo: Time(x), Hi: Time(y)}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		i1, i2 := norm(a, b), norm(c, d)
		return i1.Overlaps(i2) == i2.Overlaps(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
