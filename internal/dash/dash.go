// Package dash renders a live ANSI terminal dashboard from the observability
// stream: per-node clock offsets against the Δ deviation envelope, histogram
// sparklines for round-trip time, adjustment magnitude and good-set
// deviation, and the most recent protocol events. It consumes the same
// obs.Sink/obs.SpanSink interfaces every other consumer uses, so attaching it
// costs nothing when it is not attached.
//
// Frames are throttled by wall time: the simulator emits events far faster
// than real time, so rendering on every event would both flood the terminal
// and slow the run. One final frame is always drawn on Close.
package dash

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"clocksync/internal/asciiplot"
	"clocksync/internal/obs"
)

// Config parameterizes a Dash.
type Config struct {
	Out io.Writer // destination terminal (required)
	N   int       // processor count (rows of the offset gauge)
	// Delta is the Theorem 5 deviation envelope Δ in seconds; the offset
	// gauges span [−Δ, +Δ] and the header reports deviation against it.
	Delta float64
	// LastEvents is the number of recent events shown (default 8).
	LastEvents int
	// MinFrame is the minimal wall time between frames (default 100 ms;
	// negative disables throttling, for tests).
	MinFrame time.Duration
	// Width is the sparkline/gauge width in columns (default 40).
	Width int
	// Recorders, when non-nil, is polled at every frame for the current
	// recorder set and renders a serve-path panel: total queries answered,
	// the query rate since the previous frame, and reply-latency quantiles
	// merged across all recorders (the sampled ServeLatency histograms).
	Recorders func() []*obs.Recorder
}

// Dash is a Sink+SpanSink rendering the stream as a terminal dashboard.
type Dash struct {
	cfg Config

	mu        sync.Mutex
	at        float64   // latest event time seen
	biases    []float64 // per-node offsets from the latest sample
	deviation float64
	devHist   []float64 // recent deviations for the sparkline
	events    []obs.Event
	rounds    int64
	hRTT      obs.Histogram
	hAdjust   obs.Histogram
	hDev      obs.Histogram
	lastFrame time.Time
	now       func() time.Time

	// serve-panel rate state: the counter total and instant of the previous
	// frame, so the panel shows a rate over the inter-frame window.
	lastServeQueries int64
	lastServeAt      time.Time
}

// New builds a dashboard. It renders nothing until events arrive.
func New(cfg Config) *Dash {
	if cfg.LastEvents <= 0 {
		cfg.LastEvents = 8
	}
	if cfg.Width <= 0 {
		cfg.Width = 40
	}
	if cfg.MinFrame == 0 {
		cfg.MinFrame = 100 * time.Millisecond
	}
	return &Dash{cfg: cfg, biases: make([]float64, cfg.N), now: time.Now}
}

// Emit implements obs.Sink.
func (d *Dash) Emit(e obs.Event) {
	d.mu.Lock()
	if e.At > d.at {
		d.at = e.At
	}
	switch e.Kind {
	case obs.KindSample:
		copy(d.biases, e.Biases)
		d.deviation = e.Deviation
		d.devHist = append(d.devHist, e.Deviation)
		if len(d.devHist) > 4*d.cfg.Width {
			d.devHist = d.devHist[len(d.devHist)-4*d.cfg.Width:]
		}
		d.hDev.Observe(e.Deviation)
	case obs.KindRound:
		d.rounds++
		d.hAdjust.Observe(math.Abs(e.Fields["delta"]))
		d.pushEvent(e)
	default:
		d.pushEvent(e)
	}
	d.mu.Unlock()
	d.maybeRender(false)
}

// EmitSpan implements obs.SpanSink: estimation spans feed the RTT histogram.
func (d *Dash) EmitSpan(s obs.Span) {
	if s.Name == obs.SpanEstimate && s.Fields.Get("ok") == 1 {
		d.hRTT.Observe(s.Fields.Get("rtt"))
	}
}

// Close draws one final frame regardless of throttling.
func (d *Dash) Close() error {
	d.maybeRender(true)
	return nil
}

func (d *Dash) pushEvent(e obs.Event) {
	d.events = append(d.events, e)
	if len(d.events) > d.cfg.LastEvents {
		d.events = d.events[len(d.events)-d.cfg.LastEvents:]
	}
}

func (d *Dash) maybeRender(force bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !force && d.cfg.MinFrame > 0 && d.now().Sub(d.lastFrame) < d.cfg.MinFrame {
		return
	}
	d.lastFrame = d.now()
	fmt.Fprint(d.cfg.Out, d.renderLocked())
}

// renderLocked builds one frame. Caller holds d.mu.
func (d *Dash) renderLocked() string {
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	pct := 0.0
	if d.cfg.Delta > 0 {
		pct = 100 * d.deviation / d.cfg.Delta
	}
	fmt.Fprintf(&b, "clocksync  t=%.1fs  rounds=%d  deviation %.4gs / Δ %.4gs (%.0f%%)\n\n",
		d.at, d.rounds, d.deviation, d.cfg.Delta, pct)

	b.WriteString("offsets vs Δ envelope:\n")
	for i, bias := range d.biases {
		fmt.Fprintf(&b, "  n%-2d %s %+.4gs\n", i, gauge(bias, d.cfg.Delta, d.cfg.Width), bias)
	}

	fmt.Fprintf(&b, "\ndeviation %s\n", asciiplot.Spark(d.devHist, d.cfg.Width))
	b.WriteString(histLine("rtt", &d.hRTT, d.cfg.Width))
	b.WriteString(histLine("|adjust|", &d.hAdjust, d.cfg.Width))
	b.WriteString(histLine("deviation", &d.hDev, d.cfg.Width))

	if d.cfg.Recorders != nil {
		var total int64
		var h obs.Histogram
		for _, r := range d.cfg.Recorders() {
			total += r.ServeQueries.Load()
			h.Merge(&r.ServeLatency)
		}
		now := d.now()
		qps := 0.0
		if !d.lastServeAt.IsZero() {
			if dt := now.Sub(d.lastServeAt).Seconds(); dt > 0 {
				qps = float64(total-d.lastServeQueries) / dt
			}
		}
		d.lastServeQueries, d.lastServeAt = total, now
		fmt.Fprintf(&b, "\nserve path: %d queries  %.0f/s\n", total, qps)
		b.WriteString(histLine("reply", &h, d.cfg.Width))
	}

	if len(d.events) > 0 {
		b.WriteString("\nrecent events:\n")
		for _, e := range d.events {
			fmt.Fprintf(&b, "  %9.1fs  %-8s n%-2d %s\n", e.At, e.Kind, e.Node, fieldsLine(e.Fields))
		}
	}
	return b.String()
}

// gauge renders one offset as a marker on a [−Δ, +Δ] scale with the zero
// point in the middle; offsets beyond the envelope pin to the edge.
func gauge(bias, delta float64, width int) string {
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '-'
	}
	cells[width/2] = '|'
	pos := width / 2
	if delta > 0 {
		frac := bias / delta // −1..+1 inside the envelope
		frac = math.Max(-1, math.Min(1, frac))
		pos = int(math.Round((frac + 1) / 2 * float64(width-1)))
	}
	cells[pos] = 'o'
	return "[" + string(cells) + "]"
}

// histLine renders one histogram as quantiles plus a bucket-count sparkline
// over the populated bucket range.
func histLine(name string, h *obs.Histogram, width int) string {
	n := h.Count()
	if n == 0 {
		return fmt.Sprintf("%-9s (no data)\n", name)
	}
	counts := h.Buckets()
	lo, hi := -1, -1
	for i, c := range counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	vals := make([]float64, hi-lo+1)
	for i := range vals {
		vals[i] = float64(counts[lo+i])
	}
	return fmt.Sprintf("%-9s %s  n=%d p50 %.4gs p95 %.4gs p99 %.4gs\n",
		name, asciiplot.Spark(vals, width), n, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}

// fieldsLine formats an event's numeric payload compactly and stably.
func fieldsLine(fields map[string]float64) string {
	if len(fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	// Insertion sort; field maps are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, fields[k]))
	}
	return strings.Join(parts, " ")
}
