package dash

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clocksync/internal/obs"
)

func TestDashRendersFrame(t *testing.T) {
	var out bytes.Buffer
	d := New(Config{Out: &out, N: 3, Delta: 0.05, MinFrame: -1, Width: 20})

	d.EmitSpan(obs.Span{Name: obs.SpanEstimate, Fields: obs.F("ok", 1).F("rtt", 0.012)})
	d.Emit(obs.Event{At: 1, Kind: obs.KindSample, Biases: []float64{0.01, -0.02, 0}, Deviation: 0.03})
	d.Emit(obs.Event{At: 2, Kind: obs.KindRound, Node: 1, Fields: map[string]float64{"delta": -0.004, "failed": 0}})
	d.Emit(obs.Event{At: 3, Kind: obs.KindTimeout, Node: 2, Fields: map[string]float64{"peer": 0}})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	got := out.String()
	for _, want := range []string{
		"deviation 0.03s / Δ 0.05s (60%)",
		"offsets vs Δ envelope:",
		"n0", "n1", "n2",
		"rtt", "|adjust|",
		"recent events:",
		"round", "timeout", "delta=-0.004",
		"\x1b[H\x1b[2J",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
}

// TestDashServePanel pins the serve-path panel: with Recorders wired, a
// frame shows the merged query total, an inter-frame rate, and reply-latency
// quantiles from the merged (sampled) ServeLatency histograms.
func TestDashServePanel(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	var out bytes.Buffer
	d := New(Config{Out: &out, N: 1, Delta: 0.05, MinFrame: -1, Width: 20,
		Recorders: func() []*obs.Recorder { return []*obs.Recorder{recA, recB} }})
	base := time.Unix(1000, 0)
	d.now = func() time.Time { return base }

	recA.ServeQueries.Add(100)
	recB.ServeQueries.Add(50)
	recA.ServeLatency.Observe(2e-6)
	recB.ServeLatency.Observe(3e-6)
	d.Emit(obs.Event{At: 1, Kind: obs.KindSample, Biases: []float64{0}, Deviation: 0})

	got := out.String()
	if !strings.Contains(got, "serve path: 150 queries") {
		t.Errorf("frame missing merged serve total:\n%s", got)
	}
	if !strings.Contains(got, "reply") {
		t.Errorf("frame missing reply latency line:\n%s", got)
	}

	// Second frame one second later: 300 more queries → 300/s.
	out.Reset()
	d.now = func() time.Time { return base.Add(time.Second) }
	recA.ServeQueries.Add(300)
	d.Emit(obs.Event{At: 2, Kind: obs.KindSample, Biases: []float64{0}, Deviation: 0})
	if got := out.String(); !strings.Contains(got, "serve path: 450 queries  300/s") {
		t.Errorf("frame missing inter-frame query rate:\n%s", got)
	}

	// Without Recorders the panel stays out of the frame entirely.
	var plain bytes.Buffer
	p := New(Config{Out: &plain, N: 1, Delta: 0.05, MinFrame: -1, Width: 20})
	p.Emit(obs.Event{At: 1, Kind: obs.KindSample, Biases: []float64{0}, Deviation: 0})
	if strings.Contains(plain.String(), "serve path") {
		t.Errorf("serve panel rendered without recorders:\n%s", plain.String())
	}
}

func TestDashThrottlesFrames(t *testing.T) {
	var out bytes.Buffer
	d := New(Config{Out: &out, N: 1, Delta: 1, MinFrame: time.Hour, Width: 10})
	// Pin the clock so the first event lands inside the throttle window.
	base := time.Unix(1000, 0)
	d.lastFrame = base
	d.now = func() time.Time { return base.Add(time.Second) }

	d.Emit(obs.Event{At: 1, Kind: obs.KindSample, Biases: []float64{0}, Deviation: 0})
	if out.Len() != 0 {
		t.Fatalf("frame rendered inside throttle window:\n%s", out.String())
	}
	d.now = func() time.Time { return base.Add(2 * time.Hour) }
	d.Emit(obs.Event{At: 2, Kind: obs.KindSample, Biases: []float64{0}, Deviation: 0})
	if out.Len() == 0 {
		t.Fatal("no frame rendered after throttle window passed")
	}
}

func TestGaugePinsToEnvelope(t *testing.T) {
	g := gauge(10, 0.05, 21) // way outside Δ: pins right
	if g[len(g)-2] != 'o' {
		t.Errorf("over-envelope offset not pinned right: %s", g)
	}
	g = gauge(-10, 0.05, 21)
	if g[1] != 'o' {
		t.Errorf("under-envelope offset not pinned left: %s", g)
	}
	g = gauge(0, 0.05, 21)
	if !strings.Contains(g, "o") {
		t.Errorf("zero offset lost its marker: %s", g)
	}
}
