package protocol

// PeerSampler draws the subset of peers a node estimates against each Sync
// round. Full-mesh estimation sends O(n²) messages per round; sampling k
// peers sends O(n·k), trading message complexity against precision exactly
// as the Khanchandani–Lenzen line of work does — with k ≥ 2f+1 the
// convergence function's (f+1)-st order statistics still trim every
// Byzantine estimate, so agreement survives, while the accuracy envelope
// widens with the sparser view (measured empirically in E21).
//
// The subset is a seeded random k-of-n draw per round, keyed by
// (seed, node, round): deterministic for replay, independent across nodes
// and rounds so coverage rotates through the whole mesh, and O(k) space —
// no per-node permutation state, which matters at n=4096.
type PeerSampler struct {
	peers []int // the full universe, never mutated
	k     int
	seed  int64
	node  int
	round uint64
	out   []int
	picks map[int]struct{}
}

// NewPeerSampler samples k of the given peers per round. When k ≤ 0 or
// k ≥ len(peers) sampling is a no-op: Sample returns the full universe.
func NewPeerSampler(peers []int, k int, seed int64, node int) *PeerSampler {
	s := &PeerSampler{peers: peers, k: k, seed: seed, node: node}
	if k > 0 && k < len(peers) {
		s.out = make([]int, 0, k)
		s.picks = make(map[int]struct{}, k)
	}
	return s
}

// Sample returns this round's peer subset and advances the round counter.
// The returned slice is reused by the next call; callers must not retain it
// across rounds (EstimateAll's contract already demands the same of its
// results).
func (s *PeerSampler) Sample() []int {
	if s.picks == nil {
		return s.peers
	}
	round := s.round
	s.round++
	// Floyd's algorithm: k uniform draws, no rejection loop beyond the
	// single duplicate fallback, touching only O(k) state.
	n := len(s.peers)
	src := msgSource{state: samplerKey(s.seed, s.node, round)}
	clear(s.picks)
	s.out = s.out[:0]
	for j := n - s.k; j < n; j++ {
		t := int(src.next() % uint64(j+1))
		if _, dup := s.picks[t]; dup {
			t = j
		}
		s.picks[t] = struct{}{}
		s.out = append(s.out, s.peers[t])
	}
	return s.out
}

// msgSource is a splitmix64 stream (mirrors the sharded network's
// per-message source; duplicated here to keep protocol free of a network
// dependency cycle).
type msgSource struct{ state uint64 }

func (m *msgSource) next() uint64 {
	m.state += 0x9E3779B97F4A7C15
	z := m.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// samplerKey hashes (seed, node, round) into the round's draw-stream seed.
func samplerKey(seed int64, node int, round uint64) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	x := mix(uint64(seed) ^ 0xA5A5A5A55A5A5A5A)
	x = mix(x ^ uint64(uint32(node)))
	x = mix(x ^ round)
	return x
}
