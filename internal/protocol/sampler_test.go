package protocol

import "testing"

func TestPeerSamplerSubset(t *testing.T) {
	peers := make([]int, 20)
	for i := range peers {
		peers[i] = i + 100 // distinct ids, offset so index bugs show
	}
	s := NewPeerSampler(peers, 7, 42, 3)
	seen := make(map[int]int)
	for round := 0; round < 200; round++ {
		got := s.Sample()
		if len(got) != 7 {
			t.Fatalf("round %d: sample size %d, want 7", round, len(got))
		}
		inRound := make(map[int]bool, len(got))
		for _, p := range got {
			if p < 100 || p >= 120 {
				t.Fatalf("round %d: sampled %d outside universe", round, p)
			}
			if inRound[p] {
				t.Fatalf("round %d: duplicate peer %d in %v", round, p, got)
			}
			inRound[p] = true
			seen[p]++
		}
	}
	// Rotation: every peer of the universe must be covered over 200 rounds.
	for _, p := range peers {
		if seen[p] == 0 {
			t.Errorf("peer %d never sampled in 200 rounds", p)
		}
	}
}

func TestPeerSamplerDeterminism(t *testing.T) {
	peers := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	a := NewPeerSampler(peers, 4, 7, 2)
	b := NewPeerSampler(peers, 4, 7, 2)
	other := NewPeerSampler(peers, 4, 7, 3) // different node → different stream
	differs := false
	for round := 0; round < 50; round++ {
		x, y, z := a.Sample(), b.Sample(), other.Sample()
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("round %d: same key diverged: %v vs %v", round, x, y)
			}
		}
		if len(x) == len(z) {
			for i := range x {
				if x[i] != z[i] {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("nodes 2 and 3 drew identical subsets for 50 rounds")
	}
}

func TestPeerSamplerFullMeshFallback(t *testing.T) {
	peers := []int{1, 2, 3}
	for _, k := range []int{0, -1, 3, 10} {
		s := NewPeerSampler(peers, k, 1, 0)
		got := s.Sample()
		if len(got) != len(peers) {
			t.Fatalf("k=%d: sample %v, want full universe", k, got)
		}
		for i := range peers {
			if got[i] != peers[i] {
				t.Fatalf("k=%d: sample %v, want %v", k, got, peers)
			}
		}
	}
}

func TestPeerSamplerNoAllocsSteadyState(t *testing.T) {
	peers := make([]int, 64)
	for i := range peers {
		peers[i] = i
	}
	s := NewPeerSampler(peers, 13, 9, 1)
	s.Sample() // warm
	allocs := testing.AllocsPerRun(100, func() { s.Sample() })
	if allocs > 0 {
		t.Fatalf("Sample allocates %.1f objects/op in steady state", allocs)
	}
}
