package protocol

import (
	"fmt"

	"clocksync/internal/simtime"
)

// EstimateCache implements the estimation variant §3.1 discusses: instead of
// pinging peers synchronously inside every Sync, a background "thread" (an
// alarm loop on the local clock) refreshes offset estimates continuously and
// the protocol reads the latest stored value instantly.
//
// The paper is explicit that this breaks Definition 4 — "the separate thread
// may return an old cached value which was measured before the call to the
// clock estimation procedure. Hence, the analysis in this paper cannot be
// applied right out of the box" — and that the protocol must police the
// thread itself ("periodically check that this thread exists and restart it
// otherwise"). Experiment E17 measures the consequences: a stale cache makes
// the node's *own* adjustments invisible to its next convergence step, which
// turns the WayOff recovery jump into an overshoot oscillation unless the
// cache is invalidated after every adjustment.
type EstimateCache struct {
	h       *Harness
	peers   []int
	refresh simtime.Duration
	maxWait simtime.Duration

	latest  map[int]cachedEstimate
	sweeps  int
	started bool
}

type cachedEstimate struct {
	est     Estimate
	atLocal simtime.Time // local clock when the reply was processed
}

// NewEstimateCache builds a cache over the given peers. refresh is the local
// time between sweeps; it may be longer or shorter than the protocol's
// SyncInt — §3.1's point is precisely that the two are decoupled.
func NewEstimateCache(h *Harness, peers []int, refresh, maxWait simtime.Duration) *EstimateCache {
	if refresh <= 0 || maxWait <= 0 {
		panic(fmt.Sprintf("protocol: cache needs positive refresh (%v) and maxWait (%v)", refresh, maxWait))
	}
	return &EstimateCache{
		h:       h,
		peers:   append([]int(nil), peers...),
		refresh: refresh,
		maxWait: maxWait,
		latest:  make(map[int]cachedEstimate),
	}
}

// Start launches the refresh loop. The alarm chain runs on the hardware
// clock and survives corruption (the "restart the thread" requirement); the
// sweep itself is suspended while the processor is faulty.
func (c *EstimateCache) Start() {
	if c.started {
		panic("protocol: cache started twice")
	}
	c.started = true
	c.h.ScheduleLocal(c.refresh, c.sweep)
}

func (c *EstimateCache) sweep() {
	c.h.ScheduleLocal(c.refresh, c.sweep)
	if c.h.Faulty() {
		return
	}
	c.sweeps++
	for _, peer := range c.peers {
		peer := peer
		c.h.Ping(peer, c.maxWait, func(e Estimate) {
			if e.OK && !c.h.Faulty() {
				c.latest[peer] = cachedEstimate{est: e, atLocal: c.h.LocalNow()}
			}
		})
	}
}

// GetAll returns the latest stored estimate per peer, instantly; peers with
// no (or invalidated) entry yield the failure sentinel. The returned
// estimates carry the (d, a) measured at refresh time — NOT a Definition 4
// guarantee about the present.
func (c *EstimateCache) GetAll() []Estimate {
	out := make([]Estimate, 0, len(c.peers))
	for _, peer := range c.peers {
		if ce, ok := c.latest[peer]; ok {
			out = append(out, ce.est)
		} else {
			out = append(out, FailedEstimate(peer))
		}
	}
	return out
}

// Age returns how much local time has passed since peer's entry was stored.
func (c *EstimateCache) Age(peer int) (simtime.Duration, bool) {
	ce, ok := c.latest[peer]
	if !ok {
		return 0, false
	}
	return c.h.LocalNow().Sub(ce.atLocal), true
}

// Invalidate drops every stored estimate. The repaired protocol variant
// calls this after each of its own adjustments (and on release from a
// break-in): a stored offset measured against the pre-adjustment clock is
// off by exactly the adjustment, which is what drives the E17 oscillation.
func (c *EstimateCache) Invalidate() {
	c.latest = make(map[int]cachedEstimate)
}

// Sweeps returns the number of completed refresh sweeps (for tests).
func (c *EstimateCache) Sweeps() int { return c.sweeps }
