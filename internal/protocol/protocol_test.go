package protocol

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/simtime"
)

// rig wires n harnesses over a full mesh.
type rig struct {
	sim *des.Sim
	net *network.Network
	hs  []*Harness
}

func newRig(t *testing.T, n int, delay network.DelayModel, slopes ...float64) *rig {
	t.Helper()
	sim := des.New(1)
	net := network.New(sim, network.NewFullMesh(n), delay)
	hs := make([]*Harness, n)
	for i := 0; i < n; i++ {
		slope := 1.0
		if i < len(slopes) {
			slope = slopes[i]
		}
		hs[i] = NewHarness(i, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, slope)))
	}
	return &rig{sim: sim, net: net, hs: hs}
}

func TestEstimateSymmetricDelayIsExact(t *testing.T) {
	// With constant symmetric delay and no drift, the ping estimate of the
	// offset is exact and its error bound equals the one-way delay.
	r := newRig(t, 2, network.ConstantDelay{D: 10 * simtime.Millisecond})
	r.hs[1].Clock().Adjust(3) // C_1 − C_0 = 3
	var got Estimate
	r.sim.At(0, func() {
		r.hs[0].Ping(1, simtime.Second, func(e Estimate) { got = e })
	})
	r.sim.Run()
	if !got.OK {
		t.Fatal("ping timed out")
	}
	if math.Abs(float64(got.D-3)) > 1e-9 {
		t.Fatalf("offset estimate: got %v, want 3s", got.D)
	}
	if math.Abs(float64(got.A-10*simtime.Millisecond)) > 1e-9 {
		t.Fatalf("error bound: got %v, want 10ms", got.A)
	}
}

func TestEstimateSatisfiesDefinitionFour(t *testing.T) {
	// Definition 4: there was an instant τ'' during the estimation at which
	// C_q(τ'') − C_p(τ'') ∈ [d−a, d+a]. With constant offsets the difference
	// is (almost) constant, so it must lie in the returned interval; also
	// a ≤ Λ where Λ is induced by the delay bound.
	delay := network.NewUniformDelay(simtime.Millisecond, 20*simtime.Millisecond)
	r := newRig(t, 2, delay, 1.0005, 0.9995)
	r.hs[1].Clock().Adjust(-7)
	var got Estimate
	r.sim.At(5, func() {
		r.hs[0].Ping(1, simtime.Second, func(e Estimate) { got = e })
	})
	r.sim.Run()
	if !got.OK {
		t.Fatal("ping timed out")
	}
	diff := r.hs[1].Clock().Now(5).Sub(r.hs[0].Clock().Now(5))
	if float64(diff) < float64(got.Under())-1e-3 || float64(diff) > float64(got.Over())+1e-3 {
		t.Fatalf("true offset %v outside [%v, %v]", diff, got.Under(), got.Over())
	}
	// a = (R−S)/2 ≤ (1+ρ)·2δ/2.
	maxA := simtime.Duration(1.001 * 2 * 20e-3 / 2)
	if got.A > maxA {
		t.Fatalf("error bound %v exceeds Λ=%v", got.A, maxA)
	}
}

func TestPingTimeout(t *testing.T) {
	// Delay beyond the timeout yields the (0, ∞) failure sentinel.
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Second})
	var got Estimate
	called := 0
	r.sim.At(0, func() {
		r.hs[0].Ping(1, 100*simtime.Millisecond, func(e Estimate) { got = e; called++ })
	})
	r.sim.Run()
	if called != 1 {
		t.Fatalf("callback fired %d times, want exactly 1 (late reply must not re-fire)", called)
	}
	if got.OK {
		t.Fatal("timed-out ping reported OK")
	}
	if got.D != 0 || !got.A.IsInf() {
		t.Fatalf("failure sentinel: got (%v, %v), want (0, inf)", got.D, got.A)
	}
	if !got.Over().IsInf() || !got.Under().IsInf() {
		t.Fatal("failed estimate must have infinite over/under estimates")
	}
}

func TestEstimateAllOrderAndCompleteness(t *testing.T) {
	r := newRig(t, 4, network.ConstantDelay{D: simtime.Millisecond})
	for i := 1; i < 4; i++ {
		r.hs[i].Clock().Adjust(simtime.Duration(i))
	}
	var got []Estimate
	r.sim.At(0, func() {
		r.hs[0].EstimateAll([]int{3, 1, 2}, simtime.Second, func(es []Estimate) { got = es })
	})
	r.sim.Run()
	if len(got) != 3 {
		t.Fatalf("got %d estimates", len(got))
	}
	wantPeers := []int{3, 1, 2}
	for i, e := range got {
		if e.Peer != wantPeers[i] {
			t.Fatalf("results[%d].Peer = %d, want %d", i, e.Peer, wantPeers[i])
		}
		if math.Abs(float64(e.D)-float64(wantPeers[i])) > 1e-9 {
			t.Fatalf("estimate for %d: got %v", wantPeers[i], e.D)
		}
	}
}

func TestEstimateAllWithSilentPeer(t *testing.T) {
	r := newRig(t, 3, network.ConstantDelay{D: simtime.Millisecond})
	r.hs[2].Corrupt(silent{})
	var got []Estimate
	r.sim.At(0, func() {
		r.hs[0].EstimateAll([]int{1, 2}, 50*simtime.Millisecond, func(es []Estimate) { got = es })
	})
	r.sim.Run()
	if len(got) != 2 {
		t.Fatalf("got %d estimates", len(got))
	}
	if !got[0].OK || got[1].OK {
		t.Fatalf("expected peer 1 OK and peer 2 failed: %+v", got)
	}
}

func TestEstimateAllEmptyPeers(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	called := false
	r.sim.At(0, func() {
		r.hs[0].EstimateAll(nil, simtime.Second, func(es []Estimate) {
			called = true
			if len(es) != 0 {
				t.Errorf("expected empty results")
			}
		})
	})
	r.sim.Run()
	if !called {
		t.Fatal("done not called for empty round")
	}
}

func TestOverlappingRoundsPanic(t *testing.T) {
	r := newRig(t, 3, network.ConstantDelay{D: simtime.Second})
	r.sim.At(0, func() {
		r.hs[0].EstimateAll([]int{1}, 10*simtime.Second, func([]Estimate) {})
		defer func() {
			if recover() == nil {
				t.Error("overlapping round must panic")
			}
		}()
		r.hs[0].EstimateAll([]int{2}, 10*simtime.Second, func([]Estimate) {})
	})
	r.sim.Run()
}

// silent is a behavior that never answers.
type silent struct{}

func (silent) RespondTime(*Harness, int, simtime.Time) (simtime.Time, bool) { return 0, false }
func (silent) OnCorrupt(*Harness, simtime.Time)                             {}
func (silent) OnRelease(*Harness, simtime.Time)                             {}

// liar reports a fixed clock value.
type liar struct{ value simtime.Time }

func (l liar) RespondTime(*Harness, int, simtime.Time) (simtime.Time, bool) { return l.value, true }
func (liar) OnCorrupt(*Harness, simtime.Time)                               {}
func (liar) OnRelease(*Harness, simtime.Time)                               {}

func TestFaultyPeerLies(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	r.hs[1].Corrupt(liar{value: 1000})
	var got Estimate
	r.sim.At(0, func() {
		r.hs[0].Ping(1, simtime.Second, func(e Estimate) { got = e })
	})
	r.sim.Run()
	if !got.OK {
		t.Fatal("liar's reply should arrive")
	}
	if got.D < 990 {
		t.Fatalf("lie not reflected in estimate: %v", got.D)
	}
}

func TestCorruptionAbortsInFlightEstimation(t *testing.T) {
	// p is corrupted mid-round; the round's callback must never fire, even
	// after release — its state was adversary-controlled.
	r := newRig(t, 2, network.ConstantDelay{D: 100 * simtime.Millisecond})
	fired := false
	r.sim.At(0, func() {
		r.hs[0].EstimateAll([]int{1}, simtime.Second, func([]Estimate) { fired = true })
	})
	r.sim.At(0.01, func() { r.hs[0].Corrupt(silent{}) })
	r.sim.At(0.05, func() { r.hs[0].Release() })
	r.sim.Run()
	if fired {
		t.Fatal("aborted round callback fired")
	}
}

func TestCorruptReleaseLifecycle(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	h := r.hs[0]
	releases := 0
	h.OnRelease = func(simtime.Time) { releases++ }
	if h.Faulty() {
		t.Fatal("fresh harness is faulty")
	}
	h.Corrupt(silent{})
	if !h.Faulty() {
		t.Fatal("Corrupt did not mark faulty")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double corrupt must panic")
			}
		}()
		h.Corrupt(silent{})
	}()
	h.Release()
	if h.Faulty() {
		t.Fatal("Release did not clear faulty")
	}
	if releases != 1 {
		t.Fatalf("OnRelease fired %d times", releases)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release must panic")
			}
		}()
		h.Release()
	}()
}

func TestScheduleLocalHonorsDrift(t *testing.T) {
	// A clock running at 2x reaches +10 local after 5 real seconds.
	r := newRig(t, 1, network.ConstantDelay{D: simtime.Millisecond}, 2.0)
	var fired simtime.Time
	r.sim.At(0, func() {
		r.hs[0].ScheduleLocal(10, func() { fired = r.sim.Now() })
	})
	r.sim.Run()
	if math.Abs(float64(fired-5)) > 1e-9 {
		t.Fatalf("fired at %v, want 5", fired)
	}
}

func TestAdjustHookAndClock(t *testing.T) {
	r := newRig(t, 1, network.ConstantDelay{D: simtime.Millisecond})
	var seen []simtime.Duration
	r.hs[0].OnAdjust = func(_ simtime.Time, d simtime.Duration) { seen = append(seen, d) }
	r.hs[0].Adjust(2)
	r.hs[0].Adjust(-1)
	if len(seen) != 2 || seen[0] != 2 || seen[1] != -1 {
		t.Fatalf("OnAdjust saw %v", seen)
	}
	if got := r.hs[0].Clock().Adj(); got != 1 {
		t.Fatalf("adj: got %v", got)
	}
}

func TestPingBestPicksSmallestRTT(t *testing.T) {
	// Alternate slow/fast delays deterministically: the best-of-4 estimate
	// must carry the smallest error bound seen.
	delays := []simtime.Duration{40 * simtime.Millisecond, 5 * simtime.Millisecond, 30 * simtime.Millisecond, 10 * simtime.Millisecond}
	r := newRigWithScriptedDelays(t, 2, delays)
	var got Estimate
	r.sim.At(0, func() {
		r.hs[0].PingBest(1, 4, simtime.Second, func(e Estimate) { got = e })
	})
	r.sim.Run()
	if !got.OK {
		t.Fatal("PingBest failed")
	}
	// Each ping uses two messages; delays pair up as (40,5), (30,10), then
	// wrap. Best RTT = min(45, 40, ...) → a = min over pings of RTT/2.
	if got.A > 21*simtime.Millisecond {
		t.Fatalf("PingBest error bound %v too large", got.A)
	}
}

func TestPingBestAllTimeouts(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Second})
	var got Estimate
	called := 0
	r.sim.At(0, func() {
		r.hs[0].PingBest(1, 3, 10*simtime.Millisecond, func(e Estimate) { got = e; called++ })
	})
	r.sim.Run()
	if called != 1 || got.OK {
		t.Fatalf("PingBest with all timeouts: called=%d ok=%v", called, got.OK)
	}
}

func TestPingBestInvalidK(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 must panic")
		}
	}()
	r.hs[0].PingBest(1, 0, simtime.Second, func(Estimate) {})
}

func TestDefinitionFourProperty(t *testing.T) {
	// Definition 4 across the whole model envelope: random drift rates for
	// both ends, random delay bounds, random true offsets — the returned
	// interval [d−a, d+a] must contain the true offset at some instant of
	// the estimation window (here checked at the midpoint, with a drift
	// allowance for how much the offset can move within the window).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		rho := rng.Float64() * 1e-3
		lo, hi := 0.9995, 1.0005
		slopeP := lo + rng.Float64()*(hi-lo)
		slopeQ := lo + rng.Float64()*(hi-lo)
		offset := simtime.Time(rng.NormFloat64() * 100)
		maxDelay := simtime.Duration(1+rng.Float64()*99) * simtime.Millisecond

		sim := des.New(int64(trial))
		net := network.New(sim, network.NewFullMesh(2),
			network.NewUniformDelay(maxDelay/10, maxDelay))
		p := NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, slopeP)))
		_ = NewHarness(1, sim, net, clock.NewLocal(clock.NewDrifting(0, offset, slopeQ)))

		var est Estimate
		start := simtime.Time(rng.Float64() * 1000)
		sim.At(start, func() {
			p.Ping(1, 10*simtime.Second, func(e Estimate) { est = e })
		})
		sim.Run()
		if !est.OK {
			t.Fatalf("trial %d: ping failed", trial)
		}
		mid := start.Add(maxDelay) // some instant inside the window
		truth := float64(clock.NewDrifting(0, offset, slopeQ).Read(mid)) -
			float64(clock.NewDrifting(0, 0, slopeP).Read(mid))
		// Allow the offset's own movement across the ≤2·maxDelay window.
		slack := 2 * float64(maxDelay) * (2*rho + 1e-3)
		if truth < float64(est.Under())-slack || truth > float64(est.Over())+slack {
			t.Fatalf("trial %d: truth %v outside [%v, %v] (slack %v)",
				trial, truth, est.Under(), est.Over(), slack)
		}
	}
}

func TestHarnessAccessors(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	h := r.hs[0]
	if h.ID() != 0 || h.Sim() != r.sim || h.Net() != r.net {
		t.Fatal("accessors broken")
	}
	if got := h.LocalNow(); got != h.Clock().Now(r.sim.Now()) {
		t.Fatalf("LocalNow: %v", got)
	}
}

func TestCustomPayloadRouting(t *testing.T) {
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	var got []string
	r.hs[1].Custom = func(msg network.Message) {
		got = append(got, msg.Payload.(string))
	}
	r.net.Send(0, 1, "hello")
	r.sim.Run()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("custom routing: %v", got)
	}
	// While faulty, custom payloads are dropped.
	r.hs[1].Corrupt(silent{})
	r.net.Send(0, 1, "ignored")
	r.sim.Run()
	if len(got) != 1 {
		t.Fatalf("faulty node consumed a custom payload: %v", got)
	}
	// Unknown payloads with no Custom handler are dropped silently.
	r.hs[1].Release()
	r.hs[1].Custom = nil
	r.net.Send(0, 1, struct{}{})
	r.sim.Run()
}

func TestStaleResponseIgnored(t *testing.T) {
	// A TimeResp with an unknown nonce (e.g. a replay) must be dropped.
	r := newRig(t, 2, network.ConstantDelay{D: simtime.Millisecond})
	r.net.Send(1, 0, TimeResp{Nonce: 999, Clock: 123})
	r.sim.Run() // must not panic or produce estimates
}

func TestScheduleLocalNegativePanics(t *testing.T) {
	r := newRig(t, 1, network.ConstantDelay{D: simtime.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	r.hs[0].ScheduleLocal(-1, func() {})
}

func TestCacheDirectUse(t *testing.T) {
	// Exercise the cache API from this package too (core drives it in its
	// own tests): sweeps populate entries, Sweeps counts, GetAll ordering.
	r := newRig(t, 3, network.ConstantDelay{D: simtime.Millisecond})
	c := NewEstimateCache(r.hs[0], []int{2, 1}, 5, 1)
	c.Start()
	r.sim.RunUntil(6)
	if c.Sweeps() != 1 {
		t.Fatalf("sweeps: %d", c.Sweeps())
	}
	ests := c.GetAll()
	if len(ests) != 2 || ests[0].Peer != 2 || ests[1].Peer != 1 {
		t.Fatalf("GetAll order: %+v", ests)
	}
	if !ests[0].OK || !ests[1].OK {
		t.Fatalf("entries not populated: %+v", ests)
	}
	if _, ok := c.Age(1); !ok {
		t.Fatal("age missing")
	}
	if _, ok := c.Age(7); ok {
		t.Fatal("age for unknown peer")
	}
	// While the owner is faulty, sweeps pause (no fresh entries).
	r.hs[0].Corrupt(silent{})
	c.Invalidate()
	r.sim.RunUntil(20)
	if ests := c.GetAll(); ests[0].OK || ests[1].OK {
		t.Fatalf("faulty owner refreshed its cache: %+v", ests)
	}
}

// newRigWithScriptedDelays builds a rig whose delay model replays the given
// sequence of one-way delays in order, wrapping around.
func newRigWithScriptedDelays(t *testing.T, n int, seq []simtime.Duration) *rig {
	t.Helper()
	sim := des.New(1)
	i := 0
	dm := network.DelayFunc{
		Fn: func(from, to int, _ *rand.Rand) simtime.Duration {
			d := seq[i%len(seq)]
			i++
			return d
		},
		BoundVal: simtime.Second,
	}
	net := network.New(sim, network.NewFullMesh(n), dm)
	hs := make([]*Harness, n)
	for id := 0; id < n; id++ {
		hs[id] = NewHarness(id, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1.0)))
	}
	return &rig{sim: sim, net: net, hs: hs}
}
