// Package protocol provides the node harness shared by the paper's Sync
// protocol and the baseline comparators: wire message types, alarms driven
// by the (unresettable) hardware clock, the ping/echo clock-estimation
// engine of §3.1, and the hooks through which a mobile adversary takes over
// and releases a processor.
package protocol

import (
	"fmt"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

// TimeReq asks a peer for its current clock reading. Nonce ties the reply to
// the request, which rules out replays confusing an estimation round (the
// paper notes its link model "does not completely rule out replay" but that
// this does not hurt the application; nonces make the simulation strict).
type TimeReq struct {
	Nonce uint64
	// Span is the requester's estimation-span id, propagated so the
	// responder's "reply" span shares it and cross-node traces join — the
	// simulated twin of the live sync wire's trace context. Zero when the
	// requester is untraced.
	Span obs.SpanID
}

// WireSize implements network.Sizer. Trace context is not counted: like the
// live wire (where untraced packets omit it entirely), it must not perturb
// simulated transmission timing, or enabling tracing would change every
// deterministic schedule and invalidate the committed goldens.
func (TimeReq) WireSize() int { return 20 }

// TimeResp carries the responder's clock value at the moment of reply.
type TimeResp struct {
	Nonce uint64
	Clock simtime.Time
}

// WireSize implements network.Sizer.
func (TimeResp) WireSize() int { return 28 }

// Estimate is the (d, a) pair of Definition 4: "since the procedure was
// invoked there was a point at which C_q − C_p was in [D−A, D+A]".
type Estimate struct {
	Peer int
	D    simtime.Duration // estimated offset C_q − C_p
	A    simtime.Duration // error bound; simtime.Infinity on timeout
	OK   bool             // false when the peer did not answer in time
	Span obs.SpanID       // estimation span, 0 when tracing is disabled
}

// Over returns the overestimate d̄ = d + a (Figure 1, line 6).
func (e Estimate) Over() simtime.Duration { return e.D + e.A }

// Under returns the underestimate d̲ = d − a (Figure 1, line 7).
func (e Estimate) Under() simtime.Duration { return e.D - e.A }

// FailedEstimate is the sentinel for a timed-out peer: d = 0, a = ∞ (§3.1),
// so the overestimate is +∞ and the underestimate −∞ — values that the
// (f+1)-st order statistics of the convergence function trim away.
func FailedEstimate(peer int) Estimate {
	return Estimate{Peer: peer, D: 0, A: simtime.Infinity, OK: false}
}

// Behavior scripts a corrupted processor. While a processor is faulty its
// correct protocol logic is suspended and the adversary answers (or ignores)
// incoming time requests on its behalf, with full knowledge of the victim's
// state and, via whatever the concrete behavior closes over, of all network
// traffic — the full power §2.2 grants.
type Behavior interface {
	// RespondTime decides the clock value the corrupted processor reports to
	// peer. Returning reply=false suppresses the response entirely.
	RespondTime(h *Harness, peer int, now simtime.Time) (reading simtime.Time, reply bool)
	// OnCorrupt runs when the adversary takes the processor over; it may
	// rewrite any state, including the adjustment variable.
	OnCorrupt(h *Harness, now simtime.Time)
	// OnRelease runs when the adversary leaves the processor.
	OnRelease(h *Harness, now simtime.Time)
}

// Harness owns the per-processor machinery. Protocols embed a *Harness and
// drive it; the scenario runner corrupts and releases processors through it.
type Harness struct {
	id  int
	sim *des.Sim
	net *network.Network
	clk *clock.Local

	faulty   bool
	behavior Behavior

	nonce   uint64
	pending map[uint64]pendingPing
	// freeReq/freeResp recycle wire payloads. Pings dominated the simulator's
	// allocation profile (~94% of objects at n=256 was TimeReq/TimeResp
	// boxing), so payloads travel as pointers and the receiver returns them
	// here after dispatch. Capped: under peer sampling a node can receive
	// more requests than it sends, and an uncapped list would grow without
	// bound.
	freeReq  []*TimeReq
	freeResp []*TimeResp
	poolCap  int
	round    *estimationRound
	// roundMem is the estimation round's reusable state — peers, nonces and
	// results buffers survive across rounds, so a steady-state round costs
	// one timeout closure, not one allocation per peer. roundGen guards the
	// round timeout against firing into a later round.
	roundMem estimationRound
	roundGen uint64

	// Custom handles payloads other than TimeReq/TimeResp (round-based
	// baselines exchange their own message types). Nil for Sync.
	Custom func(network.Message)

	// OnAdjust observes every adjustment a correct processor applies; the
	// metrics recorder uses it to measure discontinuity (Definition 3(ii)).
	OnAdjust func(now simtime.Time, delta simtime.Duration)

	// OnRelease lets the protocol rearm its loop when the adversary leaves
	// (the paper: "one must make sure that this alarm is recovered after a
	// break-in").
	OnRelease func(now simtime.Time)

	// Obs receives the processor's observability stream (round events,
	// estimation timeouts); nil disables instrumentation. The scenario
	// runner shares one observer across all processors of a run.
	Obs *obs.Observer

	// SpanParent is the span every estimation started from here parents to.
	// The protocol driving the harness (internal/core) sets it around
	// EstimateAll; safe because only one round is in flight per processor.
	SpanParent obs.SpanID
}

type pendingPing struct {
	peer    int
	idx     int          // slot in the round's results, -1 for standalone pings
	sentAt  simtime.Time // local clock S at send
	sentSim simtime.Time // simulation time at send (span timebase)
	span    obs.SpanID   // estimation span, 0 when tracing is disabled
	parent  obs.SpanID
	done    func(Estimate) // standalone pings only; rounds route via idx
}

// NewHarness builds the harness for processor id and registers its network
// handler.
func NewHarness(id int, sim *des.Sim, net *network.Network, clk *clock.Local) *Harness {
	h := &Harness{
		id:      id,
		sim:     sim,
		net:     net,
		clk:     clk,
		pending: make(map[uint64]pendingPing),
		poolCap: payloadPoolCap,
	}
	// A full-mesh round puts ~2·(n−1) payloads in flight per node at once
	// (every peer pinged, every ping answered), so the free lists must hold a
	// round's working set or nearly every pop misses. That is also their
	// natural ceiling: in-flight payloads are O(n) per node regardless.
	if n := net.Topology().N(); 2*n > h.poolCap {
		h.poolCap = 2 * n
	}
	net.Register(id, h.receive)
	return h
}

// ID returns the processor's identity.
func (h *Harness) ID() int { return h.id }

// Sim returns the simulator the harness runs on.
func (h *Harness) Sim() *des.Sim { return h.sim }

// Net returns the message layer.
func (h *Harness) Net() *network.Network { return h.net }

// Clock returns the processor's logical clock.
func (h *Harness) Clock() *clock.Local { return h.clk }

// LocalNow returns C_p at the current simulation instant.
func (h *Harness) LocalNow() simtime.Time { return h.clk.Now(h.sim.Now()) }

// Faulty reports whether the processor is currently controlled by the
// adversary.
func (h *Harness) Faulty() bool { return h.faulty }

// Corrupt hands the processor to the adversary.
func (h *Harness) Corrupt(b Behavior) {
	if h.faulty {
		panic(fmt.Sprintf("protocol: processor %d corrupted twice", h.id))
	}
	h.faulty = true
	h.behavior = b
	// The adversary owns all protocol state from here on; in-flight
	// estimates are meaningless once the processor recovers.
	h.abortEstimation()
	b.OnCorrupt(h, h.sim.Now())
}

// Release returns the processor to correct operation. In-flight protocol
// state left by the adversary is discarded and the protocol's OnRelease hook
// rearms its loop.
func (h *Harness) Release() {
	if !h.faulty {
		panic(fmt.Sprintf("protocol: processor %d released while not faulty", h.id))
	}
	h.behavior.OnRelease(h, h.sim.Now())
	h.faulty = false
	h.behavior = nil
	h.abortEstimation()
	if h.OnRelease != nil {
		h.OnRelease(h.sim.Now())
	}
}

// Adjust applies a correction to the logical clock on behalf of the correct
// protocol and reports it to the metrics hook.
func (h *Harness) Adjust(delta simtime.Duration) {
	h.clk.Adjust(delta)
	if h.OnAdjust != nil {
		h.OnAdjust(h.sim.Now(), delta)
	}
}

// ScheduleLocal schedules fn to run when the processor's *hardware* clock
// has advanced by d. Alarms are hardware-driven so that an adversary who
// smashes the logical clock cannot starve the sync loop; this matches §3.3
// ("Every SyncInt time units of local time", with the alarm surviving
// break-ins).
func (h *Harness) ScheduleLocal(d simtime.Duration, fn func()) des.Event {
	if d < 0 {
		panic(fmt.Sprintf("protocol: negative local delay %v", d))
	}
	now := h.sim.Now()
	hw := h.clk.Hardware()
	target := hw.Read(now).Add(d)
	return h.sim.At(hw.RealAt(target, now), fn)
}

// payloadPoolCap is the minimum per-harness payload free-list bound; NewHarness
// raises it to twice the cluster size so a full round's working set pools.
const payloadPoolCap = 64

// newTimeReq pops a pooled request or allocates one.
func (h *Harness) newTimeReq() *TimeReq {
	if last := len(h.freeReq) - 1; last >= 0 {
		req := h.freeReq[last]
		h.freeReq = h.freeReq[:last]
		return req
	}
	return &TimeReq{}
}

// newTimeResp pops a pooled response or allocates one.
func (h *Harness) newTimeResp() *TimeResp {
	if last := len(h.freeResp) - 1; last >= 0 {
		resp := h.freeResp[last]
		h.freeResp = h.freeResp[:last]
		return resp
	}
	return &TimeResp{}
}

// receive dispatches a delivered message. Pointer payloads are recycled into
// the receiver's pools after their handler returns — handlers read the
// fields and never retain the pointer.
func (h *Harness) receive(msg network.Message) {
	switch p := msg.Payload.(type) {
	case *TimeReq:
		h.answerTimeReq(msg.From, *p)
		if len(h.freeReq) < h.poolCap {
			h.freeReq = append(h.freeReq, p)
		}
	case *TimeResp:
		h.handleTimeResp(msg.From, *p)
		if len(h.freeResp) < h.poolCap {
			h.freeResp = append(h.freeResp, p)
		}
	case TimeReq:
		h.answerTimeReq(msg.From, p)
	case TimeResp:
		h.handleTimeResp(msg.From, p)
	default:
		if h.faulty {
			return // adversary ignores protocol-specific traffic by default
		}
		if h.Custom != nil {
			h.Custom(msg)
		}
	}
}

// answerTimeReq replies with the current clock value — a processor always
// reports its *current* clock; there are no per-round clocks to keep (§3.3).
func (h *Harness) answerTimeReq(from int, req TimeReq) {
	now := h.sim.Now()
	if h.faulty {
		// A corrupted processor emits no telemetry: the adversary does not
		// advertise itself in the trace plane.
		reading, reply := h.behavior.RespondTime(h, from, now)
		if reply {
			resp := h.newTimeResp()
			resp.Nonce, resp.Clock = req.Nonce, reading
			h.net.Send(h.id, from, resp)
		}
		return
	}
	c := h.clk.Now(now)
	resp := h.newTimeResp()
	resp.Nonce, resp.Clock = req.Nonce, c
	h.net.Send(h.id, from, resp)
	if req.Span != 0 && h.Obs.SpansEnabled() {
		// The responder's half of the exchange, under the requester's
		// propagated id; node_time is exactly the C the requester folds into
		// its (d, a) estimate.
		h.Obs.EmitSpan(obs.Span{
			ID: req.Span, Name: obs.SpanReply, Node: h.id,
			Start: float64(now), End: float64(now),
			Fields: obs.F("origin", float64(from)).F("node_time", float64(c)),
		})
	}
}

func (h *Harness) handleTimeResp(from int, resp TimeResp) {
	p, ok := h.pending[resp.Nonce]
	if !ok || p.peer != from {
		return // stale, aborted, or mismatched reply
	}
	delete(h.pending, resp.Nonce)
	if h.faulty {
		return
	}
	// p sent at local time S, received at local time R, peer reported C:
	// d = C − (R+S)/2, a = (R−S)/2 (§3.1).
	r := h.LocalNow()
	s := p.sentAt
	est := Estimate{
		Peer: from,
		D:    resp.Clock.Sub(r) + (r.Sub(s) / 2),
		A:    r.Sub(s) / 2,
		OK:   true,
		Span: p.span,
	}
	if rec := h.Obs.Recorder(); rec != nil {
		rec.RTT.Observe(float64(r.Sub(s)))
		rec.EstError.Observe(float64(est.A))
	}
	if p.span != 0 {
		h.Obs.EmitSpan(obs.Span{
			ID: p.span, Parent: p.parent, Name: obs.SpanEstimate, Node: h.id,
			Start: float64(p.sentSim), End: float64(h.sim.Now()),
			Fields: obs.F("peer", float64(from)).
				F("d", float64(est.D)).
				F("a", float64(est.A)).
				F("rtt", float64(r.Sub(s))).
				F("ok", 1),
		})
	}
	if p.idx >= 0 {
		h.roundDeliver(p.idx, est)
		return
	}
	p.done(est)
}

// sendPing issues one clock request and registers it as pending. Exactly-once
// completion is guaranteed by the pending map alone: whichever of response or
// timeout claims the nonce first deletes it, and abortEstimation discards the
// whole map.
func (h *Harness) sendPing(peer, idx int, done func(Estimate)) uint64 {
	h.nonce++
	nonce := h.nonce
	var span obs.SpanID
	if h.Obs.SpansEnabled() {
		span = h.Obs.NextSpanID()
	}
	h.pending[nonce] = pendingPing{
		peer: peer, idx: idx, sentAt: h.LocalNow(), sentSim: h.sim.Now(),
		span: span, parent: h.SpanParent, done: done,
	}
	req := h.newTimeReq()
	req.Nonce, req.Span = nonce, span
	h.net.Send(h.id, peer, req)
	return nonce
}

// failPending expires one pending ping: it emits the timeout observations and
// returns the failed estimate. The caller has already removed the nonce.
func (h *Harness) failPending(peer int, p pendingPing) Estimate {
	if rec := h.Obs.Recorder(); rec != nil {
		rec.EstimationTimeouts.Inc()
		h.Obs.Emit(obs.Event{
			At: float64(h.sim.Now()), Kind: obs.KindTimeout, Node: h.id,
			Fields: map[string]float64{"peer": float64(peer)},
		})
	}
	if p.span != 0 {
		h.Obs.EmitSpan(obs.Span{
			ID: p.span, Parent: p.parent, Name: obs.SpanEstimate, Node: h.id,
			Start: float64(p.sentSim), End: float64(h.sim.Now()),
			Fields: obs.F("peer", float64(peer)).F("ok", 0).F("timeout", 1),
		})
	}
	fe := FailedEstimate(peer)
	fe.Span = p.span
	return fe
}

// Ping sends a single clock request to peer and invokes done exactly once:
// with the measured estimate, or with FailedEstimate after timeout on the
// local clock. It is the primitive beneath estimation rounds and the
// min-RTT-of-k refinement.
func (h *Harness) Ping(peer int, timeout simtime.Duration, done func(Estimate)) {
	nonce := h.sendPing(peer, -1, done)
	h.ScheduleLocal(timeout, func() {
		if p, still := h.pending[nonce]; still {
			delete(h.pending, nonce)
			p.done(h.failPending(peer, p))
		}
	})
}

// estimationRound gathers estimates for a set of peers in parallel. One
// instance per harness is reused across rounds (Harness.roundMem).
type estimationRound struct {
	got     int
	peers   []int
	nonces  []uint64
	results []Estimate
	timeout des.Event
	done    func([]Estimate)
}

// EstimateAll pings every listed peer in parallel and calls done with one
// estimate per peer (results[i] answers peers[i]) once all have answered or
// timed out. All estimations run concurrently, as the analysis assumes
// (§3.2), so a round occupies at most MaxWait of local time. Only one round
// may be in flight per processor; the results slice is reused by the next
// round, so done must copy anything it keeps.
//
// The whole round shares a single timeout event: every ping is sent at the
// same instant, so one alarm at maxWait expires all unanswered peers at
// exactly the per-ping deadlines, in send order — without allocating a
// timer closure per peer.
func (h *Harness) EstimateAll(peers []int, maxWait simtime.Duration, done func([]Estimate)) {
	if h.round != nil {
		panic(fmt.Sprintf("protocol: processor %d started overlapping estimation rounds", h.id))
	}
	if len(peers) == 0 {
		done(nil)
		return
	}
	r := &h.roundMem
	r.got = 0
	r.peers = peers
	r.done = done
	if cap(r.nonces) < len(peers) {
		r.nonces = make([]uint64, len(peers))
		r.results = make([]Estimate, len(peers))
	}
	r.nonces = r.nonces[:len(peers)]
	r.results = r.results[:len(peers)]
	h.round = r
	h.roundGen++
	gen := h.roundGen
	for i, peer := range peers {
		r.nonces[i] = h.sendPing(peer, i, nil)
	}
	r.timeout = h.ScheduleLocal(maxWait, func() { h.roundTimeout(gen) })
}

// roundDeliver records one answered estimate and completes the round when it
// is the last.
func (h *Harness) roundDeliver(idx int, est Estimate) {
	r := h.round
	if r == nil {
		return // response outlived its round (aborted between send and reply)
	}
	r.results[idx] = est
	r.got++
	if r.got == len(r.peers) {
		r.timeout.Cancel()
		h.round = nil
		r.done(r.results)
	}
}

// roundTimeout expires every still-unanswered peer of the round, in send
// order, and completes it. The generation guard makes a stale alarm (from a
// round that was aborted after its timeout was scheduled) a no-op.
func (h *Harness) roundTimeout(gen uint64) {
	r := h.round
	if r == nil || h.roundGen != gen {
		return
	}
	for i, nonce := range r.nonces {
		p, still := h.pending[nonce]
		if !still {
			continue
		}
		delete(h.pending, nonce)
		r.results[i] = h.failPending(r.peers[i], p)
		r.got++
	}
	if r.got == len(r.peers) {
		h.round = nil
		r.done(r.results)
	}
}

// abortEstimation invalidates any in-flight round and pings; their callbacks
// will never fire.
func (h *Harness) abortEstimation() {
	if h.round != nil {
		h.round.timeout.Cancel()
		h.round = nil
	}
	clear(h.pending)
}

// PingBest performs k sequential pings to peer and returns (via done) the
// estimate with the smallest error bound a — i.e. the smallest round-trip
// time. This is the standard refinement §3.1 mentions ("repeatedly ping the
// other processor and choose the estimation given from the ping with the
// least round trip time", as in NTP), trading timeliness for accuracy.
func (h *Harness) PingBest(peer, k int, timeout simtime.Duration, done func(Estimate)) {
	if k < 1 {
		panic("protocol: PingBest needs k >= 1")
	}
	best := FailedEstimate(peer)
	var step func(remaining int)
	step = func(remaining int) {
		h.Ping(peer, timeout, func(e Estimate) {
			if e.OK && (!best.OK || e.A < best.A) {
				best = e
			}
			if remaining == 1 {
				done(best)
				return
			}
			step(remaining - 1)
		})
	}
	step(k)
}
