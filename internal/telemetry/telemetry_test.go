package telemetry_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"clocksync/internal/livenet"
	"clocksync/internal/obs"
	"clocksync/internal/telemetry"
	"clocksync/internal/trace"
)

// TestParsePromRoundTrip pins the scraper's ability to read back the
// repository's own exposition format exactly: every scalar sample and every
// histogram bucket must survive WriteProm → ParseProm unchanged.
func TestParsePromRoundTrip(t *testing.T) {
	rec := obs.NewRecorder()
	rec.MessagesSent.Add(42)
	rec.ServeQueries.Add(7)
	rec.PeersDark.Set(2)
	rec.LastAdjust.Set(-0.00325)
	for i := 0; i < 100; i++ {
		rec.RTT.Observe(0.0001 * float64(i+1))
	}
	rec.ServeLatency.Observe(3e-6)

	var buf bytes.Buffer
	if err := rec.WriteProm(&buf, `node="3"`); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	m, err := telemetry.ParseProm(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if got := m.Value("clocksync_messages_sent_total"); got != 42 {
		t.Errorf("messages_sent = %v, want 42", got)
	}
	if got := m.Value("clocksync_serve_queries_total"); got != 7 {
		t.Errorf("serve_queries = %v, want 7", got)
	}
	if got := m.Value("clocksync_peers_dark"); got != 2 {
		t.Errorf("peers_dark = %v, want 2", got)
	}
	if got := m.Value("clocksync_last_adjust_seconds"); got != -0.00325 {
		t.Errorf("last_adjust = %v, want -0.00325", got)
	}

	h := m.Hist("clocksync_rtt_seconds")
	if h == nil {
		t.Fatal("rtt histogram missing after parse")
	}
	if h.Count() != rec.RTT.Count() {
		t.Errorf("rtt count = %d, want %d", h.Count(), rec.RTT.Count())
	}
	if math.Abs(h.Sum()-rec.RTT.Sum()) > 1e-12 {
		t.Errorf("rtt sum = %v, want %v", h.Sum(), rec.RTT.Sum())
	}
	if !reflect.DeepEqual(h.Buckets(), rec.RTT.Buckets()) {
		t.Errorf("rtt buckets differ after round trip")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := h.Quantile(q), rec.RTT.Quantile(q); got != want {
			t.Errorf("rtt q%.2f = %v, want %v", q, got, want)
		}
	}
	if got := m.Hist("clocksync_serve_latency_seconds"); got == nil || got.Count() != 1 {
		t.Errorf("serve latency histogram: %+v, want 1 observation", got)
	}
}

// TestMergeDisjointBuckets pins the merged-scrape histogram semantics: two
// nodes whose observations fall in entirely different buckets must merge
// into one histogram carrying both populations, exactly as the in-process
// obs.Histogram.Merge would.
func TestMergeDisjointBuckets(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	for i := 0; i < 3; i++ {
		recA.RTT.Observe(1e-6) // microseconds: low buckets
	}
	for i := 0; i < 2; i++ {
		recB.RTT.Observe(1.0) // whole seconds: top of the layout
	}
	var bufA, bufB bytes.Buffer
	if err := recA.WriteProm(&bufA, `node="0"`); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteProm(&bufB, `node="1"`); err != nil {
		t.Fatal(err)
	}
	mA, err := telemetry.ParseProm(bufA.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	mB, err := telemetry.ParseProm(bufB.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		{Target: telemetry.Target{Node: 0}, Metrics: mA},
		{Target: telemetry.Target{Node: 1}, Metrics: mB},
	}}
	merged := snap.Merged()
	h := merged.Hist("clocksync_rtt_seconds")
	if h == nil {
		t.Fatal("merged rtt histogram missing")
	}
	if h.Count() != 5 {
		t.Errorf("merged count = %d, want 5", h.Count())
	}
	if want := 3*1e-6 + 2*1.0; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("merged sum = %v, want %v", h.Sum(), want)
	}
	// The reference merge: the same two histograms combined in-process.
	ref := &obs.Histogram{}
	ref.Merge(&recA.RTT)
	ref.Merge(&recB.RTT)
	if !reflect.DeepEqual(h.Buckets(), ref.Buckets()) {
		t.Errorf("merged buckets differ from in-process Merge")
	}
	// 3 of 5 observations are microseconds, so the median is low and p99 is
	// in the seconds range — the disjoint populations both survived.
	if p50 := h.Quantile(0.5); p50 > 1e-4 {
		t.Errorf("merged p50 = %v, want microsecond range", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.5 {
		t.Errorf("merged p99 = %v, want ~1s range", p99)
	}
}

// fakeNode serves a minimal valid ops surface for scraper tests.
func fakeNode(t *testing.T, id int, rec *obs.Recorder, status livenet.Statusz, spans []obs.Span) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		rec.WriteProm(w, "")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("/spanz", func(w http.ResponseWriter, r *http.Request) {
		data, err := obs.MarshalSpans(spans)
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		w.Write(data)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestScrapeNodeDownMidScrape pins the fleet scraper's failure isolation: a
// target that refuses connections gets its error recorded while every other
// node's scrape completes, and the merged view covers exactly the survivors.
func TestScrapeNodeDownMidScrape(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	recA.SyncRounds.Add(10)
	recB.SyncRounds.Add(20)
	srvA := fakeNode(t, 0, recA, livenet.Statusz{ID: 0, Epoch: 5}, nil)
	srvB := fakeNode(t, 1, recB, livenet.Statusz{ID: 1, Epoch: 5}, nil)

	// A server stopped before the scrape stands in for a node that died
	// mid-round: the port is known but nobody answers.
	srvDead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := srvDead.Listener.Addr().String()
	srvDead.Close()

	sc := &telemetry.Scraper{Targets: []telemetry.Target{
		{Node: 0, Addr: srvA.Listener.Addr().String()},
		{Node: 1, Addr: srvB.Listener.Addr().String()},
		{Node: 2, Addr: deadAddr},
	}}
	snap := sc.Scrape(context.Background())
	if got := len(snap.Ok()); got != 2 {
		t.Fatalf("ok scrapes = %d, want 2", got)
	}
	down := snap.Down()
	if len(down) != 1 || down[0].Node != 2 {
		t.Fatalf("down = %+v, want exactly node 2", down)
	}
	if snap.Nodes[2].Err == nil || snap.Nodes[2].Metrics != nil {
		t.Errorf("dead node scrape: err=%v metrics=%v, want error and no data", snap.Nodes[2].Err, snap.Nodes[2].Metrics)
	}
	if got := snap.Merged().Value("clocksync_sync_rounds_total"); got != 30 {
		t.Errorf("merged sync rounds = %v, want 30 (survivors only)", got)
	}
}

// TestScrapeRejectsMisconfiguredID pins the identity check: a target whose
// /statusz claims a different node id than configured is an operator error
// (crossed ports) and must fail that node's scrape, not silently mis-join
// every span it serves.
func TestScrapeRejectsMisconfiguredID(t *testing.T) {
	rec := obs.NewRecorder()
	srv := fakeNode(t, 7, rec, livenet.Statusz{ID: 7}, nil)
	sc := &telemetry.Scraper{Targets: []telemetry.Target{
		{Node: 3, Addr: srv.Listener.Addr().String()}, // wrong: serves node 7
	}}
	snap := sc.Scrape(context.Background())
	if snap.Nodes[0].Err == nil {
		t.Fatal("scrape of mislabeled target succeeded, want identity error")
	}
}

// span builds a synthetic /spanz-shaped trace event.
func span(node int, name string, id uint64, at, dur float64, fields map[string]float64) trace.Event {
	return trace.Event{At: at, Kind: trace.KindSpan, Node: node, Name: name, Span: id, Dur: dur, Fields: fields}
}

// scrapeOf builds a synthetic successful NodeScrape.
func scrapeOf(node int, st livenet.Statusz, spans ...trace.Event) telemetry.NodeScrape {
	st.ID = node
	return telemetry.NodeScrape{
		Target: telemetry.Target{Node: node},
		Status: &st,
		Spans:  spans,
	}
}

// TestAlignJoinsAndChecksCausality pins the core invariant on synthetic
// data: a responder observation inside the requester's corrected send→recv
// window passes; one outside it (beyond both uncertainty intervals plus
// slack) is a causal-order violation.
func TestAlignJoinsAndChecksCausality(t *testing.T) {
	stOK := livenet.Statusz{UncertaintySec: 1e-4}
	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, stOK,
			// Good exchange: remote observation near the midpoint.
			span(0, "estimate", 7, 1000.000, 0.010, map[string]float64{"peer": 1, "ok": 1}),
			// Bad exchange: the responder claims to have seen it 50ms after
			// the requester already had the reply in hand.
			span(0, "estimate", 8, 2000.000, 0.010, map[string]float64{"peer": 1, "ok": 1}),
			// Timed-out attempt: no responder half, and not a completed
			// exchange — must not count against the join rate.
			span(0, "estimate", 9, 3000.000, 0.025, map[string]float64{"peer": 1, "ok": 0}),
		),
		scrapeOf(1, stOK,
			span(1, "reply", 7, 1000.005, 0, map[string]float64{"origin": 0}),
			span(1, "reply", 8, 2000.060, 0, map[string]float64{"origin": 0}),
		),
	}}
	al := telemetry.Align(snap, telemetry.AlignConfig{})
	if al.Completed != 2 {
		t.Errorf("completed = %d, want 2 (ok=0 attempt excluded)", al.Completed)
	}
	if len(al.Pairs) != 2 {
		t.Fatalf("joined pairs = %d, want 2", len(al.Pairs))
	}
	if al.JoinRate() != 1 {
		t.Errorf("join rate = %v, want 1", al.JoinRate())
	}
	if al.Violations != 1 {
		t.Fatalf("violations = %d, want exactly the late reply", al.Violations)
	}
	if al.Pairs[0].Violated || !al.Pairs[1].Violated {
		t.Errorf("wrong pair flagged: %+v", al.Pairs)
	}
}

// TestAlignUsesStatuszCorrections pins the timeline seam: a responder whose
// host wall clock is 40ms off reports that correction on /statusz, and the
// aligner must use it — the same raw timestamps flagged without the
// correction pass with it.
func TestAlignUsesStatuszCorrections(t *testing.T) {
	req := span(0, "estimate", 7, 1000.000, 0.010, map[string]float64{"peer": 1, "ok": 1})
	rep := span(1, "reply", 7, 1000.045, 0, map[string]float64{"origin": 0})

	// Without the correction the reply appears 35ms after the window.
	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, livenet.Statusz{UncertaintySec: 1e-4}, req),
		scrapeOf(1, livenet.Statusz{UncertaintySec: 1e-4}, rep),
	}}
	if al := telemetry.Align(snap, telemetry.AlignConfig{}); al.Violations != 1 {
		t.Fatalf("uncorrected: violations = %d, want 1", al.Violations)
	}
	// The responder knows its host clock runs 40ms ahead of its disciplined
	// clock (offset −40ms); aligned, the observation lands mid-window.
	snap = &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, livenet.Statusz{UncertaintySec: 1e-4}, req),
		scrapeOf(1, livenet.Statusz{UncertaintySec: 1e-4, OffsetSec: -0.040}, rep),
	}}
	if al := telemetry.Align(snap, telemetry.AlignConfig{}); al.Violations != 0 {
		t.Fatalf("corrected: violations = %d, want 0", al.Violations)
	}
}

// TestAlignFlagsAsymmetricLink pins the residual analysis: joined pairs
// whose remote observations sit persistently off-midpoint on one directed
// link — within tolerance, so no causal violation — still surface as a
// link-asymmetry warning.
func TestAlignFlagsAsymmetricLink(t *testing.T) {
	st := livenet.Statusz{UncertaintySec: 0.02} // wide envelope: nothing violates
	var reqs, reps []trace.Event
	for i := 0; i < 4; i++ {
		at := 1000.0 + float64(i)
		reqs = append(reqs, span(0, "estimate", uint64(10+i), at, 0.030, map[string]float64{"peer": 1, "ok": 1}))
		// Remote observation at send+25ms of a 30ms window: residual +10ms.
		reps = append(reps, span(1, "reply", uint64(10+i), at+0.025, 0, map[string]float64{"origin": 0}))
	}
	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, st, reqs...),
		scrapeOf(1, st, reps...),
	}}
	al := telemetry.Align(snap, telemetry.AlignConfig{})
	if al.Violations != 0 {
		t.Fatalf("violations = %d, want 0 (within tolerance)", al.Violations)
	}
	if len(al.Links) != 1 || al.Links[0].From != 0 || al.Links[0].To != 1 {
		t.Fatalf("links = %+v, want exactly 0->1", al.Links)
	}
	if got := al.Links[0].MeanResidual; math.Abs(got-0.010) > 1e-9 {
		t.Errorf("mean residual = %v, want 0.010", got)
	}
}

// TestAlignStaleEpoch pins stale-epoch detection: a node whose sync epoch
// trails the fleet maximum by more than the configured lag is reported.
func TestAlignStaleEpoch(t *testing.T) {
	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, livenet.Statusz{Epoch: 50}),
		scrapeOf(1, livenet.Statusz{Epoch: 49}), // within lag
		scrapeOf(2, livenet.Statusz{Epoch: 12}), // stale: stopped syncing long ago
	}}
	al := telemetry.Align(snap, telemetry.AlignConfig{EpochLag: 3})
	if len(al.Stale) != 1 {
		t.Fatalf("stale = %+v, want exactly node 2", al.Stale)
	}
	s := al.Stale[0]
	if s.Node != 2 || s.Epoch != 12 || s.FleetEpoch != 50 {
		t.Errorf("stale entry = %+v", s)
	}
}

// TestExportNamespacesSpanIDs pins the JSONL export's id remapping: two
// nodes whose local span counters collide must export fleet-unique ids,
// with parent links intact per node and reply spans remapped into their
// origin's namespace so the cross-node join survives the export.
func TestExportNamespacesSpanIDs(t *testing.T) {
	snap := &telemetry.Snapshot{Nodes: []telemetry.NodeScrape{
		scrapeOf(0, livenet.Statusz{},
			span(0, "round", 1, 1000.0, 0.05, nil),
			trace.Event{At: 1000.0, Kind: trace.KindSpan, Node: 0, Name: "estimate", Span: 2, Parent: 1, Dur: 0.01,
				Fields: map[string]float64{"peer": 1, "ok": 1}},
		),
		scrapeOf(1, livenet.Statusz{},
			span(1, "round", 1, 1000.1, 0.05, nil), // same local ids as node 0
			span(1, "reply", 2, 1000.005, 0, map[string]float64{"origin": 0}),
		),
	}}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, snap); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("re-reading export: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("exported %d events, want 4", len(events))
	}
	byName := map[string][]trace.Event{}
	ids := map[uint64]int{}
	for _, e := range events {
		byName[e.Name] = append(byName[e.Name], e)
		if e.Name != "reply" { // the reply deliberately shares its requester's id
			ids[e.Span]++
		}
	}
	for id, n := range ids {
		if n != 1 {
			t.Errorf("span id %d exported %d times, want unique", id, n)
		}
	}
	if r := byName["round"]; r[0].Span == r[1].Span {
		t.Errorf("colliding round ids not namespaced: both %d", r[0].Span)
	}
	est, rep := byName["estimate"][0], byName["reply"][0]
	if est.Span != rep.Span {
		t.Errorf("cross-node join broken by export: estimate id %d, reply id %d", est.Span, rep.Span)
	}
	// Parent links must stay within the node's namespace.
	var round0 trace.Event
	for _, r := range byName["round"] {
		if r.Node == 0 {
			round0 = r
		}
	}
	if est.Parent != round0.Span {
		t.Errorf("estimate parent %d does not match its node's round %d", est.Parent, round0.Span)
	}
}
