package telemetry

import (
	"fmt"
	"sort"
	"time"

	"clocksync/internal/trace"
)

// AlignConfig tunes the cross-node span alignment.
type AlignConfig struct {
	// Slack is extra tolerance beyond the two nodes' uncertainty intervals,
	// absorbing span-timestamping overhead (time.Now calls around the actual
	// wire events) and float rounding. Default 2ms.
	Slack time.Duration
	// AsymThreshold flags a directed link whose mean midpoint residual
	// exceeds it: under symmetric delay the responder's observation sits at
	// the midpoint of the requester's send→recv window, so a persistent
	// offset ≈ ±D/2 exposes one-directional extra delay D that the protocol
	// honestly absorbed into its uncertainty. Default 5ms.
	AsymThreshold time.Duration
	// MinLinkSamples is the minimum joined pairs on a directed link before
	// its residual mean is trusted. Default 3.
	MinLinkSamples int
	// EpochLag is how many sync epochs a node may trail the fleet maximum
	// before it is reported stale. Default 3.
	EpochLag uint64
}

func (c AlignConfig) withDefaults() AlignConfig {
	if c.Slack == 0 {
		c.Slack = 2 * time.Millisecond
	}
	if c.AsymThreshold == 0 {
		c.AsymThreshold = 5 * time.Millisecond
	}
	if c.MinLinkSamples == 0 {
		c.MinLinkSamples = 3
	}
	if c.EpochLag == 0 {
		c.EpochLag = 3
	}
	return c
}

// JoinedPair is one cross-node exchange reassembled from its two halves: the
// requester's span (estimate or query) and the responder's span (reply or
// serve) carrying the same propagated id. All times are cluster-timeline
// Unix seconds — each side's host timestamps shifted by that node's own
// statusz correction.
type JoinedPair struct {
	Origin    int    // requester node
	Responder int    // responder node
	SpanID    uint64 // the propagated id both sides recorded
	Kind      string // requester span name: "estimate" (sync) or "query" (serve)

	Send     float64 // requester send, cluster timeline
	Recv     float64 // requester reply receipt, cluster timeline
	Remote   float64 // responder observation, cluster timeline
	Tol      float64 // allowed slop: unc(origin) + unc(responder) + slack, seconds
	Residual float64 // Remote − (Send+Recv)/2, seconds
	Violated bool    // Remote outside [Send−Tol, Recv+Tol]
}

// LinkWarning reports a directed link whose joined pairs show systematic
// delay asymmetry.
type LinkWarning struct {
	From, To     int
	Samples      int
	MeanResidual float64 // seconds; sign says which direction carries the extra delay
}

func (w LinkWarning) String() string {
	return fmt.Sprintf("link %d->%d: mean midpoint residual %+.3fms over %d joined spans (asymmetric delay ~%.3fms)",
		w.From, w.To, w.MeanResidual*1e3, w.Samples, 2*w.MeanResidual*1e3)
}

// StaleNode reports a node whose sync epoch trails the fleet.
type StaleNode struct {
	Node       int
	Epoch      uint64
	FleetEpoch uint64
}

// Alignment is the outcome of joining one Snapshot's spans.
type Alignment struct {
	// Completed counts requester-side spans of completed exchanges (ok
	// estimates and query spans) — the join-rate denominator.
	Completed int
	// Pairs are the exchanges whose responder half was found, sorted by
	// send time. len(Pairs)/Completed is the fleet's join rate.
	Pairs      []JoinedPair
	Violations int // pairs with Violated set
	Links      []LinkWarning
	Stale      []StaleNode
}

// JoinRate returns len(Pairs)/Completed (1 when nothing completed).
func (a *Alignment) JoinRate() float64 {
	if a.Completed == 0 {
		return 1
	}
	return float64(len(a.Pairs)) / float64(a.Completed)
}

// joinKey identifies one propagated span fleet-wide. Span ids are issued
// per-node (separate processes, colliding counters), so the requester's node
// id is part of the key.
type joinKey struct {
	origin int
	id     uint64
}

// Align joins the snapshot's cross-node spans, checks causal order on the
// shared timeline, and derives link-asymmetry and stale-epoch findings.
// Nodes that failed to scrape contribute nothing; exchanges whose responder
// was unreachable simply stay unjoined.
func Align(snap *Snapshot, cfg AlignConfig) *Alignment {
	cfg = cfg.withDefaults()
	out := &Alignment{}
	ok := snap.Ok()

	// Per-node alignment seam: correction onto the cluster timeline and the
	// envelope half-width bounding how precise that seam is.
	corr := make(map[int]float64, len(ok))
	unc := make(map[int]float64, len(ok))
	var fleetEpoch uint64
	for _, n := range ok {
		corr[n.Target.Node] = n.Status.OffsetSec
		unc[n.Target.Node] = n.Status.UncertaintySec
		if n.Status.Epoch > fleetEpoch {
			fleetEpoch = n.Status.Epoch
		}
	}
	for _, n := range ok {
		if fleetEpoch-n.Status.Epoch > cfg.EpochLag {
			out.Stale = append(out.Stale, StaleNode{
				Node: n.Target.Node, Epoch: n.Status.Epoch, FleetEpoch: fleetEpoch,
			})
		}
	}

	// Gather spans, deduplicating: with a shared observer every node's ring
	// holds the whole fleet's spans, so the same record can arrive from
	// several scrapes.
	type spanKey struct {
		node int
		name string
		id   uint64
		at   float64
	}
	seen := make(map[spanKey]bool)
	responders := make(map[joinKey]trace.Event)
	var requesters []trace.Event
	for _, n := range ok {
		for _, e := range n.Spans {
			if e.Kind != trace.KindSpan || e.Span == 0 {
				continue
			}
			sk := spanKey{node: e.Node, name: e.Name, id: e.Span, at: e.At}
			if seen[sk] {
				continue
			}
			seen[sk] = true
			switch e.Name {
			case "reply", "serve":
				responders[joinKey{origin: int(e.Field("origin")), id: e.Span}] = e
			case "estimate":
				if e.Field("ok") == 1 {
					requesters = append(requesters, e)
				}
			case "query":
				requesters = append(requesters, e)
			}
		}
	}

	out.Completed = len(requesters)
	linkSum := make(map[[2]int]float64)
	linkN := make(map[[2]int]int)
	for _, req := range requesters {
		resp, found := responders[joinKey{origin: req.Node, id: req.Span}]
		if !found {
			continue
		}
		cO, cR := corr[req.Node], corr[resp.Node]
		p := JoinedPair{
			Origin:    req.Node,
			Responder: resp.Node,
			SpanID:    req.Span,
			Kind:      req.Name,
			Send:      req.At + cO,
			Recv:      req.At + req.Dur + cO,
			Remote:    resp.At + cR,
			Tol:       unc[req.Node] + unc[resp.Node] + cfg.Slack.Seconds(),
		}
		p.Residual = p.Remote - (p.Send+p.Recv)/2
		p.Violated = p.Remote < p.Send-p.Tol || p.Remote > p.Recv+p.Tol
		if p.Violated {
			out.Violations++
		}
		out.Pairs = append(out.Pairs, p)
		link := [2]int{p.Origin, p.Responder}
		linkSum[link] += p.Residual
		linkN[link]++
	}
	sort.Slice(out.Pairs, func(i, j int) bool { return out.Pairs[i].Send < out.Pairs[j].Send })

	for link, n := range linkN {
		if n < cfg.MinLinkSamples {
			continue
		}
		mean := linkSum[link] / float64(n)
		if mean > cfg.AsymThreshold.Seconds() || mean < -cfg.AsymThreshold.Seconds() {
			out.Links = append(out.Links, LinkWarning{
				From: link[0], To: link[1], Samples: n, MeanResidual: mean,
			})
		}
	}
	sort.Slice(out.Links, func(i, j int) bool {
		if out.Links[i].From != out.Links[j].From {
			return out.Links[i].From < out.Links[j].From
		}
		return out.Links[i].To < out.Links[j].To
	})
	sort.Slice(out.Stale, func(i, j int) bool { return out.Stale[i].Node < out.Stale[j].Node })
	return out
}
