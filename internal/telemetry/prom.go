package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"clocksync/internal/obs"
)

// NodeMetrics is one node's /metrics page parsed back into numbers: scalar
// samples (counters and gauges) by metric name, and full histograms by base
// name, rebuilt bucket-for-bucket so they merge exactly like the live
// in-process histograms do (obs.Histogram.Merge).
type NodeMetrics struct {
	Values map[string]float64
	Hists  map[string]*obs.Histogram
}

func newNodeMetrics() *NodeMetrics {
	return &NodeMetrics{
		Values: make(map[string]float64),
		Hists:  make(map[string]*obs.Histogram),
	}
}

// Value returns the named scalar sample (0 when absent).
func (m *NodeMetrics) Value(name string) float64 { return m.Values[name] }

// Hist returns the named histogram, or nil.
func (m *NodeMetrics) Hist(name string) *obs.Histogram { return m.Hists[name] }

// merge folds other into m: scalars add, histograms merge by bucket.
func (m *NodeMetrics) merge(other *NodeMetrics) {
	if other == nil {
		return
	}
	for k, v := range other.Values {
		m.Values[k] += v
	}
	for k, h := range other.Hists {
		if mine, ok := m.Hists[k]; ok {
			mine.Merge(h)
		} else {
			cp := &obs.Histogram{}
			cp.Merge(h)
			m.Hists[k] = cp
		}
	}
}

// histAccum gathers one histogram's series while scanning the page.
type histAccum struct {
	cum      []int64 // cumulative bucket counts in exposition order (le asc, +Inf last)
	sum      float64
	hasSum   bool
	hasCount bool
}

// ParseProm parses the repository's own Prometheus text exposition (the
// format obs.WriteProm emits) for a single-node page. It is deliberately not
// a general Prometheus parser: one label set per page (the node's own), no
// escaping beyond what our exporter produces. Histogram series (_bucket,
// _sum, _count) are reassembled into obs.Histograms; everything else lands
// in Values. Derived quantile gauges (_p50/_p95/_p99) parse as plain values.
func ParseProm(data []byte) (*NodeMetrics, error) {
	m := newNodeMetrics()
	hists := make(map[string]*histAccum)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, le, hasLE, value, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: /metrics line %d: %w", lineNo, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && hasLE:
			base := strings.TrimSuffix(name, "_bucket")
			h := hists[base]
			if h == nil {
				h = &histAccum{}
				hists[base] = h
			}
			_ = le // order is the exposition's own (ascending, +Inf last)
			h.cum = append(h.cum, int64(value))
		case strings.HasSuffix(name, "_sum"):
			base := strings.TrimSuffix(name, "_sum")
			h := hists[base]
			if h == nil {
				h = &histAccum{}
				hists[base] = h
			}
			h.sum, h.hasSum = value, true
		case strings.HasSuffix(name, "_count"):
			base := strings.TrimSuffix(name, "_count")
			h := hists[base]
			if h == nil {
				h = &histAccum{}
				hists[base] = h
			}
			h.hasCount = true
		default:
			m.Values[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: scanning /metrics: %w", err)
	}
	for base, acc := range hists {
		if !acc.hasSum || !acc.hasCount || len(acc.cum) == 0 {
			return nil, fmt.Errorf("telemetry: histogram %s: incomplete series (%d buckets, sum=%v, count=%v)",
				base, len(acc.cum), acc.hasSum, acc.hasCount)
		}
		if len(acc.cum) != obs.NumHistogramBuckets() {
			return nil, fmt.Errorf("telemetry: histogram %s: %d buckets on the wire, want %d (layout mismatch between scraper and node?)",
				base, len(acc.cum), obs.NumHistogramBuckets())
		}
		counts := make([]int64, len(acc.cum))
		prev := int64(0)
		for i, c := range acc.cum {
			if c < prev {
				return nil, fmt.Errorf("telemetry: histogram %s: bucket %d not cumulative (%d after %d)", base, i, c, prev)
			}
			counts[i] = c - prev
			prev = c
		}
		h, err := obs.HistogramFromBuckets(counts, acc.sum)
		if err != nil {
			return nil, fmt.Errorf("telemetry: histogram %s: %w", base, err)
		}
		m.Hists[base] = h
	}
	return m, nil
}

// parsePromLine splits `name{labels} value` (labels optional), returning the
// le label when present.
func parsePromLine(line string) (name, le string, hasLE bool, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest[i:], '}')
		if j < 0 {
			return "", "", false, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels := rest[i+1 : i+j]
		rest = strings.TrimSpace(rest[i+j+1:])
		for _, lab := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(lab), "=")
			if !ok {
				continue
			}
			if k == "le" {
				le = strings.Trim(v, `"`)
				hasLE = true
			}
		}
	} else {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return "", "", false, 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", "", false, 0, fmt.Errorf("bad value in %q: %v", line, perr)
	}
	return name, le, hasLE, v, nil
}
