// Package telemetry is the fleet-side half of the observability plane: it
// scrapes N live nodes' ops endpoints (/metrics, /statusz, /spanz), merges
// the per-node state into one cluster view, joins cross-node trace spans by
// their propagated ids, and re-aligns remote span timestamps onto a shared
// cluster timeline using each node's own interval-valued reading.
//
// The alignment is where the paper earns its keep operationally: every node
// serves, next to its host wall clock, the correction its disciplined clock
// currently applies (Statusz.OffsetSec) and the uncertainty half-width its
// Theorem 5 envelope grants that reading. Adding a node's correction to its
// host-stamped span timestamps places them on the cluster timeline to within
// that uncertainty — so causal order across nodes (a request was sent before
// the remote node observed it, and observed before the reply arrived) must
// hold up to the sum of the two nodes' uncertainties. A violation beyond
// that bound is not noise: either a node's envelope is broken (Theorem 5
// assumptions violated) or the telemetry itself is lying.
//
// Package layout: prom.go parses the repository's own Prometheus exposition
// back into counters and mergeable histograms; scrape.go polls the fleet
// concurrently and tolerates per-node failures; align.go joins and checks
// spans; export.go renders the merged state as JSONL for cmd/tracestat.
package telemetry

import (
	"time"

	"clocksync/internal/livenet"
	"clocksync/internal/trace"
)

// Target names one node's ops endpoint.
type Target struct {
	// Node is the fleet node id (must match the node's configured ID: span
	// origin fields and /statusz ids are joined against it).
	Node int
	// Addr is the host:port of the node's metrics mux (Node.MetricsAddr).
	Addr string
}

// NodeScrape is everything gathered from one node in one scrape round. When
// Err is non-nil the node was unreachable (or answered garbage) and the
// other fields are zero — the fleet view degrades per-node, never whole.
type NodeScrape struct {
	Target Target
	At     time.Time // scrape completion, scraper's host clock
	Err    error

	Metrics *NodeMetrics
	Status  *livenet.Statusz
	Spans   []trace.Event
}

// Snapshot is one scrape round across the fleet, in Targets order.
type Snapshot struct {
	At    time.Time
	Nodes []NodeScrape
}

// Ok returns the scrapes that succeeded.
func (s *Snapshot) Ok() []NodeScrape {
	out := make([]NodeScrape, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.Err == nil {
			out = append(out, n)
		}
	}
	return out
}

// Down returns the targets that failed this round.
func (s *Snapshot) Down() []Target {
	var out []Target
	for _, n := range s.Nodes {
		if n.Err != nil {
			out = append(out, n.Target)
		}
	}
	return out
}

// Merged returns the fleet-wide metric merge: counters and histogram buckets
// summed across every reachable node. Gauges are summed too — right for
// occupancy-style gauges (peers dark), meaningless for signed per-node ones
// (last adjust); per-node values stay available on each NodeScrape.
func (s *Snapshot) Merged() *NodeMetrics {
	m := newNodeMetrics()
	for _, n := range s.Ok() {
		m.merge(n.Metrics)
	}
	return m
}
