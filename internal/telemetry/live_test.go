package telemetry_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"clocksync/internal/livenet"
	"clocksync/internal/simtime"
	"clocksync/internal/telemetry"
	"clocksync/internal/trace"
)

// waitMetricsUp polls until every address callback returns a bound port.
func waitMetricsUp(t *testing.T, n int, addr func(int) string) []telemetry.Target {
	t.Helper()
	targets := make([]telemetry.Target, n)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < n; i++ {
		for addr(i) == "" {
			if time.Now().After(deadline) {
				t.Fatalf("node %d metrics endpoint never came up", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
		targets[i] = telemetry.Target{Node: i, Addr: addr(i)}
	}
	return targets
}

// TestLiveClusterCrossNodeJoin is the fleet-telemetry acceptance test: a
// 5-node UDP cluster on loopback, scraped over HTTP, must yield cross-node
// joined estimate→reply spans (≥95% of completed exchanges find their
// responder half) with zero causal-order violations, no asymmetry warnings
// and no stale epochs — an honest run reads clean end to end.
func TestLiveClusterCrossNodeJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	cl, err := livenet.NewCluster(livenet.ClusterConfig{
		N:          5,
		F:          1,
		SyncInt:    50 * time.Millisecond,
		MaxWait:    25 * time.Millisecond,
		WayOff:     time.Second,
		Key:        []byte("telemetry-live-test"),
		Offsets:    []time.Duration{2 * time.Millisecond, -1 * time.Millisecond, 500 * time.Microsecond, -2 * time.Millisecond, 0},
		Metrics:    true,
		SpanBuffer: 8192,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.Start()
	defer cl.Stop()

	if err := cl.WaitConverged(10*time.Millisecond, 3, 30*time.Second); err != nil {
		t.Fatalf("cluster did not converge: %v", err)
	}
	targets := waitMetricsUp(t, 5, cl.MetricsAddr)
	sc := &telemetry.Scraper{Targets: targets}

	// Two rounds a sync interval apart: the second snapshot sees the
	// responder halves of any exchange that completed mid-first-scrape
	// (rings retain history, so only still-in-flight exchanges can dangle).
	ctx := context.Background()
	sc.Scrape(ctx)
	time.Sleep(100 * time.Millisecond)
	snap := sc.Scrape(ctx)
	for _, n := range snap.Nodes {
		if n.Err != nil {
			t.Fatalf("node %d scrape failed: %v", n.Target.Node, n.Err)
		}
	}

	al := telemetry.Align(snap, telemetry.AlignConfig{})
	if al.Completed < 20 {
		t.Fatalf("only %d completed exchanges captured; cluster too quiet for a meaningful join rate", al.Completed)
	}
	if rate := al.JoinRate(); rate < 0.95 {
		t.Errorf("cross-node span join rate = %.3f (%d/%d), want >= 0.95", rate, len(al.Pairs), al.Completed)
	}
	if al.Violations != 0 {
		for _, p := range al.Pairs {
			if p.Violated {
				t.Logf("violated pair: %+v", p)
			}
		}
		t.Errorf("causal-order violations = %d, want 0 on an honest run", al.Violations)
	}
	if len(al.Links) != 0 {
		t.Errorf("asymmetry warnings on symmetric loopback: %+v", al.Links)
	}
	if len(al.Stale) != 0 {
		t.Errorf("stale nodes in a live fleet: %+v", al.Stale)
	}

	// The merged counters must cover the whole fleet: five nodes past three
	// sync executions each.
	if got := snap.Merged().Value("clocksync_sync_rounds_total"); got < 15 {
		t.Errorf("merged sync rounds = %v, want >= 15", got)
	}
}

// oneWayDelay injects 100ms of extra one-way latency on the directed link
// 0→1 and ~0.5ms everywhere else — the classic asymmetric-path fault that
// symmetric-delay estimation cannot see from RTTs alone.
type oneWayDelay struct{}

func (oneWayDelay) Sample(from, to int, rng *rand.Rand) simtime.Duration {
	if from == 0 && to == 1 {
		return 0.100
	}
	return 0.0005
}
func (oneWayDelay) Bound() simtime.Duration { return 0.100 }

// TestAsymmetricDelayFlagsLinks pins the aligner's detection claim on a live
// in-memory cluster: under an injected one-way delay the honest protocol
// absorbs the skew into its uncertainty (zero causal violations), but the
// cross-node midpoint residuals expose it as link-asymmetry warnings. The
// equilibrium the convergence function settles into spreads the disagreement
// across the whole fleet (the delayed link shifts node 1's clock by ~D/3),
// so the test asserts detection — warnings fire — not localization.
func TestAsymmetricDelayFlagsLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	const n = 3
	mn := livenet.NewMemNetwork(livenet.MemNetworkConfig{Seed: 42, Delay: oneWayDelay{}})
	nodes := make([]*livenet.Node, n)
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = livenet.MemAddr(j)
			}
		}
		node, err := livenet.New(livenet.Config{
			ID:        i,
			F:         0,
			Peers:     peers,
			SyncInt:   350 * time.Millisecond,
			MaxWait:   150 * time.Millisecond,
			WayOff:    time.Second,
			Transport: mn.Transport(i),
			Ops:       livenet.OpsConfig{MetricsAddr: "127.0.0.1:0", SpanBuffer: 4096},
		})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		nodes[i] = node
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, node := range nodes {
		go node.Run(ctx)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		ready := true
		for _, node := range nodes {
			if node.Syncs() < 8 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never reached 8 sync rounds: %d/%d/%d",
				nodes[0].Syncs(), nodes[1].Syncs(), nodes[2].Syncs())
		}
		time.Sleep(50 * time.Millisecond)
	}

	targets := waitMetricsUp(t, n, func(i int) string { return nodes[i].MetricsAddr() })
	snap := (&telemetry.Scraper{Targets: targets}).Scrape(ctx)
	for _, ns := range snap.Nodes {
		if ns.Err != nil {
			t.Fatalf("node %d scrape failed: %v", ns.Target.Node, ns.Err)
		}
	}

	al := telemetry.Align(snap, telemetry.AlignConfig{})
	if al.Completed == 0 || len(al.Pairs) == 0 {
		t.Fatalf("no joined pairs (completed=%d); nothing to analyze", al.Completed)
	}
	// Honest accounting first: the protocol widened its uncertainty to cover
	// the delay it could not decompose, so nothing violates causal order.
	if al.Violations != 0 {
		t.Errorf("causal violations = %d, want 0 (honest nodes absorb the delay)", al.Violations)
	}
	// Detection: ~±D/6 ≈ 16ms mean residuals dwarf the 5ms threshold.
	if len(al.Links) == 0 {
		t.Fatalf("no asymmetry warnings under a 100ms one-way delay; pairs=%d", len(al.Pairs))
	}
	for _, w := range al.Links {
		t.Logf("flagged: %s", w.String())
	}
}

// TestLiveExportFeedsTracestat closes the loop from a live scrape to the
// offline tooling: the JSONL export of a live snapshot must re-read as
// trace events with fleet-unique requester span ids.
func TestLiveExportFeedsTracestat(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	cl, err := livenet.NewCluster(livenet.ClusterConfig{
		N:          3,
		F:          0,
		SyncInt:    50 * time.Millisecond,
		MaxWait:    25 * time.Millisecond,
		WayOff:     time.Second,
		Metrics:    true,
		SpanBuffer: 4096,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.Start()
	defer cl.Stop()
	if err := cl.WaitConverged(10*time.Millisecond, 2, 30*time.Second); err != nil {
		t.Fatalf("cluster did not converge: %v", err)
	}
	targets := waitMetricsUp(t, 3, cl.MetricsAddr)
	snap := (&telemetry.Scraper{Targets: targets}).Scrape(context.Background())

	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, snap); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("re-reading live export: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("live export is empty")
	}
	// Requester-side spans must be fleet-unique after namespacing; reply
	// spans deliberately share their requester's id.
	seen := make(map[uint64]bool)
	for _, e := range events {
		if e.Name == "reply" || e.Name == "serve" || e.Span == 0 {
			continue
		}
		if seen[e.Span] {
			t.Fatalf("duplicate exported span id %d (%s on node %d)", e.Span, e.Name, e.Node)
		}
		seen[e.Span] = true
	}
}
