package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"clocksync/internal/trace"
)

// spanNamespace returns the node whose span-id counter issued the id this
// span carries. Requester-side spans (round, estimate, query, ...) carry
// their own node's ids; reply/serve spans carry the *requester's* propagated
// id, so they belong to the origin's namespace.
func spanNamespace(e trace.Event) int {
	switch e.Name {
	case "reply", "serve":
		return int(e.Field("origin"))
	default:
		return e.Node
	}
}

// remapSpanID lifts a per-node span id into a fleet-unique one. Live nodes
// are separate processes whose span counters all start at 1, so a merged
// stream has colliding ids across nodes; conformance joins estimate spans to
// round spans by raw id, and a collision would stitch one node's estimates
// onto another's round. Shifting each namespace keeps ids unique
// fleet-wide while preserving every same-namespace relation — parent links
// and the cross-node reply/serve join alike.
func remapSpanID(ns int, id uint64) uint64 {
	if id == 0 {
		return 0
	}
	return uint64(ns+1)<<40 | id
}

// WriteJSONL renders the snapshot's merged span state as JSON lines in the
// trace.Event encoding — the stream cmd/tracestat consumes (including
// -conform, which replays the per-node round/estimate spans through the
// abstract spec and counts the telemetry spans). Spans are deduplicated
// (shared-observer deployments surface each span in every ring) and their
// ids namespaced per issuing node.
func WriteJSONL(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	type spanKey struct {
		node int
		name string
		id   uint64
		at   float64
	}
	seen := make(map[spanKey]bool)
	for _, n := range snap.Ok() {
		for _, e := range n.Spans {
			if e.Kind != trace.KindSpan {
				continue
			}
			sk := spanKey{node: e.Node, name: e.Name, id: e.Span, at: e.At}
			if seen[sk] {
				continue
			}
			seen[sk] = true
			ns := spanNamespace(e)
			e.Span = remapSpanID(ns, e.Span)
			e.Parent = remapSpanID(ns, e.Parent)
			if err := enc.Encode(e); err != nil {
				return fmt.Errorf("telemetry: encoding span export: %w", err)
			}
		}
	}
	return bw.Flush()
}
