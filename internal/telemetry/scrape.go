package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"clocksync/internal/livenet"
	"clocksync/internal/trace"
)

// Scraper polls a fleet of nodes' ops endpoints. Zero value plus Targets is
// ready to use; all fields are read-only after first use.
type Scraper struct {
	Targets []Target
	// Client is the HTTP client for all fetches (default: 2s-timeout client;
	// a stuck node must not stall the round past its interval).
	Client *http.Client
	// MaxBody caps each response body read (default 16 MiB) so one confused
	// endpoint cannot balloon the scraper.
	MaxBody int64
}

const (
	defaultScrapeTimeout = 2 * time.Second
	defaultMaxBody       = 16 << 20
)

func (s *Scraper) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: defaultScrapeTimeout}
}

func (s *Scraper) maxBody() int64 {
	if s.MaxBody > 0 {
		return s.MaxBody
	}
	return defaultMaxBody
}

// Scrape performs one concurrent round over all targets. It never fails as a
// whole: a node that is down, times out, or serves garbage gets its Err set
// and the rest of the fleet is unaffected.
func (s *Scraper) Scrape(ctx context.Context) *Snapshot {
	snap := &Snapshot{At: time.Now(), Nodes: make([]NodeScrape, len(s.Targets))}
	var wg sync.WaitGroup
	for i, t := range s.Targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			snap.Nodes[i] = s.scrapeOne(ctx, t)
		}(i, t)
	}
	wg.Wait()
	return snap
}

// scrapeOne gathers one node's three surfaces. The first failing fetch
// aborts the node's round: a half-scraped node (metrics but no statusz)
// cannot be aligned, so partial data is treated as no data.
func (s *Scraper) scrapeOne(ctx context.Context, t Target) NodeScrape {
	ns := NodeScrape{Target: t}
	fail := func(err error) NodeScrape {
		ns.Err = err
		ns.Metrics, ns.Status, ns.Spans = nil, nil, nil
		ns.At = time.Now()
		return ns
	}

	body, err := s.fetch(ctx, t, "/metrics")
	if err != nil {
		return fail(err)
	}
	if ns.Metrics, err = ParseProm(body); err != nil {
		return fail(err)
	}

	body, err = s.fetch(ctx, t, "/statusz")
	if err != nil {
		return fail(err)
	}
	var st livenet.Statusz
	if err := json.Unmarshal(body, &st); err != nil {
		return fail(fmt.Errorf("telemetry: node %d /statusz: %w", t.Node, err))
	}
	if st.ID != t.Node {
		return fail(fmt.Errorf("telemetry: target %s claims node id %d, configured as %d", t.Addr, st.ID, t.Node))
	}
	ns.Status = &st

	body, err = s.fetch(ctx, t, "/spanz")
	if err != nil {
		return fail(err)
	}
	if ns.Spans, err = trace.ReadJSON(body); err != nil {
		return fail(fmt.Errorf("telemetry: node %d /spanz: %w", t.Node, err))
	}

	ns.At = time.Now()
	return ns
}

func (s *Scraper) fetch(ctx context.Context, t Target, path string) ([]byte, error) {
	url := "http://" + t.Addr + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("telemetry: node %d: %w", t.Node, err)
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("telemetry: node %d %s: %w", t.Node, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: node %d %s: HTTP %d", t.Node, path, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.maxBody()))
	if err != nil {
		return nil, fmt.Errorf("telemetry: node %d %s: reading body: %w", t.Node, path, err)
	}
	return body, nil
}
