package livenet

import (
	"testing"
	"time"
)

// The retry schedule is a pure function of (config, budget, random draws):
// these tests pin its timing policy exactly, with deterministic draws
// standing in for the jitter source — the fake-clock equivalent for a
// policy that never reads a clock at all.

// mid returns 0.5 forever: with jitter j the multiplier (1 + j·(2u−1))
// becomes exactly 1, so delays are the pure exponential sequence.
func mid() float64 { return 0.5 }

func TestRetryScheduleExponentialGrowth(t *testing.T) {
	cfg := RetryConfig{Attempts: 5, Initial: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.1}
	got := retrySchedule(cfg, time.Second, mid)
	// Delays 10, 20, 40, 80ms → cumulative offsets 10, 30, 70, 150ms.
	want := []time.Duration{
		10 * time.Millisecond, 30 * time.Millisecond, 70 * time.Millisecond, 150 * time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offset %d = %v, want %v (full schedule %v)", i, got[i], want[i], got)
		}
	}
}

func TestRetryScheduleDefaults(t *testing.T) {
	// Zero config → 3 attempts, Initial = budget/8, ×2: two retries at
	// budget/8 and 3·budget/8.
	budget := 800 * time.Millisecond
	got := retrySchedule(RetryConfig{}, budget, mid)
	want := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("default schedule %v, want %v", got, want)
	}
}

func TestRetryScheduleSingleAttemptDisablesRetries(t *testing.T) {
	if got := retrySchedule(RetryConfig{Attempts: 1}, time.Second, mid); len(got) != 0 {
		t.Fatalf("Attempts=1 produced retries: %v", got)
	}
}

func TestRetryScheduleJitterBounds(t *testing.T) {
	cfg := RetryConfig{Attempts: 2, Initial: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
	lo := retrySchedule(cfg, time.Second, func() float64 { return 0 })        // u=0 → factor 1−j
	hi := retrySchedule(cfg, time.Second, func() float64 { return 0.999999 }) // u→1 → factor →1+j
	if len(lo) != 1 || len(hi) != 1 {
		t.Fatalf("schedules %v / %v, want one retry each", lo, hi)
	}
	if want := 80 * time.Millisecond; lo[0] != want {
		t.Errorf("minimum jitter offset %v, want %v (100ms × 0.8)", lo[0], want)
	}
	// The upper edge is open (u < 1): the offset must stay strictly below
	// 100ms × 1.2 and at least at the undithered value.
	if hi[0] < 100*time.Millisecond || hi[0] >= 120*time.Millisecond {
		t.Errorf("maximum jitter offset %v, want in [100ms, 120ms)", hi[0])
	}
}

// TestRetryScheduleJitterDithers: distinct draws move the offsets — the
// jitter is real, not a fixed scale factor.
func TestRetryScheduleJitterDithers(t *testing.T) {
	cfg := RetryConfig{Attempts: 3, Initial: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.3}
	seq := []float64{0.1, 0.9}
	i := 0
	drawn := retrySchedule(cfg, time.Second, func() float64 { v := seq[i%len(seq)]; i++; return v })
	flat := retrySchedule(cfg, time.Second, mid)
	if len(drawn) != 2 || len(flat) != 2 {
		t.Fatalf("schedules %v / %v", drawn, flat)
	}
	if drawn[0] == flat[0] && drawn[1] == flat[1] {
		t.Fatalf("jittered schedule %v identical to undithered %v", drawn, flat)
	}
}

func TestRetryScheduleStaysInsideBudget(t *testing.T) {
	// Every offset must land strictly inside the budget no matter how many
	// attempts are configured: a retransmission at or past MaxWait could
	// never be answered within the round.
	cfg := RetryConfig{Attempts: 50, Initial: 30 * time.Millisecond, Multiplier: 2, Jitter: 0.1}
	budget := 200 * time.Millisecond
	sched := retrySchedule(cfg, budget, func() float64 { return 0.999 }) // worst-case jitter
	if len(sched) == 0 {
		t.Fatal("no retries scheduled at all")
	}
	prev := time.Duration(-1)
	for _, at := range sched {
		if at >= budget {
			t.Fatalf("offset %v at or past the %v budget (schedule %v)", at, budget, sched)
		}
		if at <= prev {
			t.Fatalf("schedule not strictly increasing: %v", sched)
		}
		prev = at
	}
}

// TestRetryScheduleTruncatesNotSkips: once the budget is hit the schedule
// ends — it must not skip ahead to a later, even larger delay.
func TestRetryScheduleTruncatesNotSkips(t *testing.T) {
	cfg := RetryConfig{Attempts: 10, Initial: 60 * time.Millisecond, Multiplier: 3, Jitter: 0}
	// Cumulative: 60, 240, 780… against a 300ms budget → only 60, 240.
	got := retrySchedule(cfg, 300*time.Millisecond, mid)
	want := []time.Duration{60 * time.Millisecond, 240 * time.Millisecond}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("schedule %v, want %v", got, want)
	}
}
