package livenet

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"
)

// liarResponder is a raw UDP endpoint that speaks the wire protocol but
// reports wildly wrong clocks — a live Byzantine peer.
type liarResponder struct {
	conn *net.UDPConn
	key  []byte
	skew time.Duration
}

func startLiar(t *testing.T, key []byte, skew time.Duration) *liarResponder {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	l := &liarResponder{conn: conn, key: key, skew: skew}
	go l.serve()
	t.Cleanup(func() { conn.Close() })
	return l
}

func (l *liarResponder) serve() {
	buf := make([]byte, 2048)
	for {
		nr, raddr, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		var msg wireMsg
		if json.Unmarshal(buf[:nr], &msg) != nil || msg.Type != "q" {
			continue
		}
		resp := wireMsg{
			V:     wireVersion,
			Type:  "r",
			From:  msg.From, // deliberately confusing, but nonce routing decides
			Nonce: msg.Nonce,
			Clock: time.Now().Add(l.skew).UnixNano(),
		}
		resp.From = 3 // its own claimed id
		if len(l.key) > 0 {
			resp.MAC = resp.mac(l.key)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			continue
		}
		l.conn.WriteToUDP(data, raddr)
	}
}

func TestLiveClusterToleratesByzantinePeer(t *testing.T) {
	// Three honest nodes plus one raw liar claiming to be hours away. With
	// n=4, f=1, the (f+1)-trimming discards the lie and the honest trio
	// converges tightly.
	key := []byte("byz-test-key")
	liar := startLiar(t, key, 3*time.Hour)

	offsets := []time.Duration{-60 * time.Millisecond, 0, 80 * time.Millisecond}
	nodes := make([]*Node, 3)
	for i := range nodes {
		node, err := New(Config{
			ID:        i,
			F:         1,
			Listen:    "127.0.0.1:0",
			SyncInt:   200 * time.Millisecond,
			MaxWait:   100 * time.Millisecond,
			WayOff:    2 * time.Second,
			Key:       key,
			SimOffset: offsets[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i, node := range nodes {
		peers := map[int]string{3: liar.conn.LocalAddr().String()}
		for j, other := range nodes {
			if j != i {
				peers[j] = other.Addr()
			}
		}
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	for _, node := range nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			node.Run(ctx)
		}()
	}

	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("honest trio did not converge against the liar: %v %v %v",
				nodes[0].Offset(), nodes[1].Offset(), nodes[2].Offset())
		case <-time.After(100 * time.Millisecond):
		}
		if nodes[0].Syncs() < 4 {
			continue
		}
		if spreadOf(nodes) < 20*time.Millisecond {
			// The liar must not have dragged the trio toward +3h either.
			for i, n := range nodes {
				if n.Offset() > time.Second {
					t.Fatalf("node %d dragged to %v by the liar", i, n.Offset())
				}
			}
			return
		}
	}
}

func TestStatusSnapshot(t *testing.T) {
	nodes, _ := startCluster(t, 4, 1, []time.Duration{0, 10 * time.Millisecond, 0, 0}, []byte("k"))
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no syncs completed")
		case <-time.After(100 * time.Millisecond):
		}
		if nodes[0].Syncs() >= 2 {
			break
		}
	}
	st := nodes[0].Status()
	if st.ID != 0 || st.Syncs < 2 {
		t.Fatalf("status header: %+v", st)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers: %+v", st.Peers)
	}
	sawReply := false
	for _, p := range st.Peers {
		if p.Replies > 0 {
			sawReply = true
			if time.Since(p.LastSeen) > 5*time.Second {
				t.Fatalf("stale LastSeen: %+v", p)
			}
		}
	}
	if !sawReply {
		t.Fatalf("no peer replies recorded: %+v", st.Peers)
	}
}
