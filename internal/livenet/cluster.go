package livenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"clocksync/internal/obs"
)

// Cluster runs n live nodes in one process on loopback sockets — the
// fastest way to stand up a real (non-simulated) Sync deployment for tests,
// demos and local experiments.
type Cluster struct {
	nodes  []*Node
	cancel context.CancelFunc
	wg     sync.WaitGroup
	runErr []error
}

// ClusterConfig parameterizes an in-process cluster. Per-node simulated
// clock errors come from Offsets/DriftPPM (missing entries default to zero).
type ClusterConfig struct {
	N        int
	F        int
	SyncInt  time.Duration
	MaxWait  time.Duration
	WayOff   time.Duration
	Key      []byte
	Offsets  []time.Duration
	DriftPPM []float64
	Logf     func(format string, args ...any)

	// Metrics, when true, serves each node's observability endpoint
	// (/metrics, /status, /debug/pprof) on a loopback port of its own from
	// Start until Stop; read the bound addresses with Cluster.MetricsAddr.
	Metrics bool
	// Serve, when true, gives each node a dedicated UDP time-serving
	// endpoint on a loopback port of its own; read the bound addresses
	// with Cluster.ServeAddr.
	Serve bool
	// Observer receives the structured event stream of every node.
	Observer *obs.Observer
	// SpanBuffer, when positive, gives every node a span ring of that
	// capacity served on its GET /spanz endpoint, enabling cross-node trace
	// propagation. When Observer is nil each node gets a private observer, so
	// per-node span-id counters stay independent and /spanz carries only that
	// node's spans — the shape the telemetry scraper expects.
	SpanBuffer int
}

// NewCluster opens sockets for all nodes and wires their peer tables. Call
// Start to begin synchronizing and Stop to shut down.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("livenet: cluster needs at least one node")
	}
	c := &Cluster{runErr: make([]error, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		var off time.Duration
		if i < len(cfg.Offsets) {
			off = cfg.Offsets[i]
		}
		var drift float64
		if i < len(cfg.DriftPPM) {
			drift = cfg.DriftPPM[i]
		}
		ops := OpsConfig{Logf: cfg.Logf, Observer: cfg.Observer, SpanBuffer: cfg.SpanBuffer}
		if cfg.Metrics {
			ops.MetricsAddr = "127.0.0.1:0"
		}
		var serve ServeConfig
		if cfg.Serve {
			serve.Addr = "127.0.0.1:0"
		}
		node, err := New(Config{
			ID:          i,
			F:           cfg.F,
			Listen:      "127.0.0.1:0",
			SyncInt:     cfg.SyncInt,
			MaxWait:     cfg.MaxWait,
			WayOff:      cfg.WayOff,
			Key:         cfg.Key,
			SimOffset:   off,
			SimDriftPPM: drift,
			Ops:         ops,
			Serve:       serve,
		})
		if err != nil {
			c.closeAll()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	for i, node := range c.nodes {
		peers := make(map[int]string, cfg.N-1)
		for j, other := range c.nodes {
			if j != i {
				peers[j] = other.Addr()
			}
		}
		if err := node.SetPeers(peers); err != nil {
			c.closeAll()
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) closeAll() {
	for _, node := range c.nodes {
		if node != nil {
			node.closeTransports()
		}
	}
}

// Start launches every node's Run loop.
func (c *Cluster) Start() {
	if c.cancel != nil {
		panic("livenet: cluster started twice")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for i, node := range c.nodes {
		i, node := i, node
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := node.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				c.runErr[i] = err
			}
		}()
	}
}

// Stop shuts the cluster down and returns the first node error, if any.
func (c *Cluster) Stop() error {
	if c.cancel != nil {
		c.cancel()
		c.wg.Wait()
		c.cancel = nil
	}
	for _, err := range c.runErr {
		if err != nil {
			return err
		}
	}
	return nil
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// MetricsAddr returns the bound observability address of the i-th node (""
// until Start when ClusterConfig.Metrics is set, or always when it is not).
func (c *Cluster) MetricsAddr(i int) string { return c.nodes[i].MetricsAddr() }

// ServeAddr returns the bound time-serving address of the i-th node ("" when
// ClusterConfig.Serve is not set).
func (c *Cluster) ServeAddr(i int) string { return c.nodes[i].ServeAddr() }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Spread returns the current max−min offset across the cluster.
func (c *Cluster) Spread() time.Duration {
	min, max := c.nodes[0].Offset(), c.nodes[0].Offset()
	for _, n := range c.nodes[1:] {
		o := n.Offset()
		if o < min {
			min = o
		}
		if o > max {
			max = o
		}
	}
	return max - min
}

// WaitConverged waits until the cluster's spread is below tol with every
// node having completed minSyncs executions, or the timeout elapses. The
// wait is timer-driven — a deadline timer plus a coarse polling ticker — so
// a slow startup parks the goroutine instead of spinning on the clock.
func (c *Cluster) WaitConverged(tol time.Duration, minSyncs int, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		ready := true
		for _, n := range c.nodes {
			if n.Syncs() < minSyncs {
				ready = false
				break
			}
		}
		if ready && c.Spread() < tol {
			return nil
		}
		select {
		case <-deadline.C:
			return fmt.Errorf("livenet: not converged within %v (spread %v)", timeout, c.Spread())
		case <-tick.C:
		}
	}
}
