package livenet

import (
	"testing"
	"time"
)

// readNode builds an unstarted node: the snapshot read path works from New,
// before Run, which is what these tests exercise.
func readNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	if cfg.SyncInt == 0 {
		cfg.SyncInt = time.Second
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 100 * time.Millisecond
	}
	if cfg.WayOff == 0 {
		cfg.WayOff = 5 * time.Second
	}
	if cfg.Transport == nil && cfg.Listen == "" {
		cfg.Transport = NewMemNetwork(MemNetworkConfig{}).Transport(cfg.ID)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { n.closeTransports() })
	return n
}

// TestReadMatchesClock pins Read against the protocol's exact clock: the
// snapshot interpolation must agree with clockNow within scheduling noise,
// including under simulated offset and drift.
func TestReadMatchesClock(t *testing.T) {
	n := readNode(t, Config{SimOffset: 250 * time.Millisecond, SimDriftPPM: 500})
	for i := 0; i < 5; i++ {
		r := n.Read()
		gap := r.Time.Sub(n.clockNow())
		if gap < 0 {
			gap = -gap
		}
		// 500 ppm of drift accrues 0.5 µs/ms; the two readings are nanoseconds
		// apart, so 1 ms of tolerance is three orders of magnitude of slack.
		if gap > time.Millisecond {
			t.Fatalf("Read().Time diverges from clockNow() by %v", gap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadEpochZeroPrior pins the pre-sync contract: epoch 0 and an
// uncertainty no tighter than WayOff — the node cannot vouch for more than
// "my clock would not be rejected as way off".
func TestReadEpochZeroPrior(t *testing.T) {
	wayOff := 3 * time.Second
	n := readNode(t, Config{WayOff: wayOff})
	r := n.Read()
	if r.Epoch != 0 {
		t.Fatalf("epoch before any round = %d, want 0", r.Epoch)
	}
	if r.Uncertainty < wayOff {
		t.Fatalf("pre-sync uncertainty %v tighter than WayOff %v", r.Uncertainty, wayOff)
	}
}

// TestReadUncertaintyGrows pins the drift-growth contract: uncertainty must
// be monotonically non-decreasing between snapshot publications.
func TestReadUncertaintyGrows(t *testing.T) {
	n := readNode(t, Config{})
	first := n.Read().Uncertainty
	time.Sleep(10 * time.Millisecond)
	if second := n.Read().Uncertainty; second < first {
		t.Fatalf("uncertainty shrank between reads with no new round: %v -> %v", first, second)
	}
}

// TestInjectOffsetWidensUncertainty pins the honesty of the chaos hook: a
// state-loss injection must widen the reported uncertainty by at least the
// injected magnitude, and shift the reading by it.
func TestInjectOffsetWidensUncertainty(t *testing.T) {
	n := readNode(t, Config{})
	before := n.Read()
	const inject = 500 * time.Millisecond
	n.InjectOffset(inject)
	after := n.Read()
	if widened := after.Uncertainty - before.Uncertainty; widened < inject {
		t.Fatalf("uncertainty widened by %v after injecting %v", widened, inject)
	}
	if shift := after.Time.Sub(before.Time); shift < inject/2 {
		t.Fatalf("reading shifted by only %v after injecting %v", shift, inject)
	}
}

// TestReadAllocFree enforces the serve path's core budget: Read is
// allocation-free, whatever the snapshot state.
func TestReadAllocFree(t *testing.T) {
	n := readNode(t, Config{SimOffset: time.Millisecond, SimDriftPPM: 100})
	var sink Reading
	if allocs := testing.AllocsPerRun(1000, func() { sink = n.Read() }); allocs != 0 {
		t.Fatalf("Read allocates %v times per call, budget is 0", allocs)
	}
	_ = sink
}

// TestDeprecatedNowAgreesWithRead keeps the deprecated wrapper honest while
// it lives: Now must be Read().Time's instant.
func TestDeprecatedNowAgreesWithRead(t *testing.T) {
	n := readNode(t, Config{SimOffset: 42 * time.Millisecond})
	gap := n.Now().Sub(n.Read().Time)
	if gap < 0 {
		gap = -gap
	}
	if gap > time.Millisecond {
		t.Fatalf("Now and Read disagree by %v", gap)
	}
}
