package livenet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

// startCluster launches n live nodes on loopback with OS-assigned ports.
func startCluster(t *testing.T, n, f int, offsets []time.Duration, key []byte) ([]*Node, context.CancelFunc) {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		var off time.Duration
		if i < len(offsets) {
			off = offsets[i]
		}
		node, err := New(Config{
			ID:        i,
			F:         f,
			Listen:    "127.0.0.1:0",
			SyncInt:   200 * time.Millisecond,
			MaxWait:   100 * time.Millisecond,
			WayOff:    500 * time.Millisecond,
			Key:       key,
			SimOffset: off,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i, node := range nodes {
		peers := make(map[int]string)
		for j, other := range nodes {
			if j != i {
				peers[j] = other.Addr()
			}
		}
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, node := range nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("node run: %v", err)
			}
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
	return nodes, cancel
}

func spreadOf(nodes []*Node) time.Duration {
	min, max := nodes[0].Offset(), nodes[0].Offset()
	for _, n := range nodes[1:] {
		o := n.Offset()
		if o < min {
			min = o
		}
		if o > max {
			max = o
		}
	}
	return max - min
}

func TestLiveClusterConverges(t *testing.T) {
	offsets := []time.Duration{
		-80 * time.Millisecond, 40 * time.Millisecond, 0, 90 * time.Millisecond,
	}
	nodes, _ := startCluster(t, 4, 1, offsets, []byte("test-key"))

	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("cluster did not converge: spread=%v", spreadOf(nodes))
		case <-time.After(100 * time.Millisecond):
		}
		allSynced := true
		for _, n := range nodes {
			if n.Syncs() < 3 {
				allSynced = false
			}
		}
		if allSynced && spreadOf(nodes) < 20*time.Millisecond {
			return // converged
		}
	}
}

func TestLiveClusterRejectsUnauthenticated(t *testing.T) {
	// Two clusters sharing ports but different keys: node with the wrong key
	// must be ignored. Simplest check: a 4-node cluster where one node has a
	// different key — its answers are dropped by the other three, so they
	// converge among themselves while it cannot pull them anywhere.
	nodes := make([]*Node, 4)
	for i := range nodes {
		key := []byte("right-key")
		if i == 3 {
			key = []byte("wrong-key")
		}
		node, err := New(Config{
			ID:        i,
			F:         1,
			Listen:    "127.0.0.1:0",
			SyncInt:   200 * time.Millisecond,
			MaxWait:   100 * time.Millisecond,
			WayOff:    500 * time.Millisecond,
			Key:       key,
			SimOffset: time.Duration(i) * 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i, node := range nodes {
		peers := make(map[int]string)
		for j, other := range nodes {
			if j != i {
				peers[j] = other.Addr()
			}
		}
		if err := node.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	for _, node := range nodes {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			node.Run(ctx)
		}()
	}

	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("good trio did not converge: %v %v %v",
				nodes[0].Offset(), nodes[1].Offset(), nodes[2].Offset())
		case <-time.After(100 * time.Millisecond):
		}
		good := nodes[:3]
		if spreadOf(good) < 20*time.Millisecond && nodes[0].Syncs() >= 3 {
			return
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Listen: "127.0.0.1:0"}, // zero intervals
		{Listen: "127.0.0.1:0", SyncInt: time.Second, MaxWait: time.Second, WayOff: 1},    // SyncInt < 2·MaxWait
		{Listen: "127.0.0.1:0", SyncInt: time.Second, MaxWait: 100e6, WayOff: 1e9, F: -1}, // negative f
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(Config{Listen: "not-an-address:::", SyncInt: time.Second,
		MaxWait: 100 * time.Millisecond, WayOff: time.Second}); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestRunRequiresQuorumOfPeers(t *testing.T) {
	node, err := New(Config{
		ID: 0, F: 1, Listen: "127.0.0.1:0",
		SyncInt: time.Second, MaxWait: 100 * time.Millisecond, WayOff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := node.Run(ctx); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run without peers must fail fast, got %v", err)
	}
	if err := node.SetPeers(map[int]string{1: "127.0.0.1:1", 2: "127.0.0.1:2"}); err == nil {
		t.Fatal("SetPeers below 3f+1 accepted")
	}
}

func TestServeStatusEndpoint(t *testing.T) {
	nodes, cancel := startCluster(t, 4, 1, []time.Duration{5 * time.Millisecond}, []byte("k"))
	defer cancel()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	addr, err := nodes[0].ServeStatus(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for nodes[0].Syncs() < 2 {
		select {
		case <-deadline:
			t.Fatal("no syncs")
		case <-time.After(50 * time.Millisecond):
		}
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status code %d", resp.StatusCode)
	}
	var decoded struct {
		ID    int `json:"id"`
		Syncs int `json:"syncs"`
		Peers []struct {
			ID      int `json:"id"`
			Replies int `json:"replies"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != 0 || decoded.Syncs < 2 || len(decoded.Peers) != 3 {
		t.Fatalf("status payload: %+v", decoded)
	}
}

func TestSimulatedDrift(t *testing.T) {
	node, err := New(Config{
		ID: 0, F: 0, Listen: "127.0.0.1:0",
		SyncInt: time.Second, MaxWait: 100 * time.Millisecond, WayOff: time.Second,
		SimOffset: 50 * time.Millisecond, SimDriftPPM: 1e6, // 1 s/s drift for test speed
	})
	if err != nil {
		t.Fatal(err)
	}
	o1 := node.Offset()
	time.Sleep(50 * time.Millisecond)
	o2 := node.Offset()
	grown := o2 - o1
	if grown < 20*time.Millisecond {
		t.Fatalf("drift not applied: grew %v in 50ms at 1e6 ppm", grown)
	}
	if o1 < 45*time.Millisecond {
		t.Fatalf("offset not applied: %v", o1)
	}
}
