package livenet

import (
	"sync/atomic"
	"time"
)

// The serving read path. Each Sync round publishes one immutable snapshot of
// the node's clock discipline — offset, rate, epoch and an uncertainty
// envelope — behind an atomic pointer. Node.Read interpolates from the
// snapshot without taking a lock or allocating, so millions of concurrent
// readers (in-process callers and the UDP serve loop alike) never contend
// with the protocol, and every reading carries the δ-derived error bound the
// resilience-bound analyses say a client is owed instead of a bare
// timestamp.

// Reading is one observation of the node's synchronized clock: the
// best-estimate time, a containment half-width, and the sync epoch it was
// derived from.
//
// The contract is interval-valued time: the true cluster time lies within
// [Time−Uncertainty, Time+Uncertainty] as long as the node's Theorem 5
// envelope holds. Uncertainty grows between Sync rounds at the hardware
// drift bound and snaps back down when a round commits a fresh snapshot.
type Reading struct {
	// Time is the best-estimate synchronized time.
	Time time.Time
	// Uncertainty is the half-width of the containment interval.
	Uncertainty time.Duration
	// Epoch counts the Sync rounds committed when the underlying snapshot
	// was published; 0 means the node has not completed a round yet (the
	// reading then reflects only the node's own clock, with a WayOff-wide
	// uncertainty).
	Epoch uint64
}

// TimeSource is anything that can produce a Reading: a local Node (wait-free
// snapshot interpolation) or a Client (interpolation from its last server
// query). Code serving time to users should depend on this interface, not on
// a concrete node.
type TimeSource interface {
	Read() Reading
}

// readSnap is one immutable published clock snapshot. All fields are fixed
// at publication; Read interpolates forward from Base using Rate and grows
// the uncertainty at GrowPPM.
type readSnap struct {
	base    time.Time     // host instant of publication
	offset  time.Duration // logical − host clock at base
	ratePPM float64       // logical clock rate error vs host, in ppm
	unc     time.Duration // uncertainty half-width at base
	growPPM float64       // uncertainty growth per host second, in ppm
	epoch   uint64        // sync rounds committed at publication
}

// hostDriftPPM is the assumed drift bound of the host hardware clock (the
// paper's ρ ≈ 1e-4 = 100 ppm), used to grow a snapshot's uncertainty between
// rounds. Simulated drift (SimDriftPPM) is added on top, since it is real
// error from the cluster's point of view.
const hostDriftPPM = 100

// minUncertainty floors every published uncertainty: clock-read granularity,
// scheduling jitter between stamping and sending, and the float rounding of
// the estimate arithmetic are never zero.
const minUncertainty = 10 * time.Microsecond

// at interpolates the snapshot to the host instant now.
func (s *readSnap) at(now time.Time) Reading {
	el := float64(now.Sub(s.base))
	return Reading{
		Time:        now.Add(s.offset + time.Duration(el*s.ratePPM*1e-6)),
		Uncertainty: s.unc + time.Duration(el*s.growPPM*1e-6),
		Epoch:       s.epoch,
	}
}

// Read returns the node's disciplined clock as an interval-valued Reading.
// It is wait-free and allocation-free: one atomic pointer load plus
// interpolation arithmetic, safe to call from any goroutine at any rate.
func (n *Node) Read() Reading {
	return n.snap.Load().at(time.Now())
}

// publishReading derives a fresh snapshot from the node's current discipline
// state and publishes it for readers. unc is the uncertainty half-width at
// publication (floored at minUncertainty); callers pass the round's
// estimate-derived bound, or a conservative prior before the first round.
func (n *Node) publishReading(unc time.Duration) {
	if unc < minUncertainty {
		unc = minUncertainty
	}
	now := time.Now()
	elapsed := now.Sub(n.start)
	drift := time.Duration(float64(elapsed) * n.cfg.SimDriftPPM * 1e-6)
	n.mu.Lock()
	adj := n.adj
	epoch := n.syncs
	n.mu.Unlock()
	grow := float64(hostDriftPPM)
	if d := n.cfg.SimDriftPPM; d > 0 {
		grow += d
	} else {
		grow -= d
	}
	n.snap.Store(&readSnap{
		base:    now,
		offset:  n.cfg.SimOffset + drift + adj,
		ratePPM: n.cfg.SimDriftPPM,
		unc:     unc,
		growPPM: grow,
		epoch:   uint64(epoch),
	})
}

// snapPtr is the atomic holder embedded in Node (split out so livenet.go
// stays focused on the protocol).
type snapPtr = atomic.Pointer[readSnap]
