package livenet

import (
	"fmt"
	"time"
)

// RetryConfig governs per-round re-estimation: when a peer has not answered
// by the next retry instant, the node retransmits its time request (with a
// fresh nonce) instead of writing the whole round off after one datagram.
// Retries use jittered exponential backoff and always fit inside MaxWait —
// the estimation deadline of §3.2 is never stretched, so the analysis'
// timeout assumptions are untouched; retries only raise the probability
// that a good peer's estimate survives a lossy network.
//
// The zero value selects defaults (3 attempts, MaxWait/8 initial delay,
// ×2 growth, ±10% jitter). Fields are validated by Config.Validate.
type RetryConfig struct {
	// Attempts is the maximum number of sends per peer per round, the
	// original included (0 → 3; 1 disables retries).
	Attempts int
	// Initial is the delay before the first retransmission (0 → MaxWait/8).
	Initial time.Duration
	// Multiplier grows the delay between consecutive retries (0 → 2; must
	// be ≥ 1 otherwise).
	Multiplier float64
	// Jitter spreads every delay uniformly by ±Jitter·delay to avoid
	// synchronized retransmission bursts (0 → 0.1; must be in [0, 1)).
	Jitter float64
}

// validate rejects nonsense values; zeros mean defaults and pass.
func (r RetryConfig) validate(maxWait time.Duration) error {
	if r.Attempts < 0 {
		return fmt.Errorf("livenet: Retry.Attempts %d is negative (0 selects the default)", r.Attempts)
	}
	if r.Initial < 0 {
		return fmt.Errorf("livenet: Retry.Initial %v is negative (0 selects the default)", r.Initial)
	}
	if r.Initial > maxWait {
		return fmt.Errorf("livenet: Retry.Initial %v exceeds MaxWait %v — the first retry would never fire", r.Initial, maxWait)
	}
	if r.Multiplier != 0 && r.Multiplier < 1 {
		return fmt.Errorf("livenet: Retry.Multiplier %g < 1 would shrink backoff delays", r.Multiplier)
	}
	if r.Jitter < 0 || r.Jitter >= 1 {
		return fmt.Errorf("livenet: Retry.Jitter %g outside [0, 1)", r.Jitter)
	}
	return nil
}

// withDefaults resolves the zero-value fields against the round budget.
func (r RetryConfig) withDefaults(maxWait time.Duration) RetryConfig {
	if r.Attempts == 0 {
		r.Attempts = 3
	}
	if r.Initial == 0 {
		r.Initial = maxWait / 8
	}
	if r.Multiplier == 0 {
		r.Multiplier = 2
	}
	if r.Jitter == 0 {
		r.Jitter = 0.1
	}
	return r
}

// retrySchedule returns the round's retransmission instants as offsets from
// the round start: strictly increasing, one per retry (Attempts−1 of them
// at most), every one strictly inside budget so the retransmitted request
// still has time to be answered. rnd supplies uniform [0,1) draws for the
// jitter. The schedule is the entire timing policy — the collect loop just
// walks it — which is what makes backoff growth, jitter bounds and the
// budget cap testable against a fake clock.
func retrySchedule(cfg RetryConfig, budget time.Duration, rnd func() float64) []time.Duration {
	cfg = cfg.withDefaults(budget)
	var out []time.Duration
	at := time.Duration(0)
	delay := cfg.Initial
	for i := 1; i < cfg.Attempts; i++ {
		d := delay
		if cfg.Jitter > 0 {
			d = time.Duration(float64(d) * (1 + cfg.Jitter*(2*rnd()-1)))
		}
		at += d
		if at >= budget {
			break // no time left for an answer; stop retrying
		}
		out = append(out, at)
		delay = time.Duration(float64(delay) * cfg.Multiplier)
	}
	return out
}
