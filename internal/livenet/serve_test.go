package livenet

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"testing"
	"time"

	"clocksync/internal/adversary"
)

// TestServePacketGolden pins the serve wire format byte for byte: an encoder
// change that shifts a field or flips endianness must fail here, not in a
// cross-version deployment.
func TestServePacketGolden(t *testing.T) {
	q := ServeQuery{Nonce: 0x0102030405060708, T1: 0x1122334455667788}
	wantQ := "4353" + "01" + "01" + // magic, version, mode=query
		"0102030405060708" + // nonce
		"1122334455667788" // t1
	gotQ := EncodeServeQuery(make([]byte, ServeQuerySize), q)
	if hex.EncodeToString(gotQ) != wantQ {
		t.Fatalf("query encoding\n got %s\nwant %s", hex.EncodeToString(gotQ), wantQ)
	}
	backQ, err := DecodeServeQuery(gotQ)
	if err != nil || backQ != q {
		t.Fatalf("query roundtrip: got %+v, %v; want %+v", backQ, err, q)
	}

	r := ServeReply{
		Nonce:       0x0102030405060708,
		T1:          0x1122334455667788,
		T2:          0x2122232425262728,
		T3:          0x3132333435363738,
		Uncertainty: 0x0000000000000fff,
		Epoch:       0x00000000000000aa,
		Node:        7,
	}
	wantR := "4353" + "01" + "02" + // magic, version, mode=reply
		"0102030405060708" + // nonce
		"1122334455667788" + // t1
		"2122232425262728" + // t2
		"3132333435363738" + // t3
		"0000000000000fff" + // uncertainty (ns)
		"00000000000000aa" + // epoch
		"00000007" // node
	gotR := EncodeServeReply(make([]byte, ServeReplySize), r)
	if hex.EncodeToString(gotR) != wantR {
		t.Fatalf("reply encoding\n got %s\nwant %s", hex.EncodeToString(gotR), wantR)
	}
	backR, err := DecodeServeReply(gotR)
	if err != nil || backR != r {
		t.Fatalf("reply roundtrip: got %+v, %v; want %+v", backR, err, r)
	}
}

// TestServePacketGoldenTraced pins the trace-context extension byte for
// byte: exactly 12 extra bytes (span id, origin node) appended past the
// untraced layout, which stays bit-identical underneath.
func TestServePacketGoldenTraced(t *testing.T) {
	q := ServeQuery{
		Nonce: 0x0102030405060708, T1: 0x1122334455667788,
		Traced: true, Span: 0xa1a2a3a4a5a6a7a8, Origin: 9,
	}
	wantQ := "4353" + "01" + "01" + // magic, version, mode=query
		"0102030405060708" + // nonce
		"1122334455667788" + // t1
		"a1a2a3a4a5a6a7a8" + // ext: span
		"00000009" // ext: origin
	gotQ := EncodeServeQuery(make([]byte, ServeQueryMaxSize), q)
	if hex.EncodeToString(gotQ) != wantQ {
		t.Fatalf("traced query encoding\n got %s\nwant %s", hex.EncodeToString(gotQ), wantQ)
	}
	backQ, err := DecodeServeQuery(gotQ)
	if err != nil || backQ != q {
		t.Fatalf("traced query roundtrip: got %+v, %v; want %+v", backQ, err, q)
	}

	r := ServeReply{
		Nonce: 0x0102030405060708, T1: 0x1122334455667788,
		T2: 0x2122232425262728, T3: 0x3132333435363738,
		Uncertainty: 0xfff, Epoch: 0xaa, Node: 7,
		Traced: true, Span: 0xa1a2a3a4a5a6a7a8, Origin: 9,
	}
	wantR := "4353" + "01" + "02" +
		"0102030405060708" + "1122334455667788" +
		"2122232425262728" + "3132333435363738" +
		"0000000000000fff" + "00000000000000aa" + "00000007" +
		"a1a2a3a4a5a6a7a8" + "00000009" // ext: span, origin
	gotR := EncodeServeReply(make([]byte, ServeReplyMaxSize), r)
	if hex.EncodeToString(gotR) != wantR {
		t.Fatalf("traced reply encoding\n got %s\nwant %s", hex.EncodeToString(gotR), wantR)
	}
	backR, err := DecodeServeReply(gotR)
	if err != nil || backR != r {
		t.Fatalf("traced reply roundtrip: got %+v, %v; want %+v", backR, err, r)
	}

	// Truncating the extension mid-way is a length error, not a silent
	// fallback to the untraced layout.
	if _, err := DecodeServeQuery(gotQ[:ServeQuerySize+6]); !errors.Is(err, ErrServeBadLength) {
		t.Errorf("half-extension query: err = %v, want %v", err, ErrServeBadLength)
	}
}

// TestServeDecodeRejects pins the decoder's rejection surface: truncation,
// padding, foreign magic, future versions and crossed modes all error
// without panicking.
func TestServeDecodeRejects(t *testing.T) {
	valid := EncodeServeQuery(make([]byte, ServeQuerySize), ServeQuery{Nonce: 1, T1: 2})
	validReply := EncodeServeReply(make([]byte, ServeReplySize), ServeReply{Nonce: 1})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrServeBadMagic},
		{"one byte", []byte{0x43}, ErrServeBadMagic},
		{"json wire", []byte(`{"v":1}`), ErrServeBadMagic},
		{"truncated query", valid[:ServeQuerySize-1], ErrServeBadLength},
		{"oversized query", append(append([]byte{}, valid...), 0), ErrServeBadLength},
		{"bad version", func() []byte {
			b := append([]byte{}, valid...)
			b[serveOffVersion] = 99
			return b
		}(), ErrServeBadVersion},
		{"reply to query decoder", func() []byte {
			// A reply truncated to query length still has mode=reply.
			b := append([]byte{}, validReply[:ServeQuerySize]...)
			return b
		}(), ErrServeBadMode},
	}
	for _, tc := range cases {
		if _, err := DecodeServeQuery(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeServeQuery err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeServeReply(valid); !errors.Is(err, ErrServeBadLength) {
		t.Errorf("query to reply decoder: err = %v, want %v", err, ErrServeBadLength)
	}
	if _, err := DecodeServeReply(validReply[:ServeReplySize-8]); !errors.Is(err, ErrServeBadLength) {
		t.Errorf("truncated reply: err = %v, want %v", err, ErrServeBadLength)
	}
}

// FuzzServePacket throws arbitrary datagrams at both decoders: they must
// never panic, and anything they accept must re-encode byte-identically
// (the format has no don't-care bits).
func FuzzServePacket(f *testing.F) {
	f.Add(EncodeServeQuery(make([]byte, ServeQuerySize), ServeQuery{Nonce: 1, T1: -1}))
	f.Add(EncodeServeReply(make([]byte, ServeReplySize), ServeReply{Nonce: 2, T2: 3, Node: 4}))
	f.Add(EncodeServeQuery(make([]byte, ServeQueryMaxSize), ServeQuery{Nonce: 1, Traced: true, Span: 77, Origin: 5}))
	f.Add(EncodeServeReply(make([]byte, ServeReplyMaxSize), ServeReply{Nonce: 2, Traced: true, Span: 77, Origin: 5}))
	f.Add([]byte{0x43, 0x53})
	f.Add([]byte(`{"v":1,"t":"q"}`))
	f.Add(bytes.Repeat([]byte{0x43}, 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Re-encode buffers are Max-sized: any accepted packet — traced or
		// not — must round-trip, and the encoder only uses the extension
		// bytes when Traced is set.
		if q, err := DecodeServeQuery(data); err == nil {
			back := EncodeServeQuery(make([]byte, ServeQueryMaxSize), q)
			if !bytes.Equal(back, data) {
				t.Fatalf("accepted query does not re-encode to itself:\n in %x\nout %x", data, back)
			}
		}
		if r, err := DecodeServeReply(data); err == nil {
			back := EncodeServeReply(make([]byte, ServeReplyMaxSize), r)
			if !bytes.Equal(back, data) {
				t.Fatalf("accepted reply does not re-encode to itself:\n in %x\nout %x", data, back)
			}
		}
	})
}

// TestServeSharedSyncSocket exercises the no-configuration path: a query
// sent to a node's sync transport is answered from the same socket, and
// readings carry the node's epoch and a sane uncertainty.
func TestServeSharedSyncSocket(t *testing.T) {
	mn := NewMemNetwork(MemNetworkConfig{})
	n := readNode(t, Config{ID: 0, Transport: mn.Transport(0)})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)

	c, err := NewClient(ClientConfig{Server: MemAddr(0), Transport: mn.Transport(42)})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	r, err := c.Query(context.Background())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Epoch != 0 {
		t.Errorf("epoch = %d, want 0 (no rounds run)", r.Epoch)
	}
	if r.Uncertainty <= 0 {
		t.Errorf("uncertainty = %v, want > 0", r.Uncertainty)
	}
	if gap := time.Since(r.Time); gap > time.Second || gap < -time.Second {
		t.Errorf("reading %v is nowhere near now", r.Time)
	}
	if got := n.Metrics().ServeQueries.Load(); got != 1 {
		t.Errorf("ServeQueries = %d, want 1", got)
	}
}

// TestServeDedicatedUDP exercises the production shape: a dedicated UDP
// serve endpoint on an OS-assigned port, queried by a UDP client.
func TestServeDedicatedUDP(t *testing.T) {
	n := readNode(t, Config{
		ID:     3,
		Listen: "127.0.0.1:0",
		Serve:  ServeConfig{Addr: "127.0.0.1:0"},
	})
	if n.ServeAddr() == "" {
		t.Fatal("ServeAddr empty with Serve.Addr configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)

	c, err := NewClient(ClientConfig{Server: n.ServeAddr(), Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	r, err := c.Query(context.Background())
	if err != nil {
		t.Fatalf("Query over UDP: %v", err)
	}
	if r.Uncertainty <= 0 {
		t.Errorf("uncertainty = %v, want > 0", r.Uncertainty)
	}
}

// TestClientReadInterpolates pins the client-side snapshot: before any query
// Read reports maximal uncertainty; after one, it interpolates with growing
// uncertainty and the queried epoch.
func TestClientReadInterpolates(t *testing.T) {
	mn := NewMemNetwork(MemNetworkConfig{})
	n := readNode(t, Config{ID: 0, Transport: mn.Transport(0)})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)

	c, err := NewClient(ClientConfig{Server: MemAddr(0), Transport: mn.Transport(42)})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	if r := c.Read(); r.Uncertainty != maxUncertainty {
		t.Fatalf("unqueried client uncertainty = %v, want max", r.Uncertainty)
	}
	q, err := c.Query(context.Background())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	r1 := c.Read()
	if r1.Epoch != q.Epoch {
		t.Errorf("interpolated epoch %d, want %d", r1.Epoch, q.Epoch)
	}
	time.Sleep(5 * time.Millisecond)
	if r2 := c.Read(); r2.Uncertainty < r1.Uncertainty {
		t.Errorf("client uncertainty shrank without a query: %v -> %v", r1.Uncertainty, r2.Uncertainty)
	}
}

// TestServeQueryTimeout pins the failure path: a query into the void times
// out with the context error instead of hanging.
func TestServeQueryTimeout(t *testing.T) {
	mn := NewMemNetwork(MemNetworkConfig{})
	c, err := NewClient(ClientConfig{
		Server:    MemAddr(9), // nobody home
		Transport: mn.Transport(42),
		Timeout:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	if _, err := c.Query(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query to dead address: err = %v, want deadline exceeded", err)
	}
}

// TestServeUnderChaosContainsTruth is the serve-path acceptance run: a
// converged 4-node cluster queried through a FaultTransport injecting
// drops, duplicates, reorders and delays must — on every query that
// completes at all — return a Reading whose interval contains the true
// cluster time. Truth is the host clock: all nodes run with zero simulated
// offset, so the cluster's reference is the host itself.
func TestServeUnderChaosContainsTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos serve run needs ~2s of wall time")
	}
	mn := NewMemNetwork(MemNetworkConfig{Seed: 7})
	const nNodes = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nNodes; i++ {
		n := readNode(t, Config{
			ID:        i,
			F:         1,
			Transport: mn.Transport(i),
			Peers:     memPeers(nNodes, i),
			SyncInt:   100 * time.Millisecond,
			MaxWait:   40 * time.Millisecond,
			WayOff:    2 * time.Second,
		})
		go n.Run(ctx)
	}

	// The client's link is the hostile part: ambient chaos on every packet,
	// both directions, driven by the deterministic per-packet fate hash.
	ft := NewFaultTransport(mn.Transport(99), FaultConfig{
		Seed: 7,
		Node: 99,
		Schedule: adversary.NetSchedule{Chaos: adversary.PacketChaos{
			DropP:    0.15,
			DupP:     0.10,
			ReorderP: 0.10,
			DelayMax: 0.002, // 2 ms extra, in simtime seconds at default scale
		}},
	})
	c, err := NewClient(ClientConfig{
		Server:    MemAddr(0),
		Transport: ft,
		Timeout:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	var ok, failed int
	for i := 0; i < 120; i++ {
		before := time.Now()
		r, err := c.Query(context.Background())
		after := time.Now()
		if err != nil {
			failed++
			continue
		}
		ok++
		// True time at the exchange's T4 lies in [before, after]; the
		// reading's interval must contain it.
		if r.Time.Add(r.Uncertainty).Before(before) || r.Time.Add(-r.Uncertainty).After(after) {
			t.Fatalf("query %d: reading %v ± %v excludes true time window [%v, %v]",
				i, r.Time, r.Uncertainty, before, after)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ok == 0 {
		t.Fatal("no query survived the chaos; the test proved nothing")
	}
	if failed == 0 {
		t.Log("warning: chaos injected no query failures this run")
	}
	t.Logf("chaos serve: %d readings contained truth, %d queries lost", ok, failed)
}

// memPeers builds the full-mesh peer table for node self on a MemNetwork.
func memPeers(n, self int) map[int]string {
	peers := make(map[int]string, n-1)
	for j := 0; j < n; j++ {
		if j != self {
			peers[j] = MemAddr(j)
		}
	}
	return peers
}
