package livenet

import (
	"fmt"
	"net"
	"sync"
)

// Transport is the wire under a live Node: an unreliable, unordered
// datagram service addressed by opaque strings. The default is real UDP
// (NewUDPTransport); tests and in-process chaos clusters use the memory
// transport (MemNetwork); FaultTransport wraps any of them with
// deterministic fault injection. A Node never touches sockets directly —
// everything it sends or receives flows through its Transport, which is
// what makes the live path testable under message loss, partitions and
// crashes without leaving the process.
//
// Implementations must allow concurrent WriteTo calls and a concurrent
// ReadFrom; Close must unblock a pending ReadFrom.
type Transport interface {
	// ReadFrom blocks until a datagram arrives, copies it into buf, and
	// returns its length and the sender's address. It returns an error
	// after Close.
	ReadFrom(buf []byte) (n int, from string, err error)
	// WriteTo sends one datagram. Delivery is best-effort: like UDP, a nil
	// error does not mean the peer received it.
	WriteTo(data []byte, to string) error
	// LocalAddr returns the transport's own address, in the same namespace
	// peers use to reach it.
	LocalAddr() string
	// Close releases the transport and unblocks pending reads.
	Close() error
}

// addrChecker is implemented by transports that can vet a peer address
// without sending to it; Node.SetPeers uses it to fail fast on typos.
type addrChecker interface {
	CheckAddr(addr string) error
}

// UDPTransport is the production Transport: one UDP socket, string
// addresses in host:port form. Destination addresses are resolved once and
// cached.
type UDPTransport struct {
	conn *net.UDPConn

	mu       sync.Mutex
	resolved map[string]*net.UDPAddr
}

// NewUDPTransport opens a UDP socket on listen (use "127.0.0.1:0" for an
// OS-assigned port).
func NewUDPTransport(listen string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("livenet: resolving listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: listening: %w", err)
	}
	return &UDPTransport{conn: conn, resolved: make(map[string]*net.UDPAddr)}, nil
}

// ReadFrom implements Transport.
func (t *UDPTransport) ReadFrom(buf []byte) (int, string, error) {
	n, raddr, err := t.conn.ReadFromUDP(buf)
	if err != nil {
		return 0, "", err
	}
	return n, raddr.String(), nil
}

// WriteTo implements Transport.
func (t *UDPTransport) WriteTo(data []byte, to string) error {
	ua, err := t.resolve(to)
	if err != nil {
		return err
	}
	_, err = t.conn.WriteToUDP(data, ua)
	return err
}

func (t *UDPTransport) resolve(addr string) (*net.UDPAddr, error) {
	t.mu.Lock()
	ua, ok := t.resolved[addr]
	t.mu.Unlock()
	if ok {
		return ua, nil
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: resolving %s: %w", addr, err)
	}
	t.mu.Lock()
	t.resolved[addr] = ua
	t.mu.Unlock()
	return ua, nil
}

// CheckAddr implements addrChecker by resolving (and caching) the address.
func (t *UDPTransport) CheckAddr(addr string) error {
	_, err := t.resolve(addr)
	return err
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Close implements Transport.
func (t *UDPTransport) Close() error { return t.conn.Close() }
