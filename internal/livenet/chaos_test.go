package livenet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/simtime"
)

// chaosParams are the virtual-unit analysis parameters shared by the chaos
// tests: Θ=16 with T≈3 gives K=5 (the Theorem 5 minimum), MaxWait=2δ.
func chaosParams() analysis.Params {
	return analysis.Params{
		Rho:     1e-4,
		Delta:   0.25,
		Theta:   16,
		SyncInt: 2,
		MaxWait: 0.5,
	}
}

var chaosOffsets = []simtime.Duration{-0.4, 0.3, 0.1, -0.2, 0.4, 0, -0.1}

// chaosSeed is chosen so the generated schedule exercises both structured
// fault kinds; TestChaosScheduleMix pins that property.
const chaosSeed = 1

func chaosSchedule(t *testing.T) adversary.NetSchedule {
	t.Helper()
	return adversary.GenNetSchedule(chaosSeed, adversary.GenNetConfig{
		N: 7, F: 2,
		Theta:    chaosParams().Theta,
		Start:    12,
		Horizon:  60,
		Scramble: 20, // well past WayOff ≈ 8.5: restart forces the recovery branch
		Chaos: adversary.PacketChaos{
			DropP:    0.05,
			DupP:     0.02,
			ReorderP: 0.02,
			DelayMax: 0.05,
		},
	})
}

// TestChaosScheduleMix pins the precondition the acceptance run relies on:
// the chosen seed yields both a scrambled crash and a partition within the
// horizon, and regenerating from the same seed reproduces it exactly.
func TestChaosScheduleMix(t *testing.T) {
	s := chaosSchedule(t)
	var crashes, partitions int
	for _, f := range s.Faults {
		switch f.Kind {
		case adversary.FaultCrash:
			crashes++
			if f.Scramble == 0 {
				t.Errorf("crash window %+v lost its scramble", f)
			}
		case adversary.FaultPartition:
			partitions++
		}
	}
	if crashes == 0 || partitions == 0 {
		t.Fatalf("seed %d no longer mixes fault kinds (crash=%d partition=%d); pick a new seed",
			chaosSeed, crashes, partitions)
	}
	if again := chaosSchedule(t); !reflect.DeepEqual(s, again) {
		t.Fatalf("schedule not reproducible from seed:\n%+v\nvs\n%+v", s, again)
	}
	if other := adversary.GenNetSchedule(chaosSeed+1, adversary.GenNetConfig{
		N: 7, F: 2, Theta: 16, Start: 12, Horizon: 60,
	}); reflect.DeepEqual(s.Faults, other.Faults) {
		t.Fatal("different seeds produced identical fault plans")
	}
}

// TestChaosClusterSatisfiesTheorem5 is the acceptance run: a 7-node f=2
// in-process cluster under a seeded drop+dup+reorder+delay ambient plus a
// scrambled crash and a partition completes a 60-virtual-second campaign
// with zero Theorem 5 violations — twice, from the same seed.
func TestChaosClusterSatisfiesTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign needs ~3s of wall time")
	}
	for run := 0; run < 2; run++ {
		res, err := RunChaos(context.Background(), ChaosConfig{
			N: 7, F: 2,
			Seed:     chaosSeed,
			Schedule: chaosSchedule(t),
			Params:   chaosParams(),
			Horizon:  60,
			Scale:    chaosTestScale,
			Offsets:  chaosOffsets,
			Key:      []byte("chaos-acceptance"),
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if verr := res.Err(); verr != nil {
			t.Fatalf("run %d: violations under an f-limited schedule: %v (total %d, dropped %d)",
				run, verr, len(res.Violations), res.Dropped)
		}
		// The campaign must have actually synchronized and actually hurt:
		// every node completed rounds, and every ambient fault class plus
		// both structured classes left counter evidence.
		for i, syncs := range res.Syncs {
			if syncs < 10 {
				t.Errorf("run %d: node %d completed only %d rounds", run, i, syncs)
			}
		}
		if res.Faults.FaultDrops.Load() == 0 {
			t.Errorf("run %d: ambient chaos dropped nothing", run)
		}
		if res.Faults.FaultCrashDrops.Load() == 0 {
			t.Errorf("run %d: crash window cut nothing", run)
		}
		if res.Faults.FaultPartitionDrops.Load() == 0 {
			t.Errorf("run %d: partition window cut nothing", run)
		}
		var jumps, retries int64
		for _, rec := range res.Nodes {
			jumps += rec.WayOffJumps.Load()
			retries += rec.Retries.Load()
		}
		if jumps == 0 {
			t.Errorf("run %d: no node took the WayOff recovery branch despite a %v scramble", run, simtime.Duration(20))
		}
		if retries == 0 {
			t.Errorf("run %d: 5%% ambient drop triggered no retransmissions", run)
		}
	}
}

// TestChaosOverBudgetFlagged holds an over-budget run to f-limited
// guarantees: three of seven nodes (f=2) crash together and restart with
// scrambled clocks while the declared schedule admits no faults at all. The
// checker must notice — zero violations here would mean the harness cannot
// detect its own failures.
func TestChaosOverBudgetFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign needs ~1s of wall time")
	}
	injected := adversary.NetSchedule{
		Faults: []adversary.NetFault{{
			Kind:     adversary.FaultCrash,
			Nodes:    []int{0, 1, 2}, // 3 > f=2: over budget
			From:     12,
			To:       16,
			Scramble: 20,
		}},
	}
	if injected.Validate(7, 2, chaosParams().Theta) == nil {
		t.Fatal("test premise broken: the injected schedule validates as f-limited")
	}
	declared := adversary.NetSchedule{}
	res, err := RunChaos(context.Background(), ChaosConfig{
		N: 7, F: 2,
		Seed:     chaosSeed,
		Schedule: injected,
		Declared: &declared,
		Params:   chaosParams(),
		Horizon:  24,
		Scale:    chaosTestScale,
		Offsets:  chaosOffsets,
		Key:      []byte("chaos-overbudget"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("over-budget run reported zero violations; the checker is blind")
	}
	// The breach must be attributable: a 20-virtual-second scramble of three
	// "good" clocks breaks the deviation envelope (and usually the step
	// bound), not some unrelated invariant.
	first := res.Violations[0]
	if first.Invariant != "deviation" && first.Invariant != "discontinuity" {
		t.Errorf("first violation is %q, want deviation or discontinuity: %v", first.Invariant, first)
	}
}

// TestRunChaosRejectsBadConfig pins the harness's own validation.
func TestRunChaosRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := RunChaos(ctx, ChaosConfig{N: 0, Horizon: 10, Params: chaosParams()}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := RunChaos(ctx, ChaosConfig{N: 7, F: 2, Horizon: 0, Params: chaosParams()}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RunChaos(ctx, ChaosConfig{N: 7, F: 2, Horizon: 10}); err == nil {
		t.Error("zero analysis params accepted")
	}
	over := adversary.NetSchedule{Faults: []adversary.NetFault{{
		Kind: adversary.FaultCrash, Nodes: []int{0, 1, 2}, From: 1, To: 2,
	}}}
	if _, err := RunChaos(ctx, ChaosConfig{
		N: 7, F: 2, Horizon: 10, Params: chaosParams(), Schedule: over,
	}); err == nil {
		t.Error("undeclared over-budget schedule accepted as its own declaration")
	}
}

// TestChaosCancellation: an externally cancelled campaign returns promptly
// with the context error instead of running out its horizon.
func TestChaosCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunChaos(ctx, ChaosConfig{
		N: 7, F: 2,
		Seed:    chaosSeed,
		Params:  chaosParams(),
		Horizon: 600, // 15s of wall time if not cancelled
		Offsets: chaosOffsets,
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
