package livenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"clocksync/internal/obs"
)

// The time-serving wire protocol: a fixed-size binary 4-timestamp exchange
// in the NTP mold, carried over the same Transport abstraction as the sync
// protocol so it works identically over real UDP, the in-process MemNetwork
// and a fault-injecting FaultTransport.
//
//	client                             node
//	  | -- query {nonce, T1} ------------> |  T2 = node clock at receipt
//	  |                                    |  T3 = node clock at transmit
//	  | <- reply {nonce, T1, T2, T3,       |
//	  |           uncertainty, epoch, id}  |
//	  T4 = client clock at receipt
//
// The client recovers offset θ = ((T2−T1)+(T3−T4))/2 and round-trip network
// delay λ = (T4−T1)−(T3−T2). θ's error against the node's clock is bounded
// by λ/2 (the RTT-asymmetry bound: however the delay splits between the two
// directions, the midpoint estimate is off by at most half the total), so
// the client's reading carries uncertainty = node uncertainty + λ/2 — the
// node's own Theorem 5-derived envelope widened by the link, never a bare
// timestamp.
//
// Serve packets are distinguished from the JSON sync wire by a leading magic
// that can never open a JSON object, so both protocols share one socket.
// They are unauthenticated by design — a public time service answers anyone,
// and a reading's validity is judged by its uncertainty interval, not by who
// transported it. Deployments that need authenticated time should front the
// serve port the same way they would front an NTP pool.

// Serve wire constants. Packet sizes are exact at each of the two valid
// lengths: the base layout, or the base layout plus the trace-context
// extension. Any other length is rejected.
const (
	serveMagic   uint16 = 0x4353 // "CS"; first byte 0x43 ≠ '{' keeps JSON apart
	serveVersion byte   = 1

	serveModeQuery byte = 1
	serveModeReply byte = 2

	// ServeQuerySize is the exact length of an untraced query datagram.
	ServeQuerySize = 20
	// ServeReplySize is the exact length of an untraced reply datagram.
	ServeReplySize = 56

	// serveExtSize is the trailing trace-context extension: span id (8) +
	// origin node (4), big-endian. A traced client appends it to its query;
	// the node echoes it on the reply and records a "serve" span under the
	// propagated id. Version-1 decoders written before the extension existed
	// rejected the longer packets outright (never misparsed them), so the
	// extension is additive for every reader that accepts it and safely
	// refused by those that predate it.
	serveExtSize = 12

	// ServeQueryMaxSize is the length of a query carrying trace context.
	ServeQueryMaxSize = ServeQuerySize + serveExtSize
	// ServeReplyMaxSize is the length of a reply carrying trace context.
	ServeReplyMaxSize = ServeReplySize + serveExtSize
)

// ServeQuery is a client's time request: an opaque pairing nonce and the
// client clock at transmission (T1), in Unix nanoseconds.
//
// Traced, when set, appends the trace-context extension: Span is the
// client's span id for this exchange and Origin the client's fleet node id,
// so the span the client records and the "serve" span the node records share
// an id and an aggregator can join them across machines. Untraced queries
// encode to exactly the pre-extension bytes.
type ServeQuery struct {
	Nonce uint64
	T1    int64

	Traced bool
	Span   uint64
	Origin uint32
}

// ServeReply is a node's answer: the echoed nonce and T1, the node clock at
// receipt (T2) and at transmission (T3) in Unix nanoseconds, the node's own
// uncertainty half-width at T3, the sync epoch the reading derives from, and
// the node id.
// Traced/Span/Origin echo the query's trace-context extension so the client
// can confirm the join id round-tripped; an untraced query always yields an
// untraced reply.
type ServeReply struct {
	Nonce       uint64
	T1          int64
	T2          int64
	T3          int64
	Uncertainty time.Duration
	Epoch       uint64
	Node        uint32

	Traced bool
	Span   uint64
	Origin uint32
}

// Serve packet layout offsets (big-endian). The header is shared:
// magic(2) version(1) mode(1) nonce(8) t1(8); replies continue with
// t2(8) t3(8) uncertainty(8) epoch(8) node(4).
const (
	serveOffMagic   = 0
	serveOffVersion = 2
	serveOffMode    = 3
	serveOffNonce   = 4
	serveOffT1      = 12
	serveOffT2      = 20
	serveOffT3      = 28
	serveOffUnc     = 36
	serveOffEpoch   = 44
	serveOffNode    = 52
)

// Serve codec errors. Decoders return them (wrapped with detail) instead of
// panicking, whatever the input bytes — truncated, oversized or hostile.
var (
	ErrServeBadMagic   = errors.New("livenet: not a serve packet")
	ErrServeBadLength  = errors.New("livenet: serve packet has wrong length")
	ErrServeBadVersion = errors.New("livenet: unsupported serve packet version")
	ErrServeBadMode    = errors.New("livenet: unexpected serve packet mode")
)

// isServePacket reports whether b plausibly starts a serve datagram (magic
// check only; full validation happens in the decoders).
func isServePacket(b []byte) bool {
	return len(b) >= 2 && binary.BigEndian.Uint16(b[serveOffMagic:]) == serveMagic
}

// EncodeServeQuery writes q into buf, which must have room for
// ServeQueryMaxSize bytes when q.Traced and ServeQuerySize otherwise, and
// returns the encoded slice. Passing a stack-allocated or reused buffer keeps
// the hot path allocation-free.
func EncodeServeQuery(buf []byte, q ServeQuery) []byte {
	b := buf[:ServeQuerySize]
	binary.BigEndian.PutUint16(b[serveOffMagic:], serveMagic)
	b[serveOffVersion] = serveVersion
	b[serveOffMode] = serveModeQuery
	binary.BigEndian.PutUint64(b[serveOffNonce:], q.Nonce)
	binary.BigEndian.PutUint64(b[serveOffT1:], uint64(q.T1))
	if q.Traced {
		b = buf[:ServeQueryMaxSize]
		binary.BigEndian.PutUint64(b[ServeQuerySize:], q.Span)
		binary.BigEndian.PutUint32(b[ServeQuerySize+8:], q.Origin)
	}
	return b
}

// DecodeServeQuery parses a query datagram, rejecting anything that is not
// exactly a version-1 query at one of the two valid lengths (with or without
// the trace-context extension).
func DecodeServeQuery(b []byte) (ServeQuery, error) {
	if !isServePacket(b) {
		return ServeQuery{}, ErrServeBadMagic
	}
	if len(b) != ServeQuerySize && len(b) != ServeQueryMaxSize {
		return ServeQuery{}, fmt.Errorf("%w: got %d bytes, want %d or %d", ErrServeBadLength, len(b), ServeQuerySize, ServeQueryMaxSize)
	}
	if b[serveOffVersion] != serveVersion {
		return ServeQuery{}, fmt.Errorf("%w: got %d, want %d", ErrServeBadVersion, b[serveOffVersion], serveVersion)
	}
	if b[serveOffMode] != serveModeQuery {
		return ServeQuery{}, fmt.Errorf("%w: got %d, want query (%d)", ErrServeBadMode, b[serveOffMode], serveModeQuery)
	}
	q := ServeQuery{
		Nonce: binary.BigEndian.Uint64(b[serveOffNonce:]),
		T1:    int64(binary.BigEndian.Uint64(b[serveOffT1:])),
	}
	if len(b) == ServeQueryMaxSize {
		q.Traced = true
		q.Span = binary.BigEndian.Uint64(b[ServeQuerySize:])
		q.Origin = binary.BigEndian.Uint32(b[ServeQuerySize+8:])
	}
	return q, nil
}

// EncodeServeReply writes r into buf, which must have room for
// ServeReplyMaxSize bytes when r.Traced and ServeReplySize otherwise, and
// returns the encoded slice.
func EncodeServeReply(buf []byte, r ServeReply) []byte {
	b := buf[:ServeReplySize]
	binary.BigEndian.PutUint16(b[serveOffMagic:], serveMagic)
	b[serveOffVersion] = serveVersion
	b[serveOffMode] = serveModeReply
	binary.BigEndian.PutUint64(b[serveOffNonce:], r.Nonce)
	binary.BigEndian.PutUint64(b[serveOffT1:], uint64(r.T1))
	binary.BigEndian.PutUint64(b[serveOffT2:], uint64(r.T2))
	binary.BigEndian.PutUint64(b[serveOffT3:], uint64(r.T3))
	binary.BigEndian.PutUint64(b[serveOffUnc:], uint64(r.Uncertainty))
	binary.BigEndian.PutUint64(b[serveOffEpoch:], r.Epoch)
	binary.BigEndian.PutUint32(b[serveOffNode:], r.Node)
	if r.Traced {
		b = buf[:ServeReplyMaxSize]
		binary.BigEndian.PutUint64(b[ServeReplySize:], r.Span)
		binary.BigEndian.PutUint32(b[ServeReplySize+8:], r.Origin)
	}
	return b
}

// DecodeServeReply parses a reply datagram, rejecting anything that is not
// exactly a version-1 reply at one of the two valid lengths (with or without
// the trace-context extension).
func DecodeServeReply(b []byte) (ServeReply, error) {
	if !isServePacket(b) {
		return ServeReply{}, ErrServeBadMagic
	}
	if len(b) != ServeReplySize && len(b) != ServeReplyMaxSize {
		return ServeReply{}, fmt.Errorf("%w: got %d bytes, want %d or %d", ErrServeBadLength, len(b), ServeReplySize, ServeReplyMaxSize)
	}
	if b[serveOffVersion] != serveVersion {
		return ServeReply{}, fmt.Errorf("%w: got %d, want %d", ErrServeBadVersion, b[serveOffVersion], serveVersion)
	}
	if b[serveOffMode] != serveModeReply {
		return ServeReply{}, fmt.Errorf("%w: got %d, want reply (%d)", ErrServeBadMode, b[serveOffMode], serveModeReply)
	}
	r := ServeReply{
		Nonce:       binary.BigEndian.Uint64(b[serveOffNonce:]),
		T1:          int64(binary.BigEndian.Uint64(b[serveOffT1:])),
		T2:          int64(binary.BigEndian.Uint64(b[serveOffT2:])),
		T3:          int64(binary.BigEndian.Uint64(b[serveOffT3:])),
		Uncertainty: time.Duration(binary.BigEndian.Uint64(b[serveOffUnc:])),
		Epoch:       binary.BigEndian.Uint64(b[serveOffEpoch:]),
		Node:        binary.BigEndian.Uint32(b[serveOffNode:]),
	}
	if len(b) == ServeReplyMaxSize {
		r.Traced = true
		r.Span = binary.BigEndian.Uint64(b[ServeReplySize:])
		r.Origin = binary.BigEndian.Uint32(b[ServeReplySize+8:])
	}
	return r, nil
}

// ServeConfig configures a node's client-facing time service. The zero value
// disables the dedicated serve endpoint; serve queries arriving on the
// node's sync transport are always answered regardless, so a dedicated
// endpoint is for isolating heavy client traffic from protocol traffic (its
// loop never touches the sync path's state beyond the atomic snapshot).
type ServeConfig struct {
	// Addr, when non-empty, opens a dedicated UDP serve socket there when
	// the node is created (use "127.0.0.1:0" for an OS-assigned port; read
	// it back with Node.ServeAddr). Ignored when Transport is set.
	Addr string
	// Transport, when non-nil, carries serve traffic instead of a UDP
	// socket on Addr — the seam that lets tests and benchmarks serve over
	// MemNetwork or through a FaultTransport. The node owns it and closes
	// it when Run returns.
	Transport Transport
}

// validate checks the serve settings.
func (s ServeConfig) validate() error {
	if s.Transport == nil && s.Addr != "" {
		return validateHostPort("Serve.Addr", s.Addr)
	}
	return nil
}

// enabled reports whether a dedicated serve endpoint was requested.
func (s ServeConfig) enabled() bool { return s.Transport != nil || s.Addr != "" }

// ServeAddr returns the bound address of the dedicated serve endpoint, or ""
// when none is configured.
func (n *Node) ServeAddr() string {
	if n.serveTr == nil {
		return ""
	}
	return n.serveTr.LocalAddr()
}

// answerServe replies to one serve query. buf holds the raw datagram;
// scratch is the caller's reuse buffer for the reply and tr the transport
// the query arrived on (each read loop owns both), keeping the per-query
// path free of allocations outside the transport. Malformed serve-magic
// datagrams are counted and dropped.
func (n *Node) answerServe(buf []byte, from string, scratch []byte, tr Transport) {
	// ServeLatency is sampled 1-in-64 (cheap counter mask, no RNG) so the
	// reply p50/p95/p99 surface stays live without putting two extra
	// time.Now() calls on every query of a multi-Mqps hot path.
	sampled := n.rec.ServeQueries.Load()&63 == 0
	var begin time.Time
	if sampled {
		begin = time.Now()
	}
	q, err := DecodeServeQuery(buf)
	if err != nil {
		n.rec.ServeBad.Inc()
		return
	}
	// One snapshot read serves as both T2 (receipt) and T3 (transmit): the
	// nanoseconds of decode between them are far below the reading's own
	// uncertainty floor, and T2 = T3 only makes the client's λ accounting
	// conservative (server processing time counts as network delay).
	r := n.Read()
	t := r.Time.UnixNano()
	reply := EncodeServeReply(scratch, ServeReply{
		Nonce:       q.Nonce,
		T1:          q.T1,
		T2:          t,
		T3:          t,
		Uncertainty: r.Uncertainty,
		Epoch:       r.Epoch,
		Node:        uint32(n.cfg.ID),
		Traced:      q.Traced,
		Span:        q.Span,
		Origin:      q.Origin,
	})
	if err := tr.WriteTo(reply, from); err != nil {
		n.rec.ServeDropped.Inc()
		return
	}
	n.rec.ServeQueries.Inc()
	if sampled {
		n.rec.ServeLatency.Observe(time.Since(begin).Seconds())
	}
	// A traced query gets a "serve" span under the client's propagated id:
	// the server half of the cross-node join. Zero-duration at the reading
	// instant; node_time is exactly the T2=T3 value the client folds into θ.
	if o := n.cfg.Ops.Observer; q.Traced && q.Span != 0 && o.SpansEnabled() {
		nowU := float64(time.Now().UnixNano()) / 1e9
		o.EmitSpan(obs.Span{
			ID: obs.SpanID(q.Span), Name: obs.SpanServe, Node: n.cfg.ID,
			Start: nowU, End: nowU,
			Fields: obs.F("origin", float64(q.Origin)).
				F("node_time", float64(t)/1e9).
				F("unc", r.Uncertainty.Seconds()).
				F("epoch", float64(r.Epoch)),
		})
	}
}

// serveLoop answers time queries on the dedicated serve transport until it
// is closed. It reads nothing but serve packets: sync traffic does not
// arrive here, and anything unrecognized is counted and dropped.
func (n *Node) serveLoop() {
	buf := make([]byte, 2048)
	scratch := make([]byte, ServeReplyMaxSize)
	for {
		nr, from, err := n.serveTr.ReadFrom(buf)
		if err != nil {
			return // closed (shutdown) or fatal; either way the loop is done
		}
		if !isServePacket(buf[:nr]) {
			n.rec.ServeBad.Inc()
			continue
		}
		n.answerServe(buf[:nr], from, scratch, n.serveTr)
	}
}
