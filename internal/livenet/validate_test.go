package livenet

import (
	"strings"
	"testing"
	"time"
)

// goodConfig is a baseline that passes Validate; each table case below
// mutates exactly one aspect of it.
func goodConfig() Config {
	return Config{
		ID:      0,
		F:       1,
		Listen:  "127.0.0.1:9000",
		Peers:   map[int]string{1: "127.0.0.1:9001", 2: "127.0.0.1:9002", 3: "127.0.0.1:9003"},
		SyncInt: 2 * time.Second,
		MaxWait: 500 * time.Millisecond,
		WayOff:  time.Second,
	}
}

func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring of the error; "" means must pass
	}{
		{"baseline", func(c *Config) {}, ""},

		// Protocol intervals.
		{"zero SyncInt", func(c *Config) { c.SyncInt = 0 }, "SyncInt"},
		{"negative SyncInt", func(c *Config) { c.SyncInt = -time.Second }, "SyncInt"},
		{"zero MaxWait", func(c *Config) { c.MaxWait = 0 }, "MaxWait"},
		{"negative MaxWait", func(c *Config) { c.MaxWait = -time.Millisecond }, "MaxWait"},
		{"zero WayOff", func(c *Config) { c.WayOff = 0 }, "WayOff"},
		{"negative WayOff", func(c *Config) { c.WayOff = -time.Second }, "WayOff"},
		{"SyncInt below 2·MaxWait", func(c *Config) { c.SyncInt = c.MaxWait }, "2·MaxWait"},

		// Identity and quorum.
		{"negative F", func(c *Config) { c.F = -1 }, "fault budget"},
		{"negative ID", func(c *Config) { c.ID = -2 }, "node id"},
		{"self in peer table", func(c *Config) { c.Peers[0] = "127.0.0.1:9009" }, "own id"},
		{"below 3f+1", func(c *Config) { delete(c.Peers, 3) }, "3f+1"},

		// Addresses and ports.
		{"empty Listen", func(c *Config) { c.Listen = "" }, "Listen"},
		{"Listen without port", func(c *Config) { c.Listen = "127.0.0.1" }, "host:port"},
		{"Listen non-numeric port", func(c *Config) { c.Listen = "127.0.0.1:http" }, "non-numeric port"},
		{"Listen port out of range", func(c *Config) { c.Listen = "127.0.0.1:70000" }, "outside [0, 65535]"},
		{"Listen negative port", func(c *Config) { c.Listen = "127.0.0.1:-1" }, "port"},
		{"peer without port", func(c *Config) { c.Peers[2] = "10.0.0.2" }, "peer 2"},
		{"peer port out of range", func(c *Config) { c.Peers[1] = "10.0.0.1:99999" }, "peer 1"},
		{"metrics addr without port", func(c *Config) { c.Ops.MetricsAddr = "localhost" }, "Ops.MetricsAddr"},
		{"metrics addr bad port", func(c *Config) { c.Ops.MetricsAddr = "localhost:x" }, "Ops.MetricsAddr"},
		{"metrics addr ok", func(c *Config) { c.Ops.MetricsAddr = "127.0.0.1:0" }, ""},
		{"os-assigned listen port ok", func(c *Config) { c.Listen = "127.0.0.1:0" }, ""},

		// Transport-backed nodes skip socket-address checks entirely.
		{"transport ignores Listen", func(c *Config) {
			c.Transport = NewMemNetwork(MemNetworkConfig{}).Transport(0)
			c.Listen = ""
			c.Peers = map[int]string{1: MemAddr(1), 2: MemAddr(2), 3: MemAddr(3)}
		}, ""},

		// Retry/backoff knobs.
		{"negative retry attempts", func(c *Config) { c.Retry.Attempts = -1 }, "Retry.Attempts"},
		{"negative retry initial", func(c *Config) { c.Retry.Initial = -time.Millisecond }, "Retry.Initial"},
		{"retry initial above MaxWait", func(c *Config) { c.Retry.Initial = c.MaxWait * 2 }, "exceeds MaxWait"},
		{"shrinking multiplier", func(c *Config) { c.Retry.Multiplier = 0.5 }, "Multiplier"},
		{"negative jitter", func(c *Config) { c.Retry.Jitter = -0.1 }, "Jitter"},
		{"jitter of one", func(c *Config) { c.Retry.Jitter = 1 }, "Jitter"},
		{"retry defaults pass", func(c *Config) { c.Retry = RetryConfig{} }, ""},
		{"explicit retry passes", func(c *Config) {
			c.Retry = RetryConfig{Attempts: 4, Initial: 10 * time.Millisecond, Multiplier: 1.5, Jitter: 0.2}
		}, ""},

		// Peer-health knob.
		{"negative DarkAfter", func(c *Config) { c.DarkAfter = -1 }, "DarkAfter"},
		{"explicit DarkAfter passes", func(c *Config) { c.DarkAfter = 5 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted a config that should fail with %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateFoldsDeprecatedLogf: the legacy top-level Logf must keep
// working by landing in Ops.Logf.
func TestValidateFoldsDeprecatedLogf(t *testing.T) {
	called := false
	cfg := goodConfig()
	cfg.Logf = func(string, ...any) { called = true }
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Ops.Logf == nil {
		t.Fatal("deprecated Logf not folded into Ops.Logf")
	}
	cfg.Ops.Logf("x")
	if !called {
		t.Fatal("folded Logf does not reach the original function")
	}
}
