package livenet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"clocksync/internal/trace"
)

// TestWireUntracedBytesUnchanged pins the sync wire's backward compatibility
// from the sender side: a message without trace context marshals to exactly
// the pre-extension byte sequence — an untraced node is indistinguishable on
// the wire from one built before the telemetry plane existed.
func TestWireUntracedBytesUnchanged(t *testing.T) {
	q := wireMsg{V: 1, Type: "q", From: 2, Nonce: 7}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	if golden := `{"v":1,"t":"q","f":2,"n":7}`; string(data) != golden {
		t.Errorf("untraced query = %s, want %s", data, golden)
	}
	r := wireMsg{V: 1, Type: "r", From: 3, Nonce: 7, Clock: 1735689600123456789}
	data, err = json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if golden := `{"v":1,"t":"r","f":3,"n":7,"c":1735689600123456789}`; string(data) != golden {
		t.Errorf("untraced response = %s, want %s", data, golden)
	}
}

// TestWireOldGoldenPacketsParse pins backward compatibility from the
// receiver side: byte sequences emitted by pre-extension senders (no "s" or
// "e" keys) still parse, with zero trace context; and traced packets parse
// on any receiver, trace fields populated.
func TestWireOldGoldenPacketsParse(t *testing.T) {
	var m wireMsg
	if err := json.Unmarshal([]byte(`{"v":1,"t":"q","f":2,"n":7}`), &m); err != nil {
		t.Fatalf("old query failed to parse: %v", err)
	}
	if m.Span != 0 || m.Epoch != 0 {
		t.Errorf("old packet sprouted trace context: span=%d epoch=%d", m.Span, m.Epoch)
	}
	if m.V != 1 || m.Type != "q" || m.From != 2 || m.Nonce != 7 {
		t.Errorf("old packet misparsed: %+v", m)
	}
	var tm wireMsg
	if err := json.Unmarshal([]byte(`{"v":1,"t":"q","f":2,"n":7,"s":99,"e":5}`), &tm); err != nil {
		t.Fatalf("traced query failed to parse: %v", err)
	}
	if tm.Span != 99 || tm.Epoch != 5 {
		t.Errorf("trace context lost in parse: span=%d epoch=%d", tm.Span, tm.Epoch)
	}
}

// TestWireTraceContextOutsideMAC pins the authentication boundary: the HMAC
// covers the protocol fields only, so adding (or forging) trace context
// neither changes a message's tag nor invalidates it. Trace context is
// observability metadata — a forger can pollute telemetry, never clocks.
func TestWireTraceContextOutsideMAC(t *testing.T) {
	key := []byte("wire-mac-key")
	plain := wireMsg{V: 1, Type: "q", From: 2, Nonce: 7}
	traced := wireMsg{V: 1, Type: "q", From: 2, Nonce: 7, Span: 99, Epoch: 5}
	if !bytes.Equal(plain.mac(key), traced.mac(key)) {
		t.Error("trace context changed the MAC; traced and untraced nodes cannot interoperate under one key")
	}
	forged := traced
	forged.Span = 0xdeadbeef
	if !bytes.Equal(traced.mac(key), forged.mac(key)) {
		t.Error("span id is MAC-covered; it must not be (observability metadata only)")
	}
	// The protocol fields are covered.
	other := plain
	other.Nonce = 8
	if bytes.Equal(plain.mac(key), other.mac(key)) {
		t.Error("nonce not covered by MAC")
	}
}

// TestMarshalReadingGolden pins the GET /read body byte-for-byte — it is a
// public wire surface consumed outside this repository.
func TestMarshalReadingGolden(t *testing.T) {
	r := Reading{
		Time:        time.Unix(1735689600, 123456789).UTC(),
		Uncertainty: 250 * time.Microsecond,
		Epoch:       42,
	}
	data, err := marshalReading(r)
	if err != nil {
		t.Fatal(err)
	}
	golden := `{"time_unix_nano":1735689600123456789,"time":"2025-01-01T00:00:00.123456789Z","uncertainty_ns":250000,"epoch":42}`
	if string(data) != golden {
		t.Errorf("/read body:\n got %s\nwant %s", data, golden)
	}
}

func getJSON(t *testing.T, addr, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type %q, want application/json", path, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: parsing %q: %v", path, body, err)
	}
}

// TestTelemetryEndpoints drives a live cluster and checks the three fleet
// endpoints against their contracts: /statusz self-consistent and complete,
// /read's field set exactly the pinned schema, /spanz a trace-parseable
// array — and, the heart of the telemetry plane, estimate spans on one node
// joined by id to reply spans recorded on another.
func TestTelemetryEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster test")
	}
	c, err := NewCluster(ClusterConfig{
		N: 3, F: 0,
		SyncInt:    100 * time.Millisecond,
		MaxWait:    50 * time.Millisecond,
		WayOff:     time.Second,
		Offsets:    []time.Duration{3 * time.Millisecond, -2 * time.Millisecond},
		Metrics:    true,
		SpanBuffer: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if err := c.WaitConverged(10*time.Millisecond, 2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	addr := c.MetricsAddr(0)

	var st Statusz
	getJSON(t, addr, "/statusz", &st)
	if st.ID != 0 {
		t.Errorf("statusz id = %d, want 0", st.ID)
	}
	if st.Epoch == 0 || st.Syncs == 0 {
		t.Errorf("statusz epoch=%d syncs=%d after converged rounds", st.Epoch, st.Syncs)
	}
	if got := float64(st.TimeUnixNano-st.WallUnixNano) / 1e9; got-st.OffsetSec > 1e-3 || st.OffsetSec-got > 1e-3 {
		t.Errorf("offset_sec %v inconsistent with time−wall %v", st.OffsetSec, got)
	}
	if st.UncertaintySec <= 0 {
		t.Errorf("uncertainty_sec = %v, want positive", st.UncertaintySec)
	}
	if len(st.Peers) != 2 {
		t.Fatalf("statusz peers = %+v, want 2 entries", st.Peers)
	}
	for _, p := range st.Peers {
		if p.Dark || p.Replies == 0 {
			t.Errorf("peer %d unhealthy on a loopback cluster: %+v", p.ID, p)
		}
	}
	if st.LastRound == nil {
		t.Error("statusz last_round missing after completed rounds")
	} else if st.LastRound.AgeSec < 0 || st.LastRound.AgeSec > 60 {
		t.Errorf("last_round age %v implausible", st.LastRound.AgeSec)
	}

	// /read: the body must carry exactly the pinned schema, no more keys, and
	// a reading consistent with the node's own Read().
	var read map[string]json.RawMessage
	getJSON(t, addr, "/read", &read)
	for _, k := range []string{"time_unix_nano", "time", "uncertainty_ns", "epoch"} {
		if _, ok := read[k]; !ok {
			t.Errorf("/read body missing %q: %v", k, read)
		}
	}
	if len(read) != 4 {
		t.Errorf("/read body has %d keys, want exactly 4: %v", len(read), read)
	}
	var nanos int64
	if err := json.Unmarshal(read["time_unix_nano"], &nanos); err != nil {
		t.Fatal(err)
	}
	if diff := time.Duration(c.Node(0).Read().Time.UnixNano() - nanos); diff < -time.Second || diff > time.Second {
		t.Errorf("/read time %d is %v away from a live Read()", nanos, diff)
	}

	// /spanz on every node, and the cross-node join: some estimate span on
	// node i must have a reply span with the same id on the peer it measured.
	spansOf := make([][]trace.Event, 3)
	for i := 0; i < 3; i++ {
		resp, err := http.Get("http://" + c.MetricsAddr(i) + "/spanz")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if spansOf[i], err = trace.ReadJSON(body); err != nil {
			t.Fatalf("node %d /spanz unparseable: %v", i, err)
		}
	}
	type joinKey struct {
		origin int
		id     uint64
	}
	replies := make(map[joinKey]bool)
	for i, spans := range spansOf {
		for _, e := range spans {
			if e.Name == "reply" {
				if e.Node != i {
					t.Errorf("node %d ring holds node %d's reply span", i, e.Node)
				}
				replies[joinKey{origin: int(e.Field("origin")), id: e.Span}] = true
			}
		}
	}
	joined, completed := 0, 0
	for i, spans := range spansOf {
		for _, e := range spans {
			if e.Name == "estimate" && e.Field("ok") == 1 {
				completed++
				if replies[joinKey{origin: i, id: e.Span}] {
					joined++
				}
			}
		}
	}
	if completed == 0 {
		t.Fatal("no completed estimate spans recorded")
	}
	// The last in-flight exchanges may straddle the scrape; near-total join
	// is the contract.
	if frac := float64(joined) / float64(completed); frac < 0.9 {
		t.Errorf("cross-node join: %d/%d estimate spans found their reply (%.2f), want >= 0.9",
			joined, completed, frac)
	}

	// Fleet endpoints exist on every node's mux.
	for i := 0; i < 3; i++ {
		var sti Statusz
		getJSON(t, c.MetricsAddr(i), "/statusz", &sti)
		if sti.ID != i {
			t.Errorf("node %d serves statusz id %d", i, sti.ID)
		}
	}
}
