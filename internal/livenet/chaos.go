package livenet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/check"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

// This file is the chaos harness: it stands up a whole livenet cluster in
// one process on a MemNetwork, wraps every endpoint in a FaultTransport
// driven by one seeded adversary.NetSchedule, and runs the Theorem 5 online
// checker (internal/check) against the live nodes — the same checker the
// simulator uses, pointed at real goroutines instead of simulated clocks.
//
// Time runs compressed: the schedule, the protocol intervals and the checker
// bounds are all in virtual seconds, and Scale says how much wall time one
// virtual second takes (default 25ms, so a 60-virtual-second campaign is
// 1.5s of wall clock). Structured fault windows are exact in virtual time
// and ambient packet fates are pure functions of (seed, route, payload), so
// a chaos run's verdict is reproducible from its seed even though goroutine
// interleaving is not.

// ChaosConfig parameterizes one chaos campaign. All durations and instants
// without a time.Duration type are virtual (simtime units).
type ChaosConfig struct {
	N, F int
	Seed int64 // feeds the fault transports and the memory fabric

	// Schedule is the chaos actually injected into the transports (and the
	// crash-restart clock scrambles applied to nodes).
	Schedule adversary.NetSchedule

	// Declared, when non-nil, is the schedule the checker judges the run
	// against instead of Schedule. The normal case leaves it nil: the checker
	// knows exactly what was injected, and the run must satisfy Theorem 5.
	// An over-budget experiment declares less than it injects — the checker
	// then holds the cluster to guarantees the adversary actually broke, and
	// must report violations (that the harness can detect its own
	// over-budget runs is itself a tested property).
	Declared *adversary.NetSchedule

	// Params carries the analysis constants (Rho, Delta, Theta, SyncInt,
	// MaxWait) in virtual units; N and F are overwritten from this config.
	Params analysis.Params

	// Horizon is the virtual length of the run.
	Horizon simtime.Duration

	// Scale is the wall duration of one virtual second (default 25ms). Keep
	// it large enough that scheduler jitter stays well below the virtual δ.
	Scale time.Duration

	// Offsets are the nodes' initial clock errors (virtual; missing entries
	// are zero).
	Offsets []simtime.Duration

	// Delay optionally gives the memory fabric a link-latency model (virtual
	// seconds, scaled like everything else). Nil delivers immediately.
	Delay network.DelayModel

	// Key enables HMAC authentication inside the cluster.
	Key []byte

	// Retry and DarkAfter are passed through to every node.
	Retry     RetryConfig
	DarkAfter int

	// CheckSlack multiplies every checked bound (0 means exact bounds).
	CheckSlack float64

	// SkipBefore overrides the derived warm-up cutoff when positive.
	SkipBefore simtime.Time

	// Observer, when non-nil, additionally receives every node's event
	// stream (the checker is attached internally either way).
	Observer *obs.Observer

	// SpanSink, when non-nil, receives every node's causal spans (rounds,
	// estimates, readings) and also gets the plain event stream if it
	// implements obs.Sink — enough for internal/conformance to refine the
	// run against the abstract spec without a JSONL round-trip. Attaching it
	// enables span emission cluster-wide.
	SpanSink obs.SpanSink

	Logf func(format string, args ...any)
}

// ChaosResult is the outcome of one campaign.
type ChaosResult struct {
	Violations []check.Violation // Theorem 5 breaches, detection order
	Dropped    int               // breaches beyond the checker's record cap
	Bounds     analysis.Bounds   // the bounds the run was held to (virtual)
	SkipBefore simtime.Time      // warm-up cutoff used
	Syncs      []int             // per-node completed Sync executions
	Nodes      []*obs.Recorder   // per-node protocol counters
	Faults     *obs.Recorder     // injected-fault counters, cluster-wide
}

// Err returns the first violation as an error, or nil for a clean run.
func (r *ChaosResult) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("livenet: chaos run violated %s", r.Violations[0])
}

// liveBias adapts a running node to check.BiasSource: its bias at any
// queried instant is the node's measurable offset from the host clock,
// rescaled to virtual seconds. The query instant is ignored — live clocks
// can only be read "now" — which is exactly how the checker uses it: every
// check happens at the instant its triggering event arrives.
type liveBias struct {
	node  *Node
	scale time.Duration
}

func (b liveBias) Bias(simtime.Time) simtime.Duration {
	return simtime.Duration(b.node.Offset().Seconds() / b.scale.Seconds())
}

// chaosClock maps between wall and virtual time for one run.
type chaosClock struct {
	start time.Time
	scale time.Duration
}

func (c chaosClock) virt(wall time.Time) simtime.Time {
	return simtime.Time(wall.Sub(c.start).Seconds() / c.scale.Seconds())
}

func (c chaosClock) wall(v simtime.Time) time.Time {
	return c.start.Add(time.Duration(float64(v) * float64(c.scale)))
}

func (c chaosClock) wallDur(v simtime.Duration) time.Duration {
	return time.Duration(float64(v) * float64(c.scale))
}

// RunChaos executes one chaos campaign to completion and reports the
// checker's verdict. It blocks for Horizon·Scale of wall time.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("livenet: chaos needs at least one node, got %d", cfg.N)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("livenet: non-positive chaos horizon %v", cfg.Horizon)
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 25 * time.Millisecond
	}
	p := cfg.Params
	p.N, p.F = cfg.N, cfg.F
	bounds, err := analysis.Derive(p)
	if err != nil {
		return nil, fmt.Errorf("livenet: chaos parameters: %w", err)
	}
	declared := cfg.Schedule
	if cfg.Declared != nil {
		declared = *cfg.Declared
	}
	if err := declared.Validate(cfg.N, cfg.F, p.Theta); err != nil {
		return nil, fmt.Errorf("livenet: declared schedule: %w", err)
	}

	skip := cfg.SkipBefore
	if skip <= 0 {
		skip = warmupCutoff(p, bounds, cfg.Offsets)
	}

	// One observer serves the whole cluster: livenet stamps every event with
	// its node id, and the checker keys off exactly that.
	observer := obs.NewObserver()
	if cfg.Observer != nil {
		observer.AddSink(obs.SinkFunc(cfg.Observer.Emit))
	}
	if cfg.SpanSink != nil {
		observer.AddSpanSink(cfg.SpanSink)
		if sink, ok := cfg.SpanSink.(obs.Sink); ok {
			observer.AddSink(sink)
		}
	}

	faultRec := obs.NewRecorder()
	mn := NewMemNetwork(MemNetworkConfig{Seed: cfg.Seed, Delay: cfg.Delay, Scale: scale})
	nodes := make([]*Node, cfg.N)
	fts := make([]*FaultTransport, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ft := NewFaultTransport(mn.Transport(i), FaultConfig{
			Seed:     cfg.Seed,
			Node:     i,
			Schedule: cfg.Schedule,
			Scale:    scale,
			Rec:      faultRec,
			Logf:     cfg.Logf,
		})
		fts[i] = ft
		peers := make(map[int]string, cfg.N-1)
		for j := 0; j < cfg.N; j++ {
			if j != i {
				peers[j] = MemAddr(j)
			}
		}
		var off simtime.Duration
		if i < len(cfg.Offsets) {
			off = cfg.Offsets[i]
		}
		node, err := New(Config{
			ID:        i,
			F:         cfg.F,
			Peers:     peers,
			SyncInt:   time.Duration(float64(p.SyncInt) * float64(scale)),
			MaxWait:   time.Duration(float64(p.MaxWait) * float64(scale)),
			WayOff:    time.Duration(float64(bounds.WayOff) * float64(scale)),
			Key:       cfg.Key,
			Transport: ft,
			Retry:     cfg.Retry,
			DarkAfter: cfg.DarkAfter,
			SimOffset: time.Duration(float64(off) * float64(scale)),
			Ops:       OpsConfig{Observer: observer, Logf: cfg.Logf},
		})
		if err != nil {
			for _, prev := range nodes {
				if prev != nil {
					prev.tr.Close()
				}
			}
			return nil, err
		}
		nodes[i] = node
	}
	biases := make([]check.BiasSource, cfg.N)
	for i, node := range nodes {
		biases[i] = liveBias{node: node, scale: scale}
	}
	checker := check.New(check.Config{
		Clocks:     biases,
		Schedule:   declared.Corruptions(),
		Bounds:     bounds,
		Theta:      p.Theta,
		SkipBefore: skip,
		Slack:      cfg.CheckSlack,
	})

	// The checker assumes single-threaded use; a live cluster emits from many
	// goroutines and recovery checkpoints fire on timers, so every entry into
	// it is serialized here. closed stops late timers from touching dead
	// state after the run returns.
	var (
		checkMu sync.Mutex
		closed  bool
	)

	// Rebase virtual time 0 to "now": the fault windows, the checker's event
	// timestamps, the recovery checkpoints and the crash scrambles all hang
	// off this one instant.
	clk := chaosClock{start: time.Now(), scale: scale}
	for _, ft := range fts {
		ft.SetStart(clk.start)
	}

	// Feed the checker from the cluster's event stream, translated from wall
	// to virtual units (At: Unix seconds → virtual instant; delta: wall
	// seconds → virtual seconds).
	observer.AddSink(obs.SinkFunc(func(e obs.Event) {
		if e.Kind != obs.KindRound {
			return
		}
		at := clk.virt(time.Unix(0, int64(e.At*1e9)))
		fields := map[string]float64{"delta": e.Fields["delta"] / scale.Seconds()}
		checkMu.Lock()
		if !closed {
			checker.Emit(obs.Event{At: float64(at), Kind: e.Kind, Node: e.Node, Fields: fields})
		}
		checkMu.Unlock()
	}))

	// Recovery checkpoints run on wall timers at the scaled virtual instants,
	// under the same serialization as the event feed.
	var timers []*time.Timer
	var timerMu sync.Mutex
	schedule := func(v simtime.Time, fn func()) {
		if simtime.Duration(v) > cfg.Horizon {
			return // past the run's end; nothing left to measure
		}
		d := time.Until(clk.wall(v))
		if d < 0 {
			d = 0
		}
		t := time.AfterFunc(d, func() {
			checkMu.Lock()
			if !closed {
				fn()
			}
			checkMu.Unlock()
		})
		timerMu.Lock()
		timers = append(timers, t)
		timerMu.Unlock()
	}
	checker.AttachScheduler(check.SchedulerFunc(schedule))

	// Crash restarts lose clock state: at each crash window's start the
	// victims' clocks take the schedule's Scramble error, which the WayOff
	// recovery branch must then pull back per Lemma 7(iii).
	for _, f := range cfg.Schedule.Faults {
		if f.Kind != adversary.FaultCrash || f.Scramble == 0 {
			continue
		}
		f := f
		for _, victim := range f.Nodes {
			node := nodes[victim]
			scramble := clk.wallDur(f.Scramble)
			schedule(f.From, func() { node.InjectOffset(scramble) })
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	runErrs := make([]error, cfg.N)
	for i, node := range nodes {
		i, node := i, node
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
				runErrs[i] = err
			}
		}()
	}

	horizon := clk.wallDur(cfg.Horizon)
	select {
	case <-time.After(horizon):
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	checkMu.Lock()
	closed = true
	checkMu.Unlock()
	timerMu.Lock()
	for _, t := range timers {
		t.Stop()
	}
	timerMu.Unlock()
	for i, err := range runErrs {
		if err != nil {
			return nil, fmt.Errorf("livenet: chaos node %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &ChaosResult{
		Violations: checker.Violations(),
		Dropped:    checker.Dropped(),
		Bounds:     bounds,
		SkipBefore: skip,
		Faults:     faultRec,
	}
	for _, node := range nodes {
		res.Syncs = append(res.Syncs, node.Syncs())
		res.Nodes = append(res.Nodes, node.Metrics())
	}
	return res, nil
}

// warmupCutoff mirrors the simulator's warm-up allowance: from an initial
// spread the cluster halves its way into the ε-scale envelope, so grant
// 3 + ⌈log₂(spread/ε)⌉ Sync intervals before the guarantees are enforced.
func warmupCutoff(p analysis.Params, bounds analysis.Bounds, offsets []simtime.Duration) simtime.Time {
	lo, hi := 0.0, 0.0
	for _, o := range offsets {
		lo = math.Min(lo, float64(o))
		hi = math.Max(hi, float64(o))
	}
	warm := 3.0
	if spread := hi - lo; spread > float64(bounds.Eps) && bounds.Eps > 0 {
		warm += math.Ceil(math.Log2(spread / float64(bounds.Eps)))
	}
	return simtime.Time(warm * float64(p.SyncInt))
}
