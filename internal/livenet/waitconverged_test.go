package livenet

import (
	"strings"
	"testing"
	"time"
)

// waitCluster is a small running cluster for the WaitConverged contract
// tests; the long SyncInt keeps sync counts low so unreachable minSyncs
// thresholds stay unreachable for the whole test.
func waitCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		N:       4,
		F:       1,
		SyncInt: 100 * time.Millisecond,
		MaxWait: 50 * time.Millisecond,
		WayOff:  time.Second,
		Offsets: []time.Duration{-20 * time.Millisecond, 0, 10 * time.Millisecond, 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		if err := c.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return c
}

// TestWaitConvergedDeadlinePrompt: an unreachable goal must return promptly
// when the deadline timer fires — within one polling tick of the timeout,
// not after an extra poll cycle or a spin — and the error must report the
// spread it gave up at.
func TestWaitConvergedDeadlinePrompt(t *testing.T) {
	c := waitCluster(t)
	timeout := 300 * time.Millisecond
	start := time.Now()
	err := c.WaitConverged(time.Nanosecond, 1<<30, timeout) // spread goal and sync goal both unreachable
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("unreachable goal reported convergence")
	}
	if !strings.Contains(err.Error(), "not converged") || !strings.Contains(err.Error(), "spread") {
		t.Errorf("deadline error missing diagnosis: %v", err)
	}
	if elapsed < timeout {
		t.Errorf("returned %v before the %v deadline", elapsed, timeout)
	}
	// One 50 ms polling tick plus generous scheduler slack.
	if elapsed > timeout+500*time.Millisecond {
		t.Errorf("deadline overshot: %v for a %v timeout", elapsed, timeout)
	}
}

// TestWaitConvergedReturnsMidWait: a goal the cluster reaches while the wait
// is parked must be noticed by the polling ticker well before the (long)
// deadline expires.
func TestWaitConvergedReturnsMidWait(t *testing.T) {
	c := waitCluster(t)
	start := time.Now()
	if err := c.WaitConverged(15*time.Millisecond, 2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("convergence noticed only after %v of a 30s deadline", elapsed)
	}
	for i, n := range c.Nodes() {
		if n.Syncs() < 2 {
			t.Errorf("node %d returned converged with %d < 2 syncs", i, n.Syncs())
		}
	}
}

// TestWaitConvergedImmediate: a goal that already holds (zero syncs needed,
// huge tolerance) returns on the first check without waiting for a tick.
func TestWaitConvergedImmediate(t *testing.T) {
	c := waitCluster(t)
	start := time.Now()
	if err := c.WaitConverged(time.Hour, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("already-satisfied wait took %v", elapsed)
	}
}

// TestWaitConvergedConcurrent: several goroutines waiting on the same
// cluster — the promotion path metrics_test and user code follow — must all
// return without racing on the nodes (the -race build of this test is the
// real assertion).
func TestWaitConvergedConcurrent(t *testing.T) {
	c := waitCluster(t)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- c.WaitConverged(20*time.Millisecond, 1, 20*time.Second) }()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
}
