//go:build race

package livenet

import "time"

// chaosTestScale is the wall duration of one virtual second in the chaos
// tests. Race instrumentation slows the runtime several-fold and adds
// scheduling jitter, so the compressed-time margins (MaxWait, the dark-peer
// grace, recovery checkpoints) get 4× the wall headroom. Verdicts are
// unchanged: the schedules, parameters and bounds all live in virtual time.
const chaosTestScale = 100 * time.Millisecond
