package livenet

import (
	"testing"
	"time"
)

func TestClusterConvergesAndStops(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N:       4,
		F:       1,
		SyncInt: 200 * time.Millisecond,
		MaxWait: 100 * time.Millisecond,
		WayOff:  time.Second,
		Key:     []byte("cluster-key"),
		Offsets: []time.Duration{-70 * time.Millisecond, 0, 40 * time.Millisecond, 90 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.WaitConverged(20*time.Millisecond, 3, 10*time.Second); err != nil {
		c.Stop()
		t.Fatal(err)
	}
	if len(c.Nodes()) != 4 || c.Node(0) == nil {
		t.Fatal("accessors broken")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop is idempotent.
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 0}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{N: 3, F: 1,
		SyncInt: time.Second, MaxWait: 100 * time.Millisecond, WayOff: time.Second}); err == nil {
		t.Fatal("n < 3f+1 accepted")
	}
	if _, err := NewCluster(ClusterConfig{N: 2, F: 0, SyncInt: 0}); err == nil {
		t.Fatal("bad intervals accepted")
	}
}

func TestClusterDoubleStartPanics(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 1, F: 0, SyncInt: time.Second, MaxWait: 100 * time.Millisecond, WayOff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("double start must panic")
		}
	}()
	c.Start()
}
