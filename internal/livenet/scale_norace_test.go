//go:build !race

package livenet

import "time"

// chaosTestScale is the wall duration of one virtual second in the chaos
// tests; see scale_race_test.go for the race-instrumented value.
const chaosTestScale = 25 * time.Millisecond
