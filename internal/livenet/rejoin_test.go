package livenet

import (
	"context"
	"math"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/obs"
)

// TestCrashRecoveryRejoin drives one node through the full crash/recovery
// arc over the memory transport: a 10-virtual-second blackout (long enough
// for its peers to write it off as dark), a restart with a clock scrambled
// far past WayOff, and the Lemma 7(iii) rejoin — the recovery pull must
// cover at least half the scramble in the node's first post-restart rounds
// (Claim 8(iii) demands halving per interval T; the protocol actually does
// much better), every Theorem 5 checkpoint must hold, and the peer-health
// machinery must record the dark/bright round trip.
func TestCrashRecoveryRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign needs ~1.2s of wall time")
	}
	const victim = 4
	const scramble = 20.0 // virtual seconds; WayOff ≈ 8.5
	schedule := adversary.NetSchedule{
		Faults: []adversary.NetFault{{
			Kind:     adversary.FaultCrash,
			Nodes:    []int{victim},
			From:     12,
			To:       22, // 5 sync intervals: DarkAfter=3 must trip
			Scramble: scramble,
		}},
	}
	params := chaosParams()
	if err := schedule.Validate(7, 2, params.Theta); err != nil {
		t.Fatalf("test schedule must be f-limited: %v", err)
	}

	events := obs.NewRing(8192)
	observer := obs.NewObserver(events)
	res, err := RunChaos(context.Background(), ChaosConfig{
		N: 7, F: 2,
		Seed:     99,
		Schedule: schedule,
		Params:   params,
		Horizon:  48,
		Scale:    chaosTestScale,
		Offsets:  chaosOffsets,
		Key:      []byte("rejoin"),
		Observer: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := res.Err(); verr != nil {
		t.Fatalf("recovery violated Theorem 5: %v", verr)
	}

	// The victim must have rejoined through the WayOff branch.
	if jumps := res.Nodes[victim].WayOffJumps.Load(); jumps == 0 {
		t.Error("victim recorded no WayOff jumps; it rejoined without the recovery branch?")
	}

	// Its peers must have marked it dark during the blackout and bright
	// again after — graceful degradation, then re-admission.
	var rejoins int64
	for i, rec := range res.Nodes {
		if i == victim {
			continue
		}
		rejoins += rec.PeerRejoins.Load()
		if rec.PeersDark.Load() != 0 {
			t.Errorf("node %d still counts %v dark peers after recovery", i, rec.PeersDark.Load())
		}
	}
	if rejoins == 0 {
		t.Error("no peer recorded the victim's rejoin; dark-marking never engaged")
	}

	// Event-stream cross-check: a peerdark for the victim, then a peerbright,
	// and a WayOff round whose pull covers at least half the scramble.
	// (Event deltas are in wall seconds; rescale the scramble to compare.)
	wallScramble := scramble * chaosTestScale.Seconds()
	var sawDark, sawBright, sawPull bool
	for _, e := range events.Events() {
		switch e.Kind {
		case obs.KindPeerDark:
			if int(e.Fields["peer"]) == victim {
				sawDark = true
			}
		case obs.KindPeerBright:
			if sawDark && int(e.Fields["peer"]) == victim {
				sawBright = true
			}
		case obs.KindRound:
			if e.Node == victim && e.Fields["wayoff"] == 1 &&
				math.Abs(e.Fields["delta"]) >= wallScramble/2 {
				sawPull = true
			}
		}
	}
	if !sawDark {
		t.Error("no peerdark event for the victim")
	}
	if !sawBright {
		t.Error("no peerbright event for the victim after it went dark")
	}
	if !sawPull {
		t.Errorf("no WayOff round pulled the victim at least %.0fms back toward the good envelope", wallScramble/2*1e3)
	}
}
