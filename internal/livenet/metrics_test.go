package livenet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"clocksync/internal/obs"
)

// scrape fetches a /metrics page and parses it into name{labels} → value.
func scrape(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// TestClusterServesMetrics is the ISSUE acceptance check: a loopback
// cluster with metrics enabled serves /metrics with non-zero
// clocksync_sync_rounds_total and clocksync_messages_received_total, and the
// counters are monotonic across scrapes while sync rounds execute.
func TestClusterServesMetrics(t *testing.T) {
	ring := obs.NewRing(4096)
	c, err := NewCluster(ClusterConfig{
		N: 4, F: 1,
		SyncInt:  150 * time.Millisecond,
		MaxWait:  60 * time.Millisecond,
		WayOff:   time.Second,
		Offsets:  []time.Duration{-40 * time.Millisecond, 20 * time.Millisecond},
		Metrics:  true,
		Observer: obs.NewObserver(ring),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// Wait until every node has completed a few rounds.
	if err := c.WaitConverged(time.Hour, 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	addr := c.MetricsAddr(0)
	if addr == "" {
		t.Fatal("metrics endpoint not bound after Start")
	}
	first := scrape(t, addr)
	rounds := fmt.Sprintf("clocksync_sync_rounds_total{node=%q}", "0")
	received := fmt.Sprintf("clocksync_messages_received_total{node=%q}", "0")
	if first[rounds] == 0 {
		t.Errorf("%s is zero after converged rounds:\n%v", rounds, first)
	}
	if first[received] == 0 {
		t.Errorf("%s is zero on a loopback cluster:\n%v", received, first)
	}

	// Counter monotonicity across a sync interval.
	n0 := c.Node(0)
	target := n0.Syncs() + 2
	deadline := time.Now().Add(10 * time.Second)
	for n0.Syncs() < target && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	second := scrape(t, addr)
	for _, name := range []string{rounds, received,
		fmt.Sprintf("clocksync_messages_sent_total{node=%q}", "0")} {
		if second[name] < first[name] {
			t.Errorf("%s went backwards: %g -> %g", name, first[name], second[name])
		}
	}
	if second[rounds] <= first[rounds] {
		t.Errorf("%s did not advance while rounds executed: %g -> %g",
			rounds, first[rounds], second[rounds])
	}

	// The shared observer saw round events from the cluster.
	sawRound := false
	for _, e := range ring.Events() {
		if e.Kind == obs.KindRound {
			sawRound = true
			break
		}
	}
	if !sawRound {
		t.Error("cluster observer captured no round events")
	}

	// Every node serves its own endpoint.
	for i := 0; i < 4; i++ {
		if c.MetricsAddr(i) == "" {
			t.Errorf("node %d has no metrics endpoint", i)
		}
	}
}

// TestNodeMetricsCountAuthFailures checks the auth path increments the
// HMAC-failure counter: a keyed node receiving an unauthenticated datagram
// drops and counts it.
func TestNodeMetricsCountAuthFailures(t *testing.T) {
	nodes, _ := startCluster(t, 4, 1, nil, []byte("secret"))
	// Speak the wire protocol without the key directly at node 0.
	dst, err := net.ResolveUDPAddr("udp", nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte(`{"v":1,"t":"q","f":9,"n":1}`)
	for i := 0; i < 5; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].Metrics().AuthFailures.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := nodes[0].Metrics().AuthFailures.Load(); got == 0 {
		t.Error("unauthenticated datagrams not counted")
	}
}
