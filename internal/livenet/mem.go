package livenet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"clocksync/internal/network"
)

// MemAddr returns the memory-transport address of node id ("mem://<id>").
func MemAddr(id int) string { return fmt.Sprintf("mem://%d", id) }

// memAddrID parses a memory address back to its node id (-1 when foreign).
func memAddrID(addr string) int {
	s, ok := strings.CutPrefix(addr, "mem://")
	if !ok {
		return -1
	}
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 {
		return -1
	}
	return id
}

// MemNetwork is an in-process datagram fabric: every endpoint is a
// MemTransport registered under a "mem://<id>" address, and delivery is a
// buffered channel hop — optionally through a simulated link latency drawn
// from a network.DelayModel, the same models the simulator uses. The
// per-packet latency is derived by hashing the seed with the packet bytes,
// so a seeded MemNetwork inflicts reproducible delays independent of
// goroutine interleaving. Endpoint inboxes are bounded; like UDP, a full
// inbox drops the datagram.
type MemNetwork struct {
	seed  int64
	delay network.DelayModel
	scale time.Duration // wall time per simtime second for delay samples

	mu  sync.Mutex
	eps sync.Map // addr string → *MemTransport; lock-free on the per-packet read path
}

// MemNetworkConfig tunes a MemNetwork.
type MemNetworkConfig struct {
	Seed int64
	// Delay, when non-nil, samples a one-way link latency per packet
	// (from/to are the endpoints' node ids). Nil delivers immediately.
	Delay network.DelayModel
	// Scale converts the delay model's simtime seconds into wall time
	// (defaults to 1s: simtime seconds are wall seconds).
	Scale time.Duration
}

// NewMemNetwork builds an empty fabric.
func NewMemNetwork(cfg MemNetworkConfig) *MemNetwork {
	scale := cfg.Scale
	if scale <= 0 {
		scale = time.Second
	}
	return &MemNetwork{
		seed:  cfg.Seed,
		delay: cfg.Delay,
		scale: scale,
	}
}

// Transport registers (or returns) the endpoint for node id.
func (mn *MemNetwork) Transport(id int) *MemTransport {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	addr := MemAddr(id)
	if t, ok := mn.eps.Load(addr); ok {
		return t.(*MemTransport)
	}
	t := &MemTransport{
		net:   mn,
		addr:  addr,
		inbox: make(chan memPacket, 512),
		done:  make(chan struct{}),
	}
	mn.eps.Store(addr, t)
	return t
}

func (mn *MemNetwork) lookup(addr string) *MemTransport {
	if t, ok := mn.eps.Load(addr); ok {
		return t.(*MemTransport)
	}
	return nil
}

// deliver routes one datagram, applying the fabric's link latency.
func (mn *MemNetwork) deliver(from, to string, data []byte) {
	if mn.delay == nil {
		mn.inject(from, to, data)
		return
	}
	fromID, toID := memAddrID(from), memAddrID(to)
	rng := rand.New(rand.NewSource(int64(packetHash(mn.seed, from, to, data))))
	d := mn.delay.Sample(fromID, toID, rng)
	wall := time.Duration(float64(d) * float64(mn.scale))
	if wall <= 0 {
		mn.inject(from, to, data)
		return
	}
	time.AfterFunc(wall, func() { mn.inject(from, to, data) })
}

func (mn *MemNetwork) inject(from, to string, data []byte) {
	ep := mn.lookup(to)
	if ep == nil {
		return // unknown destination: dropped, like UDP to a dead port
	}
	// Single-case send with default compiles to a non-blocking channel op —
	// no selectgo on the per-packet path. A full inbox drops the datagram
	// (like UDP); a closed endpoint's inbox is simply never read, which is
	// the same observable outcome.
	select {
	case ep.inbox <- memPacket{from: from, data: data}:
	default: // inbox full: dropped
	}
}

// packetHash derives a deterministic per-packet key from the fabric seed,
// the route and the payload bytes. Fault injection and latency sampling key
// off it so packet fates do not depend on scheduling order.
func packetHash(seed int64, from, to string, data []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	h.Write([]byte{0})
	h.Write(data)
	return h.Sum64()
}

type memPacket struct {
	from string
	data []byte
}

// MemTransport is one endpoint of a MemNetwork.
type MemTransport struct {
	net  *MemNetwork
	addr string

	inbox chan memPacket
	done  chan struct{}
	once  sync.Once
}

// ErrClosed is returned by reads and writes on a closed memory transport.
var ErrClosed = errors.New("livenet: transport closed")

// ReadFrom implements Transport.
func (t *MemTransport) ReadFrom(buf []byte) (int, string, error) {
	// Fast path: a waiting packet is a single non-blocking channel op,
	// skipping selectgo when the endpoint is kept busy.
	select {
	case p := <-t.inbox:
		n := copy(buf, p.data)
		return n, p.from, nil
	default:
	}
	select {
	case p := <-t.inbox:
		n := copy(buf, p.data)
		return n, p.from, nil
	case <-t.done:
		return 0, "", ErrClosed
	}
}

// WriteTo implements Transport. The payload is copied before it crosses the
// fabric, so callers may reuse their buffer.
func (t *MemTransport) WriteTo(data []byte, to string) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	t.net.deliver(t.addr, to, cp)
	return nil
}

// CheckAddr implements addrChecker: memory addresses must parse.
func (t *MemTransport) CheckAddr(addr string) error {
	if memAddrID(addr) < 0 {
		return fmt.Errorf("livenet: bad memory address %q (want mem://<id>)", addr)
	}
	return nil
}

// LocalAddr implements Transport.
func (t *MemTransport) LocalAddr() string { return t.addr }

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
