package livenet

import (
	"encoding/json"
	"net/http"
	"time"

	"clocksync/internal/obs"
)

// The cluster status surface of the fleet telemetry plane. Every node with a
// metrics endpoint additionally serves:
//
//	GET /statusz — one JSON document with everything a fleet aggregator
//	               needs to merge this node into a cluster view: the current
//	               interval-valued reading *paired with the host wall clock
//	               at the same instant* (the seam that lets remote span
//	               timestamps be re-aligned onto the cluster timeline), the
//	               sync epoch, the last round's verdict and the peer-health
//	               map.
//	GET /read    — the node's Reading alone (time, uncertainty, epoch), the
//	               HTTP/JSON counterpart of the binary serve wire for
//	               consumers that want interval-valued time over plain HTTP.
//	GET /spanz   — the node's recent spans (Ops.SpanBuffer ring) as a JSON
//	               array of trace-compatible records, the raw material for
//	               cross-node span joins.
//
// internal/telemetry scrapes all three together with /metrics.

// lastRoundInfo is the retained verdict of the most recent Sync round,
// guarded by Node.mu.
type lastRoundInfo struct {
	at      time.Time
	delta   time.Duration
	failed  int
	wayoff  bool
	skipped bool
	set     bool
}

// StatuszRound is the last completed round's verdict as served on /statusz.
type StatuszRound struct {
	AgeSec   float64 `json:"age_sec"`   // wall seconds since the round finished
	DeltaSec float64 `json:"delta_sec"` // applied adjustment (0 when skipped)
	Failed   int     `json:"failed"`    // peers that did not answer
	WayOff   bool    `json:"wayoff"`    // round took the recovery branch
	Skipped  bool    `json:"skipped"`   // round applied no adjustment
}

// StatuszPeer is one peer's health entry as served on /statusz.
type StatuszPeer struct {
	ID        int     `json:"id"`
	OffsetSec float64 `json:"last_offset_sec"`   // last measured C_peer − C_self
	AgeSec    float64 `json:"last_seen_age_sec"` // −1 before the first reply
	Replies   int     `json:"replies"`
	Failures  int     `json:"failures"`
	Dark      bool    `json:"dark"`
}

// Statusz is the merged-scrape status document served on GET /statusz.
//
// TimeUnixNano and WallUnixNano are taken at the same instant: their
// difference is the node's current correction (disciplined − host clock),
// which is what a fleet aggregator adds to this node's host-wall span
// timestamps to place them on the shared cluster timeline. UncertaintySec
// bounds how far that placement can be off while the node's Theorem 5
// envelope holds.
type Statusz struct {
	ID             int           `json:"id"`
	Epoch          uint64        `json:"epoch"`
	Syncs          int           `json:"syncs"`
	TimeUnixNano   int64         `json:"time_unix_nano"` // disciplined reading
	WallUnixNano   int64         `json:"wall_unix_nano"` // host clock, same instant
	UncertaintySec float64       `json:"uncertainty_sec"`
	OffsetSec      float64       `json:"offset_sec"` // (time − wall) in seconds
	LastAdjustSec  float64       `json:"last_adjust_sec"`
	LastRound      *StatuszRound `json:"last_round,omitempty"`
	Peers          []StatuszPeer `json:"peers"`
}

// Statusz builds the node's current status document.
func (n *Node) Statusz() Statusz {
	now := time.Now()
	r := n.snap.Load().at(now)
	st := n.Status() // peer table snapshot, sorted by id
	out := Statusz{
		ID:             st.ID,
		Epoch:          r.Epoch,
		Syncs:          st.Syncs,
		TimeUnixNano:   r.Time.UnixNano(),
		WallUnixNano:   now.UnixNano(),
		UncertaintySec: r.Uncertainty.Seconds(),
		OffsetSec:      r.Time.Sub(now).Seconds(),
		LastAdjustSec:  st.Last.Seconds(),
		Peers:          make([]StatuszPeer, 0, len(st.Peers)),
	}
	n.mu.Lock()
	lr := n.lastRound
	n.mu.Unlock()
	if lr.set {
		out.LastRound = &StatuszRound{
			AgeSec:   time.Since(lr.at).Seconds(),
			DeltaSec: lr.delta.Seconds(),
			Failed:   lr.failed,
			WayOff:   lr.wayoff,
			Skipped:  lr.skipped,
		}
	}
	for _, p := range st.Peers {
		age := -1.0
		if !p.LastSeen.IsZero() {
			age = time.Since(p.LastSeen).Seconds()
		}
		out.Peers = append(out.Peers, StatuszPeer{
			ID: p.ID, OffsetSec: p.LastOffset.Seconds(), AgeSec: age,
			Replies: p.Replies, Failures: p.Failures, Dark: p.Dark,
		})
	}
	return out
}

// marshalReading renders a Reading as the GET /read response body: the
// best-estimate instant in both machine (Unix nanoseconds) and human
// (RFC 3339) form, the uncertainty half-width in nanoseconds, and the epoch.
// The encoding is pinned by a golden test — it is a public wire surface.
func marshalReading(r Reading) ([]byte, error) {
	return json.Marshal(struct {
		TimeUnixNano  int64  `json:"time_unix_nano"`
		Time          string `json:"time"`
		UncertaintyNS int64  `json:"uncertainty_ns"`
		Epoch         uint64 `json:"epoch"`
	}{
		TimeUnixNano:  r.Time.UnixNano(),
		Time:          r.Time.UTC().Format(time.RFC3339Nano),
		UncertaintyNS: int64(r.Uncertainty),
		Epoch:         r.Epoch,
	})
}

// registerTelemetry adds the fleet-telemetry endpoints to the node's metrics
// mux. ServeMetrics calls it; the handlers are safe from any goroutine.
func (n *Node) registerTelemetry(mux *http.ServeMux) {
	writeJSON := func(w http.ResponseWriter, data []byte, err error) {
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	}
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		data, err := json.Marshal(n.Statusz())
		writeJSON(w, data, err)
	})
	mux.HandleFunc("/read", func(w http.ResponseWriter, r *http.Request) {
		data, err := marshalReading(n.Read())
		writeJSON(w, data, err)
	})
	mux.HandleFunc("/spanz", func(w http.ResponseWriter, r *http.Request) {
		var spans []obs.Span
		if n.spanRing != nil {
			spans = n.spanRing.Spans()
		}
		data, err := obs.MarshalSpans(spans)
		writeJSON(w, data, err)
	})
}
