package livenet

import (
	"sync"
	"time"

	"clocksync/internal/adversary"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

// FaultTransport wraps any Transport with deterministic fault injection
// driven by an adversary.NetSchedule — the chaos layer of the live path.
//
// Two classes of fault are injected:
//
//   - Structured windows (crash, partition) from the schedule's Faults,
//     evaluated against the schedule clock: while this endpoint is inside a
//     crash window nothing goes out and everything arriving is discarded;
//     while a partition separates this endpoint from a peer, traffic in the
//     cut direction is dropped. Windows are exact: given the same schedule
//     and start instant, the same messages are cut.
//
//   - Ambient packet chaos (drop, duplicate, reorder, bounded extra delay)
//     from the schedule's Chaos. Each packet's fate is derived by hashing
//     the seed with the route and payload bytes, so a retransmission (new
//     nonce, new bytes) draws a fresh fate while a byte-identical packet
//     always meets the same one, regardless of goroutine interleaving.
//
// The schedule's times are simtime (virtual seconds); Start and Scale map
// them onto the wall clock: virtual instant t is wall instant
// Start + t·Scale. Injected faults are counted on the optional Recorder
// (clocksync_faultnet_*_total).
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu   sync.Mutex
	held *heldPacket // reorder buffer: one packet awaiting its successor
}

type heldPacket struct {
	data  []byte
	to    string
	timer *time.Timer
}

// FaultConfig parameterizes a FaultTransport.
type FaultConfig struct {
	// Seed feeds the per-packet fate hash. The same seed, schedule and
	// traffic reproduce the same drops, duplicates, reorders and delays.
	Seed int64
	// Node is the wrapped endpoint's id (the schedule speaks node ids).
	Node int
	// Schedule is the chaos plan. Structured faults use its windows;
	// ambient chaos uses its Chaos parameters.
	Schedule adversary.NetSchedule
	// Start is the wall instant of virtual time 0. The zero value means
	// "now" at construction.
	Start time.Time
	// Scale is the wall duration of one virtual second (default 1s).
	Scale time.Duration
	// Resolve maps a transport address to a node id for schedule lookups.
	// Nil understands memory addresses ("mem://<id>"); UDP deployments must
	// provide the peer-table inverse.
	Resolve func(addr string) int
	// Rec, when non-nil, counts injected faults.
	Rec *obs.Recorder
	// Logf receives per-fault diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// NewFaultTransport wraps inner with fault injection.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	if cfg.Scale <= 0 {
		cfg.Scale = time.Second
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Now()
	}
	if cfg.Resolve == nil {
		cfg.Resolve = memAddrID
	}
	if cfg.Rec == nil {
		cfg.Rec = obs.NewRecorder() // discard: keeps the counting paths branch-free
	}
	return &FaultTransport{inner: inner, cfg: cfg}
}

// SetRecorder redirects the injection counters to rec, typically the node's
// own recorder so injected faults show up on its /metrics. The counting
// paths read the recorder unsynchronized: call this before traffic flows
// (between livenet.New and Node.Run).
func (t *FaultTransport) SetRecorder(rec *obs.Recorder) {
	if rec != nil {
		t.cfg.Rec = rec
	}
}

// SetStart rebases virtual time 0 to the given wall instant; call it before
// traffic flows when the fabric is built ahead of the run.
func (t *FaultTransport) SetStart(start time.Time) {
	t.mu.Lock()
	t.cfg.Start = start
	t.mu.Unlock()
}

// now returns the current virtual instant on the schedule clock.
func (t *FaultTransport) now() simtime.Time {
	t.mu.Lock()
	start := t.cfg.Start
	t.mu.Unlock()
	return simtime.Time(time.Since(start).Seconds() / t.cfg.Scale.Seconds())
}

func (t *FaultTransport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// count increments a fault counter.
func (t *FaultTransport) count(c *obs.Counter) { c.Inc() }

// WriteTo implements Transport, deciding the packet's fate before it
// reaches the wire.
func (t *FaultTransport) WriteTo(data []byte, to string) error {
	now := t.now()
	if t.cfg.Schedule.CrashedAt(t.cfg.Node, now) {
		t.count(&t.cfg.Rec.FaultCrashDrops)
		return nil // crashed processes transmit nothing; not an error
	}
	toID := t.cfg.Resolve(to)
	if toID >= 0 && t.cfg.Schedule.Blocks(t.cfg.Node, toID, now) {
		t.count(&t.cfg.Rec.FaultPartitionDrops)
		return nil
	}
	chaos := t.cfg.Schedule.Chaos
	if chaos.Zero() {
		return t.inner.WriteTo(data, to)
	}
	// Slice the packet hash into independent uniform draws: one per fault
	// class, plus a delay fraction. splitmix-style remixing keeps the draws
	// decorrelated.
	h := packetHash(t.cfg.Seed, t.inner.LocalAddr(), to, data)
	uDrop, h := unitDraw(h)
	uDup, h := unitDraw(h)
	uReorder, h := unitDraw(h)
	uDelay, _ := unitDraw(h)

	if uDrop < chaos.DropP {
		t.count(&t.cfg.Rec.FaultDrops)
		t.logf("faultnet: dropping %dB to %s", len(data), to)
		return nil
	}
	if uReorder < chaos.ReorderP {
		t.count(&t.cfg.Rec.FaultReorders)
		t.hold(data, to)
		return nil
	}
	if chaos.DelayMax > 0 {
		// Every packet takes a hashed extra delay uniform in [0, DelayMax).
		extra := time.Duration(uDelay * float64(chaos.DelayMax) * float64(t.cfg.Scale))
		if extra > 0 {
			t.count(&t.cfg.Rec.FaultDelays)
			cp := append([]byte(nil), data...)
			time.AfterFunc(extra, func() {
				t.flushHeldBefore(cp, to)
			})
			if uDup < chaos.DupP {
				t.count(&t.cfg.Rec.FaultDups)
				return t.inner.WriteTo(data, to)
			}
			return nil
		}
	}
	err := t.inner.WriteTo(data, to)
	if err == nil && uDup < chaos.DupP {
		t.count(&t.cfg.Rec.FaultDups)
		err = t.inner.WriteTo(data, to)
	}
	t.releaseHeld()
	return err
}

// hold parks a packet in the one-slot reorder buffer; it is released after
// the next packet goes out, or after a flush timeout when traffic stalls
// (a reordered packet must not become a silent drop).
func (t *FaultTransport) hold(data []byte, to string) {
	cp := append([]byte(nil), data...)
	t.mu.Lock()
	prev := t.held
	hp := &heldPacket{data: cp, to: to}
	hp.timer = time.AfterFunc(50*time.Millisecond, func() {
		t.mu.Lock()
		if t.held == hp {
			t.held = nil
		}
		t.mu.Unlock()
		t.inner.WriteTo(cp, to)
	})
	t.held = hp
	t.mu.Unlock()
	if prev != nil && prev.timer.Stop() {
		t.inner.WriteTo(prev.data, prev.to)
	}
}

// releaseHeld sends the parked packet (if any) after its successor.
func (t *FaultTransport) releaseHeld() {
	t.mu.Lock()
	hp := t.held
	t.held = nil
	t.mu.Unlock()
	if hp != nil && hp.timer.Stop() {
		t.inner.WriteTo(hp.data, hp.to)
	}
}

// flushHeldBefore delivers a delayed packet, releasing any parked packet
// first so reordering cannot starve behind a quiet link.
func (t *FaultTransport) flushHeldBefore(data []byte, to string) {
	t.releaseHeld()
	t.inner.WriteTo(data, to)
}

// ReadFrom implements Transport, discarding inbound traffic that a crash or
// partition window says this endpoint must not see.
func (t *FaultTransport) ReadFrom(buf []byte) (int, string, error) {
	for {
		n, from, err := t.inner.ReadFrom(buf)
		if err != nil {
			return n, from, err
		}
		now := t.now()
		if t.cfg.Schedule.CrashedAt(t.cfg.Node, now) {
			t.count(&t.cfg.Rec.FaultCrashDrops)
			continue // crashed: the process isn't there to read
		}
		fromID := t.cfg.Resolve(from)
		if fromID >= 0 && t.cfg.Schedule.Blocks(fromID, t.cfg.Node, now) {
			t.count(&t.cfg.Rec.FaultPartitionDrops)
			continue
		}
		return n, from, nil
	}
}

// unitDraw turns the low bits of h into a uniform [0,1) draw and remixes h
// (splitmix64 finalizer) for the next draw.
func unitDraw(h uint64) (float64, uint64) {
	u := float64(h>>11) / float64(1<<53)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return u, h
}

// LocalAddr implements Transport.
func (t *FaultTransport) LocalAddr() string { return t.inner.LocalAddr() }

// Close implements Transport.
func (t *FaultTransport) Close() error {
	t.mu.Lock()
	if t.held != nil {
		t.held.timer.Stop()
		t.held = nil
	}
	t.mu.Unlock()
	return t.inner.Close()
}

// CheckAddr forwards to the wrapped transport when it vets addresses.
func (t *FaultTransport) CheckAddr(addr string) error {
	if c, ok := t.inner.(addrChecker); ok {
		return c.CheckAddr(addr)
	}
	return nil
}
