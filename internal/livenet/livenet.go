// Package livenet runs the Sync protocol over a real network in real time.
// It is the deployable counterpart of the simulator: each Node owns a
// datagram Transport (UDP in production, an in-process memory fabric in
// tests and chaos runs), answers authenticated time requests, and
// disciplines a local clock with the same convergence function
// (core.Converge) the simulation uses.
//
// Authenticated links (§2.2) are realized with HMAC-SHA256 over a shared
// key; messages that fail authentication are dropped before they reach the
// protocol. For demonstrations, a Node can simulate a hardware offset and
// drift on top of the host clock, so a loopback cluster exhibits the same
// convergence the paper analyzes.
//
// The live path is built to survive the same adversities the analysis
// covers: per-round retransmission with jittered exponential backoff inside
// MaxWait (RetryConfig), peer-health tracking that degrades gracefully to
// the 3f+1 quorum when peers go dark, and WayOff-based re-join after a
// crash — all observable through the obs counters and event stream, and all
// testable deterministically through FaultTransport (see chaos.go).
package livenet

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"clocksync/internal/core"
	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// wireMsg is the on-the-wire JSON message.
//
// Span and Epoch are the compact trace context of the fleet telemetry plane:
// a requester with span tracing enabled stamps each query with the estimate
// span's ID and its sync epoch, and the responder records its half of the
// exchange (a "reply" span) under that same ID, so the two sides join across
// process boundaries (origin = From). Both fields are omitted when tracing
// is off — an untraced node emits wire bytes identical to earlier releases —
// and are ignored by untraced receivers, so the extension is compatible in
// both directions. They are deliberately outside the MAC: trace context is
// observability metadata, never protocol input, and forging it can only
// pollute telemetry, not clocks.
type wireMsg struct {
	V     int    `json:"v"`           // protocol version
	Type  string `json:"t"`           // "q" request | "r" response
	From  int    `json:"f"`           // sender id
	Nonce uint64 `json:"n"`           // request/response pairing
	Clock int64  `json:"c,omitempty"` // responder clock, unix nanoseconds
	MAC   []byte `json:"m,omitempty"` // HMAC-SHA256 tag
	Span  uint64 `json:"s,omitempty"` // trace context: requester's estimate-span ID
	Epoch uint64 `json:"e,omitempty"` // trace context: requester's sync epoch at send
}

const wireVersion = 1

// mac computes the authentication tag over the message's canonical fields.
func (m *wireMsg) mac(key []byte) []byte {
	h := hmac.New(sha256.New, key)
	var buf [8 + 8 + 8 + 2]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(m.From))
	binary.BigEndian.PutUint64(buf[8:], m.Nonce)
	binary.BigEndian.PutUint64(buf[16:], uint64(m.Clock))
	buf[24] = byte(m.V)
	if m.Type == "q" {
		buf[25] = 0
	} else {
		buf[25] = 1
	}
	h.Write(buf[:])
	return h.Sum(nil)
}

// OpsConfig groups a node's operational settings — how it is observed and
// logged — separate from the wire/protocol settings that must agree across a
// cluster. Everything here is per-deployment and changing it never affects
// interoperability.
type OpsConfig struct {
	// MetricsAddr, when non-empty, starts an HTTP listener there when the
	// node Runs, serving GET /metrics (Prometheus text), GET /status (the
	// node's StatusJSON) and the /debug/pprof profiling endpoints. Use
	// "127.0.0.1:0" for an OS-assigned port (read it back via Node.
	// MetricsAddr after Run starts).
	MetricsAddr string

	// Observer receives the node's structured event stream (round, skip,
	// authfail, timeout, peerdark/peerbright events). Nil disables event
	// emission. Counters are always kept, per node, in Node.Metrics — the
	// observer's own Recorder is not written by livenet, so one observer can
	// safely serve a whole cluster's events.
	Observer *obs.Observer

	// SpanBuffer, when positive, keeps the node's most recent spans in an
	// in-memory ring served as JSON on GET /spanz of the metrics endpoint —
	// the surface the fleet telemetry scraper (internal/telemetry, syncmon)
	// joins cross-node spans from. Setting it enables span emission: when
	// Observer is nil a private observer is created for the ring. With a
	// shared multi-node Observer the ring sees every node's spans (the
	// scraper dedupes by (node, span)); per-node observers keep /spanz
	// per-node, which is the fleet-realistic shape.
	SpanBuffer int

	// Logf receives diagnostic output; nil silences the node.
	Logf func(format string, args ...any)
}

// validate checks the operational settings.
func (o OpsConfig) validate() error {
	if o.MetricsAddr != "" {
		if err := validateHostPort("Ops.MetricsAddr", o.MetricsAddr); err != nil {
			return err
		}
	}
	if o.SpanBuffer < 0 {
		return fmt.Errorf("livenet: Ops.SpanBuffer %d is negative (0 disables the /spanz ring)", o.SpanBuffer)
	}
	return nil
}

// Config parameterizes a live node. The first block is the wire/protocol
// configuration every cluster member must agree on for the §3.2 analysis to
// apply; Ops holds the purely operational settings; the Sim* fields
// synthesize a faulty hardware clock for demonstrations.
type Config struct {
	// Wire/protocol settings.
	ID     int
	F      int            // per-period fault budget; the cluster must satisfy n ≥ 3f+1
	Listen string         // UDP listen address, e.g. "127.0.0.1:9000" (ignored when Transport is set)
	Peers  map[int]string // peer id → address (excluding self)

	SyncInt time.Duration // wall time between Sync executions (≥ 2·MaxWait)
	MaxWait time.Duration // estimation timeout
	WayOff  time.Duration // own-clock rejection threshold

	// Key enables HMAC authentication when non-empty. All nodes must share
	// it; without it the "authenticated links" assumption of §2.2 is void.
	Key []byte

	// Transport, when non-nil, carries the node's datagrams instead of a
	// fresh UDP socket on Listen — the seam that lets tests and chaos runs
	// put a whole cluster in one process (MemNetwork) or inject faults
	// (FaultTransport). The node owns the transport and closes it when Run
	// returns.
	Transport Transport

	// Retry configures per-round retransmission with jittered exponential
	// backoff inside MaxWait. The zero value selects the defaults; see
	// RetryConfig.
	Retry RetryConfig

	// DarkAfter is the number of consecutive rounds a peer may fail before
	// it is considered dark: rounds stop waiting for dark peers (beyond a
	// short grace) and degrade gracefully to the answering quorum, while a
	// single probe per round lets the peer rejoin the moment it answers.
	// 0 selects the default (3); negative values are rejected.
	DarkAfter int

	// Serve configures the client-facing time service: a dedicated UDP
	// address or Transport answering 4-timestamp queries (see serve.go).
	// The zero value disables the dedicated endpoint; queries arriving on
	// the sync transport are always answered either way.
	Serve ServeConfig

	// Operational settings (metrics endpoint, event observer, logging).
	Ops OpsConfig

	// SimOffset and SimDriftPPM synthesize a faulty hardware clock on top of
	// the host clock, for demonstrations: the node's clock starts SimOffset
	// away from host time and drifts by SimDriftPPM microseconds per second.
	SimOffset   time.Duration
	SimDriftPPM float64

	// Logf receives diagnostic output; nil silences the node.
	//
	// Deprecated: set Ops.Logf. This field is folded into Ops by Validate
	// and kept only so existing configurations compile.
	Logf func(format string, args ...any)
}

// defaultDarkAfter is the consecutive-failure threshold when DarkAfter is 0.
const defaultDarkAfter = 3

// validateHostPort rejects addresses whose port part is missing, non-numeric
// or outside [0, 65535] (0 is the documented "OS-assigned" value).
func validateHostPort(field, addr string) error {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("livenet: %s %q is not host:port: %v", field, addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("livenet: %s %q has non-numeric port %q", field, addr, port)
	}
	if p < 0 || p > 65535 {
		return fmt.Errorf("livenet: %s %q has port %d outside [0, 65535] (0 = OS-assigned)", field, addr, p)
	}
	return nil
}

// Validate checks the configuration and normalizes deprecated fields,
// returning actionable errors naming the offending field. New calls it;
// callers constructing configs programmatically can call it early to fail
// before sockets are opened.
func (c *Config) Validate() error {
	if c.Logf != nil && c.Ops.Logf == nil {
		c.Ops.Logf = c.Logf
	}
	if c.SyncInt <= 0 {
		return fmt.Errorf("livenet: SyncInt %v must be positive (wall time between Sync executions, e.g. 2s)", c.SyncInt)
	}
	if c.MaxWait <= 0 {
		return fmt.Errorf("livenet: MaxWait %v must be positive (estimation timeout, e.g. 500ms)", c.MaxWait)
	}
	if c.WayOff <= 0 {
		return fmt.Errorf("livenet: WayOff %v must be positive (own-clock rejection threshold; Theorem 5 suggests Δ+ε)", c.WayOff)
	}
	if c.SyncInt < 2*c.MaxWait {
		return fmt.Errorf("livenet: SyncInt %v < 2·MaxWait %v violates §3.2 — raise SyncInt or lower MaxWait", c.SyncInt, c.MaxWait)
	}
	if err := c.Retry.validate(c.MaxWait); err != nil {
		return err
	}
	if c.DarkAfter < 0 {
		return fmt.Errorf("livenet: DarkAfter %d is negative (0 selects the default of %d)", c.DarkAfter, defaultDarkAfter)
	}
	if c.F < 0 {
		return fmt.Errorf("livenet: negative fault budget f=%d", c.F)
	}
	if c.ID < 0 {
		return fmt.Errorf("livenet: negative node id %d", c.ID)
	}
	if c.Transport == nil {
		if c.Listen == "" {
			return errors.New(`livenet: Listen address required (use "127.0.0.1:0" for an OS-assigned port)`)
		}
		if err := validateHostPort("Listen", c.Listen); err != nil {
			return err
		}
		for id, addr := range c.Peers {
			if err := validateHostPort(fmt.Sprintf("peer %d address", id), addr); err != nil {
				return err
			}
		}
	}
	if err := c.Ops.validate(); err != nil {
		return err
	}
	if err := c.Serve.validate(); err != nil {
		return err
	}
	if _, dup := c.Peers[c.ID]; dup {
		return fmt.Errorf("livenet: peer table contains this node's own id %d — list only the other members", c.ID)
	}
	if len(c.Peers) > 0 && len(c.Peers)+1 < 3*c.F+1 {
		return fmt.Errorf("livenet: cluster size n=%d does not satisfy n ≥ 3f+1 for f=%d — add peers or lower F",
			len(c.Peers)+1, c.F)
	}
	return nil
}

// Node is a live Sync participant.
type Node struct {
	cfg     Config
	tr      Transport
	serveTr Transport // dedicated time-serving endpoint (nil unless configured)
	start   time.Time
	rec     *obs.Recorder
	snap    snapPtr // published Reading snapshot (reading.go)

	spanRing *obs.SpanRing // recent spans for /spanz (nil unless Ops.SpanBuffer > 0)

	mu          sync.Mutex
	peers       map[int]string // id → transport address
	adj         time.Duration
	nonce       uint64
	pending     map[uint64]pendingPing
	syncs       int
	last        time.Duration
	lastRound   lastRoundInfo // most recent round verdict (statusz.go)
	peerSeen    map[int]peerStats
	health      map[int]*peerHealth
	metricsAddr string

	wg sync.WaitGroup
}

type peerStats struct {
	lastOffset time.Duration
	lastSeen   time.Time
	replies    int
	failures   int
}

// peerHealth is the degradation state of one peer: consecutive round
// failures, and whether the peer has been written off as dark.
type peerHealth struct {
	consecFails int
	dark        bool
	darkSince   time.Time
}

// PeerStatus is one peer's view in a Status snapshot.
type PeerStatus struct {
	ID         int
	LastOffset time.Duration // last measured C_peer − C_self
	LastSeen   time.Time     // wall time of the last reply
	Replies    int
	Failures   int
	Dark       bool // written off by health tracking; probed but not awaited
}

// Status is a point-in-time snapshot of the node's state.
type Status struct {
	ID     int
	Syncs  int
	Offset time.Duration // current offset from the host clock
	Last   time.Duration // most recent adjustment
	Peers  []PeerStatus  // sorted by id
}

type pendingPing struct {
	peer     int
	attempt  int       // 1-based send attempt within the round
	sentAt   time.Time // local clock reading (Now) at send
	sentUnix float64   // wall time at send (span timebase)
	span     obs.SpanID
	parent   obs.SpanID
	ch       chan<- protocol.Estimate
}

// New opens the node's transport (UDP on cfg.Listen unless cfg.Transport is
// provided) and records its peer table.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		var err error
		tr, err = NewUDPTransport(cfg.Listen)
		if err != nil {
			return nil, err
		}
	}
	var serveTr Transport
	if cfg.Serve.enabled() {
		serveTr = cfg.Serve.Transport
		if serveTr == nil {
			var err error
			serveTr, err = NewUDPTransport(cfg.Serve.Addr)
			if err != nil {
				tr.Close()
				return nil, err
			}
		}
	}
	var spanRing *obs.SpanRing
	if cfg.Ops.SpanBuffer > 0 {
		// The /spanz ring needs span emission: attach it to the configured
		// observer, or to a private one when the caller did not provide any.
		spanRing = obs.NewSpanRing(cfg.Ops.SpanBuffer)
		if cfg.Ops.Observer == nil {
			cfg.Ops.Observer = obs.NewObserver()
		}
		cfg.Ops.Observer.AddSpanSink(spanRing)
	}
	n := &Node{
		cfg:      cfg,
		tr:       tr,
		serveTr:  serveTr,
		spanRing: spanRing,
		peers:    make(map[int]string, len(cfg.Peers)),
		start:    time.Now(),
		// Counters are always per-node (the /metrics endpoint labels them by
		// id); Ops.Observer receives only the event stream.
		rec:      obs.NewRecorder(),
		pending:  make(map[uint64]pendingPing),
		peerSeen: make(map[int]peerStats),
		health:   make(map[int]*peerHealth),
	}
	// Before the first round the node can only vouch for its clock to
	// within WayOff (anything worse would be rejected as its own): publish
	// that as the epoch-0 prior so Read and the serve path work from birth.
	n.publishReading(cfg.WayOff)
	checker, _ := tr.(addrChecker)
	for id, a := range cfg.Peers {
		if checker != nil {
			if err := checker.CheckAddr(a); err != nil {
				n.closeTransports()
				return nil, fmt.Errorf("livenet: peer %d (%s): %w", id, a, err)
			}
		}
		n.peers[id] = a
	}
	return n, nil
}

// closeTransports releases the node's transports (sync and, when
// configured, the dedicated serve endpoint).
func (n *Node) closeTransports() {
	n.tr.Close()
	if n.serveTr != nil {
		n.serveTr.Close()
	}
}

// Close releases the node's sockets without running it — the cleanup path
// for a node that was built (New) but never started, or whose Run was never
// reached. A node that is running shuts down by cancelling Run's context,
// which closes the sockets itself; calling Close afterwards is harmless.
func (n *Node) Close() error {
	n.closeTransports()
	return nil
}

// Metrics returns the node's counter recorder. It is live: scraping it (or
// reading counters in tests) reflects the node's current totals.
func (n *Node) Metrics() *obs.Recorder { return n.rec }

// emit sends a structured event to the configured observer, stamping it with
// Unix time in seconds. No-op when no observer is configured.
func (n *Node) emit(kind string, fields map[string]float64) {
	o := n.cfg.Ops.Observer
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		At:     float64(time.Now().UnixNano()) / 1e9,
		Kind:   kind,
		Node:   n.cfg.ID,
		Fields: fields,
	})
}

// StatusJSON renders the Status snapshot for monitoring endpoints.
func (n *Node) StatusJSON() ([]byte, error) {
	st := n.Status()
	type peerJSON struct {
		ID        int     `json:"id"`
		OffsetSec float64 `json:"last_offset_sec"`
		AgeSec    float64 `json:"last_seen_age_sec"`
		Replies   int     `json:"replies"`
		Failures  int     `json:"failures"`
		Dark      bool    `json:"dark"`
	}
	out := struct {
		ID        int        `json:"id"`
		Syncs     int        `json:"syncs"`
		OffsetSec float64    `json:"offset_sec"`
		LastSec   float64    `json:"last_adjust_sec"`
		Peers     []peerJSON `json:"peers"`
	}{
		ID:        st.ID,
		Syncs:     st.Syncs,
		OffsetSec: st.Offset.Seconds(),
		LastSec:   st.Last.Seconds(),
	}
	for _, p := range st.Peers {
		age := -1.0
		if !p.LastSeen.IsZero() {
			age = time.Since(p.LastSeen).Seconds()
		}
		out.Peers = append(out.Peers, peerJSON{
			ID: p.ID, OffsetSec: p.LastOffset.Seconds(), AgeSec: age,
			Replies: p.Replies, Failures: p.Failures, Dark: p.Dark,
		})
	}
	return json.Marshal(out)
}

// ServeStatus starts an HTTP listener exposing GET /status with the node's
// StatusJSON, for dashboards and health checks. It returns the bound
// address; the server stops when ctx is cancelled.
func (n *Node) ServeStatus(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("livenet: status listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		data, err := n.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	srv := &http.Server{Handler: mux}
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		srv.Serve(ln)
	}()
	go func() {
		defer n.wg.Done()
		<-ctx.Done()
		srv.Close()
	}()
	return ln.Addr().String(), nil
}

// ServeMetrics starts the node's observability endpoint on addr: GET
// /metrics in Prometheus text format (counters labeled node="<id>"), GET
// /status with the StatusJSON snapshot, and the net/http/pprof endpoints
// under /debug/pprof/. It returns the bound address; the server stops when
// ctx is cancelled. Run calls this automatically when Ops.MetricsAddr is
// set.
func (n *Node) ServeMetrics(ctx context.Context, addr string) (string, error) {
	labels := fmt.Sprintf("node=%q", fmt.Sprint(n.cfg.ID))
	mux := obs.NewMux(func(w http.ResponseWriter) error {
		return n.rec.WriteProm(w, labels)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		data, err := n.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	n.registerTelemetry(mux) // /statusz, /read, /spanz (statusz.go)
	bound, err := obs.Serve(ctx, &n.wg, addr, mux)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	n.metricsAddr = bound
	n.mu.Unlock()
	return bound, nil
}

// MetricsAddr returns the bound address of the observability endpoint, or ""
// when none is serving.
func (n *Node) MetricsAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metricsAddr
}

// Status returns a snapshot of the node's synchronization state.
func (n *Node) Status() Status {
	offset := n.Offset() // before taking the lock; Offset locks internally
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{ID: n.cfg.ID, Syncs: n.syncs, Last: n.last, Offset: offset}
	ids := make([]int, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ps := n.peerSeen[id]
		h := n.health[id]
		st.Peers = append(st.Peers, PeerStatus{
			ID:         id,
			LastOffset: ps.lastOffset,
			LastSeen:   ps.lastSeen,
			Replies:    ps.replies,
			Failures:   ps.failures,
			Dark:       h != nil && h.dark,
		})
	}
	return st
}

// Addr returns the node's bound transport address.
func (n *Node) Addr() string { return n.tr.LocalAddr() }

// SetPeers installs or replaces the peer table. It must be called before
// Run when the configuration could not know peer addresses up front (e.g.
// OS-assigned ports). The resulting cluster must satisfy n ≥ 3f+1.
func (n *Node) SetPeers(peers map[int]string) error {
	checker, _ := n.tr.(addrChecker)
	cp := make(map[int]string, len(peers))
	for id, a := range peers {
		if checker != nil {
			if err := checker.CheckAddr(a); err != nil {
				return fmt.Errorf("livenet: peer %d (%s): %w", id, a, err)
			}
		}
		cp[id] = a
	}
	if len(cp)+1 < 3*n.cfg.F+1 {
		return fmt.Errorf("livenet: n=%d does not satisfy n ≥ 3f+1 for f=%d", len(cp)+1, n.cfg.F)
	}
	n.mu.Lock()
	n.peers = cp
	for id := range n.health {
		if _, keep := cp[id]; !keep {
			delete(n.health, id)
		}
	}
	n.mu.Unlock()
	return nil
}

// localClock returns the node's logical clock as an offset from the host
// clock: simulated hardware error plus the protocol's adjustment. (Returning
// the offset rather than an absolute time keeps the arithmetic exact.)
func (n *Node) localClock() time.Duration {
	elapsed := time.Since(n.start)
	drift := time.Duration(float64(elapsed) * n.cfg.SimDriftPPM * 1e-6)
	n.mu.Lock()
	adj := n.adj
	n.mu.Unlock()
	return n.cfg.SimOffset + drift + adj
}

// clockNow returns the node's disciplined clock reading, exact under the
// protocol mutex — the timestamp source for the sync wire (request answers
// and the S/R instants of §3.1 estimation). The serving read path uses the
// published snapshot instead (Read).
func (n *Node) clockNow() time.Time { return time.Now().Add(n.localClock()) }

// Now returns the node's disciplined clock reading as a bare timestamp.
//
// Deprecated: use Read, which returns the same instant together with the
// uncertainty half-width and sync epoch that qualify it. A bare timestamp
// hides how much it can be trusted; every consumer found so far actually
// wanted the interval.
func (n *Node) Now() time.Time { return n.clockNow() }

// Offset returns the node's current clock offset from the host clock — the
// live analogue of the simulator's bias, measurable because the demo knows
// the host clock is the reference.
func (n *Node) Offset() time.Duration { return n.localClock() }

// InjectOffset shifts the node's disciplined clock by d. It is the
// state-loss hook of the chaos harness: a crash window ends with the node
// restarting on a cold clock, modeled as a sudden injected offset the
// WayOff recovery logic must then pull back into the good envelope.
func (n *Node) InjectOffset(d time.Duration) {
	n.mu.Lock()
	n.adj += d
	n.mu.Unlock()
	// The published snapshot just became wrong by exactly |d|: republish
	// with the injected error folded into the uncertainty so readings stay
	// honest until the next round re-disciplines the clock.
	unc := n.snap.Load().at(time.Now()).Uncertainty
	if d < 0 {
		d = -d
	}
	n.publishReading(unc + d)
}

// Syncs returns the number of completed Sync executions.
func (n *Node) Syncs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.syncs
}

// LastDelta returns the most recent adjustment.
func (n *Node) LastDelta() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.last
}

// Run serves requests and executes the Sync loop until ctx is cancelled.
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	nPeers := len(n.peers)
	n.mu.Unlock()
	if nPeers+1 < 3*n.cfg.F+1 {
		return fmt.Errorf("livenet: n=%d does not satisfy n ≥ 3f+1 for f=%d", nPeers+1, n.cfg.F)
	}
	if n.cfg.Ops.MetricsAddr != "" && n.MetricsAddr() == "" {
		bound, err := n.ServeMetrics(ctx, n.cfg.Ops.MetricsAddr)
		if err != nil {
			return err
		}
		n.logf("metrics endpoint at http://%s/metrics", bound)
	}
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		n.readLoop(ctx)
	}()
	go func() {
		defer n.wg.Done()
		n.syncLoop(ctx)
	}()
	if n.serveTr != nil {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveLoop()
		}()
		n.logf("serving time queries on %s", n.serveTr.LocalAddr())
	}
	<-ctx.Done()
	n.closeTransports() // unblocks the read and serve loops
	n.wg.Wait()
	return ctx.Err()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Ops.Logf != nil {
		n.cfg.Ops.Logf(format, args...)
	}
}

// readLoop answers time requests and routes responses to pending pings.
// Serve queries (binary magic, serve.go) share the socket with the JSON
// sync wire and are dispatched before JSON parsing is attempted.
func (n *Node) readLoop(ctx context.Context) {
	buf := make([]byte, 2048)
	scratch := make([]byte, ServeReplyMaxSize)
	for {
		nr, from, err := n.tr.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) || errors.Is(err, ErrClosed) {
				return
			}
			n.logf("read error: %v", err)
			continue
		}
		if isServePacket(buf[:nr]) {
			n.answerServe(buf[:nr], from, scratch, n.tr)
			continue
		}
		var msg wireMsg
		if err := json.Unmarshal(buf[:nr], &msg); err != nil || msg.V != wireVersion {
			n.rec.MessagesDropped.Inc()
			continue // not ours
		}
		if len(n.cfg.Key) > 0 && !hmac.Equal(msg.MAC, msg.mac(n.cfg.Key)) {
			n.rec.AuthFailures.Inc()
			n.rec.MessagesDropped.Inc()
			n.emit(obs.KindAuthFail, map[string]float64{"from": float64(msg.From)})
			n.logf("dropping unauthenticated message from %v", from)
			continue
		}
		n.rec.MessagesReceived.Inc()
		switch msg.Type {
		case "q":
			n.answer(msg, from)
		case "r":
			n.handleResponse(msg)
		default:
			n.rec.MessagesDropped.Inc()
		}
	}
}

// answer replies to a time request with the current clock — always the
// current clock, per the paper's roundless design. A traced request (wire
// Span ≠ 0) additionally records this node's half of the exchange as a
// zero-duration "reply" span under the requester's propagated span ID, with
// the reported clock value, this node's own uncertainty interval and epoch —
// the responder-side data the fleet aggregator joins against the requester's
// estimate span.
func (n *Node) answer(req wireMsg, from string) {
	resp := wireMsg{
		V:     wireVersion,
		Type:  "r",
		From:  n.cfg.ID,
		Nonce: req.Nonce,
		Clock: n.clockNow().UnixNano(),
	}
	n.send(resp, from)
	if req.Span != 0 {
		if o := n.cfg.Ops.Observer; o.SpansEnabled() {
			r := n.Read()
			nowU := float64(time.Now().UnixNano()) / 1e9
			o.EmitSpan(obs.Span{
				ID: obs.SpanID(req.Span), Name: obs.SpanReply, Node: n.cfg.ID,
				Start: nowU, End: nowU,
				Fields: obs.F("origin", float64(req.From)).
					F("origin_epoch", float64(req.Epoch)).
					F("node_time", float64(resp.Clock)/1e9).
					F("unc", r.Uncertainty.Seconds()).
					F("epoch", float64(r.Epoch)),
			})
		}
	}
}

func (n *Node) send(msg wireMsg, to string) {
	if len(n.cfg.Key) > 0 {
		msg.MAC = msg.mac(n.cfg.Key)
	}
	data, err := json.Marshal(msg)
	if err != nil {
		n.logf("marshal error: %v", err)
		return
	}
	if err := n.tr.WriteTo(data, to); err != nil {
		n.rec.MessagesDropped.Inc()
		n.logf("send to %v failed: %v", to, err)
		return
	}
	n.rec.MessagesSent.Inc()
}

func (n *Node) handleResponse(msg wireMsg) {
	r := n.clockNow() // local clock reading R at receipt
	n.mu.Lock()
	p, ok := n.pending[msg.Nonce]
	if ok {
		delete(n.pending, msg.Nonce)
	}
	n.mu.Unlock()
	if !ok || p.peer != msg.From {
		return
	}
	// §3.1: sent at local S, received at local R, peer reported C:
	// d = C − (R+S)/2 = (C − R) + (R−S)/2, a = (R−S)/2.
	c := time.Unix(0, msg.Clock)
	rtt := r.Sub(p.sentAt)
	est := protocol.Estimate{
		Peer: p.peer,
		D:    simtime.Duration(c.Sub(r).Seconds() + rtt.Seconds()/2),
		A:    simtime.Duration(rtt.Seconds() / 2),
		OK:   true,
		Span: p.span,
	}
	n.rec.RTT.Observe(rtt.Seconds())
	n.rec.EstError.Observe(float64(est.A))
	if p.span != 0 {
		n.cfg.Ops.Observer.EmitSpan(obs.Span{
			ID: p.span, Parent: p.parent, Name: obs.SpanEstimate, Node: n.cfg.ID,
			Start: p.sentUnix, End: float64(time.Now().UnixNano()) / 1e9,
			Fields: obs.F("peer", float64(p.peer)).
				F("d", float64(est.D)).
				F("a", float64(est.A)).
				F("rtt", rtt.Seconds()).
				F("attempt", float64(p.attempt)).
				F("ok", 1),
		})
	}
	n.mu.Lock()
	ps := n.peerSeen[p.peer]
	ps.lastOffset = time.Duration(float64(est.D) * float64(time.Second))
	ps.lastSeen = time.Now()
	ps.replies++
	n.peerSeen[p.peer] = ps
	n.mu.Unlock()
	select {
	case p.ch <- est:
	default:
	}
}

// syncLoop runs one Sync every SyncInt.
func (n *Node) syncLoop(ctx context.Context) {
	ticker := time.NewTicker(n.cfg.SyncInt)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n.runSync(ctx)
		}
	}
}

// roundTarget is one peer's state within a single Sync round.
type roundTarget struct {
	id       int
	addr     string
	dark     bool
	answered bool
	attempts int
}

// runSync estimates all peers and applies the convergence function. Bright
// (healthy) peers are retransmitted to on the retry schedule and the round
// waits for all of them (or MaxWait); dark peers get a single probe and a
// short grace so they can rejoin, but cannot stall the round — that is the
// graceful degradation to whatever quorum is still answering. When every
// peer is dark the degradation rationale vanishes and the round reverts to
// full MaxWait + retries, so an isolated node can find its way back.
func (n *Node) runSync(ctx context.Context) {
	o := n.cfg.Ops.Observer
	var roundSpan obs.SpanID
	var roundStart float64
	var roundEpoch uint64
	if o.SpansEnabled() {
		roundSpan = o.NextSpanID()
		roundStart = float64(time.Now().UnixNano()) / 1e9
		roundEpoch = uint64(n.Syncs())
	}

	// Snapshot the peer table and health state.
	n.mu.Lock()
	targets := make([]*roundTarget, 0, len(n.peers))
	for id, addr := range n.peers {
		h := n.health[id]
		targets = append(targets, &roundTarget{id: id, addr: addr, dark: h != nil && h.dark})
	}
	n.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	retryCfg := n.cfg.Retry.withDefaults(n.cfg.MaxWait)
	ch := make(chan protocol.Estimate, len(targets)*retryCfg.Attempts+1)
	sentAt := n.clockNow() // local clock reading S; attempts share the send instant
	sentUnix := float64(time.Now().UnixNano()) / 1e9
	var roundNonces []uint64

	// sendPing transmits one request to a target and registers the pending
	// entry routing its response. Estimates computed from a retransmission
	// reuse the original send instant S, so a reply to attempt k yields a
	// pessimistic-but-safe error bound a = (R−S)/2 (the true offset is
	// always inside [D−a, D+a]; §3.1's analysis only needs the interval to
	// contain it).
	sendPing := func(t *roundTarget) {
		n.mu.Lock()
		n.nonce++
		nonce := n.nonce
		t.attempts++
		var span obs.SpanID
		if roundSpan != 0 {
			span = o.NextSpanID()
		}
		n.pending[nonce] = pendingPing{
			peer: t.id, attempt: t.attempts, sentAt: sentAt, sentUnix: sentUnix,
			span: span, parent: roundSpan, ch: ch,
		}
		roundNonces = append(roundNonces, nonce)
		n.mu.Unlock()
		// Traced queries carry the estimate span's ID and this node's epoch
		// so the responder's reply span joins to ours; untraced queries
		// (span 0) omit both fields and match the pre-telemetry wire bytes.
		n.send(wireMsg{
			V: wireVersion, Type: "q", From: n.cfg.ID, Nonce: nonce,
			Span: uint64(span), Epoch: roundEpoch,
		}, t.addr)
	}

	brightLeft, darkLeft := 0, 0
	for _, t := range targets {
		if t.dark {
			darkLeft++
		} else {
			brightLeft++
		}
		sendPing(t)
	}
	// With every peer dark there is no answering quorum for the short-grace
	// path to protect — this round IS the rejoin attempt (a node coming back
	// from a crash or long partition sees exactly this). Give dark peers the
	// full MaxWait and the retry schedule instead of a grace window.
	allDark := brightLeft == 0 && darkLeft > 0

	resends := retrySchedule(n.cfg.Retry, n.cfg.MaxWait, rand.Float64)
	wallStart := time.Now()
	deadline := time.NewTimer(n.cfg.MaxWait)
	defer deadline.Stop()
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()
	nextRetry := 0
	armRetry := func() <-chan time.Time {
		if nextRetry >= len(resends) {
			return nil
		}
		d := resends[nextRetry] - time.Since(wallStart)
		if d < 0 {
			d = 0
		}
		if retryTimer == nil {
			retryTimer = time.NewTimer(d)
		} else {
			retryTimer.Reset(d)
		}
		return retryTimer.C
	}
	retryC := armRetry()

	byID := make(map[int]*roundTarget, len(targets))
	for _, t := range targets {
		byID[t.id] = t
	}
	ests := make([]protocol.Estimate, 0, len(targets)+1)
	var graceTimer *time.Timer
	defer func() {
		if graceTimer != nil {
			graceTimer.Stop()
		}
	}()
	var graceC <-chan time.Time

collect:
	for brightLeft > 0 || darkLeft > 0 {
		if brightLeft == 0 && !allDark && graceC == nil {
			// All healthy peers answered; give dark peers one short grace to
			// rejoin instead of stalling the full MaxWait on them.
			grace := retryCfg.Initial
			if left := n.cfg.MaxWait - time.Since(wallStart); grace > left {
				grace = left
			}
			if grace <= 0 {
				break collect
			}
			graceTimer = time.NewTimer(grace)
			graceC = graceTimer.C
		}
		select {
		case e := <-ch:
			t := byID[e.Peer]
			if t == nil || t.answered {
				continue // duplicate answer (retransmission or injected dup)
			}
			t.answered = true
			ests = append(ests, e)
			if t.dark {
				darkLeft--
			} else {
				brightLeft--
			}
		case <-retryC:
			// Retransmit to every bright peer still unanswered.
			resent := 0
			for _, t := range targets {
				if !t.answered && (!t.dark || allDark) {
					sendPing(t)
					resent++
				}
			}
			if resent > 0 {
				n.rec.Retries.Add(int64(resent))
			}
			nextRetry++
			retryC = armRetry()
		case <-graceC:
			break collect
		case <-deadline.C:
			break collect
		case <-ctx.Done():
			n.dropRoundPending(roundNonces)
			return
		}
	}

	// Fill failures for unanswered targets and drop their pending entries.
	failed := 0
	var timedOut []pendingPing
	n.mu.Lock()
	for _, nonce := range roundNonces {
		p, ok := n.pending[nonce]
		if !ok {
			continue
		}
		delete(n.pending, nonce)
		t := byID[p.peer]
		if t == nil || t.answered {
			continue // an earlier or later attempt got through
		}
		if p.span != 0 {
			timedOut = append(timedOut, p)
		}
	}
	for _, t := range targets {
		if t.answered {
			continue
		}
		fe := protocol.FailedEstimate(t.id)
		ests = append(ests, fe)
		ps := n.peerSeen[t.id]
		ps.failures++
		n.peerSeen[t.id] = ps
		failed++
	}
	n.mu.Unlock()
	n.updateHealth(targets)
	if failed > 0 {
		n.rec.EstimationTimeouts.Add(int64(failed))
	}
	if len(timedOut) > 0 {
		nowU := float64(time.Now().UnixNano()) / 1e9
		for _, p := range timedOut {
			o.EmitSpan(obs.Span{
				ID: p.span, Parent: p.parent, Name: obs.SpanEstimate, Node: n.cfg.ID,
				Start: p.sentUnix, End: nowU,
				Fields: obs.F("peer", float64(p.peer)).F("attempt", float64(p.attempt)).
					F("ok", 0).F("timeout", 1),
			})
		}
	}
	ests = append(ests, protocol.Estimate{Peer: n.cfg.ID, D: 0, A: 0, OK: true})

	delta, jumped, ok := core.ConvergeVerdict(n.cfg.F, simtime.Duration(n.cfg.WayOff.Seconds()), ests)
	if !ok {
		n.rec.RoundsSkipped.Inc()
		n.mu.Lock()
		n.lastRound = lastRoundInfo{at: time.Now(), failed: failed, skipped: true, set: true}
		n.mu.Unlock()
		n.emit(obs.KindSkip, map[string]float64{"failed": float64(failed)})
		if roundSpan != 0 {
			o.EmitSpan(obs.Span{
				ID: roundSpan, Name: obs.SpanRound, Node: n.cfg.ID,
				Start: roundStart, End: float64(time.Now().UnixNano()) / 1e9,
				Fields: obs.F("skip", 1).F("failed", float64(failed)),
			})
		}
		n.logf("sync: too few answers (%d) for f=%d", len(ests)-1, n.cfg.F)
		return
	}
	// The round's serving uncertainty: after the adjustment, this node's
	// clock is within max(|D|+A) of every good peer it heard (each peer's
	// true offset lies in [D−A, D+A]), so the true cluster time — which
	// Theorem 5 keeps inside the good-set envelope — is within that bound
	// of the disciplined clock.
	var roundUnc time.Duration
	for _, e := range ests {
		if !e.OK || e.Peer == n.cfg.ID {
			continue
		}
		d := float64(e.D)
		if d < 0 {
			d = -d
		}
		if b := time.Duration((d + float64(e.A)) * float64(time.Second)); b > roundUnc {
			roundUnc = b
		}
	}
	dd := time.Duration(float64(delta) * float64(time.Second))
	n.mu.Lock()
	n.adj += dd
	n.syncs++
	n.last = dd
	n.lastRound = lastRoundInfo{at: time.Now(), delta: dd, failed: failed, wayoff: jumped, set: true}
	n.mu.Unlock()
	n.publishReading(roundUnc)
	n.rec.SyncRounds.Inc()
	if jumped {
		n.rec.WayOffJumps.Inc()
	}
	n.rec.LastAdjust.Set(dd.Seconds())
	n.rec.AdjustMag.Observe(math.Abs(dd.Seconds()))
	// Live nodes apply adjustments in one step, so amortization is complete
	// the moment the round commits.
	n.rec.AmortizationProgress.Set(1)
	wayoff := 0.0
	if jumped {
		wayoff = 1
	}
	n.emit(obs.KindRound, map[string]float64{
		"delta": dd.Seconds(), "failed": float64(failed), "wayoff": wayoff,
	})
	if roundSpan != 0 {
		endU := float64(time.Now().UnixNano()) / 1e9
		o.EmitSpan(obs.Span{
			ID: o.NextSpanID(), Parent: roundSpan, Name: obs.SpanAdjust, Node: n.cfg.ID,
			Start: endU, End: endU,
			Fields: obs.F("delta", dd.Seconds()),
		})
		// Reading spans are simulator-only: the convergence verdict per
		// estimate is recomputed in internal/core, which livenet bypasses.
		o.EmitSpan(obs.Span{
			ID: roundSpan, Name: obs.SpanRound, Node: n.cfg.ID,
			Start: roundStart, End: endU,
			Fields: obs.F("delta", dd.Seconds()).F("failed", float64(failed)),
		})
	}
	n.logf("sync #%d: adjusted by %v (offset now %v)", n.Syncs(), dd, n.Offset())
}

// dropRoundPending discards this round's outstanding pings (shutdown path).
func (n *Node) dropRoundPending(nonces []uint64) {
	n.mu.Lock()
	for _, nonce := range nonces {
		delete(n.pending, nonce)
	}
	n.mu.Unlock()
}

// updateHealth folds one round's outcomes into the per-peer health state:
// an answer resets the failure streak (and rescues a dark peer); a failure
// extends it and — at the DarkAfter threshold — writes the peer off as
// dark. Transitions are emitted as peerdark/peerbright events and the dark
// population is kept on the PeersDark gauge.
func (n *Node) updateHealth(targets []*roundTarget) {
	darkAfter := n.cfg.DarkAfter
	if darkAfter == 0 {
		darkAfter = defaultDarkAfter
	}
	type transition struct {
		peer  int
		dark  bool
		fails int
	}
	var changes []transition
	n.mu.Lock()
	for _, t := range targets {
		h := n.health[t.id]
		if h == nil {
			h = &peerHealth{}
			n.health[t.id] = h
		}
		if t.answered {
			h.consecFails = 0
			if h.dark {
				h.dark = false
				n.rec.PeerRejoins.Inc()
				changes = append(changes, transition{peer: t.id, dark: false})
			}
			continue
		}
		h.consecFails++
		if !h.dark && h.consecFails >= darkAfter {
			h.dark = true
			h.darkSince = time.Now()
			changes = append(changes, transition{peer: t.id, dark: true, fails: h.consecFails})
		}
	}
	dark := 0
	for _, h := range n.health {
		if h.dark {
			dark++
		}
	}
	n.mu.Unlock()
	n.rec.PeersDark.Set(float64(dark))
	for _, c := range changes {
		if c.dark {
			n.emit(obs.KindPeerDark, map[string]float64{"peer": float64(c.peer), "fails": float64(c.fails)})
			n.logf("peer %d marked dark after %d silent rounds; degrading to the answering quorum", c.peer, c.fails)
		} else {
			n.emit(obs.KindPeerBright, map[string]float64{"peer": float64(c.peer)})
			n.logf("peer %d answered again; restored to the wait set", c.peer)
		}
	}
}
