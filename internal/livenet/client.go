package livenet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clocksync/internal/obs"
)

// Client issues 4-timestamp time queries against a serving Node and turns
// the replies into interval-valued Readings. It is the reference consumer of
// the serve wire protocol: one Client owns one Transport (UDP by default, or
// any injected Transport — MemNetwork endpoints and FaultTransports work
// identically), multiplexes any number of concurrent Query calls over it by
// nonce, and keeps the last successful exchange as a local snapshot so Read
// can answer between queries the same way a Node does between Sync rounds.
type Client struct {
	cfg ClientConfig
	tr  Transport

	mu      sync.Mutex
	nonce   uint64
	pending map[uint64]chan clientReply
	closed  bool

	snap atomic.Pointer[readSnap]
	wg   sync.WaitGroup
}

// clientReply is one reply as captured by the client's read loop: the
// decoded packet plus the client clock at receipt (T4), stamped in the read
// loop so queue latency between goroutines does not pollute the timestamp.
type clientReply struct {
	reply ServeReply
	t4    time.Time
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Server is the serve address of a node — its Node.ServeAddr when a
	// dedicated endpoint is configured, or its sync address otherwise (both
	// answer queries).
	Server string
	// Transport, when non-nil, carries the client's datagrams instead of a
	// fresh UDP socket. The client owns it and closes it on Close.
	Transport Transport
	// Listen is the UDP listen address when Transport is nil; empty selects
	// an OS-assigned loopback-agnostic port (":0").
	Listen string
	// Timeout bounds one Query when its context has no earlier deadline
	// (default 1s).
	Timeout time.Duration
	// Observer, when it has a span sink attached, makes the client emit a
	// "query" span per completed exchange and stamp the serve wire's
	// trace-context extension, so the server's "serve" span shares the same
	// id and a fleet aggregator can join the two sides. Nil (or sinkless)
	// keeps queries untraced and byte-identical to the pre-extension wire.
	Observer *obs.Observer
	// Origin is the fleet node id stamped into traced queries, identifying
	// this client in merged cross-node traces.
	Origin uint32
}

// clientDriftPPM is the drift bound a client assumes for interpolating
// between queries: its own hardware plus the server's, each at the ρ-like
// hostDriftPPM default.
const clientDriftPPM = 2 * hostDriftPPM

// maxUncertainty is the uncertainty reported before any successful query,
// when the client knows nothing about the cluster's clock.
const maxUncertainty = time.Duration(1<<63 - 1)

// NewClient validates cfg and opens the client's transport.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Server == "" {
		return nil, fmt.Errorf("livenet: ClientConfig.Server is required (a node's serve or sync address)")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		listen := cfg.Listen
		if listen == "" {
			listen = ":0"
		}
		var err error
		tr, err = NewUDPTransport(listen)
		if err != nil {
			return nil, err
		}
	}
	if checker, ok := tr.(addrChecker); ok {
		if err := checker.CheckAddr(cfg.Server); err != nil {
			tr.Close()
			return nil, fmt.Errorf("livenet: server %s: %w", cfg.Server, err)
		}
	}
	c := &Client{cfg: cfg, tr: tr, pending: make(map[uint64]chan clientReply)}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	return c, nil
}

// readLoop stamps and routes replies to waiting queries. Unparseable
// datagrams and replies to expired nonces are dropped, like any datagram
// client must.
func (c *Client) readLoop() {
	buf := make([]byte, 2048)
	for {
		nr, _, err := c.tr.ReadFrom(buf)
		if err != nil {
			return
		}
		t4 := time.Now()
		r, err := DecodeServeReply(buf[:nr])
		if err != nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[r.Nonce]
		c.mu.Unlock()
		if ch == nil {
			continue // expired or duplicated reply
		}
		select {
		case ch <- clientReply{reply: r, t4: t4}:
		default: // duplicate beat us; the first reply wins
		}
	}
}

// Query performs one 4-timestamp exchange and returns the resulting Reading
// (also folding it into the client's snapshot for Read). The reading's
// uncertainty is the server's own envelope plus half the measured round-trip
// network delay — the RTT-asymmetry bound — plus the client-side floor.
func (c *Client) Query(ctx context.Context) (Reading, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Reading{}, ErrClosed
	}
	c.nonce++
	nonce := c.nonce
	ch := make(chan clientReply, 1)
	c.pending[nonce] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, nonce)
		c.mu.Unlock()
	}()

	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}

	var span obs.SpanID
	if c.cfg.Observer.SpansEnabled() {
		span = c.cfg.Observer.NextSpanID()
	}
	var buf [ServeQueryMaxSize]byte
	t1 := time.Now()
	pkt := EncodeServeQuery(buf[:], ServeQuery{
		Nonce: nonce, T1: t1.UnixNano(),
		Traced: span != 0, Span: uint64(span), Origin: c.cfg.Origin,
	})
	if err := c.tr.WriteTo(pkt, c.cfg.Server); err != nil {
		return Reading{}, fmt.Errorf("livenet: query send: %w", err)
	}

	select {
	case cr := <-ch:
		reading, err := c.absorb(cr)
		if err == nil && span != 0 {
			// The client half of the join: send (T1) → reply receipt (T4),
			// under the same id the server's "serve" span carries.
			c.cfg.Observer.EmitSpan(obs.Span{
				ID: span, Name: obs.SpanQuery, Node: int(c.cfg.Origin),
				Start: float64(t1.UnixNano()) / 1e9,
				End:   float64(cr.t4.UnixNano()) / 1e9,
				Fields: obs.F("server", float64(cr.reply.Node)).
					F("theta", reading.Time.Sub(cr.t4).Seconds()).
					F("unc", reading.Uncertainty.Seconds()).
					F("epoch", float64(reading.Epoch)),
			})
		}
		return reading, err
	case <-ctx.Done():
		return Reading{}, fmt.Errorf("livenet: query to %s: %w", c.cfg.Server, ctx.Err())
	}
}

// absorb turns one completed exchange into a Reading and publishes it as the
// client's interpolation snapshot.
func (c *Client) absorb(cr clientReply) (Reading, error) {
	r := cr.reply
	t1 := r.T1
	t4 := cr.t4.UnixNano()
	// θ = ((T2−T1)+(T3−T4))/2: the server clock minus the client clock,
	// exact when the two one-way delays are equal, off by at most λ/2
	// however they actually split.
	theta := ((r.T2 - t1) + (r.T3 - t4)) / 2
	// λ = (T4−T1)−(T3−T2): round-trip time net of server processing.
	lambda := (t4 - t1) - (r.T3 - r.T2)
	if lambda < 0 {
		lambda = 0 // clock granularity artifacts; never widen θ's credit
	}
	unc := r.Uncertainty + time.Duration(lambda)/2 + minUncertainty
	if unc < r.Uncertainty { // overflow guard: server already at the max
		unc = maxUncertainty
	}
	reading := Reading{
		Time:        cr.t4.Add(time.Duration(theta)),
		Uncertainty: unc,
		Epoch:       r.Epoch,
	}
	c.snap.Store(&readSnap{
		base:    cr.t4,
		offset:  time.Duration(theta),
		ratePPM: 0, // the client has no rate model for its own hardware
		unc:     unc,
		growPPM: clientDriftPPM,
		epoch:   r.Epoch,
	})
	return reading, nil
}

// Read implements TimeSource from the client's last successful query,
// interpolating forward on the client's own clock with uncertainty growing
// at the combined drift bound. Before any successful Query it reports the
// client's raw clock with maximal uncertainty at epoch 0.
func (c *Client) Read() Reading {
	s := c.snap.Load()
	if s == nil {
		return Reading{Time: time.Now(), Uncertainty: maxUncertainty}
	}
	r := s.at(time.Now())
	if r.Uncertainty < s.unc { // overflow of the growth term
		r.Uncertainty = maxUncertainty
	}
	return r
}

// Close releases the client's transport and unblocks pending queries.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.tr.Close()
	c.wg.Wait()
	return err
}
