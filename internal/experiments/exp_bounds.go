package experiments

import (
	"fmt"
	"math"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/asciiplot"
	"clocksync/internal/core"
	"clocksync/internal/metrics"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// mustRun executes a scenario and panics on configuration errors — inside
// the experiment suite a failing configuration is a bug, not an input error.
func mustRun(s scenario.Scenario) *scenario.Result {
	res, err := scenario.Run(s)
	if err != nil {
		panic(fmt.Sprintf("experiment scenario %q: %v", s.Name, err))
	}
	return res
}

// E01Deviation reproduces Table 1: Theorem 5(i)'s synchronization guarantee.
// For each n, an f-limited rotating adversary smashes clocks throughout the
// run; the measured worst-case good-set deviation must stay below the
// derived bound Δ.
func E01Deviation(quick bool) Table {
	t := Table{
		ID:    "E1",
		Title: "Maximum deviation vs Theorem 5 bound (rotating f-limited adversary)",
		Columns: []string{"n", "f", "syncs/node", "measured Δ (s)", "bound Δ (s)",
			"ratio", "recoveries"},
		Notes: "Theorem 5(i): deviation of processors non-faulty for Θ stays ≤ Δ = 16ε+18ρT+4C. " +
			"Expected shape: every ratio < 1, with headroom (the bound is worst-case).",
	}
	duration := simtime.Duration(scaled(quick, 2*3600, 900))
	theta := 3 * simtime.Minute
	seeds := []int64{1, 2, 3}
	if quick {
		seeds = seeds[:1]
	}
	for _, n := range []int{4, 7, 10, 13, 16} {
		f := (n - 1) / 3
		// Fill the run with rotating corruptions, leaving Θ at the end so the
		// last release's recovery is measurable.
		step := simtime.Duration(float64(theta+30*simtime.Second) / float64(f))
		events := int(float64(duration-3*theta) / float64(step))
		sched := adversary.Rotate(n, f, simtime.Time(2*theta), 30*simtime.Second, theta, events,
			func(int) protocol.Behavior { return adversary.ClockSmash{Offset: 20 * simtime.Second} })
		// Worst outcome over independent seeds — one lucky run proves
		// nothing about a probabilistic simulation.
		var worst *scenario.Result
		var worstDisc, discBound simtime.Duration
		recovered, total, syncs := 0, 0, 0
		for _, seed := range seeds {
			res := mustRun(scenario.Scenario{
				Name:       fmt.Sprintf("e1-n%d-s%d", n, seed),
				Seed:       100*seed + int64(n),
				N:          n,
				F:          f,
				Duration:   duration,
				Theta:      theta,
				Rho:        1e-4,
				InitSpread: 100 * simtime.Millisecond,
				Adversary:  sched,
			})
			r, tot := countRecoveries(res.Report.Recoveries)
			recovered += r
			total += tot
			for _, st := range res.SyncStats {
				if st != nil {
					syncs += st.Syncs
				}
			}
			if worst == nil || res.Report.MaxDeviation > worst.Report.MaxDeviation {
				worst = res
			}
			if res.Report.MaxDiscontinuity > worstDisc {
				worstDisc = res.Report.MaxDiscontinuity
			}
			discBound = res.Bounds.Discontinuity
		}
		t.AddRow(n, f, syncs/(n*len(seeds)),
			float64(worst.Report.MaxDeviation), float64(worst.Bounds.MaxDeviation),
			float64(worst.Report.MaxDeviation)/float64(worst.Bounds.MaxDeviation),
			fmt.Sprintf("%d/%d", recovered, total))
		t.AddCheck(fmt.Sprintf("n=%d: worst-of-%d-seeds deviation ≤ Δ", n, len(seeds)),
			worst.Report.MaxDeviation <= worst.Bounds.MaxDeviation)
		t.AddCheck(fmt.Sprintf("n=%d: every smashed processor recovered", n),
			recovered == total)
		t.AddCheck(fmt.Sprintf("n=%d: good-processor discontinuity ≤ ψ under the adversary", n),
			worstDisc <= discBound)
	}
	return t
}

// E02AccuracyTradeoff reproduces Table 2: Theorem 5(ii) and the §4.1 remark
// that choosing T small relative to Θ (large K) drives the accuracy penalty
// C = (17ε+18ρT)/2^(K−3) to zero, so the logical drift ρ̃ approaches the
// hardware bound ρ.
func E02AccuracyTradeoff(quick bool) Table {
	t := Table{
		ID:    "E2",
		Title: "Accuracy vs K = Θ/T: the O(2^−K) tradeoff",
		Columns: []string{"K", "Θ (s)", "C (s)", "theory ρ̃−ρ", "measured |rate−1|",
			"measured Δ (s)", "bound Δ (s)"},
		Notes: "Theorem 5(ii): ρ̃ = ρ + C/2T with C ∝ 2^−K. Expected shape: the theory column " +
			"collapses geometrically with K while measured drift stays ≤ ρ̃; T=Θ/20 already gives ρ̃≈ρ.",
	}
	duration := simtime.Duration(scaled(quick, 3600, 900))
	lastC := -1.0
	for _, k := range []int{5, 8, 12, 20, 40} {
		s := scenario.Scenario{
			Name:       fmt.Sprintf("e2-k%d", k),
			Seed:       int64(200 + k),
			N:          7,
			F:          2,
			Duration:   duration,
			Rho:        1e-4,
			SyncInt:    10 * simtime.Second,
			InitSpread: 100 * simtime.Millisecond,
		}
		params := s.Params()
		s.Theta = simtime.Duration(float64(k))*params.T() + simtime.Second
		res := mustRun(s)
		t.AddRow(res.Bounds.K, float64(s.Theta), float64(res.Bounds.C),
			res.Bounds.LogicalDrift-1e-4,
			res.Report.WorstRate,
			float64(res.Report.MaxDeviation), float64(res.Bounds.MaxDeviation))
		t.AddCheck(fmt.Sprintf("K=%d: measured rate within ρ̃", res.Bounds.K),
			res.Report.WorstRate <= res.Bounds.LogicalDrift*1.05+1e-9)
		if lastC >= 0 && float64(res.Bounds.C) >= lastC {
			t.AddCheck(fmt.Sprintf("K=%d: C decreased vs previous K", res.Bounds.K), false)
		}
		lastC = float64(res.Bounds.C)
	}
	t.AddCheck("C decays monotonically with K", true)
	return t
}

// E03RecoveryHalving reproduces Figure A: Lemma 7(iii)/Claim 8(iii) — a
// released processor's distance to the good range halves (at least) every
// interval T. Two variants make the mechanism visible:
//
//   - Sync as specified: once the distance exceeds WayOff the processor
//     ignores its own clock and jumps back in a single Sync — recovery time
//     is flat in the offset (the paper chose fast recovery over minimal
//     correction, §1.1).
//   - The clipped rule alone (WayOff disabled): each Sync averages the own
//     clock with the trimmed range, halving the distance — the geometric
//     trajectory the lemma proves, with recovery time ≈ log2(offset/Δ)
//     rounds.
func E03RecoveryHalving(quick bool) Table {
	t := Table{
		ID:    "E3",
		Title: "Recovery after release: WayOff escape vs pure halving (Lemma 7(iii))",
		Columns: []string{"initial offset", "Sync recovery (s)", "no-escape recovery (s)",
			"no-escape rounds", "log2(offset/Δ) predicted"},
		Notes: "Lemma 7(iii): distance to the good envelope halves per interval T. The full " +
			"protocol's WayOff escape recovers in O(1) rounds regardless of offset; with the " +
			"escape disabled the measured rounds track log2(offset/Δ), the figure's straight " +
			"lines on the log2 axis.",
	}
	theta := 5 * simtime.Minute
	series := map[string][]float64{}
	var xs []float64
	var syncTimes, halvingRounds, predictedRounds []float64
	for _, mult := range []float64{2, 8, 32, 128} {
		run := func(noEscape bool) (*scenario.Result, analysis.Bounds, metrics.Recovery) {
			s := scenario.Scenario{
				Name:     fmt.Sprintf("e3-x%g-%v", mult, noEscape),
				Seed:     300,
				N:        7,
				F:        2,
				Duration: simtime.Duration(scaled(quick, 900, 600)),
				Theta:    theta,
				Rho:      1e-4,
			}
			bounds, err := analysis.Derive(s.Params())
			if err != nil {
				panic(err)
			}
			offset := simtime.Duration(mult * float64(bounds.MaxDeviation))
			s.Adversary = adversary.Schedule{Corruptions: []adversary.Corruption{{
				Node: 6, From: 60, To: 61,
				Behavior: adversary.ClockSmash{Offset: offset, Quiet: true},
			}}}
			if noEscape {
				s.Builder = scenario.SyncBuilder(func(cfg *core.Config, _ scenario.BuildContext) {
					cfg.WayOff = simtime.Duration(math.MaxFloat64 / 4)
				})
			}
			res := mustRun(s)
			return res, bounds, res.Report.Recoveries[0]
		}

		_, bounds, rvSync := run(false)
		resHalf, _, rvHalf := run(true)
		tT := float64(bounds.T)
		rounds := float64(rvHalf.Time()) / tT
		predicted := math.Log2(mult)
		t.AddRow(fmt.Sprintf("%gΔ = %s", mult, formatFloat(mult*float64(bounds.MaxDeviation))),
			float64(rvSync.Time()), float64(rvHalf.Time()), rounds, predicted)
		t.AddCheck(fmt.Sprintf("offset %gΔ: full protocol recovered within Θ", mult),
			rvSync.Ok && rvSync.Time() <= theta)
		t.AddCheck(fmt.Sprintf("offset %gΔ: no-escape variant recovered within Θ", mult),
			rvHalf.Ok && rvHalf.Time() <= theta)
		syncTimes = append(syncTimes, float64(rvSync.Time()))
		halvingRounds = append(halvingRounds, rounds)
		predictedRounds = append(predictedRounds, predicted)

		// No-escape distance trajectory for the figure, sampled per T.
		traj := distanceTrajectory(resHalf, 6, 61)
		var ys []float64
		for i := 0; i < 12; i++ {
			d := sampleAt(traj, 61+float64(i)*tT)
			if d <= float64(bounds.Eps) {
				d = float64(bounds.Eps) // floor at the reading error
			}
			ys = append(ys, math.Log2(d/float64(bounds.MaxDeviation)))
		}
		series[fmt.Sprintf("%gxΔ", mult)] = ys
		if xs == nil {
			for i := 0; i < 12; i++ {
				xs = append(xs, float64(i))
			}
		}
	}
	t.Figure = asciiplot.Line(xs, series, asciiplot.Options{
		Width: 60, Height: 14,
		YLabel: "log2(distance/Δ), WayOff disabled", XLabel: "intervals T since release",
	})
	t.AddCheck("full protocol: recovery time flat in the offset (single-jump escape)",
		syncTimes[3] <= 2*syncTimes[0]+1)
	// The halving variant's round count must track the log2 prediction: more
	// rounds for each quadrupling, within a couple of rounds of slack.
	trackLog := true
	for i := range halvingRounds {
		if math.Abs(halvingRounds[i]-predictedRounds[i]) > 2.5 {
			trackLog = false
		}
	}
	t.AddCheck("no-escape rounds ≈ log2(offset/Δ) (geometric halving)", trackLog)
	return t
}

// E05MobileAdversary reproduces Figure B: an unbounded number of total
// corruptions — every processor smashed repeatedly — with deviation staying
// bounded throughout, which protocols assuming a lifetime fault bound cannot
// do.
func E05MobileAdversary(quick bool) Table {
	t := Table{
		ID:    "E5",
		Title: "Mobile adversary marathon: unbounded total faults, bounded deviation",
		Columns: []string{"duration (h)", "total corruptions", "corruptions/node",
			"max deviation (s)", "bound Δ (s)", "recoveries"},
		Notes: "Every processor is corrupted many times over — the total fault count far exceeds " +
			"n — yet the good-set deviation never crosses Δ. Expected shape: flat bounded series.",
	}
	n, f := 10, 3
	theta := 2 * simtime.Minute
	dwell := 30 * simtime.Second
	duration := simtime.Duration(scaled(quick, 6*3600, 1800))
	step := simtime.Duration(float64(theta+dwell)/float64(f)) + simtime.Millisecond
	events := int(float64(duration-simtime.Duration(600)) / float64(step))
	sched := adversary.Rotate(n, f, simtime.Time(5*simtime.Minute), dwell, theta, events,
		func(node int) protocol.Behavior {
			if node%2 == 0 {
				return adversary.ClockSmash{Offset: 60 * simtime.Second}
			}
			return adversary.ClockSmash{Offset: -45 * simtime.Second, Quiet: true}
		})
	res := mustRun(scenario.Scenario{
		Name:         "e5-marathon",
		Seed:         500,
		N:            n,
		F:            f,
		Duration:     duration,
		Theta:        theta,
		Rho:          1e-4,
		InitSpread:   100 * simtime.Millisecond,
		Adversary:    sched,
		SamplePeriod: 10 * simtime.Second,
	})
	recovered, total := countRecoveries(res.Report.Recoveries)
	t.AddRow(float64(duration)/3600, len(sched.Corruptions),
		float64(len(sched.Corruptions))/float64(n),
		float64(res.Report.MaxDeviation), float64(res.Bounds.MaxDeviation),
		fmt.Sprintf("%d/%d", recovered, total))
	t.AddCheck("total corruptions exceed n (unbounded-fault regime)",
		len(sched.Corruptions) > n)
	t.AddCheck("deviation stayed ≤ Δ throughout",
		res.Report.MaxDeviation <= res.Bounds.MaxDeviation)
	t.AddCheck("every corruption recovered", recovered == total)

	ts, devs := res.Recorder.DeviationSeries()
	t.Figure = asciiplot.Line(ts, map[string][]float64{"deviation": devs},
		asciiplot.Options{Width: 64, Height: 12, YLabel: "good-set deviation (s)", XLabel: "real time (s)"})
	return t
}

// countRecoveries tallies successful recoveries.
func countRecoveries(rs []metrics.Recovery) (ok, total int) {
	for _, r := range rs {
		total++
		if r.Ok {
			ok++
		}
	}
	return ok, total
}

// distanceTrajectory extracts |bias(node) − good range| over time from the
// recorded samples, starting at from.
type trajPoint struct {
	at   float64
	dist float64
}

func distanceTrajectory(res *scenario.Result, node int, from float64) []trajPoint {
	var out []trajPoint
	for _, s := range res.Recorder.Samples() {
		if float64(s.At) < from {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, g := range s.Good {
			if !g || i == node {
				continue
			}
			b := float64(s.Biases[i])
			lo = math.Min(lo, b)
			hi = math.Max(hi, b)
		}
		if math.IsInf(lo, 1) {
			continue
		}
		b := float64(s.Biases[node])
		d := 0.0
		if b < lo {
			d = lo - b
		} else if b > hi {
			d = b - hi
		}
		out = append(out, trajPoint{at: float64(s.At), dist: d})
	}
	return out
}

// sampleAt returns the trajectory value at or just after the given time.
func sampleAt(traj []trajPoint, at float64) float64 {
	for _, p := range traj {
		if p.at >= at {
			return p.dist
		}
	}
	if len(traj) == 0 {
		return 0
	}
	return traj[len(traj)-1].dist
}
