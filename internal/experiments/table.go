// Package experiments implements the reproduction suite of EXPERIMENTS.md:
// one function per table/figure (E1–E12), each returning a formatted Table.
// cmd/benchtables regenerates them all; bench_test.go wraps each in a
// testing.B benchmark.
//
// The paper is an extended abstract whose "evaluation" is analytic
// (Theorem 5, Lemma 7, Claim 8) plus qualitative claims in §1.1/§3.3/§5;
// each experiment here measures one of those claims empirically. See
// DESIGN.md §4 for the experiment-to-claim mapping.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure.
type Table struct {
	ID      string // e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Figure  string // optional ASCII chart
	Notes   string // expectation and interpretation
	// Checks are the experiment's machine-verified shape assertions: the
	// qualitative outcome the paper predicts (who wins, what is bounded,
	// what diverges), checked against the measured numbers.
	Checks []Check
}

// Check is one verified expectation.
type Check struct {
	Name string
	Ok   bool
}

// AddCheck records a shape assertion.
func (t *Table) AddCheck(name string, ok bool) {
	t.Checks = append(t.Checks, Check{Name: name, Ok: ok})
}

// ChecksPass reports whether every shape assertion held.
func (t *Table) ChecksPass() bool {
	for _, c := range t.Checks {
		if !c.Ok {
			return false
		}
	}
	return true
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "-"
	case absf(v) >= 1e5 || absf(v) < 1e-4:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Figure != "" {
		b.WriteByte('\n')
		b.WriteString(t.Figure)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\nNote: %s\n", t.Notes)
	}
	for _, c := range t.Checks {
		status := "PASS"
		if !c.Ok {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s\n", status, c.Name)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (figures become
// fenced code blocks, checks a task list).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			fmt.Fprintf(&b, " %s |", strings.ReplaceAll(c, "|", "\\|"))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Figure != "" {
		fmt.Fprintf(&b, "\n```\n%s```\n", t.Figure)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n> %s\n", t.Notes)
	}
	if len(t.Checks) > 0 {
		b.WriteByte('\n')
		for _, c := range t.Checks {
			mark := "x"
			if !c.Ok {
				mark = " "
			}
			fmt.Fprintf(&b, "- [%s] %s\n", mark, c.Name)
		}
	}
	return b.String()
}

// All runs the full suite. quick shortens simulated durations for use in
// benchmarks and smoke tests; the shapes of the results are preserved.
func All(quick bool) []Table {
	return []Table{
		E01Deviation(quick),
		E02AccuracyTradeoff(quick),
		E03RecoveryHalving(quick),
		E04RecoveryVsBaselines(quick),
		E05MobileAdversary(quick),
		E06ResilienceThreshold(quick),
		E07TwoClique(quick),
		E08MessageOverhead(quick),
		E09Discontinuity(quick),
		E10EstimationError(quick),
		E11WayOffAblation(quick),
		E12DriftDelaySweep(quick),
		E13ConnectivitySweep(quick),
		E14SelfStabilization(quick),
		E15DriftCompensation(quick),
		E16MessageLoss(quick),
		E17CachedEstimation(quick),
		E18ProactiveSecurity(quick),
		E19TightnessProbe(quick),
		E20NetworkOutage(quick),
		E21SamplingScaling(quick),
		E22DelaySkew(quick),
		E23ChurnBudget(quick),
		E24FlashRejoin(quick),
		E25ColdStart(quick),
	}
}

// scaled shrinks a full-length duration in quick mode.
func scaled(quick bool, full, quickVal float64) float64 {
	if quick {
		return quickVal
	}
	return full
}
