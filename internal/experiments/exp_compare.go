package experiments

import (
	"fmt"

	"clocksync/internal/adversary"
	"clocksync/internal/asciiplot"
	"clocksync/internal/baseline"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// protocolEntry names a protocol under comparison.
type protocolEntry struct {
	name    string
	builder scenario.Builder // nil = Sync
}

func comparedProtocols() []protocolEntry {
	return []protocolEntry{
		{"Sync (paper)", nil},
		{"BoundedCF (FC95-style)", baseline.BoundedCFBuilder(0)},
		{"RoundMidpoint (WL88-style)", baseline.RoundMidpointBuilder()},
		{"SrikanthToueg (ST87-style)", baseline.SrikanthTouegBuilder()},
		{"NTPSlew", baseline.NTPSlewBuilder(2)},
	}
}

// E04RecoveryVsBaselines reproduces Table 3: §1.1's claim that
// minimal-correction convergence functions may never complete recovery,
// while Sync recovers in O(log(offset/Δ)) rounds. Round-based and
// resynchronization baselines fail or degrade for their own structural
// reasons (round mismatch; linear catch-up).
func E04RecoveryVsBaselines(quick bool) Table {
	t := Table{
		ID:      "E4",
		Title:   "Recovery time (s) after a clock smash, by protocol and offset",
		Columns: []string{"protocol", "+1s", "+16s", "+64s", "+256s"},
		Notes: "Sync recovers every offset in a few rounds (logarithmic); BoundedCF needs " +
			"offset/clamp rounds (linear, stalls in-run for large offsets); RoundMidpoint never " +
			"recovers once the clock is epochs away; SrikanthToueg waits ≈offset for forward " +
			"smashes; NTP steps recover but without Byzantine trimming. '∞' = not recovered in-run.",
	}
	offsets := []simtime.Duration{1, 16, 64, 256}
	duration := simtime.Duration(scaled(quick, 1500, 900))
	recovered := map[string][]bool{}
	for _, p := range comparedProtocols() {
		row := []any{p.name}
		for _, off := range offsets {
			s := scenario.Scenario{
				Name:     fmt.Sprintf("e4-%s-%v", p.name, off),
				Seed:     400,
				N:        7,
				F:        2,
				Duration: duration,
				Theta:    4 * simtime.Minute,
				Rho:      1e-4,
				Builder:  p.builder,
				Adversary: adversary.Schedule{Corruptions: []adversary.Corruption{{
					Node: 6, From: 60, To: 61,
					Behavior: adversary.ClockSmash{Offset: off, Quiet: true},
				}}},
			}
			res := mustRun(s)
			rv := res.Report.Recoveries[0]
			recovered[p.name] = append(recovered[p.name], rv.Ok)
			if rv.Ok {
				row = append(row, float64(rv.Time()))
			} else {
				row = append(row, "∞")
			}
		}
		t.AddRow(row...)
	}
	allOf := func(bs []bool) bool {
		for _, b := range bs {
			if !b {
				return false
			}
		}
		return true
	}
	sync := recovered["Sync (paper)"]
	t.AddCheck("Sync recovers every offset", allOf(sync))
	bcf := recovered["BoundedCF (FC95-style)"]
	t.AddCheck("BoundedCF stalls on large offsets (≥64 s) in-run",
		len(bcf) == 4 && !bcf[2] && !bcf[3])
	rm := recovered["RoundMidpoint (WL88-style)"]
	t.AddCheck("RoundMidpoint never recovers far round epochs (≥64 s)",
		len(rm) == 4 && !rm[2] && !rm[3])
	return t
}

// E08MessageOverhead reproduces Table 5: the cost argument of §1.1 against
// broadcast-based protocols — Sync exchanges Θ(n) fixed-size messages per
// processor per synchronization, the DHSS-style broadcast Θ(n²) with
// growing signature chains.
func E08MessageOverhead(quick bool) Table {
	t := Table{
		ID:    "E8",
		Title: "Message and byte cost per processor per synchronization",
		Columns: []string{"n", "Sync msgs", "Bcast msgs", "msg ratio",
			"Sync bytes", "Bcast bytes", "byte ratio"},
		Notes: "Sync sends 2(n−1) fixed-size messages per processor per round (ping+echo); the " +
			"broadcast protocol floods ≈(n−1)² relays with hop-growing signatures. Expected " +
			"shape: ratios grow linearly with n.",
	}
	duration := simtime.Duration(scaled(quick, 900, 480))
	var ratios []float64
	for _, n := range []int{4, 7, 10, 13} {
		f := (n - 1) / 3
		run := func(b scenario.Builder) (msgsPerSync, bytesPerSync float64) {
			res := mustRun(scenario.Scenario{
				Name:     fmt.Sprintf("e8-n%d", n),
				Seed:     int64(800 + n),
				N:        n,
				F:        f,
				Duration: duration,
				Theta:    4 * simtime.Minute,
				Rho:      1e-4,
				Builder:  b,
			})
			// Normalize per processor per sync interval.
			syncsPerNode := float64(duration) / float64(res.Scenario.SyncInt)
			return float64(res.MsgsSent) / float64(n) / syncsPerNode,
				float64(res.BytesSent) / float64(n) / syncsPerNode
		}
		sm, sb := run(nil)
		bm, bb := run(baseline.BroadcastJoinBuilder())
		t.AddRow(n, sm, bm, bm/sm, sb, bb, bb/sb)
		t.AddCheck(fmt.Sprintf("n=%d: broadcast costs more messages than Sync", n), bm > sm)
		ratios = append(ratios, bm/sm)
	}
	t.AddCheck("message-cost ratio grows with n (Θ(n) separation)",
		len(ratios) >= 2 && ratios[len(ratios)-1] > ratios[0])
	return t
}

// E09Discontinuity reproduces Table 6: Theorem 5(ii)'s discontinuity bound
// ψ = ε + C/2 for Sync, against the larger jumps of round-based and
// resynchronization protocols.
func E09Discontinuity(quick bool) Table {
	t := Table{
		ID:    "E9",
		Title: "Clock smoothness in steady state: single adjustments and the Equation 3 envelope",
		Columns: []string{"protocol", "max |adjust| (s)", "net drawdown (s)",
			"net runup (s)", "ψ literal (s)", "step bound Δ/2+ε (s)"},
		Notes: "Theorem 5(ii) bounds how far a good clock departs from its rate envelope " +
			"(Equation 3). We report both the largest single adjustment and the net " +
			"drawdown/runup against the ρ̃ rate lines. The literal OCR reading ψ = ε + C/2 is " +
			"shown for reference; the provable bounds checked here are Δ/2+ε per step and Δ " +
			"net (see DESIGN.md on the mangled formula). Expected shape: Sync's values sit well " +
			"under the bounds and below the resynchronization baseline's jumps.",
	}
	duration := simtime.Duration(scaled(quick, 3600, 600))
	for _, p := range comparedProtocols() {
		res := mustRun(scenario.Scenario{
			Name:       fmt.Sprintf("e9-%s", p.name),
			Seed:       900,
			N:          7,
			F:          2,
			Duration:   duration,
			Theta:      4 * simtime.Minute,
			Rho:        1e-4,
			InitSpread: 50 * simtime.Millisecond,
			Builder:    p.builder,
		})
		step := float64(res.Report.MaxDiscontinuity)
		draw := float64(res.Report.AccuracyDrawdown)
		run := float64(res.Report.AccuracyRunup)
		t.AddRow(p.name, step, draw, run,
			float64(res.Bounds.Discontinuity), float64(res.Bounds.MaxStep))
		if p.builder == nil {
			t.AddCheck("Sync single adjustments within Δ/2+ε",
				step <= float64(res.Bounds.MaxStep))
			t.AddCheck("Sync net drawdown/runup within Δ",
				draw <= float64(res.Bounds.MaxDeviation) && run <= float64(res.Bounds.MaxDeviation))
		}
	}
	return t
}

// E06ResilienceThreshold reproduces Table 4: the n ≥ 3f+1 requirement. A
// two-faced (split-brain) adversary pins each half of the good processors
// to its own clock when n = 3f, so relative drift separates them without
// bound; with one more processor the larger half wins and deviation stays
// bounded.
func E06ResilienceThreshold(quick bool) Table {
	t := Table{
		ID:    "E6",
		Title: "Resilience threshold: split-brain attack at n=3f vs n=3f+1",
		Columns: []string{"n", "f", "model", "deviation @end (s)", "bound Δ (s)",
			"bounded?"},
		Notes: "With n=3f the two-faced liars keep the trimmed range pinned to each half's own " +
			"values, so the halves drift apart at ≈2ρ per second, unboundedly. With n=3f+1 the " +
			"larger half outnumbers the trimming and the cluster converges. Expected shape: " +
			"n=6 diverges past Δ; n=7 stays bounded.",
	}
	f := 2
	duration := simtime.Duration(scaled(quick, 2*3600, 1800))
	rho := 1e-3 // exaggerated drift makes the divergence rate visible in-run
	for _, n := range []int{3 * f, 3*f + 1} {
		// Good group A = ids [0,2), good group B = [2, n−f), liars = last f.
		slopes := make([]float64, n)
		for i := range slopes {
			switch {
			case i < 2:
				slopes[i] = 1 + rho
			case i < n-f:
				slopes[i] = 1 / (1 + rho)
			default:
				slopes[i] = 1
			}
		}
		liars := []int{n - 2, n - 1}
		sched := adversary.Static(liars, 1, simtime.Time(duration),
			func(int) protocol.Behavior {
				return adversary.SplitBrain{Boundary: 2, Offset: 30 * simtime.Second}
			})
		res := mustRun(scenario.Scenario{
			Name:           fmt.Sprintf("e6-n%d", n),
			Seed:           600,
			N:              n,
			F:              f,
			Duration:       duration,
			Theta:          4 * simtime.Minute,
			Rho:            rho,
			Slopes:         slopes,
			Adversary:      sched,
			SkipValidation: n < 3*f+1,
		})
		// Deviation among the non-faulty processors at the end of the run.
		samples := res.Recorder.Samples()
		last := samples[len(samples)-1]
		var good []float64
		for i := 0; i < n-f; i++ {
			good = append(good, float64(last.Biases[i]))
		}
		dev := spreadOf(good)
		model := "n=3f"
		if n == 3*f+1 {
			model = "n=3f+1"
		}
		bounded := dev <= float64(res.Bounds.MaxDeviation)
		t.AddRow(n, f, model, dev, float64(res.Bounds.MaxDeviation), bounded)
		if n == 3*f {
			t.AddCheck("n=3f: split-brain drives good halves past Δ (divergent)", !bounded)
		} else {
			t.AddCheck("n=3f+1: same attack stays bounded", bounded)
		}
	}
	return t
}

// E07TwoClique reproduces Figure C: the §5 counterexample. Two cliques of
// 3f+1 processors joined by a perfect matching form a (3f+1)-connected
// graph, yet the protocol cannot keep the cliques synchronized with each
// other: each clique's trimming discards its single inter-clique neighbor,
// so relative drift separates the cliques while intra-clique deviation
// stays tight.
func E07TwoClique(quick bool) Table {
	f := 1
	t := Table{
		ID:    "E7",
		Title: "Two-clique counterexample: (3f+1)-connectivity is not sufficient (§5)",
		Columns: []string{"topology", "intra-clique dev (s)", "inter-clique gap (s)",
			"bound Δ (s)"},
		Notes: "Each node trims f+1 extremes; its one matching neighbor is always trimmed, so no " +
			"information flows between cliques and their clocks separate at the relative drift " +
			"rate. Expected shape: tiny intra-clique deviation, inter-clique gap growing ≈2ρt; " +
			"the full-mesh control stays bounded.",
	}
	duration := simtime.Duration(scaled(quick, 2*3600, 1800))
	rho := 1e-3
	size := 3*f + 1
	n := 2 * size
	slopes := make([]float64, n)
	for i := range slopes {
		if i < size {
			slopes[i] = 1 + rho
		} else {
			slopes[i] = 1 / (1 + rho)
		}
	}
	var gapSeries map[string][]float64
	var xs []float64
	finalGap := map[string]float64{}
	finalIntra := map[string]float64{}
	var boundDelta float64
	for _, topo := range []string{"two-clique", "full-mesh"} {
		s := scenario.Scenario{
			Name:         "e7-" + topo,
			Seed:         700,
			N:            n,
			F:            f,
			Duration:     duration,
			Theta:        4 * simtime.Minute,
			Rho:          rho,
			Slopes:       slopes,
			SamplePeriod: simtime.Duration(float64(duration) / 120),
		}
		if topo == "two-clique" {
			s.Topology = network.NewTwoCliques(f)
		}
		res := mustRun(s)
		samples := res.Recorder.Samples()
		last := samples[len(samples)-1]
		intra, inter := cliqueGaps(last.Biases, size)
		t.AddRow(topo, intra, inter, float64(res.Bounds.MaxDeviation))
		finalGap[topo] = inter
		finalIntra[topo] = intra
		boundDelta = float64(res.Bounds.MaxDeviation)

		if gapSeries == nil {
			gapSeries = map[string][]float64{}
		}
		var ys []float64
		xs = xs[:0]
		for _, smp := range samples {
			_, g := cliqueGaps(smp.Biases, size)
			ys = append(ys, g)
			xs = append(xs, float64(smp.At))
		}
		gapSeries[topo] = ys
	}
	t.Figure = asciiplot.Line(xs, gapSeries, asciiplot.Options{
		Width: 64, Height: 12, YLabel: "inter-clique gap (s)", XLabel: "real time (s)",
	})
	t.AddCheck("two-clique: cliques drift past Δ despite (3f+1)-connectivity",
		finalGap["two-clique"] > boundDelta)
	t.AddCheck("two-clique: intra-clique deviation stays ≤ Δ",
		finalIntra["two-clique"] <= boundDelta)
	t.AddCheck("full-mesh control stays bounded",
		finalGap["full-mesh"] <= boundDelta && finalIntra["full-mesh"] <= boundDelta)
	return t
}

// cliqueGaps returns the worst intra-clique spread and the gap between the
// two cliques' mean biases.
func cliqueGaps(biases []simtime.Duration, size int) (intra, inter float64) {
	mean := func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += float64(biases[i])
		}
		return sum / float64(hi-lo)
	}
	spreadRange := func(lo, hi int) float64 {
		var xs []float64
		for i := lo; i < hi; i++ {
			xs = append(xs, float64(biases[i]))
		}
		return spreadOf(xs)
	}
	intra = spreadRange(0, size)
	if s2 := spreadRange(size, 2*size); s2 > intra {
		intra = s2
	}
	inter = mean(0, size) - mean(size, 2*size)
	if inter < 0 {
		inter = -inter
	}
	return intra, inter
}

func spreadOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}
