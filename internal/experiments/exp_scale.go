package experiments

import (
	"fmt"

	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// E21SamplingScaling measures how synchronization quality scales with
// cluster size under sparse estimation: each node pings a seeded random
// k-of-n peer subset per round (k fixed, k ≥ 2f+1) instead of the full
// mesh, so per-round traffic is O(n·k) rather than O(n²). The paper's
// protocol is full-mesh; sampling is the repo's scaling extension, and this
// table is its precision ledger — what the quadratic→linear traffic cut
// costs in measured deviation, size by size. Rows beyond the serial
// simulator's comfort run on the sharded event queue (whose results are
// shard-count independent, so they are directly comparable).
func E21SamplingScaling(quick bool) Table {
	t := Table{
		ID:    "E21",
		Title: "Peer-sampled estimation at scale: deviation vs n at fixed k",
		Columns: []string{"n", "f", "k", "full msgs/node/sync", "sampled msgs/node/sync",
			"traffic ratio", "sampled dev (s)", "full dev (s)", "bound Δ (s)", "within Δ"},
		Notes: "Sync estimates against all n−1 peers each round (2(n−1) msgs/node/sync); with " +
			"k-of-n sampling a round costs 2k msgs/node regardless of n, so the traffic ratio " +
			"falls as k/(n−1) while the trimmed convergence function still sees k ≥ 2f+1 " +
			"readings — enough to discard f fault-influenced extremes from both sides. " +
			"Expected shape: sampled cost flat in n, ratio shrinking toward k/(n−1), and the " +
			"measured sampled deviation staying inside the full-mesh Theorem 5 envelope Δ " +
			"(sampling widens the estimate pool's variance but not its trim safety).",
	}
	f, k := 2, 7
	duration := simtime.Duration(scaled(quick, 4*60, 2*60))
	ns := []int{16, 64, 256}
	if !quick {
		ns = append(ns, 1024)
	}
	var sampledCosts, ratios []float64
	within := true
	for _, n := range ns {
		run := func(samplePeers int) (msgsPerSync, dev, bound float64) {
			s := scenario.Scenario{
				Name:        fmt.Sprintf("e21-n%d-k%d", n, samplePeers),
				Seed:        int64(2100 + n),
				N:           n,
				F:           f,
				SamplePeers: samplePeers,
				Duration:    duration,
				Theta:       5 * simtime.Minute,
				Rho:         1e-4,
				InitSpread:  50 * simtime.Millisecond,
			}
			if n > 256 {
				// Past the serial comfort zone: shard the event queue. The
				// observable results are shard-count independent, so sharded
				// rows compare like-for-like with the serial ones.
				s.Shards = 8
			}
			res := mustRun(s)
			syncsPerNode := float64(duration) / float64(res.Scenario.SyncInt)
			return float64(res.MsgsSent) / float64(n) / syncsPerNode,
				float64(res.Report.MaxDeviation), float64(res.Bounds.MaxDeviation)
		}
		fullMsgs, fullDev, bound := run(0)
		sampledMsgs, sampledDev, _ := run(k)
		ratio := sampledMsgs / fullMsgs
		t.AddRow(n, f, k, fullMsgs, sampledMsgs, ratio, sampledDev, fullDev, bound,
			sampledDev <= bound)
		sampledCosts = append(sampledCosts, sampledMsgs)
		ratios = append(ratios, ratio)
		within = within && sampledDev <= bound
	}
	last := len(ns) - 1
	t.AddCheck("sampled deviation stays within the Theorem 5 envelope Δ at every n", within)
	t.AddCheck("sampled per-node cost is flat in n (O(k), not O(n))",
		sampledCosts[last] < 1.5*sampledCosts[0])
	t.AddCheck("traffic ratio shrinks toward k/(n−1) as n grows",
		ratios[last] < ratios[0]/4)
	return t
}
