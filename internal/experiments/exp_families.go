package experiments

import (
	"fmt"
	"math"
	"sort"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/campaign"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// The experiments in this file measure the named adversary families of
// internal/campaign (E22–E25): one table per family, each pairing the
// family's honest variant (the Theorem 5 envelope must absorb it) with its
// designed-to-fail variant where one exists (the checker must flag it).
// Reproduce any row's campaign interactively with
// `synccampaign -family <name>`.

// famParams is the shared configuration of the family experiments — the
// campaign defaults, so every table matches what `synccampaign -family ...`
// runs out of the box.
func famParams() analysis.Params {
	return analysis.Params{
		N:       7,
		F:       2,
		Rho:     1e-4,
		Delta:   50 * simtime.Millisecond,
		Theta:   5 * simtime.Minute,
		SyncInt: 10 * simtime.Second,
		MaxWait: 100 * simtime.Millisecond,
	}
}

// E22DelaySkew measures the DelaySkew family: per-link asymmetric delay
// attacks aimed at the Marzullo-style trimmed midpoint. A reading is the
// interval [offset−d_rep, offset+d_req] (Definition 4); with non-negative
// delays every interval contains the true offset, so any in-δ asymmetry can
// only widen intervals, never make them lie — and Figure 1's own-clock clamp
// keeps the adjustment at zero while the own clock sits inside the trimmed
// extremes. The out-of-δ variant (delayskew!) therefore attacks the only
// thing skew can deny — the exchange itself: σ·δ link delays starve every
// round trip past the 2δ timeout, and the checker's Lemma 7(iii) recovery
// checkpoints flag the victim that can no longer converge.
func E22DelaySkew(quick bool) Table {
	t := Table{
		ID:    "E22",
		Title: "DelaySkew family: asymmetric link delay vs the trimmed midpoint",
		Columns: []string{"variant", "cross skew", "syncs/node", "measured dev (s)",
			"bound Δ (s)", "violations"},
		Notes: "Interval estimates are truthful under any non-negative delays, and the " +
			"own-clock clamp zeroes the adjustment while the own clock lies inside the " +
			"trimmed extremes — so a delay-only adversary inside δ cannot displace a " +
			"synchronized clock at all. Expected shape: honest rows within Δ with zero " +
			"violations at every severity; the out-of-δ starvation variant flagged on " +
			"every campaign seed, with recovery violations in evidence.",
	}
	p := famParams()
	duration := simtime.Duration(scaled(quick, 1800, 900))
	for _, frac := range []float64{0.25, 0.60, 0.94} {
		res := mustRun(scenario.Scenario{
			Name:     fmt.Sprintf("e22-skew%.2f", frac),
			Seed:     2200,
			N:        p.N,
			F:        p.F,
			Duration: duration,
			Theta:    p.Theta,
			Rho:      p.Rho,
			Delay: network.SkewedDelay{
				Boundary: p.F + 1,
				Slow:     simtime.Duration(frac * float64(p.Delta)),
				Fast:     p.Delta / 64,
				InGroup:  network.NewUniformDelay(p.Delta/20, p.Delta/2),
			},
			SyncInt:    p.SyncInt,
			MaxWait:    p.MaxWait,
			InitSpread: 20 * simtime.Millisecond,
			Check:      true,
		})
		dev := float64(res.Report.MaxDeviation)
		bound := float64(res.Bounds.MaxDeviation)
		syncs := 0
		for _, st := range res.SyncStats {
			if st != nil {
				syncs += st.Syncs
			}
		}
		t.AddRow("honest (in δ)", fmt.Sprintf("%.2f·δ", frac),
			syncs/p.N, dev, bound, len(res.Violations))
		t.AddCheck(fmt.Sprintf("skew %.2f·δ absorbed: within Δ, zero violations", frac),
			dev <= bound && len(res.Violations) == 0)
	}

	// The designed-to-fail variant, exactly as `-family delayskew!` runs it.
	runs := int(scaled(quick, 8, 4))
	res, err := campaign.Run(campaign.Config{
		Runs: runs, Seed: 1,
		Families: campaign.FamilyMix{{Family: campaign.FamilyDelaySkew, Weight: 1, Hostile: true}},
	})
	if err != nil {
		panic(fmt.Sprintf("e22 hostile campaign: %v", err))
	}
	t.AddRow("hostile delayskew!", "σ·δ, σ∈[40,80]", "-", "-", "-",
		fmt.Sprintf("%d flagged of %d runs", len(res.Failures), runs))
	t.AddCheck("out-of-δ starvation flagged on every seed", len(res.Failures) == runs)
	return t
}

// E23ChurnBudget measures the ChurnBudget family at the Definition 2
// boundary: sustained corrupt/release streams whose spacing margin decides,
// to the millisecond, whether the schedule is an f-limited strategy or one
// processor over budget. The protocol must hold its envelope against the
// tightest valid stream; the validator must reject the over-budget stream;
// and when an over-budget burst is forced through anyway (churn!), the
// online checker must flag what the validator could not vet.
func E23ChurnBudget(quick bool) Table {
	t := Table{
		ID:    "E23",
		Title: "ChurnBudget family: corrupt/release streams at the f-per-Θ boundary",
		Columns: []string{"variant", "margin", "break-ins", "Validate",
			"measured dev (s)", "violations"},
		Notes: "Break-ins spaced (Θ+dwell)/f + margin apart: the extended windows " +
			"[From−Θ, To] of break-ins i and i+f overlap exactly when f·margin ≤ 0. " +
			"Expected shape: +margin streams validate and run clean however small the " +
			"margin; the −1 ms stream is rejected by Validate; the forced f+1 " +
			"simultaneous-liar burst (churn!) is flagged by the checker on every seed.",
	}
	p := famParams()
	// The stream needs ≥ f+1 break-ins for the boundary to bite: with fewer,
	// no Θ-window can ever exceed the budget and the −1 ms rejection row
	// would be vacuous. horizon−start ≥ f·step + dwell ≈ 340 s at defaults.
	duration := simtime.Duration(scaled(quick, 2400, 1800))
	dwell := 20 * simtime.Second
	mk := func(int) protocol.Behavior {
		return adversary.ClockSmash{Offset: 2 * simtime.Second, Quiet: true}
	}
	for _, margin := range []simtime.Duration{simtime.Second, simtime.Millisecond} {
		sched := adversary.Churn(p.N, p.F, simtime.Time(2*p.Theta), simtime.Time(duration-p.Theta),
			dwell, p.Theta, margin, mk)
		if err := sched.Validate(p.N, p.F, p.Theta); err != nil {
			panic(fmt.Sprintf("e23 margin %v: boundary-valid stream rejected: %v", margin, err))
		}
		res := mustRun(scenario.Scenario{
			Name:       fmt.Sprintf("e23-margin%v", margin),
			Seed:       2300,
			N:          p.N,
			F:          p.F,
			Duration:   duration,
			Theta:      p.Theta,
			Rho:        p.Rho,
			Delay:      network.NewUniformDelay(p.Delta/10, p.Delta),
			SyncInt:    p.SyncInt,
			MaxWait:    p.MaxWait,
			InitSpread: 20 * simtime.Millisecond,
			Adversary:  sched,
			Check:      true,
		})
		dev := float64(res.Report.MaxDeviation)
		bound := float64(res.Bounds.MaxDeviation)
		t.AddRow("boundary stream", fmt.Sprintf("+%v", margin), len(sched.Corruptions),
			"ok", dev, len(res.Violations))
		t.AddCheck(fmt.Sprintf("margin +%v: clean within Δ", margin),
			dev <= bound && len(res.Violations) == 0)
	}

	over := adversary.Churn(p.N, p.F, simtime.Time(2*p.Theta), simtime.Time(duration-p.Theta),
		dwell, p.Theta, -simtime.Millisecond, mk)
	overErr := over.Validate(p.N, p.F, p.Theta)
	t.AddRow("over-budget stream", "−1ms", len(over.Corruptions), "rejected", "-", "-")
	t.AddCheck("margin −1ms rejected by Validate", overErr != nil)

	runs := int(scaled(quick, 8, 4))
	res, err := campaign.Run(campaign.Config{
		Runs: runs, Seed: 1,
		Families: campaign.FamilyMix{{Family: campaign.FamilyChurn, Weight: 1, Hostile: true}},
	})
	if err != nil {
		panic(fmt.Sprintf("e23 hostile campaign: %v", err))
	}
	t.AddRow("forced burst churn!", "f+1 liars", p.F+1, "rejected",
		"-", fmt.Sprintf("%d flagged of %d runs", len(res.Failures), runs))
	t.AddCheck("forced f+1 burst flagged by the checker on every seed", len(res.Failures) == runs)
	return t
}

// E24FlashRejoin measures the FlashRecovery family's rejoin-time tail: all f
// processors of the period smashed together and released at one instant, at
// offsets spanning decades. Lemma 7(iii) halves a released clock's distance
// every analysis interval T (down to the 2C+2ε residue), so the rejoin time
// of a crowd released at distance m·Δ grows logarithmically in m: about
// ⌈log₂ m⌉ halvings plus alignment slack. This table is golden-pinned
// (testdata/e24_rejoin.golden): the tail is deterministic in the seed.
func E24FlashRejoin(quick bool) Table {
	t := Table{
		ID:    "E24",
		Title: "FlashRecovery family: rejoin-time tail of simultaneous f-crowd releases",
		Columns: []string{"release offset", "releases", "rejoin p50 (s)", "p90 (s)",
			"max (s)", "log bound (s)", "max ≤ bound"},
		Notes: "Every wave smashes f clocks to the same offset and releases them together. " +
			"Lemma 7(iii): distance ≤ dist₀/2ᵏ + 2C + 2ε after k intervals, so rejoin " +
			"time grows at most with log₂ of the release distance — the log bound " +
			"column is (⌈log₂ m⌉+2)·T. Expected shape: all releases rejoin, every " +
			"per-offset max under its log bound, and the measured tail is nearly " +
			"offset-independent: beyond WayOff the Figure 1 escape jumps a released " +
			"clock to the trimmed midpoint in one Sync, so the observed rejoin is set " +
			"by Sync phase, far inside the worst-case halving schedule.",
	}
	p := famParams()
	bounds := analysis.MustDerive(p)
	waves := int(scaled(quick, 4, 2))
	dwell := 2 * p.SyncInt
	stride := p.Theta + dwell + p.SyncInt
	var maxima []float64
	for _, mult := range []float64{2, 8, 32, 128} {
		offset := simtime.Duration(mult * float64(bounds.MaxDeviation))
		var sched adversary.Schedule
		at := simtime.Time(2 * p.Theta)
		for w := 0; w < waves; w++ {
			victims := make([]int, p.F)
			for j := range victims {
				victims[j] = (w*p.F + j) % p.N
			}
			wave := adversary.Static(victims, at, at.Add(dwell),
				func(int) protocol.Behavior {
					return adversary.ClockSmash{Offset: offset, Quiet: true}
				})
			sched.Corruptions = append(sched.Corruptions, wave.Corruptions...)
			at = at.Add(stride)
		}
		res := mustRun(scenario.Scenario{
			Name:         fmt.Sprintf("e24-x%g", mult),
			Seed:         2400,
			N:            p.N,
			F:            p.F,
			Duration:     simtime.Duration(at) + p.Theta,
			Theta:        p.Theta,
			Rho:          p.Rho,
			Delay:        network.NewUniformDelay(p.Delta/10, p.Delta),
			SyncInt:      p.SyncInt,
			MaxWait:      p.MaxWait,
			InitSpread:   20 * simtime.Millisecond,
			Adversary:    sched,
			SamplePeriod: simtime.Second,
			Check:        true,
		})
		var times []float64
		allOk := true
		for _, rv := range res.Report.Recoveries {
			if !rv.Ok {
				allOk = false
				continue
			}
			times = append(times, float64(rv.Time()))
		}
		sort.Float64s(times)
		logBound := float64(bounds.T) * (math.Ceil(math.Log2(mult)) + 2)
		worst := percentileOf(times, 1)
		t.AddRow(fmt.Sprintf("%g·Δ", mult), len(times), percentileOf(times, 0.5),
			percentileOf(times, 0.9), worst, logBound, worst <= logBound)
		t.AddCheck(fmt.Sprintf("%g·Δ: every release rejoined", mult),
			allOk && len(times) == waves*p.F)
		t.AddCheck(fmt.Sprintf("%g·Δ: max rejoin within the log bound", mult),
			worst <= logBound)
		maxima = append(maxima, worst)
		if len(res.Violations) > 0 {
			t.AddCheck(fmt.Sprintf("%g·Δ: honest run clean", mult), false)
		}
	}
	// 64× the offset (2·Δ → 128·Δ) must cost far less than 64× the rejoin
	// time — the logarithmic tail compression Lemma 7(iii) promises.
	t.AddCheck("tail compresses: max(128·Δ) ≤ 8× max(2·Δ)",
		maxima[3] <= 8*maxima[0])
	return t
}

// percentileOf returns the q-quantile of sorted xs (nearest-rank), in
// seconds; 0 when empty.
func percentileOf(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// E25ColdStart measures the ColdStart family: arbitrary initial clock
// states, decades beyond the δ-scale scatter the analysis assumes at start.
// Like E14's self-stabilization probe, but on the exact scenarios
// `synccampaign -family coldstart` draws: uniform scatter at spreads from
// 1 s to 300 s, converging through the WayOff escape.
func E25ColdStart(quick bool) Table {
	t := Table{
		ID:    "E25",
		Title: "ColdStart family: convergence from arbitrary initial states",
		Columns: []string{"initial spread (s)", "spread @end (s)", "converged ≤ Δ",
			"time to Δ (s)"},
		Notes: "The paper assumes a correct start; the ColdStart family begins anyway at " +
			"spreads up to 300 s. The WayOff escape pulls far clocks to the trimmed " +
			"midpoint, contracting any scatter geometrically, so time-to-Δ grows with " +
			"the log of the spread. Expected shape: every spread converges below Δ " +
			"within the run.",
	}
	p := famParams()
	duration := simtime.Duration(scaled(quick, 1800, 900))
	for _, spread := range []simtime.Duration{simtime.Second, 10 * simtime.Second,
		100 * simtime.Second, 300 * simtime.Second} {
		res := mustRun(scenario.Scenario{
			Name:         fmt.Sprintf("e25-%v", spread),
			Seed:         2500,
			N:            p.N,
			F:            p.F,
			Duration:     duration,
			Theta:        p.Theta,
			Rho:          p.Rho,
			Delay:        network.NewUniformDelay(p.Delta/10, p.Delta),
			SyncInt:      p.SyncInt,
			MaxWait:      p.MaxWait,
			InitSpread:   spread,
			SamplePeriod: simtime.Second,
		})
		samples := res.Recorder.Samples()
		final := spreadOf(toFloats(samples[len(samples)-1].Biases))
		bound := float64(res.Bounds.MaxDeviation)
		timeToBound := "-"
		for _, s := range samples {
			if spreadOf(toFloats(s.Biases)) <= bound {
				timeToBound = formatFloat(float64(s.At))
				break
			}
		}
		converged := final <= bound
		t.AddRow(float64(spread), final, converged, timeToBound)
		t.AddCheck(fmt.Sprintf("spread %v converged below Δ", spread), converged)
	}
	return t
}
