package experiments

import (
	"fmt"

	"clocksync/internal/adversary"
	"clocksync/internal/asciiplot"
	"clocksync/internal/core"
	"clocksync/internal/metrics"
	"clocksync/internal/network"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// The experiments in this file probe the paper's §5 "future directions"
// empirically: partial connectivity, self-stabilization from arbitrary
// states, NTP-style drift feedback, and behaviour beyond the reliable-link
// model. They are explorations of open questions, not reproductions of
// proven claims; their checks pin down the observed behaviour so regressions
// are caught.

// E13ConnectivitySweep probes §5's conjecture that a "sufficiently
// connected" subgraph should suffice (the two-clique construction shows
// (3f+1)-connectivity alone does not). On d-regular circulant graphs —
// which, unlike the two-clique graph, have no sparse cut that trimming can
// sever — the protocol stays synchronized all the way down to modest
// degrees, at the cost of a wider envelope.
func E13ConnectivitySweep(quick bool) Table {
	t := Table{
		ID:    "E13",
		Title: "Partial connectivity (§5 exploration): circulant graphs of degree d",
		Columns: []string{"degree d", "neighbors vs 3f", "measured dev (s)",
			"growth end/mid", "full-mesh bound Δ (s)", "within Δ"},
		Notes: "§5 conjectures a connectivity requirement; E7 shows (3f+1)-CONNECTIVITY is not " +
			"it (a sparse cut defeats trimming). This sweep suggests the operative parameter is " +
			"per-node DEGREE: circulant graphs with degree ≥ 3f keep the full-mesh guarantee " +
			"(d=6,8,12), while at degree 2f (d=4) each node's trimmed range degenerates to its " +
			"local median — median dynamics do not contract the global range, and relative " +
			"drift separates the ring linearly, just like the two-clique. Expected shape: " +
			"within-Δ and growth≈1 for d ≥ 3f; linear growth at d = 2f.",
	}
	n, f := 13, 2
	// The d=2f divergence needs hours of simulated drift to show; the run is
	// cheap enough (<0.5 s wall) to keep full length even in quick mode.
	duration := simtime.Duration(scaled(quick, 2*3600, 2*3600))
	var devs []float64
	var growths []float64
	var lastBound float64
	for _, d := range []int{4, 6, 8, 12} {
		var topo network.Topology = network.NewCirculant(n, d)
		if d == 12 {
			topo = network.NewFullMesh(n)
		}
		res := mustRun(scenario.Scenario{
			Name:         fmt.Sprintf("e13-d%d", d),
			Seed:         1300,
			N:            n,
			F:            f,
			Duration:     duration,
			Theta:        5 * simtime.Minute,
			Rho:          1e-3,
			Topology:     topo,
			InitSpread:   50 * simtime.Millisecond,
			SamplePeriod: 10 * simtime.Second,
		})
		dev := float64(res.Report.MaxDeviation)
		bound := float64(res.Bounds.MaxDeviation)
		// Divergence detector: compare the peak deviation over the last
		// quarter of the run against the second quarter. A drifting-apart
		// topology (E7) grows linearly (ratio ≈ 3); a wide-but-stable
		// envelope has ratio ≈ 1.
		samples := res.Recorder.Samples()
		quarter := len(samples) / 4
		mid := peakDeviation(samples[quarter : 2*quarter])
		end := peakDeviation(samples[3*quarter:])
		growth := end / mid
		t.AddRow(d, fmt.Sprintf("%d vs %d", d, 3*f), dev, growth, bound, dev <= bound)
		devs = append(devs, dev)
		growths = append(growths, growth)
		lastBound = bound
	}
	t.AddCheck("full mesh (d=12) stays within Δ", devs[3] <= lastBound)
	t.AddCheck("d=8 > 3f−1 neighbors keeps the full-mesh guarantee", devs[2] <= lastBound)
	t.AddCheck("d=6 = 3f neighbors still within Δ and stable",
		devs[1] <= lastBound && growths[1] < 1.3)
	t.AddCheck("d=4 = 2f neighbors diverges (median dynamics; growth > 1.3)",
		growths[0] > 1.3 && devs[0] > lastBound)
	return t
}

// peakDeviation returns the largest good-set deviation among the samples.
func peakDeviation(samples []metrics.Sample) float64 {
	peak := 0.0
	for _, s := range samples {
		if d := float64(s.Deviation); d > peak {
			peak = d
		}
	}
	return peak
}

// E14SelfStabilization probes §5's open question: "what happens when the
// adversary is limited but the initial clock values are arbitrary?" Every
// processor starts with an arbitrary clock, far beyond WayOff and with no
// agreed reference; the paper's analysis assumes a correct start, so any
// convergence here is extra credit for the protocol, not a proven property.
func E14SelfStabilization(quick bool) Table {
	t := Table{
		ID:    "E14",
		Title: "Self-stabilization probe (§5 open question): arbitrary initial clocks",
		Columns: []string{"initial configuration", "initial spread (s)", "spread @end (s)",
			"converged ≤ Δ", "time to Δ (s)"},
		Notes: "The analysis assumes correct initialization; §5 asks whether arbitrary initial " +
			"states converge (self-stabilization). Empirically they do for every configuration " +
			"tried — uniform chaos and adversarially bimodal splits — because the WayOff escape " +
			"pulls far clocks to the trimmed midpoint, contracting any configuration " +
			"geometrically. This supports (but does not prove) the conjecture.",
	}
	n, f := 7, 2
	duration := simtime.Duration(scaled(quick, 1800, 900))
	configs := []struct {
		name   string
		biases []simtime.Duration
	}{
		{"uniform chaos ±1000 s", []simtime.Duration{812, -433, 95, -978, 541, -12, 700}},
		{"bimodal 4 vs 3, gap 500 s", []simtime.Duration{0, 0.02, -0.01, 0.01, 500, 500.01, 499.98}},
		{"bimodal 5 vs 2, gap 2000 s", []simtime.Duration{0, 0.01, 0, -0.01, 0.02, 2000, 2000.01}},
		{"geometric ladder", []simtime.Duration{1, 10, 100, 1000, 10000, 100000, 0}},
	}
	for _, cfg := range configs {
		res := mustRun(scenario.Scenario{
			Name:          "e14-" + cfg.name,
			Seed:          1400,
			N:             n,
			F:             f,
			Duration:      duration,
			Theta:         5 * simtime.Minute,
			Rho:           1e-4,
			InitialBiases: cfg.biases,
			SamplePeriod:  simtime.Second,
		})
		samples := res.Recorder.Samples()
		first, last := samples[0], samples[len(samples)-1]
		init := spreadOf(toFloats(first.Biases))
		final := spreadOf(toFloats(last.Biases))
		bound := float64(res.Bounds.MaxDeviation)
		// First sample time at which the all-processor spread fell below Δ.
		timeToBound := "-"
		for _, s := range samples {
			if spreadOf(toFloats(s.Biases)) <= bound {
				timeToBound = formatFloat(float64(s.At))
				break
			}
		}
		converged := final <= bound
		t.AddRow(cfg.name, init, final, converged, timeToBound)
		t.AddCheck(fmt.Sprintf("%s: converged below Δ", cfg.name), converged)
	}
	return t
}

// E15DriftCompensation measures the NTP-style frequency-feedback extension
// (§5: "practical protocols such as NTP involve mechanisms ... such as
// feedback to estimate and compensate for clock drift"). In the regime where
// the drift term 18ρT dominates the deviation budget, the extension learns
// each clock's rate error and cancels most of it.
func E15DriftCompensation(quick bool) Table {
	t := Table{
		ID:    "E15",
		Title: "Drift-feedback extension (§5): deviation with and without compensation",
		Columns: []string{"variant", "measured dev (s)", "worst |rate−1|",
			"theory Δ (s)"},
		Notes: "ρ=10⁻³ with SyncInt=60 s makes drift the dominant error term (clocks diverge " +
			"up to ~0.12 s between corrections). The frequency discipline learns each rate " +
			"error from the corrections themselves. Expected shape: compensated deviation and " +
			"measured rate error several times smaller; the extension is beyond the paper's " +
			"Definition 1 model and is off by default.",
	}
	duration := simtime.Duration(scaled(quick, 4*3600, 3600))
	var devPlain, devComp float64
	for _, comp := range []bool{false, true} {
		name := "Sync (paper model)"
		s := scenario.Scenario{
			Name:         fmt.Sprintf("e15-%v", comp),
			Seed:         1500,
			N:            7,
			F:            2,
			Duration:     duration,
			Theta:        20 * simtime.Minute,
			Rho:          1e-3,
			Delay:        network.NewUniformDelay(simtime.Millisecond, 5*simtime.Millisecond),
			SyncInt:      60 * simtime.Second,
			InitSpread:   20 * simtime.Millisecond,
			SamplePeriod: 10 * simtime.Second,
		}
		if comp {
			name = "Sync + drift feedback"
			s.Builder = scenario.SyncBuilder(func(cfg *core.Config, _ scenario.BuildContext) {
				cfg.DriftComp = true
			})
		}
		res := mustRun(s)
		dev := float64(res.Report.MaxDeviation)
		t.AddRow(name, dev, res.Report.WorstRate, float64(res.Bounds.MaxDeviation))
		if comp {
			devComp = dev
		} else {
			devPlain = dev
		}
	}
	t.AddCheck("compensation reduces deviation by ≥ 30%", devComp <= 0.7*devPlain)
	return t
}

// E16MessageLoss pushes beyond the paper's reliable-link model (§1.2 notes
// the analysis might extend to corrupted links): messages are dropped
// independently with probability p. Failed estimations become (0, ∞)
// sentinels that trimming absorbs like Byzantine values, so moderate loss
// costs accuracy but not safety; only when fewer than 2f+1 estimates survive
// per Sync does the convergence function refuse to adjust and drift win.
func E16MessageLoss(quick bool) Table {
	t := Table{
		ID:    "E16",
		Title: "Beyond the model: independent message loss",
		Columns: []string{"drop prob", "est. success/Sync (of 6)", "skipped Syncs (%)",
			"measured dev (s)", "bound Δ (s)", "within Δ"},
		Notes: "The delivery bound δ is part of the model; real links drop packets. A lost " +
			"ping or echo yields the (0, ∞) sentinel, which the (f+1)-trimming treats exactly " +
			"like a Byzantine extreme. Expected shape: graceful degradation — deviation stays " +
			"within Δ through 20% loss, and only collapses when the expected number of " +
			"surviving estimates approaches 2f+1.",
	}
	n, f := 7, 2
	duration := simtime.Duration(scaled(quick, 3600, 900))
	var series = map[string][]float64{}
	var xs []float64
	var devAtZero, devAtHalf float64
	for _, p := range []float64{0, 0.05, 0.2, 0.5} {
		res := mustRun(scenario.Scenario{
			Name:       fmt.Sprintf("e16-p%g", p),
			Seed:       1600,
			N:          n,
			F:          f,
			Duration:   duration,
			Theta:      5 * simtime.Minute,
			Rho:        1e-4,
			DropProb:   p,
			InitSpread: 50 * simtime.Millisecond,
		})
		skipped, syncs := 0, 0
		for _, st := range res.SyncStats {
			if st != nil {
				skipped += st.Skipped
				syncs += st.Syncs + st.Skipped
			}
		}
		successPerSync := (1 - p) * (1 - p) * float64(n-1)
		dev := float64(res.Report.MaxDeviation)
		t.AddRow(p, successPerSync, 100*float64(skipped)/float64(maxInt(syncs, 1)),
			dev, float64(res.Bounds.MaxDeviation), dev <= float64(res.Bounds.MaxDeviation))
		if p == 0 {
			devAtZero = dev
		}
		if p == 0.5 {
			devAtHalf = dev
		}
		ts, devSeries := res.Recorder.DeviationSeries()
		series[fmt.Sprintf("p=%g", p)] = devSeries
		xs = ts
	}
	t.Figure = asciiplot.Line(xs, series, asciiplot.Options{
		Width: 64, Height: 12, YLabel: "good-set deviation (s)", XLabel: "real time (s)",
	})
	t.AddCheck("5% and 20% loss stay within Δ", true) // asserted per row below
	for i, row := range t.Rows {
		if i <= 2 && row[5] != "true" {
			t.Checks[len(t.Checks)-1].Ok = false
		}
	}
	t.AddCheck("50% loss visibly degrades deviation", devAtHalf > 2*devAtZero)
	return t
}

// E17CachedEstimation reproduces the §3.1 caveat about piggybacked /
// background-thread estimation: "the separate thread may return an old
// cached value which was measured before the call ... hence the analysis
// cannot be applied right out of the box." A recovering node whose
// convergence step consumes pre-jump estimates applies the same correction
// repeatedly, overshooting far past the good range; invalidating the cache
// after every own adjustment restores clean recovery.
func E17CachedEstimation(quick bool) Table {
	t := Table{
		ID:    "E17",
		Title: "Cached estimation (§3.1 caveat): stale estimates vs Definition 4",
		Columns: []string{"variant", "steady dev (s)", "final |bias| (s)",
			"overshoot (s)", "largest adjust (s)"},
		Notes: "All variants run the same 100 s clock-smash recovery with the cache refreshing " +
			"every 2.5×SyncInt. Direct estimation (Definition 4) recovers in one jump. The " +
			"naive cache serves estimates measured against the victim's PRE-jump clock; with " +
			"SyncInt < refresh the victim applies the same stale correction ~2.5× per cycle, " +
			"so each cycle multiplies its error — the loop is exponentially unstable and the " +
			"clock runs away entirely. Invalidating the cache after every own adjustment (and " +
			"on release) restores clean one-jump recovery at the price of a refresh-lag. " +
			"Expected shape: stable / runaway / stable.",
	}
	duration := simtime.Duration(scaled(quick, 1800, 900))
	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"direct (Definition 4)", nil},
		{"cached, naive", func(cfg *core.Config) {
			cfg.CachedEstimation = true
			cfg.CacheRefresh = 25 * simtime.Second
		}},
		{"cached + invalidate-on-adjust", func(cfg *core.Config) {
			cfg.CachedEstimation = true
			cfg.CacheRefresh = 25 * simtime.Second
			cfg.CacheInvalidateOnAdjust = true
		}},
	}
	var overshoots, finals []float64
	for _, v := range variants {
		s := scenario.Scenario{
			Name:     "e17-" + v.name,
			Seed:     1700,
			N:        7,
			F:        2,
			Duration: duration,
			Theta:    5 * simtime.Minute,
			Rho:      1e-4,
			Adversary: adversary.Schedule{Corruptions: []adversary.Corruption{{
				Node: 6, From: 60, To: 61,
				Behavior: adversary.ClockSmash{Offset: 100, Quiet: true},
			}}},
			SamplePeriod: simtime.Second,
		}
		if v.mutate != nil {
			mutate := v.mutate
			s.Builder = scenario.SyncBuilder(func(cfg *core.Config, _ scenario.BuildContext) {
				mutate(cfg)
			})
		}
		res := mustRun(s)
		// Overshoot: how far below the good range (≈0) the victim swings
		// after release — stale estimates keep pushing it down after it has
		// already jumped back.
		overshoot := 0.0
		samples := res.Recorder.Samples()
		for _, smp := range samples {
			if float64(smp.At) <= 61 {
				continue
			}
			if b := -float64(smp.Biases[6]); b > overshoot {
				overshoot = b
			}
		}
		finalBias := float64(samples[len(samples)-1].Biases[6])
		if finalBias < 0 {
			finalBias = -finalBias
		}
		t.AddRow(v.name, float64(res.Report.MaxDeviation), finalBias, overshoot,
			float64(res.Report.MaxAdjustment))
		overshoots = append(overshoots, overshoot)
		finals = append(finals, finalBias)
	}
	t.AddCheck("direct estimation: no overshoot, clean recovery",
		overshoots[0] < 1 && finals[0] < 1)
	t.AddCheck("naive cache: runaway instability (Definition 4 violation bites)",
		overshoots[1] > 100 && finals[1] > 100)
	t.AddCheck("invalidate-on-adjust: stability and recovery restored",
		overshoots[2] < 1 && finals[2] < 1)
	return t
}

func toFloats(ds []simtime.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
