package experiments

import (
	"fmt"
	"math/rand"

	"clocksync/internal/asciiplot"
	"clocksync/internal/network"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// E20NetworkOutage pushes beyond the model in the other direction from E16:
// instead of random loss, the delivery bound δ itself is violated for a
// window — every message takes 20δ, so every estimation times out and no
// processor can adjust. The paper asks a cousin of this in §5 ("what
// happens if the adversary was too powerful for a while, and now it is back
// to being f-limited?"): guarantees are void during the violation, and the
// question is whether they return afterwards.
//
// During the outage the protocol fails safe — the convergence function
// refuses to adjust on all-timeout rounds, clocks free-run, and deviation
// grows at the relative drift rate exactly as if no protocol existed. Once
// δ holds again the next completed Sync round restores the deviation to its
// steady-state band: the protocol is self-healing across temporary model
// violations, with no operator action and no state to repair (roundless
// design paying off once more).
func E20NetworkOutage(quick bool) Table {
	t := Table{
		ID:    "E20",
		Title: "Temporary model violation: delivery bound broken for a window, then restored",
		Columns: []string{"phase", "window (s)", "peak deviation (s)", "vs Δ",
			"syncs completed"},
		Notes: "All messages take 20δ during the outage window, so every estimate times out and " +
			"clocks free-run (the convergence function refuses unsafe adjustments). Expected " +
			"shape: deviation ≤ Δ before; grows ≈ 2ρ·t during (pure drift — no wild jumps, " +
			"because failing estimations are inert, not poisonous); snaps back under Δ within " +
			"a round or two after δ is restored.",
	}
	const (
		n   = 7
		f   = 2
		rho = 1e-3 // exaggerated so the outage drift is clearly visible
	)
	// The outage drift needs the full window to cross Δ; the run is cheap
	// (<0.2 s wall), so keep full length even in quick mode.
	duration := simtime.Duration(scaled(quick, 3600, 3600))
	outageStart, outageEnd := 0.4*float64(duration), 0.6*float64(duration)
	base := network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond)
	// The outage flag is closure state shared between the delay model
	// (sampled at send time) and the simulator events that toggle it.
	outage := false
	delay := network.DelayFunc{
		Fn: func(from, to int, rng *rand.Rand) simtime.Duration {
			d := base.Sample(from, to, rng)
			if outage {
				return d * 20
			}
			return d
		},
		BoundVal: base.Bound(), // the *claimed* bound; the outage violates it
	}

	s := scenario.Scenario{
		Name:         "e20-outage",
		Seed:         2000,
		N:            n,
		F:            f,
		Duration:     duration,
		Theta:        5 * simtime.Minute,
		Rho:          rho,
		Delay:        delay,
		InitSpread:   50 * simtime.Millisecond,
		SamplePeriod: 5 * simtime.Second,
	}
	// Toggle the outage with simulator events: Builder gives us access to
	// the sim through the first node's harness.
	first := true
	inner := scenario.SyncBuilder(nil)
	s.Builder = func(ctx scenario.BuildContext) scenario.Starter {
		if first {
			first = false
			sim := ctx.Harness.Sim()
			sim.At(simtime.Time(outageStart), func() { outage = true })
			sim.At(simtime.Time(outageEnd), func() { outage = false })
		}
		return inner(ctx)
	}
	res := mustRun(s)

	samples := res.Recorder.Samples()
	phasePeak := func(lo, hi float64) float64 {
		peak := 0.0
		for _, smp := range samples {
			at := float64(smp.At)
			if at >= lo && at < hi {
				if d := float64(smp.Deviation); d > peak {
					peak = d
				}
			}
		}
		return peak
	}
	bound := float64(res.Bounds.MaxDeviation)
	settle := 3 * float64(res.Bounds.T) // a couple of rounds to re-converge
	before := phasePeak(120, outageStart)
	during := phasePeak(outageStart, outageEnd)
	after := phasePeak(outageEnd+settle, float64(duration))
	syncs := 0
	for _, st := range res.SyncStats {
		if st != nil {
			syncs += st.Syncs
		}
	}
	t.AddRow("before (model holds)", fmt.Sprintf("[120, %.0f)", outageStart), before, before/bound, "-")
	t.AddRow("outage (δ violated ×20)", fmt.Sprintf("[%.0f, %.0f)", outageStart, outageEnd), during, during/bound, "-")
	t.AddRow("after (model restored)", fmt.Sprintf("[%.0f, %.0f)", outageEnd+settle, float64(duration)), after, after/bound, fmt.Sprint(syncs))

	ts, devs := res.Recorder.DeviationSeries()
	t.Figure = asciiplot.Line(ts, map[string][]float64{"deviation": devs},
		asciiplot.Options{Width: 68, Height: 12, YLabel: "good-set deviation (s)", XLabel: "real time (s)"})

	t.AddCheck("before the outage: deviation ≤ Δ", before <= bound)
	t.AddCheck("during the outage: clocks free-run (deviation grows past Δ)", during > bound)
	t.AddCheck("no wild jumps during the outage (peak ≈ drift accumulation, not runaway)",
		during <= 2*rho*(outageEnd-outageStart)+before+0.05)
	t.AddCheck("after restoration: deviation back ≤ Δ within a few rounds", after <= bound)
	return t
}
