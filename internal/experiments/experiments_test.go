package experiments

import (
	"strings"
	"testing"
)

// TestQuickSuiteShapes runs every experiment in quick mode and requires all
// machine-verified shape assertions to hold — the paper's qualitative
// predictions must survive even the shortened runs.
func TestQuickSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still simulates tens of cluster-minutes")
	}
	for _, tab := range All(true) {
		tab := tab
		t.Run(tab.ID, func(t *testing.T) {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", tab.ID)
			}
			if len(tab.Checks) == 0 {
				t.Fatalf("%s has no shape checks", tab.ID)
			}
			for _, c := range tab.Checks {
				if !c.Ok {
					t.Errorf("%s check failed: %s\n%s", tab.ID, c.Name, tab.String())
				}
			}
		})
	}
}

// TestExperimentDeterminism: regenerating an experiment must be
// bit-for-bit reproducible — the property EXPERIMENTS.md promises.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiments")
	}
	a1, a2 := E10EstimationError(true), E10EstimationError(true)
	if a1.String() != a2.String() {
		t.Fatal("E10 output differs across identical runs")
	}
	b1, b2 := E03RecoveryHalving(true), E03RecoveryHalving(true)
	if b1.String() != b2.String() {
		t.Fatal("E3 output differs across identical runs")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   "a note",
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 1e-9)
	tab.AddCheck("works", true)
	tab.AddCheck("broken", false)
	out := tab.String()
	for _, want := range []string{"=== EX — demo ===", "long-column", "2.5000", "1e-09",
		"Note: a note", "[PASS] works", "[FAIL] broken"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if tab.ChecksPass() {
		t.Error("ChecksPass must be false with a failing check")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Figure:  "fig\n",
		Notes:   "note|with pipe",
	}
	tab.AddRow("x|y", 2)
	tab.AddCheck("good", true)
	tab.AddCheck("bad", false)
	out := tab.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| --- | --- |",
		"x\\|y", "```\nfig\n```", "> note|with pipe", "- [x] good", "- [ ] bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5000",
		1e6:     "1e+06",
		-3.25:   "-3.2500",
		0.00005: "5e-05",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
