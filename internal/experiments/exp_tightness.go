package experiments

import (
	"fmt"

	"clocksync/internal/adversary"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// E19TightnessProbe asks how much of the Theorem 5 deviation budget a
// *coordinated* adversary can actually consume in this harness. The benign
// experiments sit at ~5% of Δ because random delays and uncoordinated
// smashes waste the budget; here every lever is pulled at once:
//
//   - hardware drift split to the extremes (half the good processors at
//     1+ρ, half at 1/(1+ρ) — the full 18ρT term in play);
//   - maximally asymmetric link delays (requests slow, replies fast), which
//     biases every estimate by (δ_fwd − δ_rev)/2 with a sign that depends on
//     the processor pair — the systematic part of the 16ε term;
//   - f static two-faced liars pinning the halves apart at the trimming
//     limit (the E6 attack, here at n = 3f+1 where it must stay bounded).
//
// The measured deviation rises roughly an order of magnitude over the
// benign runs yet stays under Δ — evidence both that the bound is honored
// under coordinated attack and that its remaining slack is real worst-case
// conservatism (adaptive per-step adversarial placement), not measurement
// luck.
func E19TightnessProbe(quick bool) Table {
	t := Table{
		ID:    "E19",
		Title: "Tightness probe: how much of Δ can a coordinated adversary consume?",
		Columns: []string{"configuration", "measured dev (s)", "bound Δ (s)", "fraction of Δ",
			"accuracy drawdown (s)"},
		Notes: "Each row adds one adversarial lever. Expected shape: the fraction of the budget " +
			"consumed climbs steeply over the benign baseline but never reaches 1 — the bound " +
			"holds with slack that corresponds to the analysis's worst-case-per-step " +
			"assumptions, which no fixed strategy in this harness can realize simultaneously " +
			"at every Sync.",
	}
	const (
		n   = 7
		f   = 2
		rho = 1e-4
	)
	duration := simtime.Duration(scaled(quick, 2*3600, 1800))
	delta := 50 * simtime.Millisecond

	extremeSlopes := func() []float64 {
		slopes := make([]float64, n)
		for i := range slopes {
			if i%2 == 0 {
				slopes[i] = 1 + rho
			} else {
				slopes[i] = 1 / (1 + rho)
			}
		}
		return slopes
	}
	asym := network.AsymmetricDelay{
		FwdMin: delta - delta/50, FwdMax: delta,
		RevMin: delta / 50, RevMax: delta / 25,
	}
	liars := adversary.Static([]int{n - 2, n - 1}, 1, simtime.Time(duration),
		func(int) protocol.Behavior {
			return adversary.SplitBrain{Boundary: 2, Offset: 30 * simtime.Second}
		})

	type config struct {
		name   string
		mutate func(*scenario.Scenario)
	}
	configs := []config{
		{"benign (random delays, no faults)", func(s *scenario.Scenario) {}},
		{"+ extreme drift split", func(s *scenario.Scenario) {
			s.Slopes = extremeSlopes()
		}},
		{"+ asymmetric delays", func(s *scenario.Scenario) {
			s.Slopes = extremeSlopes()
			s.Delay = asym
		}},
		{"+ split-brain liars (all levers)", func(s *scenario.Scenario) {
			s.Slopes = extremeSlopes()
			s.Delay = asym
			s.Adversary = liars
		}},
	}
	var fractions []float64
	for _, cfg := range configs {
		s := scenario.Scenario{
			Name:       "e19-" + cfg.name,
			Seed:       1900,
			N:          n,
			F:          f,
			Duration:   duration,
			Theta:      5 * simtime.Minute,
			Rho:        rho,
			Delay:      network.NewUniformDelay(delta/10, delta),
			InitSpread: 50 * simtime.Millisecond,
		}
		cfg.mutate(&s)
		res := mustRun(s)
		frac := float64(res.Report.MaxDeviation) / float64(res.Bounds.MaxDeviation)
		t.AddRow(cfg.name, float64(res.Report.MaxDeviation),
			float64(res.Bounds.MaxDeviation), frac,
			float64(res.Report.AccuracyDrawdown))
		fractions = append(fractions, frac)
		t.AddCheck(fmt.Sprintf("%s: deviation stays ≤ Δ", cfg.name), frac <= 1)
	}
	t.AddCheck("coordinated levers consume a multiple of the benign budget share (≥2×)",
		fractions[3] >= 2*fractions[0])
	t.AddCheck("levers compose monotonically (full stack ≥ drift-only)",
		fractions[3] >= fractions[1])
	return t
}
