package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestE24RejoinGolden pins the FlashRecovery rejoin-tail table byte-for-byte
// against testdata/e24_rejoin.golden: the flash waves, the simulator and the
// recovery measurements are all deterministic in the fixed seed, so any
// drift in these numbers is a behavior change that must be reviewed, not
// noise. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestE24RejoinGolden -update
func TestE24RejoinGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates several flash-crowd runs")
	}
	tab := E24FlashRejoin(true)
	for _, c := range tab.Checks {
		if !c.Ok {
			t.Errorf("E24 check failed: %s", c.Name)
		}
	}
	got := tab.String()
	path := filepath.Join("testdata", "e24_rejoin.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("E24 rejoin table drifted from %s (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestFamilyExperimentDeterminism: the family tables must regenerate
// bit-for-bit, the property the golden pin (and EXPERIMENTS.md) relies on.
func TestFamilyExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiments")
	}
	a1, a2 := E24FlashRejoin(true), E24FlashRejoin(true)
	if a1.String() != a2.String() {
		t.Fatal("E24 output differs across identical runs")
	}
	b1, b2 := E25ColdStart(true), E25ColdStart(true)
	if b1.String() != b2.String() {
		t.Fatal("E25 output differs across identical runs")
	}
}
