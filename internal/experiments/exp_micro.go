package experiments

import (
	"fmt"
	"math"

	"clocksync/internal/adversary"
	"clocksync/internal/clock"
	"clocksync/internal/core"
	"clocksync/internal/des"
	"clocksync/internal/metrics"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
	"clocksync/internal/stats"
)

// E10EstimationError reproduces Table 7: the §3.1 refinement — repeatedly
// ping and keep the estimate with the smallest round-trip time. On networks
// whose latency is usually small but occasionally spikes (and is asymmetric
// between directions), the min-RTT-of-k filter shrinks both the actual
// error and the reported error bar.
func E10EstimationError(quick bool) Table {
	t := Table{
		ID:    "E10",
		Title: "Clock-estimation error vs pings-per-estimate k (spiky asymmetric network)",
		Columns: []string{"k", "mean |err| (ms)", "p99 |err| (ms)", "mean bar a (ms)",
			"bar always valid"},
		Notes: "§3.1: \"repeatedly ping ... choose the estimation with the least round trip " +
			"time\" (the NTP trick). Expected shape: error and error bar shrink with k, and the " +
			"true offset always lies within ±a of the estimate (Definition 4).",
	}
	trials := int(scaled(quick, 400, 120))
	trueOffset := simtime.Duration(0.25)
	var meanErrs []float64
	for _, k := range []int{1, 2, 4, 8} {
		sim := des.New(int64(1000 + k))
		delay := network.SpikyDelay{
			Base:      network.NewUniformDelay(2*simtime.Millisecond, 10*simtime.Millisecond),
			SpikeProb: 0.3,
			SpikeMax:  60 * simtime.Millisecond,
		}
		net := network.New(sim, network.NewFullMesh(2), delay)
		h0 := protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
		_ = protocol.NewHarness(1, sim, net, clock.NewLocal(clock.NewDrifting(0, simtime.Time(trueOffset), 1)))

		var errsMs, barsMs []float64
		valid := true
		var launch func(i int)
		launch = func(i int) {
			if i >= trials {
				return
			}
			h0.PingBest(1, k, simtime.Second, func(e protocol.Estimate) {
				if e.OK {
					errAbs := math.Abs(float64(e.D - trueOffset))
					errsMs = append(errsMs, errAbs*1e3)
					barsMs = append(barsMs, float64(e.A)*1e3)
					if errAbs > float64(e.A)+1e-9 {
						valid = false
					}
				}
				sim.After(simtime.Second, func() { launch(i + 1) })
			})
		}
		sim.After(0, func() { launch(0) })
		sim.Run()

		sum := stats.Summarize(errsMs)
		t.AddRow(k, sum.Mean, sum.P99, stats.Mean(barsMs), valid)
		t.AddCheck(fmt.Sprintf("k=%d: true offset always within ±a (Definition 4)", k), valid)
		meanErrs = append(meanErrs, sum.Mean)
	}
	t.AddCheck("min-RTT-of-k shrinks the mean error (k=8 < k=1)",
		len(meanErrs) == 4 && meanErrs[3] < meanErrs[0])
	return t
}

// E11WayOffAblation reproduces Table 8: what the WayOff escape actually buys
// (§3.2/§3.3), and the "Known values" claim that parameters may overestimate
// the network constants by a multiplicative factor without much harm.
func E11WayOffAblation(quick bool) Table {
	t := Table{
		ID:    "E11",
		Title: "Design ablation: WayOff setting and parameter overestimation",
		Columns: []string{"variant", "recovery time (s)", "WayOff triggers",
			"max deviation (s)", "max |adjust| (s)"},
		Notes: "With WayOff the smashed processor jumps back in one Sync; without it (WayOff=∞) " +
			"the clipped rule still halves the distance per round — logarithmic but several " +
			"rounds slower, exactly the tradeoff §3.3 describes (fast recovery was chosen over " +
			"minimal correction). A tiny WayOff makes every processor jump to the midpoint, " +
			"inflating corrections. Overestimating all parameters ×4 degrades bounds gracefully.",
	}
	duration := simtime.Duration(scaled(quick, 1800, 900))
	smash := 64 * simtime.Second
	recTimes := map[string]metrics.Recovery{}

	type variant struct {
		name   string
		mutate func(*core.Config, scenario.BuildContext)
		scale  func(*scenario.Scenario)
	}
	variants := []variant{
		{name: "derived WayOff = Δ+ε"},
		{name: "WayOff ×10", mutate: func(c *core.Config, ctx scenario.BuildContext) {
			c.WayOff *= 10
		}},
		{name: "WayOff = ∞ (no escape)", mutate: func(c *core.Config, ctx scenario.BuildContext) {
			c.WayOff = simtime.Duration(math.MaxFloat64 / 4)
		}},
		{name: "WayOff tiny (50ms)", mutate: func(c *core.Config, ctx scenario.BuildContext) {
			c.WayOff = 50 * simtime.Millisecond
		}},
		{name: "params ×4 overestimate", scale: func(s *scenario.Scenario) {
			s.MaxWait = 4 * 2 * s.Delay.Bound()
			s.SyncInt = 4 * 10 * simtime.Second
		}},
	}
	for _, v := range variants {
		s := scenario.Scenario{
			Name:     "e11-" + v.name,
			Seed:     1100,
			N:        7,
			F:        2,
			Duration: duration,
			Theta:    500 * simtime.Second,
			Rho:      1e-4,
			Delay:    network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond),
			Adversary: adversary.Schedule{Corruptions: []adversary.Corruption{{
				Node: 6, From: 60, To: 61,
				Behavior: adversary.ClockSmash{Offset: smash, Quiet: true},
			}}},
		}
		if v.scale != nil {
			v.scale(&s)
		}
		var victim *core.Node
		s.Builder = func(ctx scenario.BuildContext) scenario.Starter {
			st := scenario.SyncBuilder(v.mutate)(ctx)
			if ctx.Index == 6 {
				victim = st.(*core.Node)
			}
			return st
		}
		res := mustRun(s)
		rv := res.Report.Recoveries[0]
		recTimes[v.name] = rv
		recovery := "∞"
		if rv.Ok {
			recovery = formatFloat(float64(rv.Time()))
		}
		t.AddRow(v.name, recovery, victim.Stats().WayOffTriggers,
			float64(res.Report.MaxDeviation), float64(res.Report.MaxAdjustment))
	}
	t.AddCheck("derived WayOff recovers", recTimes["derived WayOff = Δ+ε"].Ok)
	t.AddCheck("no-escape variant still recovers (clipped rule halves distance)",
		recTimes["WayOff = ∞ (no escape)"].Ok)
	if a, b := recTimes["derived WayOff = Δ+ε"], recTimes["WayOff = ∞ (no escape)"]; a.Ok && b.Ok {
		t.AddCheck("derived WayOff recovers at least as fast as no-escape",
			a.Time() <= b.Time()+1e-9)
	}
	t.AddCheck("×4 parameter overestimate still recovers (\"Known values\", §3.3)",
		recTimes["params ×4 overestimate"].Ok)
	return t
}

// E12DriftDelaySweep reproduces Table 9: how the measured deviation tracks
// the Δ = 16ε + 18ρT + 4C formula across the model envelope. ε scales with
// the delivery bound δ, so the 16ε term dominates at realistic drift rates.
func E12DriftDelaySweep(quick bool) Table {
	t := Table{
		ID:    "E12",
		Title: "Deviation across the (ρ, δ) model envelope",
		Columns: []string{"ρ", "δ (ms)", "ε (ms)", "measured Δ (s)", "bound Δ (s)",
			"ratio"},
		Notes: "Δ = 16ε + 18ρT + 4C with ε ≈ δ·(1+ρ): halving δ halves the bound; drift only " +
			"matters once 18ρT rivals 16ε. Expected shape: measured deviation scales with δ and " +
			"stays under the bound everywhere.",
	}
	duration := simtime.Duration(scaled(quick, 1800, 600))
	rhos := []float64{0, 1e-6, 1e-4, 1e-3}
	deltas := []simtime.Duration{simtime.Millisecond, 10 * simtime.Millisecond,
		50 * simtime.Millisecond, 200 * simtime.Millisecond}
	if quick {
		rhos = []float64{1e-6, 1e-3}
		deltas = []simtime.Duration{10 * simtime.Millisecond, 200 * simtime.Millisecond}
	}
	for _, rho := range rhos {
		for _, delta := range deltas {
			res := mustRun(scenario.Scenario{
				Name:       fmt.Sprintf("e12-r%g-d%v", rho, delta),
				Seed:       1200,
				N:          7,
				F:          2,
				Duration:   duration,
				Theta:      10 * simtime.Minute,
				Rho:        rho,
				Delay:      network.NewUniformDelay(delta/10, delta),
				InitSpread: delta,
			})
			t.AddRow(rho, float64(delta)*1e3, float64(res.Bounds.Eps)*1e3,
				float64(res.Report.MaxDeviation), float64(res.Bounds.MaxDeviation),
				float64(res.Report.MaxDeviation)/float64(res.Bounds.MaxDeviation))
			t.AddCheck(fmt.Sprintf("ρ=%g δ=%v: measured ≤ Δ", rho, delta),
				res.Report.MaxDeviation <= res.Bounds.MaxDeviation)
		}
	}
	return t
}
