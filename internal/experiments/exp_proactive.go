package experiments

import (
	"fmt"
	"math/big"

	"clocksync/internal/adversary"
	"clocksync/internal/proactive"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// noopProtocol never synchronizes — the free-running control.
type noopProtocol struct{}

func (noopProtocol) Start() {}

// E18ProactiveSecurity closes the loop on the paper's motivation (§1):
// "the security and reliability of such periodical protocols depend on
// securely synchronized clocks." Seven holders share a secret with
// threshold f+1 = 3 and refresh their shares whenever their LOCAL clock
// crosses an epoch boundary. A mobile adversary, comfortably f-limited,
// plays the following moves:
//
//  1. smash one holder's clock back by ≈ one epoch, then leave;
//  2. steal shares from two other holders during wall epoch 2;
//  3. return to the first holder during wall epoch 3.
//
// With Sync underneath, the smashed holder resynchronizes within Θ, so by
// step 3 it has refreshed and surrenders an epoch-3 share: the attacker
// holds {2, 2, 3} — below threshold in every epoch, and the cross-epoch
// interpolation provably yields garbage. Without synchronization the holder
// still lives in epoch 2 at step 3, the attacker holds three epoch-2 shares,
// and the real Shamir reconstruction below recovers the secret.
func E18ProactiveSecurity(quick bool) Table {
	t := Table{
		ID:    "E18",
		Title: "Proactive secret sharing end-to-end: the motivating application (§1)",
		Columns: []string{"clocks", "stolen share epochs", "best same-epoch count",
			"threshold", "secret reconstructed?"},
		Notes: "Same f-limited adversary, same share-refresh protocol, real Shamir " +
			"reconstruction over GF(2^127−1). Expected shape: with Sync the attacker never " +
			"collects a threshold of same-epoch shares (and mixing epochs interpolates to " +
			"garbage); with free-running clocks the lagging holder hands over a stale share " +
			"and the secret falls.",
	}
	const (
		n        = 7
		f        = 2
		k        = f + 1
		epochLen = 120.0
	)
	secret := big.NewInt(271828182845)

	// The adversary's script (see the function comment). Θ = 55 s keeps it
	// f-limited with every corruption in its own window.
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 4, From: 170, To: 180, Behavior: adversary.ClockSmash{Offset: -125, Quiet: true}},
		{Node: 5, From: 250, To: 260, Behavior: adversary.Crash{}},
		{Node: 6, From: 320, To: 330, Behavior: adversary.Crash{}},
		{Node: 4, From: 390, To: 400, Behavior: adversary.Crash{}},
	}}

	duration := simtime.Duration(scaled(quick, 600, 600))
	for _, variant := range []string{"Sync (paper)", "free-running"} {
		s := scenario.Scenario{
			Name:         "e18-" + variant,
			Seed:         1800,
			N:            n,
			F:            f,
			Duration:     duration,
			Theta:        55 * simtime.Second,
			Rho:          1e-4,
			Adversary:    sched,
			SamplePeriod: simtime.Second,
		}
		if variant == "free-running" {
			s.Builder = func(scenario.BuildContext) scenario.Starter { return noopProtocol{} }
		}
		res := mustRun(s)

		// The attacker reads each victim's current share at break-in time;
		// the share's epoch is determined by the victim's local clock.
		sharing, err := proactive.NewSharing(99, secret, n, k)
		if err != nil {
			panic(err)
		}
		var stolen []proactive.Share
		var epochs []int64
		for _, c := range sched.Corruptions {
			mid := c.From.Add(c.To.Sub(c.From) / 2)
			bias := biasAt(res, c.Node, mid)
			local := float64(mid) + bias
			epoch := int64(local / epochLen)
			if epoch < 0 {
				epoch = 0
			}
			stolen = append(stolen, sharing.ShareAt(c.Node, epoch))
			epochs = append(epochs, epoch)
		}
		// Group by epoch, drop duplicate holders (re-corrupting the same
		// holder in the same epoch yields the same share).
		byEpoch := map[int64]map[int]proactive.Share{}
		for _, sh := range stolen {
			if byEpoch[sh.Epoch] == nil {
				byEpoch[sh.Epoch] = map[int]proactive.Share{}
			}
			byEpoch[sh.Epoch][sh.X] = sh
		}
		best := 0
		reconstructed := false
		for _, group := range byEpoch {
			if len(group) > best {
				best = len(group)
			}
			if len(group) >= k {
				var shares []proactive.Share
				for _, sh := range group {
					shares = append(shares, sh)
				}
				got, err := proactive.Reconstruct(shares, k)
				if err == nil && got.Cmp(secret) == 0 {
					reconstructed = true
				}
			}
		}
		// Cross-epoch mixing must never work, under either variant.
		if len(stolen) >= k {
			if mixed := proactive.ReconstructUnchecked(stolen[:k]); mixed.Cmp(secret) == 0 && best < k {
				panic("cross-epoch shares reconstructed the secret — refresh broken")
			}
		}
		t.AddRow(variant, fmt.Sprintf("%v", epochs), best, k, reconstructed)
		if variant == "free-running" {
			t.AddCheck("free-running clocks: the attacker reconstructs the secret", reconstructed)
		} else {
			t.AddCheck("Sync: the attacker never reaches a same-epoch threshold", !reconstructed && best < k)
		}
	}
	return t
}

// biasAt returns node's bias at the sample nearest to at.
func biasAt(res *scenario.Result, node int, at simtime.Time) float64 {
	samples := res.Recorder.Samples()
	for _, s := range samples {
		if s.At >= at {
			return float64(s.Biases[node])
		}
	}
	return float64(samples[len(samples)-1].Biases[node])
}
