package check_test

import (
	"strings"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/check"
	"clocksync/internal/clock"
	"clocksync/internal/obs"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// synthetic builds a checker over hand-placed clock biases — no simulation,
// so each invariant can be triggered in isolation.
func synthetic(biases []simtime.Duration, bounds analysis.Bounds, limit int) (*check.Checker, []*clock.Local) {
	clocks := make([]*clock.Local, len(biases))
	for i, b := range biases {
		clocks[i] = clock.NewLocal(clock.NewDrifting(0, simtime.Time(b), 1))
	}
	return check.New(check.Config{
		Clocks: check.FromClocks(clocks),
		Bounds: bounds,
		Theta:  300,
		Limit:  limit,
	}), clocks
}

func round(at float64, node int, delta float64) obs.Event {
	return obs.Event{At: at, Kind: obs.KindRound, Node: node,
		Fields: map[string]float64{"delta": delta}}
}

func TestStepViolationReported(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 0.1, MaxDeviation: 10, LogicalDrift: 1e-4}
	c, _ := synthetic([]simtime.Duration{0, 0, 0}, bounds, 0)
	c.Emit(round(100, 1, 0.5)) // |delta| = 0.5 > MaxStep = 0.1
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Invariant != check.InvariantStep || v.Node != 1 || v.At != 100 {
		t.Fatalf("wrong context: %+v", v)
	}
	if v.Observed != 0.5 || v.Bound != 0.1 {
		t.Fatalf("wrong measurement: observed %v bound %v", v.Observed, v.Bound)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "discontinuity") {
		t.Fatalf("Err() = %v, want a discontinuity error", err)
	}
}

func TestDeviationViolationNamesExtremes(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 10, MaxDeviation: 0.2, LogicalDrift: 1e-4}
	c, _ := synthetic([]simtime.Duration{0, 1, 0.05}, bounds, 0)
	c.Emit(round(50, 0, 0))
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(vs), vs)
	}
	v := vs[0]
	if v.Invariant != check.InvariantDeviation || v.Node != -1 {
		t.Fatalf("wrong context: %+v", v)
	}
	if v.Observed != 1 {
		t.Fatalf("spread = %v, want 1s", v.Observed)
	}
	if !strings.Contains(v.Detail, "node 0") || !strings.Contains(v.Detail, "node 1") {
		t.Fatalf("detail does not name the extreme nodes: %q", v.Detail)
	}
}

func TestCleanEventsReportNothing(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 0.1, MaxDeviation: 0.2, LogicalDrift: 1e-4}
	c, _ := synthetic([]simtime.Duration{0, 0.01, 0.02}, bounds, 0)
	for i := 0; i < 10; i++ {
		c.Emit(round(float64(10*i), i%3, 0.001))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
	if c.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", c.Dropped())
	}
}

func TestViolationLimitDropsExcess(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 0.1, MaxDeviation: 10, LogicalDrift: 1e-4}
	c, _ := synthetic([]simtime.Duration{0, 0}, bounds, 2)
	for i := 0; i < 5; i++ {
		c.Emit(round(float64(i), 0, 1)) // every event breaks the step bound
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("recorded %d violations, want limit 2", got)
	}
	if c.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", c.Dropped())
	}
}

func TestCorruptedNodeExemptFromChecks(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 0.1, MaxDeviation: 0.2, LogicalDrift: 1e-4}
	clocks := []*clock.Local{
		clock.NewLocal(clock.NewDrifting(0, 0, 1)),
		clock.NewLocal(clock.NewDrifting(0, 5, 1)), // far out, but corrupted
		clock.NewLocal(clock.NewDrifting(0, 0.01, 1)),
	}
	sched := adversary.Schedule{Corruptions: []adversary.Corruption{
		{Node: 1, From: 90, To: 120, Behavior: adversary.Crash{}},
	}}
	c := check.New(check.Config{Clocks: check.FromClocks(clocks), Schedule: sched, Bounds: bounds, Theta: 300})
	// Node 1 was corrupted within the last Θ: its 5 s bias must not count
	// against the good-set spread, nor its jump against the step bound.
	c.Emit(round(200, 1, 3))
	if err := c.Err(); err != nil {
		t.Fatalf("recovering node tripped a good-set invariant: %v", err)
	}
}

func TestWarmupSkipped(t *testing.T) {
	bounds := analysis.Bounds{Eps: 0.01, MaxStep: 0.1, MaxDeviation: 0.2, LogicalDrift: 1e-4}
	clocks := []*clock.Local{
		clock.NewLocal(clock.NewDrifting(0, 0, 1)),
		clock.NewLocal(clock.NewDrifting(0, 2, 1)),
	}
	c := check.New(check.Config{Clocks: check.FromClocks(clocks), Bounds: bounds, Theta: 300, SkipBefore: 50})
	c.Emit(round(10, 0, 5)) // violates everything, but inside warm-up
	if err := c.Err(); err != nil {
		t.Fatalf("warm-up event checked: %v", err)
	}
	c.Emit(round(60, 0, 5))
	if err := c.Err(); err == nil {
		t.Fatal("post-warm-up violation not reported")
	}
}

// End-to-end: the honest protocol with a mid-run smash-and-release must pass
// every invariant — recovery jumps are exempt by the good-set definition and
// the halving checkpoints tolerate the protocol's actual convergence.
func TestHonestScenarioWithRecoveryIsClean(t *testing.T) {
	s := scenario.Scenario{
		Name:       "check-recovery",
		Seed:       11,
		N:          7,
		F:          2,
		Duration:   20 * simtime.Minute,
		Theta:      5 * simtime.Minute,
		Rho:        1e-4,
		SyncInt:    10 * simtime.Second,
		InitSpread: 50 * simtime.Millisecond,
		Check:      true,
		Adversary: adversary.Schedule{Corruptions: []adversary.Corruption{
			{Node: 2, From: 600, To: 650,
				Behavior: adversary.ClockSmash{Offset: 5 * simtime.Second}},
		}},
	}
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("honest run violated: %s", v)
	}
	found := false
	for _, rv := range res.Report.Recoveries {
		if rv.Node == 2 && rv.Ok {
			found = true
		}
	}
	if !found {
		t.Error("smashed node never recovered — scenario not exercising the checker's recovery path")
	}
}
