// Package check is an online invariant checker for simulation runs: it
// subscribes to the observability event stream and asserts, at every
// adjustment event, the Theorem 5 guarantees the run is supposed to satisfy —
// the deviation envelope over the good set, the per-step discontinuity bound,
// and the Equation 3 accuracy envelope — plus, at scheduled checkpoints after
// every release, the Lemma 7(iii)/Claim 8(iii) distance-halving of recovering
// processors. The first violation is reported with full context (τ, node,
// observed value vs. bound); experiments are eyeballed, campaigns are
// machine-checked.
//
// Two bounds are deliberately not the literal OCR'd constants:
//
//   - Accuracy (Equation 3 drawdown/runup) is checked against Δ, not the
//     literal ψ = ε + C/2: a clock may wander across the width of the good
//     pack, which the literal reading does not allow (see DESIGN.md,
//     "Known deviations", and the discussion in scenario's fuzz test).
//   - Per-step adjustments are checked against MaxStep = Δ/2 + ε (half the
//     deviation envelope plus one reading error), the provable per-execution
//     bound; ψ is the *net* envelope bound, not a per-step one.
package check

import (
	"fmt"
	"math"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

// Invariant names, used in Violation.Invariant and the JSONL output of
// cmd/synccampaign.
const (
	// InvariantDeviation is Theorem 5(i): good-set deviation ≤ Δ.
	InvariantDeviation = "deviation"
	// InvariantStep bounds any single adjustment of a good, warmed-up
	// processor by MaxStep = Δ/2 + ε.
	InvariantStep = "discontinuity"
	// InvariantAccuracy is the Equation 3 rate envelope over good stretches:
	// drawdown/runup against the ρ̃ lines, bounded by Δ.
	InvariantAccuracy = "accuracy"
	// InvariantRecovery is the Lemma 7(iii) halving schedule: a released
	// processor's distance from the good range is ≤ dist₀/2ᵏ (plus residue)
	// k intervals after release, and within Δ before the period ends.
	InvariantRecovery = "recovery"
)

// Violation is one invariant breach, with enough context to locate it in a
// trace: the simulated instant, the processor concerned (−1 when the breach
// is a property of the whole good set), and the observed value against the
// bound it broke.
type Violation struct {
	At        simtime.Time     `json:"at"`
	Node      int              `json:"node"`
	Invariant string           `json:"invariant"`
	Observed  simtime.Duration `json:"observed"`
	Bound     simtime.Duration `json:"bound"`
	Detail    string           `json:"detail,omitempty"`
}

// String renders the violation for humans.
func (v Violation) String() string {
	return fmt.Sprintf("%s violated at τ=%v (node %d): observed %v > bound %v — %s",
		v.Invariant, v.At, v.Node, v.Observed, v.Bound, v.Detail)
}

// BiasSource exposes one processor's clock as an offset from real time at a
// given instant — the only clock access the invariants need. *clock.Local
// satisfies it directly (simulation runs); live harnesses adapt a running
// node's measurable offset (see livenet's chaos harness). Implementations
// are read at check instants only and need not be monotone between reads.
type BiasSource interface {
	Bias(at simtime.Time) simtime.Duration
}

// Scheduler schedules a callback at an absolute instant — the seam that lets
// recovery checkpoints run both on the discrete-event simulator (via Attach)
// and on wall-clock timers in a live cluster.
type Scheduler interface {
	At(t simtime.Time, fn func())
}

// SchedulerFunc adapts a function to a Scheduler.
type SchedulerFunc func(t simtime.Time, fn func())

// At implements Scheduler.
func (f SchedulerFunc) At(t simtime.Time, fn func()) { f(t, fn) }

// FromClocks adapts simulator clocks to the BiasSource slice Config wants.
func FromClocks(clocks []*clock.Local) []BiasSource {
	out := make([]BiasSource, len(clocks))
	for i, c := range clocks {
		out[i] = c
	}
	return out
}

// Config parameterizes a Checker. Clocks, Schedule, Bounds and Theta come
// from the run being checked; SkipBefore excludes the warm-up transient the
// guarantees do not cover (they assume a synchronized start).
type Config struct {
	Clocks   []BiasSource
	Schedule adversary.Schedule
	Bounds   analysis.Bounds
	Theta    simtime.Duration
	// SkipBefore disables deviation/step/accuracy checks before this instant
	// (warm-up convergence from a scattered start).
	SkipBefore simtime.Time
	// Slack multiplies every checked bound; 0 means 1 (exact bounds).
	Slack float64
	// Limit caps the number of recorded violations (0 means 64); further
	// breaches are counted in Dropped.
	Limit int
}

// Checker evaluates the invariants online. It implements obs.Sink: attach it
// to the run's Observer and it reacts to every round event; Attach schedules
// the per-release recovery checkpoints on the simulator. The checker is
// driven entirely from the single-threaded simulation loop and must not be
// shared across runs.
type Checker struct {
	cfg   Config
	slack float64
	limit int

	viols   []Violation
	dropped int

	acc  []accStretch
	recs []recoveryTrack
}

// accStretch is the per-node state of the O(1)-per-sample Equation 3
// envelope check (the same recurrence metrics.Recorder uses offline):
// drawdown = max over τ1<τ2 of the lower-line violation = running-max of
// g(τ) = C(τ) − τ/(1+ρ̃) minus its current value, and symmetrically runup
// from the running-min of h(τ) = C(τ) − τ·(1+ρ̃).
type accStretch struct {
	gMax, hMin float64
	in         bool
}

// recoveryTrack follows one release event through its halving checkpoints.
type recoveryTrack struct {
	node    int
	release simtime.Time
	dist0   float64
	have0   bool
	done    bool
}

// New builds a checker for one run.
func New(cfg Config) *Checker {
	c := &Checker{cfg: cfg, slack: cfg.Slack, limit: cfg.Limit}
	if c.slack <= 0 {
		c.slack = 1
	}
	if c.limit <= 0 {
		c.limit = 64
	}
	c.acc = make([]accStretch, len(cfg.Clocks))
	return c
}

// Attach schedules the Lemma 7(iii) recovery checkpoints on the simulator.
// It is AttachScheduler specialized to *des.Sim, kept for the common case.
func (c *Checker) Attach(sim *des.Sim) {
	c.AttachScheduler(SchedulerFunc(func(t simtime.Time, fn func()) { sim.At(t, fn) }))
}

// AttachScheduler schedules the Lemma 7(iii) recovery checkpoints: for every
// corruption released at τ_r ≥ SkipBefore, the recovering processor's
// distance to the good range is measured at τ_r + k·T for k = 1..K
// (stopping early if the node is corrupted again). Call it once, before the
// run starts. The scheduler decides what "at instant t" means — simulation
// time on *des.Sim, scaled wall-clock timers in a live harness — but the
// callbacks themselves assume the checker's single-threaded discipline, so a
// live scheduler must serialize them with the event feed.
func (c *Checker) AttachScheduler(sim Scheduler) {
	k := c.cfg.Bounds.K
	t := c.cfg.Bounds.T
	for _, cor := range c.cfg.Schedule.Corruptions {
		if cor.To < c.cfg.SkipBefore {
			// Released into the warm-up transient: the "good range" is still
			// converging from the initial spread, so halving against it is
			// not meaningful.
			continue
		}
		// Tracking ends where the node's next corruption begins.
		next := simtime.Time(math.Inf(1))
		for _, other := range c.cfg.Schedule.Corruptions {
			if other.Node == cor.Node && other.From >= cor.To && other.From < next {
				next = other.From
			}
		}
		c.recs = append(c.recs, recoveryTrack{node: cor.Node, release: cor.To})
		idx := len(c.recs) - 1
		sim.At(cor.To, func() { c.recordRelease(idx) })
		for step := 1; step <= k; step++ {
			at := cor.To.Add(simtime.Duration(step) * t)
			if at >= next {
				break
			}
			step := step
			sim.At(at, func() { c.recoveryCheckpoint(idx, step, at) })
		}
	}
}

// Emit implements obs.Sink: every round event (one completed Sync execution,
// clock already adjusted) triggers the deviation, per-step and accuracy
// checks at that instant.
func (c *Checker) Emit(e obs.Event) {
	if e.Kind != obs.KindRound {
		return
	}
	now := simtime.Time(e.At)
	if now < c.cfg.SkipBefore {
		return
	}
	c.checkStep(now, e.Node, simtime.Duration(e.Fields["delta"]))
	c.checkDeviation(now)
	c.checkAccuracy(now)
}

// Violations returns the recorded breaches in detection order.
func (c *Checker) Violations() []Violation { return c.viols }

// Dropped returns how many breaches were discarded beyond the record limit.
func (c *Checker) Dropped() int { return c.dropped }

// Err returns the first violation as an error, or nil when every checked
// invariant held.
func (c *Checker) Err() error {
	if len(c.viols) == 0 {
		return nil
	}
	return fmt.Errorf("check: %s", c.viols[0])
}

func (c *Checker) report(v Violation) {
	if len(c.viols) >= c.limit {
		c.dropped++
		return
	}
	c.viols = append(c.viols, v)
}

// exceeds applies the slack and a 1 ns absolute tolerance for float noise.
func (c *Checker) exceeds(observed, bound float64) bool {
	return observed > bound*c.slack+1e-9
}

// good reports whether node was non-faulty throughout [now−Θ, now]
// (Definition 3's good set).
func (c *Checker) good(node int, now simtime.Time) bool {
	lookback := simtime.Interval{Lo: now.Add(-c.cfg.Theta), Hi: now}
	return !c.cfg.Schedule.ControlledWithin(node, lookback)
}

// checkStep asserts the per-execution adjustment bound for good processors.
// Recovering processors are exempt by construction: a node corrupted within
// the last Θ is not in the good set, and its WayOff jump is exactly the
// recovery mechanism.
func (c *Checker) checkStep(now simtime.Time, node int, delta simtime.Duration) {
	if node < 0 || node >= len(c.cfg.Clocks) || !c.good(node, now) {
		return
	}
	if d := delta.Abs(); c.exceeds(float64(d), float64(c.cfg.Bounds.MaxStep)) {
		c.report(Violation{
			At: now, Node: node, Invariant: InvariantStep,
			Observed: d, Bound: c.cfg.Bounds.MaxStep,
			Detail: "single adjustment of a good processor above Δ/2 + ε",
		})
	}
}

// checkDeviation asserts Theorem 5(i) at this instant: the spread of the
// good processors' logical clocks is at most Δ.
func (c *Checker) checkDeviation(now simtime.Time) {
	lo, hi := math.Inf(1), math.Inf(-1)
	loNode, hiNode, goodCount := -1, -1, 0
	for i, clk := range c.cfg.Clocks {
		if !c.good(i, now) {
			continue
		}
		goodCount++
		b := float64(clk.Bias(now))
		if b < lo {
			lo, loNode = b, i
		}
		if b > hi {
			hi, hiNode = b, i
		}
	}
	if goodCount < 2 {
		return
	}
	if spread := hi - lo; c.exceeds(spread, float64(c.cfg.Bounds.MaxDeviation)) {
		c.report(Violation{
			At: now, Node: -1, Invariant: InvariantDeviation,
			Observed: simtime.Duration(spread), Bound: c.cfg.Bounds.MaxDeviation,
			Detail: fmt.Sprintf("good-set spread between node %d and node %d (%d good)",
				loNode, hiNode, goodCount),
		})
	}
}

// checkAccuracy advances the Equation 3 envelope state of every good
// processor to this instant and asserts drawdown/runup stay within Δ.
// Stretches restart whenever a processor leaves the good set.
func (c *Checker) checkAccuracy(now simtime.Time) {
	rhoT := c.cfg.Bounds.LogicalDrift
	bound := float64(c.cfg.Bounds.MaxDeviation)
	tau := float64(now)
	for i, clk := range c.cfg.Clocks {
		st := &c.acc[i]
		if !c.good(i, now) {
			st.in = false
			continue
		}
		cv := tau + float64(clk.Bias(now))
		g := cv - tau/(1+rhoT)
		h := cv - tau*(1+rhoT)
		if !st.in {
			st.gMax, st.hMin, st.in = g, h, true
			continue
		}
		if d := st.gMax - g; c.exceeds(d, bound) {
			c.report(Violation{
				At: now, Node: i, Invariant: InvariantAccuracy,
				Observed: simtime.Duration(d), Bound: c.cfg.Bounds.MaxDeviation,
				Detail: "clock fell below the (1+ρ̃)⁻¹ rate line by more than Δ",
			})
			st.in = false
			continue
		}
		if u := h - st.hMin; c.exceeds(u, bound) {
			c.report(Violation{
				At: now, Node: i, Invariant: InvariantAccuracy,
				Observed: simtime.Duration(u), Bound: c.cfg.Bounds.MaxDeviation,
				Detail: "clock ran above the (1+ρ̃) rate line by more than Δ",
			})
			st.in = false
			continue
		}
		st.gMax = math.Max(st.gMax, g)
		st.hMin = math.Min(st.hMin, h)
	}
}

// recordRelease captures the recovering processor's starting distance from
// the good range at its release instant.
func (c *Checker) recordRelease(idx int) {
	tr := &c.recs[idx]
	dist, ok := c.distanceToGoodRange(tr.node, tr.release)
	if !ok {
		return // no good processors to measure against; leave have0 unset
	}
	tr.dist0, tr.have0 = dist, true
}

// recoveryCheckpoint asserts the halving envelope k intervals after release:
// dist ≤ max(dist₀/2ᵏ + 2C + 2ε, Δ). The 2C + 2ε residue covers the per-step
// C/2 loss of Claim 8(iii) plus reading error; the Δ floor ends tracking —
// once inside the deviation envelope the processor has rejoined and its
// distance is governed by Theorem 5(i), not the halving schedule.
func (c *Checker) recoveryCheckpoint(idx, k int, at simtime.Time) {
	tr := &c.recs[idx]
	if tr.done || !tr.have0 || c.cfg.Schedule.ActiveAt(tr.node, at) {
		return
	}
	dist, ok := c.distanceToGoodRange(tr.node, at)
	if !ok {
		return
	}
	floor := float64(c.cfg.Bounds.MaxDeviation)
	if dist <= floor {
		tr.done = true
		return
	}
	env := tr.dist0/math.Pow(2, float64(k)) +
		float64(2*c.cfg.Bounds.C) + float64(2*c.cfg.Bounds.Eps)
	if bound := math.Max(env, floor); c.exceeds(dist, bound) {
		c.report(Violation{
			At: at, Node: tr.node, Invariant: InvariantRecovery,
			Observed: simtime.Duration(dist), Bound: simtime.Duration(bound),
			Detail: fmt.Sprintf("distance %d intervals after release at %v not halved (started at %v)",
				k, tr.release, simtime.Duration(tr.dist0)),
		})
		tr.done = true
	}
}

// distanceToGoodRange measures how far node's bias sits outside the bias
// range of the good processors other than itself (0 when inside). ok is
// false when no other processor is good at that instant.
func (c *Checker) distanceToGoodRange(node int, now simtime.Time) (dist float64, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, clk := range c.cfg.Clocks {
		if i == node || !c.good(i, now) {
			continue
		}
		b := float64(clk.Bias(now))
		lo = math.Min(lo, b)
		hi = math.Max(hi, b)
		ok = true
	}
	if !ok {
		return 0, false
	}
	b := float64(c.cfg.Clocks[node].Bias(now))
	switch {
	case b < lo:
		return lo - b, true
	case b > hi:
		return b - hi, true
	default:
		return 0, true
	}
}
