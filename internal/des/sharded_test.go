package des

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"clocksync/internal/simtime"
)

// TestShardedSerialFallback: zero or negative lookahead leaves no safe
// parallel window, so the constructor must collapse to one shard (the
// degenerate serial mode for zero-delay links). Ditto shard counts < 1.
func TestShardedSerialFallback(t *testing.T) {
	for _, tc := range []struct {
		shards    int
		lookahead simtime.Duration
	}{
		{8, 0},
		{8, -1 * simtime.Millisecond},
		{0, simtime.Millisecond},
		{-3, simtime.Millisecond},
	} {
		ps := NewSharded(1, tc.shards, tc.lookahead)
		if ps.Shards() != 1 {
			t.Errorf("NewSharded(shards=%d, lookahead=%v): got %d shards, want 1",
				tc.shards, tc.lookahead, ps.Shards())
		}
	}
	if ps := NewSharded(1, 4, simtime.Millisecond); ps.Shards() != 4 {
		t.Errorf("NewSharded(4, 1ms) collapsed to %d shards", ps.Shards())
	}
}

// TestShardedWindowBoundary: an event scheduled exactly at the lookahead
// horizon tmin+L must NOT execute in the window [tmin, tmin+L) — it belongs
// to the next window, after the barrier has merged cross-shard deliveries
// that may land at exactly that instant.
func TestShardedWindowBoundary(t *testing.T) {
	const L = 10 * simtime.Millisecond
	ps := NewSharded(7, 2, L)

	var order []string
	ps.Shard(0).At(0.000, func() { order = append(order, "A@0") })
	// B sits exactly at 0 + L: the first window is [0, 0.010) and must
	// exclude it.
	ps.Shard(1).At(simtime.Time(L), func() { order = append(order, "B@L") })

	var boundaryWindows []simtime.Time
	ps.OnBarrier(func(w simtime.Time) { boundaryWindows = append(boundaryWindows, w) })

	ps.RunUntil(1)

	if len(order) != 2 || order[0] != "A@0" || order[1] != "B@L" {
		t.Fatalf("execution order = %v, want [A@0 B@L]", order)
	}
	// The first barrier must have fired at exactly w = L, before B ran.
	if len(boundaryWindows) == 0 || boundaryWindows[0] != simtime.Time(L) {
		t.Fatalf("first window bound = %v, want %v", boundaryWindows, simtime.Time(L))
	}
}

// TestShardedCrossShardOrdering: deliveries merged at a barrier into another
// shard must interleave in timestamp order with that shard's own events.
func TestShardedCrossShardOrdering(t *testing.T) {
	const L = 10 * simtime.Millisecond
	ps := NewSharded(3, 2, L)

	var mu sync.Mutex
	var order []string
	log := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}

	// Shard 1's own events at t=0.012 and t=0.030.
	ps.Shard(1).At(0.012, func() { log("own@12ms") })
	ps.Shard(1).At(0.030, func() { log("own@30ms") })

	// Shard 0 "sends" two messages at t=0: the barrier hook plays the role
	// of the message layer, merging them into shard 1 at t=0.015 and
	// t=0.025 (both ≥ L after the send — conservative deliveries).
	delivered := false
	ps.Shard(0).At(0, func() { log("send@0") })
	ps.OnBarrier(func(w simtime.Time) {
		if !delivered && w > 0 {
			delivered = true
			ps.Shard(1).At(0.015, func() { log("x@15ms") })
			ps.Shard(1).At(0.025, func() { log("x@25ms") })
		}
	})

	ps.RunUntil(1)

	want := []string{"send@0", "own@12ms", "x@15ms", "x@25ms", "own@30ms"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestShardedGlobalFirst: at an exact time tie the global event runs before
// shard events at that instant, and it observes all shard clocks advanced to
// its own instant.
func TestShardedGlobalFirst(t *testing.T) {
	const L = 10 * simtime.Millisecond
	ps := NewSharded(5, 2, L)

	var order []string
	ps.Global().At(0.5, func() {
		order = append(order, "global")
		for i := 0; i < ps.Shards(); i++ {
			if now := ps.Shard(i).Now(); now != 0.5 {
				t.Errorf("shard %d clock at global event = %v, want 0.5", i, now)
			}
		}
	})
	ps.Shard(0).At(0.5, func() { order = append(order, "shard") })

	ps.RunUntil(1)

	if len(order) != 2 || order[0] != "global" || order[1] != "shard" {
		t.Fatalf("order = %v, want [global shard]", order)
	}
	// Horizon-inclusive semantics: all clocks land on the horizon.
	if ps.Now() != 1 || ps.Shard(0).Now() != 1 || ps.Shard(1).Now() != 1 {
		t.Fatalf("clocks after RunUntil(1): global=%v s0=%v s1=%v",
			ps.Now(), ps.Shard(0).Now(), ps.Shard(1).Now())
	}
}

// TestShardedReset: Reset rewinds clocks, clears barrier hooks, and replays
// identically for the same seed.
func TestShardedReset(t *testing.T) {
	run := func(ps *ShardedSim) (fired uint64) {
		for i := 0; i < ps.Shards(); i++ {
			sh := ps.Shard(i)
			sh.At(0.001, func() {})
			sh.After(20*simtime.Millisecond, func() {})
		}
		ps.Global().At(0.5, func() {})
		ps.RunUntil(1)
		return ps.Fired()
	}

	ps := NewSharded(11, 4, simtime.Millisecond)
	hookRuns := 0
	ps.OnBarrier(func(simtime.Time) { hookRuns++ })
	first := run(ps)
	if hookRuns == 0 {
		t.Fatal("barrier hook never ran")
	}

	ps.Reset(11)
	if ps.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", ps.Now())
	}
	prevHookRuns := hookRuns
	second := run(ps)
	if hookRuns != prevHookRuns {
		t.Fatalf("barrier hooks survived Reset (%d extra runs)", hookRuns-prevHookRuns)
	}
	if first == 0 || second != first {
		t.Fatalf("fired counts differ after Reset: %d vs %d", second, first)
	}
}

// TestShardedParallelWindows: with enough events per shard the window loop
// must actually run shards concurrently when helpers are available, and the
// result (total fired, final clocks) must match a serial single-shard run.
func TestShardedParallelWindows(t *testing.T) {
	const L = simtime.Millisecond
	const shards = 4
	ps := NewSharded(3, shards, L)

	var fired atomic.Int64
	for i := 0; i < shards; i++ {
		sh := ps.Shard(i)
		var tick func()
		tick = func() {
			fired.Add(1)
			if sh.Now() < 0.9 {
				sh.After(3*simtime.Millisecond, tick)
			}
		}
		sh.At(simtime.Time(i)*0.0001, tick)
	}
	ps.RunUntil(1)

	want := int64(ps.Fired())
	if got := fired.Load(); got != want {
		t.Fatalf("fired callbacks %d != Fired() %d", got, want)
	}
	if fired.Load() < shards*300 {
		t.Fatalf("suspiciously few events fired: %d", fired.Load())
	}
}

// TestWorkerPoolTokens: Acquire is non-blocking, bounded by pool capacity,
// and Release restores every token.
func TestWorkerPoolTokens(t *testing.T) {
	cap := runtime.GOMAXPROCS(0) - 1
	if cap < 1 {
		t.Skip("GOMAXPROCS=1: empty worker pool")
	}
	got := AcquireWorkers(1 << 20)
	if got != cap {
		// Another test may be holding tokens; tolerate fewer but never more.
		if got > cap {
			t.Fatalf("acquired %d workers, pool capacity %d", got, cap)
		}
	}
	// Pool drained (by us and possibly concurrent holders): next acquire
	// must return 0 immediately rather than block.
	if extra := AcquireWorkers(1); extra != 0 && got == cap {
		t.Fatalf("acquired %d extra workers from a drained pool", extra)
	}
	ReleaseWorkers(got)
	if again := AcquireWorkers(cap); again < got {
		ReleaseWorkers(again)
		t.Fatalf("reacquired only %d of %d released workers", again, got)
	} else {
		ReleaseWorkers(again)
	}
	if AcquireWorkers(0) != 0 || AcquireWorkers(-1) != 0 {
		t.Fatal("AcquireWorkers(<=0) must return 0")
	}
}
