package des

import (
	"runtime"
	"sync"
)

// The process-wide simulation worker budget. Every component that fans
// simulation work across goroutines — scenario.Sweep, campaign.Run, and
// ShardedSim's window execution — draws its *extra* goroutines from this one
// pool, sized GOMAXPROCS−1 (the calling goroutine itself is the implicit
// first worker). Because the pool is shared and acquisition is non-blocking,
// nested parallelism composes instead of multiplying: a sweep whose workers
// each run a sharded simulator cannot oversubscribe the machine — once the
// sweep has drained the pool, each sharded run simply executes its shards
// inline on its caller's goroutine. TestWorkerBudgetComposes pins the
// resulting ceiling of GOMAXPROCS concurrent simulation goroutines per entry
// point.
var (
	workerPoolOnce sync.Once
	workerPoolCh   chan struct{}
)

func workerPool() chan struct{} {
	workerPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 0 {
			n = 0
		}
		workerPoolCh = make(chan struct{}, n)
		for i := 0; i < n; i++ {
			workerPoolCh <- struct{}{}
		}
	})
	return workerPoolCh
}

// AcquireWorkers takes up to max helper tokens from the process-wide
// simulation worker pool without blocking and returns how many it got —
// possibly zero, in which case the caller runs its work inline. Every token
// must be returned with ReleaseWorkers.
func AcquireWorkers(max int) int {
	if max <= 0 {
		return 0
	}
	pool := workerPool()
	got := 0
	for got < max {
		select {
		case <-pool:
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseWorkers returns n helper tokens to the pool.
func ReleaseWorkers(n int) {
	pool := workerPool()
	for i := 0; i < n; i++ {
		pool <- struct{}{}
	}
}
