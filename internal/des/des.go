// Package des implements a deterministic discrete-event simulator.
//
// The simulator advances a single virtual real-time axis (the "τ" of the
// paper's analysis). Events are callbacks scheduled at instants; events
// scheduled for the same instant fire in scheduling order, so a run with a
// fixed seed is exactly reproducible. The simulator is single-threaded by
// design: processors in the simulated network are state machines driven by
// events, which makes every bias measurable at every instant without races.
//
// Internally the queue is an index-based 4-ary min-heap over a pooled event
// arena: scheduling an event takes a slot from a free list instead of
// allocating, and the heap stores (time, seq, slot-index) nodes with the
// ordering key inline, so the steady-state schedule→fire path performs zero
// heap allocations and the sift loops compare contiguous memory instead of
// chasing pointers into the arena. Recycled
// slots carry a generation counter; an Event handle captures the generation
// at scheduling time, so cancelling an event that has already fired (and
// whose slot now hosts a different event) is a safe no-op. The firing order
// is the same total (time, sequence) order as the previous container/heap
// implementation — determinism tests pin this byte for byte.
package des

import (
	"fmt"
	"math/rand"

	"clocksync/internal/simtime"
)

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel it. It is a small value (not a pointer into
// the queue): the zero Event is valid and Cancel on it is a no-op, and a
// handle kept past its event's firing is defused by the arena's generation
// counter.
type Event struct {
	s   *Sim
	at  simtime.Time
	idx int32
	gen uint32
}

// At returns the instant the event is scheduled for.
func (e Event) At() simtime.Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event — or the zero Event — is a no-op: the handle's
// generation no longer matches the recycled slot's, so a slot reused for a
// newer event cannot be cancelled through a stale handle.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	slot := &e.s.arena[e.idx]
	if slot.gen != e.gen {
		return
	}
	slot.cancelled = true
}

// slot is one pooled event in the arena. fn is cleared on recycle so the
// arena does not pin dead closures.
type slot struct {
	at        simtime.Time
	seq       uint64
	fn        func()
	gen       uint32
	cancelled bool
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     simtime.Time
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64

	arena []slot    // pooled event storage
	free  []int32   // recycled arena slots
	heap  []heapEnt // 4-ary min-heap ordered by (at, seq)
}

// heapEnt is one heap node. The ordering key (at, seq) is stored inline so
// the sift loops compare contiguous heap memory instead of dereferencing
// into the arena on every comparison — on large clusters the queue holds
// thousands of events and those derefs are cache misses.
type heapEnt struct {
	at  simtime.Time
	seq uint64
	idx int32
}

// entLess orders heap nodes by (time, sequence number). The sequence number
// makes the order total and deterministic — same-instant events fire in
// scheduling order.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// New returns a simulator starting at time 0 with the given RNG seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Reset rewinds the simulator to the state New(seed) returns — time 0, empty
// queue, fresh RNG stream — while keeping the event arena and heap storage
// for reuse. Campaign workers run thousands of scenarios back to back;
// resetting instead of reallocating keeps the queue's memory warm across
// runs. A reset simulator replays a seed byte-for-byte identically to a
// fresh one.
func (s *Sim) Reset(seed int64) {
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.fired = 0
	for i := range s.arena {
		sl := &s.arena[i]
		sl.fn = nil
		sl.gen++ // defuse every outstanding handle from the previous run
	}
	s.heap = s.heap[:0]
	s.free = s.free[:0]
	for i := len(s.arena) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	s.rng.Seed(seed)
}

// Now returns the current virtual time.
func (s *Sim) Now() simtime.Time { return s.now }

// Rand returns the simulator's seeded random source. All randomness in a
// simulation must come from this source to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet drained).
func (s *Sim) Pending() int { return len(s.heap) }

// At schedules fn to run at instant t. Scheduling in the past panics: it is
// always a bug in the caller, and silently reordering time would invalidate
// the analysis the simulator exists to check.
func (s *Sim) At(t simtime.Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, slot{})
		idx = int32(len(s.arena) - 1)
	}
	sl := &s.arena[idx]
	sl.at = t
	sl.seq = s.seq
	sl.fn = fn
	sl.cancelled = false
	s.seq++
	s.push(heapEnt{at: t, seq: sl.seq, idx: idx})
	return Event{s: s, at: t, idx: idx, gen: sl.gen}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d simtime.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("des: scheduling event %v in the past", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the next event. It reports false when the queue is empty or the
// simulation has been stopped.
func (s *Sim) Step() bool {
	for len(s.heap) > 0 && !s.stopped {
		idx := s.pop()
		sl := &s.arena[idx]
		if sl.cancelled {
			s.recycle(idx)
			continue
		}
		s.now = sl.at
		fn := sl.fn
		s.fired++
		// Recycle before running: fn may schedule new events, and handing it
		// the hot slot keeps the arena at its steady-state footprint.
		s.recycle(idx)
		fn()
		return true
	}
	return false
}

// RunUntil fires events until virtual time reaches horizon (inclusive of
// events at exactly horizon) or the queue empties. Afterwards the clock
// reads horizon, even if the queue drained early.
func (s *Sim) RunUntil(horizon simtime.Time) {
	for len(s.heap) > 0 && !s.stopped {
		next, ok := s.peek()
		if !ok || next > horizon {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Stop halts the simulation; subsequent Step calls return false.
func (s *Sim) Stop() { s.stopped = true }

// recycle returns an arena slot to the free list, bumping its generation so
// outstanding handles to the old occupant become inert.
func (s *Sim) recycle(idx int32) {
	sl := &s.arena[idx]
	sl.fn = nil
	sl.gen++
	s.free = append(s.free, idx)
}

// peek returns the time of the next live event, draining cancelled events it
// encounters.
func (s *Sim) peek() (simtime.Time, bool) {
	for len(s.heap) > 0 {
		top := s.heap[0]
		if s.arena[top.idx].cancelled {
			s.pop()
			s.recycle(top.idx)
			continue
		}
		return top.at, true
	}
	return 0, false
}

// push inserts a node into the 4-ary heap, sifting up with a hole (moves
// instead of swaps).
func (s *Sim) push(e heapEnt) {
	s.heap = append(s.heap, e)
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// pop removes the minimum node from the 4-ary heap and returns its arena
// index, sifting down with a hole.
func (s *Sim) pop() int32 {
	h := s.heap
	min := h[0].idx
	last := len(h) - 1
	e := h[last]
	s.heap = h[:last]
	h = s.heap
	n := len(h)
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
	return min
}

// Ticker invokes fn every period of virtual time until cancelled. It is a
// convenience for metrics sampling; protocol alarms are driven by hardware
// clocks instead (see internal/protocol).
type Ticker struct {
	sim     *Sim
	period  simtime.Duration
	fn      func(simtime.Time)
	ev      Event
	stopped bool
}

// NewTicker starts a ticker with the given period; the first tick fires one
// period from now.
func NewTicker(sim *Sim, period simtime.Duration, fn func(simtime.Time)) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.sim.Now())
		t.arm()
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
