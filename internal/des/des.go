// Package des implements a deterministic discrete-event simulator.
//
// The simulator advances a single virtual real-time axis (the "τ" of the
// paper's analysis). Events are callbacks scheduled at instants; events
// scheduled for the same instant fire in scheduling order, so a run with a
// fixed seed is exactly reproducible. The simulator is single-threaded by
// design: processors in the simulated network are state machines driven by
// events, which makes every bias measurable at every instant without races.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"

	"clocksync/internal/simtime"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it.
type Event struct {
	at        simtime.Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 once fired or cancelled
	cancelled bool
}

// At returns the instant the event is scheduled for.
func (e *Event) At() simtime.Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// eventHeap orders events by (time, sequence number). The sequence number
// makes the order total and deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     simtime.Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New returns a simulator starting at time 0 with the given RNG seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() simtime.Time { return s.now }

// Rand returns the simulator's seeded random source. All randomness in a
// simulation must come from this source to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet drained).
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at instant t. Scheduling in the past panics: it is
// always a bug in the caller, and silently reordering time would invalidate
// the analysis the simulator exists to check.
func (s *Sim) At(t simtime.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d simtime.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: scheduling event %v in the past", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the next event. It reports false when the queue is empty or the
// simulation has been stopped.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 && !s.stopped {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events until virtual time reaches horizon (inclusive of
// events at exactly horizon) or the queue empties. Afterwards the clock
// reads horizon, even if the queue drained early.
func (s *Sim) RunUntil(horizon simtime.Time) {
	for len(s.queue) > 0 && !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > horizon {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Stop halts the simulation; subsequent Step calls return false.
func (s *Sim) Stop() { s.stopped = true }

// peek returns the next live event without removing it, draining cancelled
// events it encounters.
func (s *Sim) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// Ticker invokes fn every period of virtual time until cancelled. It is a
// convenience for metrics sampling; protocol alarms are driven by hardware
// clocks instead (see internal/protocol).
type Ticker struct {
	sim     *Sim
	period  simtime.Duration
	fn      func(simtime.Time)
	ev      *Event
	stopped bool
}

// NewTicker starts a ticker with the given period; the first tick fires one
// period from now.
func NewTicker(sim *Sim, period simtime.Duration, fn func(simtime.Time)) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.sim.Now())
		t.arm()
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
