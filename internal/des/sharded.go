// Sharded execution: a conservative-lookahead parallel discrete-event
// simulator built from per-shard Sim queues plus one global barrier queue.
//
// The model is classic conservative PDES: entities (processors) are
// partitioned across shards; each shard owns a serial Sim whose events touch
// only that shard's entities. Cross-shard interactions (message deliveries)
// carry a minimum latency L — the lookahead — so an event executing at time
// t can only affect another shard at or after t+L. That makes the half-open
// window [tmin, W) with W = tmin + L safe to execute in parallel: no event
// inside the window can receive a cross-shard effect that lands inside the
// same window. Cross-shard deliveries are buffered by the message layer and
// merged into the destination shards at the window barrier (OnBarrier).
//
// Cross-cutting events — metrics sampling, adversary corruptions — live on a
// separate global queue executed serially between windows, with every shard
// quiesced and advanced to the global event's instant, so a global event
// observes a consistent snapshot of all shards. At equal times the global
// event runs first (windows are strictly below the next global instant).
//
// Observable results are shard-count independent: the window sequence is a
// function of the pending-event times alone (which do not depend on the
// partition), every event fires at the same virtual instant regardless of
// which shard hosts it, and same-instant events in different shards touch
// disjoint state. The one caveat is exact virtual-time ties between events
// in *the same* shard that a different partition would order differently;
// under continuous delay and drift distributions such ties have measure
// zero, and TestShardCountIndependence (internal/scenario) pins equality of
// full run reports across shard counts {1, 4, 8}. Randomness must not come
// from the shards' own RNGs (draws would depend on the partition): the
// sharded message layer derives per-message randomness by hashing
// (seed, sender, receiver, sequence), and setup-time draws use SetupRand.
package des

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"clocksync/internal/simtime"
)

// ShardedSim is a parallel discrete-event simulator: per-shard event queues
// executed in windows of length lookahead on a worker pool, plus a global
// queue for cross-cutting events. Entity i belongs to shard ShardOf(i); all
// of entity i's events must be scheduled on Shard(ShardOf(i)).
type ShardedSim struct {
	shards    []*Sim
	global    *Sim
	lookahead simtime.Duration
	setup     *rand.Rand
	hooks     []func(w simtime.Time)

	winNext atomic.Int32 // next shard index to claim in the current window
}

// NewSharded returns a sharded simulator with the given number of shards and
// conservative lookahead (the minimum cross-shard latency). A non-positive
// lookahead leaves no safe parallel window, so the shard count collapses to
// one — the degenerate serial fallback for zero-delay links; shard counts
// below one are clamped to one.
func NewSharded(seed int64, shards int, lookahead simtime.Duration) *ShardedSim {
	if shards < 1 || lookahead <= 0 {
		shards = 1
	}
	p := &ShardedSim{
		shards:    make([]*Sim, shards),
		lookahead: lookahead,
	}
	for i := range p.shards {
		// Shard RNG seeds are arbitrary: sharded users must not draw from
		// shard RNGs (see the package comment), but Sim requires a source.
		p.shards[i] = New(seed + int64(i) + 1)
	}
	p.global = New(seed)
	p.setup = rand.New(rand.NewSource(seed))
	return p
}

// Reset rewinds every shard and the global queue to time zero with fresh
// deterministic RNG streams, keeping all event arenas warm (the ShardedSim
// analogue of Sim.Reset). Barrier hooks are cleared: they belong to the
// run's message layer, which is rebuilt per run.
func (p *ShardedSim) Reset(seed int64) {
	for i, sh := range p.shards {
		sh.Reset(seed + int64(i) + 1)
	}
	p.global.Reset(seed)
	p.setup = rand.New(rand.NewSource(seed))
	p.hooks = p.hooks[:0]
}

// Shards returns the shard count.
func (p *ShardedSim) Shards() int { return len(p.shards) }

// Lookahead returns the conservative window length.
func (p *ShardedSim) Lookahead() simtime.Duration { return p.lookahead }

// Shard returns shard i's serial simulator.
func (p *ShardedSim) Shard(i int) *Sim { return p.shards[i] }

// ShardOf maps entity id to its shard. Entities are striped round-robin so
// phase-staggered workloads spread evenly.
func (p *ShardedSim) ShardOf(entity int) int { return entity % len(p.shards) }

// Global returns the serial barrier queue for cross-cutting events (metrics
// ticks, adversary corruptions). Global events run with every shard
// quiesced and advanced to the event's instant; they may schedule onto any
// shard, but shard events must never schedule onto the global queue — that
// would race with other shards doing the same.
func (p *ShardedSim) Global() *Sim { return p.global }

// SetupRand returns the deterministic construction-time random source
// (clock slopes, initial biases, phase staggering). It must only be used
// before RunUntil: setup draws are serial, so their stream is shard-count
// independent — unlike the shards' own RNGs.
func (p *ShardedSim) SetupRand() *rand.Rand { return p.setup }

// Now returns the global queue's current time (the barrier clock).
func (p *ShardedSim) Now() simtime.Time { return p.global.Now() }

// Fired returns the total number of events executed across all shards and
// the global queue.
func (p *ShardedSim) Fired() uint64 {
	total := p.global.Fired()
	for _, sh := range p.shards {
		total += sh.Fired()
	}
	return total
}

// OnBarrier registers fn to run (serially, on the coordinating goroutine)
// after every window, with the window's exclusive upper bound. The sharded
// message layer uses it to merge buffered cross-shard deliveries into the
// destination shards while they are quiesced. Hooks are cleared by Reset.
func (p *ShardedSim) OnBarrier(fn func(w simtime.Time)) {
	p.hooks = append(p.hooks, fn)
}

// RunUntil executes events until virtual time reaches horizon (inclusive of
// events at exactly horizon) on all queues. Afterwards every queue's clock
// reads horizon. Windows execute on the calling goroutine plus up to
// Shards()−1 helpers acquired non-blockingly from the process-wide worker
// pool (AcquireWorkers); with no helpers available the shards run inline,
// serially — same results, one goroutine.
func (p *ShardedSim) RunUntil(horizon simtime.Time) {
	// end is the exclusive window cap that makes horizon inclusive under the
	// strictly-before window semantics.
	end := simtime.Time(math.Nextafter(float64(horizon), math.Inf(1)))

	helpers := 0
	var startCh chan simtime.Time
	var doneCh chan struct{}
	if len(p.shards) > 1 {
		helpers = AcquireWorkers(len(p.shards) - 1)
	}
	if helpers > 0 {
		startCh = make(chan simtime.Time)
		doneCh = make(chan struct{})
		for i := 0; i < helpers; i++ {
			go func() {
				for w := range startCh {
					p.claimShards(w)
					doneCh <- struct{}{}
				}
			}()
		}
		defer func() {
			close(startCh)
			ReleaseWorkers(helpers)
		}()
	}

	infTime := simtime.Time(math.Inf(1))
	for {
		tg, gok := p.global.peek()
		if !gok {
			tg = infTime
		}
		tmin := infTime
		for _, sh := range p.shards {
			if t, ok := sh.peek(); ok && t < tmin {
				tmin = t
			}
		}
		if tmin > horizon && tg > horizon {
			break
		}
		if tg <= tmin && tg <= horizon {
			// Global events up to the next shard event run serially, with
			// every shard's clock advanced to each event's instant so the
			// event observes (and schedules into) a consistent present.
			limit := tmin
			if horizon < limit {
				limit = horizon
			}
			for {
				t, ok := p.global.peek()
				if !ok || t > limit {
					break
				}
				for _, sh := range p.shards {
					sh.advanceTo(t)
				}
				p.global.Step()
			}
			continue
		}
		w := tmin.Add(p.lookahead)
		if len(p.shards) == 1 {
			// A single shard has no cross-shard hazards: run straight to the
			// next global event (or the horizon).
			w = infTime
		}
		if tg < w {
			w = tg
		}
		if end < w {
			w = end
		}
		if w <= tmin {
			// Cannot happen: w ≥ tmin+lookahead > tmin (multi-shard), and the
			// caps tg and end both exceed tmin here. Guard against a silent
			// infinite loop all the same.
			panic(fmt.Sprintf("des: empty shard window [%v, %v)", tmin, w))
		}
		if helpers > 0 {
			p.winNext.Store(0)
			for i := 0; i < helpers; i++ {
				startCh <- w
			}
			p.claimShards(w)
			for i := 0; i < helpers; i++ {
				<-doneCh
			}
		} else {
			for _, sh := range p.shards {
				sh.runBefore(w)
			}
		}
		for _, fn := range p.hooks {
			fn(w)
		}
	}

	for _, sh := range p.shards {
		sh.advanceTo(horizon)
	}
	p.global.advanceTo(horizon)
}

// claimShards pulls shard indices off the shared window counter and runs
// each claimed shard's events strictly before w. Both the coordinator and
// every helper run this loop, so shards load-balance across whatever
// goroutines the window got.
func (p *ShardedSim) claimShards(w simtime.Time) {
	for {
		i := int(p.winNext.Add(1)) - 1
		if i >= len(p.shards) {
			return
		}
		p.shards[i].runBefore(w)
	}
}

// runBefore fires events strictly before w — the shard half of a
// conservative window. Events at exactly w (the next window's floor, or a
// global event's instant) stay queued.
func (s *Sim) runBefore(w simtime.Time) {
	for {
		t, ok := s.peek()
		if !ok || t >= w {
			return
		}
		s.Step()
	}
}

// advanceTo moves the clock forward to t without firing events; no-op when
// the clock already reads t or later. ShardedSim uses it to present a
// consistent now to global events and to land every queue on the horizon.
func (s *Sim) advanceTo(t simtime.Time) {
	if t > s.now {
		s.now = t
	}
}
