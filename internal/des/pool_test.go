package des

import (
	"math/rand"
	"sort"
	"testing"

	"clocksync/internal/simtime"
)

// A handle to a fired event must be inert: its arena slot has been recycled,
// so Cancel through the stale handle must not touch whatever event occupies
// the slot now.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	sim := New(1)
	var stale Event
	firedSecond := false
	stale = sim.At(1, func() {
		// This slot is recycled before fn runs; the next At reuses it.
		ev2 := sim.At(2, func() { firedSecond = true })
		if ev2.idx != stale.idx {
			t.Fatalf("expected slot reuse: got slot %d, stale handle holds %d", ev2.idx, stale.idx)
		}
		stale.Cancel() // must NOT cancel ev2
	})
	sim.Run()
	if !firedSecond {
		t.Fatal("stale handle cancelled the event that reused its slot")
	}
}

// Cancelling through a handle whose slot was recycled via the cancel-drain
// path (not the fire path) must equally be a generation-mismatch no-op.
func TestCancelAfterRecycleGenerationMismatch(t *testing.T) {
	sim := New(1)
	ev1 := sim.At(5, func() { t.Fatal("cancelled event fired") })
	ev1.Cancel()
	sim.At(1, func() {}) // drives Step past the cancelled slot, recycling it
	sim.Run()
	// ev1's slot now sits on the free list with a bumped generation; a new
	// event takes it over.
	fired := false
	ev2 := sim.At(10, func() { fired = true })
	if ev2.idx != ev1.idx {
		t.Fatalf("expected slot reuse: got slot %d, want %d", ev2.idx, ev1.idx)
	}
	ev1.Cancel() // stale generation: no-op
	sim.Run()
	if !fired {
		t.Fatal("stale cancel reached the recycled slot's new event")
	}
}

// The schedule→fire path must not allocate once the arena is warm: this is
// the per-event cost every simulated message delivery and alarm pays.
func TestAfterFirePathAllocFree(t *testing.T) {
	sim := New(1)
	var fn func()
	n := 0
	fn = func() {
		if n++; n < 100 {
			sim.After(1, fn)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		sim.After(1, fn)
		sim.Run()
	})
	if allocs > 0 {
		t.Errorf("After+fire path allocates: %.1f allocs per 100-event run", allocs)
	}
}

// A reset simulator must replay a seed exactly as a fresh one: same firing
// instants, same RNG draws, regardless of what the previous run left behind.
func TestResetReplaysByteIdentically(t *testing.T) {
	trace := func(sim *Sim) []float64 {
		var out []float64
		var step func()
		step = func() {
			out = append(out, float64(sim.Now()), sim.Rand().Float64())
			if len(out) < 200 {
				sim.After(simtime.Duration(1+sim.Rand().Int63n(1000)), step)
			}
		}
		sim.After(0, step)
		sim.Run()
		return out
	}

	fresh := trace(New(42))

	// Dirty the reused simulator with a different-seed run plus leftover
	// scheduled and cancelled events, then reset.
	reused := New(7)
	trace(reused)
	reused.After(3, func() {})
	reused.After(9, func() {}).Cancel()
	reused.Reset(42)
	if reused.Pending() != 0 || reused.Now() != 0 || reused.Fired() != 0 {
		t.Fatalf("Reset left state behind: pending=%d now=%v fired=%d",
			reused.Pending(), reused.Now(), reused.Fired())
	}
	replay := trace(reused)

	if len(fresh) != len(replay) {
		t.Fatalf("trace lengths differ: fresh %d, replay %d", len(fresh), len(replay))
	}
	for i := range fresh {
		if fresh[i] != replay[i] {
			t.Fatalf("replay diverges at step %d: fresh %v, replay %v", i, fresh[i], replay[i])
		}
	}
}

// Handles scheduled before a Reset must be inert afterwards, even against
// events the new run places in the same slots.
func TestResetDefusesOldHandles(t *testing.T) {
	sim := New(1)
	old := sim.At(5, func() {})
	sim.Reset(1)
	fired := false
	sim.At(5, func() { fired = true })
	old.Cancel() // generation bumped by Reset: no-op
	sim.Run()
	if !fired {
		t.Fatal("pre-Reset handle cancelled a post-Reset event")
	}
}

// oracleQueue is a brutally simple reference implementation: a slice kept in
// (at, seq) order with eager cancellation. The pooled heap must match its
// firing sequence exactly under any interleaving of After/Cancel/Step.
type oracleQueue struct {
	seq    uint64
	now    simtime.Time
	events []oracleEvent
}

type oracleEvent struct {
	at        simtime.Time
	seq       uint64
	id        int
	cancelled bool
}

func (o *oracleQueue) after(d simtime.Duration, id int) {
	o.events = append(o.events, oracleEvent{at: o.now.Add(d), seq: o.seq, id: id})
	o.seq++
	sort.SliceStable(o.events, func(i, j int) bool {
		if o.events[i].at != o.events[j].at {
			return o.events[i].at < o.events[j].at
		}
		return o.events[i].seq < o.events[j].seq
	})
}

func (o *oracleQueue) cancel(id int) {
	for i := range o.events {
		if o.events[i].id == id {
			o.events[i].cancelled = true
		}
	}
}

// step fires the next live event and returns its id, or -1 when drained.
func (o *oracleQueue) step() int {
	for len(o.events) > 0 {
		ev := o.events[0]
		o.events = o.events[1:]
		if ev.cancelled {
			continue
		}
		o.now = ev.at
		return ev.id
	}
	return -1
}

// checkAgainstOracle drives the pooled queue and the oracle through the same
// randomized interleaving of schedule/cancel/step operations and fails on the
// first divergence in firing order.
func checkAgainstOracle(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sim := New(seed)
	oracle := &oracleQueue{}

	nextID := 0
	handles := map[int]Event{}
	var simFired, oracleFired []int

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // schedule
			id := nextID
			nextID++
			d := simtime.Duration(rng.Intn(50))
			handles[id] = sim.After(d, func() { simFired = append(simFired, id) })
			oracle.after(d, id)
		case r < 7: // cancel a random outstanding handle (possibly stale)
			if len(handles) == 0 {
				continue
			}
			ids := make([]int, 0, len(handles))
			for id := range handles {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			id := ids[rng.Intn(len(ids))]
			handles[id].Cancel()
			oracle.cancel(id)
		default: // step
			sim.Step()
			if id := oracle.step(); id >= 0 {
				oracleFired = append(oracleFired, id)
				delete(handles, id) // handle is now stale; keep some around too
			}
		}
	}
	sim.Run()
	for {
		id := oracle.step()
		if id < 0 {
			break
		}
		oracleFired = append(oracleFired, id)
	}

	if len(simFired) != len(oracleFired) {
		t.Fatalf("seed %d: fired %d events, oracle fired %d", seed, len(simFired), len(oracleFired))
	}
	for i := range simFired {
		if simFired[i] != oracleFired[i] {
			t.Fatalf("seed %d: firing order diverges at %d: sim %d, oracle %d",
				seed, i, simFired[i], oracleFired[i])
		}
	}
}

// TestEventPoolOracle interleaves After/Cancel/Step randomly across many
// seeds and checks the pooled heap against the sorted-slice oracle.
func TestEventPoolOracle(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		checkAgainstOracle(t, seed, 400)
	}
}

// FuzzEventQueue lets the fuzzer pick the interleaving seed; the corpus
// seeds double as a quick deterministic regression under plain `go test`.
func FuzzEventQueue(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(1234567))
	f.Add(int64(-99))
	f.Fuzz(func(t *testing.T, seed int64) {
		checkAgainstOracle(t, seed, 300)
	})
}
