package des

import (
	"math/rand"
	"sort"
	"testing"

	"clocksync/internal/simtime"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	sim := New(1)
	var order []simtime.Time
	times := []simtime.Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		sim.At(at, func() { order = append(order, at) })
	}
	sim.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	sim := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(7, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	sim := New(1)
	sim.At(3, func() {
		if sim.Now() != 3 {
			t.Errorf("Now inside event: got %v, want 3", sim.Now())
		}
	})
	sim.Run()
	if sim.Now() != 3 {
		t.Fatalf("final Now: got %v, want 3", sim.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	sim := New(1)
	var fired simtime.Time
	sim.At(10, func() {
		sim.After(5, func() { fired = sim.Now() })
	})
	sim.Run()
	if fired != 15 {
		t.Fatalf("After: fired at %v, want 15", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	sim := New(1)
	sim.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		sim.At(5, func() {})
	})
	sim.Run()
}

func TestCancel(t *testing.T) {
	sim := New(1)
	fired := false
	ev := sim.At(5, func() { fired = true })
	ev.Cancel()
	sim.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel, cancel-after-run and the zero handle must be safe.
	ev.Cancel()
	var zero Event
	zero.Cancel()
}

func TestRunUntil(t *testing.T) {
	sim := New(1)
	var fired []simtime.Time
	for _, at := range []simtime.Time{1, 2, 3, 4, 5} {
		at := at
		sim.At(at, func() { fired = append(fired, at) })
	}
	sim.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3 (%v)", len(fired), fired)
	}
	if sim.Now() != 3 {
		t.Fatalf("Now after RunUntil: got %v, want 3", sim.Now())
	}
	sim.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("second RunUntil fired %d total, want 5", len(fired))
	}
	if sim.Now() != 10 {
		t.Fatalf("Now should advance to horizon even after queue drained: %v", sim.Now())
	}
}

func TestStop(t *testing.T) {
	sim := New(1)
	count := 0
	sim.At(1, func() { count++; sim.Stop() })
	sim.At(2, func() { count++ })
	sim.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the run: count=%d", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []float64 {
		sim := New(seed)
		var out []float64
		var step func()
		step = func() {
			out = append(out, float64(sim.Now()))
			if len(out) < 100 {
				sim.After(simtime.Duration(sim.Rand().Float64()), step)
			}
		}
		sim.After(0, step)
		sim.Run()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces — RNG not wired in")
	}
}

func TestHeapUnderRandomLoad(t *testing.T) {
	// Insert events at random times, including duplicates, and verify the
	// global firing order matches a sort oracle.
	rng := rand.New(rand.NewSource(7))
	sim := New(7)
	const n = 2000
	want := make([]simtime.Time, 0, n)
	got := make([]simtime.Time, 0, n)
	for i := 0; i < n; i++ {
		at := simtime.Time(rng.Intn(500))
		want = append(want, at)
		at2 := at
		sim.At(at2, func() { got = append(got, at2) })
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sim.Run()
	if len(got) != n {
		t.Fatalf("fired %d, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverges from sort oracle at %d: got %v want %v", i, got[i], want[i])
		}
	}
	if sim.Fired() != n {
		t.Fatalf("Fired counter: got %d, want %d", sim.Fired(), n)
	}
}

func TestTicker(t *testing.T) {
	sim := New(1)
	var ticks []simtime.Time
	tk := NewTicker(sim, 10, func(now simtime.Time) { ticks = append(ticks, now) })
	sim.At(35, func() { tk.Stop() })
	sim.Run()
	want := []simtime.Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker must panic")
		}
	}()
	NewTicker(New(1), 0, func(simtime.Time) {})
}
