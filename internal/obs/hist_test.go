package obs

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the shared layout: 5 log-spaced edges
// per decade over [1e-7, 1e3), adjacent edges a factor HistBucketRatio
// apart, and Observe landing each value in the bucket whose upper edge is
// the first one ≥ the value.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != 50 {
		t.Fatalf("edge count = %d, want 50 (5 per decade over 10 decades)", len(bounds))
	}
	if want := 1e-7 * HistBucketRatio; math.Abs(bounds[0]-want)/want > 1e-12 {
		t.Errorf("first edge = %g, want %g (one ratio step above 1e-7)", bounds[0], want)
	}
	if got := bounds[len(bounds)-1]; math.Abs(got-1e3)/1e3 > 1e-12 {
		t.Errorf("last edge = %g, want 1e3", got)
	}
	for i := 1; i < len(bounds); i++ {
		ratio := bounds[i] / bounds[i-1]
		if math.Abs(ratio-HistBucketRatio) > 1e-9 {
			t.Fatalf("edge ratio at %d = %g, want %g", i, ratio, HistBucketRatio)
		}
	}

	// Placement: just-below goes into bucket i, just-above into bucket i+1,
	// and an exact edge value into bucket i (edges are inclusive upper
	// bounds, matching Prometheus le semantics).
	for i, edge := range bounds {
		var h Histogram
		h.Observe(edge * 0.999)
		h.Observe(edge)
		h.Observe(edge * 1.001)
		counts := h.Buckets()
		if counts[i] != 2 {
			t.Fatalf("edge %g: bucket %d holds %d, want 2 (below + exact)", edge, i, counts[i])
		}
		if counts[i+1] != 1 {
			t.Fatalf("edge %g: bucket %d holds %d, want 1 (above)", edge, i+1, counts[i+1])
		}
	}

	// Out-of-range values: sub-range into the first bucket, ≥ 1e3 into the
	// overflow bucket, negatives clamped, NaN dropped.
	var h Histogram
	h.Observe(1e-9)
	h.Observe(-5)
	h.Observe(5e4)
	h.Observe(math.NaN())
	counts := h.Buckets()
	if counts[0] != 2 {
		t.Errorf("first bucket = %d, want 2 (tiny + clamped negative)", counts[0])
	}
	if counts[len(counts)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", counts[len(counts)-1])
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3 (NaN dropped)", h.Count())
	}
}

// TestHistogramQuantileErrorBound checks the documented accuracy contract:
// a quantile estimate is within a factor HistBucketRatio of the true sample
// quantile, for a spread of distributions across the bucket range.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() float64{
		"uniform-ms":  func() float64 { return 1e-3 * (1 + 9*rng.Float64()) },
		"log-uniform": func() float64 { return math.Pow(10, -6+8*rng.Float64()) },
		"bimodal":     func() float64 { return []float64{2e-4, 5e-2}[rng.Intn(2)] * (1 + 0.1*rng.Float64()) },
	}
	for name, draw := range distributions {
		var h Histogram
		samples := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			x := draw()
			samples = append(samples, x)
			h.Observe(x)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			rank := int(math.Ceil(q*float64(len(samples)))) - 1
			exact := samples[rank]
			got := h.Quantile(q)
			if got > exact*HistBucketRatio || got < exact/HistBucketRatio {
				t.Errorf("%s p%d: estimate %g vs exact %g exceeds ×%.3f bound",
					name, int(q*100), got, exact, HistBucketRatio)
			}
		}
	}
}

// TestHistogramQuantileEmptyAndClamped covers the degenerate inputs.
func TestHistogramQuantileEmptyAndClamped(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(0.01)
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo <= 0 || hi <= 0 {
		t.Errorf("clamped quantiles = %g, %g; want positive", lo, hi)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram is not inert")
	}
}

// TestHistogramMerge checks that merging is exact bucket addition: counts,
// sums and quantiles of the merged histogram match observing the union.
func TestHistogramMerge(t *testing.T) {
	var a, b, union Histogram
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		x := math.Pow(10, -5+6*rng.Float64())
		a.Observe(x)
		union.Observe(x)
	}
	for i := 0; i < 500; i++ {
		x := math.Pow(10, -2+2*rng.Float64())
		b.Observe(x)
		union.Observe(x)
	}
	a.Merge(&b)
	if a.Count() != union.Count() {
		t.Fatalf("merged count %d != union %d", a.Count(), union.Count())
	}
	if math.Abs(a.Sum()-union.Sum()) > 1e-9*union.Sum() {
		t.Errorf("merged sum %g != union %g", a.Sum(), union.Sum())
	}
	ab, ub := a.Buckets(), union.Buckets()
	for i := range ab {
		if ab[i] != ub[i] {
			t.Fatalf("bucket %d: merged %d != union %d", i, ab[i], ub[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != union.Quantile(q) {
			t.Errorf("p%d: merged %g != union %g", int(q*100), a.Quantile(q), union.Quantile(q))
		}
	}
}

// TestHistogramConcurrentObserve exercises the lock-free paths under the
// race detector and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-3 * float64(w+1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += 1e-3 * float64(w+1) * per
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestWritePromHistograms checks the exposition format of the histogram
// series: cumulative le buckets, +Inf, _sum/_count, and quantile gauges.
func TestWritePromHistograms(t *testing.T) {
	rec := NewRecorder()
	rec.RTT.Observe(0.01)
	rec.RTT.Observe(0.02)
	rec.RTT.Observe(0.04)
	var b strings.Builder
	if err := rec.WriteProm(&b, `node="0"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE clocksync_rtt_seconds histogram",
		`clocksync_rtt_seconds_bucket{node="0",le="+Inf"} 3`,
		`clocksync_rtt_seconds_count{node="0"} 3`,
		`clocksync_rtt_seconds_p50{node="0"}`,
		`clocksync_rtt_seconds_p95{node="0"}`,
		`clocksync_rtt_seconds_p99{node="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at the total count.
	prev := int64(-1)
	lines := strings.Split(out, "\n")
	seen := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "clocksync_rtt_seconds_bucket") {
			continue
		}
		seen++
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = v
	}
	if seen == 0 {
		t.Fatal("no bucket lines emitted")
	}
	if prev != 3 {
		t.Errorf("final cumulative bucket = %d, want 3", prev)
	}
}

// TestMetricsEndpointMethodsAnd404 checks the /metrics HTTP contract: GET
// serves the exposition, non-GET is rejected with 405 + Allow, and unknown
// paths 404.
func TestMetricsEndpointMethodsAnd404(t *testing.T) {
	rec := NewRecorder()
	rec.RTT.Observe(0.02)
	srv := httptest.NewServer(RecorderMux(rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "clocksync_rtt_seconds_bucket") {
		t.Errorf("GET /metrics missing histogram series:\n%s", body)
	}

	resp, err = http.Post(srv.URL+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("Allow header = %q, want \"GET, HEAD\"", allow)
	}

	resp, err = http.Get(srv.URL + "/definitely-not-here")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /definitely-not-here = %d, want 404", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
