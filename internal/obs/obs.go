// Package obs is the observability layer shared by the simulator and the
// live deployment: lock-free counters and gauges (Recorder), a structured
// event stream with pluggable sinks (Event/Sink), and an HTTP exporter
// serving Prometheus-style text on /metrics plus the net/http/pprof
// profiling endpoints.
//
// The paper's guarantees are statements about observable quantities — the
// deviation Δ of Theorem 5, the discontinuity ψ of Definition 3(ii), the
// Lemma 7 recovery halving — and checking them on a running deployment
// requires the system to emit the per-round signals they are computed from.
// Every layer of this repository therefore reports through this package:
// internal/core emits one event per Sync execution, internal/livenet counts
// datagrams and authentication failures on its UDP paths, and
// internal/scenario attaches an Observer to every simulated processor.
//
// All types are safe for concurrent use; the simulator uses them from a
// single goroutine and live nodes from several.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative add to a counter")
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Recorder aggregates the protocol's operational counters and gauges. One
// Recorder describes one processor (live node or simulated cluster); fields
// are updated in place by the instrumented layers and exported through
// WriteProm. The zero value is ready to use, but shared instances should be
// created with NewRecorder so they are always pointers.
type Recorder struct {
	// Message-path counters (livenet UDP paths; simulator network totals).
	MessagesSent     Counter // datagrams (or simulated messages) sent
	MessagesReceived Counter // datagrams received and parsed as ours
	MessagesDropped  Counter // received but discarded (parse error, stale nonce) or lost in transit
	AuthFailures     Counter // messages rejected by HMAC verification

	// Protocol counters.
	SyncRounds         Counter // completed Sync executions (Figure 1 runs)
	RoundsSkipped      Counter // executions skipped (faulty, or no safe adjustment)
	EstimationTimeouts Counter // per-peer estimations that hit MaxWait
	WayOffJumps        Counter // rounds that took the "ignore own clock" recovery branch

	// Resilience counters and gauges (livenet retry/degradation path).
	Retries     Counter // per-peer estimation retransmissions within a round
	PeerRejoins Counter // dark peers that answered again and were marked bright
	PeersDark   Gauge   // peers currently considered dark (health tracking)

	// Fault-injection counters (FaultTransport; zero outside chaos runs).
	FaultDrops          Counter // packets dropped by ambient chaos
	FaultDups           Counter // packets duplicated by ambient chaos
	FaultReorders       Counter // packets held past their successor
	FaultDelays         Counter // packets given bounded extra delay
	FaultCrashDrops     Counter // packets cut by a crash window
	FaultPartitionDrops Counter // packets cut by a partition window

	// Time-serving counters (livenet serve path; zero when nobody queries).
	ServeQueries Counter // 4-timestamp time queries answered
	ServeBad     Counter // malformed serve datagrams discarded
	ServeDropped Counter // serve replies the transport failed to send

	// Convergence gauges.
	LastAdjust Gauge // most recent convergence adjustment, in seconds (signed)
	// AmortizationProgress is the fraction of the last adjustment already
	// applied to the clock: 1 for the paper's instantaneous additive
	// adjustments; slewing extensions report partial progress.
	AmortizationProgress Gauge

	// Distribution histograms (shared log-bucketed layout; see Histogram).
	RTT          Histogram // peer estimation round-trip time, seconds
	EstError     Histogram // estimation error bound a of Definition 4, seconds
	AdjustMag    Histogram // |adjustment| per non-skipped round, seconds
	Deviation    Histogram // good-set deviation per measurement sample, seconds
	ServeLatency Histogram // server-side serve-query handling latency (sampled), seconds
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Metric is one exported time-series point: a name in Prometheus convention,
// its type ("counter" or "gauge"), a help line, and the current value.
type Metric struct {
	Name  string
	Type  string
	Help  string
	Value float64
}

// Snapshot returns the recorder's metrics in a fixed order. Counter values
// use the _total suffix per Prometheus naming conventions.
func (r *Recorder) Snapshot() []Metric {
	return []Metric{
		{"clocksync_messages_sent_total", "counter", "Messages sent on the sync wire.", float64(r.MessagesSent.Load())},
		{"clocksync_messages_received_total", "counter", "Messages received and accepted.", float64(r.MessagesReceived.Load())},
		{"clocksync_messages_dropped_total", "counter", "Messages lost in transit or discarded before the protocol.", float64(r.MessagesDropped.Load())},
		{"clocksync_auth_failures_total", "counter", "Messages rejected by HMAC verification.", float64(r.AuthFailures.Load())},
		{"clocksync_sync_rounds_total", "counter", "Completed Sync executions.", float64(r.SyncRounds.Load())},
		{"clocksync_rounds_skipped_total", "counter", "Sync executions skipped (faulty or no safe adjustment).", float64(r.RoundsSkipped.Load())},
		{"clocksync_estimation_timeouts_total", "counter", "Per-peer estimations that timed out (a=∞ sentinel).", float64(r.EstimationTimeouts.Load())},
		{"clocksync_wayoff_jumps_total", "counter", "Rounds that took the WayOff recovery branch.", float64(r.WayOffJumps.Load())},
		{"clocksync_retries_total", "counter", "Per-peer estimation retransmissions within a round.", float64(r.Retries.Load())},
		{"clocksync_peer_rejoins_total", "counter", "Dark peers that answered again and were marked bright.", float64(r.PeerRejoins.Load())},
		{"clocksync_peers_dark", "gauge", "Peers currently considered dark by health tracking.", r.PeersDark.Load()},
		{"clocksync_faultnet_drops_total", "counter", "Packets dropped by injected ambient chaos.", float64(r.FaultDrops.Load())},
		{"clocksync_faultnet_dups_total", "counter", "Packets duplicated by injected ambient chaos.", float64(r.FaultDups.Load())},
		{"clocksync_faultnet_reorders_total", "counter", "Packets held past their successor by injected chaos.", float64(r.FaultReorders.Load())},
		{"clocksync_faultnet_delays_total", "counter", "Packets given bounded extra injected delay.", float64(r.FaultDelays.Load())},
		{"clocksync_faultnet_crash_drops_total", "counter", "Packets cut by an injected crash window.", float64(r.FaultCrashDrops.Load())},
		{"clocksync_faultnet_partition_drops_total", "counter", "Packets cut by an injected partition window.", float64(r.FaultPartitionDrops.Load())},
		{"clocksync_serve_queries_total", "counter", "Time queries answered on the serve path.", float64(r.ServeQueries.Load())},
		{"clocksync_serve_bad_total", "counter", "Malformed serve datagrams discarded.", float64(r.ServeBad.Load())},
		{"clocksync_serve_dropped_total", "counter", "Serve replies the transport failed to send.", float64(r.ServeDropped.Load())},
		{"clocksync_last_adjust_seconds", "gauge", "Most recent convergence adjustment (signed seconds).", r.LastAdjust.Load()},
		{"clocksync_amortization_progress", "gauge", "Fraction of the last adjustment applied to the clock.", r.AmortizationProgress.Load()},
	}
}

// HistMetric is one exported histogram: a name in Prometheus convention
// (base unit seconds, no suffix), a help line, and the live histogram.
type HistMetric struct {
	Name string
	Help string
	H    *Histogram
}

// Histograms returns the recorder's histograms in a fixed order. The returned
// pointers are live — observations after the call are visible through them.
func (r *Recorder) Histograms() []HistMetric {
	return []HistMetric{
		{"clocksync_rtt_seconds", "Peer estimation round-trip time.", &r.RTT},
		{"clocksync_estimate_error_seconds", "Estimation error bound a (Definition 4).", &r.EstError},
		{"clocksync_adjust_magnitude_seconds", "Absolute convergence adjustment per round.", &r.AdjustMag},
		{"clocksync_deviation_seconds", "Good-set deviation per measurement sample.", &r.Deviation},
		{"clocksync_serve_latency_seconds", "Server-side serve-query handling latency (sampled).", &r.ServeLatency},
	}
}

// WriteProm renders the recorder in the Prometheus text exposition format.
// labels, when non-empty, is inserted verbatim into every sample's label set
// (e.g. `node="3"`).
func (r *Recorder) WriteProm(w io.Writer, labels string) error {
	return WriteProm(w, map[string]*Recorder{labels: r})
}

// WriteProm renders several recorders — keyed by their label set — as one
// exposition, emitting each metric's HELP/TYPE header once. Deployments with
// many nodes in one process (Cluster) use it to serve a single /metrics page.
func WriteProm(w io.Writer, byLabels map[string]*Recorder) error {
	keys := make([]string, 0, len(byLabels))
	for k := range byLabels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snaps := make(map[string][]Metric, len(keys))
	var order []Metric
	for i, k := range keys {
		snaps[k] = byLabels[k].Snapshot()
		if i == 0 {
			order = snaps[k]
		}
	}
	var b strings.Builder
	for i, m := range order {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.Name, m.Help, m.Name, m.Type)
		for _, k := range keys {
			sample := snaps[k][i]
			if k == "" {
				fmt.Fprintf(&b, "%s %s\n", sample.Name, formatValue(sample.Value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", sample.Name, k, formatValue(sample.Value))
			}
		}
	}
	if len(keys) > 0 {
		writePromHistograms(&b, keys, byLabels)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promQuantiles are the quantile gauges derived from each histogram.
var promQuantiles = []struct {
	suffix string
	q      float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

// writePromHistograms renders every recorder's histograms: the Prometheus
// histogram series (_bucket with cumulative counts, _sum, _count) followed by
// p50/p95/p99 estimate gauges so dashboards get quantiles without PromQL.
func writePromHistograms(b *strings.Builder, keys []string, byLabels map[string]*Recorder) {
	nHists := len(byLabels[keys[0]].Histograms())
	for hi := 0; hi < nHists; hi++ {
		name := byLabels[keys[0]].Histograms()[hi].Name
		help := byLabels[keys[0]].Histograms()[hi].Help
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, k := range keys {
			hm := byLabels[k].Histograms()[hi]
			buckets := hm.H.Buckets()
			var cum int64
			for i := 0; i < histEdges; i++ {
				cum += buckets[i]
				fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(k, fmt.Sprintf("le=%q", formatValue(histBounds[i]))), cum)
			}
			cum += buckets[histEdges]
			fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(k, `le="+Inf"`), cum)
			if k == "" {
				fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", name, formatValue(hm.H.Sum()), name, hm.H.Count())
			} else {
				fmt.Fprintf(b, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, k, formatValue(hm.H.Sum()), name, k, hm.H.Count())
			}
		}
		for _, pq := range promQuantiles {
			gname := name + "_" + pq.suffix
			fmt.Fprintf(b, "# HELP %s Estimated %g-quantile of %s.\n# TYPE %s gauge\n", gname, pq.q, name, gname)
			for _, k := range keys {
				hm := byLabels[k].Histograms()[hi]
				if k == "" {
					fmt.Fprintf(b, "%s %s\n", gname, formatValue(hm.H.Quantile(pq.q)))
				} else {
					fmt.Fprintf(b, "%s{%s} %s\n", gname, k, formatValue(hm.H.Quantile(pq.q)))
				}
			}
		}
	}
}

// joinLabels merges a recorder's label set with a per-sample label.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest-float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
