package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// CollectFunc writes the current Prometheus exposition; Handler calls it on
// every GET /metrics.
type CollectFunc func(w http.ResponseWriter) error

// NewMux builds the standard observability mux: GET /metrics served by
// collect, the net/http/pprof endpoints under /debug/pprof/, and any extra
// handlers the caller registers afterwards (livenet adds /status).
func NewMux(collect CollectFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := collect(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RecorderMux is NewMux over a single recorder with no extra labels.
func RecorderMux(r *Recorder) *http.ServeMux {
	return NewMux(func(w http.ResponseWriter) error { return r.WriteProm(w, "") })
}

// Serve starts an HTTP server for h on addr (use ":0" or "127.0.0.1:0" for
// an OS-assigned port) and returns the bound address. The server shuts down
// when ctx is cancelled; wg, when non-nil, tracks the serving goroutines so
// callers can wait for a clean exit.
func Serve(ctx context.Context, wg *sync.WaitGroup, addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listener on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	if wg != nil {
		wg.Add(2)
	}
	go func() {
		if wg != nil {
			defer wg.Done()
		}
		srv.Serve(ln)
	}()
	go func() {
		if wg != nil {
			defer wg.Done()
		}
		<-ctx.Done()
		srv.Close()
	}()
	return ln.Addr().String(), nil
}
