package obs_test

import (
	"testing"

	"clocksync/internal/obs/obsbench"
)

// The benchmark bodies live in obsbench so cmd/benchobs can run the same
// code when recording the BENCH_obs.json baseline.

func BenchmarkObserverDisabled(b *testing.B) { obsbench.ObserverDisabled(b) }
func BenchmarkObserverRing(b *testing.B)     { obsbench.ObserverRing(b) }
func BenchmarkRoundSpan(b *testing.B)        { obsbench.RoundSpan(b) }
func BenchmarkHistogramObserve(b *testing.B) { obsbench.HistogramObserve(b) }

// TestObserverDisabledAllocFree pins the acceptance criterion directly so it
// fails in plain `go test`, not only under -bench: the no-sink fast path
// must not allocate.
func TestObserverDisabledAllocFree(t *testing.T) {
	r := testing.Benchmark(obsbench.ObserverDisabled)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("disabled observer path allocates: %d allocs/op", a)
	}
}

// TestRoundSpanAllocBound pins the inline-Fields redesign: one fully traced
// round (6 peers — 14 spans into a ring) must stay within 4 allocs/op. With
// map-backed fields it cost 28.
func TestRoundSpanAllocBound(t *testing.T) {
	r := testing.Benchmark(obsbench.RoundSpan)
	if a := r.AllocsPerOp(); a > 4 {
		t.Errorf("traced round allocates %d allocs/op, want <= 4", a)
	}
}
