package obs_test

import (
	"testing"

	"clocksync/internal/obs/obsbench"
)

// The benchmark bodies live in obsbench so cmd/benchobs can run the same
// code when recording the BENCH_obs.json baseline.

func BenchmarkObserverDisabled(b *testing.B)     { obsbench.ObserverDisabled(b) }
func BenchmarkObserverRing(b *testing.B)         { obsbench.ObserverRing(b) }
func BenchmarkRoundSpan(b *testing.B)            { obsbench.RoundSpan(b) }
func BenchmarkTraceContextDisabled(b *testing.B) { obsbench.TraceContextDisabled(b) }
func BenchmarkReplySpan(b *testing.B)            { obsbench.ReplySpan(b) }
func BenchmarkHistogramObserve(b *testing.B)     { obsbench.HistogramObserve(b) }

// TestObserverDisabledAllocFree pins the acceptance criterion directly so it
// fails in plain `go test`, not only under -bench: the no-sink fast path
// must not allocate.
func TestObserverDisabledAllocFree(t *testing.T) {
	r := testing.Benchmark(obsbench.ObserverDisabled)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("disabled observer path allocates: %d allocs/op", a)
	}
}

// TestRoundSpanAllocBound pins the inline-Fields redesign: one fully traced
// round (6 peers — 14 spans into a ring) must stay within 4 allocs/op. With
// map-backed fields it cost 28.
func TestRoundSpanAllocBound(t *testing.T) {
	r := testing.Benchmark(obsbench.RoundSpan)
	if a := r.AllocsPerOp(); a > 4 {
		t.Errorf("traced round allocates %d allocs/op, want <= 4", a)
	}
}

// TestTraceContextDisabledAllocFree pins the fleet-telemetry acceptance
// bound: stamping (or deciding not to stamp) the wire trace context must add
// zero allocations per message when no span sink is attached.
func TestTraceContextDisabledAllocFree(t *testing.T) {
	r := testing.Benchmark(obsbench.TraceContextDisabled)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("disabled trace-context path allocates: %d allocs/op", a)
	}
}

// TestReplySpanAllocBound pins the responder side of a cross-node join: one
// reply span with five inline fields into a ring must stay within 1 alloc/op
// (the ring stores spans by value; the budget leaves headroom for the
// fan-out slice read).
func TestReplySpanAllocBound(t *testing.T) {
	r := testing.Benchmark(obsbench.ReplySpan)
	if a := r.AllocsPerOp(); a > 1 {
		t.Errorf("reply span emission allocates %d allocs/op, want <= 1", a)
	}
}
