// Package obsbench holds the observability benchmark bodies, shared between
// `go test -bench` (internal/obs) and cmd/benchobs, which runs them
// standalone and records the JSON baseline BENCH_obs.json.
//
// They measure the two costs the instrumentation design promises to control:
// the disabled path (no sinks attached — the default for every simulation
// and live node) must be allocation-free, and the enabled path (ring sink,
// full round span tree) must stay cheap enough to leave on in production.
package obsbench

import (
	"testing"

	"clocksync/internal/obs"
)

// ObserverDisabled measures the no-sink fast path: tallying an event on an
// observer with no sinks, plus the span guard every instrumented layer runs
// per round. This path sits inside every protocol Sync, so it must report
// 0 allocs/op.
func ObserverDisabled(b *testing.B) {
	o := obs.NewObserver()
	e := obs.Event{Kind: obs.KindRound, Node: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
		if o.SpansEnabled() {
			b.Fatal("spans enabled without a span sink")
		}
	}
}

// ObserverRing measures event fan-out into the in-memory ring buffer — the
// cheapest enabled configuration (syncsim -metrics-addr, Node.ServeMetrics).
func ObserverRing(b *testing.B) {
	o := obs.NewObserver(obs.NewRing(1024))
	e := obs.Event{
		Kind: obs.KindRound, Node: 1, At: 12.5,
		Fields: map[string]float64{"delta": -0.004, "failed": 1, "wayoff": 0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

// RoundSpan measures one fully-traced Sync round with n−1 = 6 peers: ID
// issue, estimate spans, reading spans, the adjustment span and the round
// span, fanned into a span ring — the per-round cost of -trace-spans.
func RoundSpan(b *testing.B) {
	o := obs.NewObserver()
	o.AddSpanSink(obs.NewSpanRing(1024))
	const peers = 6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round := o.NextSpanID()
		for p := 0; p < peers; p++ {
			est := o.NextSpanID()
			o.EmitSpan(obs.Span{
				ID: est, Parent: round, Name: obs.SpanEstimate, Node: 0,
				Start: 1, End: 1.05,
				Fields: obs.F("peer", float64(p)).F("d", 0.01).F("a", 0.002).F("rtt", 0.05).F("ok", 1),
			})
			o.EmitSpan(obs.Span{
				ID: o.NextSpanID(), Parent: est, Name: obs.SpanReading, Node: 0,
				Start: 1.06, End: 1.06,
				Fields: obs.F("peer", float64(p)).F("accepted", 1).F("lowtrim", 0).F("hightrim", 0),
			})
		}
		o.EmitSpan(obs.Span{
			ID: o.NextSpanID(), Parent: round, Name: obs.SpanAdjust, Node: 0,
			Start: 1.06, End: 1.06, Fields: obs.F("delta", -0.004).F("wayoff", 0),
		})
		o.EmitSpan(obs.Span{
			ID: round, Name: obs.SpanRound, Node: 0, Start: 1, End: 1.06,
			Fields: obs.F("delta", -0.004).F("wayoff", 0),
		})
	}
}

// TraceContextDisabled measures the per-message cost trace-context
// propagation adds when no span sink is attached — the default for every
// node. The wire layers run exactly this per outgoing request: one
// SpansEnabled guard deciding whether to issue and stamp a span ID. It must
// report 0 allocs/op (the disabled-observer acceptance bound for the fleet
// telemetry plane).
func TraceContextDisabled(b *testing.B) {
	o := obs.NewObserver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var span obs.SpanID
		if o.SpansEnabled() {
			span = o.NextSpanID()
		}
		if span != 0 {
			b.Fatal("span issued without a span sink")
		}
	}
}

// ReplySpan measures the responder-side half of a cross-node joined exchange:
// emitting one zero-duration reply span — under the requester's propagated
// span ID — with the origin/epoch/uncertainty payload, into a span ring. This
// runs once per answered request on every traced node.
func ReplySpan(b *testing.B) {
	o := obs.NewObserver()
	o.AddSpanSink(obs.NewSpanRing(1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.EmitSpan(obs.Span{
			ID: obs.SpanID(uint64(i + 1)), Name: obs.SpanReply, Node: 1,
			Start: 1, End: 1,
			Fields: obs.F("origin", 0).F("origin_epoch", 41).
				F("node_time", 1.5).F("unc", 0.0004).F("epoch", 42),
		})
	}
}

// HistogramObserve measures one lock-free histogram observation — the
// per-estimate cost of the RTT/error/adjustment histograms.
func HistogramObserve(b *testing.B) {
	var h obs.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
