package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.MessagesSent.Inc()
				r.SyncRounds.Add(2)
				r.LastAdjust.Set(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.MessagesSent.Load(); got != 8000 {
		t.Errorf("MessagesSent = %d, want 8000", got)
	}
	if got := r.SyncRounds.Load(); got != 16000 {
		t.Errorf("SyncRounds = %d, want 16000", got)
	}
	if got := r.LastAdjust.Load(); got != 0.25 {
		t.Errorf("LastAdjust = %g, want 0.25", got)
	}
}

func TestCounterRejectsNegativeAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestWritePromFormat(t *testing.T) {
	r := NewRecorder()
	r.MessagesSent.Add(42)
	r.LastAdjust.Set(-0.005)
	var b strings.Builder
	if err := r.WriteProm(&b, `node="3"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP clocksync_messages_sent_total",
		"# TYPE clocksync_messages_sent_total counter",
		`clocksync_messages_sent_total{node="3"} 42`,
		"# TYPE clocksync_last_adjust_seconds gauge",
		`clocksync_last_adjust_seconds{node="3"} -0.005`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromMultipleRecordersShareHeaders(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.SyncRounds.Add(1)
	b.SyncRounds.Add(2)
	var sb strings.Builder
	err := WriteProm(&sb, map[string]*Recorder{`node="0"`: a, `node="1"`: b})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE clocksync_sync_rounds_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
	if !strings.Contains(out, `clocksync_sync_rounds_total{node="0"} 1`) ||
		!strings.Contains(out, `clocksync_sync_rounds_total{node="1"} 2`) {
		t.Errorf("per-node samples missing:\n%s", out)
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: float64(i), Kind: KindRound})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.At != float64(i+2) {
			t.Errorf("event %d has At=%g, want %g (oldest-first)", i, e.At, float64(i+2))
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var b strings.Builder
	j := NewJSONL(&b)
	j.Emit(Event{At: 1.5, Kind: KindRound, Node: 2, Fields: map[string]float64{"delta": 0.25}})
	j.Emit(Event{At: 2.5, Kind: KindSkip, Node: 1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindRound || e.Node != 2 || e.Fields["delta"] != 0.25 {
		t.Errorf("round-trip mismatch: %+v", e)
	}
}

func TestObserverTallyAndFanOut(t *testing.T) {
	ring := NewRing(10)
	var got []Event
	var mu sync.Mutex
	fn := SinkFunc(func(e Event) { mu.Lock(); got = append(got, e); mu.Unlock() })
	o := NewObserver(ring)
	o.AddSink(fn)
	o.Emit(Event{Kind: KindRound})
	o.Emit(Event{Kind: KindRound})
	o.Emit(Event{Kind: KindSkip})
	counts := o.EventCounts()
	if counts[KindRound] != 2 || counts[KindSkip] != 1 {
		t.Errorf("tally = %v", counts)
	}
	if ring.Total() != 3 || len(got) != 3 {
		t.Errorf("fan-out incomplete: ring=%d fn=%d", ring.Total(), len(got))
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.Emit(Event{Kind: KindRound}) // must not panic
	o.AddSink(NewRing(1))
	if o.Recorder() != nil {
		t.Error("nil observer returned a recorder")
	}
	if o.EventCounts() != nil {
		t.Error("nil observer returned counts")
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRecorder()
	r.SyncRounds.Add(7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	addr, err := Serve(ctx, &wg, "127.0.0.1:0", RecorderMux(r))
	if err != nil {
		t.Fatal(err)
	}
	body := httpGet(t, fmt.Sprintf("http://%s/metrics", addr))
	if !strings.Contains(body, "clocksync_sync_rounds_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if pp := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)); pp == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
	cancel()
	wg.Wait()
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
