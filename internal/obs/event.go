package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one structured observation. At is in seconds — simulation time
// for simulated runs, Unix time for live nodes. Kind names the observation;
// Fields carries its numeric payload (e.g. {"delta": 0.004} for an
// adjustment). Sample events additionally carry the per-node bias vector and
// the good-set deviation, mirroring the measurement-trace encoding so one
// JSONL stream serves both. The JSON encoding is one object per line when
// written through a JSONL sink, and cmd/tracestat understands the stream.
type Event struct {
	At        float64            `json:"at"`
	Kind      string             `json:"kind"`
	Node      int                `json:"node,omitempty"`
	Fields    map[string]float64 `json:"fields,omitempty"`
	Biases    []float64          `json:"biases,omitempty"`
	Deviation float64            `json:"deviation,omitempty"`
}

// Standard event kinds emitted by the instrumented layers. Sinks must accept
// unknown kinds: layers may add new ones.
const (
	KindRound    = "round"    // one completed Sync execution; fields: delta, failed, wayoff
	KindSkip     = "skip"     // a Sync execution that applied no adjustment
	KindCorrupt  = "corrupt"  // the adversary broke into a node
	KindRelease  = "release"  // the adversary left a node
	KindAuthFail = "authfail" // a message failed HMAC verification
	KindTimeout  = "timeout"  // a peer estimation hit MaxWait; fields: peer
	KindSample   = "sample"   // a measurement sample; carries Biases and Deviation
	// Peer-health transitions of the live degradation path; fields: peer,
	// and (for peerdark) fails = the consecutive-failure count that tripped.
	KindPeerDark   = "peerdark"   // a peer stopped answering and was marked dark
	KindPeerBright = "peerbright" // a dark peer answered and rejoined the wait set
)

// Sink consumes events. Implementations must be safe for concurrent Emit
// calls: live nodes emit from several goroutines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to a Sink. The function must be safe for
// concurrent calls.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// MultiSink fans every event out to each member.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Ring is a fixed-capacity in-memory sink keeping the most recent events —
// the "flight recorder" for tests and post-mortem inspection.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
	total int64
}

// NewRing returns a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns the number of events ever emitted (including overwritten
// ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONL streams events — and, since it also implements SpanSink, spans — to a
// writer as JSON lines. Both record shapes share one encoder and mutex, so a
// single trace file interleaves them without torn lines. Encoding errors are
// sticky and reported by Flush, so an unwritable trace never corrupts a run.
type JSONL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	err    error
	closed bool
}

// NewJSONL returns a sink writing one JSON object per line to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil && !j.closed {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// spanRecord is the JSONL encoding of a span: an event-shaped line with
// kind "span" plus the span identity, so one stream carries both and
// cmd/tracestat parses it with a single decoder.
type spanRecord struct {
	At     float64 `json:"at"`
	Kind   string  `json:"kind"`
	Node   int     `json:"node,omitempty"`
	Name   string  `json:"name"`
	Span   uint64  `json:"span"`
	Parent uint64  `json:"parent,omitempty"`
	Dur    float64 `json:"dur"`
	Fields *Fields `json:"fields,omitempty"`
}

// EmitSpan implements SpanSink.
func (j *JSONL) EmitSpan(s Span) {
	rec := spanRecord{
		At:     s.Start,
		Kind:   "span",
		Node:   s.Node,
		Name:   s.Name,
		Span:   uint64(s.ID),
		Parent: uint64(s.Parent),
		Dur:    s.Dur(),
	}
	if s.Fields.Len() > 0 {
		rec.Fields = &s.Fields
	}
	j.mu.Lock()
	if j.err == nil && !j.closed {
		j.err = j.enc.Encode(rec)
	}
	j.mu.Unlock()
}

// MarshalSpans encodes spans as a JSON array of span records — each element
// byte-compatible with the JSONL span-line encoding, so trace.Event decodes
// them. The /spanz endpoint of a live node serves this shape and the
// telemetry scraper parses it.
func MarshalSpans(spans []Span) ([]byte, error) {
	recs := make([]spanRecord, len(spans))
	for i, s := range spans {
		recs[i] = spanRecord{
			At:     s.Start,
			Kind:   "span",
			Node:   s.Node,
			Name:   s.Name,
			Span:   uint64(s.ID),
			Parent: uint64(s.Parent),
			Dur:    s.Dur(),
		}
		if s.Fields.Len() > 0 {
			f := s.Fields
			recs[i].Fields = &f
		}
	}
	return json.Marshal(recs)
}

// Flush drains the buffer and returns the first error encountered, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Close flushes and marks the sink closed: later Emit/EmitSpan calls are
// dropped. Because the encoder writes whole lines under the mutex, a closed
// and flushed trace file always ends on a complete line even if other
// goroutines are still emitting — the graceful-shutdown guarantee syncnode
// and syncsim rely on.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Observer bundles a Recorder with an event stream and a span stream: the
// single handle the instrumented layers write to and the public API hands
// around. A nil *Observer is valid and discards everything, so call sites
// need no guards.
type Observer struct {
	rec *Recorder

	hasSpans atomic.Bool   // true once a span sink is attached
	spanID   atomic.Uint64 // last issued SpanID

	mu        sync.Mutex
	sinks     []Sink
	spanSinks []SpanSink
	counts    map[string]int64
}

// NewObserver returns an observer with a fresh Recorder, fanning events out
// to the given sinks.
func NewObserver(sinks ...Sink) *Observer {
	return &Observer{rec: NewRecorder(), sinks: sinks, counts: make(map[string]int64)}
}

// Recorder returns the observer's counter/gauge recorder (nil for a nil
// observer — callers incrementing counters must check).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// AddSink attaches another sink. Events emitted before the call are not
// replayed.
func (o *Observer) AddSink(s Sink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.sinks = append(o.sinks, s)
	o.mu.Unlock()
}

// AddSpanSink attaches a span sink and enables span emission. Spans emitted
// before the call are not replayed.
func (o *Observer) AddSpanSink(s SpanSink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.spanSinks = append(o.spanSinks, s)
	o.mu.Unlock()
	o.hasSpans.Store(true)
}

// SpansEnabled reports whether any span sink is attached. Instrumented layers
// guard span construction with this so the disabled path costs one atomic
// load and zero allocations. Safe on a nil observer.
func (o *Observer) SpansEnabled() bool {
	return o != nil && o.hasSpans.Load()
}

// NextSpanID issues a fresh non-zero span ID. Safe on a nil observer (returns
// 0, the "no span" ID).
func (o *Observer) NextSpanID() SpanID {
	if o == nil {
		return 0
	}
	return SpanID(o.spanID.Add(1))
}

// EmitSpan fans a completed span out to every span sink. Safe on a nil
// observer.
func (o *Observer) EmitSpan(s Span) {
	if o == nil || !o.hasSpans.Load() {
		return
	}
	o.mu.Lock()
	sinks := o.spanSinks
	o.mu.Unlock()
	for _, snk := range sinks {
		snk.EmitSpan(s)
	}
}

// Emit tallies the event and fans it out to every sink. Safe on a nil
// observer.
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.counts[e.Kind]++
	sinks := o.sinks
	o.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// EventCounts returns a copy of the per-kind tally of every event emitted
// through this observer.
func (o *Observer) EventCounts() map[string]int64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.counts))
	for k, v := range o.counts {
		out[k] = v
	}
	return out
}
