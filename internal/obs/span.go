package obs

import "sync"

// The span layer makes a round's outcome causally traceable to individual
// messages: each Sync execution opens a round span whose children are one
// estimation span per peer (send → reply or timeout), one reading span per
// estimate (accepted or trimmed by the convergence function), and one
// adjustment span. Counters say *that* a bound was approached; the span tree
// says *which* peer estimate, timeout or trimmed reading pulled the
// convergence function there.
//
// Spans are emitted on completion, not opened/closed through the observer:
// the instrumented layers guard every span construction with
// Observer.SpansEnabled(), so with no span sink attached the fast path costs
// one atomic load and zero allocations (BenchmarkObserverDisabled asserts
// this).

// SpanID identifies a span within one Observer's stream. IDs are assigned
// from Observer.NextSpanID, never reused, and never zero; zero means "no
// span" (tracing disabled, or a root span's missing parent).
type SpanID uint64

// Span names emitted by the instrumented layers. Consumers must accept
// unknown names, as with event kinds.
const (
	SpanRound    = "round"    // one Sync execution, estimation start → adjustment
	SpanEstimate = "estimate" // one peer estimation, send → reply/timeout
	SpanReading  = "reading"  // the convergence function's verdict on one estimate
	SpanAdjust   = "adjust"   // the adjustment step of a round
)

// Span is one completed span. Start and End are in seconds on the same
// timebase as Event.At (simulation time for simulated runs, Unix time for
// live nodes); zero-duration spans (Start == End) mark instantaneous
// decisions such as readings. Fields carries the numeric payload; values
// must be finite (encoding/json rejects infinities, and sinks are entitled
// to encode).
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for roots
	Name   string
	Node   int
	Start  float64
	End    float64
	Fields map[string]float64
}

// Dur returns the span's duration in seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// SpanSink consumes completed spans. Implementations must be safe for
// concurrent EmitSpan calls: live nodes emit from several goroutines.
type SpanSink interface {
	EmitSpan(Span)
}

// SpanSinkFunc adapts a function to a SpanSink. The function must be safe
// for concurrent calls.
type SpanSinkFunc func(Span)

// EmitSpan implements SpanSink.
func (f SpanSinkFunc) EmitSpan(s Span) { f(s) }

// SpanRing is a fixed-capacity in-memory span sink keeping the most recent
// spans — the span counterpart of Ring.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	count int
	total int64
}

// NewSpanRing returns a ring holding the last capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// EmitSpan implements SpanSink.
func (r *SpanRing) EmitSpan(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns the number of spans ever emitted (including overwritten
// ones).
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
