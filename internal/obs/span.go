package obs

import (
	"encoding/json"
	"sort"
	"sync"
)

// The span layer makes a round's outcome causally traceable to individual
// messages: each Sync execution opens a round span whose children are one
// estimation span per peer (send → reply or timeout), one reading span per
// estimate (accepted or trimmed by the convergence function), and one
// adjustment span. Counters say *that* a bound was approached; the span tree
// says *which* peer estimate, timeout or trimmed reading pulled the
// convergence function there.
//
// Spans are emitted on completion, not opened/closed through the observer:
// the instrumented layers guard every span construction with
// Observer.SpansEnabled(), so with no span sink attached the fast path costs
// one atomic load and zero allocations (BenchmarkObserverDisabled asserts
// this).

// SpanID identifies a span within one Observer's stream. IDs are assigned
// from Observer.NextSpanID, never reused, and never zero; zero means "no
// span" (tracing disabled, or a root span's missing parent).
type SpanID uint64

// Span names emitted by the instrumented layers. Consumers must accept
// unknown names, as with event kinds.
const (
	SpanRound    = "round"    // one Sync execution, estimation start → adjustment
	SpanEstimate = "estimate" // one peer estimation, send → reply/timeout
	SpanReading  = "reading"  // the convergence function's verdict on one estimate
	SpanAdjust   = "adjust"   // the adjustment step of a round

	// Cross-node telemetry spans. These carry a span ID *propagated over the
	// wire* rather than issued locally: the responder records its side of an
	// exchange under the requester's span ID, so a fleet aggregator
	// (internal/telemetry) can join the two halves recorded on different
	// nodes. They are observability metadata, not protocol state — the
	// conformance checker counts and ignores them.
	SpanReply = "reply" // responder's view of one estimate exchange (joins to "estimate")
	SpanServe = "serve" // server's view of one serve query (joins to "query")
	SpanQuery = "query" // client's view of one serve exchange, send → reply
)

// maxSpanFields bounds the inline field storage of a Span. The widest span
// the instrumented layers emit is a reading span with six fields; the cap
// leaves headroom without bloating every Span copy.
const maxSpanFields = 8

// Field is one key→value entry of a span's numeric payload.
type Field struct {
	Key string
	Val float64
}

// Fields is a span's numeric payload: a small ordered key→value set stored
// inline (no heap allocation), built by chaining F calls:
//
//	obs.F("peer", 3).F("rtt", 0.04)
//
// Emitting a span is on the per-round hot path of every traced protocol
// execution; inline fields are what keep a fully traced round allocation-free
// (BenchmarkRoundSpan pins this). Fields hold at most maxSpanFields entries;
// exceeding the cap panics, as it is always an instrumentation bug. The JSON
// encoding is an object with sorted keys, byte-compatible with the
// map[string]float64 encoding earlier releases used.
type Fields struct {
	n  int32
	kv [maxSpanFields]Field
}

// F starts a field set with one entry. It is the head of the builder chain.
func F(key string, val float64) Fields {
	var f Fields
	return f.F(key, val)
}

// F returns a copy of the set with one more entry appended.
func (f Fields) F(key string, val float64) Fields {
	if int(f.n) == len(f.kv) {
		panic("obs: span field cap exceeded")
	}
	f.kv[f.n] = Field{Key: key, Val: val}
	f.n++
	return f
}

// Len returns the number of entries.
func (f Fields) Len() int { return int(f.n) }

// Get returns the value for key, or 0 when absent — mirroring map indexing,
// which consumers of the previous representation relied on.
func (f Fields) Get(key string) float64 {
	v, _ := f.Lookup(key)
	return v
}

// Lookup returns the value for key and whether it is present.
func (f Fields) Lookup(key string) (float64, bool) {
	for i := 0; i < int(f.n); i++ {
		if f.kv[i].Key == key {
			return f.kv[i].Val, true
		}
	}
	return 0, false
}

// Each calls fn for every entry in insertion order.
func (f Fields) Each(fn func(key string, val float64)) {
	for i := 0; i < int(f.n); i++ {
		fn(f.kv[i].Key, f.kv[i].Val)
	}
}

// Map returns the entries as a freshly allocated map, for consumers that
// want map semantics off the hot path.
func (f Fields) Map() map[string]float64 {
	if f.n == 0 {
		return nil
	}
	m := make(map[string]float64, f.n)
	for i := 0; i < int(f.n); i++ {
		m[f.kv[i].Key] = f.kv[i].Val
	}
	return m
}

// MarshalJSON encodes the set as a JSON object with sorted keys — the same
// bytes encoding/json produced for the map representation, so JSONL traces
// and their golden files are unchanged.
func (f Fields) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.Map())
}

// UnmarshalJSON decodes a JSON object into the set, so a Fields round-trips
// through the JSONL encoding.
func (f *Fields) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*f = Fields{}
	// Sorted insertion keeps decoding deterministic.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		*f = f.F(k, m[k])
	}
	return nil
}

// Span is one completed span. Start and End are in seconds on the same
// timebase as Event.At (simulation time for simulated runs, Unix time for
// live nodes); zero-duration spans (Start == End) mark instantaneous
// decisions such as readings. Fields carries the numeric payload inline;
// values must be finite (encoding/json rejects infinities, and sinks are
// entitled to encode).
type Span struct {
	ID     SpanID
	Parent SpanID // 0 for roots
	Name   string
	Node   int
	Start  float64
	End    float64
	Fields Fields
}

// Dur returns the span's duration in seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// SpanSink consumes completed spans. Implementations must be safe for
// concurrent EmitSpan calls: live nodes emit from several goroutines.
type SpanSink interface {
	EmitSpan(Span)
}

// SpanSinkFunc adapts a function to a SpanSink. The function must be safe
// for concurrent calls.
type SpanSinkFunc func(Span)

// EmitSpan implements SpanSink.
func (f SpanSinkFunc) EmitSpan(s Span) { f(s) }

// SpanRing is a fixed-capacity in-memory span sink keeping the most recent
// spans — the span counterpart of Ring.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	count int
	total int64
}

// NewSpanRing returns a ring holding the last capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// EmitSpan implements SpanSink.
func (r *SpanRing) EmitSpan(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns the number of spans ever emitted (including overwritten
// ones).
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
