package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// The histogram layer gives the observability stream distribution-level
// visibility: the related analyses (resilience bounds with fault correction,
// optimal-precision Byzantine synchronization) reason in quantiles of skew
// and estimation error, not means, and hot-path optimization needs per-phase
// latency percentiles. All histograms share one fixed log-spaced bucket
// layout, so histograms from different nodes, runs or processes merge by
// plain bucket-count addition — the property Prometheus aggregation and
// cross-run comparisons rely on.
//
// Layout: histBucketsPerDecade buckets per decade of seconds, spanning
// [histMin, histMax). Values below the first edge land in the first bucket,
// values at or above histMax in the overflow bucket. With 5 buckets per
// decade adjacent edges are a factor 10^(1/5) ≈ 1.585 apart, which bounds
// the relative error of quantile estimates (see Histogram.Quantile).
const (
	histBucketsPerDecade = 5
	histMinExp           = -7 // first edge 1e-7 s (100 ns)
	histMaxExp           = 3  // last edge 1e3 s
	histEdges            = (histMaxExp - histMinExp) * histBucketsPerDecade
	histBuckets          = histEdges + 1 // + overflow
)

// histBounds holds the shared upper bucket edges, ascending.
var histBounds = func() [histEdges]float64 {
	var b [histEdges]float64
	for i := range b {
		exp := float64(histMinExp) + float64(i+1)/histBucketsPerDecade
		b[i] = math.Pow(10, exp)
	}
	return b
}()

// HistBucketRatio is the ratio between adjacent bucket edges; quantile
// estimates are accurate to within this multiplicative factor.
var HistBucketRatio = math.Pow(10, 1.0/histBucketsPerDecade)

// HistogramBounds returns a copy of the shared upper bucket edges in
// seconds, ascending. The final (overflow) bucket is unbounded.
func HistogramBounds() []float64 {
	out := make([]float64, histEdges)
	copy(out[:], histBounds[:])
	return out
}

// Histogram is a fixed-layout, lock-free histogram of non-negative values in
// seconds. The zero value is ready to use; Observe, Count, Sum, Quantile and
// Merge are all safe for concurrent use. Because every Histogram shares the
// same bucket edges, any two are mergeable.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one value. Negative values are clamped to zero (they are
// magnitudes by contract); NaN is dropped.
func (h *Histogram) Observe(x float64) {
	if h == nil || math.IsNaN(x) {
		return
	}
	if x < 0 {
		x = 0
	}
	h.counts[histBucketIndex(x)].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64frombits(old) + x
		if h.sum.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// histBucketIndex returns the bucket for x: the first bucket whose upper
// edge is ≥ x, or the overflow bucket.
func histBucketIndex(x float64) int {
	// Binary search over the fixed edges (they are few and in cache).
	lo, hi := 0, histEdges
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns a snapshot of the per-bucket counts (not cumulative); the
// last entry is the overflow bucket.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, histBuckets)
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// geometric interpolation inside the selected bucket. The estimate is exact
// to within the bucket resolution: at most a factor HistBucketRatio (≈1.585)
// from the true sample quantile, which hist tests assert. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.Buckets()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest bucket whose cumulative count covers rank.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum < rank {
			continue
		}
		lo, hi := bucketRange(i)
		if i == histBuckets-1 {
			return lo // overflow: report the last finite edge
		}
		// Geometric interpolation by the rank's position within the bucket.
		frac := float64(rank-(cum-c)) / float64(c)
		if lo == 0 {
			return hi * frac // first bucket: linear from zero
		}
		return lo * math.Pow(hi/lo, frac)
	}
	return histBounds[histEdges-1]
}

// bucketRange returns bucket i's (lower, upper) edges; the overflow bucket
// reports (last edge, +Inf).
func bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		return 0, histBounds[0]
	}
	if i >= histEdges {
		return histBounds[histEdges-1], math.Inf(1)
	}
	return histBounds[i-1], histBounds[i]
}

// NumHistogramBuckets returns the number of per-bucket counters every
// Histogram carries: one per edge plus the overflow bucket — the length
// Buckets returns and HistogramFromBuckets expects.
func NumHistogramBuckets() int { return histBuckets }

// HistogramFromBuckets reconstructs a Histogram from externally obtained
// per-bucket counts (not cumulative; the last entry is the overflow bucket)
// and the observation sum. It is the inverse of Buckets/Sum for any
// histogram that shares the fixed layout — the telemetry scraper uses it to
// rebuild a remote node's histograms from its Prometheus exposition so they
// can be merged with Merge. Counts must have exactly NumHistogramBuckets
// entries and be non-negative.
func HistogramFromBuckets(counts []int64, sum float64) (*Histogram, error) {
	if len(counts) != histBuckets {
		return nil, fmt.Errorf("obs: histogram needs %d bucket counts, got %d", histBuckets, len(counts))
	}
	h := &Histogram{}
	var total int64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("obs: negative count %d in bucket %d", c, i)
		}
		h.counts[i].Store(c)
		total += c
	}
	h.total.Store(total)
	h.sum.Store(math.Float64bits(sum))
	return h, nil
}

// Merge adds other's observations into h. Safe because all Histograms share
// one bucket layout; concurrent Observes during a merge are not lost, they
// just land on one side or the other.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	for {
		old := h.sum.Load()
		next := math.Float64frombits(old) + other.Sum()
		if h.sum.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}
