package proactive

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSharing(t *testing.T, seed int64, secret int64, n, k int) *Sharing {
	t.Helper()
	s, err := NewSharing(seed, big.NewInt(secret), n, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSplitAndReconstruct(t *testing.T) {
	s := mustSharing(t, 1, 424242, 7, 3)
	shares := []Share{s.ShareAt(0, 0), s.ShareAt(3, 0), s.ShareAt(6, 0)}
	got, err := Reconstruct(shares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(424242)) != 0 {
		t.Fatalf("reconstructed %v", got)
	}
}

func TestAllThresholdSubsetsReconstruct(t *testing.T) {
	const n, k = 6, 3
	s := mustSharing(t, 2, 99991, n, k)
	var shares []Share
	for i := 0; i < n; i++ {
		shares = append(shares, s.ShareAt(i, 0))
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				got, err := Reconstruct([]Share{shares[a], shares[b], shares[c]}, k)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(s.Secret()) != 0 {
					t.Fatalf("subset (%d,%d,%d) reconstructed %v", a, b, c, got)
				}
			}
		}
	}
}

func TestRefreshPreservesSecretProperty(t *testing.T) {
	// Any threshold subset of any epoch's shares reconstructs the secret.
	f := func(seed int64, secretRaw uint64, epochRaw uint8) bool {
		secret := new(big.Int).SetUint64(secretRaw)
		s, err := NewSharing(seed, secret, 7, 3)
		if err != nil {
			return false
		}
		epoch := int64(epochRaw % 20)
		rng := rand.New(rand.NewSource(seed ^ 0x5a))
		idx := rng.Perm(7)[:3]
		shares := []Share{s.ShareAt(idx[0], epoch), s.ShareAt(idx[1], epoch), s.ShareAt(idx[2], epoch)}
		got, err := Reconstruct(shares, 3)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedEpochSharesAreWorthless(t *testing.T) {
	s := mustSharing(t, 3, 123456789, 7, 3)
	// Two epoch-5 shares plus one epoch-4 share: the guard rejects them, and
	// forcing the interpolation yields garbage.
	mixed := []Share{s.ShareAt(0, 5), s.ShareAt(1, 5), s.ShareAt(2, 4)}
	if _, err := Reconstruct(mixed, 3); err == nil {
		t.Fatal("mixed epochs accepted")
	}
	if got := ReconstructUnchecked(mixed); got.Cmp(s.Secret()) == 0 {
		t.Fatal("cross-epoch shares reconstructed the secret — refresh is broken")
	}
}

func TestBelowThresholdRejected(t *testing.T) {
	s := mustSharing(t, 4, 7, 5, 3)
	if _, err := Reconstruct([]Share{s.ShareAt(0, 0), s.ShareAt(1, 0)}, 3); err == nil {
		t.Fatal("2 of 3 shares accepted")
	}
}

func TestDuplicateShareRejected(t *testing.T) {
	s := mustSharing(t, 5, 7, 5, 3)
	sh := s.ShareAt(0, 0)
	if _, err := Reconstruct([]Share{sh, sh, s.ShareAt(1, 0)}, 3); err == nil {
		t.Fatal("duplicate share accepted")
	}
}

func TestBelowThresholdRevealsNothing(t *testing.T) {
	// Information-theoretic check by construction: for k−1 shares, every
	// candidate secret is consistent with some polynomial. Verify the dual:
	// two sharings of different secrets with the same seed produce k−1
	// share-sets that are both "completable" — i.e. interpolating k−1 shares
	// plus a forged point at x=0 with ANY value is a valid polynomial. We
	// spot-check that k−1 real shares plus a crafted share reconstruct an
	// attacker-chosen value, proving k−1 shares cannot pin the secret down.
	s := mustSharing(t, 6, 31337, 7, 3)
	partial := []Share{s.ShareAt(0, 0), s.ShareAt(1, 0)}
	// The attacker wants the "secret" to be 999. A forged third share that
	// makes it so always exists; find it by solving with Lagrange: choose
	// x=7 and binary-search is unnecessary — interpolate the polynomial
	// through (0, 999), partial[0], partial[1] and evaluate at 7.
	forged := Share{X: 7, Epoch: 0, Y: interpolateAt(
		[]point{{0, big.NewInt(999)}, {int64(partial[0].X), partial[0].Y}, {int64(partial[1].X), partial[1].Y}},
		7)}
	got, err := Reconstruct([]Share{partial[0], partial[1], forged}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(999)) != 0 {
		t.Fatalf("forged completion gave %v, want 999 — k−1 shares leaked information", got)
	}
}

// point and interpolateAt implement generic Lagrange interpolation for the
// zero-knowledge spot check.
type point struct {
	x int64
	y *big.Int
}

func interpolateAt(pts []point, x int64) *big.Int {
	p := FieldPrime()
	bx := big.NewInt(x)
	sum := new(big.Int)
	for i, pi := range pts {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(pi.x)
		for j, pj := range pts {
			if i == j {
				continue
			}
			xj := big.NewInt(pj.x)
			num.Mul(num, new(big.Int).Sub(bx, xj))
			num.Mod(num, p)
			den.Mul(den, new(big.Int).Sub(xi, xj))
			den.Mod(den, p)
		}
		term := new(big.Int).ModInverse(den, p)
		term.Mul(term, num)
		term.Mul(term, pi.y)
		term.Mod(term, p)
		sum.Add(sum, term)
		sum.Mod(sum, p)
	}
	return sum
}

func TestNewSharingValidation(t *testing.T) {
	if _, err := NewSharing(1, big.NewInt(5), 4, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewSharing(1, big.NewInt(5), 4, 5); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := NewSharing(1, big.NewInt(-5), 4, 2); err == nil {
		t.Error("negative secret accepted")
	}
	if _, err := NewSharing(1, FieldPrime(), 4, 2); err == nil {
		t.Error("out-of-field secret accepted")
	}
}

func TestShareAtPanics(t *testing.T) {
	s := mustSharing(t, 7, 1, 4, 2)
	for _, fn := range []func(){
		func() { s.ShareAt(-1, 0) },
		func() { s.ShareAt(4, 0) },
		func() { s.ShareAt(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicHistory(t *testing.T) {
	a := mustSharing(t, 11, 555, 5, 3)
	b := mustSharing(t, 11, 555, 5, 3)
	for e := int64(0); e < 5; e++ {
		for h := 0; h < 5; h++ {
			if a.ShareAt(h, e).Y.Cmp(b.ShareAt(h, e).Y) != 0 {
				t.Fatalf("same seed diverged at holder %d epoch %d", h, e)
			}
		}
	}
	// Lazy epoch generation must not depend on query order.
	c := mustSharing(t, 11, 555, 5, 3)
	late := c.ShareAt(0, 4)
	if late.Y.Cmp(a.ShareAt(0, 4).Y) != 0 {
		t.Fatal("epoch generation depends on query order")
	}
}
