package proactive

import (
	"math/big"
	"testing"
)

func BenchmarkShareAt(b *testing.B) {
	s, err := NewSharing(1, big.NewInt(123456), 7, 3)
	if err != nil {
		b.Fatal(err)
	}
	s.ShareAt(0, 64) // pre-generate the refresh history
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ShareAt(i%7, 64)
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, k := range []int{3, 7, 15} {
		s, err := NewSharing(1, big.NewInt(987654321), 2*k, k)
		if err != nil {
			b.Fatal(err)
		}
		shares := make([]Share, k)
		for i := range shares {
			shares[i] = s.ShareAt(i, 0)
		}
		b.Run(itoa(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Reconstruct(shares, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
