// Package proactive implements the slice of proactive secret sharing needed
// to exercise the paper's motivating application (§1): Shamir shares over a
// prime field, and epoch-based share refresh with zero-polynomials
// (Herzberg–Jarecki–Krawczyk–Yung style, simplified to a trusted sum).
//
// The security story the paper supplies the foundation for: shares are
// refreshed every epoch, so an attacker must collect a reconstruction
// threshold of shares *of the same epoch*. Refresh is driven by each
// holder's local clock — if clocks desynchronize by more than the refresh
// grace, a lagging holder keeps serving an old epoch's share and a mobile
// adversary can combine it with shares stolen during that epoch, defeating
// proactivity without ever exceeding its per-period corruption budget.
// Experiment E18 demonstrates exactly this, with real reconstruction.
package proactive

import (
	"fmt"
	"math/big"
	"math/rand"
)

// fieldPrime is the Mersenne prime 2^127 − 1; all share arithmetic is mod
// this prime. 127 bits is ample for a demonstration secret.
var fieldPrime = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

// FieldPrime returns (a copy of) the field modulus.
func FieldPrime() *big.Int { return new(big.Int).Set(fieldPrime) }

// Share is one holder's point on the sharing polynomial for one epoch.
// X is the holder's evaluation point (holder id + 1; never zero, which is
// the secret's position). Epoch tags which refresh generation the share
// belongs to — shares of different epochs lie on different polynomials and
// do not combine.
type Share struct {
	X     int
	Y     *big.Int
	Epoch int64
}

// polynomial is a list of coefficients, constant term first.
type polynomial []*big.Int

// eval computes p(x) mod fieldPrime by Horner's rule.
func (p polynomial) eval(x int64) *big.Int {
	acc := new(big.Int)
	bx := big.NewInt(x)
	for i := len(p) - 1; i >= 0; i-- {
		acc.Mul(acc, bx)
		acc.Add(acc, p[i])
		acc.Mod(acc, fieldPrime)
	}
	return acc
}

// randomPoly draws a degree-(k−1) polynomial with the given constant term.
func randomPoly(rng *rand.Rand, constant *big.Int, k int) polynomial {
	p := make(polynomial, k)
	p[0] = new(big.Int).Mod(constant, fieldPrime)
	for i := 1; i < k; i++ {
		p[i] = new(big.Int).Rand(rng, fieldPrime)
	}
	return p
}

// Sharing is a secret split among n holders with reconstruction threshold k,
// together with the refresh history: ZeroPoly(e) is the zero-constant
// polynomial added to every share at epoch e, so a holder's epoch-e share is
// base(x) + Σ_{1 ≤ j ≤ e} Z_j(x). Generating each epoch's polynomial from a
// seeded stream keeps the whole history reproducible and lazily computable.
type Sharing struct {
	N, K   int
	secret *big.Int
	base   polynomial
	rng    *rand.Rand
	zeros  []polynomial // zeros[e-1] is epoch e's refresh polynomial
}

// NewSharing splits secret among n holders with threshold k.
func NewSharing(seed int64, secret *big.Int, n, k int) (*Sharing, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("proactive: threshold k=%d out of range [2, n=%d]", k, n)
	}
	if secret.Sign() < 0 || secret.Cmp(fieldPrime) >= 0 {
		return nil, fmt.Errorf("proactive: secret outside the field")
	}
	rng := rand.New(rand.NewSource(seed))
	return &Sharing{
		N:      n,
		K:      k,
		secret: new(big.Int).Set(secret),
		base:   randomPoly(rng, secret, k),
		rng:    rng,
	}, nil
}

// zeroPoly returns epoch e's refresh polynomial (constant term zero),
// generating epochs lazily in order.
func (s *Sharing) zeroPoly(epoch int64) polynomial {
	if epoch < 1 {
		panic(fmt.Sprintf("proactive: epoch %d < 1", epoch))
	}
	for int64(len(s.zeros)) < epoch {
		s.zeros = append(s.zeros, randomPoly(s.rng, big.NewInt(0), s.K))
	}
	return s.zeros[epoch-1]
}

// ShareAt returns holder's share as of the given epoch (epoch 0 is the
// initial sharing; each later epoch adds one refresh).
func (s *Sharing) ShareAt(holder int, epoch int64) Share {
	if holder < 0 || holder >= s.N {
		panic(fmt.Sprintf("proactive: holder %d out of range", holder))
	}
	if epoch < 0 {
		panic(fmt.Sprintf("proactive: negative epoch %d", epoch))
	}
	x := int64(holder + 1)
	y := new(big.Int).Set(s.base.eval(x))
	for e := int64(1); e <= epoch; e++ {
		y.Add(y, s.zeroPoly(e).eval(x))
		y.Mod(y, fieldPrime)
	}
	return Share{X: holder + 1, Y: y, Epoch: epoch}
}

// Secret returns the shared secret (for verification in tests and
// experiments).
func (s *Sharing) Secret() *big.Int { return new(big.Int).Set(s.secret) }

// Reconstruct recovers the secret from k or more shares of the same epoch
// by Lagrange interpolation at zero. It errors on mixed epochs, duplicate
// points, or too few shares — and, critically for the experiments, shares
// of different epochs that are force-mixed reconstruct garbage, which
// ReconstructUnchecked demonstrates.
func Reconstruct(shares []Share, k int) (*big.Int, error) {
	if len(shares) < k {
		return nil, fmt.Errorf("proactive: %d shares below threshold %d", len(shares), k)
	}
	epoch := shares[0].Epoch
	seen := make(map[int]bool, len(shares))
	for _, sh := range shares {
		if sh.Epoch != epoch {
			return nil, fmt.Errorf("proactive: mixed epochs %d and %d", epoch, sh.Epoch)
		}
		if seen[sh.X] {
			return nil, fmt.Errorf("proactive: duplicate share for x=%d", sh.X)
		}
		seen[sh.X] = true
	}
	return lagrangeAtZero(shares[:k]), nil
}

// ReconstructUnchecked interpolates without the same-epoch guard; mixing
// epochs yields a field element unrelated to the secret (the experiments
// use it to show that cross-epoch shares are worthless).
func ReconstructUnchecked(shares []Share) *big.Int {
	return lagrangeAtZero(shares)
}

func lagrangeAtZero(shares []Share) *big.Int {
	sum := new(big.Int)
	for i, si := range shares {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(si.X))
		for j, sj := range shares {
			if i == j {
				continue
			}
			xj := big.NewInt(int64(sj.X))
			num.Mul(num, new(big.Int).Neg(xj))
			num.Mod(num, fieldPrime)
			den.Mul(den, new(big.Int).Sub(xi, xj))
			den.Mod(den, fieldPrime)
		}
		term := new(big.Int).ModInverse(den, fieldPrime)
		term.Mul(term, num)
		term.Mul(term, si.Y)
		term.Mod(term, fieldPrime)
		sum.Add(sum, term)
		sum.Mod(sum, fieldPrime)
	}
	return sum
}
