package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"clocksync/internal/simtime"
)

func TestDriftingRead(t *testing.T) {
	c := NewDrifting(100, 50, 1.0)
	if got := c.Read(100); got != 50 {
		t.Fatalf("Read at origin: got %v, want 50", got)
	}
	if got := c.Read(110); got != 60 {
		t.Fatalf("Read: got %v, want 60", got)
	}
	fast := NewDrifting(0, 0, 1.5)
	if got := fast.Read(10); got != 15 {
		t.Fatalf("fast Read: got %v, want 15", got)
	}
}

func TestDriftingRealAtInvertsRead(t *testing.T) {
	f := func(originU, offsetU, slopeU, targetU float64) bool {
		if anyBad(originU, offsetU, slopeU, targetU) {
			return true
		}
		origin := simtime.Time(math.Mod(originU, 1e6))
		offset := simtime.Time(math.Mod(offsetU, 1e6))
		slope := 0.5 + math.Mod(math.Abs(slopeU), 1.0) // [0.5, 1.5)
		c := NewDrifting(origin, offset, slope)
		target := offset + simtime.Time(math.Mod(math.Abs(targetU), 1e6))
		tau := c.RealAt(target, origin)
		reading := c.Read(tau)
		return math.Abs(float64(reading-target)) < 1e-6 || tau == origin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDriftingRealAtClampsToAfter(t *testing.T) {
	c := NewDrifting(0, 0, 1.0)
	// Clock reads 100 at τ=100; asking for target 50 after τ=80 clamps.
	if got := c.RealAt(50, 80); got != 80 {
		t.Fatalf("RealAt clamp: got %v, want 80", got)
	}
}

func TestNonPositiveSlopePanics(t *testing.T) {
	for _, slope := range []float64{0, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slope %v must panic", slope)
				}
			}()
			NewDrifting(0, 0, slope)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("piecewise zero slope must panic")
			}
		}()
		NewPiecewise(0, 0, 0)
	}()
}

func TestPiecewiseContinuity(t *testing.T) {
	c := NewPiecewise(0, 0, 1.0)
	c.ChangeSlope(10, 1.5)
	c.ChangeSlope(20, 0.8)
	// H(10) = 10; H(20) = 10 + 1.5·10 = 25; H(30) = 25 + 0.8·10 = 33.
	cases := []struct {
		at   simtime.Time
		want simtime.Time
	}{
		{0, 0}, {5, 5}, {10, 10}, {15, 17.5}, {20, 25}, {30, 33},
	}
	for _, tc := range cases {
		if got := c.Read(tc.at); math.Abs(float64(got-tc.want)) > 1e-9 {
			t.Errorf("Read(%v): got %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestPiecewiseReadBeforeOriginExtrapolates(t *testing.T) {
	c := NewPiecewise(10, 100, 2.0)
	if got := c.Read(5); got != 90 {
		t.Fatalf("backward extrapolation: got %v, want 90", got)
	}
}

func TestPiecewiseChangeSlopeOutOfOrderPanics(t *testing.T) {
	c := NewPiecewise(0, 0, 1.0)
	c.ChangeSlope(10, 1.2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order ChangeSlope must panic")
		}
	}()
	c.ChangeSlope(5, 1.1)
}

func TestPiecewiseRealAt(t *testing.T) {
	c := NewPiecewise(0, 0, 1.0)
	c.ChangeSlope(10, 2.0) // H(10)=10
	c.ChangeSlope(20, 0.5) // H(20)=30
	cases := []struct {
		target simtime.Time
		want   simtime.Time
	}{
		{5, 5},   // first segment
		{10, 10}, // boundary
		{20, 15}, // second segment: 10 + (20−10)/2
		{30, 20}, // boundary
		{35, 30}, // third segment: 20 + (35−30)/0.5
	}
	for _, tc := range cases {
		got := c.RealAt(tc.target, 0)
		if math.Abs(float64(got-tc.want)) > 1e-9 {
			t.Errorf("RealAt(%v): got %v, want %v", tc.target, got, tc.want)
		}
		// Round-trip: reading at the returned time matches the target.
		if r := c.Read(got); math.Abs(float64(r-tc.target)) > 1e-9 {
			t.Errorf("RealAt(%v) round trip: Read=%v", tc.target, r)
		}
	}
}

func TestPiecewiseRealAtRespectsAfter(t *testing.T) {
	c := NewPiecewise(0, 0, 1.0)
	if got := c.RealAt(5, 8); got != 8 {
		t.Fatalf("RealAt with past target: got %v, want 8", got)
	}
}

func TestPiecewiseMonotoneProperty(t *testing.T) {
	// Random piecewise clocks must be strictly increasing and RealAt must
	// invert Read, for any sequence of legal slope changes.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		c := NewPiecewise(0, simtime.Time(rng.Float64()*100), 0.9+rng.Float64()*0.2)
		at := simtime.Time(0)
		for i := 0; i < 5; i++ {
			at += simtime.Time(rng.Float64() * 50)
			c.ChangeSlope(at, 0.9+rng.Float64()*0.2)
		}
		prev := c.Read(0)
		for tau := simtime.Time(1); tau < 300; tau += 1 {
			cur := c.Read(tau)
			if cur <= prev {
				t.Fatalf("trial %d: clock not strictly increasing at τ=%v", trial, tau)
			}
			prev = cur
			inv := c.RealAt(cur, 0)
			if math.Abs(float64(inv-tau)) > 1e-6 {
				t.Fatalf("trial %d: RealAt(Read(%v)) = %v", trial, tau, inv)
			}
		}
	}
}

func TestSlopeBounds(t *testing.T) {
	lo, hi := SlopeBounds(0.01)
	if math.Abs(lo-1/1.01) > 1e-12 || math.Abs(hi-1.01) > 1e-12 {
		t.Fatalf("SlopeBounds: got (%v, %v)", lo, hi)
	}
}

func TestEquationTwoHolds(t *testing.T) {
	// A clock with slope inside SlopeBounds(ρ) must satisfy Equation 2 for
	// all interval pairs.
	rho := 0.05
	lo, hi := SlopeBounds(rho)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		slope := lo + rng.Float64()*(hi-lo)
		c := NewDrifting(0, 0, slope)
		t1 := simtime.Time(rng.Float64() * 1000)
		t2 := t1 + simtime.Time(rng.Float64()*1000)
		dH := float64(c.Read(t2) - c.Read(t1))
		dT := float64(t2 - t1)
		if dH < dT/(1+rho)-1e-9 || dH > dT*(1+rho)+1e-9 {
			t.Fatalf("Equation 2 violated: slope=%v dT=%v dH=%v", slope, dT, dH)
		}
	}
}

func TestQuantized(t *testing.T) {
	q := NewQuantized(NewDrifting(0, 0, 1.0), 0.25)
	cases := []struct {
		at   simtime.Time
		want simtime.Time
	}{
		{0, 0}, {0.1, 0}, {0.25, 0.25}, {0.6, 0.5}, {1.01, 1.0},
	}
	for _, tc := range cases {
		if got := q.Read(tc.at); math.Abs(float64(got-tc.want)) > 1e-12 {
			t.Errorf("Read(%v): got %v, want %v", tc.at, got, tc.want)
		}
	}
	// Readings are monotone non-decreasing and within one tick of the truth.
	prev := q.Read(0)
	for tau := simtime.Time(0); tau < 10; tau += 0.07 {
		got := q.Read(tau)
		if got < prev {
			t.Fatalf("quantized clock went backwards at %v", tau)
		}
		raw := q.HW.Read(tau)
		if raw-got < 0 || raw-got >= 0.25+1e-12 {
			t.Fatalf("quantization error out of range at %v: raw=%v got=%v", tau, raw, got)
		}
		prev = got
	}
	// RealAt delegates to the smooth clock.
	if got := q.RealAt(5, 0); math.Abs(float64(got-5)) > 1e-12 {
		t.Fatalf("RealAt: got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero tick must panic")
		}
	}()
	NewQuantized(NewDrifting(0, 0, 1), 0)
}

func TestQuantizedLocalClockStillSynchronizes(t *testing.T) {
	// A Local over a quantized hardware clock keeps working (the tick just
	// adds reading error).
	l := NewLocal(NewQuantized(NewDrifting(0, 0, 1.0), 0.001))
	l.Adjust(1)
	if got := l.Now(5.0005); math.Abs(float64(got-6.0)) > 1e-9 {
		t.Fatalf("quantized local: got %v", got)
	}
}

func TestLocalClock(t *testing.T) {
	hw := NewDrifting(0, 0, 1.0)
	l := NewLocal(hw)
	if got := l.Now(10); got != 10 {
		t.Fatalf("Now: got %v", got)
	}
	l.Adjust(5)
	if got := l.Now(10); got != 15 {
		t.Fatalf("Now after Adjust: got %v", got)
	}
	if got := l.Bias(10); got != 5 {
		t.Fatalf("Bias: got %v", got)
	}
	l.Adjust(-2)
	if got := l.Adj(); got != 3 {
		t.Fatalf("Adj accumulation: got %v", got)
	}
	l.SetAdj(-7)
	if got := l.Bias(10); got != -7 {
		t.Fatalf("Bias after SetAdj: got %v", got)
	}
	if l.Hardware() != hw {
		t.Fatal("Hardware accessor broken")
	}
}

func TestBiasTracksDrift(t *testing.T) {
	// With slope 1+r the bias of an unadjusted clock grows linearly at rate r.
	l := NewLocal(NewDrifting(0, 0, 1.001))
	b1 := l.Bias(100)
	b2 := l.Bias(200)
	if math.Abs(float64(b2-b1)-0.1) > 1e-9 {
		t.Fatalf("bias growth: got %v, want 0.1", b2-b1)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
