// Package clock models processor clocks per Definition 1 of the paper.
//
// Each processor p owns an unresettable hardware clock H_p and an adjustment
// variable adj_p; its logical clock is C_p(τ) = H_p(τ) + adj_p. The hardware
// clock is a smooth, monotonically increasing function of real time whose
// rate is bounded by the drift bound ρ (Equation 2):
//
//	(τ2−τ1)/(1+ρ) ≤ H_p(τ2) − H_p(τ1) ≤ (τ2−τ1)·(1+ρ)
//
// The simulator realizes hardware clocks as piecewise-linear functions of
// real time, which covers the full envelope of allowed behaviours including
// drift rates that change during the run.
package clock

import (
	"fmt"
	"math"
	"sort"

	"clocksync/internal/simtime"
)

// Hardware is a processor's unresettable hardware clock H_p.
type Hardware interface {
	// Read returns H(now), the hardware reading at real time now.
	Read(now simtime.Time) simtime.Time
	// RealAt returns the real time τ ≥ after at which the hardware clock
	// reads target. It is used to convert "wake me when my clock reads h"
	// alarms into simulator events. If the clock already reads past target
	// at time after, RealAt returns after.
	RealAt(target simtime.Time, after simtime.Time) simtime.Time
}

// SlopeBounds returns the [min, max] slope dH/dτ allowed by drift bound rho
// per Equation 2.
func SlopeBounds(rho float64) (lo, hi float64) {
	return 1 / (1 + rho), 1 + rho
}

// Drifting is a hardware clock with a constant drift: H(τ) = offset + slope·(τ−origin).
type Drifting struct {
	origin simtime.Time
	offset simtime.Time
	slope  float64
}

// NewDrifting returns a clock that reads offset at real time origin and
// advances with the given slope (1.0 = perfect; 1+ρ = fastest allowed).
func NewDrifting(origin, offset simtime.Time, slope float64) *Drifting {
	if slope <= 0 {
		panic(fmt.Sprintf("clock: non-positive slope %v", slope))
	}
	return &Drifting{origin: origin, offset: offset, slope: slope}
}

// Read implements Hardware.
func (c *Drifting) Read(now simtime.Time) simtime.Time {
	return c.offset + simtime.Time(c.slope*float64(now-c.origin))
}

// RealAt implements Hardware.
func (c *Drifting) RealAt(target, after simtime.Time) simtime.Time {
	t := c.origin + simtime.Time(float64(target-c.offset)/c.slope)
	if t < after {
		return after
	}
	return t
}

// Slope returns the clock's rate dH/dτ.
func (c *Drifting) Slope() float64 { return c.slope }

// segment is one linear piece of a piecewise clock.
type segment struct {
	start  simtime.Time // real time the segment begins
	offset simtime.Time // H(start)
	slope  float64
}

// Piecewise is a hardware clock whose rate changes at given real times. It
// models oscillators whose drift varies with temperature or age while still
// satisfying Equation 2 piece by piece.
type Piecewise struct {
	segs []segment
}

// NewPiecewise returns a piecewise clock that reads offset at real time
// origin with the given initial slope. Additional pieces are appended with
// ChangeSlope.
func NewPiecewise(origin, offset simtime.Time, slope float64) *Piecewise {
	if slope <= 0 {
		panic(fmt.Sprintf("clock: non-positive slope %v", slope))
	}
	return &Piecewise{segs: []segment{{start: origin, offset: offset, slope: slope}}}
}

// ChangeSlope switches the clock to a new rate at real time at, which must
// not precede the previous change. The reading stays continuous.
func (c *Piecewise) ChangeSlope(at simtime.Time, slope float64) {
	if slope <= 0 {
		panic(fmt.Sprintf("clock: non-positive slope %v", slope))
	}
	last := c.segs[len(c.segs)-1]
	if at < last.start {
		panic(fmt.Sprintf("clock: slope change at %v precedes segment start %v", at, last.start))
	}
	c.segs = append(c.segs, segment{
		start:  at,
		offset: last.offset + simtime.Time(last.slope*float64(at-last.start)),
		slope:  slope,
	})
}

// segmentAt returns the segment active at real time now. Reads before the
// first segment extrapolate it backwards.
func (c *Piecewise) segmentAt(now simtime.Time) segment {
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].start > now })
	if i == 0 {
		return c.segs[0]
	}
	return c.segs[i-1]
}

// Read implements Hardware.
func (c *Piecewise) Read(now simtime.Time) simtime.Time {
	s := c.segmentAt(now)
	return s.offset + simtime.Time(s.slope*float64(now-s.start))
}

// RealAt implements Hardware.
func (c *Piecewise) RealAt(target, after simtime.Time) simtime.Time {
	// Hardware clocks are strictly increasing, so scan segments from the one
	// active at `after` until one contains the target reading.
	start := after
	if c.Read(after) >= target {
		return after
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].start > start })
	if i > 0 {
		i--
	}
	for ; i < len(c.segs); i++ {
		s := c.segs[i]
		t := s.start + simtime.Time(float64(target-s.offset)/s.slope)
		if t < s.start {
			t = s.start
		}
		// The candidate is valid if it falls inside this segment.
		if i+1 == len(c.segs) || t < c.segs[i+1].start {
			if t < after {
				return after
			}
			return t
		}
	}
	panic("clock: unreachable — strictly increasing clock must attain target")
}

// Quantized wraps a hardware clock whose readings are only available at a
// finite tick granularity, as real oscillator/counter hardware provides:
// Read returns the underlying value truncated to a multiple of Tick. This
// adds up to one Tick of reading error on top of the network-induced ε —
// the estimation experiments use it to model coarse clocks. RealAt inverts
// against the underlying smooth clock (alarms fire when the true clock
// crosses the target; only *readings* are coarse).
type Quantized struct {
	HW   Hardware
	Tick simtime.Duration
}

// NewQuantized validates and wraps.
func NewQuantized(hw Hardware, tick simtime.Duration) *Quantized {
	if tick <= 0 {
		panic(fmt.Sprintf("clock: non-positive tick %v", tick))
	}
	return &Quantized{HW: hw, Tick: tick}
}

// Read implements Hardware.
func (q *Quantized) Read(now simtime.Time) simtime.Time {
	raw := float64(q.HW.Read(now))
	t := float64(q.Tick)
	return simtime.Time(math.Floor(raw/t) * t)
}

// RealAt implements Hardware.
func (q *Quantized) RealAt(target, after simtime.Time) simtime.Time {
	return q.HW.RealAt(target, after)
}

// Local is a processor's logical clock C_p = H_p + adj_p. The only
// operations the paper's protocol performs are reading the sum and adding to
// the adjustment variable — exactly the interface Definition 1 grants.
//
// As an extension beyond the paper's model (the NTP-style drift feedback §5
// lists as future work), Local also supports a frequency discipline: a gain
// g makes the logical clock advance at (1+g)× the hardware rate from the
// moment the gain is set, without disturbing the current reading. With
// g = 0 (the default and the paper's model) the clock is exactly H + adj.
type Local struct {
	hw  Hardware
	adj simtime.Duration

	gain      float64          // logical rate = hardware rate × (1+gain)
	gainSince simtime.Time     // hardware reading when gain last changed
	gainAcc   simtime.Duration // gain-induced offset accumulated before gainSince
}

// NewLocal wraps a hardware clock with a zero adjustment.
func NewLocal(hw Hardware) *Local { return &Local{hw: hw} }

// Now returns C(now) = H(now) + adj, plus any discipline-accumulated offset.
func (l *Local) Now(now simtime.Time) simtime.Time {
	h := l.hw.Read(now)
	disc := l.gainAcc + simtime.Duration(l.gain*float64(h-l.gainSince))
	return h.Add(l.adj + disc)
}

// Adjust adds delta to the adjustment variable.
func (l *Local) Adjust(delta simtime.Duration) { l.adj += delta }

// SetAdj overwrites the adjustment variable. Only the adversary uses this —
// a correct processor never does (it may only add).
func (l *Local) SetAdj(adj simtime.Duration) { l.adj = adj }

// Adj returns the current adjustment value. Exposed for measurement only;
// the protocol itself never reads it (the paper stresses H and adj are a
// mathematical convenience, not observable state).
func (l *Local) Adj() simtime.Duration { return l.adj }

// Bias returns B(τ) = C(τ) − τ, the quantity the paper's analysis tracks.
func (l *Local) Bias(now simtime.Time) simtime.Duration {
	return l.Now(now).Sub(now)
}

// Hardware returns the underlying hardware clock (for alarm scheduling).
func (l *Local) Hardware() Hardware { return l.hw }

// SetGain changes the frequency discipline at real time now: from here on
// the logical clock advances at (1+gain)× the hardware rate. The reading is
// continuous across the change. This operation is an extension beyond
// Definition 1 (see the type comment); the core protocol only uses it when
// drift compensation is explicitly enabled.
func (l *Local) SetGain(now simtime.Time, gain float64) {
	h := l.hw.Read(now)
	l.gainAcc += simtime.Duration(l.gain * float64(h-l.gainSince))
	l.gainSince = h
	l.gain = gain
}

// Gain returns the current frequency discipline.
func (l *Local) Gain() float64 { return l.gain }
