package clock

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/simtime"
)

func TestGainZeroIsIdentity(t *testing.T) {
	l := NewLocal(NewDrifting(0, 0, 1.0))
	l.Adjust(3)
	if got := l.Now(10); got != 13 {
		t.Fatalf("Now with zero gain: got %v", got)
	}
	if l.Gain() != 0 {
		t.Fatal("default gain must be 0")
	}
}

func TestGainChangesRate(t *testing.T) {
	l := NewLocal(NewDrifting(0, 0, 1.0))
	l.SetGain(100, 0.01)
	// Reading continuous at the change point.
	if got := l.Now(100); math.Abs(float64(got-100)) > 1e-9 {
		t.Fatalf("discontinuous at gain change: %v", got)
	}
	// After 10 s at gain 0.01 the clock leads by 0.1 s.
	if got := l.Now(110); math.Abs(float64(got-110.1)) > 1e-9 {
		t.Fatalf("gain rate: got %v, want 110.1", got)
	}
}

func TestGainComposesWithHardwareDrift(t *testing.T) {
	// Hardware at 1.002, gain −0.002: logical rate ≈ 1.002·0.998 ≈ 0.999996.
	l := NewLocal(NewDrifting(0, 0, 1.002))
	l.SetGain(0, -0.002)
	got := float64(l.Now(1000) - l.Now(0))
	want := 1000 * 1.002 * 0.998
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("composed rate: got %v, want %v", got, want)
	}
}

func TestGainAccumulationAcrossChanges(t *testing.T) {
	// Several gain changes; the reading must stay continuous and the
	// accumulated offsets must add up.
	l := NewLocal(NewDrifting(0, 0, 1.0))
	l.SetGain(0, 0.1)   // [0,10): +0.1/s
	before := l.Now(10) // 10 + 1.0
	l.SetGain(10, -0.05)
	after := l.Now(10)
	if math.Abs(float64(after-before)) > 1e-12 {
		t.Fatalf("gain change discontinuity: %v vs %v", before, after)
	}
	// At τ=20: 20 + 1.0 (first epoch) − 0.5 (second epoch) = 20.5.
	if got := l.Now(20); math.Abs(float64(got-20.5)) > 1e-12 {
		t.Fatalf("accumulated gain: got %v, want 20.5", got)
	}
	if got := l.Gain(); got != -0.05 {
		t.Fatalf("Gain: got %v", got)
	}
}

func TestGainRandomizedContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLocal(NewDrifting(0, 0, 1.0001))
	tau := simtime.Time(0)
	for i := 0; i < 200; i++ {
		tau += simtime.Time(rng.Float64() * 20)
		before := l.Now(tau)
		l.SetGain(tau, (rng.Float64()*2-1)*1e-3)
		after := l.Now(tau)
		if math.Abs(float64(after-before)) > 1e-9 {
			t.Fatalf("step %d: discontinuity %v", i, after-before)
		}
		// Clock must remain strictly increasing over the next instant.
		if l.Now(tau+1) <= l.Now(tau) {
			t.Fatalf("step %d: clock not increasing", i)
		}
	}
}

func TestGainInteractsWithAdjust(t *testing.T) {
	l := NewLocal(NewDrifting(0, 0, 1.0))
	l.SetGain(0, 0.01)
	l.Adjust(5)
	// τ=100: 100 + 1.0 (gain) + 5 (adj) = 106.
	if got := l.Now(100); math.Abs(float64(got-106)) > 1e-9 {
		t.Fatalf("gain+adjust: got %v", got)
	}
	if got := l.Bias(100); math.Abs(float64(got-6)) > 1e-9 {
		t.Fatalf("bias with gain: got %v", got)
	}
}
