// Package simbench holds the simulation-engine benchmark bodies, shared
// between `go test -bench` (repository root) and cmd/benchsim, which runs
// them standalone and records the JSON baseline BENCH_sim.json.
//
// They cover the three hot paths every experiment and campaign bottoms out
// in: the discrete-event queue (SimulatorEvents), the Figure 1 convergence
// function (ConvergenceFunction), and the full stack end to end
// (ClusterMinute, CampaignThroughput). The companion tests in this package
// pin the alloc budgets, so a regression fails plain `go test`, not only a
// benchmark comparison.
package simbench

import (
	"math/rand"
	"testing"

	"clocksync/internal/campaign"
	"clocksync/internal/core"
	"clocksync/internal/des"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// SimulatorEvents measures raw discrete-event throughput: schedule-and-fire
// of a self-rescheduling event chain. With the pooled arena this path must
// report 0 allocs/op — every After reuses the slot its predecessor freed.
func SimulatorEvents(b *testing.B) {
	sim := des.New(1)
	var fn func()
	remaining := b.N
	fn = func() {
		remaining--
		if remaining > 0 {
			sim.After(1, fn)
		}
	}
	sim.After(1, fn)
	b.ReportAllocs()
	b.ResetTimer()
	sim.Run()
	if sim.Fired() != uint64(b.N) {
		b.Fatalf("fired %d, want %d", sim.Fired(), b.N)
	}
}

// ConvergenceFunction measures the Figure 1 convergence function on a
// 16-processor estimate vector — the per-round arithmetic of every node.
// The pooled scratch keeps it at 0 allocs/op in steady state.
func ConvergenceFunction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ests := make([]protocol.Estimate, 16)
	for i := range ests {
		ests[i] = protocol.Estimate{
			Peer: i,
			D:    simtime.Duration(rng.NormFloat64()),
			A:    simtime.Duration(rng.Float64() * 0.05),
			OK:   true,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.Converge(5, 1, ests); !ok {
			b.Fatal("unexpected unsafe result")
		}
	}
}

// ClusterMinute measures how fast the full stack simulates one minute of an
// n-processor cluster (network, estimation, convergence, metrics) — the
// simulator's scalability envelope. A single simulator is reused across
// iterations, the same arena-recycling regime campaign workers run in.
func ClusterMinute(b *testing.B, n int) {
	sim := des.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := scenario.Run(scenario.Scenario{
			Name:     "bench",
			Seed:     int64(i),
			N:        n,
			F:        (n - 1) / 3,
			Duration: simtime.Minute,
			Theta:    2 * simtime.Minute,
			Rho:      1e-4,
			SyncInt:  10 * simtime.Second,
			ReuseSim: sim,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ClusterMinuteLarge measures the planet-scale configuration: one simulated
// minute of an n-processor cluster with a fixed fault budget f, sparse
// estimation against k-of-n peer subsets (O(n·k) messages per round instead
// of O(n²)) and the event queue sharded `shards` ways with conservative
// lookahead windows. This is the regime the n=1024 and n=4096 baseline rows
// run in; the sharded arena is reused across iterations just as ClusterMinute
// reuses its serial one. At these sizes the full mesh would be quadratically
// unaffordable — k must still satisfy k ≥ 2f+1.
func ClusterMinuteLarge(b *testing.B, n, f, k, shards int) {
	// Lookahead matches the default delay model's 5 ms minimum link delay.
	ps := des.NewSharded(0, shards, 5*simtime.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := scenario.Run(scenario.Scenario{
			Name:         "bench-large",
			Seed:         int64(i),
			N:            n,
			F:            f,
			SamplePeers:  k,
			Duration:     simtime.Minute,
			Theta:        2 * simtime.Minute,
			Rho:          1e-4,
			SyncInt:      10 * simtime.Second,
			ReuseSharded: ps,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// CampaignThroughput measures end-to-end randomized-campaign throughput:
// generation, the streaming worker pool, per-run checker attachment and
// seed-order accounting — the path that decides how many adversary
// schedules a CI run can afford.
func CampaignThroughput(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Config{
			Runs:           8,
			Seed:           1,
			Duration:       5 * simtime.Minute,
			MaxCorruptions: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != 8 {
			b.Fatalf("completed %d of 8 runs", res.Completed)
		}
		if len(res.Failures) > 0 {
			b.Fatalf("honest campaign produced %d failures", len(res.Failures))
		}
	}
}
