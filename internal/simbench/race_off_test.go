//go:build !race

package simbench

const raceEnabled = false
