package simbench

import "testing"

func BenchmarkSimulatorEvents(b *testing.B)     { SimulatorEvents(b) }
func BenchmarkConvergenceFunction(b *testing.B) { ConvergenceFunction(b) }
func BenchmarkClusterMinuteN7(b *testing.B)     { ClusterMinute(b, 7) }
func BenchmarkCampaignThroughput(b *testing.B)  { CampaignThroughput(b) }

// The alloc-budget pins run in plain `go test`, so a hot-path allocation
// regression fails CI without anyone comparing benchmark output by hand.
// BENCH_sim.json records the corresponding ns/op baselines.

// TestSimulatorEventsAllocFree pins the arena design: schedule-and-fire of
// pooled events must not allocate.
func TestSimulatorEventsAllocFree(t *testing.T) {
	r := testing.Benchmark(SimulatorEvents)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("After+fire path allocates: %d allocs/op, want 0", a)
	}
}

// TestConvergenceFunctionAllocFree pins the pooled scratch: the convergence
// function must not allocate in steady state.
func TestConvergenceFunctionAllocFree(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately drops items at random under the race
		// detector, so the pooled scratch misses and the count is unstable.
		t.Skip("alloc count not stable under -race")
	}
	r := testing.Benchmark(ConvergenceFunction)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("Converge allocates: %d allocs/op, want 0", a)
	}
}
