package simbench

import "testing"

func BenchmarkSimulatorEvents(b *testing.B)     { SimulatorEvents(b) }
func BenchmarkConvergenceFunction(b *testing.B) { ConvergenceFunction(b) }
func BenchmarkClusterMinuteN7(b *testing.B)     { ClusterMinute(b, 7) }
func BenchmarkClusterMinuteLargeN1024(b *testing.B) {
	ClusterMinuteLarge(b, 1024, 10, 31, 8)
}
func BenchmarkCampaignThroughput(b *testing.B) { CampaignThroughput(b) }

// The alloc-budget pins run in plain `go test`, so a hot-path allocation
// regression fails CI without anyone comparing benchmark output by hand.
// BENCH_sim.json records the corresponding ns/op baselines.

// TestSimulatorEventsAllocFree pins the arena design: schedule-and-fire of
// pooled events must not allocate.
func TestSimulatorEventsAllocFree(t *testing.T) {
	r := testing.Benchmark(SimulatorEvents)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("After+fire path allocates: %d allocs/op, want 0", a)
	}
}

// TestConvergenceFunctionAllocFree pins the pooled scratch: the convergence
// function must not allocate in steady state.
func TestConvergenceFunctionAllocFree(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately drops items at random under the race
		// detector, so the pooled scratch misses and the count is unstable.
		t.Skip("alloc count not stable under -race")
	}
	r := testing.Benchmark(ConvergenceFunction)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("Converge allocates: %d allocs/op, want 0", a)
	}
}

// TestClusterMinuteAllocBudget pins the end-to-end allocation profile. The
// payload free lists (TimeReq/TimeResp pooled per harness, sized to the
// round's working set) took a simulated n=256 cluster-minute from ~752k to
// ~105k allocs/op; the budgets below hold that ground with headroom for
// noise, so un-pooling a hot payload path fails plain `go test`, not only a
// benchmark comparison.
func TestClusterMinuteAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multi-second cluster simulations")
	}
	if raceEnabled {
		t.Skip("alloc counts include race-detector bookkeeping")
	}
	for _, tc := range []struct {
		n      int
		budget int64
	}{
		{7, 1_500},     // measured ~1.06k
		{256, 160_000}, // measured ~105k
	} {
		r := testing.Benchmark(func(b *testing.B) { ClusterMinute(b, tc.n) })
		if a := r.AllocsPerOp(); a > tc.budget {
			t.Errorf("ClusterMinute n=%d: %d allocs/op over budget %d — a payload or event path stopped pooling",
				tc.n, a, tc.budget)
		}
	}
}
