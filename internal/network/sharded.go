// Sharded message layer: the network half of the conservative-lookahead
// parallel simulator (internal/des.ShardedSim).
//
// Same-shard messages schedule directly on the shard's queue, exactly like
// the serial path. Cross-shard messages are buffered in a per-sender-shard
// outbox and merged into the destination shards at the window barrier —
// conservativeness guarantees their delivery instants lie at or beyond the
// window bound, so no shard ever misses a delivery it should have seen.
//
// Randomness must be shard-count independent (see the des package comment),
// so per-message draws (drop, latency) cannot come from the shard RNGs,
// whose consumption order depends on the partition. Instead every message
// reseeds a splitmix64 source from the hash of (seed, from, to, senderSeq):
// the draw sequence for a message is a pure function of sender history,
// identical under any partition. Envelope free lists and traffic counters
// are safe without locks by index ownership — node i's sends and deliveries
// both execute on shard ShardOf(i)'s goroutine, and outboxes are flushed at
// barriers with every shard quiesced.
package network

import (
	"fmt"
	"math/rand"

	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

// sharding holds the Network's parallel-mode state; nil on serial networks.
type sharding struct {
	ps      *des.ShardedSim
	seed    int64
	shardOf []int        // node -> shard, cached
	seq     []uint64     // per-sender message counter (owned by the sender's shard)
	src     []*msgSource // per-shard reseedable sources
	rng     []*rand.Rand // per-shard rand.Rand over src
	outbox  [][]pending  // cross-shard sends, indexed by sender shard
	free    [][]*envelope
}

// pending is one cross-shard message awaiting its barrier merge.
type pending struct {
	at  simtime.Time
	env *envelope
}

// NewSharded wires a network over a sharded simulator. The delay model's
// MinBound must be a true minimum ≥ the simulator's lookahead; a sampled
// cross-shard latency below the lookahead panics, since it would break the
// conservative window and silently misorder events.
func NewSharded(ps *des.ShardedSim, topo Topology, delay DelayModel, seed int64) *Network {
	nn := topo.N()
	sh := &sharding{
		ps:      ps,
		seed:    seed,
		shardOf: make([]int, nn),
		seq:     make([]uint64, nn),
		src:     make([]*msgSource, ps.Shards()),
		rng:     make([]*rand.Rand, ps.Shards()),
		outbox:  make([][]pending, ps.Shards()),
		free:    make([][]*envelope, ps.Shards()),
	}
	for i := range sh.shardOf {
		sh.shardOf[i] = ps.ShardOf(i)
	}
	for s := range sh.src {
		sh.src[s] = &msgSource{}
		sh.rng[s] = rand.New(sh.src[s])
	}
	n := &Network{
		topo:     topo,
		delay:    delay,
		handlers: make([]Handler, nn),
		counters: make([]Counters, nn),
		sh:       sh,
	}
	ps.OnBarrier(n.flushOutboxes)
	return n
}

// Sharded reports whether the network runs over a sharded simulator.
func (n *Network) Sharded() bool { return n.sh != nil }

// sendSharded is Send's parallel-mode tail: connectivity and counters are
// already handled by the caller.
func (n *Network) sendSharded(from, to int, payload any) {
	sh := n.sh
	s := sh.shardOf[from]
	sim := sh.ps.Shard(s)
	now := sim.Now()
	if n.Partitioned != nil && n.Partitioned(from, to, now) {
		n.counters[from].Dropped++
		return
	}
	// Per-message deterministic randomness: same draws under any partition.
	sh.src[s].state = msgKey(sh.seed, from, to, sh.seq[from])
	sh.seq[from]++
	rng := sh.rng[s]
	if n.DropProb > 0 && rng.Float64() < n.DropProb {
		n.counters[from].Dropped++
		return
	}
	d := n.delay.Sample(from, to, rng)
	env := n.newEnvelopeShard(s)
	env.msg = Message{From: from, To: to, Payload: payload, SentAt: now}
	if sh.shardOf[to] == s {
		sim.After(d, env.fn)
		return
	}
	if d < sh.ps.Lookahead() {
		panic(fmt.Sprintf(
			"network: cross-shard delay %v below lookahead %v — the delay model's MinBound overstates its true minimum",
			d, sh.ps.Lookahead()))
	}
	sh.outbox[s] = append(sh.outbox[s], pending{at: now.Add(d), env: env})
}

// newEnvelopeShard pops shard s's free list or builds an envelope whose
// delivery closure is bound once, to the sharded delivery path.
func (n *Network) newEnvelopeShard(s int) *envelope {
	free := n.sh.free[s]
	if last := len(free) - 1; last >= 0 {
		env := free[last]
		n.sh.free[s] = free[:last]
		return env
	}
	env := &envelope{}
	env.fn = func() { n.deliverShard(env) }
	return env
}

// deliverShard hands the message to its handler on the destination shard's
// goroutine and recycles the envelope into the destination shard's pool
// (envelopes migrate with their messages; each pool is only touched by its
// own shard's goroutine).
func (n *Network) deliverShard(env *envelope) {
	msg := env.msg
	env.msg = Message{}
	ds := n.sh.shardOf[msg.To]
	n.sh.free[ds] = append(n.sh.free[ds], env)
	h := n.handlers[msg.To]
	if h == nil {
		return
	}
	n.counters[msg.To].Delivered++
	msg.DeliveredAt = n.sh.ps.Shard(ds).Now()
	h(msg)
}

// flushOutboxes merges buffered cross-shard deliveries into the destination
// shards. It runs as a barrier hook — serially, with every shard quiesced —
// so scheduling on any shard's queue is safe, and conservativeness puts each
// delivery instant at or beyond the window bound.
func (n *Network) flushOutboxes(simtime.Time) {
	sh := n.sh
	for s := range sh.outbox {
		box := sh.outbox[s]
		for i := range box {
			env := box[i].env
			box[i].env = nil // the outbox keeps its capacity; don't pin envelopes
			sh.ps.Shard(sh.shardOf[env.msg.To]).At(box[i].at, env.fn)
		}
		sh.outbox[s] = box[:0]
	}
}

// msgSource is a reseedable splitmix64 stream: cheap to reset per message
// and statistically solid for the couple of draws each message needs.
type msgSource struct {
	state uint64
}

// Uint64 implements rand.Source64.
func (m *msgSource) Uint64() uint64 {
	m.state += 0x9E3779B97F4A7C15
	z := m.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (m *msgSource) Int63() int64 { return int64(m.Uint64() >> 1) }

// Seed implements rand.Source.
func (m *msgSource) Seed(s int64) { m.state = uint64(s) }

// msgKey hashes a message's identity (run seed, sender, receiver, the
// sender's per-message sequence number) into the seed of its private draw
// stream.
func msgKey(seed int64, from, to int, seq uint64) uint64 {
	x := mix64(uint64(seed) ^ 0x6A09E667F3BCC909)
	x = mix64(x ^ uint64(uint32(from)))
	x = mix64(x ^ uint64(uint32(to)))
	x = mix64(x ^ seq)
	return x
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
