package network

import (
	"math/rand"
	"sync"
	"testing"

	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

// echoDelivery records one delivery for the determinism comparison.
type echoDelivery struct {
	From, To    int
	SentAt      simtime.Time
	DeliveredAt simtime.Time
}

// runEcho runs a small all-to-all echo workload (every node pings every
// other node, receivers echo once) on the given shard count and returns the
// deliveries sorted by the simulator's own execution order per node.
func runEcho(t *testing.T, shards int, drop float64) (map[int][]echoDelivery, int, int) {
	t.Helper()
	const nodes = 6
	const L = 2 * simtime.Millisecond
	ps := des.NewSharded(42, shards, L)
	topo := NewFullMesh(nodes)
	delay := UniformDelay{Min: L, Max: 10 * simtime.Millisecond}
	n := NewSharded(ps, topo, delay, 42)
	n.DropProb = drop

	var mu sync.Mutex
	got := make(map[int][]echoDelivery)
	for id := 0; id < nodes; id++ {
		id := id
		n.Register(id, func(m Message) {
			mu.Lock()
			got[id] = append(got[id], echoDelivery{m.From, m.To, m.SentAt, m.DeliveredAt})
			mu.Unlock()
			if m.Payload == "ping" {
				n.Send(id, m.From, "echo")
			}
		})
	}
	for id := 0; id < nodes; id++ {
		id := id
		ps.Shard(ps.ShardOf(id)).At(simtime.Time(id)*0.0001, func() {
			for to := 0; to < nodes; to++ {
				if to != id {
					n.Send(id, to, "ping")
				}
			}
		})
	}
	ps.RunUntil(1)
	return got, n.TotalDelivered(), n.TotalDropped()
}

// TestShardedNetworkDeterminism: the same seed must produce identical
// deliveries — sender, instants, drops — for shard counts 1, 2 and 3. This
// is the message-layer half of the shard-count independence contract.
func TestShardedNetworkDeterminism(t *testing.T) {
	base, baseDelivered, baseDropped := runEcho(t, 1, 0.2)
	if baseDelivered == 0 {
		t.Fatal("no deliveries in baseline run")
	}
	if baseDropped == 0 {
		t.Fatal("drop injection inactive; the determinism check would be vacuous")
	}
	for _, shards := range []int{2, 3} {
		got, delivered, dropped := runEcho(t, shards, 0.2)
		if delivered != baseDelivered || dropped != baseDropped {
			t.Fatalf("shards=%d: delivered/dropped %d/%d, want %d/%d",
				shards, delivered, dropped, baseDelivered, baseDropped)
		}
		for id := range base {
			if len(got[id]) != len(base[id]) {
				t.Fatalf("shards=%d node %d: %d deliveries, want %d",
					shards, id, len(got[id]), len(base[id]))
			}
			for i := range base[id] {
				if got[id][i] != base[id][i] {
					t.Fatalf("shards=%d node %d delivery %d = %+v, want %+v",
						shards, id, i, got[id][i], base[id][i])
				}
			}
		}
	}
}

// TestShardedCrossShardDeliveryOrder: messages merged at barriers must be
// handed to a node in DeliveredAt order.
func TestShardedCrossShardDeliveryOrder(t *testing.T) {
	got, _, _ := runEcho(t, 3, 0)
	for id, ds := range got {
		for i := 1; i < len(ds); i++ {
			if ds[i].DeliveredAt < ds[i-1].DeliveredAt {
				t.Fatalf("node %d: delivery %d at %v before predecessor at %v",
					id, i, ds[i].DeliveredAt, ds[i-1].DeliveredAt)
			}
		}
	}
}

// TestShardedLookaheadGuard: a delay model whose MinBound overstates its
// true minimum would break the conservative window; the network must panic
// rather than misorder events.
func TestShardedLookaheadGuard(t *testing.T) {
	const L = 5 * simtime.Millisecond
	ps := des.NewSharded(1, 2, L)
	lying := DelayFunc{
		Fn:       func(_, _ int, _ *rand.Rand) simtime.Duration { return simtime.Millisecond },
		BoundVal: simtime.Millisecond,
		MinVal:   L, // lie: claims ≥ L, samples 1ms
	}
	n := NewSharded(ps, NewFullMesh(4), lying, 1)
	n.Register(1, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-shard delay below lookahead")
		}
	}()
	ps.Shard(0).At(0, func() { n.Send(0, 1, "x") })
	ps.RunUntil(1)
}

// TestMinDelay: the MinBounder plumbing for every stock model.
func TestMinDelay(t *testing.T) {
	u := UniformDelay{Min: 2 * simtime.Millisecond, Max: 9 * simtime.Millisecond}
	cases := []struct {
		m    DelayModel
		want simtime.Duration
	}{
		{ConstantDelay{D: 3 * simtime.Millisecond}, 3 * simtime.Millisecond},
		{u, 2 * simtime.Millisecond},
		{AsymmetricDelay{FwdMin: 4, FwdMax: 8, RevMin: 3, RevMax: 9}, 3},
		{SpikyDelay{Base: u, SpikeProb: 0.1, SpikeMax: simtime.Second}, 2 * simtime.Millisecond},
		{DelayFunc{BoundVal: 1, MinVal: 0.25}, 0.25},
		{noMinModel{}, 0},
	}
	for _, c := range cases {
		if got := MinDelay(c.m); got != c.want {
			t.Errorf("MinDelay(%T) = %v, want %v", c.m, got, c.want)
		}
	}
}

type noMinModel struct{}

func (noMinModel) Sample(_, _ int, _ *rand.Rand) simtime.Duration { return 1 }
func (noMinModel) Bound() simtime.Duration                        { return 1 }
