// Package network simulates the paper's communication model (§2.1–2.2): a
// set of processors joined by reliable, authenticated links with a message
// delivery bound δ. The adversary may observe all traffic but cannot modify
// it or forge origins; those guarantees are inherent here because faulty
// behaviour is injected at the processors, never at the links.
package network

import (
	"fmt"
	"sort"
)

// Topology describes which processor pairs share a link. The paper's main
// analysis assumes a full mesh; §5 discusses general graphs and gives the
// two-clique counterexample, which TwoCliques constructs.
type Topology interface {
	// N returns the number of processors.
	N() int
	// Connected reports whether a and b share a link. A processor is always
	// connected to itself (loopback is free and instantaneous).
	Connected(a, b int) bool
	// Neighbors returns the sorted list of processors adjacent to a,
	// excluding a itself.
	Neighbors(a int) []int
}

// FullMesh is the complete graph on n processors.
type FullMesh struct {
	n int
}

// NewFullMesh returns the complete topology on n processors.
func NewFullMesh(n int) *FullMesh {
	if n < 1 {
		panic(fmt.Sprintf("network: invalid size %d", n))
	}
	return &FullMesh{n: n}
}

// N implements Topology.
func (m *FullMesh) N() int { return m.n }

// Connected implements Topology.
func (m *FullMesh) Connected(a, b int) bool {
	return a >= 0 && a < m.n && b >= 0 && b < m.n
}

// Neighbors implements Topology.
func (m *FullMesh) Neighbors(a int) []int {
	out := make([]int, 0, m.n-1)
	for i := 0; i < m.n; i++ {
		if i != a {
			out = append(out, i)
		}
	}
	return out
}

// Graph is an arbitrary undirected topology.
type Graph struct {
	n   int
	adj []map[int]bool
}

// NewGraph returns an edgeless graph on n processors.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("network: invalid size %d", n))
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj}
}

// AddEdge inserts the undirected edge {a, b}. Self-loops are rejected
// (loopback is implicit).
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic("network: self-loop")
	}
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("network: edge (%d,%d) out of range [0,%d)", a, b, g.n))
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// N implements Topology.
func (g *Graph) N() int { return g.n }

// Connected implements Topology.
func (g *Graph) Connected(a, b int) bool {
	if a == b {
		return a >= 0 && a < g.n
	}
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return false
	}
	return g.adj[a][b]
}

// Neighbors implements Topology.
func (g *Graph) Neighbors(a int) []int {
	out := make([]int, 0, len(g.adj[a]))
	for b := range g.adj[a] {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a int) int { return len(g.adj[a]) }

// NewTwoCliques builds the counterexample of §5: 6f+2 processors arranged as
// two cliques of 3f+1 nodes each, with a perfect matching joining the i-th
// node of one clique to the i-th node of the other. The graph is
// (3f+1)-connected, yet the protocol cannot keep the cliques synchronized
// with each other. Clique A is processors [0, 3f] and clique B is
// [3f+1, 6f+1].
func NewTwoCliques(f int) *Graph {
	if f < 1 {
		panic("network: two-clique construction needs f >= 1")
	}
	size := 3*f + 1
	g := NewGraph(2 * size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	for i := 0; i < size; i++ {
		g.AddEdge(i, size+i)
	}
	return g
}

// NewCirculant builds the circulant graph C_n(1..d/2): processor i is
// adjacent to i±1, …, i±d/2 (mod n). Circulant graphs are d-regular with
// connectivity d and no sparse cut, which makes them the natural family for
// probing how little connectivity the protocol can live with (experiment
// E13). d must be even and satisfy 2 ≤ d < n.
func NewCirculant(n, d int) *Graph {
	if d%2 != 0 || d < 2 || d >= n {
		panic(fmt.Sprintf("network: circulant needs even 2 ≤ d < n, got d=%d n=%d", d, n))
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for k := 1; k <= d/2; k++ {
			j := (i + k) % n
			if !g.Connected(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// NewRing builds a cycle on n processors — a deliberately weak topology used
// in tests of graph handling.
func NewRing(n int) *Graph {
	if n < 3 {
		panic("network: ring needs n >= 3")
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// MinDegree returns the smallest vertex degree of the topology — a cheap
// lower-bound proxy for connectivity used in scenario validation.
func MinDegree(t Topology) int {
	min := t.N()
	for i := 0; i < t.N(); i++ {
		if d := len(t.Neighbors(i)); d < min {
			min = d
		}
	}
	return min
}
