package network

import (
	"math/rand"
	"testing"

	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

func TestFullMesh(t *testing.T) {
	m := NewFullMesh(4)
	if m.N() != 4 {
		t.Fatalf("N: got %d", m.N())
	}
	if !m.Connected(0, 3) || !m.Connected(2, 2) {
		t.Fatal("full mesh must connect everything")
	}
	if m.Connected(0, 4) || m.Connected(-1, 0) {
		t.Fatal("out-of-range ids must not be connected")
	}
	nb := m.Neighbors(1)
	want := []int{0, 2, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors: got %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors: got %v, want %v", nb, want)
		}
	}
}

func TestGraph(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.Connected(0, 1) || !g.Connected(1, 0) {
		t.Fatal("edges must be undirected")
	}
	if g.Connected(0, 2) {
		t.Fatal("0-2 must not be connected")
	}
	if !g.Connected(3, 3) {
		t.Fatal("loopback must be implicit")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1): got %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(4) != 0 {
		t.Fatal("Degree broken")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(3)
	for _, fn := range []func(){
		func() { g.AddEdge(1, 1) },
		func() { g.AddEdge(0, 3) },
		func() { NewGraph(0) },
		func() { NewFullMesh(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTwoCliques(t *testing.T) {
	f := 2
	g := NewTwoCliques(f)
	size := 3*f + 1
	if g.N() != 2*size {
		t.Fatalf("N: got %d, want %d", g.N(), 2*size)
	}
	// Every node has degree 3f (clique) + 1 (matching) = 3f+1, which is the
	// connectivity claimed in §5.
	for i := 0; i < g.N(); i++ {
		if d := g.Degree(i); d != size {
			t.Fatalf("degree(%d): got %d, want %d", i, d, size)
		}
	}
	// Intra-clique edges exist; cross edges only on the matching.
	if !g.Connected(0, size-1) || !g.Connected(size, 2*size-1) {
		t.Fatal("clique edges missing")
	}
	if !g.Connected(0, size) || !g.Connected(size-1, 2*size-1) {
		t.Fatal("matching edges missing")
	}
	if g.Connected(0, size+1) {
		t.Fatal("unexpected cross edge")
	}
	if MinDegree(g) != size {
		t.Fatalf("MinDegree: got %d", MinDegree(g))
	}
}

func TestCirculant(t *testing.T) {
	g := NewCirculant(13, 6)
	for i := 0; i < 13; i++ {
		if d := g.Degree(i); d != 6 {
			t.Fatalf("degree(%d): got %d, want 6", i, d)
		}
	}
	if !g.Connected(0, 3) || g.Connected(0, 4) {
		t.Fatal("circulant adjacency wrong")
	}
	if !g.Connected(12, 1) {
		t.Fatal("circulant must wrap")
	}
	// d = n−1 is the complete graph; even-d requirement means d=n−1 only
	// for odd... just check a small complete-like case.
	k := NewCirculant(5, 4)
	for i := 0; i < 5; i++ {
		if k.Degree(i) != 4 {
			t.Fatal("C_5(1,2) must be complete")
		}
	}
	for _, bad := range [][2]int{{10, 3}, {10, 0}, {10, 10}, {4, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCirculant(%d, %d) must panic", bad[0], bad[1])
				}
			}()
			NewCirculant(bad[0], bad[1])
		}()
	}
}

func TestRing(t *testing.T) {
	g := NewRing(5)
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("ring degree: got %d", g.Degree(i))
		}
	}
	if !g.Connected(4, 0) {
		t.Fatal("ring must wrap")
	}
}

func TestDelayModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := ConstantDelay{D: 5 * simtime.Millisecond}
	if c.Sample(0, 1, rng) != 5*simtime.Millisecond || c.Bound() != 5*simtime.Millisecond {
		t.Fatal("constant delay broken")
	}
	u := NewUniformDelay(simtime.Millisecond, 3*simtime.Millisecond)
	for i := 0; i < 1000; i++ {
		d := u.Sample(0, 1, rng)
		if d < u.Min || d > u.Max {
			t.Fatalf("uniform sample %v outside [%v, %v]", d, u.Min, u.Max)
		}
	}
	if u.Bound() != 3*simtime.Millisecond {
		t.Fatal("uniform bound broken")
	}

	a := AsymmetricDelay{FwdMin: 10, FwdMax: 10, RevMin: 1, RevMax: 1}
	if a.Sample(0, 1, rng) != 10 || a.Sample(1, 0, rng) != 1 {
		t.Fatal("asymmetric direction selection broken")
	}
	if a.Bound() != 10 {
		t.Fatal("asymmetric bound broken")
	}

	s := SpikyDelay{Base: NewUniformDelay(1, 2), SpikeProb: 1.0, SpikeMax: 5}
	for i := 0; i < 100; i++ {
		d := s.Sample(0, 1, rng)
		if d < 1 || d > 7 {
			t.Fatalf("spiky sample %v outside [1, 7]", d)
		}
	}
	if s.Bound() != 7 {
		t.Fatal("spiky bound broken")
	}

	fn := DelayFunc{Fn: func(from, to int, _ *rand.Rand) simtime.Duration {
		return simtime.Duration(from + to)
	}, BoundVal: 9}
	if fn.Sample(4, 5, rng) != 9 || fn.Bound() != 9 {
		t.Fatal("delay func broken")
	}
}

func TestBadUniformDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformDelay(3, 1)
}

func TestSendDeliversWithinBound(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(3), NewUniformDelay(simtime.Millisecond, 5*simtime.Millisecond))
	var got []Message
	for id := 0; id < 3; id++ {
		id := id
		net.Register(id, func(m Message) {
			if m.To != id {
				t.Errorf("message for %d delivered to %d", m.To, id)
			}
			got = append(got, m)
		})
	}
	for i := 0; i < 100; i++ {
		net.Send(0, 1, i)
	}
	sim.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for _, m := range got {
		lat := m.DeliveredAt.Sub(m.SentAt)
		if lat < simtime.Millisecond || lat > 5*simtime.Millisecond {
			t.Fatalf("latency %v outside model", lat)
		}
		if m.From != 0 {
			t.Fatal("From must be authentic")
		}
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	sim := des.New(1)
	g := NewGraph(3)
	g.AddEdge(0, 1)
	net := New(sim, g, ConstantDelay{D: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Send(0, 2, "x")
}

func TestDoubleRegisterPanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(2), ConstantDelay{D: 1})
	net.Register(0, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Register(0, func(Message) {})
}

func TestDropProb(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(2), ConstantDelay{D: 1})
	delivered := 0
	net.Register(1, func(Message) { delivered++ })
	net.DropProb = 0.5
	const total = 2000
	for i := 0; i < total; i++ {
		net.Send(0, 1, i)
	}
	sim.Run()
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("drop rate implausible: delivered %d of %d", delivered, total)
	}
	c := net.CountersFor(0)
	if c.Sent != total || c.Dropped != total-delivered {
		t.Fatalf("counters: %+v, delivered=%d", c, delivered)
	}
}

func TestPartitionHook(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(2), ConstantDelay{D: 1})
	delivered := 0
	net.Register(1, func(Message) { delivered++ })
	net.Partitioned = func(from, to int, now simtime.Time) bool { return now < 10 }
	net.Send(0, 1, "early")
	sim.At(20, func() { net.Send(0, 1, "late") })
	sim.Run()
	if delivered != 1 {
		t.Fatalf("partition hook: delivered %d, want 1", delivered)
	}
}

type sizedPayload struct{ n int }

func (s sizedPayload) WireSize() int { return s.n }

func TestCountersAndSizer(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(3), ConstantDelay{D: 1})
	net.Register(1, func(Message) {})
	net.Register(2, func(Message) {})
	net.Send(0, 1, sizedPayload{n: 100})
	net.SendToNeighbors(0, "hello") // 2 messages of nominal size
	sim.Run()
	c0 := net.CountersFor(0)
	if c0.Sent != 3 {
		t.Fatalf("Sent: got %d", c0.Sent)
	}
	if c0.Bytes != 100+2*nominalSize {
		t.Fatalf("Bytes: got %d", c0.Bytes)
	}
	if net.TotalSent() != 3 {
		t.Fatalf("TotalSent: got %d", net.TotalSent())
	}
	if net.TotalBytes() != 100+2*nominalSize {
		t.Fatalf("TotalBytes: got %d", net.TotalBytes())
	}
	net.ResetCounters()
	if net.TotalSent() != 0 {
		t.Fatal("ResetCounters broken")
	}
}

func TestUnregisteredReceiverIgnored(t *testing.T) {
	sim := des.New(1)
	net := New(sim, NewFullMesh(2), ConstantDelay{D: 1})
	net.Send(0, 1, "void")
	sim.Run() // must not panic
	if net.CountersFor(1).Delivered != 0 {
		t.Fatal("unregistered receiver counted a delivery")
	}
}
