package network

import (
	"fmt"

	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

// Message is a delivered datagram. From is trustworthy: links are
// authenticated per §2.2, so a receiver always knows the true sender. A
// Byzantine processor can send arbitrary payloads but only under its own
// identity.
type Message struct {
	From, To    int
	Payload     any
	SentAt      simtime.Time
	DeliveredAt simtime.Time
}

// Handler consumes messages delivered to a registered processor.
type Handler func(Message)

// Counters aggregates per-processor traffic statistics, used by the message
// overhead experiment (E8).
type Counters struct {
	Sent      int
	Delivered int
	Dropped   int
	Bytes     int // approximate payload size, when payloads implement Sizer
}

// Sizer lets payload types report an approximate wire size for the overhead
// accounting; payloads that don't implement it count a fixed nominal size.
type Sizer interface {
	WireSize() int
}

// nominalSize approximates the wire size of payloads that do not implement
// Sizer: headers plus a small body.
const nominalSize = 32

// Network is the simulated authenticated message layer.
type Network struct {
	sim      *des.Sim
	topo     Topology
	delay    DelayModel
	handlers []Handler
	counters []Counters
	// DropProb is the probability a message is silently lost, for failure
	// injection. The paper's link model is reliable; experiments that check
	// the analytic bounds leave this at zero.
	DropProb float64
	// Partitioned, when non-nil, reports link outage for a pair at send
	// time (failure injection beyond the paper's model).
	Partitioned func(from, to int, now simtime.Time) bool

	// freeEnv recycles in-flight message envelopes. Each envelope carries a
	// pre-bound delivery closure, so the per-send cost is one pooled event
	// plus payload boxing — no closure allocation. Safe without locking: the
	// simulator, and with it every Send and delivery, is single-threaded.
	freeEnv []*envelope

	// sh is non-nil when the network runs over a sharded simulator (see
	// sharded.go); the serial path above is untouched in that mode.
	sh *sharding
}

// envelope is one in-flight message plus its reusable delivery closure.
type envelope struct {
	msg Message
	fn  func()
}

// New wires a network over the given simulator, topology and delay model.
func New(sim *des.Sim, topo Topology, delay DelayModel) *Network {
	return &Network{
		sim:      sim,
		topo:     topo,
		delay:    delay,
		handlers: make([]Handler, topo.N()),
		counters: make([]Counters, topo.N()),
	}
}

// Topology returns the network's topology.
func (n *Network) Topology() Topology { return n.topo }

// Delay returns the network's delay model.
func (n *Network) Delay() DelayModel { return n.delay }

// Register installs the message handler for processor id. Each processor
// registers exactly once, before the simulation starts.
func (n *Network) Register(id int, h Handler) {
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("network: processor %d registered twice", id))
	}
	n.handlers[id] = h
}

// Send transmits payload from processor `from` to processor `to`. The
// message is delivered after a sampled latency unless dropped. Sending to a
// non-neighbor is a programming error in the protocol and panics.
func (n *Network) Send(from, to int, payload any) {
	if !n.topo.Connected(from, to) {
		panic(fmt.Sprintf("network: %d -> %d not connected", from, to))
	}
	size := nominalSize
	if s, ok := payload.(Sizer); ok {
		size = s.WireSize()
	}
	n.counters[from].Sent++
	n.counters[from].Bytes += size
	if n.sh != nil {
		n.sendSharded(from, to, payload)
		return
	}
	if n.Partitioned != nil && n.Partitioned(from, to, n.sim.Now()) {
		n.counters[from].Dropped++
		return
	}
	if n.DropProb > 0 && n.sim.Rand().Float64() < n.DropProb {
		n.counters[from].Dropped++
		return
	}
	sent := n.sim.Now()
	d := n.delay.Sample(from, to, n.sim.Rand())
	env := n.newEnvelope()
	env.msg = Message{From: from, To: to, Payload: payload, SentAt: sent}
	n.sim.After(d, env.fn)
}

// newEnvelope pops a recycled envelope or builds one with its delivery
// closure bound once for the envelope's lifetime.
func (n *Network) newEnvelope() *envelope {
	if last := len(n.freeEnv) - 1; last >= 0 {
		env := n.freeEnv[last]
		n.freeEnv = n.freeEnv[:last]
		return env
	}
	env := &envelope{}
	env.fn = func() { n.deliver(env) }
	return env
}

// deliver hands an envelope's message to the destination handler and recycles
// the envelope. The envelope is recycled before the handler runs — handlers
// send messages of their own, and reusing the hot envelope keeps the pool at
// the network's maximum in-flight footprint.
func (n *Network) deliver(env *envelope) {
	msg := env.msg
	env.msg = Message{} // drop the payload reference; the pool must not pin it
	n.freeEnv = append(n.freeEnv, env)
	h := n.handlers[msg.To]
	if h == nil {
		return
	}
	n.counters[msg.To].Delivered++
	msg.DeliveredAt = n.sim.Now()
	h(msg)
}

// SendToNeighbors transmits payload from `from` to every neighbor.
func (n *Network) SendToNeighbors(from int, payload any) {
	for _, to := range n.topo.Neighbors(from) {
		n.Send(from, to, payload)
	}
}

// CountersFor returns a copy of processor id's traffic counters.
func (n *Network) CountersFor(id int) Counters { return n.counters[id] }

// TotalSent returns the total number of messages sent by all processors.
func (n *Network) TotalSent() int {
	total := 0
	for i := range n.counters {
		total += n.counters[i].Sent
	}
	return total
}

// TotalDelivered returns the total number of messages delivered to handlers.
func (n *Network) TotalDelivered() int {
	total := 0
	for i := range n.counters {
		total += n.counters[i].Delivered
	}
	return total
}

// TotalDropped returns the total number of messages lost in transit (drop
// probability or partition injection).
func (n *Network) TotalDropped() int {
	total := 0
	for i := range n.counters {
		total += n.counters[i].Dropped
	}
	return total
}

// TotalBytes returns the total approximate bytes sent by all processors.
func (n *Network) TotalBytes() int {
	total := 0
	for i := range n.counters {
		total += n.counters[i].Bytes
	}
	return total
}

// ResetCounters zeroes all traffic counters (e.g. after warm-up).
func (n *Network) ResetCounters() {
	for i := range n.counters {
		n.counters[i] = Counters{}
	}
}
