package network

import (
	"fmt"
	"math/rand"

	"clocksync/internal/simtime"
)

// DelayModel samples the one-way latency of a message from processor `from`
// to processor `to`. The paper assumes a delivery bound δ between non-faulty
// processors; models used in bound-checking experiments must keep their
// samples ≤ δ, while models used for failure injection may exceed it (a late
// message is indistinguishable from a lost one once MaxWait passes).
type DelayModel interface {
	Sample(from, to int, rng *rand.Rand) simtime.Duration
	// Bound returns the model's worst-case latency δ (simtime.Infinity if
	// unbounded). Protocol parameter derivation uses it.
	Bound() simtime.Duration
}

// MinBounder is an optional DelayModel refinement reporting a guaranteed
// lower latency bound: every Sample is ≥ MinBound. The sharded simulator
// uses it as the conservative lookahead — the window within which shards may
// run in parallel without missing a cross-shard delivery. Models that cannot
// promise a positive minimum simply omit the method; MinDelay then reports
// zero and sharded runs fall back to a single serial shard.
type MinBounder interface {
	MinBound() simtime.Duration
}

// MinDelay returns the model's guaranteed minimum latency, or zero when the
// model does not implement MinBounder.
func MinDelay(m DelayModel) simtime.Duration {
	if mb, ok := m.(MinBounder); ok {
		return mb.MinBound()
	}
	return 0
}

// ConstantDelay delivers every message after exactly D.
type ConstantDelay struct {
	D simtime.Duration
}

// Sample implements DelayModel.
func (c ConstantDelay) Sample(_, _ int, _ *rand.Rand) simtime.Duration { return c.D }

// Bound implements DelayModel.
func (c ConstantDelay) Bound() simtime.Duration { return c.D }

// MinBound implements MinBounder.
func (c ConstantDelay) MinBound() simtime.Duration { return c.D }

// UniformDelay samples latencies uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max simtime.Duration
}

// NewUniformDelay validates and returns a uniform model.
func NewUniformDelay(min, max simtime.Duration) UniformDelay {
	if min < 0 || max < min {
		panic(fmt.Sprintf("network: bad uniform delay [%v, %v]", min, max))
	}
	return UniformDelay{Min: min, Max: max}
}

// Sample implements DelayModel.
func (u UniformDelay) Sample(_, _ int, rng *rand.Rand) simtime.Duration {
	return u.Min + simtime.Duration(rng.Float64())*(u.Max-u.Min)
}

// Bound implements DelayModel.
func (u UniformDelay) Bound() simtime.Duration { return u.Max }

// MinBound implements MinBounder.
func (u UniformDelay) MinBound() simtime.Duration { return u.Min }

// AsymmetricDelay gives each direction of each link its own uniform range:
// messages from a lower-numbered to a higher-numbered processor take
// [FwdMin, FwdMax], the reverse direction [RevMin, RevMax]. Asymmetry is the
// classic worst case for ping-based offset estimation (§3.1): the estimate's
// error approaches half the asymmetry.
type AsymmetricDelay struct {
	FwdMin, FwdMax simtime.Duration
	RevMin, RevMax simtime.Duration
}

// Sample implements DelayModel.
func (a AsymmetricDelay) Sample(from, to int, rng *rand.Rand) simtime.Duration {
	if from < to {
		return a.FwdMin + simtime.Duration(rng.Float64())*(a.FwdMax-a.FwdMin)
	}
	return a.RevMin + simtime.Duration(rng.Float64())*(a.RevMax-a.RevMin)
}

// Bound implements DelayModel.
func (a AsymmetricDelay) Bound() simtime.Duration {
	return simtime.MaxDuration(a.FwdMax, a.RevMax)
}

// MinBound implements MinBounder.
func (a AsymmetricDelay) MinBound() simtime.Duration {
	return simtime.MinDuration(a.FwdMin, a.RevMin)
}

// SkewedDelay is the packet-preserving asymmetric link-delay attacker of the
// "Resilience Bounds of Network Clock Synchronization with Fault Correction"
// model: the adversary never drops a message or exceeds the latency bound —
// it only skews the two directions of cross-group links. Processors below
// Boundary form group A, the rest group B; every A→B message takes ≈Slow,
// every B→A message ≈Fast, and in-group traffic uses the modest symmetric
// InGroup range. The ping estimator (§3.1) attributes half the round-trip
// asymmetry to clock offset — with opposite signs on the two sides of the
// boundary — so the trimmed-midpoint convergence function drives the groups
// apart to a stable split of (Slow−Fast)/2: the largest persistent deviation
// any delay-only adversary can force, and exactly the per-reading ε
// absorption Theorem 5's envelope must cover.
//
// Declared, when positive, overrides Bound(): the model *claims* that δ even
// when Slow exceeds it. That is the designed-to-fail out-of-δ variant — the
// checker derives its envelope from a bound the network silently violates —
// used by the campaign's delayskew! family.
type SkewedDelay struct {
	Boundary   int              // first processor of group B
	Slow, Fast simtime.Duration // cross-group directional delays (A→B, B→A)
	InGroup    UniformDelay     // symmetric in-group delay range
	Declared   simtime.Duration // lying Bound() override (0 = honest maximum)
}

// Sample implements DelayModel. Both directional delays carry a little
// downward jitter so no two deliveries tie at the same instant.
func (s SkewedDelay) Sample(from, to int, rng *rand.Rand) simtime.Duration {
	fromA, toA := from < s.Boundary, to < s.Boundary
	switch {
	case fromA == toA:
		return s.InGroup.Sample(from, to, rng)
	case fromA: // A→B: the slow direction
		return s.Slow - simtime.Duration(rng.Float64())*(s.Slow/32)
	default: // B→A: the fast direction
		return s.Fast/2 + simtime.Duration(rng.Float64())*(s.Fast/2)
	}
}

// Bound implements DelayModel.
func (s SkewedDelay) Bound() simtime.Duration {
	if s.Declared > 0 {
		return s.Declared
	}
	return simtime.MaxDuration(s.Slow, s.InGroup.Max)
}

// MinBound implements MinBounder.
func (s SkewedDelay) MinBound() simtime.Duration {
	return simtime.MinDuration(s.Fast/2, s.InGroup.Min)
}

// SpikyDelay models a network whose latency is usually Base-ish but
// occasionally spikes: with probability SpikeProb the sample gets an extra
// uniform [0, SpikeMax] added. Used to evaluate the min-RTT-of-k estimation
// refinement (E10) and timeout handling.
type SpikyDelay struct {
	Base      UniformDelay
	SpikeProb float64
	SpikeMax  simtime.Duration
}

// Sample implements DelayModel.
func (s SpikyDelay) Sample(from, to int, rng *rand.Rand) simtime.Duration {
	d := s.Base.Sample(from, to, rng)
	if rng.Float64() < s.SpikeProb {
		d += simtime.Duration(rng.Float64()) * s.SpikeMax
	}
	return d
}

// Bound implements DelayModel.
func (s SpikyDelay) Bound() simtime.Duration { return s.Base.Max + s.SpikeMax }

// MinBound implements MinBounder.
func (s SpikyDelay) MinBound() simtime.Duration { return s.Base.Min }

// DelayFunc adapts a function to the DelayModel interface; BoundVal reports
// its worst case and MinVal its guaranteed minimum (leave MinVal zero when
// the function has no positive floor).
type DelayFunc struct {
	Fn       func(from, to int, rng *rand.Rand) simtime.Duration
	BoundVal simtime.Duration
	MinVal   simtime.Duration
}

// MinBound implements MinBounder.
func (d DelayFunc) MinBound() simtime.Duration { return d.MinVal }

// Sample implements DelayModel.
func (d DelayFunc) Sample(from, to int, rng *rand.Rand) simtime.Duration {
	return d.Fn(from, to, rng)
}

// Bound implements DelayModel.
func (d DelayFunc) Bound() simtime.Duration { return d.BoundVal }
