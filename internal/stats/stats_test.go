package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKthSmallestLargest(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if KthSmallest(xs, 1) != 1 || KthSmallest(xs, 3) != 3 || KthSmallest(xs, 5) != 5 {
		t.Fatal("KthSmallest broken")
	}
	if KthLargest(xs, 1) != 5 || KthLargest(xs, 2) != 4 || KthLargest(xs, 5) != 1 {
		t.Fatal("KthLargest broken")
	}
	// Input must be left untouched.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("KthSmallest mutated its input")
	}
}

func TestKthSmallestDuplicatesAndInf(t *testing.T) {
	xs := []float64{2, 2, math.Inf(1), math.Inf(-1), 2}
	if KthSmallest(xs, 1) != math.Inf(-1) {
		t.Fatal("min with -inf")
	}
	if KthSmallest(xs, 2) != 2 || KthSmallest(xs, 4) != 2 {
		t.Fatal("duplicates")
	}
	if KthLargest(xs, 1) != math.Inf(1) {
		t.Fatal("max with +inf")
	}
}

func TestKthOutOfRangePanics(t *testing.T) {
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d must panic", k)
				}
			}()
			KthSmallest([]float64{1, 2, 3}, k)
		}()
	}
}

func TestKthVsSortOracle(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(kRaw)%len(xs) + 1
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return KthSmallest(xs, k) == sorted[k-1] && KthLargest(xs, k) == sorted[len(xs)-k]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("mean: %v", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev: %v", s.Stddev)
	}
	if s.P50 != 3 {
		t.Fatalf("p50: %v", s.P50)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summarize")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("endpoint percentiles")
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Fatalf("p50: %v", got)
	}
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v must panic", bad)
				}
			}()
			Percentile(sorted, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty percentile must panic")
			}
		}()
		Percentile(nil, 0.5)
	}()
}

func TestMaxAbsMeanSpread(t *testing.T) {
	if MaxAbs([]float64{-5, 3}) != 5 || MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs")
	}
	if Mean([]float64{2, 4}) != 3 || Mean(nil) != 0 {
		t.Fatal("Mean")
	}
	if Spread([]float64{7, 1, 4}) != 6 || Spread(nil) != 0 {
		t.Fatal("Spread")
	}
}

func TestSpreadNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		return Spread(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9}
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit: slope=%v intercept=%v", slope, intercept)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x, y []float64
	for i := 0; i < 1000; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 0.5*xi-3+rng.NormFloat64()*0.01)
	}
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-0.5) > 1e-3 || math.Abs(intercept+3) > 1e-1 {
		t.Fatalf("noisy fit: slope=%v intercept=%v", slope, intercept)
	}
}

func TestLinearFitDegeneratePanics(t *testing.T) {
	for _, tc := range []struct{ x, y []float64 }{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{1}},
		{[]float64{3, 3}, []float64{1, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fit(%v, %v) must panic", tc.x, tc.y)
				}
			}()
			LinearFit(tc.x, tc.y)
		}()
	}
}
