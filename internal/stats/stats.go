// Package stats provides the small statistical toolkit the metrics and
// benchmark layers share: order statistics (the heart of the paper's
// convergence function), summaries, and series helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// KthSmallest returns the k-th smallest value of xs, 1-indexed (k=1 is the
// minimum). It copies its input; callers keep their slices.
func KthSmallest(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic(fmt.Sprintf("stats: k=%d out of range for %d values", k, len(xs)))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[k-1]
}

// KthLargest returns the k-th largest value of xs, 1-indexed (k=1 is the
// maximum).
func KthLargest(xs []float64, k int) float64 {
	return KthSmallest(xs, len(xs)-k+1)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary with N=0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	var sum, sumSq float64
	for _, x := range cp {
		sum += x
		sumSq += x * x
	}
	n := float64(len(cp))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return Summary{
		N:      len(cp),
		Min:    cp[0],
		Max:    cp[len(cp)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		P50:    Percentile(cp, 0.50),
		P90:    Percentile(cp, 0.90),
		P99:    Percentile(cp, 0.99),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an already-sorted sample
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,1]", p))
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxAbs returns the largest |x| in xs (0 for empty input).
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Spread returns max−min of xs (0 for empty input).
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

// LinearFit returns the least-squares slope and intercept of y over x. It is
// used to measure logical clock rates over long windows. Requires at least
// two points with distinct x.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic(fmt.Sprintf("stats: bad fit input (%d, %d points)", len(x), len(y)))
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate fit (all x equal)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
