package baseline

import (
	"math"

	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// RoundReq asks a peer for its clock in a specific round. Round-based
// protocols keep (at most) the current and previous round's clocks, so the
// responder answers only when the requested round is adjacent to its own —
// the behaviour §3.3 describes for protocols like Welch–Lynch '88 and
// Fetzer–Cristian '94.
type RoundReq struct {
	Nonce uint64
	Round int64
}

// WireSize implements network.Sizer.
func (RoundReq) WireSize() int { return 28 }

// RoundResp answers a RoundReq.
type RoundResp struct {
	Nonce uint64
	Clock simtime.Time
}

// WireSize implements network.Sizer.
func (RoundResp) WireSize() int { return 28 }

// RoundMidpointConfig parameterizes the round-based synchronizer.
type RoundMidpointConfig struct {
	F        int
	RoundLen simtime.Duration // logical time between round boundaries
	MaxWait  simtime.Duration
}

// RoundMidpoint is a round-based fault-tolerant midpoint synchronizer. At
// every logical-time multiple of RoundLen it polls all peers for their
// round-r clocks and sets its clock to the midpoint of the (f+1)-trimmed
// range. Because peers only answer requests for adjacent rounds, a
// processor whose clock was smashed to a different round epoch gets only
// timeouts and can never rejoin — the round state the paper's roundless
// design deliberately avoids (§3.3).
type RoundMidpoint struct {
	h     *protocol.Harness
	cfg   RoundMidpointConfig
	peers []int

	round   int64
	nonce   uint64
	pending map[uint64]roundPending
	// collection state for the in-flight round poll
	collecting bool
	results    []protocol.Estimate
	expect     int

	Syncs    int // rounds that adjusted the clock
	NoQuorum int // rounds with too few answers to trim safely
}

type roundPending struct {
	peer   int
	sentAt simtime.Time
}

// NewRoundMidpoint builds a node.
func NewRoundMidpoint(h *protocol.Harness, cfg RoundMidpointConfig, peers []int) *RoundMidpoint {
	if cfg.RoundLen < 2*cfg.MaxWait || cfg.MaxWait <= 0 {
		panic("baseline: RoundMidpoint needs RoundLen ≥ 2·MaxWait > 0")
	}
	r := &RoundMidpoint{
		h:       h,
		cfg:     cfg,
		peers:   append([]int(nil), peers...),
		pending: make(map[uint64]roundPending),
	}
	h.Custom = r.receive
	return r
}

// Start implements scenario.Starter.
func (r *RoundMidpoint) Start() {
	r.round = r.currentRound()
	r.scheduleBoundary()
}

// currentRound derives the round from the logical clock — exactly the state
// coupling that makes round-based protocols fragile under clock smashing.
func (r *RoundMidpoint) currentRound() int64 {
	return int64(math.Floor(float64(r.h.LocalNow()) / float64(r.cfg.RoundLen)))
}

// scheduleBoundary arms the alarm for logical time (round+1)·RoundLen.
func (r *RoundMidpoint) scheduleBoundary() {
	target := simtime.Time(float64(r.round+1) * float64(r.cfg.RoundLen))
	d := target.Sub(r.h.LocalNow())
	// A clock that was dragged backwards would otherwise spin; space rounds
	// at least MaxWait apart.
	if d < r.cfg.MaxWait {
		d = r.cfg.MaxWait
	}
	r.h.ScheduleLocal(d, r.boundary)
}

func (r *RoundMidpoint) boundary() {
	if r.h.Faulty() {
		// Re-derive the round after release; the alarm chain itself stays up.
		r.round = r.currentRound()
		r.scheduleBoundary()
		return
	}
	r.round = r.currentRound()
	r.collecting = true
	r.results = r.results[:0]
	r.expect = len(r.peers)
	for _, peer := range r.peers {
		r.nonce++
		r.pending[r.nonce] = roundPending{peer: peer, sentAt: r.h.LocalNow()}
		r.h.Net().Send(r.h.ID(), peer, RoundReq{Nonce: r.nonce, Round: r.round})
	}
	deadlineRound := r.round
	r.h.ScheduleLocal(r.cfg.MaxWait, func() { r.finish(deadlineRound) })
	// Schedule the next boundary regardless of this round's outcome.
	r.scheduleBoundary()
}

func (r *RoundMidpoint) receive(msg network.Message) {
	switch p := msg.Payload.(type) {
	case RoundReq:
		// Answer only adjacent rounds: older/newer round clocks are gone.
		if abs64(p.Round-r.currentRound()) <= 1 {
			r.h.Net().Send(r.h.ID(), msg.From, RoundResp{Nonce: p.Nonce, Clock: r.h.LocalNow()})
		}
	case RoundResp:
		pd, ok := r.pending[p.Nonce]
		if !ok || pd.peer != msg.From || !r.collecting {
			return
		}
		delete(r.pending, p.Nonce)
		recv := r.h.LocalNow()
		r.results = append(r.results, protocol.Estimate{
			Peer: msg.From,
			D:    p.Clock.Sub(recv) + recv.Sub(pd.sentAt)/2,
			A:    recv.Sub(pd.sentAt) / 2,
			OK:   true,
		})
	}
}

func (r *RoundMidpoint) finish(round int64) {
	if !r.collecting || r.h.Faulty() || round != r.round {
		return
	}
	r.collecting = false
	missing := r.expect - len(r.results)
	ests := append([]protocol.Estimate(nil), r.results...)
	for i := 0; i < missing; i++ {
		ests = append(ests, protocol.FailedEstimate(-1))
	}
	ests = append(ests, protocol.Estimate{Peer: r.h.ID(), D: 0, A: 0, OK: true})
	// Stale pings from this round are dead.
	r.pending = make(map[uint64]roundPending)

	if len(ests) < 2*r.cfg.F+1 {
		r.NoQuorum++
		return
	}
	overs := make([]float64, len(ests))
	unders := make([]float64, len(ests))
	for i, e := range ests {
		overs[i] = float64(e.Over())
		unders[i] = float64(e.Under())
	}
	m := kthSmallest(overs, r.cfg.F+1)
	mm := kthLargest(unders, r.cfg.F+1)
	if math.IsInf(m, 0) || math.IsInf(mm, 0) {
		r.NoQuorum++
		return
	}
	// Classic fault-tolerant midpoint: jump to the center of the trimmed
	// range, own clock not privileged.
	r.Syncs++
	r.h.Adjust(simtime.Duration((m + mm) / 2))
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// RoundMidpointBuilder adapts the node to the scenario engine, reusing the
// scenario's SyncInt as the round length.
func RoundMidpointBuilder() scenario.Builder {
	return func(ctx scenario.BuildContext) scenario.Starter {
		return NewRoundMidpoint(ctx.Harness, RoundMidpointConfig{
			F:        ctx.Scenario.F,
			RoundLen: ctx.Scenario.SyncInt,
			MaxWait:  ctx.Scenario.MaxWait,
		}, ctx.Peers)
	}
}
