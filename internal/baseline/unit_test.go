package baseline

import (
	"math"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// unitRig wires n harnesses with perfect clocks and constant 1 ms delay.
type unitRig struct {
	sim *des.Sim
	net *network.Network
	hs  []*protocol.Harness
}

func newUnitRig(t *testing.T, n int) *unitRig {
	t.Helper()
	sim := des.New(7)
	net := network.New(sim, network.NewFullMesh(n), network.ConstantDelay{D: simtime.Millisecond})
	hs := make([]*protocol.Harness, n)
	for i := 0; i < n; i++ {
		hs[i] = protocol.NewHarness(i, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	}
	return &unitRig{sim: sim, net: net, hs: hs}
}

func TestTrimmedMidpointStepMath(t *testing.T) {
	est := func(d float64) protocol.Estimate {
		return protocol.Estimate{D: simtime.Duration(d), OK: true}
	}
	// f=1, values {0(self), 2, 4, 100}: m = 2nd smallest = 2, M = 2nd
	// largest = 4 → (min(2,0)+max(4,0))/2 = 2.
	delta, ok := trimmedMidpointStep(1, []protocol.Estimate{est(0), est(2), est(4), est(100)})
	if !ok || math.Abs(float64(delta)-2) > 1e-12 {
		t.Fatalf("got (%v, %v), want 2", delta, ok)
	}
	// Unlike Sync there is no WayOff escape: a far range still averages
	// with the own clock (never jumps fully).
	delta, ok = trimmedMidpointStep(1, []protocol.Estimate{est(0), est(999), est(1000), est(1001)})
	if !ok || math.Abs(float64(delta)-500) > 1e-12 {
		t.Fatalf("far range: got (%v, %v), want 500 (half-way)", delta, ok)
	}
	if _, ok := trimmedMidpointStep(2, []protocol.Estimate{est(0), est(1)}); ok {
		t.Fatal("too few estimates accepted")
	}
	if _, ok := trimmedMidpointStep(1, []protocol.Estimate{
		est(0), protocol.FailedEstimate(1), protocol.FailedEstimate(2)}); ok {
		t.Fatal("all-infinite trim accepted")
	}
}

func TestRoundMidpointAnswersOnlyAdjacentRounds(t *testing.T) {
	r := newUnitRig(t, 2)
	node := NewRoundMidpoint(r.hs[0], RoundMidpointConfig{
		F: 0, RoundLen: 10, MaxWait: 1,
	}, []int{1})
	node.Start() // current round 0 at clock 0

	// A raw RoundReq from peer 1 for an adjacent round gets an answer; a
	// far-round request is refused.
	var responses []protocol.Estimate
	r.hs[1].Custom = func(msg network.Message) {
		if resp, ok := msg.Payload.(RoundResp); ok {
			responses = append(responses, protocol.Estimate{D: simtime.Duration(resp.Clock), OK: true})
		}
	}
	r.sim.At(1, func() { r.net.Send(1, 0, RoundReq{Nonce: 1, Round: 0}) })
	r.sim.At(2, func() { r.net.Send(1, 0, RoundReq{Nonce: 2, Round: 1}) })  // adjacent
	r.sim.At(3, func() { r.net.Send(1, 0, RoundReq{Nonce: 3, Round: 50}) }) // far epoch
	r.sim.RunUntil(5)
	if len(responses) != 2 {
		t.Fatalf("got %d responses, want 2 (adjacent rounds only)", len(responses))
	}
}

func TestSrikanthTouegQuorumLogic(t *testing.T) {
	r := newUnitRig(t, 4)
	node := NewSrikanthToueg(r.hs[0], STConfig{F: 1, Period: 10, Alpha: 0.01}, []int{1, 2, 3})
	node.Start()

	// One tick for round 3 is below the f+1=2 quorum; a second sender
	// triggers acceptance and the clock jumps to 3·10+α.
	r.sim.At(1, func() { r.net.Send(1, 0, Tick{Round: 3}) })
	r.sim.RunUntil(2)
	if node.Resyncs != 0 {
		t.Fatal("accepted below quorum")
	}
	r.sim.At(3, func() { r.net.Send(2, 0, Tick{Round: 3}) })
	r.sim.RunUntil(4)
	if node.Resyncs != 1 {
		t.Fatal("quorum not accepted")
	}
	// Accepted at τ = 3.001 (delivery), clock set to 3·10+α = 30.01, then
	// advances normally: at τ = 4 it reads 30.01 + 0.999.
	if got := float64(r.hs[0].Clock().Now(4)); math.Abs(got-31.009) > 1e-9 {
		t.Fatalf("clock after resync: got %v, want 31.009", got)
	}
	// Stale ticks (≤ current round) are ignored even from many senders.
	r.sim.At(5, func() {
		r.net.Send(1, 0, Tick{Round: 2})
		r.net.Send(2, 0, Tick{Round: 2})
		r.net.Send(3, 0, Tick{Round: 2})
	})
	r.sim.RunUntil(6)
	if node.Resyncs != 1 {
		t.Fatal("stale ticks accepted")
	}
	// Duplicate senders must not fake a quorum.
	r.sim.At(7, func() {
		r.net.Send(1, 0, Tick{Round: 9})
		r.net.Send(1, 0, Tick{Round: 9})
		r.net.Send(1, 0, Tick{Round: 9})
	})
	r.sim.RunUntil(8)
	if node.Resyncs != 1 {
		t.Fatal("duplicate senders counted toward quorum")
	}
}

func TestBroadcastJoinRelayAndDedup(t *testing.T) {
	r := newUnitRig(t, 4)
	node := NewBroadcastJoin(r.hs[1], BroadcastJoinConfig{
		F: 1, SyncInt: 10, HopDelay: 0.001,
	}, []int{0, 2, 3})
	node.Start()

	// Count what node 1 relays to nodes 2 and 3.
	relayed := 0
	hop2 := 0
	handler := func(msg network.Message) {
		if bc, ok := msg.Payload.(TimeBcast); ok && msg.From == 1 {
			relayed++
			if bc.Hops == 2 {
				hop2++
			}
		}
	}
	r.hs[2].Custom = handler
	r.hs[3].Custom = handler

	bcast := TimeBcast{Origin: 0, Seq: 1, Clock: 5, Hops: 1}
	r.sim.At(1, func() { r.net.Send(0, 1, bcast) })
	r.sim.At(2, func() { r.net.Send(0, 1, bcast) }) // duplicate — no re-relay
	r.sim.RunUntil(4)
	if relayed != 2 || hop2 != 2 {
		t.Fatalf("relay: got %d messages (%d at hop 2), want 2 at hop 2", relayed, hop2)
	}
	// Hop-2 messages are terminal: they must not be relayed again.
	r.sim.At(5, func() { r.net.Send(0, 1, TimeBcast{Origin: 3, Seq: 9, Clock: 5, Hops: 2}) })
	r.sim.RunUntil(7)
	if relayed != 2 {
		t.Fatalf("hop-2 message was re-relayed (%d)", relayed)
	}
}

func TestTimeBcastWireSizeGrowsWithHops(t *testing.T) {
	one := TimeBcast{Hops: 1}.WireSize()
	two := TimeBcast{Hops: 2}.WireSize()
	if two <= one {
		t.Fatalf("signature chain not reflected: %d vs %d", one, two)
	}
}
