package baseline

import (
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Tick announces that the sender's clock reached a round boundary.
type Tick struct {
	Round int64
}

// WireSize implements network.Sizer.
func (Tick) WireSize() int { return 24 }

// STConfig parameterizes the Srikanth–Toueg-style resynchronizer.
type STConfig struct {
	F      int
	Period simtime.Duration // logical time between resynchronizations
	// Alpha is the fixed boost applied when resynchronizing: accepting round
	// j sets the clock to j·Period + Alpha (compensates broadcast latency).
	Alpha simtime.Duration
}

// SrikanthToueg is an authenticated-broadcast resynchronizer in the style of
// Srikanth–Toueg '87. When a processor's clock reads (round+1)·Period it
// broadcasts Tick(round+1); when it has received Tick(j) for some j greater
// than its round from f+1 distinct processors (its own counts), it sets its
// clock to j·Period+Alpha, adopts round j, and relays Tick(j).
//
// Recovery is asymmetric: a processor whose clock was smashed backwards is
// dragged forward by the next accepted tick quorum (recovery within one
// period), but one smashed forward by X ignores everyone's "stale" ticks
// until real time catches up with its clock — recovery time ≈ X, linear in
// the offset, versus Sync's logarithmic recovery.
type SrikanthToueg struct {
	h     *protocol.Harness
	cfg   STConfig
	peers []int

	round     int64
	lastBcast int64
	ticks     map[int64]map[int]bool
	alarm     des.Event

	Resyncs int // accepted tick quorums
}

// NewSrikanthToueg builds a node.
func NewSrikanthToueg(h *protocol.Harness, cfg STConfig, peers []int) *SrikanthToueg {
	if cfg.Period <= 0 {
		panic("baseline: SrikanthToueg needs a positive period")
	}
	st := &SrikanthToueg{
		h:     h,
		cfg:   cfg,
		peers: append([]int(nil), peers...),
		ticks: make(map[int64]map[int]bool),
	}
	h.Custom = st.receive
	// §3.3: round-based protocols must recover "variables such as the
	// current round number" after a break-in — and the only surviving source
	// is the (possibly corrupted) clock. Re-derive all round state from it.
	h.OnRelease = func(simtime.Time) {
		st.round = st.currentRound()
		st.lastBcast = st.round
		st.ticks = make(map[int64]map[int]bool)
		st.rearm()
	}
	return st
}

// Start implements scenario.Starter.
func (st *SrikanthToueg) Start() {
	st.round = st.currentRound()
	st.lastBcast = st.round
	st.rearm()
}

func (st *SrikanthToueg) currentRound() int64 {
	return int64(float64(st.h.LocalNow()) / float64(st.cfg.Period))
}

// rearm schedules the next tick broadcast: when the local clock reads
// next·Period, where next is the first round not yet announced. The previous
// alarm is cancelled — after a resync jump the old target is meaningless,
// and a stale alarm would broadcast a premature tick (a cascade of which
// drives rounds arbitrarily faster than real time).
func (st *SrikanthToueg) rearm() {
	st.alarm.Cancel() // safe on the zero handle and on already-fired alarms
	next := st.round + 1
	if st.lastBcast+1 > next {
		next = st.lastBcast + 1
	}
	target := simtime.Time(float64(next) * float64(st.cfg.Period))
	d := target.Sub(st.h.LocalNow())
	if d < simtime.Millisecond {
		d = simtime.Millisecond // floor against zero-delay loops
	}
	st.alarm = st.h.ScheduleLocal(d, st.boundary)
}

func (st *SrikanthToueg) boundary() {
	st.alarm = des.Event{}
	if !st.h.Faulty() {
		next := st.round + 1
		if st.lastBcast+1 > next {
			next = st.lastBcast + 1
		}
		st.lastBcast = next
		st.recordTick(next, st.h.ID())
		st.broadcast(Tick{Round: next})
		st.tryAccept()
	}
	st.rearm()
}

func (st *SrikanthToueg) broadcast(t Tick) {
	for _, p := range st.peers {
		st.h.Net().Send(st.h.ID(), p, t)
	}
}

func (st *SrikanthToueg) receive(msg network.Message) {
	t, ok := msg.Payload.(Tick)
	if !ok {
		return
	}
	if t.Round <= st.round {
		return // stale
	}
	st.recordTick(t.Round, msg.From)
	st.tryAccept()
}

func (st *SrikanthToueg) recordTick(round int64, from int) {
	set := st.ticks[round]
	if set == nil {
		set = make(map[int]bool)
		st.ticks[round] = set
	}
	set[from] = true
}

// tryAccept adopts the highest round with a tick quorum of f+1 distinct
// senders (authenticated links make counting sound: f Byzantine processors
// can contribute at most f ticks, so a quorum proves an honest boundary).
func (st *SrikanthToueg) tryAccept() {
	var best int64 = -1
	for round, senders := range st.ticks {
		if round > st.round && len(senders) >= st.cfg.F+1 && round > best {
			best = round
		}
	}
	if best < 0 {
		return
	}
	st.round = best
	target := simtime.Time(float64(best)*float64(st.cfg.Period)) + simtime.Time(st.cfg.Alpha)
	st.h.Adjust(target.Sub(st.h.LocalNow()))
	st.Resyncs++
	if st.lastBcast < best {
		st.lastBcast = best
		st.broadcast(Tick{Round: best}) // relay the quorum we joined
	}
	for round := range st.ticks {
		if round <= st.round {
			delete(st.ticks, round)
		}
	}
	st.rearm()
}

// SrikanthTouegBuilder adapts the node to the scenario engine.
func SrikanthTouegBuilder() scenario.Builder {
	return func(ctx scenario.BuildContext) scenario.Starter {
		return NewSrikanthToueg(ctx.Harness, STConfig{
			F:      ctx.Scenario.F,
			Period: ctx.Scenario.SyncInt,
			Alpha:  ctx.Scenario.Delay.Bound() / 2,
		}, ctx.Peers)
	}
}
