// Package baseline implements the comparator protocols the paper positions
// itself against (§1.1, §3.3). They exist to reproduce the paper's
// qualitative comparisons, not to be faithful line-by-line reproductions of
// their sources; each type documents its simplifications.
//
//   - BoundedCF — a convergence-function synchronizer in the style of
//     Fetzer–Cristian '95: same trimmed-range midpoint as Sync but with the
//     per-round correction clamped to a small maximum (their design goal of
//     minimal correction). Recovery of a far-off clock is linear in the
//     offset at best, and stalls entirely when the clamp is small (E4).
//
//   - RoundMidpoint — a round-based fault-tolerant midpoint synchronizer in
//     the style of Welch–Lynch '88. Clock readings are only answered for the
//     requester's current-or-adjacent round, which is exactly what round-
//     based protocols provide (§3.3): a processor whose clock places it in a
//     far-away round gets no usable answers and cannot rejoin.
//
//   - SrikanthToueg — an authenticated-broadcast resynchronizer in the style
//     of Srikanth–Toueg '87: broadcast a tick when the local clock reaches a
//     round boundary, resynchronize upon f+1 ticks. A processor whose clock
//     is far behind is dragged forward by others' ticks, but one far ahead
//     ignores "stale" ticks and is lost forever.
//
//   - BroadcastJoin — a signed-broadcast synchronizer in the style of
//     Dolev–Halpern–Simons–Strong '95: every interval each processor
//     broadcasts its clock and every receiver relays it once (the signature
//     chain is simulated by message size). Message complexity per full
//     exchange is Θ(n²) per origin versus Θ(n) for Sync (E8).
//
//   - NTPSlew — an NTP-flavored client: min-RTT-of-k offset filtering,
//     median across peers, rate-limited slew with a step threshold.
package baseline
