package baseline

import (
	"math"
	"sort"

	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// NTPConfig parameterizes the NTP-flavored client.
type NTPConfig struct {
	Poll    simtime.Duration // polling interval
	MaxWait simtime.Duration // per-ping timeout
	K       int              // pings per peer, best (min-RTT) kept
	// SlewMax bounds the gradual correction applied per poll.
	SlewMax simtime.Duration
	// StepThreshold is ntpd's panic/step boundary: offsets beyond it are
	// stepped in one jump instead of slewed.
	StepThreshold simtime.Duration
	FirstPoll     simtime.Duration
}

// NTPSlew approximates how an NTP client disciplines its clock against a
// peer ensemble: min-RTT-of-k filtering per peer (§3.1 credits NTP for the
// trick), the median across peers as the combined offset, then a
// rate-limited slew — or a step when the offset exceeds StepThreshold. It
// has no Byzantine trimming tuned to f; the median resists outliers only as
// long as liars stay a minority and tell everyone the same story.
type NTPSlew struct {
	h     *protocol.Harness
	cfg   NTPConfig
	peers []int

	Polls int
	Steps int
}

// NewNTPSlew builds a node.
func NewNTPSlew(h *protocol.Harness, cfg NTPConfig, peers []int) *NTPSlew {
	if cfg.K < 1 || cfg.Poll <= 0 || cfg.MaxWait <= 0 {
		panic("baseline: NTPSlew needs K ≥ 1 and positive intervals")
	}
	return &NTPSlew{h: h, cfg: cfg, peers: append([]int(nil), peers...)}
}

// Start implements scenario.Starter.
func (n *NTPSlew) Start() {
	n.h.ScheduleLocal(n.cfg.FirstPoll, n.tick)
}

func (n *NTPSlew) tick() {
	n.h.ScheduleLocal(n.cfg.Poll, n.tick)
	if n.h.Faulty() || len(n.peers) == 0 {
		return
	}
	results := make([]protocol.Estimate, 0, len(n.peers))
	want := len(n.peers)
	for _, peer := range n.peers {
		n.h.PingBest(peer, n.cfg.K, n.cfg.MaxWait, func(e protocol.Estimate) {
			results = append(results, e)
			if len(results) == want {
				n.finish(results)
			}
		})
	}
}

func (n *NTPSlew) finish(results []protocol.Estimate) {
	if n.h.Faulty() {
		return
	}
	var offsets []float64
	for _, e := range results {
		if e.OK {
			offsets = append(offsets, float64(e.D))
		}
	}
	if len(offsets) == 0 {
		return
	}
	sort.Float64s(offsets)
	median := offsets[len(offsets)/2]
	if len(offsets)%2 == 0 {
		median = (offsets[len(offsets)/2-1] + offsets[len(offsets)/2]) / 2
	}
	n.Polls++
	if math.Abs(median) > float64(n.cfg.StepThreshold) {
		n.Steps++
		n.h.Adjust(simtime.Duration(median))
		return
	}
	slew := median / 2
	if s := float64(n.cfg.SlewMax); math.Abs(slew) > s {
		slew = math.Copysign(s, slew)
	}
	n.h.Adjust(simtime.Duration(slew))
}

// NTPSlewBuilder adapts the node to the scenario engine.
func NTPSlewBuilder(k int) scenario.Builder {
	return func(ctx scenario.BuildContext) scenario.Starter {
		return NewNTPSlew(ctx.Harness, NTPConfig{
			Poll:          ctx.Scenario.SyncInt,
			MaxWait:       ctx.Scenario.MaxWait,
			K:             k,
			SlewMax:       ctx.Bounds.Eps,
			StepThreshold: 128 * simtime.Millisecond,
			FirstPoll:     simtime.Duration(ctx.Rand.Float64() * float64(ctx.Scenario.SyncInt)),
		}, ctx.Peers)
	}
}
