package baseline

import (
	"math"

	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// TimeBcast is a (simulated-)signed clock broadcast. Hops counts the
// signature chain: every relay appends a signature, growing the wire size —
// the overhead broadcast-based protocols pay for equivocation resistance.
type TimeBcast struct {
	Origin int
	Seq    uint64
	Clock  simtime.Time
	Hops   int
}

// WireSize implements network.Sizer: header plus one 64-byte signature per
// hop.
func (b TimeBcast) WireSize() int { return 40 + 64*b.Hops }

// BroadcastJoinConfig parameterizes the broadcast synchronizer.
type BroadcastJoinConfig struct {
	F       int
	SyncInt simtime.Duration
	// HopDelay is the per-hop latency compensation added to received
	// broadcast values (≈ the mean one-way delay).
	HopDelay simtime.Duration
}

// BroadcastJoin is a signed-broadcast synchronizer in the style of
// Dolev–Halpern–Simons–Strong '95. Every SyncInt of local time a processor
// broadcasts its clock; every correct receiver relays each first-seen
// broadcast once to all its other neighbors. Processors adjust to the
// (f+1)-trimmed midpoint of the freshest value per origin.
//
// Functionally it synchronizes; the cost is the point (E8): one exchange by
// one origin is Θ(n²) messages with growing signature chains, against Θ(n)
// fixed-size messages for a Sync round — the practical disadvantages §1.1
// lists for broadcast-based algorithms.
type BroadcastJoin struct {
	h     *protocol.Harness
	cfg   BroadcastJoinConfig
	peers []int

	seq    uint64
	seen   map[bcastKey]bool
	latest map[int]bcastSample

	Syncs int
}

type bcastKey struct {
	origin int
	seq    uint64
}

type bcastSample struct {
	offset  simtime.Duration // estimated C_origin − C_mine at receipt
	localAt simtime.Time     // local receipt time, for freshness
}

// NewBroadcastJoin builds a node.
func NewBroadcastJoin(h *protocol.Harness, cfg BroadcastJoinConfig, peers []int) *BroadcastJoin {
	if cfg.SyncInt <= 0 {
		panic("baseline: BroadcastJoin needs a positive SyncInt")
	}
	b := &BroadcastJoin{
		h:      h,
		cfg:    cfg,
		peers:  append([]int(nil), peers...),
		seen:   make(map[bcastKey]bool),
		latest: make(map[int]bcastSample),
	}
	h.Custom = b.receive
	return b
}

// Start implements scenario.Starter.
func (b *BroadcastJoin) Start() {
	b.h.ScheduleLocal(b.cfg.SyncInt, b.tick)
}

func (b *BroadcastJoin) tick() {
	b.h.ScheduleLocal(b.cfg.SyncInt, b.tick)
	if b.h.Faulty() {
		return
	}
	b.adjust()
	b.seq++
	msg := TimeBcast{Origin: b.h.ID(), Seq: b.seq, Clock: b.h.LocalNow(), Hops: 1}
	for _, p := range b.peers {
		b.h.Net().Send(b.h.ID(), p, msg)
	}
}

func (b *BroadcastJoin) receive(msg network.Message) {
	bc, ok := msg.Payload.(TimeBcast)
	if !ok {
		return
	}
	key := bcastKey{origin: bc.Origin, seq: bc.Seq}
	if b.seen[key] || bc.Origin == b.h.ID() {
		return
	}
	b.seen[key] = true
	now := b.h.LocalNow()
	estimated := bc.Clock.Add(simtime.Duration(bc.Hops) * b.cfg.HopDelay)
	b.latest[bc.Origin] = bcastSample{offset: estimated.Sub(now), localAt: now}
	if bc.Hops == 1 {
		relay := bc
		relay.Hops = 2
		for _, p := range b.peers {
			if p != bc.Origin && p != msg.From {
				b.h.Net().Send(b.h.ID(), p, relay)
			}
		}
	}
}

// adjust applies the trimmed-midpoint step over fresh per-origin values.
func (b *BroadcastJoin) adjust() {
	now := b.h.LocalNow()
	ests := []protocol.Estimate{{Peer: b.h.ID(), D: 0, A: 0, OK: true}}
	for origin, s := range b.latest {
		age := now.Sub(s.localAt)
		if age > 2*b.cfg.SyncInt {
			continue // stale origin (crashed or partitioned)
		}
		// One-way estimates carry no RTT bound; use the hop compensation as
		// the error bar.
		ests = append(ests, protocol.Estimate{Peer: origin, D: s.offset, A: b.cfg.HopDelay, OK: true})
	}
	if len(ests) < 2*b.cfg.F+1 {
		return
	}
	overs := make([]float64, len(ests))
	unders := make([]float64, len(ests))
	for i, e := range ests {
		overs[i] = float64(e.Over())
		unders[i] = float64(e.Under())
	}
	m := kthSmallest(overs, b.cfg.F+1)
	mm := kthLargest(unders, b.cfg.F+1)
	if math.IsInf(m, 0) || math.IsInf(mm, 0) {
		return
	}
	b.Syncs++
	b.h.Adjust(simtime.Duration((math.Min(m, 0) + math.Max(mm, 0)) / 2))
}

// BroadcastJoinBuilder adapts the node to the scenario engine.
func BroadcastJoinBuilder() scenario.Builder {
	return func(ctx scenario.BuildContext) scenario.Starter {
		return NewBroadcastJoin(ctx.Harness, BroadcastJoinConfig{
			F:        ctx.Scenario.F,
			SyncInt:  ctx.Scenario.SyncInt,
			HopDelay: ctx.Scenario.Delay.Bound() / 2,
		}, ctx.Peers)
	}
}
