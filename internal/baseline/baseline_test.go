package baseline

import (
	"math"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

func baseScenario(builder scenario.Builder) scenario.Scenario {
	return scenario.Scenario{
		Name:       "baseline-test",
		Seed:       13,
		N:          7,
		F:          2,
		Duration:   10 * simtime.Minute,
		Theta:      5 * simtime.Minute,
		Rho:        1e-4,
		InitSpread: 100 * simtime.Millisecond,
		Builder:    builder,
	}
}

func lastGoodSpread(res *scenario.Result) float64 {
	samples := res.Recorder.Samples()
	last := samples[len(samples)-1]
	var biases []float64
	for i, g := range last.Good {
		if g {
			biases = append(biases, float64(last.Biases[i]))
		}
	}
	min, max := biases[0], biases[0]
	for _, b := range biases[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return max - min
}

func lastBias(res *scenario.Result, id int) float64 {
	samples := res.Recorder.Samples()
	return float64(samples[len(samples)-1].Biases[id])
}

func TestBoundedCFConvergesWhenClose(t *testing.T) {
	res, err := scenario.Run(baseScenario(BoundedCFBuilder(0)))
	if err != nil {
		t.Fatal(err)
	}
	if s := lastGoodSpread(res); s > 0.3 {
		t.Fatalf("BoundedCF did not hold the cluster together: spread=%v", s)
	}
}

func TestBoundedCFRecoveryIsSlowOrStalls(t *testing.T) {
	// One node starts 60 s away. With correction clamped to 4ε ≈ 0.4 s per
	// 10 s round, closing 60 s takes ≥ 25 minutes; in a 10-minute run the
	// node must still be far out — while Sync recovers the same offset in a
	// handful of rounds (TestFarNodeTriggersWayOffAndRecovers in core).
	s := baseScenario(BoundedCFBuilder(0))
	s.InitSpread = 0
	s.InitialBiases = []simtime.Duration{0, 0, 0, 0, 0, 0, 60 * simtime.Second}
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if b := lastBias(res, 6); b < 30 {
		t.Fatalf("bounded correction recovered too fast: bias=%v (clamp not effective?)", b)
	}
	syncRes, err := scenario.Run(func() scenario.Scenario {
		s2 := baseScenario(nil)
		s2.InitSpread = 0
		s2.InitialBiases = []simtime.Duration{0, 0, 0, 0, 0, 0, 60 * simtime.Second}
		return s2
	}())
	if err != nil {
		t.Fatal(err)
	}
	if b := lastBias(syncRes, 6); math.Abs(b) > 0.5 {
		t.Fatalf("Sync should recover 60 s in 10 min: bias=%v", b)
	}
}

func TestBoundedCFClampCounter(t *testing.T) {
	s := baseScenario(nil)
	var node *BoundedCF
	s.Builder = func(ctx scenario.BuildContext) scenario.Starter {
		st := BoundedCFBuilder(10 * simtime.Millisecond)(ctx)
		if ctx.Index == 6 {
			node = st.(*BoundedCF)
		}
		return st
	}
	s.InitSpread = 0
	s.InitialBiases = []simtime.Duration{0, 0, 0, 0, 0, 0, 10 * simtime.Second}
	if _, err := scenario.Run(s); err != nil {
		t.Fatal(err)
	}
	if node.Clamped == 0 {
		t.Fatal("far node's corrections were never clamped")
	}
	if node.Syncs == 0 {
		t.Fatal("node never synced")
	}
}

func TestRoundMidpointConvergesWhenInPhase(t *testing.T) {
	res, err := scenario.Run(baseScenario(RoundMidpointBuilder()))
	if err != nil {
		t.Fatal(err)
	}
	if s := lastGoodSpread(res); s > 0.3 {
		t.Fatalf("RoundMidpoint did not converge: spread=%v", s)
	}
}

func TestRoundMidpointCannotRecoverSmashedClock(t *testing.T) {
	// The adversary smashes a node's clock by +500 s (≈ 50 rounds ahead).
	// After release the node requests round-550 clocks; peers near round 60
	// refuse, so it never rejoins — the §3.3 failure mode of round-based
	// protocols. The Sync control below recovers the identical scenario.
	mk := func(builder scenario.Builder) scenario.Scenario {
		s := baseScenario(builder)
		s.Duration = 20 * simtime.Minute
		s.Theta = 4 * simtime.Minute
		s.Adversary = adversary.Static([]int{6}, 60, 90,
			func(int) protocol.Behavior {
				return adversary.ClockSmash{Offset: 500 * simtime.Second, Quiet: true}
			})
		return s
	}
	res, err := scenario.Run(mk(RoundMidpointBuilder()))
	if err != nil {
		t.Fatal(err)
	}
	if b := lastBias(res, 6); b < 400 {
		t.Fatalf("round-based protocol unexpectedly recovered: bias=%v", b)
	}
	if len(res.Report.Recoveries) != 1 || res.Report.Recoveries[0].Ok {
		t.Fatal("recovery should be reported as failed")
	}

	syncRes, err := scenario.Run(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !syncRes.Report.Recoveries[0].Ok {
		t.Fatal("Sync control failed to recover the same smash")
	}
}

func TestRoundMidpointAnswersAdjacentRoundsOnly(t *testing.T) {
	s := baseScenario(RoundMidpointBuilder())
	s.Duration = 2 * simtime.Minute
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// In-phase cluster: every node must complete most of its rounds.
	if s := lastGoodSpread(res); s > 0.5 {
		t.Fatalf("spread=%v", s)
	}
}

func TestSrikanthTouegHoldsCadence(t *testing.T) {
	res, err := scenario.Run(baseScenario(SrikanthTouegBuilder()))
	if err != nil {
		t.Fatal(err)
	}
	// ST synchronizes logical round starts; absolute deviation between
	// resyncs is bounded by drift over a period plus delivery spread.
	if s := lastGoodSpread(res); s > 0.5 {
		t.Fatalf("SrikanthToueg diverged: spread=%v", s)
	}
}

func TestSrikanthTouegRecoveryAsymmetry(t *testing.T) {
	mk := func(offset simtime.Duration) scenario.Scenario {
		s := baseScenario(SrikanthTouegBuilder())
		s.Duration = 20 * simtime.Minute
		s.Theta = 4 * simtime.Minute
		s.Adversary = adversary.Static([]int{6}, 60, 90,
			func(int) protocol.Behavior {
				return adversary.ClockSmash{Offset: offset, Quiet: true}
			})
		return s
	}
	// Smashed backwards: the next tick quorum drags the node forward within
	// about one period.
	back, err := scenario.Run(mk(-500 * simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b := lastBias(back, 6); math.Abs(b) > 1 {
		t.Fatalf("backward smash not recovered: bias=%v", b)
	}
	rvBack := back.Report.Recoveries[0]
	if !rvBack.Ok || rvBack.Time() > simtime.Duration(60) {
		t.Fatalf("backward recovery should be fast: %+v", rvBack)
	}
	// Smashed forward by X: the node ignores "stale" ticks until real time
	// catches up with its clock — recovery linear in X (here ≈ 500 s),
	// versus Sync's logarithmic recovery (a few SyncInts).
	fwd, err := scenario.Run(mk(500 * simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	rvFwd := fwd.Report.Recoveries[0]
	if !rvFwd.Ok {
		t.Fatalf("forward smash should recover once real time catches up: %+v", rvFwd)
	}
	if rvFwd.Time() < simtime.Duration(400) {
		t.Fatalf("forward recovery should take ≈ the 500 s offset, got %v", rvFwd.Time())
	}
}

func TestBroadcastJoinConverges(t *testing.T) {
	res, err := scenario.Run(baseScenario(BroadcastJoinBuilder()))
	if err != nil {
		t.Fatal(err)
	}
	// One-way estimates are cruder than RTT pings; allow a looser envelope.
	if s := lastGoodSpread(res); s > 0.6 {
		t.Fatalf("BroadcastJoin diverged: spread=%v", s)
	}
}

func TestBroadcastJoinMessageOverhead(t *testing.T) {
	// Broadcast flooding must cost Θ(n) times more messages than Sync for
	// the same sync interval.
	bj, err := scenario.Run(baseScenario(BroadcastJoinBuilder()))
	if err != nil {
		t.Fatal(err)
	}
	sy, err := scenario.Run(baseScenario(nil))
	if err != nil {
		t.Fatal(err)
	}
	if bj.MsgsSent < 2*sy.MsgsSent {
		t.Fatalf("broadcast overhead not visible: %d vs %d msgs", bj.MsgsSent, sy.MsgsSent)
	}
	if bj.BytesSent < 3*sy.BytesSent {
		t.Fatalf("signature-chain bytes not visible: %d vs %d bytes", bj.BytesSent, sy.BytesSent)
	}
}

func TestNTPSlewConverges(t *testing.T) {
	res, err := scenario.Run(baseScenario(NTPSlewBuilder(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s := lastGoodSpread(res); s > 0.3 {
		t.Fatalf("NTPSlew diverged: spread=%v", s)
	}
}

func TestNTPSlewStepsOnLargeOffset(t *testing.T) {
	s := baseScenario(nil)
	var node *NTPSlew
	s.Builder = func(ctx scenario.BuildContext) scenario.Starter {
		st := NTPSlewBuilder(2)(ctx)
		if ctx.Index == 6 {
			node = st.(*NTPSlew)
		}
		return st
	}
	s.InitSpread = 0
	s.InitialBiases = []simtime.Duration{0, 0, 0, 0, 0, 0, 30 * simtime.Second}
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if node.Steps == 0 {
		t.Fatal("30 s offset did not trigger a step")
	}
	if b := lastBias(res, 6); math.Abs(b) > 0.5 {
		t.Fatalf("NTP step did not recover the node: bias=%v", b)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"boundedcf": func() { NewBoundedCF(nil, BoundedCFConfig{}, nil) },
		"roundmid":  func() { NewRoundMidpoint(nil, RoundMidpointConfig{RoundLen: 1, MaxWait: 1}, nil) },
		"st":        func() { NewSrikanthToueg(nil, STConfig{}, nil) },
		"bjoin":     func() { NewBroadcastJoin(nil, BroadcastJoinConfig{}, nil) },
		"ntp":       func() { NewNTPSlew(nil, NTPConfig{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
