package baseline

import (
	"math"

	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// BoundedCFConfig parameterizes the bounded-correction synchronizer.
type BoundedCFConfig struct {
	F       int
	SyncInt simtime.Duration
	MaxWait simtime.Duration
	// MaxCorrection clamps the per-round adjustment. Fetzer–Cristian-style
	// algorithms bound it by a small multiple of the reading error; the
	// smaller it is, the smoother the clock — and the slower (or more
	// impossible) recovery becomes.
	MaxCorrection simtime.Duration
	FirstSync     simtime.Duration
}

// BoundedCF is a convergence-function synchronizer whose correction is
// clamped — the minimal-correction design §1.1 contrasts Sync with. It uses
// the same estimation machinery and the same trimmed range as Sync, but
// never ignores its own clock and never moves more than MaxCorrection at a
// time: "using such small correction may delay the recovery of a processor
// with a clock very far from the correct one (such recovery may never
// complete)".
type BoundedCF struct {
	h     *protocol.Harness
	cfg   BoundedCFConfig
	peers []int

	Syncs   int
	Clamped int // rounds where the clamp actually bit
}

// NewBoundedCF builds a node.
func NewBoundedCF(h *protocol.Harness, cfg BoundedCFConfig, peers []int) *BoundedCF {
	if cfg.MaxCorrection <= 0 {
		panic("baseline: BoundedCF needs a positive MaxCorrection")
	}
	return &BoundedCF{h: h, cfg: cfg, peers: append([]int(nil), peers...)}
}

// Start implements scenario.Starter.
func (b *BoundedCF) Start() {
	b.h.ScheduleLocal(b.cfg.FirstSync, b.tick)
}

func (b *BoundedCF) tick() {
	b.h.ScheduleLocal(b.cfg.SyncInt, b.tick)
	if b.h.Faulty() {
		return
	}
	b.h.EstimateAll(b.peers, b.cfg.MaxWait, b.finish)
}

func (b *BoundedCF) finish(ests []protocol.Estimate) {
	all := append(append([]protocol.Estimate(nil), ests...),
		protocol.Estimate{Peer: b.h.ID(), D: 0, A: 0, OK: true})
	delta, ok := trimmedMidpointStep(b.cfg.F, all)
	if !ok {
		return
	}
	if c := float64(b.cfg.MaxCorrection); math.Abs(float64(delta)) > c {
		b.Clamped++
		delta = simtime.Duration(math.Copysign(c, float64(delta)))
	}
	b.Syncs++
	b.h.Adjust(delta)
}

// trimmedMidpointStep is Sync's normal-case step without the WayOff escape:
// move halfway toward the trimmed range [m, M], keeping the own clock inside
// the average.
func trimmedMidpointStep(f int, ests []protocol.Estimate) (simtime.Duration, bool) {
	if len(ests) < 2*f+1 {
		return 0, false
	}
	overs := make([]float64, len(ests))
	unders := make([]float64, len(ests))
	for i, e := range ests {
		overs[i] = float64(e.Over())
		unders[i] = float64(e.Under())
	}
	m := kthSmallest(overs, f+1)
	mm := kthLargest(unders, f+1)
	if math.IsInf(m, 0) || math.IsInf(mm, 0) {
		return 0, false
	}
	return simtime.Duration((math.Min(m, 0) + math.Max(mm, 0)) / 2), true
}

// BoundedCFBuilder adapts the node to the scenario engine. maxCorrection of
// zero derives the Fetzer–Cristian-flavored default 4ε.
func BoundedCFBuilder(maxCorrection simtime.Duration) scenario.Builder {
	return func(ctx scenario.BuildContext) scenario.Starter {
		mc := maxCorrection
		if mc == 0 {
			mc = 4 * ctx.Bounds.Eps
		}
		return NewBoundedCF(ctx.Harness, BoundedCFConfig{
			F:             ctx.Scenario.F,
			SyncInt:       ctx.Scenario.SyncInt,
			MaxWait:       ctx.Scenario.MaxWait,
			MaxCorrection: mc,
			FirstSync:     simtime.Duration(ctx.Rand.Float64() * float64(ctx.Scenario.SyncInt)),
		}, ctx.Peers)
	}
}

// kthSmallest returns the k-th smallest element (1-indexed). Baselines share
// this plain-sort implementation; the hot-path quickselect lives in core.
func kthSmallest(xs []float64, k int) float64 {
	cp := append([]float64(nil), xs...)
	insertionSort(cp)
	return cp[k-1]
}

func kthLargest(xs []float64, k int) float64 {
	return kthSmallest(xs, len(xs)-k+1)
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
