package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

// TestRunWithObserver checks the observability contract the public API
// documents: a run with an observer attached reports sync rounds and
// message totals in its Recorder, emits one round event per completed Sync,
// and tallies event kinds into Result.EventCounts.
func TestRunWithObserver(t *testing.T) {
	ring := obs.NewRing(10_000)
	o := obs.NewObserver(ring)
	s := baseScenario()
	s.Duration = 3 * simtime.Minute
	s.Observer = o
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := o.Recorder()
	if rec.SyncRounds.Load() == 0 {
		t.Error("no sync rounds recorded")
	}
	if rec.MessagesSent.Load() == 0 || rec.MessagesReceived.Load() == 0 {
		t.Errorf("message counters empty: sent=%d received=%d",
			rec.MessagesSent.Load(), rec.MessagesReceived.Load())
	}
	if int(rec.MessagesSent.Load()) != res.MsgsSent {
		t.Errorf("recorder sent %d != result %d", rec.MessagesSent.Load(), res.MsgsSent)
	}
	if res.Obs != o {
		t.Error("Result.Obs does not point at the attached observer")
	}
	if res.EventCounts[obs.KindRound] != rec.SyncRounds.Load() {
		t.Errorf("round events %d != sync rounds %d",
			res.EventCounts[obs.KindRound], rec.SyncRounds.Load())
	}
	rounds := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KindRound {
			rounds++
			if _, ok := e.Fields["delta"]; !ok {
				t.Fatalf("round event missing delta field: %+v", e)
			}
		}
	}
	if rounds == 0 {
		t.Error("ring captured no round events")
	}
}

// TestRunWithEventSinkOnly exercises the convenience path: EventSink without
// an explicit Observer gets a fresh observer created for the run.
func TestRunWithEventSinkOnly(t *testing.T) {
	var b strings.Builder
	sink := obs.NewJSONL(&b)
	s := baseScenario()
	s.Duration = 2 * simtime.Minute
	s.EventSink = sink
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("no observer created for EventSink")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	// The JSONL stream must parse with the trace package — the contract
	// cmd/tracestat relies on for syncsim -trace-out output.
	events, err := trace.Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("event stream empty")
	}
	sum := trace.Summarize(events)
	if sum.ByKind[string(obs.KindRound)] == 0 {
		t.Errorf("summary tallied no round events: %v", sum.ByKind)
	}
}

// TestTraceSurvivesMidStreamClose kills the JSONL trace mid-run — exactly
// what the syncsim/syncnode SIGINT handlers do — and re-parses the file: the
// sink's single-encoder design must leave it ending on a complete line, so
// an interrupted run is still fully analyzable with tracestat.
func TestTraceSurvivesMidStreamClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONL(fh)
	o := obs.NewObserver(sink)
	o.AddSpanSink(sink)
	var seen atomic.Int64
	o.AddSink(obs.SinkFunc(func(obs.Event) {
		if seen.Add(1) == 25 { // mid-stream: well before the run ends
			if err := sink.Close(); err != nil {
				t.Errorf("mid-stream close: %v", err)
			}
		}
	}))

	s := baseScenario()
	s.Duration = 10 * simtime.Minute
	s.Observer = o
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	if total := seen.Load(); total <= 25 {
		t.Fatalf("run emitted only %d events; close was not mid-stream", total)
	}

	fh2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh2.Close()
	events, err := trace.Read(fh2)
	if err != nil {
		t.Fatalf("interrupted trace does not re-parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("interrupted trace is empty")
	}
	spans := 0
	for _, e := range events {
		if e.Kind == trace.KindSpan {
			spans++
		}
	}
	if spans == 0 {
		t.Error("interrupted trace captured no span records")
	}
	// Raw check the complete-line guarantee directly: the file must end in
	// exactly one trailing newline.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Error("interrupted trace does not end on a complete line")
	}
}

// TestRunWithAdversaryEmitsCorruptionEvents checks corruption/release events
// reach the sink and the tally.
func TestRunWithAdversaryEmitsCorruptionEvents(t *testing.T) {
	s := baseScenario()
	s.Adversary = adversary.Rotate(s.N, s.F, simtime.Time(3*simtime.Minute),
		30*simtime.Second, s.Theta, 2,
		func(int) protocol.Behavior { return adversary.Crash{} })
	ring := obs.NewRing(100_000)
	s.Observer = obs.NewObserver(ring)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(s.Adversary.Corruptions))
	if want == 0 {
		t.Fatal("rotation schedule produced no corruptions")
	}
	if res.EventCounts[obs.KindCorrupt] != want || res.EventCounts[obs.KindRelease] != want {
		t.Errorf("corrupt/release tallies = %d/%d, want %d",
			res.EventCounts[obs.KindCorrupt], res.EventCounts[obs.KindRelease], want)
	}
}
