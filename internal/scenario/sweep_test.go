package scenario

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"

	"clocksync/internal/des"
	"clocksync/internal/simtime"
)

func TestSweepRunsAllSeedsConcurrently(t *testing.T) {
	mk := func(int64) Scenario {
		s := baseScenario()
		s.Duration = 3 * simtime.Minute
		return s
	}
	seeds := []int64{1, 2, 3, 4}
	results, err := Sweep(mk, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	distinct := map[simtime.Duration]bool{}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
		if r.Scenario.Seed != seeds[i] {
			t.Fatalf("result %d has seed %d", i, r.Scenario.Seed)
		}
		distinct[r.Report.MaxDeviation] = true
	}
	if len(distinct) < 2 {
		t.Fatal("all seeds produced identical deviations — seeds not applied")
	}
	worst := WorstDeviation(results)
	for _, r := range results {
		if r.Report.MaxDeviation > worst.Report.MaxDeviation {
			t.Fatal("WorstDeviation did not pick the maximum")
		}
	}
}

func TestSweepMatchesSequentialRuns(t *testing.T) {
	// Concurrency must not change results: each seed's sweep result equals
	// the same scenario run sequentially.
	mk := func(int64) Scenario {
		s := baseScenario()
		s.Duration = 2 * simtime.Minute
		return s
	}
	results, err := Sweep(mk, []int64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range []int64{5, 6} {
		s := mk(seed)
		s.Seed = seed
		seq, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Report.MaxDeviation != results[i].Report.MaxDeviation ||
			seq.MsgsSent != results[i].MsgsSent {
			t.Fatalf("seed %d: sweep and sequential runs differ", seed)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	mk := func(seed int64) Scenario {
		s := baseScenario()
		if seed == 2 {
			s.N = 0 // invalid
		}
		return s
	}
	results, err := Sweep(mk, []int64{1, 2})
	if err == nil {
		t.Fatal("sweep swallowed an error")
	}
	if !strings.Contains(err.Error(), "seed 2") {
		t.Errorf("error does not name the failed seed: %v", err)
	}
	// Partial results: the good seed's result survives, the bad one is nil.
	if len(results) != 2 {
		t.Fatalf("got %d result slots, want 2", len(results))
	}
	if results[0] == nil {
		t.Error("successful seed's result discarded")
	}
	if results[1] != nil {
		t.Error("failed seed produced a result")
	}
	if worst := WorstDeviation(results); worst != results[0] {
		t.Error("WorstDeviation mishandles nil slots")
	}
}

func TestSweepAllSeedsFail(t *testing.T) {
	mk := func(int64) Scenario {
		s := baseScenario()
		s.N = 0
		return s
	}
	results, err := Sweep(mk, []int64{1, 2, 3})
	if err == nil {
		t.Fatal("sweep swallowed errors")
	}
	for _, want := range []string{"seed 1", "seed 2", "seed 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if WorstDeviation(results) != nil {
		t.Error("WorstDeviation invented a result from all-nil input")
	}
}

// goroutineID parses the running goroutine's ID out of its stack header —
// test-only plumbing for pinning the worker-pool bound.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// "goroutine 123 [running]:" → "123"
	rest := strings.TrimPrefix(string(buf), "goroutine ")
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return rest
}

// TestSweepGoroutineBound pins the worker-pool regression: a sweep over many
// seeds must run on at most GOMAXPROCS goroutines, not one goroutine per
// seed. Each mk call records its goroutine; the distinct count is exact (no
// sampling races), so a return to goroutine-per-seed fails deterministically.
func TestSweepGoroutineBound(t *testing.T) {
	var mu sync.Mutex
	workers := map[string]bool{}
	mk := func(int64) Scenario {
		mu.Lock()
		workers[goroutineID()] = true
		mu.Unlock()
		s := baseScenario()
		s.Duration = 30 * simtime.Second
		return s
	}
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if _, err := Sweep(mk, seeds); err != nil {
		t.Fatal(err)
	}
	if got, max := len(workers), runtime.GOMAXPROCS(0); got > max {
		t.Fatalf("sweep used %d goroutines for %d seeds, want <= GOMAXPROCS (%d)",
			got, len(seeds), max)
	}
}

// TestSweepSimReuseReplaysByteIdentically pins the ReuseSim contract at the
// scenario level: running a scenario on a simulator dirtied by a different
// seed must produce a byte-identical trace to a fresh-simulator run.
func TestSweepSimReuseReplaysByteIdentically(t *testing.T) {
	run := func(seed int64, sim *des.Sim) []byte {
		var buf bytes.Buffer
		s := baseScenario()
		s.Seed = seed
		s.Duration = 2 * simtime.Minute
		s.TraceWriter = &buf
		s.ReuseSim = sim
		if _, err := Run(s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	fresh := run(42, nil)

	sim := des.New(0)
	run(7, sim) // dirty the arena with a different seed's full run
	reused := run(42, sim)

	if !bytes.Equal(fresh, reused) {
		t.Fatalf("reused-simulator trace differs from fresh run:\nfresh  %d bytes\nreused %d bytes",
			len(fresh), len(reused))
	}
}

// TestSweepMidFailureOrderingAndJoin pins the documented partial-failure
// contract precisely: failing seeds in the *middle* of a sweep leave nil
// slots at exactly their indices (order preserved around them), and the
// returned error is an errors.Join whose unwrapped parts name exactly the
// failed seeds, in seed order.
func TestSweepMidFailureOrderingAndJoin(t *testing.T) {
	seeds := []int64{10, 11, 12, 13, 14}
	bad := map[int64]bool{11: true, 13: true}
	mk := func(seed int64) Scenario {
		s := baseScenario()
		s.Duration = 2 * simtime.Minute
		if bad[seed] {
			s.N = 0 // fails validation inside Run
		}
		return s
	}
	results, err := Sweep(mk, seeds)
	if err == nil {
		t.Fatal("sweep swallowed mid-sweep failures")
	}
	if len(results) != len(seeds) {
		t.Fatalf("got %d slots, want %d", len(results), len(seeds))
	}
	for i, seed := range seeds {
		if bad[seed] {
			if results[i] != nil {
				t.Errorf("slot %d (failed seed %d) non-nil", i, seed)
			}
			continue
		}
		if results[i] == nil {
			t.Errorf("slot %d (good seed %d) is nil", i, seed)
			continue
		}
		if got := results[i].Scenario.Seed; got != seed {
			t.Errorf("slot %d holds seed %d, want %d — ordering broken", i, got, seed)
		}
	}

	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("sweep error is not an errors.Join: %T", err)
	}
	parts := joined.Unwrap()
	if len(parts) != 2 {
		t.Fatalf("joined error has %d parts, want 2: %v", len(parts), err)
	}
	for i, want := range []string{"seed 11", "seed 13"} {
		if !strings.Contains(parts[i].Error(), want) {
			t.Errorf("part %d = %q, want mention of %q", i, parts[i], want)
		}
	}
}
