package scenario

import (
	"fmt"
	"sync"
)

// Sweep runs independently-built scenarios, one per seed, concurrently, and
// returns the results in seed order. Simulations are single-threaded and
// fully independent, so a sweep parallelizes perfectly across cores;
// experiments use it to report worst-over-seeds numbers instead of one
// lucky run.
//
// mk must build a fresh Scenario per call: scenarios can carry stateful
// values (adversary behaviors with internal state, closure-based delay
// models), and sharing those across concurrent runs would race.
func Sweep(mk func(seed int64) Scenario, seeds []int64) ([]*Result, error) {
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := mk(seed)
			s.Seed = seed
			if s.Name != "" {
				s.Name = fmt.Sprintf("%s/seed%d", s.Name, seed)
			}
			results[i], errs[i] = Run(s)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// WorstDeviation returns the result with the largest measured deviation —
// the conservative representative of a sweep.
func WorstDeviation(results []*Result) *Result {
	var worst *Result
	for _, r := range results {
		if worst == nil || r.Report.MaxDeviation > worst.Report.MaxDeviation {
			worst = r
		}
	}
	return worst
}
