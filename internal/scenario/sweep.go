package scenario

import (
	"errors"
	"fmt"
	"sync"
)

// Sweep runs independently-built scenarios, one per seed, concurrently, and
// returns the results in seed order. Simulations are single-threaded and
// fully independent, so a sweep parallelizes perfectly across cores;
// experiments use it to report worst-over-seeds numbers instead of one
// lucky run.
//
// When some seeds fail, Sweep still returns every successful result (failed
// seeds leave a nil slot, preserving seed order) alongside an error joining
// one descriptive error per failed seed — so an experiment can report which
// seed diverged instead of discarding the whole sweep.
//
// mk must build a fresh Scenario per call: scenarios can carry stateful
// values (adversary behaviors with internal state, closure-based delay
// models), and sharing those across concurrent runs would race.
func Sweep(mk func(seed int64) Scenario, seeds []int64) ([]*Result, error) {
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := mk(seed)
			s.Seed = seed
			if s.Name != "" {
				s.Name = fmt.Sprintf("%s/seed%d", s.Name, seed)
			}
			results[i], errs[i] = Run(s)
		}()
	}
	wg.Wait()
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("seed %d: %w", seeds[i], err))
		}
	}
	return results, errors.Join(failures...)
}

// WorstDeviation returns the result with the largest measured deviation —
// the conservative representative of a sweep. Nil results (failed seeds in
// a partial sweep) are skipped.
func WorstDeviation(results []*Result) *Result {
	var worst *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if worst == nil || r.Report.MaxDeviation > worst.Report.MaxDeviation {
			worst = r
		}
	}
	return worst
}
