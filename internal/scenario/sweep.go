package scenario

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"clocksync/internal/des"
)

// newWorkerSim builds the simulator a sweep worker reuses across its seeds.
// The construction seed is irrelevant: Run resets the simulator to each
// scenario's seed before running it.
func newWorkerSim() *des.Sim { return des.New(0) }

// Sweep runs independently-built scenarios, one per seed, concurrently, and
// returns the results in seed order. Simulations are single-threaded and
// fully independent, so a sweep parallelizes perfectly across cores;
// experiments use it to report worst-over-seeds numbers instead of one
// lucky run.
//
// Concurrency draws from the process-wide simulation worker pool
// (des.AcquireWorkers): the calling goroutine always works, plus up to
// min(GOMAXPROCS−1, len(seeds)−1) helpers if the pool has tokens free. The
// pool is shared with campaign.Run and the sharded simulator's window
// workers, so nested parallelism — a sweep of sharded runs, a campaign
// launched next to a sweep — composes to at most GOMAXPROCS simulation
// goroutines per entry point instead of multiplying
// (TestWorkerBudgetComposes pins the ceiling). Each worker reuses one
// simulator arena across its seeds via ReuseSim, so steady-state sweeping
// allocates per run, not per event.
//
// When some seeds fail, Sweep still returns every successful result (failed
// seeds leave a nil slot, preserving seed order) alongside an error joining
// one descriptive error per failed seed — so an experiment can report which
// seed diverged instead of discarding the whole sweep.
//
// mk must build a fresh Scenario per call: scenarios can carry stateful
// values (adversary behaviors with internal state, closure-based delay
// models), and sharing those across concurrent runs would race.
func Sweep(mk func(seed int64) Scenario, seeds []int64) ([]*Result, error) {
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var next atomic.Int64
	work := func() {
		sim := newWorkerSim()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(seeds) {
				return
			}
			seed := seeds[i]
			s := mk(seed)
			s.Seed = seed
			if s.Name != "" {
				s.Name = fmt.Sprintf("%s/seed%d", s.Name, seed)
			}
			if s.ReuseSim == nil && s.Shards == 0 && s.ReuseSharded == nil {
				s.ReuseSim = sim
			}
			results[i], errs[i] = Run(s)
		}
	}
	helpers := des.AcquireWorkers(len(seeds) - 1)
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller is the implicit first worker
	wg.Wait()
	des.ReleaseWorkers(helpers)
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("seed %d: %w", seeds[i], err))
		}
	}
	return results, errors.Join(failures...)
}

// WorstDeviation returns the result with the largest measured deviation —
// the conservative representative of a sweep. Nil results (failed seeds in
// a partial sweep) are skipped.
func WorstDeviation(results []*Result) *Result {
	var worst *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if worst == nil || r.Report.MaxDeviation > worst.Report.MaxDeviation {
			worst = r
		}
	}
	return worst
}
