package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// TestRandomInModelScenariosHoldTheorem5 fuzzes the whole stack: random
// cluster sizes, fault budgets, drift rates, delay bounds and f-limited
// rotating adversaries — every in-model run must satisfy the Theorem 5
// deviation bound, recover every released processor within Θ, and keep
// good-processor discontinuities under ψ.
func TestRandomInModelScenariosHoldTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz loop simulates dozens of cluster-hours")
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(13)
		f := 1
		if max := (n - 1) / 3; max > 1 {
			f = 1 + rng.Intn(max)
		}
		delta := []simtime.Duration{5 * simtime.Millisecond, 20 * simtime.Millisecond,
			50 * simtime.Millisecond, 100 * simtime.Millisecond}[rng.Intn(4)]
		rho := []float64{0, 1e-6, 1e-4, 5e-4}[rng.Intn(4)]
		syncInt := simtime.Duration(5+rng.Intn(15)) * simtime.Second
		theta := 4 * simtime.Minute

		s := Scenario{
			Name:       "fuzz",
			Seed:       int64(trial),
			N:          n,
			F:          f,
			Duration:   30 * simtime.Minute,
			Theta:      theta,
			Rho:        rho,
			Delay:      network.NewUniformDelay(delta/10, delta),
			SyncInt:    syncInt,
			InitSpread: simtime.Duration(rng.Float64()) * 200 * simtime.Millisecond,
		}
		// A random but always-f-limited adversary, finishing Θ before the
		// end so every recovery is measurable.
		if rng.Intn(4) > 0 {
			dwell := simtime.Duration(10+rng.Intn(40)) * simtime.Second
			step := simtime.Duration(float64(theta+dwell)/float64(f)) + simtime.Millisecond
			events := int(float64(s.Duration-4*theta) / float64(step))
			if events > 0 {
				s.Adversary = adversary.Rotate(n, f, simtime.Time(2*theta), dwell, theta, events,
					func(node int) protocol.Behavior {
						switch node % 3 {
						case 0:
							return adversary.ClockSmash{Offset: simtime.Duration(rng.Float64()*100 - 50)}
						case 1:
							return adversary.Crash{}
						default:
							return adversary.RandomLiar{Amplitude: simtime.Duration(rng.Float64() * 1000)}
						}
					})
			}
		}

		res, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d (n=%d f=%d): %v", trial, n, f, err)
		}
		if res.Report.MaxDeviation > res.Bounds.MaxDeviation {
			t.Errorf("trial %d (n=%d f=%d ρ=%g δ=%v): deviation %v > bound %v",
				trial, n, f, rho, delta, res.Report.MaxDeviation, res.Bounds.MaxDeviation)
		}
		// Per-step adjustments of good, warmed-up processors are bounded by
		// Δ/2 + ε (half the deviation envelope plus one reading error).
		if res.Report.MaxDiscontinuity > res.Bounds.MaxStep {
			t.Errorf("trial %d: single adjustment %v > per-step bound %v",
				trial, res.Report.MaxDiscontinuity, res.Bounds.MaxStep)
		}
		// Net departure from the rate envelope (Equation 3 drawdown/runup)
		// is bounded by the deviation envelope itself: a clock can wander at
		// most across the good pack. (The literal ψ = ε + C/2 reading of the
		// OCR'd abstract is tighter than a random walk within the pack
		// allows; see DESIGN.md.)
		if res.Report.AccuracyDrawdown > res.Bounds.MaxDeviation {
			t.Errorf("trial %d: accuracy drawdown %v > Δ %v",
				trial, res.Report.AccuracyDrawdown, res.Bounds.MaxDeviation)
		}
		if res.Report.AccuracyRunup > res.Bounds.MaxDeviation {
			t.Errorf("trial %d: accuracy runup %v > Δ %v",
				trial, res.Report.AccuracyRunup, res.Bounds.MaxDeviation)
		}
		for _, rv := range res.Report.Recoveries {
			if !rv.Ok {
				t.Errorf("trial %d: node %d released at %v never recovered",
					trial, rv.Node, rv.ReleasedAt)
			} else if rv.Time() > s.Theta {
				t.Errorf("trial %d: node %d recovery took %v > Θ", trial, rv.Node, rv.Time())
			}
		}
	}
}

// FuzzLivenetNetSchedule fuzzes the chaos-plan generator behind the livenet
// fault-injection harness: for any seed and any sane parameter combination,
// GenNetSchedule must produce a plan that (a) validates as f-limited under
// Definition 2, (b) is a pure function of its inputs — byte-for-byte
// reproducible — and (c) becomes invalid the moment the budget is actually
// exceeded (an all-nodes crash window must never slip past Validate).
// GenNetSchedule self-checks and panics on an internal inconsistency, so a
// crash here is a finding, not noise.
func FuzzLivenetNetSchedule(f *testing.F) {
	f.Add(int64(1), uint8(7), uint8(2), uint16(16000), uint16(4000), uint32(60000), uint32(20000), byte(12), byte(5), byte(5))
	f.Add(int64(42), uint8(4), uint8(1), uint16(8000), uint16(0), uint32(120000), uint32(0), byte(0), byte(0), byte(0))
	f.Add(int64(-9), uint8(2), uint8(1), uint16(1), uint16(1), uint32(1), uint32(1), byte(255), byte(255), byte(255))
	f.Fuzz(func(t *testing.T, seed int64, rawN, rawF uint8, thetaMs, dwellMs uint16, horizonMs, scrambleMs uint32, dropB, dupB, reorderB byte) {
		n := 2 + int(rawN)%15
		fl := 1 + int(rawF)%(n-1)
		cfg := adversary.GenNetConfig{
			N:        n,
			F:        fl,
			Theta:    simtime.Duration(1+int(thetaMs)) * simtime.Millisecond,
			Start:    0,
			Horizon:  simtime.Time(horizonMs) * simtime.Time(simtime.Millisecond),
			Dwell:    simtime.Duration(dwellMs) * simtime.Millisecond,
			Scramble: simtime.Duration(scrambleMs) * simtime.Millisecond,
			Chaos: adversary.PacketChaos{
				DropP:    float64(dropB) / 256 * 0.99,
				DupP:     float64(dupB) / 256 * 0.99,
				ReorderP: float64(reorderB) / 256 * 0.99,
			},
		}
		s := adversary.GenNetSchedule(seed, cfg)
		if err := s.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
			t.Fatalf("generated schedule does not validate: %v\ncfg=%+v", err, cfg)
		}
		again := adversary.GenNetSchedule(seed, cfg)
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("schedule not reproducible from seed %d:\n%+v\nvs\n%+v", seed, s, again)
		}
		// Over-budget mutation: crash every node at once. n > f always, so
		// Validate must reject it.
		window := adversary.NetFault{Kind: adversary.FaultCrash, From: simtime.Time(cfg.Theta), To: simtime.Time(cfg.Theta).Add(simtime.Millisecond)}
		if len(s.Faults) > 0 {
			window.From, window.To = s.Faults[0].From, s.Faults[0].To
		}
		for node := 0; node < n; node++ {
			window.Nodes = append(window.Nodes, node)
		}
		over := adversary.NetSchedule{Chaos: s.Chaos, Faults: append(append([]adversary.NetFault{}, s.Faults...), window)}
		if err := over.Validate(cfg.N, cfg.F, cfg.Theta); err == nil {
			t.Fatalf("all-%d-nodes crash window accepted under f=%d", n, fl)
		}
	})
}
