package scenario

import (
	"math"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/core"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

func baseScenario() Scenario {
	return Scenario{
		Name:       "test",
		Seed:       7,
		N:          7,
		F:          2,
		Duration:   10 * simtime.Minute,
		Theta:      5 * simtime.Minute,
		Rho:        1e-4,
		InitSpread: 200 * simtime.Millisecond,
	}
}

func TestRunFaultFreeMeetsBound(t *testing.T) {
	res, err := Run(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxDeviation > res.Bounds.MaxDeviation {
		t.Fatalf("measured deviation %v exceeds Theorem 5 bound %v",
			res.Report.MaxDeviation, res.Bounds.MaxDeviation)
	}
	if res.Report.MaxDeviation <= 0 {
		t.Fatal("suspiciously zero deviation")
	}
	if res.MsgsSent == 0 {
		t.Fatal("no traffic recorded")
	}
	for i, st := range res.SyncStats {
		if st == nil || st.Syncs == 0 {
			t.Fatalf("node %d ran no Syncs: %+v", i, st)
		}
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	a, err := Run(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.MaxDeviation != b.Report.MaxDeviation ||
		a.MsgsSent != b.MsgsSent ||
		a.Report.MaxDiscontinuity != b.Report.MaxDiscontinuity {
		t.Fatalf("same seed, different results: %+v vs %+v", a.Report, b.Report)
	}
	s := baseScenario()
	s.Seed = 8
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.MaxDeviation == c.Report.MaxDeviation && a.MsgsSent == c.MsgsSent {
		t.Fatal("different seed produced identical run — RNG not threaded")
	}
}

func TestRunWithMobileAdversary(t *testing.T) {
	s := baseScenario()
	s.Duration = 30 * simtime.Minute
	s.Theta = 2 * simtime.Minute
	s.Adversary = adversary.Rotate(s.N, s.F, simtime.Time(3*simtime.Minute),
		30*simtime.Second, s.Theta, 8,
		func(int) protocol.Behavior { return adversary.ClockSmash{Offset: 30 * simtime.Second} })
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxDeviation > res.Bounds.MaxDeviation {
		t.Fatalf("deviation %v exceeds bound %v under mobile adversary",
			res.Report.MaxDeviation, res.Bounds.MaxDeviation)
	}
	if len(res.Report.Recoveries) != 8 {
		t.Fatalf("expected 8 recovery records, got %d", len(res.Report.Recoveries))
	}
	for _, rv := range res.Report.Recoveries {
		if !rv.Ok {
			t.Fatalf("node %d released at %v never recovered", rv.Node, rv.ReleasedAt)
		}
		if rv.Time() > simtime.Duration(float64(s.Theta)) {
			t.Fatalf("node %d recovery took %v > Θ", rv.Node, rv.Time())
		}
	}
}

func TestRunRejectsOverpoweredAdversary(t *testing.T) {
	s := baseScenario()
	s.Adversary = adversary.Static([]int{0, 1, 2}, 10, 20, // 3 > f=2
		func(int) protocol.Behavior { return adversary.Crash{} })
	if _, err := Run(s); err == nil {
		t.Fatal("over-powered adversary accepted")
	}
	s.UnsafeAdversary = true
	if _, err := Run(s); err != nil {
		t.Fatalf("UnsafeAdversary must bypass validation: %v", err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero N", func(s *Scenario) { s.N = 0 }},
		{"zero duration", func(s *Scenario) { s.Duration = 0 }},
		{"n<3f+1", func(s *Scenario) { s.F = 3 }},
		{"K too small", func(s *Scenario) { s.Theta = 30 * simtime.Second }},
		{"topology mismatch", func(s *Scenario) { s.Topology = network.NewFullMesh(3) }},
	}
	for _, tc := range cases {
		s := baseScenario()
		tc.mutate(&s)
		if _, err := Run(s); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSkipValidationAllowsOutOfModelRuns(t *testing.T) {
	s := baseScenario()
	s.F = 3 // n = 3f−2 < 3f+1: out of model
	s.SkipValidation = true
	if _, err := Run(s); err != nil {
		t.Fatalf("SkipValidation run failed: %v", err)
	}
}

func TestExplicitParametersRespected(t *testing.T) {
	s := baseScenario()
	s.SyncInt = 5 * simtime.Second
	s.MaxWait = 200 * simtime.Millisecond
	s.WayOff = 3 * simtime.Second
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// With SyncInt 5s over 600s each node completes ≈ 120 Syncs.
	for i, st := range res.SyncStats {
		if st.Syncs < 100 || st.Syncs > 130 {
			t.Fatalf("node %d: %d Syncs with 5 s interval over 10 min", i, st.Syncs)
		}
	}
}

func TestCustomBuilderIsUsed(t *testing.T) {
	s := baseScenario()
	s.Duration = 2 * simtime.Minute
	built := 0
	s.Builder = func(ctx BuildContext) Starter {
		built++
		return SyncBuilder(nil)(ctx)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if built != s.N {
		t.Fatalf("builder called %d times, want %d", built, s.N)
	}
	// SyncBuilder produces *core.Node, so stats must be populated.
	for i, st := range res.SyncStats {
		if st == nil {
			t.Fatalf("node %d stats missing", i)
		}
	}
}

func TestSyncBuilderMutation(t *testing.T) {
	s := baseScenario()
	s.Duration = 2 * simtime.Minute
	var sawWayOff simtime.Duration
	s.Builder = SyncBuilder(func(cfg *core.Config, ctx BuildContext) {
		cfg.WayOff = 42 * simtime.Second
		sawWayOff = cfg.WayOff
	})
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	if sawWayOff != 42*simtime.Second {
		t.Fatal("mutation hook not applied")
	}
}

func TestInitialBiasesAndSlopesPinned(t *testing.T) {
	s := baseScenario()
	s.N, s.F = 4, 1
	s.InitialBiases = []simtime.Duration{1, 2, 3, 4}
	s.Slopes = []float64{1, 1, 1, 1}
	s.Duration = simtime.Minute
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Recorder.Samples()[0]
	// At the first sample (t=1s, before most nodes synced) biases are near
	// their pinned values.
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(float64(first.Biases[i])-want) > 1.6 {
			t.Fatalf("bias %d: got %v, want ≈%v", i, first.Biases[i], want)
		}
	}
}

func TestTickGranularityRun(t *testing.T) {
	// Quantized hardware clocks (1 ms ticks) must still synchronize within
	// the bound — the tick is two orders below δ = 50 ms.
	s := baseScenario()
	s.Tick = simtime.Millisecond
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxDeviation > res.Bounds.MaxDeviation {
		t.Fatalf("ticking clocks broke the bound: %v > %v",
			res.Report.MaxDeviation, res.Bounds.MaxDeviation)
	}
}

func TestGraphTopologyRun(t *testing.T) {
	// The protocol must run on a non-complete graph (nodes only estimate
	// neighbors). Two cliques of 3f+1 joined by a matching: within each
	// clique, deviation must stay small.
	f := 1
	g := network.NewTwoCliques(f)
	s := baseScenario()
	s.N = g.N()
	s.F = f
	s.Topology = g
	s.Duration = 10 * simtime.Minute
	s.InitSpread = 100 * simtime.Millisecond
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Recorder.Samples()[len(res.Recorder.Samples())-1]
	size := 3*f + 1
	for c := 0; c < 2; c++ {
		var cliqueBiases []float64
		for i := c * size; i < (c+1)*size; i++ {
			cliqueBiases = append(cliqueBiases, float64(last.Biases[i]))
		}
		sp := maxf(cliqueBiases) - minf(cliqueBiases)
		if sp > float64(res.Bounds.MaxDeviation) {
			t.Fatalf("clique %d intra-deviation %v exceeds bound", c, sp)
		}
	}
}

func minf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
