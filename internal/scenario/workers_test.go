package scenario

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/simtime"
)

func shardedSweepScenario() Scenario {
	return Scenario{
		Name: "compose", N: 16, F: 2,
		Duration: simtime.Minute, Theta: 2 * simtime.Minute,
		Rho:        1e-4,
		Delay:      network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond),
		InitSpread: 100 * simtime.Millisecond,
		SyncInt:    10 * simtime.Second,
		Shards:     4,
	}
}

// TestWorkerBudgetComposes pins the oversubscription guard: a Sweep whose
// runs are themselves sharded draws every extra goroutine — sweep helpers
// and shard window helpers alike — from the one process-wide pool of
// GOMAXPROCS−1 tokens, so the peak goroutine count stays within GOMAXPROCS
// of the baseline instead of multiplying (sweep workers × shards).
func TestWorkerBudgetComposes(t *testing.T) {
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	if _, err := Sweep(func(int64) Scenario { return shardedSweepScenario() }, seeds); err != nil {
		t.Fatal(err)
	}
	close(stop)
	mon.Wait()

	// Budget: the caller plus at most GOMAXPROCS−1 pooled helpers, the
	// monitor, and a small slack for runtime-internal goroutines.
	budget := int64(baseline + runtime.GOMAXPROCS(0) + 3)
	if got := peak.Load(); got > budget {
		t.Fatalf("peak goroutines %d over budget %d (baseline %d, GOMAXPROCS %d) — worker pools are stacking",
			got, budget, baseline, runtime.GOMAXPROCS(0))
	}
}

// TestShardedRunsWithDrainedPool: when the worker pool is exhausted (e.g. a
// surrounding sweep owns every token), sharded runs must fall back to inline
// execution on the caller's goroutine and still produce identical results.
func TestShardedRunsWithDrainedPool(t *testing.T) {
	want := observe(t, 4, 0)

	held := des.AcquireWorkers(1 << 20)
	defer des.ReleaseWorkers(held)

	got := observe(t, 4, 0)
	if got.report != want.report || got.msgs != want.msgs {
		t.Fatalf("drained-pool run diverged: %s/%d msgs, want %s/%d",
			got.report, got.msgs, want.report, want.msgs)
	}
}
