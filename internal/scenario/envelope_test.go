package scenario

import (
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// TestLemma7EnvelopeContainment validates the proof's Property 1 on a real
// trace: for every analysis interval [iT, (i+1)T], the biases of processors
// that are good throughout stay inside the drift-widened envelope anchored
// at the interval start. The proof grants the envelope slack D > 8ε; each
// Sync can move a bias by at most the reading error beyond its peers'
// range, so a 2ε margin plus drift widening must never be escaped. This ties
// the Appendix A envelope algebra to the simulator output.
func TestLemma7EnvelopeContainment(t *testing.T) {
	theta := 4 * simtime.Minute
	s := Scenario{
		Name:       "lemma7",
		Seed:       17,
		N:          7,
		F:          2,
		Duration:   40 * simtime.Minute,
		Theta:      theta,
		Rho:        1e-4,
		InitSpread: 100 * simtime.Millisecond,
		Adversary: adversary.Rotate(7, 2, simtime.Time(2*theta), 30*simtime.Second, theta, 6,
			func(int) protocol.Behavior { return adversary.ClockSmash{Offset: 10} }),
		SamplePeriod: simtime.Second,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Recorder.Samples()
	tT := float64(res.Bounds.T)
	margin := 2 * res.Bounds.Eps

	intervals := 0
	for start := 0.0; start+tT <= float64(s.Duration); start += tT {
		// Collect the samples of this interval.
		var inWindow []int
		for idx, smp := range samples {
			if float64(smp.At) >= start && float64(smp.At) < start+tT {
				inWindow = append(inWindow, idx)
			}
		}
		if len(inWindow) < 3 {
			continue
		}
		// Good throughout the interval = good (Θ-lookback) at its last sample.
		lastSample := samples[inWindow[len(inWindow)-1]]
		firstSample := samples[inWindow[0]]
		var members []int
		lo, hi := simtime.Duration(0), simtime.Duration(0)
		first := true
		for node := range lastSample.Good {
			if !lastSample.Good[node] || !firstSample.Good[node] {
				continue
			}
			members = append(members, node)
			b := firstSample.Biases[node]
			if first {
				lo, hi, first = b, b, false
				continue
			}
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		if len(members) < s.N-s.F {
			continue // adversary transition window; Claim 8 handles it with G_i bookkeeping
		}
		env := analysis.NewEnvelope(firstSample.At, lo, hi, s.Rho).Extend(margin)
		intervals++
		for _, idx := range inWindow {
			smp := samples[idx]
			for _, node := range members {
				if !env.Contains(smp.At, smp.Biases[node]) {
					elo, ehi := env.At(smp.At)
					t.Fatalf("interval at %v: node %d bias %v escaped envelope [%v, %v] at %v",
						start, node, smp.Biases[node], elo, ehi, smp.At)
				}
			}
		}
	}
	if intervals < 20 {
		t.Fatalf("only %d intervals validated — test harness broken", intervals)
	}
}

// TestEnvelopeContractionFromSpread validates the Lemma 7(ii) shape: a good
// set whose biases start spread out contracts per interval until it reaches
// the reading-error floor, and never widens far beyond the floor again.
func TestEnvelopeContractionFromSpread(t *testing.T) {
	s := Scenario{
		Name:       "contraction",
		Seed:       23,
		N:          7,
		F:          2,
		Duration:   10 * simtime.Minute,
		Theta:      4 * simtime.Minute,
		Rho:        1e-4,
		InitSpread: 600 * simtime.Millisecond,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Recorder.Samples()
	tT := float64(res.Bounds.T)
	floor := 4 * float64(res.Bounds.Eps)

	var widths []float64
	for start := 0.0; start+tT <= float64(s.Duration); start += tT {
		for _, smp := range samples {
			if float64(smp.At) >= start {
				widths = append(widths, float64(smp.Deviation))
				break
			}
		}
	}
	if len(widths) < 10 {
		t.Fatalf("too few intervals: %d", len(widths))
	}
	// Above the floor the spread must not grow from one interval to the
	// next (beyond measurement jitter), and it must reach the floor.
	reachedFloor := false
	for i := 1; i < len(widths); i++ {
		if widths[i-1] > floor && widths[i] > widths[i-1]*1.1+0.001 {
			t.Fatalf("interval %d: spread grew %v → %v while above the floor",
				i, widths[i-1], widths[i])
		}
		if widths[i] <= floor {
			reachedFloor = true
		}
	}
	if !reachedFloor {
		t.Fatalf("spread never reached the 4ε floor %v: %v", floor, widths)
	}
}
