package scenario

import (
	"testing"

	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/simtime"
)

// shardObservables is everything the shard-count independence contract
// promises is identical: the run report, traffic totals, and per-node
// protocol counters.
type shardObservables struct {
	report    string
	msgs      int
	bytes     int
	syncs     []int
	deltas    []simtime.Duration
	deviation simtime.Duration
}

func observe(t *testing.T, shards, samplePeers int) shardObservables {
	t.Helper()
	res, err := Run(Scenario{
		Name:        "shard-independence",
		Seed:        1234,
		N:           16,
		F:           2,
		Duration:    2 * simtime.Minute,
		Theta:       2 * simtime.Minute,
		Rho:         1e-4,
		Delay:       network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond),
		InitSpread:  100 * simtime.Millisecond,
		SyncInt:     10 * simtime.Second,
		Shards:      shards,
		SamplePeers: samplePeers,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := shardObservables{
		report:    res.Report.MaxDeviation.String() + "/" + res.Report.MeanDeviation.String() + "/" + res.Report.MaxAdjustment.String() + "/" + res.Report.MaxDiscontinuity.String(),
		msgs:      res.MsgsSent,
		bytes:     res.BytesSent,
		deviation: res.Report.MaxDeviation,
	}
	for _, st := range res.SyncStats {
		o.syncs = append(o.syncs, st.Syncs)
		o.deltas = append(o.deltas, st.LastDelta)
	}
	return o
}

// TestShardCountIndependence is the determinism half of the sharding
// contract: the same seed must produce identical observable results —
// reports, per-node stats, exact traffic counts — for shard counts 1, 4
// and 8, full-mesh and sampled alike. Exact float equality is intentional:
// every divergence in event ordering shows up here.
func TestShardCountIndependence(t *testing.T) {
	for _, samplePeers := range []int{0, 7} {
		base := observe(t, 1, samplePeers)
		if base.msgs == 0 || base.syncs[0] == 0 {
			t.Fatalf("samplePeers=%d: baseline run did nothing (msgs=%d)", samplePeers, base.msgs)
		}
		if base.deviation <= 0 {
			t.Fatalf("samplePeers=%d: baseline deviation %v not positive", samplePeers, base.deviation)
		}
		for _, shards := range []int{4, 8} {
			got := observe(t, shards, samplePeers)
			if got.report != base.report {
				t.Errorf("samplePeers=%d shards=%d: report %s, want %s", samplePeers, shards, got.report, base.report)
			}
			if got.msgs != base.msgs || got.bytes != base.bytes {
				t.Errorf("samplePeers=%d shards=%d: traffic %d msgs/%d bytes, want %d/%d",
					samplePeers, shards, got.msgs, got.bytes, base.msgs, base.bytes)
			}
			for i := range base.syncs {
				if got.syncs[i] != base.syncs[i] || got.deltas[i] != base.deltas[i] {
					t.Errorf("samplePeers=%d shards=%d node %d: syncs/lastDelta %d/%v, want %d/%v",
						samplePeers, shards, i, got.syncs[i], got.deltas[i], base.syncs[i], base.deltas[i])
				}
			}
		}
	}
}

// TestSamplingCutsTraffic: sparse estimation must send Θ(k/n) of the
// full-mesh message volume and still converge.
func TestSamplingCutsTraffic(t *testing.T) {
	full := observe(t, 1, 0)
	sampled := observe(t, 1, 7)
	if sampled.msgs >= full.msgs {
		t.Fatalf("sampling sent %d msgs, full mesh %d — no reduction", sampled.msgs, full.msgs)
	}
	// 15 peers full mesh vs 7 sampled: expect roughly half the traffic.
	if ratio := float64(sampled.msgs) / float64(full.msgs); ratio > 0.65 {
		t.Errorf("sampled/full traffic ratio %.2f, want ≤ 0.65", ratio)
	}
	// Precision degrades but must stay in the same order of magnitude.
	if sampled.deviation > 10*full.deviation {
		t.Errorf("sampled deviation %v blew past full-mesh %v", sampled.deviation, full.deviation)
	}
}

// TestShardedIncompatibleSurfaces: the serial-only surfaces must be
// rejected, not silently ignored.
func TestShardedIncompatibleSurfaces(t *testing.T) {
	base := Scenario{
		Name: "incompat", Seed: 1, N: 7, F: 2,
		Duration: simtime.Minute, Theta: 2 * simtime.Minute,
		Shards: 2,
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Check = true },
		func(s *Scenario) { s.TraceWriter = &discard{} },
		func(s *Scenario) { s.ReuseSim = des.New(0) },
	}
	for i, mutate := range bad {
		s := base
		mutate(&s)
		if _, err := Run(s); err == nil {
			t.Errorf("case %d: sharded run accepted a serial-only surface", i)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
