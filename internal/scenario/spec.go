package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"clocksync/internal/adversary"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// Spec is the JSON-serializable form of a Scenario, used by cmd/syncsim
// -config and by saved experiment definitions. Durations are in seconds.
//
// Protocols are referenced by name and resolved through the registry the
// caller passes to Build — the scenario package itself only knows the
// default "sync".
type Spec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	N int `json:"n"`
	F int `json:"f"`

	DurationSec float64 `json:"duration_sec"`
	ThetaSec    float64 `json:"theta_sec,omitempty"`
	Rho         float64 `json:"rho,omitempty"`

	Delay    *DelaySpec `json:"delay,omitempty"`
	Topology *TopoSpec  `json:"topology,omitempty"`
	DropProb float64    `json:"drop_prob,omitempty"`

	SyncIntSec float64 `json:"sync_int_sec,omitempty"`
	MaxWaitSec float64 `json:"max_wait_sec,omitempty"`
	WayOffSec  float64 `json:"way_off_sec,omitempty"`

	InitSpreadSec    float64   `json:"init_spread_sec,omitempty"`
	InitialBiasesSec []float64 `json:"initial_biases_sec,omitempty"`
	Slopes           []float64 `json:"slopes,omitempty"`
	TickSec          float64   `json:"tick_sec,omitempty"`

	Protocol string `json:"protocol,omitempty"` // default "sync"

	Adversary       []CorruptionSpec `json:"adversary,omitempty"`
	UnsafeAdversary bool             `json:"unsafe_adversary,omitempty"`

	SamplePeriodSec float64 `json:"sample_period_sec,omitempty"`
	SkipValidation  bool    `json:"skip_validation,omitempty"`
}

// DelaySpec selects a latency model.
type DelaySpec struct {
	Kind string `json:"kind"` // constant | uniform | asymmetric | spiky
	// constant: D; uniform: Min,Max; asymmetric: FwdMin..RevMax;
	// spiky: Min,Max,SpikeProb,SpikeMax. All in seconds.
	D         float64 `json:"d_sec,omitempty"`
	Min       float64 `json:"min_sec,omitempty"`
	Max       float64 `json:"max_sec,omitempty"`
	FwdMin    float64 `json:"fwd_min_sec,omitempty"`
	FwdMax    float64 `json:"fwd_max_sec,omitempty"`
	RevMin    float64 `json:"rev_min_sec,omitempty"`
	RevMax    float64 `json:"rev_max_sec,omitempty"`
	SpikeProb float64 `json:"spike_prob,omitempty"`
	SpikeMax  float64 `json:"spike_max_sec,omitempty"`
}

// Model resolves the spec to a DelayModel.
func (d *DelaySpec) Model() (network.DelayModel, error) {
	switch d.Kind {
	case "constant":
		if d.D <= 0 {
			return nil, fmt.Errorf("scenario: constant delay needs d_sec > 0")
		}
		return network.ConstantDelay{D: simtime.Duration(d.D)}, nil
	case "uniform":
		if d.Min < 0 || d.Max < d.Min {
			return nil, fmt.Errorf("scenario: bad uniform delay [%g, %g]", d.Min, d.Max)
		}
		return network.NewUniformDelay(simtime.Duration(d.Min), simtime.Duration(d.Max)), nil
	case "asymmetric":
		return network.AsymmetricDelay{
			FwdMin: simtime.Duration(d.FwdMin), FwdMax: simtime.Duration(d.FwdMax),
			RevMin: simtime.Duration(d.RevMin), RevMax: simtime.Duration(d.RevMax),
		}, nil
	case "spiky":
		return network.SpikyDelay{
			Base:      network.NewUniformDelay(simtime.Duration(d.Min), simtime.Duration(d.Max)),
			SpikeProb: d.SpikeProb,
			SpikeMax:  simtime.Duration(d.SpikeMax),
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown delay kind %q", d.Kind)
	}
}

// TopoSpec selects a topology.
type TopoSpec struct {
	Kind string `json:"kind"` // full | ring | circulant | twocliques
	// circulant: Degree; twocliques: F (builds 6F+2 nodes).
	Degree int `json:"degree,omitempty"`
	F      int `json:"f,omitempty"`
}

// Build resolves the spec to a topology over n processors.
func (t *TopoSpec) Build(n int) (network.Topology, error) {
	switch t.Kind {
	case "full":
		return network.NewFullMesh(n), nil
	case "ring":
		return network.NewRing(n), nil
	case "circulant":
		if t.Degree%2 != 0 || t.Degree < 2 || t.Degree >= n {
			return nil, fmt.Errorf("scenario: circulant needs even 2 ≤ degree < n, got %d", t.Degree)
		}
		return network.NewCirculant(n, t.Degree), nil
	case "twocliques":
		if t.F < 1 {
			return nil, fmt.Errorf("scenario: twocliques needs f ≥ 1")
		}
		g := network.NewTwoCliques(t.F)
		if g.N() != n {
			return nil, fmt.Errorf("scenario: twocliques(f=%d) has %d nodes but n=%d", t.F, g.N(), n)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

// CorruptionSpec is one break-in.
type CorruptionSpec struct {
	Node     int          `json:"node"`
	FromSec  float64      `json:"from_sec"`
	ToSec    float64      `json:"to_sec"`
	Behavior BehaviorSpec `json:"behavior"`
}

// BehaviorSpec selects a Byzantine behavior.
type BehaviorSpec struct {
	Kind string `json:"kind"` // crash | smash | randomliar | consistentliar | splitbrain | honest
	// smash: OffsetSec (+ Quiet); randomliar: AmplitudeSec;
	// consistentliar: OffsetSec; splitbrain: Boundary, OffsetSec.
	OffsetSec    float64 `json:"offset_sec,omitempty"`
	AmplitudeSec float64 `json:"amplitude_sec,omitempty"`
	Boundary     int     `json:"boundary,omitempty"`
	Quiet        bool    `json:"quiet,omitempty"`
}

// Build resolves the spec to a behavior.
func (b *BehaviorSpec) Build() (protocol.Behavior, error) {
	switch b.Kind {
	case "crash":
		return adversary.Crash{}, nil
	case "smash":
		return adversary.ClockSmash{Offset: simtime.Duration(b.OffsetSec), Quiet: b.Quiet}, nil
	case "randomliar":
		return adversary.RandomLiar{Amplitude: simtime.Duration(b.AmplitudeSec)}, nil
	case "consistentliar":
		return adversary.ConsistentLiar{Offset: simtime.Duration(b.OffsetSec)}, nil
	case "splitbrain":
		return adversary.SplitBrain{Boundary: b.Boundary, Offset: simtime.Duration(b.OffsetSec)}, nil
	case "honest":
		return adversary.Honest{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown behavior kind %q", b.Kind)
	}
}

// Registry maps protocol names to Builders. "sync" (and "") are always
// available; callers add baselines.
type Registry map[string]Builder

// Build resolves the spec to a runnable Scenario using the given protocol
// registry (nil is fine when only "sync" is used).
func (sp *Spec) Build(protocols Registry) (Scenario, error) {
	s := Scenario{
		Name:            sp.Name,
		Seed:            sp.Seed,
		N:               sp.N,
		F:               sp.F,
		Duration:        simtime.Duration(sp.DurationSec),
		Theta:           simtime.Duration(sp.ThetaSec),
		Rho:             sp.Rho,
		DropProb:        sp.DropProb,
		SyncInt:         simtime.Duration(sp.SyncIntSec),
		MaxWait:         simtime.Duration(sp.MaxWaitSec),
		WayOff:          simtime.Duration(sp.WayOffSec),
		InitSpread:      simtime.Duration(sp.InitSpreadSec),
		Slopes:          sp.Slopes,
		Tick:            simtime.Duration(sp.TickSec),
		UnsafeAdversary: sp.UnsafeAdversary,
		SamplePeriod:    simtime.Duration(sp.SamplePeriodSec),
		SkipValidation:  sp.SkipValidation,
	}
	for _, b := range sp.InitialBiasesSec {
		s.InitialBiases = append(s.InitialBiases, simtime.Duration(b))
	}
	if sp.Delay != nil {
		m, err := sp.Delay.Model()
		if err != nil {
			return Scenario{}, err
		}
		s.Delay = m
	}
	if sp.Topology != nil {
		topo, err := sp.Topology.Build(sp.N)
		if err != nil {
			return Scenario{}, err
		}
		s.Topology = topo
	}
	switch sp.Protocol {
	case "", "sync":
		// default builder
	default:
		builder, ok := protocols[sp.Protocol]
		if !ok {
			return Scenario{}, fmt.Errorf("scenario: unknown protocol %q", sp.Protocol)
		}
		s.Builder = builder
	}
	for i, c := range sp.Adversary {
		behavior, err := c.Behavior.Build()
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: corruption %d: %w", i, err)
		}
		s.Adversary.Corruptions = append(s.Adversary.Corruptions, adversary.Corruption{
			Node:     c.Node,
			From:     simtime.Time(c.FromSec),
			To:       simtime.Time(c.ToSec),
			Behavior: behavior,
		})
	}
	return s, nil
}

// LoadSpec parses a JSON spec. Unknown fields are rejected so typos in
// config files fail loudly.
func LoadSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return sp, nil
}
