package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"clocksync/internal/simtime"
)

func TestLoadSpecAndBuildRoundTrip(t *testing.T) {
	src := `{
		"name": "from-json",
		"seed": 9,
		"n": 7, "f": 2,
		"duration_sec": 600,
		"theta_sec": 300,
		"rho": 1e-4,
		"delay": {"kind": "uniform", "min_sec": 0.005, "max_sec": 0.05},
		"topology": {"kind": "full"},
		"init_spread_sec": 0.2,
		"adversary": [
			{"node": 6, "from_sec": 60, "to_sec": 61,
			 "behavior": {"kind": "smash", "offset_sec": 30, "quiet": true}}
		],
		"sample_period_sec": 5
	}`
	sp, err := LoadSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "from-json" || s.N != 7 || s.F != 2 {
		t.Fatalf("basic fields: %+v", s)
	}
	if s.Duration != 600 || s.Theta != 300 {
		t.Fatalf("durations: %v %v", s.Duration, s.Theta)
	}
	if len(s.Adversary.Corruptions) != 1 || s.Adversary.Corruptions[0].Node != 6 {
		t.Fatalf("adversary: %+v", s.Adversary)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Recoveries) != 1 || !res.Report.Recoveries[0].Ok {
		t.Fatalf("smashed node did not recover: %+v", res.Report.Recoveries)
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	if _, err := LoadSpec(strings.NewReader(`{"n": 4, "not_a_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadSpecRejectsGarbage(t *testing.T) {
	if _, err := LoadSpec(strings.NewReader(`{`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDelaySpecVariants(t *testing.T) {
	cases := []struct {
		spec DelaySpec
		want simtime.Duration // Bound()
	}{
		{DelaySpec{Kind: "constant", D: 0.01}, simtime.Duration(0.01)},
		{DelaySpec{Kind: "uniform", Min: 0.001, Max: 0.02}, simtime.Duration(0.02)},
		{DelaySpec{Kind: "asymmetric", FwdMin: 0.01, FwdMax: 0.03, RevMin: 0.001, RevMax: 0.002}, simtime.Duration(0.03)},
		{DelaySpec{Kind: "spiky", Min: 0.001, Max: 0.01, SpikeProb: 0.1, SpikeMax: 0.05}, simtime.Duration(0.06)},
	}
	for _, tc := range cases {
		m, err := tc.spec.Model()
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		got := float64(m.Bound())
		if diff := got - float64(tc.want); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%+v: bound %v, want %v", tc.spec, got, tc.want)
		}
	}
	bad := []DelaySpec{
		{Kind: "warp"},
		{Kind: "constant", D: 0},
		{Kind: "uniform", Min: 0.5, Max: 0.1},
	}
	for _, spec := range bad {
		if _, err := spec.Model(); err == nil {
			t.Fatalf("%+v accepted", spec)
		}
	}
}

func TestTopoSpecVariants(t *testing.T) {
	full, err := (&TopoSpec{Kind: "full"}).Build(5)
	if err != nil || full.N() != 5 {
		t.Fatalf("full: %v %v", full, err)
	}
	ring, err := (&TopoSpec{Kind: "ring"}).Build(5)
	if err != nil || len(ring.Neighbors(0)) != 2 {
		t.Fatalf("ring: %v", err)
	}
	circ, err := (&TopoSpec{Kind: "circulant", Degree: 4}).Build(9)
	if err != nil || len(circ.Neighbors(0)) != 4 {
		t.Fatalf("circulant: %v", err)
	}
	tc, err := (&TopoSpec{Kind: "twocliques", F: 1}).Build(8)
	if err != nil || tc.N() != 8 {
		t.Fatalf("twocliques: %v", err)
	}
	bad := []struct {
		spec TopoSpec
		n    int
	}{
		{TopoSpec{Kind: "hypercube"}, 8},
		{TopoSpec{Kind: "circulant", Degree: 3}, 8},
		{TopoSpec{Kind: "twocliques", F: 1}, 9}, // size mismatch
		{TopoSpec{Kind: "twocliques"}, 8},
	}
	for _, b := range bad {
		if _, err := b.spec.Build(b.n); err == nil {
			t.Fatalf("%+v accepted", b.spec)
		}
	}
}

func TestBehaviorSpecVariants(t *testing.T) {
	kinds := []string{"crash", "smash", "randomliar", "consistentliar", "splitbrain", "honest"}
	for _, k := range kinds {
		if _, err := (&BehaviorSpec{Kind: k}).Build(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
	if _, err := (&BehaviorSpec{Kind: "gremlin"}).Build(); err == nil {
		t.Fatal("unknown behavior accepted")
	}
}

func TestSpecUnknownProtocol(t *testing.T) {
	sp := Spec{N: 4, F: 1, DurationSec: 60, Protocol: "quantum"}
	if _, err := sp.Build(nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	// With a registry entry it resolves, and the registered builder is used.
	called := 0
	reg := Registry{"quantum": func(ctx BuildContext) Starter {
		called++
		return SyncBuilder(nil)(ctx)
	}}
	sp.ThetaSec = 300
	sp.Rho = 1e-4
	s, err := sp.Build(reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	if called != sp.N {
		t.Fatalf("registered builder called %d times, want %d", called, sp.N)
	}
}

func TestSpecTopologyDelayErrorsPropagate(t *testing.T) {
	sp := Spec{N: 4, F: 1, DurationSec: 60,
		Delay: &DelaySpec{Kind: "nope"}}
	if _, err := sp.Build(nil); err == nil {
		t.Fatal("bad delay accepted")
	}
	sp = Spec{N: 4, F: 1, DurationSec: 60,
		Topology: &TopoSpec{Kind: "nope"}}
	if _, err := sp.Build(nil); err == nil {
		t.Fatal("bad topology accepted")
	}
	sp = Spec{N: 4, F: 1, DurationSec: 60,
		Adversary: []CorruptionSpec{{Behavior: BehaviorSpec{Kind: "nope"}}}}
	if _, err := sp.Build(nil); err == nil {
		t.Fatal("bad behavior accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	// A fully-populated Spec must survive encode → LoadSpec unchanged, and
	// Build must map every field onto the Scenario. This pins the JSON
	// surface: adding a field without a json tag (or with a colliding one)
	// fails here.
	orig := Spec{
		Name: "roundtrip", Seed: 99,
		N: 8, F: 2,
		DurationSec: 600, ThetaSec: 120, Rho: 2e-4,
		Delay:      &DelaySpec{Kind: "spiky", Min: 0.001, Max: 0.02, SpikeProb: 0.05, SpikeMax: 0.5},
		Topology:   &TopoSpec{Kind: "circulant", Degree: 4},
		DropProb:   0.01,
		SyncIntSec: 15, MaxWaitSec: 0.2, WayOffSec: 90,
		InitSpreadSec:    0.25,
		InitialBiasesSec: []float64{0.01, -0.02, 0.03, 0, 0, 0, 0, 0},
		Slopes:           []float64{1e-4, -5e-5, 0, 0, 0, 0, 0, 0},
		TickSec:          0.5,
		Protocol:         "ntp",
		Adversary: []CorruptionSpec{
			{Node: 3, FromSec: 240, ToSec: 270,
				Behavior: BehaviorSpec{Kind: "smash", OffsetSec: 30, Quiet: true}},
			{Node: 5, FromSec: 400, ToSec: 430,
				Behavior: BehaviorSpec{Kind: "splitbrain", Boundary: 4, OffsetSec: 10}},
		},
		UnsafeAdversary: true,
		SamplePeriodSec: 2,
		SkipValidation:  true,
	}
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := LoadSpec(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("re-reading encoded spec: %v", err)
	}
	if !reflect.DeepEqual(orig, decoded) {
		t.Fatalf("spec changed across JSON round-trip:\n  sent %+v\n  got  %+v", orig, decoded)
	}

	s, err := decoded.Build(Registry{"ntp": func(bc BuildContext) Starter { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "roundtrip" || s.Seed != 99 || s.N != 8 || s.F != 2 {
		t.Errorf("identity fields lost: %+v", s)
	}
	if s.Duration != 600*simtime.Second || s.Theta != 2*simtime.Minute || s.Rho != 2e-4 {
		t.Errorf("timing fields lost: %+v", s)
	}
	if s.SyncInt != 15*simtime.Second || s.MaxWait != 200*simtime.Millisecond || s.WayOff != 90*simtime.Second {
		t.Errorf("protocol fields lost: %+v", s)
	}
	if s.InitSpread != 250*simtime.Millisecond || len(s.InitialBiases) != 8 || len(s.Slopes) != 8 {
		t.Errorf("clock fields lost: %+v", s)
	}
	if s.Tick != 500*simtime.Millisecond || s.DropProb != 0.01 || !s.UnsafeAdversary || !s.SkipValidation {
		t.Errorf("misc fields lost: %+v", s)
	}
	if s.SamplePeriod != 2*simtime.Second {
		t.Errorf("sample period lost: %v", s.SamplePeriod)
	}
	if s.Delay == nil || s.Topology == nil || s.Builder == nil {
		t.Error("delay/topology/protocol not resolved")
	}
	if len(s.Adversary.Corruptions) != 2 {
		t.Fatalf("adversary lost: %+v", s.Adversary)
	}
	c := s.Adversary.Corruptions[0]
	if c.Node != 3 || c.From != 240 || c.To != 270 {
		t.Errorf("corruption window lost: %+v", c)
	}
}
